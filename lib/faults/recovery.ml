open Lsr_storage
open Lsr_core

type backup = { state : string; ts : Timestamp.t }

let backup primary =
  {
    state = Mvcc.serialize (Primary.db primary);
    ts = Mvcc.latest_commit_ts (Primary.db primary);
  }

let replay_filter ~after records =
  (* Transactions whose commit lies beyond the backup point; everything else
     is either already in the backup or installed nothing. *)
  let wanted = Hashtbl.create 32 in
  List.iter
    (function
      | Txn_record.Commit_rec { txn; commit_ts; _ }
        when Timestamp.compare commit_ts after > 0 ->
        Hashtbl.replace wanted txn ()
      | Txn_record.Start_rec _ | Txn_record.Commit_rec _
      | Txn_record.Abort_rec _ -> ())
    records;
  List.filter
    (function
      | Txn_record.Start_rec { txn; _ } | Txn_record.Commit_rec { txn; _ } ->
        Hashtbl.mem wanted txn
      | Txn_record.Abort_rec _ -> false)
    records

let restore ?(name = "recovered") ~primary b =
  let fresh = Secondary.create_from ~name b.state in
  Secondary.reseed_seq fresh b.ts;
  (* Replaying from offset 0 raises inside Wal.read_from if the log prefix
     has been reclaimed — a stale backup plus a truncated log is data loss,
     and must say so. *)
  let replayer = Propagation.create ~from:0 (Primary.wal primary) in
  let records = Propagation.poll replayer in
  List.iter (Secondary.enqueue fresh) (replay_filter ~after:b.ts records);
  ignore (Secondary.drain fresh);
  fresh
