open Lsr_core
module Rng = Lsr_sim.Rng

type t = {
  config : Channel.config;
  rng : Rng.t;
  lineage : Lsr_obs.Lineage.t;
  mutable channels : (int * Channel.t) list;
}

let create ?(config = Channel.default) ?(lineage = Lsr_obs.Lineage.null) ~seed
    () =
  { config; rng = Rng.create seed; lineage; channels = [] }

let faults t i =
  let ch =
    Channel.create ~config:t.config ~lineage:t.lineage
      ~name:(Printf.sprintf "secondary-%d" i)
      ~rng:(Rng.split t.rng) ()
  in
  t.channels <- t.channels @ [ (i, ch) ];
  {
    System.ch_send = Channel.send ch;
    ch_tick = (fun () -> Channel.tick ch);
    ch_idle = (fun () -> Channel.idle ch);
    ch_reset = (fun () -> Channel.reset ch);
  }

let channel t i = List.assoc_opt i t.channels
let channels t = t.channels

let total t =
  List.fold_left
    (fun acc (_, ch) -> Channel.add_stats acc (Channel.stats ch))
    Channel.zero_stats t.channels
