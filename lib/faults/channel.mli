(** A faulty, sequenced transport for propagated transaction records.

    Sits between the primary's propagator (Algorithm 3.1) and one secondary's
    update queue. The underlying "network" misbehaves — it can {e lose},
    {e duplicate}, {e delay} and {e reorder} (within a bounded window)
    individual record transmissions — while a sequence-number / cumulative-ack
    / retransmit-with-exponential-backoff layer on top restores exactly the
    FIFO reliable channel the paper's §3 assumes: the receiver observes every
    record exactly once, in primary timestamp order, no matter what the
    network does underneath.

    All randomness is drawn from a caller-supplied {!Lsr_sim.Rng.t}, so a
    fault schedule is a pure function of the seed and the send/tick sequence —
    failing randomized trials replay exactly from their seed.

    Time is modelled in integer {e ticks}. The embedded {!Lsr_core.System}
    advances one tick per refresh call (and loops inside [pump] until the
    channel quiesces); the simulator maps ticks to virtual seconds. Base
    one-hop latency is one tick. *)

open Lsr_core

type config = {
  loss : float;  (** per-transmission drop probability (applies to
                     retransmissions too); must be [< 1.] for liveness *)
  dup : float;  (** probability a transmission is delivered twice *)
  delay : float;  (** probability of extra delivery latency *)
  max_delay : int;  (** extra latency, uniform on [1, max_delay] ticks *)
  reorder : float;  (** probability a transmission is deferred past later ones *)
  reorder_window : int;
      (** bound on the reordering distance, in ticks: a deferred message
          arrives at most [reorder_window] ticks late *)
  ack_loss : float;  (** drop probability for cumulative acks; must be [< 1.] *)
  rto : int;  (** initial retransmission timeout, in ticks ([>= 1]) *)
  backoff : float;  (** multiplicative timeout growth per retransmission ([>= 1.]) *)
  max_rto : int;  (** timeout ceiling, in ticks *)
}

(** A fault-free configuration (the paper's model): every transmission
    arrives after exactly one tick, in order, exactly once. *)
val reliable : config

(** Mild faults: a few percent loss/duplication, occasional short delays. *)
val default : config

(** Aggressive faults: heavy loss, duplication, delay and reordering on both
    data and ack paths. Still live ([loss < 1]). *)
val chaos : config

(** Counters since creation ({!reset} does not clear them, so a crash/restart
    cycle keeps its evidence). *)
type stats = {
  sent : int;  (** records accepted by {!send} *)
  delivered : int;  (** records handed to the receiver, in order *)
  dropped : int;  (** transmissions lost by the network *)
  duplicated : int;  (** extra copies injected *)
  delayed : int;  (** transmissions given extra latency *)
  reordered : int;  (** transmissions deferred past later ones *)
  retransmitted : int;  (** sender timeouts that resent a record *)
  acks_dropped : int;  (** cumulative acks lost *)
  stale_ignored : int;  (** arrivals below the receive cursor, discarded *)
  max_flight : int;  (** peak messages simultaneously in the network *)
  max_ooo : int;  (** peak out-of-order buffer depth at the receiver *)
}

val zero_stats : stats

(** Pointwise sum; the [max_*] fields take the maximum. *)
val add_stats : stats -> stats -> stats

val pp_stats : Format.formatter -> stats -> unit

type t

(** [create ~rng ()] is a fresh channel. Mutates [rng] on every send/tick.
    [obs], when enabled, receives the same counters live under
    [channel.sent/delivered/dropped/duplicated/delayed/reordered/
    retransmitted/acks_dropped/stale_ignored] plus [channel.in_flight] and
    [channel.ooo_depth] gauges; every channel attached to one registry
    shares those instruments, so the registry aggregates across sites.
    [lineage], when enabled, receives a [Channel_dropped] / [Channel_delayed]
    / [Channel_duplicated] / [Channel_retransmitted] event per injected
    fault, tagged with [name] (the site this channel feeds) and the affected
    record's transaction id — so faults show up in that transaction's
    journey. [flight] records the same fault events into the bounded black
    box.
    @raise Invalid_argument on an ill-formed config (probabilities outside
    [0, 1], [loss >= 1.], [ack_loss >= 1.], [rto < 1], [backoff < 1.],
    negative windows). *)
val create :
  ?config:config ->
  ?obs:Lsr_obs.Obs.t ->
  ?lineage:Lsr_obs.Lineage.t ->
  ?flight:Lsr_obs.Flight.t ->
  ?name:string ->
  rng:Lsr_sim.Rng.t ->
  unit ->
  t

val config : t -> config

(** [send t records] accepts a batch from the propagator: each record gets
    the next sequence number and is transmitted (subject to faults). *)
val send : t -> Txn_record.t list -> unit

(** [tick t] advances one tick: arrivals are processed, in-order records are
    delivered (returned oldest first), a cumulative ack is emitted, acked
    messages are released and timed-out ones retransmitted. *)
val tick : t -> Txn_record.t list

(** [drain t] ticks until {!idle}, concatenating deliveries.
    @raise Failure after [max_ticks] (default 100_000) ticks without
    quiescing — only possible with a saturated loss rate. *)
val drain : ?max_ticks:int -> t -> Txn_record.t list

(** Nothing buffered anywhere: no unacked messages, nothing in flight, no
    out-of-order arrivals held back. Every sent record has been delivered. *)
val idle : t -> bool

(** [reset t] models losing both endpoints' connection state (secondary
    crash/restart): in-flight and unacked messages vanish, sequence numbers
    restart at zero on both sides. Counters are preserved. *)
val reset : t -> unit

val stats : t -> stats

(** Current tick count (diagnostic). *)
val now : t -> int

(** Messages sent but not yet cumulatively acked (diagnostic). *)
val unacked : t -> int
