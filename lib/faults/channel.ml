open Lsr_core
module Rng = Lsr_sim.Rng

type config = {
  loss : float;
  dup : float;
  delay : float;
  max_delay : int;
  reorder : float;
  reorder_window : int;
  ack_loss : float;
  rto : int;
  backoff : float;
  max_rto : int;
}

let reliable =
  {
    loss = 0.;
    dup = 0.;
    delay = 0.;
    max_delay = 0;
    reorder = 0.;
    reorder_window = 0;
    ack_loss = 0.;
    rto = 4;
    backoff = 2.;
    max_rto = 64;
  }

let default =
  {
    reliable with
    loss = 0.05;
    dup = 0.05;
    delay = 0.1;
    max_delay = 3;
    reorder = 0.1;
    reorder_window = 2;
    ack_loss = 0.05;
  }

let chaos =
  {
    loss = 0.25;
    dup = 0.2;
    delay = 0.3;
    max_delay = 6;
    reorder = 0.3;
    reorder_window = 4;
    ack_loss = 0.25;
    rto = 3;
    backoff = 2.;
    max_rto = 32;
  }

let validate cfg =
  let prob name p ~strict =
    if p < 0. || p > 1. || (strict && p >= 1.) then
      invalid_arg (Printf.sprintf "Channel.create: %s out of range" name)
  in
  prob "loss" cfg.loss ~strict:true;
  prob "dup" cfg.dup ~strict:false;
  prob "delay" cfg.delay ~strict:false;
  prob "reorder" cfg.reorder ~strict:false;
  prob "ack_loss" cfg.ack_loss ~strict:true;
  if cfg.max_delay < 0 || cfg.reorder_window < 0 then
    invalid_arg "Channel.create: negative window";
  if cfg.rto < 1 then invalid_arg "Channel.create: rto must be >= 1";
  if cfg.backoff < 1. then invalid_arg "Channel.create: backoff must be >= 1.";
  if cfg.max_rto < cfg.rto then invalid_arg "Channel.create: max_rto < rto"

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  reordered : int;
  retransmitted : int;
  acks_dropped : int;
  stale_ignored : int;
  max_flight : int;
  max_ooo : int;
}

let zero_stats =
  {
    sent = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
    reordered = 0;
    retransmitted = 0;
    acks_dropped = 0;
    stale_ignored = 0;
    max_flight = 0;
    max_ooo = 0;
  }

let add_stats a b =
  {
    sent = a.sent + b.sent;
    delivered = a.delivered + b.delivered;
    dropped = a.dropped + b.dropped;
    duplicated = a.duplicated + b.duplicated;
    delayed = a.delayed + b.delayed;
    reordered = a.reordered + b.reordered;
    retransmitted = a.retransmitted + b.retransmitted;
    acks_dropped = a.acks_dropped + b.acks_dropped;
    stale_ignored = a.stale_ignored + b.stale_ignored;
    max_flight = max a.max_flight b.max_flight;
    max_ooo = max a.max_ooo b.max_ooo;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "sent %d, delivered %d, dropped %d, dup %d, delayed %d, reordered %d, \
     retransmitted %d, acks dropped %d, stale %d, max flight %d, max ooo %d"
    s.sent s.delivered s.dropped s.duplicated s.delayed s.reordered
    s.retransmitted s.acks_dropped s.stale_ignored s.max_flight s.max_ooo

type message = { seq : int; record : Txn_record.t }

(* One copy of a message traversing the network. *)
type packet = { arrive : int; pseq : int; precord : Txn_record.t }

(* Sender-side retransmission state for one unacked message. *)
type unacked_msg = { msg : message; mutable rto_at : int; mutable cur_rto : int }

(* The same counters, re-exported live through an observability registry.
   All channels attached to one registry share these instruments (names are
   interned), so the registry view aggregates across sites; the per-channel
   [stats] record remains the per-instance view. *)
type obs_counters = {
  oc_sent : Lsr_obs.Obs.counter;
  oc_delivered : Lsr_obs.Obs.counter;
  oc_dropped : Lsr_obs.Obs.counter;
  oc_duplicated : Lsr_obs.Obs.counter;
  oc_delayed : Lsr_obs.Obs.counter;
  oc_reordered : Lsr_obs.Obs.counter;
  oc_retransmitted : Lsr_obs.Obs.counter;
  oc_acks_dropped : Lsr_obs.Obs.counter;
  oc_stale : Lsr_obs.Obs.counter;
  oc_flight : Lsr_obs.Obs.gauge;
  oc_ooo : Lsr_obs.Obs.gauge;
}

let obs_counters obs =
  let module Obs = Lsr_obs.Obs in
  {
    oc_sent = Obs.counter obs "channel.sent";
    oc_delivered = Obs.counter obs "channel.delivered";
    oc_dropped = Obs.counter obs "channel.dropped";
    oc_duplicated = Obs.counter obs "channel.duplicated";
    oc_delayed = Obs.counter obs "channel.delayed";
    oc_reordered = Obs.counter obs "channel.reordered";
    oc_retransmitted = Obs.counter obs "channel.retransmitted";
    oc_acks_dropped = Obs.counter obs "channel.acks_dropped";
    oc_stale = Obs.counter obs "channel.stale_ignored";
    oc_flight = Obs.gauge obs "channel.in_flight";
    oc_ooo = Obs.gauge obs "channel.ooo_depth";
  }

type t = {
  cfg : config;
  rng : Rng.t;
  mutable clock : int;
  (* Sender. *)
  mutable next_seq : int;
  mutable pending : unacked_msg list; (* sorted by seq, oldest first *)
  (* Network. *)
  mutable flight : packet list;
  mutable ack_flight : (int * int) list; (* arrival tick, cumulative ack *)
  (* Receiver. *)
  mutable next_expected : int;
  ooo : (int, Txn_record.t) Hashtbl.t;
  mutable s : stats;
  oc : obs_counters;
  lineage : Lsr_obs.Lineage.t;
  recorder : Lsr_obs.Flight.t; (* [flight] names the in-flight packet list *)
  lname : string option; (* site this channel feeds, for lineage events *)
}

let create ?(config = default) ?(obs = Lsr_obs.Obs.null)
    ?(lineage = Lsr_obs.Lineage.null) ?(flight = Lsr_obs.Flight.null) ?name
    ~rng () =
  validate config;
  {
    cfg = config;
    rng;
    clock = 0;
    next_seq = 0;
    pending = [];
    flight = [];
    ack_flight = [];
    next_expected = 0;
    ooo = Hashtbl.create 32;
    s = zero_stats;
    oc = obs_counters obs;
    lineage;
    recorder = flight;
    lname = name;
  }

let emit_lineage t record stage =
  if Lsr_obs.Lineage.enabled t.lineage then
    Lsr_obs.Lineage.emit t.lineage ?site:t.lname
      ~txn:(Txn_record.txn record)
      (stage (Txn_record.kind_name record));
  if Lsr_obs.Flight.enabled t.recorder then
    Lsr_obs.Flight.note_stage t.recorder ?site:t.lname
      ~txn:(Txn_record.txn record)
      (stage (Txn_record.kind_name record))

let config t = t.cfg
let stats t = t.s
let now t = t.clock
let unacked t = List.length t.pending

let idle t =
  t.pending = [] && t.flight = [] && t.ack_flight = []
  && Hashtbl.length t.ooo = 0

(* Put one copy of [msg] on the wire, applying the configured faults. *)
let transmit t msg =
  if t.cfg.loss > 0. && Rng.bernoulli t.rng ~p:t.cfg.loss then begin
    t.s <- { t.s with dropped = t.s.dropped + 1 };
    emit_lineage t msg.record (fun record ->
        Lsr_obs.Lineage.Channel_dropped { record });
    Lsr_obs.Obs.incr t.oc.oc_dropped
  end
  else begin
    let latency = ref 1 in
    if t.cfg.delay > 0. && Rng.bernoulli t.rng ~p:t.cfg.delay then begin
      let extra = Rng.uniform t.rng ~lo:1 ~hi:(max 1 t.cfg.max_delay) in
      latency := !latency + extra;
      t.s <- { t.s with delayed = t.s.delayed + 1 };
      emit_lineage t msg.record (fun record ->
          Lsr_obs.Lineage.Channel_delayed { record; ticks = extra });
      Lsr_obs.Obs.incr t.oc.oc_delayed
    end;
    if t.cfg.reorder > 0. && Rng.bernoulli t.rng ~p:t.cfg.reorder then begin
      latency :=
        !latency + Rng.uniform t.rng ~lo:1 ~hi:(max 1 t.cfg.reorder_window);
      t.s <- { t.s with reordered = t.s.reordered + 1 };
      Lsr_obs.Obs.incr t.oc.oc_reordered
    end;
    t.flight <-
      { arrive = t.clock + !latency; pseq = msg.seq; precord = msg.record }
      :: t.flight;
    if t.cfg.dup > 0. && Rng.bernoulli t.rng ~p:t.cfg.dup then begin
      let extra = 1 + Rng.uniform t.rng ~lo:0 ~hi:(max 1 t.cfg.reorder_window) in
      t.flight <-
        { arrive = t.clock + extra; pseq = msg.seq; precord = msg.record }
        :: t.flight;
      t.s <- { t.s with duplicated = t.s.duplicated + 1 };
      emit_lineage t msg.record (fun record ->
          Lsr_obs.Lineage.Channel_duplicated { record });
      Lsr_obs.Obs.incr t.oc.oc_duplicated
    end;
    let depth = List.length t.flight in
    Lsr_obs.Obs.set_gauge t.oc.oc_flight (float_of_int depth);
    if depth > t.s.max_flight then t.s <- { t.s with max_flight = depth }
  end

let send t records =
  List.iter
    (fun record ->
      let msg = { seq = t.next_seq; record } in
      t.next_seq <- t.next_seq + 1;
      t.pending <-
        t.pending
        @ [ { msg; rto_at = t.clock + t.cfg.rto; cur_rto = t.cfg.rto } ];
      t.s <- { t.s with sent = t.s.sent + 1 };
      Lsr_obs.Obs.incr t.oc.oc_sent;
      transmit t msg)
    records

let tick t =
  t.clock <- t.clock + 1;
  (* Data arrivals, in a deterministic order. *)
  let arrived, still = List.partition (fun p -> p.arrive <= t.clock) t.flight in
  t.flight <- still;
  let arrived =
    List.sort
      (fun a b -> compare (a.arrive, a.pseq) (b.arrive, b.pseq))
      arrived
  in
  List.iter
    (fun p ->
      if p.pseq < t.next_expected then begin
        t.s <- { t.s with stale_ignored = t.s.stale_ignored + 1 };
        Lsr_obs.Obs.incr t.oc.oc_stale
      end
      else Hashtbl.replace t.ooo p.pseq p.precord)
    arrived;
  (* Deliver the in-sequence prefix. *)
  let delivered = ref [] in
  let advancing = ref true in
  while !advancing do
    match Hashtbl.find_opt t.ooo t.next_expected with
    | Some record ->
      Hashtbl.remove t.ooo t.next_expected;
      delivered := record :: !delivered;
      t.next_expected <- t.next_expected + 1
    | None -> advancing := false
  done;
  let depth = Hashtbl.length t.ooo in
  Lsr_obs.Obs.set_gauge t.oc.oc_ooo (float_of_int depth);
  if depth > t.s.max_ooo then t.s <- { t.s with max_ooo = depth };
  (* The receiver acks (cumulatively) whenever data arrives — including stale
     duplicates, which is what lets a lost ack be repaired by the
     retransmission it provokes. *)
  if arrived <> [] then begin
    if t.cfg.ack_loss > 0. && Rng.bernoulli t.rng ~p:t.cfg.ack_loss then begin
      t.s <- { t.s with acks_dropped = t.s.acks_dropped + 1 };
      Lsr_obs.Obs.incr t.oc.oc_acks_dropped
    end
    else t.ack_flight <- (t.clock + 1, t.next_expected) :: t.ack_flight
  end;
  (* Sender: absorb arrived acks, release acked messages. *)
  let acks, still_acks =
    List.partition (fun (at, _) -> at <= t.clock) t.ack_flight
  in
  t.ack_flight <- still_acks;
  let cum = List.fold_left (fun acc (_, v) -> max acc v) (-1) acks in
  if cum >= 0 then begin
    let before = List.length t.pending in
    t.pending <- List.filter (fun u -> u.msg.seq >= cum) t.pending;
    (* Progress: restart the timers of whatever is still outstanding. *)
    if List.length t.pending < before then
      List.iter
        (fun u ->
          u.cur_rto <- t.cfg.rto;
          u.rto_at <- t.clock + u.cur_rto)
        t.pending
  end;
  (* Retransmit timed-out messages with exponential backoff. *)
  List.iter
    (fun u ->
      if u.rto_at <= t.clock then begin
        t.s <- { t.s with retransmitted = t.s.retransmitted + 1 };
        emit_lineage t u.msg.record (fun record ->
            Lsr_obs.Lineage.Channel_retransmitted { record });
        Lsr_obs.Obs.incr t.oc.oc_retransmitted;
        transmit t u.msg;
        u.cur_rto <-
          min t.cfg.max_rto
            (max (u.cur_rto + 1)
               (int_of_float (float_of_int u.cur_rto *. t.cfg.backoff)));
        u.rto_at <- t.clock + u.cur_rto
      end)
    t.pending;
  let out = List.rev !delivered in
  t.s <- { t.s with delivered = t.s.delivered + List.length out };
  Lsr_obs.Obs.incr t.oc.oc_delivered ~by:(List.length out);
  out

let drain ?(max_ticks = 100_000) t =
  let out = ref [] in
  let ticks = ref 0 in
  while not (idle t) do
    incr ticks;
    if !ticks > max_ticks then
      failwith
        (Printf.sprintf "Channel.drain: not quiescent after %d ticks" max_ticks);
    out := List.rev_append (tick t) !out
  done;
  List.rev !out

let reset t =
  t.next_seq <- 0;
  t.pending <- [];
  t.flight <- [];
  t.ack_flight <- [];
  t.next_expected <- 0;
  Hashtbl.reset t.ooo
