(** Attaches one fault {!Channel} per secondary of an embedded
    {!Lsr_core.System} and aggregates their counters.

    {[
      let inj = Injector.create ~config:Channel.chaos ~seed:42 () in
      let sys =
        System.create ~secondaries:3 ~faults:(Injector.faults inj)
          ~guarantee:Session.Strong_session ()
      in
      ... run a workload, System.pump sys ...
      assert ((Injector.total inj).Channel.retransmitted > 0)
    ]}

    Each channel gets an independent random stream split from the injector's
    seed, so a whole multi-secondary fault schedule replays from one seed. *)

type t

(** [lineage], when enabled, is threaded to every channel the injector
    creates; channels are named [secondary-<i>], matching the system's site
    names, so injected faults land in the right site's journey entries. *)
val create :
  ?config:Channel.config -> ?lineage:Lsr_obs.Lineage.t -> seed:int -> unit -> t

(** [faults inj] is the factory to pass as [System.create ~faults]. Each
    call builds a fresh channel and registers it under the given secondary
    index. *)
val faults : t -> int -> Lsr_core.System.channel

(** The channel attached to secondary [i], if [faults] was invoked for it. *)
val channel : t -> int -> Channel.t option

(** All channels created so far, as [(secondary index, channel)]. *)
val channels : t -> (int * Channel.t) list

(** Counters summed over every channel. *)
val total : t -> Channel.stats
