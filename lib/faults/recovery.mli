(** Secondary crash recovery from a {e stale} backup plus log replay — the
    §3.4 path where the failed site does not get a fresh copy of the current
    primary state but rebuilds from an older checkpoint:

    + restore the database copy from a serialized backup
      ({!Lsr_storage.Mvcc.serialize}) taken at some earlier primary
      timestamp;
    + reseed [seq(DBsec)] to that timestamp ({!Lsr_core.Secondary.reseed_seq},
      §4's dummy-transaction rule applied at backup time);
    + replay the primary's log from the beginning
      ([Propagation.create ~from:0]), discarding transactions already
      reflected in the backup, and drain the refresh machinery.

    The replayed refresh transactions re-execute in primary timestamp order,
    so Theorem 3.1's ordering relationships hold over the replay and the
    recovered copy converges to the same state and [seq(DBsec)] as a replica
    that never crashed.

    Replay requires the log prefix to still exist: if the primary log has
    been truncated ({!Lsr_storage.Wal.truncate_before}, e.g. by
    [System.compact]), {!restore} raises rather than silently skipping
    records — a backup older than the truncation point cannot be recovered
    from. *)

open Lsr_storage
open Lsr_core

(** A serialized primary state together with the primary commit timestamp it
    reflects. *)
type backup = { state : string; ts : Timestamp.t }

(** [backup primary] checkpoints the primary's current committed state. *)
val backup : Primary.t -> backup

(** [replay_filter ~after records] keeps exactly the records a recovering
    site must re-execute: start/commit pairs of transactions whose commit
    timestamp exceeds [after]. Commits at or below [after] are already in
    the backup; aborted and still-in-flight transactions install nothing. *)
val replay_filter : after:Timestamp.t -> Txn_record.t list -> Txn_record.t list

(** [restore ~primary b] rebuilds a secondary from backup [b] by replaying
    the primary's whole log through a fresh propagator and draining. The
    result has the database state and [seq(DBsec)] of a replica that
    consumed the full log.
    @raise Invalid_argument when the log has been truncated (replay would
    skip records). *)
val restore : ?name:string -> primary:Primary.t -> backup -> Secondary.t
