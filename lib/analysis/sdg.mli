(** Static dependency graph (SDG) over transaction templates, after Fekete
    et al. ("Making snapshot isolation serializable") as summarized by
    Raad/Lahav/Vafeiadis's declarative SI characterization: anomalies are a
    property of the program, not the run.

    Nodes are templates; a directed edge [A -dep-> B] means instances of
    [A] and [B] {e can} stand in that dependency at run time, derived from
    symbolic footprint overlap:
    - [Ww]: a write of [A] may overlap a write of [B] (commit order can put
      [A] first);
    - [Wr]: a write of [A] may be read by [B];
    - [Rw] (anti-dependency): a read of [A] may be overwritten by [B] —
      under SI the only edge that can point "against" commit order.

    Ordered pairs include [A = B]: two concurrent instances of one template
    conflict with themselves exactly like two distinct templates do.

    A {e dangerous structure} is a cycle containing two {e consecutive} rw
    edges [T1 -rw-> T2 -rw-> T3] (T1 and T3 may coincide) plus a path from
    [T3] back to [T1]. Fekete's theorem: an SI history can only be
    non-serializable if its static graph has one, so a workload whose SDG is
    free of dangerous structures runs serializably under SI — and every
    cycle the dynamic {!Lsr_core.Checker} finds must be covered by one
    (asserted by the cross-validation tests). *)

type dep =
  | Ww
  | Wr
  | Rw

type edge = {
  src : string;
  dst : string;
  dep : dep;
  src_access : Symbolic.access;  (** the overlapping accesses witnessing the edge *)
  dst_access : Symbolic.access;
  vulnerable : bool;
      (** For [Rw] edges: can the edge connect two {e concurrent} committed
          instances? [false] when the reader also writes the same exact key
          it read (then any witnessing instance pair also write-conflicts,
          and first-committer-wins forbids both committing concurrently) —
          Fekete's reason TPC-C-style read-modify-write is safe. Always
          [true] for [Ww]/[Wr]. Only vulnerable rw edges participate in
          dangerous structures. *)
}

type t = {
  templates : Template.t list;
  edges : edge list;
}

val dep_name : dep -> string

(** Total order over dependency kinds ([Ww] < [Wr] < [Rw]) used to sort
    edge lists canonically. *)
val dep_rank : dep -> int

(** [build templates] — edges are returned sorted by [(src, dst, dep)], so
    every report derived from the graph is byte-stable.
    @raise Template.Duplicate_template when two templates share a name
    (they would silently merge into one node). *)
val build : Template.t list -> t

(** [restrict t names] keeps only nodes in [names] and edges between them
    (used to check that a dynamic cycle's templates already contain a
    dangerous structure). *)
val restrict : t -> string list -> t

(** A witnessed dangerous structure: the pivot's incoming and outgoing rw
    anti-dependencies and a closing path [T3 -> ... -> T1] (node names,
    endpoints included; a single shared node when T3 = T1). *)
type dangerous = {
  rw_in : edge;   (** T1 -rw-> pivot *)
  rw_out : edge;  (** pivot -rw-> T3 *)
  closing : string list;
}

(** All dangerous structures, one per distinct (T1, pivot, T3) triple,
    sorted by that triple. *)
val dangerous_structures : t -> dangerous list

(** Canonical id, e.g. ["check_x>check_y>check_x"] — the allowlist key. *)
val dangerous_id : dangerous -> string

(** Multi-line human-readable explanation naming the tables, keys and
    conditions responsible. *)
val explain : dangerous -> string

val pp_edge : Format.formatter -> edge -> unit
