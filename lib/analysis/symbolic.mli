(** Symbolic read/write sets of transaction templates.

    A template accesses {e regions} of tables rather than concrete rows: a
    pk-equality WHERE pins an exact key (possibly a named parameter), any
    other search condition is a predicate/range access, and WHERE TRUE is a
    whole-table scan. Predicate and scan accesses also stand for the
    {e predicate read} they perform — the executor evaluates the condition
    against every row of the table, so they conflict with any write to the
    table (which is also what makes them phantom-prone).

    Overlap ([may_overlap]) is deliberately conservative: it must
    over-approximate the conflicts any {e instance} of the templates can
    exhibit at run time, because the static dependency graph built from it
    ({!Sdg}) is required to cover every cycle the dynamic
    {!Lsr_core.Checker} can find. Two accesses are known disjoint only when
    they touch different tables or two distinct constant keys. *)

(** A symbolic primary key: a constant from the template text, or a named
    template parameter (written [':name'] in template SQL) that ranges over
    the whole key space. *)
type key =
  | Const of string
  | Param of string

(** The region of a table one access touches. [Range] carries the search
    condition for reporting; [Scan] is WHERE TRUE. *)
type region =
  | Exact of key
  | Range of Lsr_sql.Ast.cond
  | Scan

type access = {
  table : string;
  region : region;
}

(** Read and write accesses of a statement or template, deduplicated. *)
type footprint = {
  reads : access list;
  writes : access list;
}

val empty : footprint

(** [key_of_literal lit] is the symbolic key a pk-comparison literal denotes
    ([Text ":x"] is the parameter [x]; [Text]/[Int] constants normalize the
    way the executor derives storage keys). [None] for literals that cannot
    be a pk ([Float], [Bool], [Null]). *)
val key_of_literal : Lsr_sql.Ast.literal -> key option

(** [region_of_where cond] classifies a WHERE clause: [Exact] when the AND
    spine contains a pk-equality conjunct, [Scan] for TRUE, [Range]
    otherwise. *)
val region_of_where : Lsr_sql.Ast.cond -> region

(** Symbolic footprint of one statement. EXPLAIN accesses nothing. *)
val statement_footprint : Lsr_sql.Ast.statement -> footprint

(** Union with deduplication. *)
val union : footprint -> footprint -> footprint

(** [predicate_read a] — does the access evaluate a search condition over
    the table (phantom-prone), as opposed to an exact-key lookup? *)
val predicate_read : access -> bool

(** Conservative overlap test; [false] only when instances of the two
    accesses can never touch a common row. *)
val may_overlap : access -> access -> bool

(** Template parameters named anywhere in the statement ([':x'] literals),
    deduplicated in first-occurrence order. *)
val statement_params : Lsr_sql.Ast.statement -> string list

(** [bind binding stmt] substitutes parameter literals ([Text ":x"]) with
    their bound values, yielding a concrete executable statement.
    @raise Invalid_argument on an unbound parameter. *)
val bind :
  (string * Lsr_sql.Ast.literal) list -> Lsr_sql.Ast.statement ->
  Lsr_sql.Ast.statement

val pp_access : Format.formatter -> access -> unit
val access_to_string : access -> string
