(** Static workload planner: per-template guarantee/fence assignment plus
    the shard routing plan, derived entirely from the static analysis.

    The session-guarantee ladder prices a whole workload at its weakest
    safe level; the planner prices each template separately. A
    {!Session_pass.flag} binds to the read-only template that observes the
    inversion, so the minimal assignment gives every read-only template the
    weakest guarantee preventing {e its} flags (updates always run at the
    primary and get [Weak]), realized as a per-template
    [Session_seq] fence over an ambient [Weak] system — the mechanism PR 7
    built ({!Lsr_core.Session.fence}). The cross-validation tests replay
    both directions: the inferred plan produces clean checker reports, and
    any strictly weaker assignment at a flagged template reproduces the
    predicted inversion.

    Dangerous structures (write skew) are {e residual}: session guarantees
    order a session against itself and cannot prevent cross-session
    anomalies, so the plan lists them for allowlisting or
    first-committer-wins redesign rather than claiming coverage. *)

type assignment = {
  template : string;
  read_only : bool;
  level : Lsr_core.Session.guarantee;
      (** weakest guarantee preventing every flag observed at this template *)
  fence : Lsr_core.Session.fence option;
      (** [Some Session_seq] iff [level > Weak]: the static realization of
          the level on an ambient-[Weak] system *)
  flags : Session_pass.flag list;  (** the flags this assignment prevents *)
  why : string;  (** human-readable witness *)
}

type t = {
  workload : string;
  uniform : Lsr_core.Session.guarantee;
      (** the whole-workload weakest safe guarantee, for comparison *)
  assignments : assignment list;  (** sorted by template name *)
  residual : Sdg.dangerous list;
      (** dangerous structures no session assignment can prevent *)
  partition : Partition.t;
  shard_levels : (int * Lsr_core.Session.guarantee) list;
      (** per shard, the strongest level any read routed to it needs — the
          shard's session seq-vector obligation *)
}

(** [infer ?shards ~workload templates] runs the full pipeline (SDG,
    session pass, partition). [shards] defaults to {!Partition.analyze}'s.
    @raise Template.Duplicate_template as {!Sdg.build}. *)
val infer : ?shards:int -> workload:string -> Template.t list -> t

val assignment : t -> string -> assignment option

(** The fence the plan assigns to a template's reads ([None] = unfenced). *)
val fence_for : t -> string -> Lsr_core.Session.fence option

(** Guarantee price ladder: [Weak]=0, [Prefix_consistent]=1,
    [Strong_session]=2, [Strong]=3 — each step buys the reader another
    blocking condition. *)
val cost : Lsr_core.Session.guarantee -> int

(** Sum of {!cost} over read-only templates under the mixed plan. *)
val mixed_cost : t -> int

(** Same sum if every read-only template ran at [t.uniform]. *)
val uniform_cost : t -> int

(** Deterministic human-readable plan report (tables + witness lines). *)
val render : t -> string

(** Canonical JSON (keys sorted via {!Lsr_obs.Json.sort_keys}). *)
val to_json : t -> Lsr_obs.Json.t
