open Lsr_sql

type t = {
  name : string;
  statements : Ast.statement list;
  read_only : bool;
  footprint : Symbolic.footprint;
}

let make ~name statements =
  {
    name;
    statements;
    read_only = List.for_all Executor.is_read_only statements;
    footprint =
      List.fold_left
        (fun acc stmt -> Symbolic.union acc (Symbolic.statement_footprint stmt))
        Symbolic.empty statements;
  }

let of_sql ~name sqls =
  Result.map (make ~name) (Sql.parse_script sqls)

let of_sql_exn ~name sqls =
  match of_sql ~name sqls with
  | Ok t -> t
  | Error e ->
    failwith (Printf.sprintf "template %s: %s" name (Sql.error_message e))

let kv_table = "(kv)"

let kv_access key = { Symbolic.table = kv_table; region = Symbolic.Exact key }

let of_ops ~name ops =
  let footprint =
    List.fold_left
      (fun acc op ->
        match op with
        | Lsr_workload.Txn_gen.Read_op k ->
          Symbolic.union acc
            { Symbolic.reads = [ kv_access (Symbolic.Const k) ]; writes = [] }
        | Lsr_workload.Txn_gen.Write_op (k, _) ->
          Symbolic.union acc
            { Symbolic.reads = []; writes = [ kv_access (Symbolic.Const k) ] })
      Symbolic.empty ops
  in
  let read_only =
    List.for_all
      (function
        | Lsr_workload.Txn_gen.Read_op _ -> true
        | Lsr_workload.Txn_gen.Write_op _ -> false)
      ops
  in
  { name; statements = []; read_only; footprint }

(* The generator draws every key independently from one shared (possibly
   skewed) key space, so symbolically each access is a free parameter: any
   two instances may collide on any key. *)
let txn_gen_templates () =
  [
    {
      name = "txn_gen_read_only";
      statements = [];
      read_only = true;
      footprint =
        { Symbolic.reads = [ kv_access (Symbolic.Param "rkey") ]; writes = [] };
    };
    {
      name = "txn_gen_update";
      statements = [];
      read_only = false;
      footprint =
        {
          Symbolic.reads = [ kv_access (Symbolic.Param "rkey") ];
          writes = [ kv_access (Symbolic.Param "wkey") ];
        };
    };
  ]

exception Duplicate_template of string

(* Template names are SDG node identities: two templates sharing a name
   would silently merge into one node and the analysis would reason about a
   program that does not exist. *)
let check_distinct templates =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if Hashtbl.mem seen t.name then raise (Duplicate_template t.name);
      Hashtbl.replace seen t.name ())
    templates

let params t =
  List.fold_left
    (fun acc stmt ->
      List.fold_left
        (fun acc p -> if List.mem p acc then acc else p :: acc)
        acc
        (Symbolic.statement_params stmt))
    [] t.statements
  |> List.rev

let instantiate t binding = List.map (Symbolic.bind binding) t.statements

let pp ppf t =
  Format.fprintf ppf "%s (%s): reads {%s} writes {%s}" t.name
    (if t.read_only then "read-only" else "update")
    (String.concat ", " (List.map Symbolic.access_to_string t.footprint.Symbolic.reads))
    (String.concat ", " (List.map Symbolic.access_to_string t.footprint.Symbolic.writes))
