open Lsr_core

type assignment = {
  template : string;
  read_only : bool;
  level : Session.guarantee;
  fence : Session.fence option;
  flags : Session_pass.flag list;
  why : string;
}

type t = {
  workload : string;
  uniform : Session.guarantee;
  assignments : assignment list;
  residual : Sdg.dangerous list;
  partition : Partition.t;
  shard_levels : (int * Session.guarantee) list;
}

let cost = function
  | Session.Weak -> 0
  | Session.Prefix_consistent -> 1
  | Session.Strong_session -> 2
  | Session.Strong -> 3

(* The only fence a static plan can hand out is [Session_seq]: [Exact] and
   [Max_age] thresholds are run-time values. [Session_seq]-fencing every
   read of a template is exactly ALG-STRONG-SESSION-SI for that template
   (Session.note_read keeps the read floor for fenced reads), so it
   realizes both Prefix_consistent and Strong_session levels — at
   Prefix_consistent it is slightly stronger than required, never weaker. *)
let fence_of_level = function
  | Session.Weak -> None
  | Session.Prefix_consistent | Session.Strong_session | Session.Strong ->
    Some Session.Session_seq

let why_of_flags = function
  | [] -> "no observable inversion reaches this template"
  | flags ->
    String.concat "; "
      (List.map
         (fun (f : Session_pass.flag) ->
           Printf.sprintf "%s after %s needs %s (%s)"
             (Session_pass.kind_name f.Session_pass.kind)
             f.Session_pass.earlier
             (Session.guarantee_name f.Session_pass.needs)
             f.Session_pass.witness)
         flags)

let infer ?shards ~workload templates =
  let report = Analyzer.run ~guarantee:Session.Weak ~workload templates in
  let all_flags = report.Analyzer.session_flags in
  let uniform = Session_pass.needed_guarantee all_flags in
  let assignments =
    List.map
      (fun (tm : Template.t) ->
        if tm.Template.read_only then begin
          (* A flag binds to the read-only template that observes the
             inversion ([later]); its level is the weakest guarantee
             preventing every inversion observable through it. *)
          let flags =
            List.filter
              (fun (f : Session_pass.flag) -> f.Session_pass.later = tm.Template.name)
              all_flags
          in
          let level = Session_pass.needed_guarantee flags in
          {
            template = tm.Template.name;
            read_only = true;
            level;
            fence = fence_of_level level;
            flags;
            why = why_of_flags flags;
          }
        end
        else
          {
            template = tm.Template.name;
            read_only = false;
            level = Session.Weak;
            fence = None;
            flags = [];
            why =
              "update template: executes at the primary, ordered by commit \
               timestamps regardless of session guarantee";
          })
      templates
    |> List.sort (fun a b -> String.compare a.template b.template)
  in
  let partition = Partition.analyze ?shards templates in
  let shard_levels =
    List.init (Partition.shard_count partition) (fun sid ->
        let level =
          List.fold_left
            (fun acc a ->
              match Partition.route partition a.template with
              | Some r when List.mem sid r.Partition.read_shards ->
                if cost a.level > cost acc then a.level else acc
              | _ -> acc)
            Session.Weak assignments
        in
        (sid, level))
  in
  {
    workload;
    uniform;
    assignments;
    residual = report.Analyzer.dangerous;
    partition;
    shard_levels;
  }

let assignment t name = List.find_opt (fun a -> a.template = name) t.assignments

let fence_for t name = Option.bind (assignment t name) (fun a -> a.fence)

let readers t = List.filter (fun a -> a.read_only) t.assignments

let mixed_cost t = List.fold_left (fun acc a -> acc + cost a.level) 0 (readers t)

let uniform_cost t = List.length (readers t) * cost t.uniform

let level_cell a =
  match a.fence with
  | None -> Session.guarantee_name a.level
  | Some f ->
    Printf.sprintf "%s (fence %s)" (Session.guarantee_name a.level)
      (Session.fence_to_string f)

let render t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "== plan for workload %s ==" t.workload;
  line "uniform weakest-safe guarantee: %s (cost %d); mixed plan cost %d"
    (Session.guarantee_name t.uniform)
    (uniform_cost t) (mixed_cost t);
  line "assignments:";
  Buffer.add_string b
    (Lsr_stats.Table_fmt.render
       ~header:[ "template"; "class"; "assignment"; "flags" ]
       (List.map
          (fun a ->
            [
              a.template;
              (if a.read_only then "read-only" else "update");
              level_cell a;
              string_of_int (List.length a.flags);
            ])
          t.assignments));
  Buffer.add_char b '\n';
  line "why:";
  List.iter (fun a -> line "  %s: %s" a.template a.why) t.assignments;
  (match t.residual with
  | [] -> line "residual dangerous structures: none"
  | ds ->
    line
      "residual dangerous structures: %d — session guarantees order a \
       session against itself and cannot prevent cross-session write skew; \
       allowlist deliberately or defuse via first-committer-wins \
       read-modify-write"
      (List.length ds);
    List.iter (fun d -> line "  %s" (Sdg.dangerous_id d)) ds);
  line "partition: %d shard(s) requested, %d produced"
    t.partition.Partition.requested
    (Partition.shard_count t.partition);
  List.iteri
    (fun i atoms ->
      line "  shard %d: %s" i
        (String.concat ", " (List.map Partition.atom_name atoms)))
    t.partition.Partition.shards;
  line "routing:";
  let ids l = String.concat "," (List.map string_of_int l) in
  Buffer.add_string b
    (Lsr_stats.Table_fmt.render
       ~header:[ "template"; "span"; "reads"; "writes" ]
       (List.map
          (fun (r : Partition.route) ->
            [
              r.Partition.template;
              (if r.Partition.cross_shard then "cross-shard" else "single-shard");
              ids r.Partition.read_shards;
              ids r.Partition.write_shards;
            ])
          t.partition.Partition.routes));
  Buffer.add_char b '\n';
  line "cross-shard updates: %s"
    (match t.partition.Partition.cross_shard_updates with
    | [] -> "none"
    | l -> String.concat ", " l);
  line "cross-shard reads: %s"
    (match t.partition.Partition.cross_shard_reads with
    | [] -> "none"
    | l -> String.concat ", " l);
  line "per-shard seq-vector requirements:";
  List.iter
    (fun (sid, level) ->
      line "  shard %d: %s%s" sid
        (Session.guarantee_name level)
        (if cost level > 0 then " (maintain per-session sequence entries)"
         else " (no session bookkeeping needed)"))
    t.shard_levels;
  Buffer.contents b

let to_json t =
  let open Lsr_obs.Json in
  let assignment_json a =
    Obj
      [
        ("template", Str a.template);
        ("read_only", Bool a.read_only);
        ("level", Str (Session.guarantee_name a.level));
        ( "fence",
          match a.fence with
          | None -> Null
          | Some f -> Str (Session.fence_to_string f) );
        ("flags", Num (float_of_int (List.length a.flags)));
        ("why", Str a.why);
      ]
  in
  let route_json (r : Partition.route) =
    Obj
      [
        ("template", Str r.Partition.template);
        ("read_only", Bool r.Partition.read_only);
        ( "read_shards",
          Arr (List.map (fun i -> Num (float_of_int i)) r.Partition.read_shards) );
        ( "write_shards",
          Arr (List.map (fun i -> Num (float_of_int i)) r.Partition.write_shards)
        );
        ("cross_shard", Bool r.Partition.cross_shard);
      ]
  in
  sort_keys
    (Obj
       [
         ("workload", Str t.workload);
         ("uniform_guarantee", Str (Session.guarantee_name t.uniform));
         ("uniform_cost", Num (float_of_int (uniform_cost t)));
         ("mixed_cost", Num (float_of_int (mixed_cost t)));
         ("assignments", Arr (List.map assignment_json t.assignments));
         ( "residual_dangerous",
           Arr (List.map (fun d -> Str (Sdg.dangerous_id d)) t.residual) );
         ( "partition",
           Obj
             [
               ("requested", Num (float_of_int t.partition.Partition.requested));
               ( "shards",
                 Arr
                   (List.map
                      (fun atoms ->
                        Arr
                          (List.map
                             (fun a -> Str (Partition.atom_name a))
                             atoms))
                      t.partition.Partition.shards) );
               ("routes", Arr (List.map route_json t.partition.Partition.routes));
               ( "cross_shard_updates",
                 Arr
                   (List.map
                      (fun s -> Str s)
                      t.partition.Partition.cross_shard_updates) );
               ( "cross_shard_reads",
                 Arr
                   (List.map
                      (fun s -> Str s)
                      t.partition.Partition.cross_shard_reads) );
             ] );
         ( "shard_levels",
           Arr
             (List.map
                (fun (sid, level) ->
                  Obj
                    [
                      ("shard", Num (float_of_int sid));
                      ("level", Str (Session.guarantee_name level));
                    ])
                t.shard_levels) );
       ])
