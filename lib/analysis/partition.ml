type atom = {
  table : string;
  key : string option;
}

let atom_name a =
  match a.key with
  | Some k -> Printf.sprintf "%s[%s]" a.table k
  | None -> Printf.sprintf "%s[rest]" a.table

let compare_atom a b = compare (a.table, a.key) (b.table, b.key)

type route = {
  template : string;
  read_only : bool;
  read_shards : int list;
  write_shards : int list;
  shards : int list;
  cross_shard : bool;
}

type t = {
  requested : int;
  shards : atom list list;
  routes : route list;
  cross_shard_updates : string list;
  cross_shard_reads : string list;
}

(* Atom universe: per table, every exact constant key any template names,
   plus one residual atom when any access is not an exact constant (a
   parameter, predicate or scan can land on keys no template spells out).
   Tables nobody parameterizes or scans get no residual atom — their key
   space is exactly the named constants. *)
let atoms_of_templates templates =
  let tables : (string, string list * bool) Hashtbl.t = Hashtbl.create 16 in
  let note (a : Symbolic.access) =
    let keys, residual =
      Option.value (Hashtbl.find_opt tables a.Symbolic.table) ~default:([], false)
    in
    let entry =
      match a.Symbolic.region with
      | Symbolic.Exact (Symbolic.Const k) ->
        ((if List.mem k keys then keys else k :: keys), residual)
      | Symbolic.Exact (Symbolic.Param _) | Symbolic.Range _ | Symbolic.Scan ->
        (keys, true)
    in
    Hashtbl.replace tables a.Symbolic.table entry
  in
  List.iter
    (fun (tm : Template.t) ->
      List.iter note tm.Template.footprint.Symbolic.reads;
      List.iter note tm.Template.footprint.Symbolic.writes)
    templates;
  Hashtbl.fold
    (fun table (keys, residual) acc ->
      let consts = List.map (fun k -> { table; key = Some k }) keys in
      let rest = if residual then [ { table; key = None } ] else [] in
      rest @ consts @ acc)
    tables []
  |> List.sort compare_atom

(* The atoms an access may touch: an exact constant is itself; anything
   else (parameter, predicate, scan) may touch every atom of its table —
   the same conservative direction as {!Symbolic.may_overlap}. *)
let atoms_of_access all (a : Symbolic.access) =
  match a.Symbolic.region with
  | Symbolic.Exact (Symbolic.Const k) -> [ { table = a.Symbolic.table; key = Some k } ]
  | Symbolic.Exact (Symbolic.Param _) | Symbolic.Range _ | Symbolic.Scan ->
    List.filter (fun atom -> atom.table = a.Symbolic.table) all

let dedup_atoms atoms =
  List.sort_uniq compare_atom atoms

let footprint_atoms all accesses =
  dedup_atoms (List.concat_map (atoms_of_access all) accesses)

(* Cost of splitting a template across two shard candidates: a cross-shard
   update transaction needs a commit protocol, a cross-shard read only a
   consistent multi-shard snapshot — updates dominate the objective. *)
let template_weight (tm : Template.t) = if tm.Template.read_only then 1 else 1000

let analyze ?(shards = 2) templates =
  let requested = max 1 shards in
  let all = atoms_of_templates templates in
  let touched =
    List.map
      (fun (tm : Template.t) ->
        ( tm,
          footprint_atoms all
            (tm.Template.footprint.Symbolic.reads
            @ tm.Template.footprint.Symbolic.writes) ))
      templates
  in
  (* Greedy agglomerative partition: start one shard per atom, repeatedly
     merge the pair of shards the heaviest set of templates straddles
     (ties: lowest pair in the current order). When no template straddles
     any pair but more shards remain than requested, merge the two smallest
     shards — zero-cost merges, for balance only. Deterministic throughout:
     the atom universe is sorted and every tie-break is positional. *)
  let parts = ref (List.map (fun a -> [ a ]) all) in
  let straddle_weight p q =
    List.fold_left
      (fun acc (tm, atoms) ->
        let hits part = List.exists (fun a -> List.mem a atoms) part in
        if hits p && hits q then acc + template_weight tm else acc)
      0 touched
  in
  while List.length !parts > requested do
    let arr = Array.of_list !parts in
    let n = Array.length arr in
    let best = ref (-1, 0, 1) in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let w = straddle_weight arr.(i) arr.(j) in
        let bw, _, _ = !best in
        if w > bw then best := (w, i, j)
      done
    done;
    let w, i, j = !best in
    let i, j =
      if w > 0 then (i, j)
      else begin
        (* No interference left: merge the two smallest shards. *)
        let size k = List.length arr.(k) in
        let best = ref (max_int, 0, 1) in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            let s = size i + size j in
            let bs, _, _ = !best in
            if s < bs then best := (s, i, j)
          done
        done;
        let _, i, j = !best in
        (i, j)
      end
    in
    let merged = List.sort compare_atom (arr.(i) @ arr.(j)) in
    parts :=
      Array.to_list arr
      |> List.mapi (fun k part -> (k, part))
      |> List.filter_map (fun (k, part) ->
             if k = j then None else if k = i then Some merged else Some part)
  done;
  let shards =
    List.map (List.sort compare_atom) !parts
    |> List.sort (fun a b ->
           match (a, b) with
           | x :: _, y :: _ -> compare_atom x y
           | _, _ -> compare a b)
  in
  let shard_of atom =
    let rec go i = function
      | [] -> invalid_arg ("Partition.shard_of: unknown atom " ^ atom_name atom)
      | part :: rest -> if List.mem atom part then i else go (i + 1) rest
    in
    go 0 shards
  in
  let shard_ids accesses =
    footprint_atoms all accesses
    |> List.map shard_of
    |> List.sort_uniq compare
  in
  let routes =
    List.map
      (fun (tm : Template.t) ->
        let read_shards = shard_ids tm.Template.footprint.Symbolic.reads in
        let write_shards = shard_ids tm.Template.footprint.Symbolic.writes in
        let shards = List.sort_uniq compare (read_shards @ write_shards) in
        {
          template = tm.Template.name;
          read_only = tm.Template.read_only;
          read_shards;
          write_shards;
          shards;
          cross_shard = List.length shards > 1;
        })
      templates
    |> List.sort (fun a b -> String.compare a.template b.template)
  in
  let cross kind =
    List.filter_map
      (fun r -> if r.cross_shard && r.read_only = kind then Some r.template else None)
      routes
  in
  {
    requested;
    shards;
    routes;
    cross_shard_updates = cross false;
    cross_shard_reads = cross true;
  }

let shard_count t = List.length t.shards

let route t name = List.find_opt (fun r -> r.template = name) t.routes
