(** The analyzer pipeline: templates -> symbolic footprints -> static
    dependency graph -> dangerous structures + session-guarantee flags,
    packaged as a single report the CLI, the bench target and the
    cross-validation tests all consume.

    The report is an over-approximation with a soundness contract, checked
    against the dynamic layer by the tests:
    - every serialization cycle {!Lsr_core.Checker.serialization_cycle} can
      find on instances of the templates is {!covers}-ed by a statically
      reported dangerous structure;
    - every data-dependent session inversion observable under weak SI
      corresponds to a session flag whose [needs] guarantee prevents it. *)

type report = {
  workload : string;
  guarantee : Lsr_core.Session.guarantee;
      (** the guarantee the session pass judges flags against *)
  sdg : Sdg.t;
  dangerous : Sdg.dangerous list;
  session_flags : Session_pass.flag list;
  unprevented : Session_pass.flag list;
      (** session flags not prevented at [guarantee] *)
}

(** [run ?guarantee ~workload templates] performs the full static analysis.
    [guarantee] defaults to {!Lsr_core.Session.Weak} — plain lazy SI with no
    session ordering, the paper's baseline. *)
val run :
  ?guarantee:Lsr_core.Session.guarantee ->
  workload:string ->
  Template.t list ->
  report

(** [covers report names] — do the templates [names] already contain a
    dangerous structure among themselves? The cross-validation harness calls
    this with the template names participating in a dynamic cycle: soundness
    demands it be [true] for every cycle the dynamic checker reports. *)
val covers : report -> string list -> bool

(** Canonical ids of the report's dangerous structures (allowlist keys),
    each prefixed with the workload name, e.g.
    ["write_skew:check_then_sign_off_x>check_then_sign_off_y>check_then_sign_off_x"]. *)
val dangerous_ids : report -> string list

(** Deterministic human-readable report. *)
val render : report -> string

(** The report as JSON for {!Lsr_obs.Json.to_string} export. *)
val to_json : report -> Lsr_obs.Json.t
