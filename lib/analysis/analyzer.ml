open Lsr_core

type report = {
  workload : string;
  guarantee : Session.guarantee;
  sdg : Sdg.t;
  dangerous : Sdg.dangerous list;
  session_flags : Session_pass.flag list;
  unprevented : Session_pass.flag list;
}

let run ?(guarantee = Session.Weak) ~workload templates =
  let sdg = Sdg.build templates in
  let dangerous = Sdg.dangerous_structures sdg in
  let session_flags = Session_pass.analyze sdg in
  let unprevented = Session_pass.unprevented guarantee session_flags in
  { workload; guarantee; sdg; dangerous; session_flags; unprevented }

let covers report names =
  Sdg.dangerous_structures (Sdg.restrict report.sdg names) <> []

let dangerous_ids report =
  List.map
    (fun d -> Printf.sprintf "%s:%s" report.workload (Sdg.dangerous_id d))
    report.dangerous

let render report =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "== workload %s (analyzed at %s) ==" report.workload
    (Session.guarantee_name report.guarantee);
  line "templates (%d):" (List.length report.sdg.Sdg.templates);
  List.iter
    (fun (t : Template.t) -> line "  %s" (Format.asprintf "%a" Template.pp t))
    report.sdg.Sdg.templates;
  line "static dependency graph (%d edges):"
    (List.length report.sdg.Sdg.edges);
  List.iter
    (fun e -> line "  %s" (Format.asprintf "%a" Sdg.pp_edge e))
    report.sdg.Sdg.edges;
  (match report.dangerous with
  | [] ->
    line
      "dangerous structures: none — every history of this workload is \
       serializable under SI"
  | ds ->
    line "dangerous structures: %d" (List.length ds);
    List.iter (fun d -> line "%s" (Sdg.explain d)) ds);
  (match report.session_flags with
  | [] -> line "session-guarantee pass: no observable inversions"
  | flags ->
    line "session-guarantee pass: %d potential inversion(s); weakest safe \
          guarantee: %s"
      (List.length flags)
      (Session.guarantee_name (Session_pass.needed_guarantee flags));
    List.iter
      (fun f -> line "  %s" (Format.asprintf "%a" Session_pass.pp_flag f))
      flags;
    match report.unprevented with
    | [] ->
      line "  all prevented at %s" (Session.guarantee_name report.guarantee)
    | u ->
      line "  UNPREVENTED at %s: %d" (Session.guarantee_name report.guarantee)
        (List.length u));
  Buffer.contents b

let region_json = function
  | Symbolic.Exact (Symbolic.Const k) ->
    Lsr_obs.Json.Obj [ ("exact", Lsr_obs.Json.Str k) ]
  | Symbolic.Exact (Symbolic.Param p) ->
    Lsr_obs.Json.Obj [ ("param", Lsr_obs.Json.Str p) ]
  | Symbolic.Range c ->
    Lsr_obs.Json.Obj
      [ ("range", Lsr_obs.Json.Str (Format.asprintf "%a" Lsr_sql.Ast.pp_cond c)) ]
  | Symbolic.Scan -> Lsr_obs.Json.Str "scan"

let access_json (a : Symbolic.access) =
  Lsr_obs.Json.Obj
    [
      ("table", Lsr_obs.Json.Str a.Symbolic.table);
      ("region", region_json a.Symbolic.region);
    ]

let to_json report =
  let open Lsr_obs.Json in
  let template_json (t : Template.t) =
    Obj
      [
        ("name", Str t.name);
        ("read_only", Bool t.read_only);
        ("reads", Arr (List.map access_json t.footprint.Symbolic.reads));
        ("writes", Arr (List.map access_json t.footprint.Symbolic.writes));
      ]
  in
  let edge_json (e : Sdg.edge) =
    Obj
      [
        ("src", Str e.Sdg.src);
        ("dst", Str e.Sdg.dst);
        ("dep", Str (Sdg.dep_name e.Sdg.dep));
        ("vulnerable", Bool e.Sdg.vulnerable);
        ("src_access", access_json e.Sdg.src_access);
        ("dst_access", access_json e.Sdg.dst_access);
      ]
  in
  let dangerous_json d =
    Obj
      [
        ("id", Str (Sdg.dangerous_id d));
        ( "closing",
          Arr (List.map (fun n -> Str n) d.Sdg.closing) );
        ("explanation", Str (Sdg.explain d));
      ]
  in
  let flag_json (f : Session_pass.flag) =
    Obj
      [
        ("kind", Str (Session_pass.kind_name f.Session_pass.kind));
        ("earlier", Str f.Session_pass.earlier);
        ("later", Str f.Session_pass.later);
        ("needs", Str (Session.guarantee_name f.Session_pass.needs));
        ("witness", Str f.Session_pass.witness);
      ]
  in
  sort_keys
  @@ Obj
    [
      ("workload", Str report.workload);
      ("guarantee", Str (Session.guarantee_name report.guarantee));
      ("templates", Arr (List.map template_json report.sdg.Sdg.templates));
      ("edges", Arr (List.map edge_json report.sdg.Sdg.edges));
      ("dangerous", Arr (List.map dangerous_json report.dangerous));
      ("session_flags", Arr (List.map flag_json report.session_flags));
      ( "needed_guarantee",
        Str
          (Session.guarantee_name
             (Session_pass.needed_guarantee report.session_flags)) );
      ("unprevented", Num (float_of_int (List.length report.unprevented)));
    ]
