(** Transaction templates: the static unit of analysis.

    A template is a named transaction program — a list of SQL statements
    whose literals may be {e parameters} (TEXT literals written [':name']) —
    or a raw key-value program derived from {!Lsr_workload.Txn_gen}. Each
    carries its symbolic {!Symbolic.footprint} and its routing class
    (read-only templates run at a secondary, update templates at the
    primary), which is everything {!Sdg} and {!Session_pass} consume. *)

type t = {
  name : string;
  statements : Lsr_sql.Ast.statement list;
  read_only : bool;  (** routed to a secondary when analyzed for placement *)
  footprint : Symbolic.footprint;
}

(** [make ~name stmts] derives routing and footprint from the statements. *)
val make : name:string -> Lsr_sql.Ast.statement list -> t

(** [of_sql ~name sqls] parses each statement ({!Lsr_sql.Sql.parse_script});
    the typed error names the offending statement. *)
val of_sql : name:string -> string list -> (t, Lsr_sql.Sql.error) result

(** @raise Failure on a malformed statement (carries the typed error's
    message); for statically-known template text. *)
val of_sql_exn : name:string -> string list -> t

(** [of_ops ~name ops] is the template of one concrete
    {!Lsr_workload.Txn_gen} operation list: exact-key accesses to the shared
    key-value namespace (table {!kv_table}). *)
val of_ops : name:string -> Lsr_workload.Txn_gen.op list -> t

(** The two symbolic templates of the {!Lsr_workload.Txn_gen} generator —
    a read-only and an update transaction over the shared key space, every
    key a free parameter (so any two instances may collide). *)
val txn_gen_templates : unit -> t list

(** Table name under which raw key-value accesses are modelled. *)
val kv_table : string

(** Raised by {!check_distinct} with the offending name. Template names are
    SDG node identities, so a duplicate would silently merge two distinct
    programs into one node. *)
exception Duplicate_template of string

(** [check_distinct ts] validates that template names are pairwise distinct.
    Called by {!Sdg.build} (and therefore by every analyzer entry point).
    @raise Duplicate_template on the first repeated name. *)
val check_distinct : t list -> unit

(** Parameters of the template, first occurrence order. *)
val params : t -> string list

(** [instantiate t binding] substitutes parameters, yielding executable
    statements.
    @raise Invalid_argument on an unbound parameter. *)
val instantiate :
  t -> (string * Lsr_sql.Ast.literal) list -> Lsr_sql.Ast.statement list

val pp : Format.formatter -> t -> unit
