(** Replication-aware session-guarantee pass.

    Placement is the paper's: update templates execute at the primary,
    read-only templates at the client's (possibly stale, possibly changing)
    secondary. Under plain weak SI nothing orders a session's reads against
    its own earlier transactions, so an rw anti-dependency from a read-only
    template to an update template can manifest as a {e transaction
    inversion} (Definitions 2.1/2.2). This pass enumerates, per template
    pair, the inversions the workload's data flow makes observable, and the
    weakest session guarantee that prevents each:

    - [Update_then_read]: the session commits update [U], then runs
      read-only [R] whose reads overlap [U]'s writes ([R -rw-> U] in the
      {!Sdg}). At a lagging secondary [R] misses the session's own write —
      the paper's bookstore anomaly. Prevented by PCSI and anything
      stronger.
    - [Read_then_read]: the session runs read-only [R1], then read-only
      [R2] whose reads some update template can overwrite — after migrating
      to a more stale secondary, [R2] observes an older snapshot than [R1]
      pinned. PCSI does {e not} prevent this (it only orders reads after
      the session's own updates); ALG-STRONG-SESSION-SI does. A workload
      with such pairs {e needs} strong session SI.

    Flags are data-aware: pairs whose footprints cannot overlap any
    update's writes are not reported, because the staleness is then
    unobservable through data (the dynamic checker may still time-order
    such pairs; the cross-validation tests therefore filter dynamic
    inversions down to data-dependent ones before comparing). *)

type kind =
  | Update_then_read
  | Read_then_read

type flag = {
  kind : kind;
  earlier : string;  (** template the session ran first *)
  later : string;    (** read-only template that observes the inversion *)
  witness : string;  (** the data responsible, human-readable *)
  needs : Lsr_core.Session.guarantee;  (** weakest level preventing it *)
}

(** All flags of the workload's SDG, sorted by (kind, earlier, later). *)
val analyze : Sdg.t -> flag list

(** Flags not prevented by running the system at [guarantee] — empty at
    [Strong_session] and above. *)
val unprevented : Lsr_core.Session.guarantee -> flag list -> flag list

(** Weakest guarantee with no unprevented flag. *)
val needed_guarantee : flag list -> Lsr_core.Session.guarantee

val kind_name : kind -> string
val pp_flag : Format.formatter -> flag -> unit
