(** Static shard-partition analysis over symbolic footprints.

    The unit of placement is a {e key region atom}: a [(table, key)] pair
    for every exact constant key any template names, plus one residual
    atom per table whose key space is also reached through parameters,
    predicates or scans. Two atoms {e interfere} when some template may
    touch both in one transaction; splitting them across shards makes that
    template cross-shard. The analysis partitions the atoms into at most
    [shards] shards, greedily minimizing cross-shard {e update} templates
    first (they need a commit protocol; cross-shard reads only need a
    multi-shard snapshot), and emits a routing plan: which shards each
    template touches and whether it is single- or cross-shard.

    This is the static half of ROADMAP item 2 (partial replication):
    per-shard sequence vectors only work if the planner can say which
    templates stay single-shard. *)

type atom = {
  table : string;
  key : string option;  (** [None] = the table's residual key region *)
}

(** ["books['k1']"] or ["books[rest]"]. *)
val atom_name : atom -> string

val compare_atom : atom -> atom -> int

type route = {
  template : string;
  read_only : bool;
  read_shards : int list;
  write_shards : int list;
  shards : int list;  (** union of the two, sorted *)
  cross_shard : bool;
}

type t = {
  requested : int;  (** shard budget asked for (≥ 1) *)
  shards : atom list list;
      (** the partition, each shard's atoms sorted; shards sorted by first
          atom. May be shorter than [requested] when there are fewer atoms. *)
  routes : route list;  (** sorted by template name *)
  cross_shard_updates : string list;
  cross_shard_reads : string list;
}

(** [analyze ~shards templates] (default [shards = 2]). Deterministic:
    same templates, same partition, byte for byte. *)
val analyze : ?shards:int -> Template.t list -> t

val shard_count : t -> int
val route : t -> string -> route option
