(** Built-in template workloads: the TPC-W-derived bookstore mix the
    examples and the simulator's narrative use, plus the two calibration
    workloads the analyzer is validated against — the classic write-skew
    pair (must be flagged) and a pure read-only + disjoint-writer mix (must
    come back clean) — and the symbolic {!Lsr_workload.Txn_gen} pair. *)

val tpcw : unit -> Template.t list
val write_skew : unit -> Template.t list
val disjoint : unit -> Template.t list
val txn_gen : unit -> Template.t list

(** Read-heavy mix with exactly one inversion-prone reader ([read_inbox],
    raced by [post_message]) and two readers of never-written regions: the
    showcase for mixed per-template fence assignment ({!Plan}). *)
val fence_mix : unit -> Template.t list

(** All of the above, keyed by workload name, in report order. *)
val workloads : unit -> (string * Template.t list) list

(** [find name] is the workload of that name. *)
val find : string -> Template.t list option
