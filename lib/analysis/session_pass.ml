open Lsr_core

type kind =
  | Update_then_read
  | Read_then_read

type flag = {
  kind : kind;
  earlier : string;
  later : string;
  witness : string;
  needs : Session.guarantee;
}

let kind_name = function
  | Update_then_read -> "update-then-read"
  | Read_then_read -> "read-then-read"

let analyze (sdg : Sdg.t) =
  let read_only name =
    List.exists
      (fun (t : Template.t) -> t.name = name && t.read_only)
      sdg.templates
  in
  let is_update name =
    List.exists
      (fun (t : Template.t) -> t.name = name && not t.read_only)
      sdg.templates
  in
  (* rw edges out of a read-only template into an update template: the
     reader can miss that writer's effects at a stale secondary. *)
  let stale_reads =
    List.filter
      (fun (e : Sdg.edge) ->
        e.dep = Sdg.Rw && read_only e.src && is_update e.dst)
      sdg.edges
  in
  let update_then_read =
    List.map
      (fun (e : Sdg.edge) ->
        {
          kind = Update_then_read;
          earlier = e.dst;
          later = e.src;
          witness =
            Printf.sprintf "%s commits %s; a stale secondary can serve %s an older %s"
              e.dst
              (Symbolic.access_to_string e.dst_access)
              e.src
              (Symbolic.access_to_string e.src_access);
          needs = Session.Prefix_consistent;
        })
      stale_reads
  in
  (* Pairs of read-only templates where the later one's reads are mutable:
     after migration the session can observe snapshots moving backwards,
     which only the read floor of ALG-STRONG-SESSION-SI rules out. *)
  let readers =
    List.filter (fun (t : Template.t) -> t.read_only) sdg.templates
  in
  let read_then_read =
    List.concat_map
      (fun (r2 : Template.t) ->
        match List.find_opt (fun (e : Sdg.edge) -> e.src = r2.name) stale_reads with
        | None -> []
        | Some witness_edge ->
          List.map
            (fun (r1 : Template.t) ->
              {
                kind = Read_then_read;
                earlier = r1.name;
                later = r2.name;
                witness =
                  Printf.sprintf
                    "after migrating to a more stale secondary, %s can observe %s older than the snapshot %s pinned (%s mutates it)"
                    r2.name
                    (Symbolic.access_to_string witness_edge.Sdg.src_access)
                    r1.name witness_edge.Sdg.dst;
                needs = Session.Strong_session;
              })
            readers)
      readers
  in
  List.sort
    (fun a b -> compare (a.kind, a.earlier, a.later) (b.kind, b.earlier, b.later))
    (update_then_read @ read_then_read)

let prevented guarantee flag =
  match (guarantee, flag.needs) with
  | Session.Weak, _ -> false
  | Session.Prefix_consistent, Session.Prefix_consistent -> true
  | Session.Prefix_consistent, _ -> false
  | (Session.Strong_session | Session.Strong), _ -> true

let unprevented guarantee flags =
  List.filter (fun f -> not (prevented guarantee f)) flags

let needed_guarantee flags =
  if List.exists (fun f -> f.needs = Session.Strong_session) flags then
    Session.Strong_session
  else if flags <> [] then Session.Prefix_consistent
  else Session.Weak

let pp_flag ppf f =
  Format.fprintf ppf "[%s] %s then %s needs >= %s: %s" (kind_name f.kind)
    f.earlier f.later
    (Session.guarantee_name f.needs)
    f.witness
