type dep =
  | Ww
  | Wr
  | Rw

type edge = {
  src : string;
  dst : string;
  dep : dep;
  src_access : Symbolic.access;
  dst_access : Symbolic.access;
  vulnerable : bool;
}

type t = {
  templates : Template.t list;
  edges : edge list;
}

let dep_name = function Ww -> "ww" | Wr -> "wr" | Rw -> "rw"

(* An rw edge is "vulnerable" (can connect two concurrent committed
   instances) unless the reader also writes the very key it read: the read
   region is [Exact k] and the reading template has a write access on the
   same table with the syntactically identical [Exact k] region (same
   constant, or same parameter name — one instance binds a parameter once).
   Then any instance pair witnessing the anti-dependency also write-conflicts
   on that key, and first-committer-wins forbids both committing while
   concurrent. This is Fekete's argument for why read-modify-write patterns
   (e.g. TPC-C NewOrder) are safe under SI, and it is exactly what keeps the
   conservative analysis from flagging every UPDATE against itself. Reads
   through [Range]/[Scan] regions stay vulnerable: the row witnessing the
   anti-dependency need not be one the reader writes back. *)
let rw_vulnerable (a : Template.t) (ra : Symbolic.access) =
  match ra.Symbolic.region with
  | Symbolic.Exact k ->
    not
      (List.exists
         (fun (w : Symbolic.access) ->
           w.Symbolic.table = ra.Symbolic.table
           && w.Symbolic.region = Symbolic.Exact k)
         a.footprint.Symbolic.writes)
  | Symbolic.Range _ | Symbolic.Scan -> true

let dep_rank = function Ww -> 0 | Wr -> 1 | Rw -> 2

(* One edge per (src, dst, dep), keeping the first witnessing access pair —
   except that a vulnerable rw witness supersedes a non-vulnerable one.
   Witnesses are found in template order; the final edge list is sorted by
   (src, dst, dep) so reports are canonical regardless of how the template
   list was assembled. *)
let build templates =
  Template.check_distinct templates;
  let edges = ref [] in
  let add src dst dep src_access dst_access vulnerable =
    let same e = e.src = src && e.dst = dst && e.dep = dep in
    match List.find_opt same !edges with
    | None ->
      edges := { src; dst; dep; src_access; dst_access; vulnerable } :: !edges
    | Some old when vulnerable && not old.vulnerable ->
      (* Upgrade in place: keep edge order stable, record the stronger witness. *)
      edges :=
        List.map
          (fun e ->
            if same e then { src; dst; dep; src_access; dst_access; vulnerable }
            else e)
          !edges
    | Some _ -> ()
  in
  let overlaps f g from_set to_set on_hit =
    List.iter
      (fun a ->
        List.iter
          (fun b -> if Symbolic.may_overlap a b then on_hit a b)
          (to_set g))
      (from_set f)
  in
  let reads (t : Template.t) = t.footprint.Symbolic.reads in
  let writes (t : Template.t) = t.footprint.Symbolic.writes in
  List.iter
    (fun (a : Template.t) ->
      List.iter
        (fun (b : Template.t) ->
          overlaps a b writes writes (fun x y -> add a.name b.name Ww x y true);
          overlaps a b writes reads (fun x y -> add a.name b.name Wr x y true);
          overlaps a b reads writes (fun x y ->
              add a.name b.name Rw x y (rw_vulnerable a x)))
        templates)
    templates;
  let edges =
    List.sort
      (fun a b ->
        compare (a.src, a.dst, dep_rank a.dep) (b.src, b.dst, dep_rank b.dep))
      (List.rev !edges)
  in
  { templates; edges }

let restrict t names =
  {
    templates =
      List.filter (fun (tm : Template.t) -> List.mem tm.name names) t.templates;
    edges =
      List.filter (fun e -> List.mem e.src names && List.mem e.dst names) t.edges;
  }

type dangerous = {
  rw_in : edge;
  rw_out : edge;
  closing : string list;
}

(* Shortest path from [src] to [dst] through any edges (BFS); [Some [src]]
   when they coincide. *)
let path t ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let parent : (string, string) Hashtbl.t = Hashtbl.create 16 in
    let queue = Queue.create () in
    Hashtbl.replace parent src src;
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      List.iter
        (fun e ->
          if e.src = node && not (Hashtbl.mem parent e.dst) then begin
            Hashtbl.replace parent e.dst node;
            if e.dst = dst then found := true else Queue.add e.dst queue
          end)
        t.edges
    done;
    if not !found then None
    else begin
      let rec walk acc node =
        if node = src then node :: acc
        else walk (node :: acc) (Hashtbl.find parent node)
      in
      Some (walk [] dst)
    end
  end

let dangerous_structures t =
  let rws = List.filter (fun e -> e.dep = Rw && e.vulnerable) t.edges in
  let structures =
    List.concat_map
      (fun rw_in ->
        List.filter_map
          (fun rw_out ->
            if rw_in.dst <> rw_out.src then None
            else
              (* Close the cycle: T3 must reach T1 (trivially when equal). *)
              Option.map
                (fun closing -> { rw_in; rw_out; closing })
                (path t ~src:rw_out.dst ~dst:rw_in.src))
          rws)
      rws
  in
  let key d = (d.rw_in.src, d.rw_in.dst, d.rw_out.dst) in
  let deduped =
    List.fold_left
      (fun acc d -> if List.exists (fun d' -> key d' = key d) acc then acc else d :: acc)
      [] structures
  in
  List.sort (fun a b -> compare (key a) (key b)) deduped

let dangerous_id d =
  Printf.sprintf "%s>%s>%s" d.rw_in.src d.rw_in.dst d.rw_out.dst

let pp_edge ppf e =
  Format.fprintf ppf "%s -%s-> %s (%s ~ %s)%s" e.src (dep_name e.dep) e.dst
    (Symbolic.access_to_string e.src_access)
    (Symbolic.access_to_string e.dst_access)
    (if e.dep = Rw && not e.vulnerable then
       " [defused: reader rewrites the key, first-committer-wins applies]"
     else "")

let explain d =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "dangerous structure %s: cycle with consecutive rw anti-dependencies\n"
       (dangerous_id d));
  Buffer.add_string b
    (Printf.sprintf "  %s reads %s, which %s may overwrite (writes %s)\n"
       d.rw_in.src
       (Symbolic.access_to_string d.rw_in.src_access)
       d.rw_in.dst
       (Symbolic.access_to_string d.rw_in.dst_access));
  Buffer.add_string b
    (Printf.sprintf "  %s reads %s, which %s may overwrite (writes %s)\n"
       d.rw_out.src
       (Symbolic.access_to_string d.rw_out.src_access)
       d.rw_out.dst
       (Symbolic.access_to_string d.rw_out.dst_access));
  (match d.closing with
  | [ _ ] ->
    Buffer.add_string b
      (Printf.sprintf
         "  the cycle closes immediately (%s = %s): concurrent instances can both commit under SI\n"
         d.rw_out.dst d.rw_in.src)
  | nodes ->
    Buffer.add_string b
      (Printf.sprintf "  the cycle closes through %s\n" (String.concat " -> " nodes)));
  Buffer.add_string b
    (Printf.sprintf
       "  under snapshot isolation both anti-dependent instances can run on the same snapshot and commit: potential write skew on table %s"
       d.rw_in.src_access.Symbolic.table);
  Buffer.contents b
