open Lsr_sql

type key =
  | Const of string
  | Param of string

type region =
  | Exact of key
  | Range of Ast.cond
  | Scan

type access = {
  table : string;
  region : region;
}

type footprint = {
  reads : access list;
  writes : access list;
}

let empty = { reads = []; writes = [] }

let param_of_text s =
  if String.length s >= 2 && s.[0] = ':' then
    Some (String.sub s 1 (String.length s - 1))
  else None

(* Mirrors [Executor.pk_of_row]: TEXT and INT literals make storage keys. *)
let key_of_literal = function
  | Ast.Text s -> (
    match param_of_text s with
    | Some p -> Some (Param p)
    | None -> Some (Const s))
  | Ast.Int i -> Some (Const (string_of_int i))
  | Ast.Float _ | Ast.Bool _ | Ast.Null -> None

(* The AND spine of a condition: conjuncts usable for classification.
   Disjunctions and negations are opaque (dropping them only widens the
   region, which is the safe direction). *)
let rec conjuncts = function
  | Ast.And (a, b) -> conjuncts a @ conjuncts b
  | c -> [ c ]

let region_of_where where =
  let pk_eq =
    List.find_map
      (function
        | Ast.Cmp { column = "pk"; op = Ast.Eq; value } -> key_of_literal value
        | _ -> None)
      (conjuncts where)
  in
  match pk_eq with
  | Some key -> Exact key
  | None -> ( match where with Ast.True -> Scan | cond -> Range cond)

let access table where = { table; region = region_of_where where }

let predicate_read a =
  match a.region with Exact _ -> false | Range _ | Scan -> true

let equal_key a b =
  match (a, b) with
  | Const x, Const y -> String.equal x y
  | Param x, Param y -> String.equal x y
  | Const _, Param _ | Param _, Const _ -> false

let equal_region a b =
  match (a, b) with
  | Exact x, Exact y -> equal_key x y
  | Scan, Scan -> true
  | Range x, Range y -> x = y
  | (Exact _ | Range _ | Scan), _ -> false

let equal_access a b = String.equal a.table b.table && equal_region a.region b.region

let dedup accesses =
  List.fold_left
    (fun acc a -> if List.exists (equal_access a) acc then acc else a :: acc)
    [] accesses
  |> List.rev

let union a b =
  { reads = dedup (a.reads @ b.reads); writes = dedup (a.writes @ b.writes) }

let statement_footprint = function
  | Ast.Select { table; where; _ } ->
    { reads = [ access table where ]; writes = [] }
  | Ast.Insert { table; row } ->
    let region =
      match List.assoc_opt "pk" row with
      | Some lit -> (
        match key_of_literal lit with Some k -> Exact k | None -> Scan)
      | None -> Scan (* rejected at run time; assume anything *)
    in
    { reads = []; writes = [ { table; region } ] }
  | Ast.Update { table; where; _ } ->
    (* The matched rows are both read (the search evaluates the old
       version) and written (a new version is installed). *)
    { reads = [ access table where ]; writes = [ access table where ] }
  | Ast.Delete { table; where } ->
    { reads = [ access table where ]; writes = [ access table where ] }
  | Ast.Explain _ -> empty (* EXPLAIN never executes its statement *)

(* A predicate or scan access evaluates its condition against every row of
   the table (the executor's row_scan reads each one), so it conflicts with
   any access to the same table. Only two distinct constant keys are
   provably disjoint. *)
let may_overlap a b =
  String.equal a.table b.table
  &&
  match (a.region, b.region) with
  | Exact (Const x), Exact (Const y) -> String.equal x y
  | Exact _, Exact _ -> true
  | (Range _ | Scan), _ | _, (Range _ | Scan) -> true

(* --- Parameters and instantiation ------------------------------------------ *)

let literal_params lit =
  match lit with Ast.Text s -> Option.to_list (param_of_text s) | _ -> []

let rec cond_params = function
  | Ast.True -> []
  | Ast.Cmp { value; _ } -> literal_params value
  | Ast.And (a, b) | Ast.Or (a, b) -> cond_params a @ cond_params b
  | Ast.Not a -> cond_params a

let rec statement_params_raw = function
  | Ast.Select { where; having; _ } -> cond_params where @ cond_params having
  | Ast.Insert { row; _ } -> List.concat_map (fun (_, l) -> literal_params l) row
  | Ast.Update { set; where; _ } ->
    List.concat_map (fun (_, l) -> literal_params l) set @ cond_params where
  | Ast.Delete { where; _ } -> cond_params where
  | Ast.Explain inner -> statement_params_raw inner

let statement_params stmt =
  List.fold_left
    (fun acc p -> if List.mem p acc then acc else p :: acc)
    [] (statement_params_raw stmt)
  |> List.rev

let bind_literal binding lit =
  match lit with
  | Ast.Text s -> (
    match param_of_text s with
    | None -> lit
    | Some p -> (
      match List.assoc_opt p binding with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Symbolic.bind: unbound parameter :%s" p)))
  | _ -> lit

let rec bind_cond binding = function
  | Ast.True -> Ast.True
  | Ast.Cmp { column; op; value } ->
    Ast.Cmp { column; op; value = bind_literal binding value }
  | Ast.And (a, b) -> Ast.And (bind_cond binding a, bind_cond binding b)
  | Ast.Or (a, b) -> Ast.Or (bind_cond binding a, bind_cond binding b)
  | Ast.Not a -> Ast.Not (bind_cond binding a)

let rec bind binding = function
  | Ast.Select s ->
    Ast.Select
      { s with where = bind_cond binding s.where; having = bind_cond binding s.having }
  | Ast.Insert { table; row } ->
    Ast.Insert
      { table; row = List.map (fun (c, l) -> (c, bind_literal binding l)) row }
  | Ast.Update { table; set; where } ->
    Ast.Update
      {
        table;
        set = List.map (fun (c, l) -> (c, bind_literal binding l)) set;
        where = bind_cond binding where;
      }
  | Ast.Delete { table; where } ->
    Ast.Delete { table; where = bind_cond binding where }
  | Ast.Explain inner -> Ast.Explain (bind binding inner)

(* --- Printing ---------------------------------------------------------------- *)

let pp_key ppf = function
  | Const k -> Format.fprintf ppf "pk='%s'" k
  | Param p -> Format.fprintf ppf "pk=:%s" p

let pp_access ppf a =
  match a.region with
  | Exact k -> Format.fprintf ppf "%s[%a]" a.table pp_key k
  | Range cond -> Format.fprintf ppf "%s[%a]" a.table Ast.pp_cond cond
  | Scan -> Format.fprintf ppf "%s[*]" a.table

let access_to_string a = Format.asprintf "%a" pp_access a
