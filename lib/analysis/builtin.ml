let t = Template.of_sql_exn

(* TPC-W-derived bookstore interactions (the paper's evaluation workload,
   §6, reduced to this SQL subset). Parameters are ':name' literals. *)
let tpcw () =
  [
    t ~name:"product_detail" [ "SELECT * FROM books WHERE pk = ':item'" ];
    t ~name:"search_by_genre"
      [ "SELECT title, price FROM books WHERE genre = ':genre' ORDER BY sales DESC LIMIT 50" ];
    t ~name:"best_sellers"
      [ "SELECT * FROM books ORDER BY sales DESC LIMIT 10" ];
    t ~name:"order_status" [ "SELECT * FROM orders WHERE customer = ':cust'" ];
    t ~name:"buy_confirm"
      [
        "SELECT stock FROM books WHERE pk = ':item'";
        "UPDATE books SET stock = ':new_stock' WHERE pk = ':item'";
        "INSERT INTO orders (pk, customer, item, status) VALUES (':order', ':cust', ':item', 'placed')";
      ];
    t ~name:"admin_restock" [ "UPDATE books SET stock = ':qty' WHERE pk = ':item'" ];
    t ~name:"admin_reprice_genre"
      [ "UPDATE books SET price = ':price' WHERE genre = ':genre'" ];
  ]

(* The textbook write-skew pair (Fekete's on-call doctors): each reads both
   rows, each writes one; under SI both can commit on the same snapshot and
   break the "at least one on call" invariant. *)
let write_skew () =
  [
    t ~name:"check_then_sign_off_x"
      [
        "SELECT on_call FROM duty WHERE pk = 'x'";
        "SELECT on_call FROM duty WHERE pk = 'y'";
        "UPDATE duty SET on_call = FALSE WHERE pk = 'x'";
      ];
    t ~name:"check_then_sign_off_y"
      [
        "SELECT on_call FROM duty WHERE pk = 'x'";
        "SELECT on_call FROM duty WHERE pk = 'y'";
        "UPDATE duty SET on_call = FALSE WHERE pk = 'y'";
      ];
  ]

(* Pure read-only transactions plus blind writers of provably disjoint
   constant keys: the SDG has edges (readers anti-depend on every writer)
   but no two consecutive rw edges, so it must analyze clean. *)
let disjoint () =
  [
    t ~name:"read_all_metrics" [ "SELECT * FROM metrics" ];
    t ~name:"read_gauge_a" [ "SELECT value FROM metrics WHERE pk = 'a'" ];
    t ~name:"write_gauge_a" [ "UPDATE metrics SET value = ':v' WHERE pk = 'a'" ];
    t ~name:"write_gauge_b" [ "UPDATE metrics SET value = ':v' WHERE pk = 'b'" ];
  ]

let txn_gen () = Template.txn_gen_templates ()

(* Read-heavy sessions with exactly one inversion-prone reader: the inbox
   listing races the message posts (update-then-read and read-then-read
   inversions), while the dashboard and the archive read regions no update
   template ever writes. The planner must fence read_inbox alone — the
   workload the mixed-assignment tests and the fig-plan figure are built
   around. No dangerous structures: post_message reads nothing, so no rw
   edge leaves it and no consecutive rw pair exists. *)
let fence_mix () =
  [
    t ~name:"read_dashboard" [ "SELECT * FROM boards WHERE pk = 'summary'" ];
    t ~name:"read_archive" [ "SELECT body FROM archive WHERE pk = ':doc'" ];
    t ~name:"read_inbox" [ "SELECT * FROM inbox WHERE owner = ':user'" ];
    t ~name:"post_message"
      [ "INSERT INTO inbox (pk, owner, body) VALUES (':msg', ':user', ':body')" ];
  ]

let workloads () =
  [
    ("tpcw", tpcw ());
    ("write_skew", write_skew ());
    ("disjoint", disjoint ());
    ("txn_gen", txn_gen ());
    ("fence_mix", fence_mix ());
  ]

let find name = List.assoc_opt name (workloads ())
