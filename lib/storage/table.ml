type t = {
  db : Mvcc.t;
  name : string;
  prefix : string;
  indexes : string list;
}

let define ?(indexes = []) db ~name =
  { db; name; prefix = "t:" ^ name ^ ":"; indexes }

let name t = t.name
let indexes t = t.indexes
let storage_key t ~pk = t.prefix ^ pk

(* Index entries: "i:<table>:<field>:<order_key>\x00<pk>". [Row.order_key]
   never contains '\x00', so the separator makes the encoding injective, and
   entries for one field sort by value then pk — equality lookups and range
   scans are both contiguous key runs. *)
let field_prefix t ~field = Printf.sprintf "i:%s:%s:" t.name field

let index_prefix t ~field ~value =
  field_prefix t ~field ^ Row.order_key value ^ "\x00"

let index_key t ~field ~value ~pk = index_prefix t ~field ~value ^ pk

let index_entries t row ~pk =
  List.filter_map
    (fun field ->
      match Row.find row field with
      | Some value -> Some (index_key t ~field ~value ~pk)
      | None -> None)
    t.indexes

let get t txn ~pk =
  match Mvcc.read t.db txn (storage_key t ~pk) with
  | None -> None
  | Some encoded -> Some (Row.decode encoded)

let maintain_indexes t txn ~pk ~old_row ~new_row =
  if t.indexes <> [] then begin
    let old_entries =
      match old_row with Some row -> index_entries t row ~pk | None -> []
    in
    let new_entries =
      match new_row with Some row -> index_entries t row ~pk | None -> []
    in
    List.iter
      (fun key ->
        if not (List.mem key new_entries) then Mvcc.write t.db txn key None)
      old_entries;
    List.iter
      (fun key ->
        if not (List.mem key old_entries) then Mvcc.write t.db txn key (Some ""))
      new_entries
  end

let insert t txn ~pk row =
  let old_row = if t.indexes = [] then None else get t txn ~pk in
  Mvcc.write t.db txn (storage_key t ~pk) (Some (Row.encode row));
  maintain_indexes t txn ~pk ~old_row ~new_row:(Some row)

let update t txn ~pk f =
  match get t txn ~pk with
  | None -> false
  | Some row ->
    let updated = f row in
    Mvcc.write t.db txn (storage_key t ~pk) (Some (Row.encode updated));
    maintain_indexes t txn ~pk ~old_row:(Some row) ~new_row:(Some updated);
    true

let delete t txn ~pk =
  let old_row = if t.indexes = [] then None else get t txn ~pk in
  Mvcc.write t.db txn (storage_key t ~pk) None;
  maintain_indexes t txn ~pk ~old_row ~new_row:None

(* Keys with [prefix] visible to [txn]: committed keys plus the
   transaction's own fresh inserts. *)
let candidate_keys t txn ~prefix =
  let prefix_len = String.length prefix in
  let has_prefix k =
    String.length k >= prefix_len && String.sub k 0 prefix_len = prefix
  in
  let committed =
    Mvcc.fold_keys t.db ~prefix ~init:[] ~f:(fun acc k -> k :: acc)
  in
  let own = List.filter has_prefix (Mvcc.written_keys txn) in
  List.sort_uniq String.compare (own @ committed)

(* Keys in [start, halt), committed or freshly written by [txn]. The
   committed side seeks to [start] and stops at the first key >= [halt],
   so cost is proportional to the run, not the store. *)
let candidate_range t txn ~start ~halt =
  let in_bounds k = String.compare start k <= 0 && String.compare k halt < 0 in
  let rec collect acc seq =
    match seq () with
    | Seq.Nil -> acc
    | Seq.Cons (key, rest) ->
      if String.compare key halt < 0 then collect (key :: acc) rest else acc
  in
  let committed = collect [] (Mvcc.keys_from t.db start) in
  let own = List.filter in_bounds (Mvcc.written_keys txn) in
  List.sort_uniq String.compare (own @ committed)

let scan t txn ~where =
  let prefix_len = String.length t.prefix in
  let visible =
    List.filter_map
      (fun key ->
        match Mvcc.read t.db txn key with
        | None -> None
        | Some encoded ->
          let row = Row.decode encoded in
          if where row then
            Some (String.sub key prefix_len (String.length key - prefix_len), row)
          else None)
      (candidate_keys t txn ~prefix:t.prefix)
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) visible

let count t txn ~where = List.length (scan t txn ~where)

let require_index t ~op ~field =
  if not (List.mem field t.indexes) then
    invalid_arg (Printf.sprintf "Table.%s: no index on %s.%s" op t.name field)

(* Resolve visible index entries to rows, re-verifying the stored value with
   [verify] — the index is a superset hint (equal [order_key]s can merge
   distinct huge ints), never the last word on a match. *)
let resolve_entries t txn ~field ~base_len ~verify keys =
  let rows =
    List.filter_map
      (fun key ->
        match Mvcc.read t.db txn key with
        | None -> None (* entry deleted in this snapshot *)
        | Some _ -> (
          let sep =
            match String.index_from_opt key base_len '\x00' with
            | Some i -> i
            | None -> String.length key
          in
          let pk = String.sub key (sep + 1) (String.length key - sep - 1) in
          match get t txn ~pk with
          | Some row -> (
            match Row.find row field with
            | Some stored when verify stored -> Some (pk, row)
            | Some _ | None -> None)
          | None -> None))
      keys
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

let lookup t txn ~field ~value =
  require_index t ~op:"lookup" ~field;
  let prefix = index_prefix t ~field ~value in
  let base_len = String.length (field_prefix t ~field) in
  let verify stored = Row.scalar_compare stored value = Some 0 in
  resolve_entries t txn ~field ~base_len ~verify
    (candidate_keys t txn ~prefix)

let range_lookup t txn ~field ~lo ~hi =
  require_index t ~op:"range_lookup" ~field;
  let base = field_prefix t ~field in
  (* Bound keys: entries carry a '\x00' separator after the order key, so
     appending '\x01' ("just past every pk of this value") or '\x00' ("at
     the first pk of this value") turns inclusive/exclusive bounds into a
     half-open key interval. Unbounded sides stop at the value-type band. *)
  let start =
    match lo with
    | Some (v, true) -> base ^ Row.order_key v
    | Some (v, false) -> base ^ Row.order_key v ^ "\x01"
    | None -> (
      match hi with
      | Some (v, _) -> base ^ String.make 1 (Row.order_tag v)
      | None -> base)
  in
  let halt =
    match hi with
    | Some (v, true) -> base ^ Row.order_key v ^ "\x01"
    | Some (v, false) -> base ^ Row.order_key v ^ "\x00"
    | None -> (
      match lo with
      | Some (v, _) ->
        base ^ String.make 1 (Char.chr (Char.code (Row.order_tag v) + 1))
      | None -> base ^ "\xff")
  in
  let within bound ~dir stored =
    match bound with
    | None -> true
    | Some (v, incl) -> (
      match Row.scalar_compare stored v with
      | None -> false
      | Some c ->
        let c = c * dir in
        if incl then c >= 0 else c > 0)
  in
  let verify stored = within lo ~dir:1 stored && within hi ~dir:(-1) stored in
  resolve_entries t txn ~field ~base_len:(String.length base) ~verify
    (candidate_range t txn ~start ~halt)
