type t = {
  db : Mvcc.t;
  name : string;
  prefix : string;
  indexes : string list;
}

let define ?(indexes = []) db ~name =
  { db; name; prefix = "t:" ^ name ^ ":"; indexes }

let name t = t.name
let indexes t = t.indexes
let storage_key t ~pk = t.prefix ^ pk

(* Index entries: "i:<table>:<field>:<len>:<scalar>|<pk>". The length prefix
   makes the encoding injective even when the scalar contains ':' or '|'. *)
let index_prefix t ~field ~value =
  let sk = Row.scalar_key value in
  Printf.sprintf "i:%s:%s:%d:%s|" t.name field (String.length sk) sk

let index_key t ~field ~value ~pk = index_prefix t ~field ~value ^ pk

let index_entries t row ~pk =
  List.filter_map
    (fun field ->
      match Row.find row field with
      | Some value -> Some (index_key t ~field ~value ~pk)
      | None -> None)
    t.indexes

let get t txn ~pk =
  match Mvcc.read t.db txn (storage_key t ~pk) with
  | None -> None
  | Some encoded -> Some (Row.decode encoded)

let maintain_indexes t txn ~pk ~old_row ~new_row =
  if t.indexes <> [] then begin
    let old_entries =
      match old_row with Some row -> index_entries t row ~pk | None -> []
    in
    let new_entries =
      match new_row with Some row -> index_entries t row ~pk | None -> []
    in
    List.iter
      (fun key ->
        if not (List.mem key new_entries) then Mvcc.write t.db txn key None)
      old_entries;
    List.iter
      (fun key ->
        if not (List.mem key old_entries) then Mvcc.write t.db txn key (Some ""))
      new_entries
  end

let insert t txn ~pk row =
  let old_row = if t.indexes = [] then None else get t txn ~pk in
  Mvcc.write t.db txn (storage_key t ~pk) (Some (Row.encode row));
  maintain_indexes t txn ~pk ~old_row ~new_row:(Some row)

let update t txn ~pk f =
  match get t txn ~pk with
  | None -> false
  | Some row ->
    let updated = f row in
    Mvcc.write t.db txn (storage_key t ~pk) (Some (Row.encode updated));
    maintain_indexes t txn ~pk ~old_row:(Some row) ~new_row:(Some updated);
    true

let delete t txn ~pk =
  let old_row = if t.indexes = [] then None else get t txn ~pk in
  Mvcc.write t.db txn (storage_key t ~pk) None;
  maintain_indexes t txn ~pk ~old_row ~new_row:None

(* Keys with [prefix] visible to [txn]: committed keys plus the
   transaction's own fresh inserts. *)
let candidate_keys t txn ~prefix =
  let prefix_len = String.length prefix in
  let has_prefix k =
    String.length k >= prefix_len && String.sub k 0 prefix_len = prefix
  in
  let committed =
    Mvcc.fold_keys t.db ~prefix ~init:[] ~f:(fun acc k -> k :: acc)
  in
  let own = List.filter has_prefix (Mvcc.written_keys txn) in
  List.sort_uniq String.compare (own @ committed)

let scan t txn ~where =
  let prefix_len = String.length t.prefix in
  let visible =
    List.filter_map
      (fun key ->
        match Mvcc.read t.db txn key with
        | None -> None
        | Some encoded ->
          let row = Row.decode encoded in
          if where row then
            Some (String.sub key prefix_len (String.length key - prefix_len), row)
          else None)
      (candidate_keys t txn ~prefix:t.prefix)
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) visible

let count t txn ~where = List.length (scan t txn ~where)

let lookup t txn ~field ~value =
  if not (List.mem field t.indexes) then
    invalid_arg
      (Printf.sprintf "Table.lookup: no index on %s.%s" t.name field);
  let prefix = index_prefix t ~field ~value in
  let prefix_len = String.length prefix in
  let rows =
    List.filter_map
      (fun key ->
        match Mvcc.read t.db txn key with
        | None -> None (* entry deleted in this snapshot *)
        | Some _ ->
          let pk = String.sub key prefix_len (String.length key - prefix_len) in
          (match get t txn ~pk with
          | Some row when Row.find row field = Some value -> Some (pk, row)
          | Some _ | None -> None))
      (candidate_keys t txn ~prefix)
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows
