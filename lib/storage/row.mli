(** Typed rows and their wire encoding.

    A row is a flat record of named scalar fields. Rows are stored in
    {!Mvcc} as strings via a small length-prefixed codec, so the replication
    machinery (which ships opaque key/value updates) needs no knowledge of
    schemas. *)

type scalar =
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool

type t = (string * scalar) list

val equal_scalar : scalar -> scalar -> bool
val equal : t -> t -> bool
val pp_scalar : Format.formatter -> scalar -> unit
val pp : Format.formatter -> t -> unit

(** Field access. *)

val find : t -> string -> scalar option

(** @raise Not_found when absent or of the wrong type. *)
val int_exn : t -> string -> int

val float_exn : t -> string -> float
val text_exn : t -> string -> string
val bool_exn : t -> string -> bool

(** [set row field v] replaces (or adds) one field. *)
val set : t -> string -> scalar -> t

(** [scalar_key v] is an injective string encoding of [v], used to build
    secondary-index storage keys. Not order-preserving across types; equal
    scalars (and only equal scalars) map to equal strings. *)
val scalar_key : scalar -> string

(** {2 Codec} *)

val encode : t -> string

(** @raise Failure on malformed input. *)
val decode : string -> t
