(** Typed rows and their wire encoding.

    A row is a flat record of named scalar fields. Rows are stored in
    {!Mvcc} as strings via a small length-prefixed codec, so the replication
    machinery (which ships opaque key/value updates) needs no knowledge of
    schemas. *)

type scalar =
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool

type t = (string * scalar) list

val equal_scalar : scalar -> scalar -> bool
val equal : t -> t -> bool
val pp_scalar : Format.formatter -> scalar -> unit
val pp : Format.formatter -> t -> unit

(** Field access. *)

val find : t -> string -> scalar option

(** @raise Not_found when absent or of the wrong type. *)
val int_exn : t -> string -> int

val float_exn : t -> string -> float
val text_exn : t -> string -> string
val bool_exn : t -> string -> bool

(** [set row field v] replaces (or adds) one field. *)
val set : t -> string -> scalar -> t

(** [scalar_key v] is an injective string encoding of [v] (used e.g. for
    group-by bucketing). Not order-preserving, and distinguishes [Int 1]
    from [Float 1.]; equal scalars (and only equal scalars) map to equal
    strings. *)
val scalar_key : scalar -> string

(** [scalar_compare a b] orders two scalars under SQL comparison semantics:
    [Int]/[Float] compare numerically across types, all other comparisons
    require matching constructors. [None] = incomparable. *)
val scalar_compare : scalar -> scalar -> int option

(** [order_key v] encodes [v] so that [String.compare (order_key a)
    (order_key b)] agrees with {!scalar_compare} whenever the latter is
    defined ([Int 1] and [Float 1.] encode identically; integers beyond
    2{^53} are rounded to the nearest float, so callers re-verify with
    {!scalar_compare}). Incomparable types land in disjoint tagged bands
    ordered [Bool < numeric < Text]. The result never contains ['\x00'],
    so it can be followed by a ['\x00'] separator in composite keys. *)
val order_key : scalar -> string

(** First byte of {!order_key}: ['b'], ['n'] or ['s']. *)
val order_tag : scalar -> char

(** {2 Codec} *)

val encode : t -> string

(** @raise Failure on malformed input. *)
val decode : string -> t
