(** Logical write-ahead log of a site.

    The paper assumes "a logical log containing update records is available
    ... each update transaction's start timestamp is inserted into the log,
    followed by the transaction's update records, and then the transaction's
    commit record tagged with its commit timestamp or the abort record"
    (§3). The propagator of Algorithm 3.1 is a sniffer over this log. *)

(** One logical update: assigning [value] to [key] ([None] deletes). *)
type update = { key : string; value : string option }

type entry =
  | Start of { txn : int; ts : Timestamp.t }
  | Update of { txn : int; update : update }
  | Commit of { txn : int; ts : Timestamp.t }
  | Abort of { txn : int }

type t

val create : unit -> t
val append : t -> entry -> unit

(** Number of entries ever appended. *)
val length : t -> int

(** [entry t i] is the [i]th entry (0-based).
    @raise Invalid_argument when out of range. *)
val entry : t -> int -> entry

(** [read_from t offset] is all entries at positions [>= offset], in order,
    paired with the next offset. The propagator uses this as its cursor.
    Reading at exactly [length t] returns [([], length t)].
    @raise Invalid_argument when [offset] lies below the truncation point
    ({!truncate_before}): records there are gone, and skipping them silently
    would corrupt any consumer's view of the log. *)
val read_from : t -> int -> entry list * int

(** [truncate_before t offset] discards storage for entries below [offset]
    (offsets remain stable). Models log reclamation once all secondaries
    have consumed a prefix. Reading a discarded entry raises. *)
val truncate_before : t -> int -> unit

val pp_entry : Format.formatter -> entry -> unit
