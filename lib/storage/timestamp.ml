type t = int

let zero = 0
let compare = Int.compare
let equal = Int.equal
let pp = Format.pp_print_int

type source = { mutable last : t }

let source () = { last = zero }

let next s =
  s.last <- s.last + 1;
  s.last

let current s = s.last
