module Sset = Set.Make (String)

type version = { committed_at : Timestamp.t; value : string option }

type txn_state = Active | Committed_ | Aborted_

type txn = {
  id : int;
  start_ts : Timestamp.t;
  (* Buffered writes, newest-first; replayed in reverse for the log and the
     version store so that later writes to the same key win. *)
  mutable writes : Wal.update list;
  writes_by_key : (string, string option) Hashtbl.t;
  mutable state : txn_state;
}

type abort_reason =
  | Write_conflict of string
  | Forced

type commit_result =
  | Committed of Timestamp.t
  | Aborted of abort_reason

type t = {
  name : string;
  clock : Timestamp.source;
  (* Per-key version chains, newest first. *)
  store : (string, version list) Hashtbl.t;
  (* Committed keys in lexicographic order: prefix and range scans seek in
     O(log n) instead of folding over the whole store. *)
  mutable key_set : Sset.t;
  (* Stored versions across all keys, maintained incrementally so the
     monitor can sample it every virtual second at zero marginal cost. *)
  mutable versions : int;
  wal : Wal.t;
  mutable next_txn_id : int;
  (* Commit timestamps with the writes installed, newest first; the basis of
     the S^i state sequence. *)
  mutable commits : (Timestamp.t * Wal.update list) list;
  mutable commit_count : int;
  mutable latest_commit : Timestamp.t;
}

let create ?(name = "db") () =
  {
    name;
    clock = Timestamp.source ();
    store = Hashtbl.create 1024;
    key_set = Sset.empty;
    versions = 0;
    wal = Wal.create ();
    next_txn_id = 0;
    commits = [];
    commit_count = 0;
    latest_commit = Timestamp.zero;
  }

let name t = t.name
let wal t = t.wal

let make_txn t start_ts =
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  Wal.append t.wal (Wal.Start { txn = id; ts = start_ts });
  { id; start_ts; writes = []; writes_by_key = Hashtbl.create 8; state = Active }

let begin_txn t = make_txn t (Timestamp.next t.clock)

let begin_txn_at t ~snapshot =
  if Timestamp.compare snapshot (Timestamp.current t.clock) > 0 then
    invalid_arg "Mvcc.begin_txn_at: snapshot is in the future";
  (* The clock still advances so commit timestamps stay unique and larger
     than every issued timestamp; only the snapshot is taken in the past. *)
  ignore (Timestamp.next t.clock);
  make_txn t snapshot

let txn_id txn = txn.id
let start_ts txn = txn.start_ts

let require_active txn op =
  match txn.state with
  | Active -> ()
  | Committed_ | Aborted_ ->
    invalid_arg (Printf.sprintf "Mvcc.%s: transaction %d is not active" op txn.id)

let visible_version versions ~at =
  let rec find = function
    | [] -> None
    | v :: rest -> if Timestamp.compare v.committed_at at <= 0 then Some v else find rest
  in
  find versions

let snapshot_read t ~at key =
  match Hashtbl.find_opt t.store key with
  | None -> None
  | Some versions -> (
    match visible_version versions ~at with
    | None -> None
    | Some v -> v.value)

let read t txn key =
  require_active txn "read";
  match Hashtbl.find_opt txn.writes_by_key key with
  | Some value -> value
  | None -> snapshot_read t ~at:txn.start_ts key

let write t txn key value =
  require_active txn "write";
  Wal.append t.wal (Wal.Update { txn = txn.id; update = { key; value } });
  txn.writes <- { Wal.key; value } :: txn.writes;
  Hashtbl.replace txn.writes_by_key key value

let first_committer_conflict t txn =
  (* A committed version newer than our snapshot on any written key means a
     concurrent transaction committed that write first. *)
  let conflicting key =
    match Hashtbl.find_opt t.store key with
    | None -> false
    | Some [] -> false
    | Some (newest :: _) -> Timestamp.compare newest.committed_at txn.start_ts > 0
  in
  Hashtbl.fold
    (fun key _ acc -> match acc with Some _ -> acc | None -> if conflicting key then Some key else None)
    txn.writes_by_key None

let install t ~commit_ts updates =
  let apply { Wal.key; value } =
    (match Hashtbl.find_opt t.store key with
    | Some versions ->
      Hashtbl.replace t.store key ({ committed_at = commit_ts; value } :: versions)
    | None ->
      Hashtbl.replace t.store key [ { committed_at = commit_ts; value } ];
      t.key_set <- Sset.add key t.key_set);
    t.versions <- t.versions + 1
  in
  List.iter apply updates;
  t.commits <- (commit_ts, updates) :: t.commits;
  t.commit_count <- t.commit_count + 1;
  t.latest_commit <- commit_ts

(* Squash the newest-first write buffer into one update per key, preserving
   first-write order between keys and keeping the last value written. *)
let effective_updates txn =
  let ordered = List.rev txn.writes in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun { Wal.key; value = _ } ->
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some { Wal.key; value = Hashtbl.find txn.writes_by_key key }
      end)
    ordered

let commit t txn =
  require_active txn "commit";
  match first_committer_conflict t txn with
  | Some key ->
    txn.state <- Aborted_;
    Wal.append t.wal (Wal.Abort { txn = txn.id });
    Aborted (Write_conflict key)
  | None ->
    let commit_ts = Timestamp.next t.clock in
    install t ~commit_ts (effective_updates txn);
    txn.state <- Committed_;
    Wal.append t.wal (Wal.Commit { txn = txn.id; ts = commit_ts });
    Committed commit_ts

let abort t txn =
  require_active txn "abort";
  txn.state <- Aborted_;
  Wal.append t.wal (Wal.Abort { txn = txn.id })

let end_read _t txn =
  require_active txn "end_read";
  if Hashtbl.length txn.writes_by_key > 0 then
    invalid_arg "Mvcc.end_read: transaction has writes; commit or abort it";
  txn.state <- Committed_

let pending_writes txn = effective_updates txn
let written_keys txn = List.map (fun { Wal.key; _ } -> key) (effective_updates txn)

let latest_commit_ts t = t.latest_commit
let commit_count t = t.commit_count

let read_at t ts key = snapshot_read t ~at:ts key

let state_at t ts =
  let bindings =
    Hashtbl.fold
      (fun key versions acc ->
        match visible_version versions ~at:ts with
        | Some { value = Some v; _ } -> (key, v) :: acc
        | Some { value = None; _ } | None -> acc)
      t.store []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) bindings

let nth_state t i =
  if i < 0 || i > t.commit_count then
    invalid_arg
      (Printf.sprintf "Mvcc.nth_state: %d outside [0, %d]" i t.commit_count);
  if i = 0 then []
  else begin
    (* The i-th commit's timestamp, counting from oldest = 1. *)
    let commits_oldest_first = List.rev t.commits in
    let ts, _ = List.nth commits_oldest_first (i - 1) in
    state_at t ts
  end

let committed_state t = state_at t t.latest_commit

let keys_from t start = Sset.to_seq_from start t.key_set

let fold_keys t ~prefix ~init ~f =
  (* Keys are sorted, so every key with [prefix] sits in one contiguous run
     starting at the first key >= prefix: seek there and stop at the first
     non-match instead of folding over the whole store. *)
  let plen = String.length prefix in
  let matches key = String.length key >= plen && String.sub key 0 plen = prefix in
  let rec consume acc seq =
    match seq () with
    | Seq.Nil -> acc
    | Seq.Cons (key, rest) -> if matches key then consume (f acc key) rest else acc
  in
  consume init (keys_from t prefix)

let commit_history t = List.rev_map fst t.commits
let commits_with_updates t = List.rev t.commits

(* --- Maintenance ----------------------------------------------------------- *)

let vacuum t ~before =
  let reclaimed = ref 0 in
  let trim versions =
    (* Keep every version newer than [before] plus the single version
       visible at [before] (the first at or below it, chains being newest
       first). *)
    let rec walk kept = function
      | [] -> List.rev kept
      | v :: rest ->
        if Timestamp.compare v.committed_at before <= 0 then begin
          reclaimed := !reclaimed + List.length rest;
          List.rev (v :: kept)
        end
        else walk (v :: kept) rest
    in
    walk [] versions
  in
  let keys = Hashtbl.fold (fun key _ acc -> key :: acc) t.store [] in
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.store key with
      | None -> ()
      | Some versions -> Hashtbl.replace t.store key (trim versions))
    keys;
  t.versions <- t.versions - !reclaimed;
  !reclaimed

let version_count t = t.versions

let encode_string buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let serialize t =
  let bindings = committed_state t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (string_of_int (List.length bindings));
  Buffer.add_char buf ';';
  List.iter
    (fun (key, value) ->
      encode_string buf key;
      encode_string buf value)
    bindings;
  Buffer.contents buf

let restore ?name data =
  let pos = ref 0 in
  let fail msg = failwith ("Mvcc.restore: " ^ msg) in
  let read_until ch =
    match String.index_from_opt data !pos ch with
    | None -> fail "missing delimiter"
    | Some i ->
      let sub = String.sub data !pos (i - !pos) in
      pos := i + 1;
      sub
  in
  let read_int_until ch =
    match int_of_string_opt (read_until ch) with
    | Some i -> i
    | None -> fail "bad length"
  in
  let read_string () =
    let len = read_int_until ':' in
    if len < 0 || !pos + len > String.length data then fail "bad string length";
    let sub = String.sub data !pos len in
    pos := !pos + len;
    sub
  in
  let count = read_int_until ';' in
  if count < 0 then fail "negative count";
  let t = create ?name () in
  let txn = begin_txn t in
  for _ = 1 to count do
    let key = read_string () in
    let value = read_string () in
    write t txn key (Some value)
  done;
  if !pos <> String.length data then fail "trailing bytes";
  (match commit t txn with
  | Committed _ -> ()
  | Aborted _ -> fail "initial commit aborted");
  t
