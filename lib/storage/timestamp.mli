(** Logical timestamps issued by a site's local concurrency control.

    A single monotone counter serves both start and commit timestamps, which
    realizes the operational SI rule that a commit timestamp is "more recent
    than any start or commit timestamp assigned to any transaction" (§2.1).
    Timestamps are site-local: the protocols never compare timestamps issued
    by different sites, only use the primary's order. *)

type t = int

val zero : t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** A mutable source of fresh timestamps. *)
type source

val source : unit -> source

(** [next s] is a timestamp strictly larger than every one issued before. *)
val next : source -> t

(** Largest timestamp issued so far ([zero] initially). *)
val current : source -> t
