type update = { key : string; value : string option }

type entry =
  | Start of { txn : int; ts : Timestamp.t }
  | Update of { txn : int; update : update }
  | Commit of { txn : int; ts : Timestamp.t }
  | Abort of { txn : int }

type t = {
  mutable entries : entry array;
  (* Entries below [base] have been reclaimed; absolute offset [i] lives at
     [entries.(i - base)]. *)
  mutable base : int;
  mutable size : int;
}

let create () = { entries = [||]; base = 0; size = 0 }

let dummy = Abort { txn = -1 }

let append t e =
  let used = t.size - t.base in
  if used = Array.length t.entries then begin
    let fresh = Array.make (max 16 (2 * used)) dummy in
    Array.blit t.entries 0 fresh 0 used;
    t.entries <- fresh
  end;
  t.entries.(used) <- e;
  t.size <- t.size + 1

let length t = t.size

let entry t i =
  if i < t.base || i >= t.size then
    invalid_arg
      (Printf.sprintf "Wal.entry: offset %d outside [%d, %d)" i t.base t.size);
  t.entries.(i - t.base)

let read_from t offset =
  (* A reader below the truncation point has lost records: silently clamping
     to [base] would make a propagator (or a recovery replay) skip entries
     without anyone noticing. Fail loudly instead. *)
  if offset < t.base then
    invalid_arg
      (Printf.sprintf "Wal.read_from: offset %d below truncation point %d"
         offset t.base);
  let rec collect i acc =
    if i >= t.size then (List.rev acc, t.size)
    else collect (i + 1) (entry t i :: acc)
  in
  collect offset []

let truncate_before t offset =
  let offset = min offset t.size in
  if offset > t.base then begin
    let keep = t.size - offset in
    let fresh = Array.make (max 16 keep) dummy in
    Array.blit t.entries (offset - t.base) fresh 0 keep;
    t.entries <- fresh;
    t.base <- offset
  end

let pp_entry ppf = function
  | Start { txn; ts } -> Format.fprintf ppf "start(T%d)@%a" txn Timestamp.pp ts
  | Update { txn; update = { key; value } } ->
    Format.fprintf ppf "update(T%d, %s := %s)" txn key
      (match value with Some v -> v | None -> "<delete>")
  | Commit { txn; ts } -> Format.fprintf ppf "commit(T%d)@%a" txn Timestamp.pp ts
  | Abort { txn } -> Format.fprintf ppf "abort(T%d)" txn
