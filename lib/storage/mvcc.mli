(** Multiversion key-value storage engine with local {e strong} snapshot
    isolation.

    This is the "autonomous database management system with a local
    concurrency controller that guarantees strong SI and is deadlock-free"
    that the paper assumes at every site (§3):

    - each transaction's start timestamp equals the latest committed state at
      the moment it starts, so a transaction always sees the newest snapshot
      (strong SI, Definition 2.1);
    - writers never block: write-write conflicts are resolved at commit by
      the first-committer-wins rule, so there are no deadlocks;
    - a transaction reads its own uncommitted writes;
    - every update transaction leaves start / update / commit (or abort)
      records in the site's logical {!Wal}.

    The engine also exposes snapshot reconstruction ([state_at], [nth_state])
    used by the test suite to check the paper's completeness property
    (Theorem 3.1, [S^i_p = S^i_s]). *)

type t
type txn

type abort_reason =
  | Write_conflict of string
      (** First-committer-wins: a concurrent committed transaction also wrote
          this key. *)
  | Forced  (** Abort requested by the caller (e.g. simulated failures). *)

type commit_result =
  | Committed of Timestamp.t
  | Aborted of abort_reason

val create : ?name:string -> unit -> t
val name : t -> string

(** The site's logical log. *)
val wal : t -> Wal.t

(** [begin_txn t] starts a transaction whose snapshot is the latest committed
    state (strong SI start-timestamp assignment). *)
val begin_txn : t -> txn

(** [begin_txn_at t ~snapshot] starts a transaction whose start timestamp is
    chosen in the past — the weak-SI freedom of §2.1 ("the system can choose
    start(T) to be any time less than or equal to the actual start time"),
    and the basis of the time-travel queries of the paper's related work.
    The transaction sees the committed state as of [snapshot]. It may write:
    first-committer-wins then aborts it if any written key was committed
    after [snapshot] (generalized SI).
    @raise Invalid_argument when [snapshot] is in the future. *)
val begin_txn_at : t -> snapshot:Timestamp.t -> txn

val txn_id : txn -> int

(** Start timestamp assigned by the local concurrency control. *)
val start_ts : txn -> Timestamp.t

(** [read t txn key] is the value visible in [txn]'s snapshot, its own
    uncommitted write taking precedence (read-your-writes). *)
val read : t -> txn -> string -> string option

(** [write t txn key value] buffers an update ([None] deletes). Never
    blocks. @raise Invalid_argument if [txn] is no longer active. *)
val write : t -> txn -> string -> string option -> unit

(** [commit t txn] applies the first-committer-wins rule: if any key written
    by [txn] was also written by a transaction that committed after [txn]
    started, [txn] aborts with [Write_conflict]; otherwise its writes are
    installed atomically under a fresh commit timestamp. *)
val commit : t -> txn -> commit_result

(** [abort t txn] discards the transaction's buffered writes. *)
val abort : t -> txn -> unit

(** [end_read t txn] finishes a read-only transaction: no state is
    installed, no commit record is logged, and the commit counter does not
    advance (a read-only transaction creates no new database state).
    @raise Invalid_argument if the transaction wrote anything. *)
val end_read : t -> txn -> unit

(** Buffered writes of an active transaction, in write order (later writes to
    the same key supersede earlier ones). *)
val pending_writes : txn -> Wal.update list

(** Keys written so far by an active transaction, in first-write order.
    Needed by scans that must see the transaction's own inserts of keys that
    do not yet exist in the committed store. *)
val written_keys : txn -> string list

(** {2 Snapshot inspection} *)

(** Timestamp of the most recent commit ([Timestamp.zero] if none). *)
val latest_commit_ts : t -> Timestamp.t

(** Number of committed update transactions. *)
val commit_count : t -> int

(** [read_at t ts key] reads [key] in the snapshot as of timestamp [ts]. *)
val read_at : t -> Timestamp.t -> string -> string option

(** [state_at t ts] is the full committed state visible at [ts], as a sorted
    association list (deleted keys omitted). *)
val state_at : t -> Timestamp.t -> (string * string) list

(** [nth_state t i] is the database state [S^i] produced by the [i]th commit
    ([S^0] is the initial, empty, state).
    @raise Invalid_argument when [i] exceeds [commit_count]. *)
val nth_state : t -> int -> (string * string) list

(** Latest committed state (= [nth_state t (commit_count t)]). *)
val committed_state : t -> (string * string) list

(** [fold_keys t ~prefix ~init ~f] folds over every key ever written with the
    given prefix, in ascending lexicographic order (visibility is up to the
    caller via [read]). Costs O(log n + k) for k matching keys, not O(n). *)
val fold_keys : t -> prefix:string -> init:'acc -> f:('acc -> string -> 'acc) -> 'acc

(** [keys_from t start] is the ascending sequence of every key ever written
    that is [>= start]. Backs index range seeks: O(log n) to position, O(1)
    per element. The sequence is persistent (safe to re-force). *)
val keys_from : t -> string -> string Seq.t

(** {2 Maintenance} *)

(** [vacuum t ~before] reclaims versions invisible to every snapshot taken
    at or after [before]: per key, the newest version with commit timestamp
    [<= before] is kept (it is the version visible at [before]), anything
    older is dropped. Reads at timestamps [>= before] are unaffected;
    [state_at]/[read_at] below [before] become unreliable. Returns the
    number of versions reclaimed. *)
val vacuum : t -> before:Timestamp.t -> int

(** Number of stored versions across all keys (for reclamation tests). *)
val version_count : t -> int

(** [serialize t] encodes the latest committed state — not the version
    history — as an opaque string: the "copy of the primary database" of
    §3.4 used to reseed failed secondaries. *)
val serialize : t -> string

(** [restore ?name data] is a fresh database whose single initial commit
    installs a serialized state.
    @raise Failure on malformed input. *)
val restore : ?name:string -> string -> t

(** Commit timestamps in commit order, oldest first (for checkers). *)
val commit_history : t -> Timestamp.t list

(** Commit timestamps with the update lists installed, oldest first. The
    completeness checker compares these sequences across sites. *)
val commits_with_updates : t -> (Timestamp.t * Wal.update list) list
