type scalar =
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool

type t = (string * scalar) list

let equal_scalar a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Text x, Text y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | (Int _ | Float _ | Text _ | Bool _), _ -> false

let equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ka, va) (kb, vb) -> String.equal ka kb && equal_scalar va vb)
       a b

let pp_scalar ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Text s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.fprintf ppf "%b" b

let pp ppf row =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (k, v) -> Format.fprintf ppf "%s = %a" k pp_scalar v))
    row

let find row field = List.assoc_opt field row

let int_exn row field =
  match find row field with Some (Int i) -> i | _ -> raise Not_found

let float_exn row field =
  match find row field with Some (Float f) -> f | _ -> raise Not_found

let text_exn row field =
  match find row field with Some (Text s) -> s | _ -> raise Not_found

let bool_exn row field =
  match find row field with Some (Bool b) -> b | _ -> raise Not_found

let set row field v = (field, v) :: List.remove_assoc field row

let scalar_key = function
  | Int i -> Printf.sprintf "i%d" i
  | Float f -> Printf.sprintf "f%h" f
  | Text s -> "t" ^ s
  | Bool b -> if b then "b1" else "b0"

(* SQL comparison semantics: Int and Float compare numerically across types,
   everything else only within its own type. *)
let scalar_compare a b =
  match (a, b) with
  | Int x, Int y -> Some (compare x y)
  | Int x, Float y -> Some (Float.compare (float_of_int x) y)
  | Float x, Int y -> Some (Float.compare x (float_of_int y))
  | Float x, Float y -> Some (Float.compare x y)
  | Text x, Text y -> Some (String.compare x y)
  | Bool x, Bool y -> Some (Bool.compare x y)
  | (Int _ | Float _ | Text _ | Bool _), _ -> None

(* Map a float to 64 bits whose unsigned order matches numeric order: flip
   the sign bit of non-negatives, complement negatives. -0.0 is normalized
   to +0.0 first so numerically-equal floats encode equally. *)
let monotone_bits f =
  let f = if f = 0.0 then 0.0 else f in
  let bits = Int64.bits_of_float f in
  if Int64.compare bits 0L >= 0 then Int64.logxor bits Int64.min_int
  else Int64.lognot bits

(* Escape so the result never contains '\x00' (reserved as a separator in
   index keys) while preserving lexicographic order: images are
   0x00 -> 0x01 0x01, 0x01 -> 0x01 0x02, c -> c otherwise, which are
   mutually order-consistent and leave '\x00' strictly below any image. *)
let escape_text s =
  if String.for_all (fun c -> c > '\x01') s then s
  else begin
    let buf = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        match c with
        | '\x00' -> Buffer.add_string buf "\x01\x01"
        | '\x01' -> Buffer.add_string buf "\x01\x02"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let order_key v =
  match v with
  | Bool b -> if b then "b1" else "b0"
  | Int i -> Printf.sprintf "n%016Lx" (monotone_bits (float_of_int i))
  | Float f -> Printf.sprintf "n%016Lx" (monotone_bits f)
  | Text s -> "s" ^ escape_text s

let order_tag = function Bool _ -> 'b' | Int _ | Float _ -> 'n' | Text _ -> 's'

(* Codec: [count] then per field [tag; name; payload], each string
   length-prefixed with a decimal length and ':'. Human-debuggable and has no
   escaping pitfalls. *)

let encode_string buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let encode row =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int (List.length row));
  Buffer.add_char buf ';';
  List.iter
    (fun (name, v) ->
      let tag, payload =
        match v with
        | Int i -> ('i', string_of_int i)
        | Float f -> ('f', Printf.sprintf "%h" f)
        | Text s -> ('t', s)
        | Bool b -> ('b', if b then "1" else "0")
      in
      Buffer.add_char buf tag;
      encode_string buf name;
      encode_string buf payload)
    row;
  Buffer.contents buf

exception Malformed of string

let decode s =
  let pos = ref 0 in
  let fail msg = raise (Malformed msg) in
  let read_until ch =
    match String.index_from_opt s !pos ch with
    | None -> fail "missing delimiter"
    | Some i ->
      let sub = String.sub s !pos (i - !pos) in
      pos := i + 1;
      sub
  in
  let read_int_until ch =
    match int_of_string_opt (read_until ch) with
    | Some i -> i
    | None -> fail "bad length"
  in
  let read_string () =
    let len = read_int_until ':' in
    if len < 0 || !pos + len > String.length s then fail "bad string length";
    let sub = String.sub s !pos len in
    pos := !pos + len;
    sub
  in
  let read_field () =
    if !pos >= String.length s then fail "truncated field";
    let tag = s.[!pos] in
    incr pos;
    let name = read_string () in
    let payload = read_string () in
    let v =
      match tag with
      | 'i' -> (
        match int_of_string_opt payload with
        | Some i -> Int i
        | None -> fail "bad int")
      | 'f' -> (
        match float_of_string_opt payload with
        | Some f -> Float f
        | None -> fail "bad float")
      | 't' -> Text payload
      | 'b' -> Bool (payload = "1")
      | _ -> fail "unknown tag"
    in
    (name, v)
  in
  try
    let count = read_int_until ';' in
    if count < 0 then fail "negative count";
    let fields = List.init count (fun _ -> read_field ()) in
    if !pos <> String.length s then fail "trailing bytes";
    fields
  with Malformed msg -> failwith ("Row.decode: " ^ msg)
