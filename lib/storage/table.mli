(** Relational veneer over {!Mvcc}: named tables of {!Row.t} keyed by a
    primary key, with optional secondary indexes.

    Rows of table [tbl] with primary key [pk] live at storage key
    ["t:tbl:pk"]; index entries live at ["i:tbl:field:...pk"]. Both are
    ordinary versioned keys, so tables and their indexes replicate through
    the key/value machinery unchanged and stay transactionally consistent
    under snapshot isolation. Scans and index lookups enumerate every key
    ever written and filter by snapshot visibility, keeping them consistent
    with the transaction's snapshot. *)

type t

(** [define db ~name] declares a table handle (no storage effect; tables
    exist implicitly once rows are inserted). [indexes] lists row fields to
    maintain equality indexes on; every handle for the same table must
    declare the same indexes. *)
val define : ?indexes:string list -> Mvcc.t -> name:string -> t

val name : t -> string

(** Indexed fields, as declared. *)
val indexes : t -> string list

(** [insert t txn ~pk row] writes a full row (also used for updates of the
    whole row) and maintains index entries. *)
val insert : t -> Mvcc.txn -> pk:string -> Row.t -> unit

(** [get t txn ~pk] is the visible row, if any. *)
val get : t -> Mvcc.txn -> pk:string -> Row.t option

(** [update t txn ~pk f] rewrites the row through [f]; no-op when absent.
    Returns whether a row was updated. *)
val update : t -> Mvcc.txn -> pk:string -> (Row.t -> Row.t) -> bool

(** [delete t txn ~pk] removes the row and its index entries. *)
val delete : t -> Mvcc.txn -> pk:string -> unit

(** [scan t txn ~where] is all visible rows satisfying the predicate, with
    their primary keys, sorted by primary key. *)
val scan : t -> Mvcc.txn -> where:(Row.t -> bool) -> (string * Row.t) list

(** [count t txn ~where] = [List.length (scan t txn ~where)]. *)
val count : t -> Mvcc.txn -> where:(Row.t -> bool) -> int

(** [lookup t txn ~field ~value] is all visible rows whose [field] equals
    [value] under SQL comparison semantics ([Int 1] matches [Float 1.]),
    via the secondary index, sorted by primary key.
    @raise Invalid_argument when [field] is not declared in [indexes]. *)
val lookup : t -> Mvcc.txn -> field:string -> value:Row.scalar -> (string * Row.t) list

(** [range_lookup t txn ~field ~lo ~hi] is all visible rows whose [field]
    falls in the given interval, via a contiguous secondary-index seek.
    Each bound is [(value, inclusive)]; [None] leaves that side open (both
    [None] returns every row with the field present). Bounds compare with
    {!Row.scalar_compare}, so rows whose stored value is incomparable with
    a bound never match. Sorted by primary key.
    @raise Invalid_argument when [field] is not declared in [indexes]. *)
val range_lookup :
  t ->
  Mvcc.txn ->
  field:string ->
  lo:(Row.scalar * bool) option ->
  hi:(Row.scalar * bool) option ->
  (string * Row.t) list

(** The storage key for a row, exposed for tests and debugging. *)
val storage_key : t -> pk:string -> string

(** The storage key of an index entry, exposed for tests. *)
val index_key : t -> field:string -> value:Row.scalar -> pk:string -> string
