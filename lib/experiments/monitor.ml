open Lsr_sim

type t = {
  enabled : bool;
  interval : float;
  series : Lsr_obs.Timeseries.t;
}

let null =
  { enabled = false; interval = 0.; series = Lsr_obs.Timeseries.create () }

let create ?(interval = 1.0) () =
  if not (Float.is_finite interval) || interval <= 0. then
    invalid_arg "Monitor.create: interval must be positive and finite";
  { enabled = true; interval; series = Lsr_obs.Timeseries.create () }

let enabled t = t.enabled
let interval t = t.interval
let series t = t.series

let attach t eng ~probe =
  if t.enabled then begin
    Lsr_obs.Timeseries.new_run t.series;
    Process.spawn eng (fun () ->
        let rec loop () =
          Process.delay t.interval;
          Lsr_obs.Timeseries.add t.series ~time:(Engine.now eng) (probe ());
          loop ()
        in
        loop ())
  end
