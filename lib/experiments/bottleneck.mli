(** Bottleneck analysis over one run's queueing telemetry.

    Two views of the same {!Sim_system.outcome}:

    - a {e resource ranking}: every site resource sorted by utilization ρ
      (ties by name), with its share of all queueing wait, time-average
      queue length L, completion throughput λ and Little's-law gap — the
      head of the list is the dominant (saturating) resource;
    - a {e residence-time breakdown} per transaction class (read / update):
      the mean response time split into measured or by-construction
      components — session-block wait (reads held for the strong-session
      read floor), pure service demand (mean operations per transaction ×
      per-operation service time), retry cost (updates: wasted aborted
      work amortized over completions) — with the unexplained remainder
      attributed to resource queueing.

    Deterministic by construction (pure arithmetic over the outcome, sorted
    ranking, canonical {!Lsr_obs.Json.number} floats), so the JSON export
    is byte-identical across same-seed runs ([bench --bottleneck],
    [lsrepl bottleneck]). *)

type rank = {
  bn_site : string;
  bn_utilization : float;  (** ρ, exact at the read instant *)
  bn_wait_share : float;
      (** this resource's total queueing wait over the sum across all
          resources (0 when nothing ever waited) *)
  bn_queue_mean : float;  (** L, time-average jobs present *)
  bn_throughput : float;  (** λ, completions per virtual second *)
  bn_littles_gap : float;  (** relative [|L − λ·W|] self-check *)
}

type component = {
  comp_name : string;  (** ["session-block" | "service" | "retry" | "queueing"] *)
  comp_seconds : float;  (** mean seconds per transaction of this class *)
  comp_share : float;  (** fraction of the class's mean response time *)
}

type breakdown = {
  br_class : string;  (** ["read"] or ["update"] *)
  br_rt_mean : float;
  br_components : component list;  (** sums to [br_rt_mean]; queueing last *)
}

type t = {
  dominant : string;  (** site name of the highest-utilization resource *)
  ranking : rank list;  (** sorted by utilization, descending *)
  breakdowns : breakdown list;  (** read first, then update *)
}

(** [analyze params outcome] reduces one run. [params] supplies the
    by-construction service demand (transaction size × operation cost). *)
val analyze : Lsr_workload.Params.t -> Sim_system.outcome -> t

(** Human-readable report: dominant line, ranking table, one breakdown
    line per class. [?tag] labels the dominant line (sweep points). *)
val render : ?tag:string -> t -> string

val to_json : t -> Lsr_obs.Json.t

type entry = { tag : string; report : t }

(** [{"reports": [{"tag": ..., "dominant": ..., ...}, ...]}] — one object
    per sweep point, in the given order. *)
val sweep_json : entry list -> Lsr_obs.Json.t

(** [write_sweep entries ~file] writes {!sweep_json}, creating missing
    parent directories. *)
val write_sweep : entry list -> file:string -> unit
