open Lsr_sim
open Lsr_storage
open Lsr_core
open Lsr_workload
module Obs = Lsr_obs.Obs

type arrival = Poisson | Mmpp of float

type client_mode =
  | Closed_loop
  | Open_loop of { clients : int; arrival : arrival; session_pool : int }

type fence_policy =
  | No_fence
  | All_reads of Session.fence
  | Fence_mix of (float * Session.fence option) list

type config = {
  params : Params.t;
  guarantee : Session.guarantee;
  seed : int;
  record_history : bool;
  watchdog : bool;
  serial_refresh : bool;
  ship_aborted : bool;
  migrate_prob : float;
  client_mode : client_mode;
  fence : fence_policy;
  faults : Lsr_faults.Channel.config option;
  fault_tick : float;
  obs : Obs.t;
  lineage : Lsr_obs.Lineage.t;
  flight : Lsr_obs.Flight.t;
  monitor : Monitor.t;
}

let config params guarantee ~seed =
  {
    params;
    guarantee;
    seed;
    record_history = false;
    watchdog = false;
    serial_refresh = false;
    ship_aborted = false;
    migrate_prob = 0.;
    client_mode = Closed_loop;
    fence = No_fence;
    faults = None;
    fault_tick = 1.0;
    obs = Obs.null;
    lineage = Lsr_obs.Lineage.null;
    flight = Lsr_obs.Flight.null;
    monitor = Monitor.null;
  }

(* The per-site transaction rate a closed-loop population of [clients] would
   offer if it never queued: each client cycles through one think time plus
   its own service demand. Used to match offered load when the same
   population is modeled open-loop. *)
let offered_rate p ~clients =
  let mean_size =
    float_of_int (p.Params.tran_size_min + p.Params.tran_size_max) /. 2.
  in
  float_of_int clients
  /. (p.Params.think_time +. (mean_size *. p.Params.op_service_time))

type resource_report = {
  res_site : string;
  res_utilization : float;
  res_throughput : float;
  res_arrivals : int;
  res_completions : int;
  res_wait_mean : float;
  res_wait_total : float;
  res_service_mean : float;
  res_service_total : float;
  res_queue_mean : float;
  res_littles_gap : float;
}

type outcome = {
  throughput_fast : float;
  read_rt_mean : float;
  update_rt_mean : float;
  read_rt_p50 : float;
  read_rt_p95 : float;
  update_rt_p95 : float;
  reads_completed : int;
  updates_completed : int;
  aborts : int;
  fcw_aborts : int;
  blocked_reads : int;
  fenced_reads : int;
  block_wait_mean : float;
  refresh_staleness_mean : float;
  refresh_commits : int;
  wasted_ops : int;
  read_age_mean : float;
  read_age_p50 : float;
  read_age_p95 : float;
  read_age_p99 : float;
  read_missed_mean : float;
  primary_utilization : float;
  secondary_utilization : float;
  check_errors : string list;
  check_report : Checker.report option;
  channel_dropped : int;
  channel_retransmitted : int;
  channel_duplicated : int;
  channel_max_queue : int;
  sim_events : int;
  checker_cpu_s : float;
  watchdog_verdict : Watchdog.verdict option;
  watchdog_alerts : Watchdog.alert list;
  watchdog_peak_state : int;
  watchdog_report : Lsr_obs.Json.t option;
  flight_report : Lsr_obs.Json.t option;
  flight_trigger : string option;
  flight_events : int;
  flight_bytes : int;
  resources : resource_report list;
}

type sec_site = {
  index : int;
  site_name : string;
  sec : Secondary.t;
  res : Resource.t;
  queue_cond : Condition.t;  (* signalled when records arrive *)
  pending_cond : Condition.t;  (* signalled when the pending queue pops *)
  session_cond : Seqcond.t;  (* advanced to seq(DBsec) after each refresh
                                commit; blocked readers wait on their
                                session's required seq, so a commit pays
                                only for the readers it actually unblocks *)
  mutable last_delivery : float;  (* keeps jittered deliveries FIFO *)
  chan : Lsr_faults.Channel.t option;  (* faulty transport, when configured *)
  (* Trace track names, interned once so disabled tracing allocates nothing
     on the hot path. *)
  trk_refresher : string;
  trk_applicators : string;
  trk_clients : string;
}

(* Aggregate instruments (the per-site ones live inside Secondary/Channel). *)
type instruments = {
  c_refresh_commits : Obs.counter;
  c_fcw_aborts : Obs.counter;
  c_forced_aborts : Obs.counter;
  c_blocked_reads : Obs.counter;
  h_read_rt : Obs.histogram;
  h_update_rt : Obs.histogram;
  h_staleness : Obs.histogram;
  h_block_wait : Obs.histogram;
  h_read_age : Obs.histogram;
  h_read_missed : Obs.histogram;
}

let instruments obs =
  {
    c_refresh_commits = Obs.counter obs "refresh.commits";
    c_fcw_aborts = Obs.counter obs "client.fcw_aborts";
    c_forced_aborts = Obs.counter obs "client.forced_aborts";
    c_blocked_reads = Obs.counter obs "client.blocked_reads";
    h_read_rt = Obs.histogram obs "client.read_rt";
    h_update_rt = Obs.histogram obs "client.update_rt";
    h_staleness = Obs.histogram obs "refresh.staleness";
    h_block_wait = Obs.histogram obs "client.block_wait";
    h_read_age = Obs.histogram obs "client.read_age";
    h_read_missed = Obs.histogram obs "client.read_missed";
  }

type state = {
  cfg : config;
  eng : Engine.t;
  primary : Primary.t;
  primary_res : Resource.t;
  propagator : Propagation.t;
  sites : sec_site array;
  sessions : Session.t;
  metrics : Metrics.t;
  ins : instruments;
  history : History.t;  (* used only when cfg.record_history *)
  (* Primary commit timestamp -> virtual commit time, for staleness. *)
  commit_times : (Timestamp.t, float) Hashtbl.t;
  (* Primary commit timestamp -> 1-based commit ordinal, plus the running
     commit count, for the read-freshness metrics (always maintained: the
     outcome reports freshness whether or not a lineage sink is attached). *)
  commit_ord : (Timestamp.t, int) Hashtbl.t;
  mutable commit_count : int;
  (* Primary commit clock (commit ts -> virtual time): resolves [Max_age]
     fence horizons and replays them in the checker's fence audit. *)
  clock : Session.clock;
  (* Online checker; [None] unless [cfg.watchdog]. [track_reads] caches
     [record_history || watchdog]: both consumers need the observed values
     collected on the hot path. *)
  watchdog : Watchdog.t option;
  track_reads : bool;
  mutable fenced_reads : int;
  jitter_rng : Rng.t;
  mutable label_counter : int;
}

let make_site cfg eng wdog fault_rng index =
  let queue_cond = Condition.create () in
  let pending_cond = Condition.create () in
  let session_cond = Seqcond.create () in
  let site_name = Printf.sprintf "secondary-%d" index in
  let sec =
    (* The refresher wakes fenced/session-blocked readers as it commits:
       each refresh commit advances the site's threshold queue to the new
       seq(DBsec) from inside the applicator step, so readers parked on a
       required seq are released by exactly the commit that satisfies
       them. *)
    Secondary.create ~name:site_name ~obs:cfg.obs ~lineage:cfg.lineage
      ~flight:cfg.flight
      ~on_refresh_commit:(fun ts ->
        Seqcond.advance session_cond ts;
        (* The same commit that wakes blocked readers advances the
           watchdog's retirement horizon for this site. *)
        match wdog with
        | Some w -> Watchdog.note_refresh w ~site:index ~seq:ts
        | None -> ())
      ()
  in
  let chan =
    Option.map
      (fun fc ->
        Lsr_faults.Channel.create ~config:fc ~obs:cfg.obs ~lineage:cfg.lineage
          ~flight:cfg.flight ~name:site_name ~rng:(Rng.split fault_rng) ())
      cfg.faults
  in
  { index; site_name; sec;
    res = Resource.create ~name:site_name eng ~discipline:Resource.Processor_sharing;
    queue_cond; pending_cond; session_cond; last_delivery = 0.; chan;
    trk_refresher = Printf.sprintf "site-%d/refresher" index;
    trk_applicators = Printf.sprintf "site-%d/applicators" index;
    trk_clients = Printf.sprintf "site-%d/clients" index }

(* --- Propagator process (Algorithm 3.1 under a 10 s cycle) ---------------- *)

let propagator_process st () =
  let p = st.cfg.params in
  let deliver site records () =
    List.iter (Secondary.enqueue site.sec) records;
    Condition.signal site.queue_cond
  in
  let rec cycle () =
    Process.delay p.Params.propagation_delay;
    let records = Propagation.poll st.propagator in
    if records <> [] then begin
      if Obs.enabled st.cfg.obs then
        Obs.instant st.cfg.obs ~track:"primary/propagator" ~name:"propagate"
          ~args:[ ("records", string_of_int (List.length records)) ]
          ~now:(Engine.now st.eng);
      Array.iter
        (fun site ->
          match site.chan with
          | Some ch ->
            (* The faulty transport owns delivery: records go on the wire
               here and surface, in order, from the channel process's ticks
               (loss, duplication, delay and reordering happen inside). *)
            Lsr_faults.Channel.send ch records
          | None ->
          if p.Params.propagation_jitter <= 0. then deliver site records ()
          else begin
            (* Per-destination scheduling variance; delivery times to one
               site never reorder (the channel stays FIFO). *)
            let now = Engine.now st.eng in
            let at =
              Float.max site.last_delivery
                (now +. (Rng.float st.jitter_rng *. p.Params.propagation_jitter))
            in
            site.last_delivery <- at;
            ignore
              (Engine.schedule st.eng ~delay:(at -. now) (deliver site records))
          end)
        st.sites
    end;
    cycle ()
  in
  cycle ()

(* One process per faulty channel: each [fault_tick] virtual seconds the
   channel advances one tick (arrivals, acks, retransmissions) and whatever
   it delivers in order lands on the secondary's update queue. *)
let channel_process st site ch () =
  let rec loop () =
    Process.delay st.cfg.fault_tick;
    let records = Lsr_faults.Channel.tick ch in
    if records <> [] then begin
      List.iter (Secondary.enqueue site.sec) records;
      Condition.signal site.queue_cond
    end;
    loop ()
  in
  loop ()

(* --- Refresher and applicator processes (Algorithms 3.2 / 3.3) ------------ *)

let run_applicator st site app =
  let p = st.cfg.params in
  let obs = st.cfg.obs in
  let span_args () =
    if Obs.enabled obs then
      [ ("txn", string_of_int (Secondary.applicator_txn app)) ]
    else []
  in
  (* Two phases traced per applicator: [apply] while updates execute, then
     [commit-wait] until its timestamp reaches the pending-queue head. *)
  let cur =
    ref
      (Obs.begin_span obs ~track:site.trk_applicators ~name:"apply"
         ~now:(Engine.now st.eng))
  in
  let waiting = ref false in
  let rec go () =
    match Secondary.applicator_step site.sec app with
    | Secondary.Applied _ ->
      Resource.use site.res p.Params.op_service_time;
      go ()
    | Secondary.Waiting_commit ->
      if not !waiting then begin
        waiting := true;
        let now = Engine.now st.eng in
        Obs.end_span obs !cur ~now ~args:(span_args ());
        cur := Obs.begin_span obs ~track:site.trk_applicators ~name:"commit-wait" ~now
      end;
      let mine = Secondary.applicator_commit_ts app in
      Condition.await site.pending_cond (fun () ->
          Secondary.pending_head site.sec = Some mine);
      go ()
    | Secondary.Committed ts ->
      let now = Engine.now st.eng in
      Obs.end_span obs !cur ~now ~args:(span_args ());
      Obs.incr st.ins.c_refresh_commits;
      let staleness =
        match Hashtbl.find_opt st.commit_times ts with
        | Some committed_at -> now -. committed_at
        | None -> 0.
      in
      Metrics.note_refresh st.metrics ~now ~staleness;
      Obs.observe st.ins.h_staleness staleness;
      (* seq(DBsec) and the site's threshold queue already advanced inside
         [applicator_step] (the [on_refresh_commit] hook). *)
      Condition.signal site.pending_cond
    | Secondary.Done -> ()
  in
  go ()

let refresher_process st site () =
  let p = st.cfg.params in
  let obs = st.cfg.obs in
  let rec loop () =
    let head = Secondary.peek_update site.sec in
    match Secondary.refresher_step site.sec with
    | Secondary.Started txn ->
      if Obs.enabled obs then
        Obs.instant obs ~track:site.trk_refresher ~name:"refresh-start"
          ~args:[ ("txn", string_of_int txn) ]
          ~now:(Engine.now st.eng);
      loop ()
    | Secondary.Aborted _ ->
      (* The eager-propagation ablation pays for the aborted transaction's
         updates before discarding them. *)
      (match head with
      | Some (Txn_record.Abort_rec { wasted; _ }) when wasted <> [] ->
        let n = List.length wasted in
        Resource.use site.res (float_of_int n *. p.Params.op_service_time);
        Metrics.note_wasted_ops st.metrics ~now:(Engine.now st.eng) n
      | Some _ | None -> ());
      loop ()
    | Secondary.Dispatched app ->
      if st.cfg.serial_refresh then run_applicator st site app
      else Process.spawn st.eng (fun () -> run_applicator st site app);
      loop ()
    | Secondary.Blocked_on_pending ->
      Condition.await site.pending_cond (fun () ->
          Secondary.pending_queue_length site.sec = 0);
      loop ()
    | Secondary.Idle ->
      Condition.await site.queue_cond (fun () ->
          Secondary.update_queue_length site.sec > 0);
      loop ()
  in
  loop ()

(* --- Client processes ------------------------------------------------------ *)

let fresh_label st =
  st.label_counter <- st.label_counter + 1;
  Printf.sprintf "s%d" st.label_counter

let execute_update st rng label spec =
  let p = st.cfg.params in
  let pdb = Primary.db st.primary in
  let first_op = History.tick st.history in
  (* One watchdog token for the whole retry loop: only the committed attempt
     becomes a transaction, matching the single history record below. *)
  let wtok =
    match st.watchdog with
    | Some w -> Some (Watchdog.begin_update w ~session:label)
    | None -> None
  in
  let rec attempt () =
    let snapshot = Mvcc.latest_commit_ts pdb in
    let txn = Mvcc.begin_txn pdb in
    let reads = ref [] in
    List.iter
      (fun op ->
        Resource.use st.primary_res p.Params.op_service_time;
        match op with
        | Txn_gen.Read_op key ->
          let v = Mvcc.read pdb txn key in
          if st.track_reads then reads := (key, v) :: !reads
        | Txn_gen.Write_op (key, value) -> Mvcc.write pdb txn key (Some value))
      spec.Txn_gen.ops;
    if Rng.bernoulli rng ~p:p.Params.abort_prob then begin
      Mvcc.abort pdb txn;
      Metrics.note_abort st.metrics ~now:(Engine.now st.eng);
      Obs.incr st.ins.c_forced_aborts;
      attempt ()
    end
    else begin
      let writes = Mvcc.pending_writes txn in
      match Mvcc.commit pdb txn with
      | Mvcc.Committed commit_ts ->
        Hashtbl.replace st.commit_times commit_ts (Engine.now st.eng);
        Session.clock_note st.clock ~commit_ts ~at:(Engine.now st.eng);
        st.commit_count <- st.commit_count + 1;
        Hashtbl.replace st.commit_ord commit_ts st.commit_count;
        if Lsr_obs.Lineage.enabled st.cfg.lineage then
          Lsr_obs.Lineage.emit st.cfg.lineage ~txn:(Mvcc.txn_id txn)
            (Lsr_obs.Lineage.Primary_commit
               { commit_ts; updates = List.length writes });
        Session.note_update_commit st.sessions ~label ~commit_ts;
        if st.track_reads then begin
          (* One id and finish tick shared by the history record and the
             watchdog, so inversion witnesses are comparable across both.
             Nothing yields between [Mvcc.commit] above and here, so the
             watchdog sees commits in commit-timestamp order. *)
          let id = History.fresh_id st.history in
          let finished = History.tick st.history in
          (* The recorder sees the commit before the watchdog judges it, so
             a triggered capture always contains its own witness. *)
          if Lsr_obs.Flight.enabled st.cfg.flight then
            Lsr_obs.Flight.note_commit st.cfg.flight ~txn:(Mvcc.txn_id txn)
              ~hid:id ~commit_ts ~updates:(List.length writes);
          (match (st.watchdog, wtok) with
          | Some w, Some tok ->
            Watchdog.end_update w tok ~id ~now:(Engine.now st.eng)
              ~mvcc_txn:(Mvcc.txn_id txn)
              ~commit:(Some (commit_ts, writes))
              ~snapshot ~reads:(List.rev !reads)
          | _ -> ());
          if st.cfg.record_history then
            History.add st.history
              {
                History.id = id;
                session = label;
                kind = History.Update;
                site = "primary";
                first_op;
                finished;
                snapshot;
                commit_ts = Some commit_ts;
                reads = List.rev !reads;
                writes;
                fence = None;
              }
        end
        else if Lsr_obs.Flight.enabled st.cfg.flight then
          (* No history ids without a tracking consumer; the event stream
             still carries every commit (hid = -1). *)
          Lsr_obs.Flight.note_commit st.cfg.flight ~txn:(Mvcc.txn_id txn)
            ~hid:(-1) ~commit_ts ~updates:(List.length writes)
      | Mvcc.Aborted (Mvcc.Write_conflict _) ->
        (* A real conflict under the first-committer-wins rule (key skew);
           restart like any other abort to maintain the offered load. *)
        Metrics.note_fcw_abort st.metrics ~now:(Engine.now st.eng);
        Obs.incr st.ins.c_fcw_aborts;
        attempt ()
      | Mvcc.Aborted Mvcc.Forced ->
        Metrics.note_abort st.metrics ~now:(Engine.now st.eng);
        Obs.incr st.ins.c_forced_aborts;
        attempt ()
    end
  in
  attempt ()

let execute_read ?fence st site label spec =
  let p = st.cfg.params in
  let sdb = Secondary.db site.sec in
  (* An [Exact] or [Max_age] fence resolves its threshold once, at
     submission (the Minnal per-statement horizon B): blocking does not move
     the target. A [Session_seq] fence stays live, like the guarantee's own
     threshold — it must reduce exactly to the strong-session requirement,
     and under a shared session label (open-loop pool) the session floor can
     rise while this read waits; the audit holds the read to the floor at
     its first operation, which is where the threshold queue re-evaluates
     last (no yield between wake and first_op). *)
  let read_at = Engine.now st.eng in
  let fence_b =
    match fence with
    | None -> fun () -> Timestamp.zero
    | Some f ->
      st.fenced_reads <- st.fenced_reads + 1;
      (match f with
      | Session.Session_seq ->
        fun () -> Session.fence_threshold st.sessions ~label Session.Session_seq
      | Session.Exact _ | Session.Max_age _ ->
        let b =
          Session.fence_threshold st.sessions ~clock:st.clock ~now:read_at
            ~label f
        in
        fun () -> b)
  in
  let required () =
    max (Session.required_seq st.sessions ~label) (fence_b ())
  in
  let may_read () =
    Timestamp.compare (required ()) (Secondary.seq_dbsec site.sec) <= 0
  in
  if not (may_read ()) then begin
    let wait_start = Engine.now st.eng in
    let sp =
      Obs.begin_span st.cfg.obs ~track:site.trk_clients ~name:"session-block"
        ~now:wait_start
    in
    Seqcond.await site.session_cond ~threshold:required;
    let now = Engine.now st.eng in
    Obs.end_span st.cfg.obs sp ~now;
    Obs.incr st.ins.c_blocked_reads;
    Obs.observe st.ins.h_block_wait (now -. wait_start);
    Metrics.note_block st.metrics ~now ~wait:(now -. wait_start)
  end;
  let first_op = History.tick st.history in
  let snapshot = Secondary.seq_dbsec site.sec in
  (* Token taken right at the first-operation tick (no yield since): the
     captured floors equal the post-hoc sweep's floors at [first_op]. *)
  let wtok =
    match st.watchdog with
    | Some w -> Some (Watchdog.begin_read w ~session:label ~snapshot)
    | None -> None
  in
  (* Freshness of the snapshot this read is about to use: how old its newest
     reflected primary commit is, and how many commits it misses. Always
     computed (the outcome reports it); the lineage sink gets the same
     sample when attached. *)
  let now = Engine.now st.eng in
  let reflected =
    if snapshot <= 0 then 0
    else Option.value ~default:0 (Hashtbl.find_opt st.commit_ord snapshot)
  in
  let missed = st.commit_count - reflected in
  let age =
    if missed = 0 then 0.
    else
      match Hashtbl.find_opt st.commit_times snapshot with
      | Some committed_at -> now -. committed_at
      | None -> now
  in
  Metrics.note_read_freshness st.metrics ~now ~age ~missed;
  Obs.observe st.ins.h_read_age age;
  Obs.observe st.ins.h_read_missed (float_of_int missed);
  if Lsr_obs.Lineage.enabled st.cfg.lineage then
    Lsr_obs.Lineage.sample_read st.cfg.lineage ~site:site.site_name ~snapshot;
  Session.note_read ?fence st.sessions ~label ~snapshot;
  let txn = Mvcc.begin_txn sdb in
  let reads = ref [] in
  List.iter
    (fun op ->
      Resource.use site.res p.Params.op_service_time;
      match op with
      | Txn_gen.Read_op key ->
        let v = Mvcc.read sdb txn key in
        if st.track_reads then reads := (key, v) :: !reads
      | Txn_gen.Write_op _ -> assert false (* read-only by construction *))
    spec.Txn_gen.ops;
  Mvcc.end_read sdb txn;
  (* The seq floor this read was held to (-1 = unfenced), recorded so replay
     can show the claim the fence audit later judges. Pure state reads. *)
  let flight_fence () = match fence with None -> -1 | Some _ -> required () in
  if st.track_reads then begin
    let id = History.fresh_id st.history in
    let finished = History.tick st.history in
    let fence_claim =
      Option.map (fun claim -> { History.claim; read_at }) fence
    in
    if Lsr_obs.Flight.enabled st.cfg.flight then
      Lsr_obs.Flight.note_read st.cfg.flight ~site:site.site_name ~hid:id
        ~session:label ~snapshot ~fence:(flight_fence ());
    (match (st.watchdog, wtok) with
    | Some w, Some tok ->
      Watchdog.end_read ?fence:fence_claim w tok ~id ~site:site.site_name
        ~now:(Engine.now st.eng) ~reads:(List.rev !reads)
    | _ -> ());
    if st.cfg.record_history then
      History.add st.history
        {
          History.id = id;
          session = label;
          kind = History.Read_only;
          site = site.site_name;
          first_op;
          finished;
          snapshot;
          commit_ts = None;
          reads = List.rev !reads;
          writes = [];
          fence = fence_claim;
        }
  end
  else if Lsr_obs.Flight.enabled st.cfg.flight then
    Lsr_obs.Flight.note_read st.cfg.flight ~site:site.site_name ~hid:(-1)
      ~session:label ~snapshot ~fence:(flight_fence ())

(* The fence for one read, drawn from the run's fence policy. [All_reads]
   draws nothing from the rng, so a run with [All_reads Session_seq] under
   ALG-SI consumes the exact same random stream as the unfenced
   ALG-STRONG-SESSION-SI run it must reproduce. [Fence_mix] draws once per
   read: weighted classes, [None] entries modelling unfenced traffic. *)
let draw_fence st rng =
  match st.cfg.fence with
  | No_fence -> None
  | All_reads f -> Some f
  | Fence_mix weighted ->
    let total = List.fold_left (fun acc (w, _) -> acc +. Float.max 0. w) 0. weighted in
    if total <= 0. then None
    else begin
      let x = Rng.float rng *. total in
      let rec pick acc = function
        | [] -> None
        | (w, f) :: rest ->
          let acc = acc +. Float.max 0. w in
          if x < acc then f else pick acc rest
      in
      pick 0. weighted
    end

(* Execute one generated transaction against the system and record its
   telemetry — the body shared by both client models. *)
let run_txn st site rng ~label spec =
  let t0 = Engine.now st.eng in
  let is_update = Txn_gen.is_update spec in
  let sp =
    Obs.begin_span st.cfg.obs ~track:site.trk_clients
      ~name:(if is_update then "update" else "read")
      ~now:t0
  in
  (match spec.Txn_gen.kind with
  | Txn_gen.Update -> execute_update st rng label spec
  | Txn_gen.Read_only ->
    (* Optional load-balancing migration: serve this read from a random
       secondary instead of the home site. *)
    let site =
      if st.cfg.migrate_prob > 0. && Rng.bernoulli rng ~p:st.cfg.migrate_prob
      then st.sites.(Rng.uniform rng ~lo:0 ~hi:(Array.length st.sites - 1))
      else site
    in
    let fence = draw_fence st rng in
    execute_read ?fence st site label spec);
  let now = Engine.now st.eng in
  Obs.end_span st.cfg.obs sp ~now;
  Obs.observe
    (if is_update then st.ins.h_update_rt else st.ins.h_read_rt)
    (now -. t0);
  Metrics.note_completion st.metrics ~now ~response_time:(now -. t0) ~is_update

let client_process st site rng () =
  let p = st.cfg.params in
  let label = ref (fresh_label st) in
  let session_end = ref (Rng.exponential rng ~mean:p.Params.session_time) in
  let rec loop () =
    Process.delay (Rng.exponential rng ~mean:p.Params.think_time);
    let now = Engine.now st.eng in
    if now > !session_end then begin
      label := fresh_label st;
      session_end := now +. Rng.exponential rng ~mean:p.Params.session_time
    end;
    let spec = Txn_gen.generate p rng in
    run_txn st site rng ~label:!label spec;
    loop ()
  in
  loop ()

(* --- Open-loop aggregated clients -------------------------------------------

   One arrival process per site replaces its [clients] closed-loop
   coroutines: transactions arrive at the rate the population would offer if
   it never queued ({!offered_rate}), each arrival runs in a short-lived
   process, so live continuations scale with transactions in flight, not
   with the modeled population. Sessions are modeled by a bounded pool of
   rotating labels: each arrival draws a slot uniformly, and a slot whose
   session expired gets a fresh label (the session-guarantee machinery sees
   a subsample of the real population's sessions; the pool is capped so
   state stays bounded at millions of modeled clients). *)

type session_slot = { mutable slot_label : string; mutable slot_end : float }

let open_loop_process st site ~clients ~arrival ~session_pool rng () =
  let p = st.cfg.params in
  let rate = offered_rate p ~clients in
  let pool_size =
    if session_pool > 0 then session_pool else min clients 4096
  in
  let pool =
    Array.init (max 1 pool_size) (fun _ ->
        {
          slot_label = fresh_label st;
          slot_end = Rng.exponential rng ~mean:p.Params.session_time;
        })
  in
  let pick_label now =
    let slot = pool.(Rng.uniform rng ~lo:0 ~hi:(Array.length pool - 1)) in
    if now > slot.slot_end then begin
      slot.slot_label <- fresh_label st;
      slot.slot_end <- now +. Rng.exponential rng ~mean:p.Params.session_time
    end;
    slot.slot_label
  in
  let emit () =
    let label = pick_label (Engine.now st.eng) in
    let txn_rng = Rng.split rng in
    Process.spawn st.eng (fun () ->
        let spec = Txn_gen.generate p txn_rng in
        run_txn st site txn_rng ~label spec)
  in
  match arrival with
  | Poisson ->
    let mean = 1. /. rate in
    let rec loop () =
      Process.delay (Rng.exponential rng ~mean);
      emit ();
      loop ()
    in
    loop ()
  | Mmpp burst ->
    (* Two-state Markov-modulated Poisson process with equal expected dwell
       in each state, rates scaled so the long-run mean rate stays [rate]:
       r_hi = 2·rate·b/(1+b), r_lo = 2·rate/(1+b) for burstiness b =
       r_hi/r_lo. Dwell spans ~50 mean interarrivals so bursts are long
       enough to stress the refresh pipeline. Simulated exactly by racing
       the next arrival against the state-switch instant; the arrival draw
       is redrawn at a switch (the exponential race conditioned on the new
       rate). *)
    let burst = Float.max 1. burst in
    let dwell = 50. /. rate in
    let r_hi = 2. *. rate *. burst /. (1. +. burst) in
    let r_lo = 2. *. rate /. (1. +. burst) in
    let in_high = ref (Rng.bernoulli rng ~p:0.5) in
    let until_switch = ref (Rng.exponential rng ~mean:dwell) in
    let rec loop () =
      let r = if !in_high then r_hi else r_lo in
      let next = Rng.exponential rng ~mean:(1. /. r) in
      if next <= !until_switch then begin
        until_switch := !until_switch -. next;
        Process.delay next;
        emit ()
      end
      else begin
        Process.delay !until_switch;
        in_high := not !in_high;
        until_switch := Rng.exponential rng ~mean:dwell
      end;
      loop ()
    in
    loop ()

(* --- Monitor probe ----------------------------------------------------------

   One sample row of the periodic system monitor: pure reads of simulation
   state (queueing telemetry, refresh backlogs, storage footprints). Nothing
   here mutates or wakes anything, so an attached monitor cannot perturb the
   run. *)

let monitor_probe st () =
  let resource r =
    let n = Resource.name r in
    [
      (n ^ ".util", Resource.utilization r);
      (n ^ ".qlen", Resource.mean_queue_length r);
      (n ^ ".depth", float_of_int (Resource.load r));
    ]
  in
  let primary =
    resource st.primary_res
    @ [
        ( "primary.wal",
          float_of_int (Wal.length (Primary.wal st.primary)) );
        ( "primary.versions",
          float_of_int (Mvcc.version_count (Primary.db st.primary)) );
      ]
  in
  let per_site =
    Array.fold_left
      (fun acc site ->
        acc
        @ resource site.res
        @ [
            ( site.site_name ^ ".update_queue",
              float_of_int (Secondary.update_queue_length site.sec) );
            ( site.site_name ^ ".pending",
              float_of_int (Secondary.pending_queue_length site.sec) );
            ( site.site_name ^ ".versions",
              float_of_int (Mvcc.version_count (Secondary.db site.sec)) );
          ])
      primary st.sites
  in
  match st.watchdog with
  | None -> per_site
  | Some w ->
    per_site
    @ [
        ( "watchdog.alerts",
          float_of_int (Watchdog.verdict w).Watchdog.alerts_total );
        ("watchdog.state", float_of_int (Watchdog.state_size w));
      ]

let resource_report r =
  {
    res_site = Resource.name r;
    res_utilization = Resource.utilization r;
    res_throughput = Resource.throughput r;
    res_arrivals = Resource.arrivals r;
    res_completions = Resource.completions r;
    res_wait_mean = Stat.mean (Resource.wait_stat r);
    res_wait_total = Stat.total (Resource.wait_stat r);
    res_service_mean = Stat.mean (Resource.service_stat r);
    res_service_total = Stat.total (Resource.service_stat r);
    res_queue_mean = Resource.mean_queue_length r;
    res_littles_gap = Option.value ~default:0. (Resource.littles_law_gap r);
  }

(* --- Assembly --------------------------------------------------------------- *)

(* The run's full configuration, embedded in the flight recorder's postmortem
   bundle so a bundle alone identifies the run that produced it: guarantee,
   seed, every workload parameter, client model, fence policy and fault
   schedule. Plain literals only — byte-stable across runs of one seed. *)
let config_json cfg =
  let open Lsr_obs.Json in
  let p = cfg.params in
  let num x = Num x in
  let int n = Num (float_of_int n) in
  let client_mode =
    match cfg.client_mode with
    | Closed_loop -> Str "closed-loop"
    | Open_loop { clients; arrival; session_pool } ->
      Obj
        [
          ("mode", Str "open-loop");
          ("clients", int clients);
          ( "arrival",
            match arrival with
            | Poisson -> Str "poisson"
            | Mmpp b -> Str (Printf.sprintf "mmpp:%g" b) );
          ("session_pool", int session_pool);
        ]
  in
  let fence_json = function
    | None -> Null
    | Some f -> Str (Session.fence_to_string f)
  in
  let fence_policy =
    match cfg.fence with
    | No_fence -> Null
    | All_reads f -> Obj [ ("all_reads", fence_json (Some f)) ]
    | Fence_mix weighted ->
      Arr
        (List.map
           (fun (w, f) -> Obj [ ("weight", num w); ("fence", fence_json f) ])
           weighted)
  in
  let faults =
    match cfg.faults with
    | None -> Null
    | Some fc ->
      let {
        Lsr_faults.Channel.loss;
        dup;
        delay;
        max_delay;
        reorder;
        reorder_window;
        ack_loss;
        rto;
        backoff;
        max_rto;
      } =
        fc
      in
      Obj
        [
          ("loss", num loss);
          ("dup", num dup);
          ("delay", num delay);
          ("max_delay", int max_delay);
          ("reorder", num reorder);
          ("reorder_window", int reorder_window);
          ("ack_loss", num ack_loss);
          ("rto", int rto);
          ("backoff", num backoff);
          ("max_rto", int max_rto);
        ]
  in
  Obj
    [
      ("guarantee", Str (Session.guarantee_name cfg.guarantee));
      ("seed", int cfg.seed);
      ("record_history", Bool cfg.record_history);
      ("watchdog", Bool cfg.watchdog);
      ("serial_refresh", Bool cfg.serial_refresh);
      ("ship_aborted", Bool cfg.ship_aborted);
      ("migrate_prob", num cfg.migrate_prob);
      ("client_mode", client_mode);
      ("fence_policy", fence_policy);
      ("faults", faults);
      ("fault_tick", num cfg.fault_tick);
      ( "params",
        Obj
          [
            ("num_secondaries", int p.Params.num_secondaries);
            ("clients_per_secondary", int p.Params.clients_per_secondary);
            ("think_time", num p.Params.think_time);
            ("session_time", num p.Params.session_time);
            ("update_tran_prob", num p.Params.update_tran_prob);
            ("abort_prob", num p.Params.abort_prob);
            ("tran_size_min", int p.Params.tran_size_min);
            ("tran_size_max", int p.Params.tran_size_max);
            ("op_service_time", num p.Params.op_service_time);
            ("update_op_prob", num p.Params.update_op_prob);
            ("propagation_delay", num p.Params.propagation_delay);
            ("propagation_jitter", num p.Params.propagation_jitter);
            ("warmup", num p.Params.warmup);
            ("duration", num p.Params.duration);
            ("replications", int p.Params.replications);
            ("response_time_cap", num p.Params.response_time_cap);
            ("key_space", int p.Params.key_space);
            ("key_skew", num p.Params.key_skew);
          ] );
    ]

let run cfg =
  let p = cfg.params in
  let eng = Engine.create () in
  (* Lineage events are stamped with virtual time. Binding the clock only
     reads the engine; it cannot feed back into the run. Each run is a new
     epoch: commit timestamps and txn ids restart with the simulation, so
     the sink's freshness bookkeeping must restart too. *)
  Lsr_obs.Lineage.set_clock cfg.lineage (fun () -> Engine.now eng);
  Lsr_obs.Lineage.new_epoch cfg.lineage;
  (* Same contract for the flight recorder: virtual-time stamps, fresh ring
     and horizons per run, any earlier trigger cleared. *)
  Lsr_obs.Flight.set_clock cfg.flight (fun () -> Engine.now eng);
  Lsr_obs.Flight.new_epoch cfg.flight;
  let primary = Primary.create () in
  (* Clock and watchdog exist before the sites: each site's refresh-commit
     hook feeds the watchdog's retirement horizon. *)
  let clock = Session.clock_create () in
  (* First alert seen by the trigger hook, kept for the postmortem bundle's
     journey section (its lineage trace is the implicated txn's journey). *)
  let first_alert = ref None in
  let wdog =
    if cfg.watchdog then
      Some
        (Watchdog.create ~obs:cfg.obs ~lineage:cfg.lineage ~clock
           ?on_alert:
             (if Lsr_obs.Flight.enabled cfg.flight then
                Some
                  (fun a ->
                    (match !first_alert with
                    | None -> first_alert := Some a
                    | Some _ -> ());
                    if not (Lsr_obs.Flight.triggered cfg.flight) then
                      let txns =
                        match a.Watchdog.kind with
                        | Watchdog.Inversion { earlier; _ } ->
                          [ a.Watchdog.txn; earlier ]
                        | _ -> [ a.Watchdog.txn ]
                      in
                      Lsr_obs.Flight.trigger cfg.flight ~reason:"watchdog"
                        ~detail:(Format.asprintf "%a" Watchdog.pp_alert a)
                        ~txns ())
              else None)
           ~sites:p.Params.num_secondaries ())
    else None
  in
  let st =
    {
      cfg;
      eng;
      primary;
      primary_res =
        Resource.create ~name:"primary" eng
          ~discipline:Resource.Processor_sharing;
      propagator =
        Propagation.create ~from:0 ~ship_aborted:cfg.ship_aborted ~obs:cfg.obs
          ~lineage:cfg.lineage ~flight:cfg.flight (Primary.wal primary);
      sites =
        Array.init p.Params.num_secondaries
          (make_site cfg eng wdog (Rng.create (cfg.seed lxor 0xFA17)));
      sessions = Session.create cfg.guarantee;
      metrics = Metrics.create ~warmup:p.Params.warmup ~cap:p.Params.response_time_cap;
      ins = instruments cfg.obs;
      history = History.create ();
      commit_times = Hashtbl.create 4096;
      commit_ord = Hashtbl.create 4096;
      commit_count = 0;
      clock;
      watchdog = wdog;
      track_reads = cfg.record_history || cfg.watchdog;
      fenced_reads = 0;
      jitter_rng = Rng.create (cfg.seed lxor 0x5EED);
      label_counter = 0;
    }
  in
  let root = Rng.create cfg.seed in
  Monitor.attach cfg.monitor eng ~probe:(monitor_probe st);
  Process.spawn eng (propagator_process st);
  Array.iter
    (fun site ->
      match site.chan with
      | Some ch -> Process.spawn eng (channel_process st site ch)
      | None -> ())
    st.sites;
  Array.iter (fun site -> Process.spawn eng (refresher_process st site)) st.sites;
  (match cfg.client_mode with
  | Closed_loop ->
    Array.iter
      (fun site ->
        for _ = 1 to p.Params.clients_per_secondary do
          let rng = Rng.split root in
          Process.spawn eng (client_process st site rng)
        done)
      st.sites
  | Open_loop { clients; arrival; session_pool } ->
    Array.iter
      (fun site ->
        let rng = Rng.split root in
        Process.spawn eng
          (open_loop_process st site ~clients ~arrival ~session_pool rng))
      st.sites);
  Engine.run ~until:p.Params.duration eng;
  let m = st.metrics in
  let measured = p.Params.duration -. p.Params.warmup in
  let checker_started = Sys.time () in
  let check_errors, check_report =
    if not cfg.record_history then ([], None)
    else begin
      let errors = ref [] in
      let report = Checker.analyze ~clock:st.clock st.history in
      List.iter
        (fun v -> errors := ("weak SI violation: " ^ v) :: !errors)
        report.Checker.weak_si_violations;
      List.iter
        (fun v -> errors := v :: !errors)
        report.Checker.fence_violations;
      if not (Checker.satisfies cfg.guarantee report) then
        errors :=
          Printf.sprintf "guarantee %s violated"
            (Session.guarantee_name cfg.guarantee)
          :: !errors;
      Array.iter
        (fun site ->
          match
            Checker.check_completeness ~primary:(Primary.db st.primary)
              ~secondary:(Secondary.db site.sec)
          with
          | Ok () -> ()
          | Error e ->
            errors := Printf.sprintf "secondary %d: %s" site.index e :: !errors)
        st.sites;
      (List.rev !errors, Some report)
    end
  in
  let checker_cpu_s =
    if cfg.record_history then Sys.time () -. checker_started else 0.
  in
  (* The watchdog's verdict joins the same error channel as the post-hoc
     battery, so a violated guarantee fails the run whether or not a history
     was recorded. *)
  let check_errors =
    match st.watchdog with
    | Some w when not (Watchdog.satisfies w cfg.guarantee) ->
      check_errors
      @ [
          Printf.sprintf "watchdog: guarantee %s violated (%d alerts)"
            (Session.guarantee_name cfg.guarantee)
            (Watchdog.verdict w).Watchdog.alerts_total;
        ]
    | Some _ | None -> check_errors
  in
  let secondary_utilization =
    let busy =
      Array.fold_left (fun acc site -> acc +. Resource.busy_time site.res) 0. st.sites
    in
    busy /. (p.Params.duration *. float_of_int (Array.length st.sites))
  in
  let channel_stats =
    Array.fold_left
      (fun acc site ->
        match site.chan with
        | Some ch ->
          Lsr_faults.Channel.add_stats acc (Lsr_faults.Channel.stats ch)
        | None -> acc)
      Lsr_faults.Channel.zero_stats st.sites
  in
  (* Postmortem capture. A watchdog alert already triggered the recorder
     mid-run; a post-hoc battery failure triggers here so history-only runs
     still yield a bundle; otherwise the bundle is the end-of-run window
     (explicitly attaching a recorder always produces one). Built after every
     simulated event, so it cannot perturb the run. *)
  let flight_report, flight_trigger =
    if not (Lsr_obs.Flight.enabled cfg.flight) then (None, None)
    else begin
      if check_errors <> [] && not (Lsr_obs.Flight.triggered cfg.flight) then
        Lsr_obs.Flight.trigger cfg.flight ~reason:"checker"
          ~detail:(String.concat "; " check_errors)
          ();
      let journeys =
        match !first_alert with
        | Some a when a.Watchdog.trace <> [] ->
          [
            ( a.Watchdog.txn,
              Lsr_obs.Json.Arr
                (List.map Lsr_obs.Lineage.event_json a.Watchdog.trace) );
          ]
        | _ -> []
      in
      let metrics =
        if Obs.enabled cfg.obs then
          match Lsr_obs.Json.parse (Obs.metrics_json cfg.obs) with
          | Ok j -> Some j
          | Error _ -> None
        else None
      in
      let bundle =
        Lsr_obs.Flight.bundle_json cfg.flight ~config:(config_json cfg)
          ~journeys ?metrics ()
      in
      (Some bundle, Lsr_obs.Flight.trigger_reason cfg.flight)
    end
  in
  {
    throughput_fast = float_of_int (Metrics.fast_completions m) /. measured;
    read_rt_mean = Stat.mean (Metrics.read_rt m);
    update_rt_mean = Stat.mean (Metrics.update_rt m);
    read_rt_p50 = Lsr_stats.Histogram.median (Metrics.read_rt_hist m);
    read_rt_p95 = Lsr_stats.Histogram.p95 (Metrics.read_rt_hist m);
    update_rt_p95 = Lsr_stats.Histogram.p95 (Metrics.update_rt_hist m);
    reads_completed = Stat.count (Metrics.read_rt m);
    updates_completed = Stat.count (Metrics.update_rt m);
    aborts = Metrics.aborts m;
    fcw_aborts = Metrics.fcw_aborts m;
    blocked_reads = Metrics.blocked_reads m;
    fenced_reads = st.fenced_reads;
    block_wait_mean = Stat.mean (Metrics.block_wait m);
    refresh_staleness_mean = Stat.mean (Metrics.refresh_staleness m);
    refresh_commits = Metrics.refresh_commits m;
    wasted_ops = Metrics.wasted_ops m;
    read_age_mean = Stat.mean (Metrics.read_age m);
    read_age_p50 =
      Lsr_stats.Histogram.median (Metrics.read_age_hist m);
    read_age_p95 = Lsr_stats.Histogram.p95 (Metrics.read_age_hist m);
    read_age_p99 = Lsr_stats.Histogram.p99 (Metrics.read_age_hist m);
    read_missed_mean = Stat.mean (Metrics.read_missed m);
    primary_utilization = Resource.busy_time st.primary_res /. p.Params.duration;
    secondary_utilization;
    check_errors;
    check_report;
    channel_dropped = channel_stats.Lsr_faults.Channel.dropped;
    channel_retransmitted = channel_stats.Lsr_faults.Channel.retransmitted;
    channel_duplicated = channel_stats.Lsr_faults.Channel.duplicated;
    channel_max_queue =
      max channel_stats.Lsr_faults.Channel.max_flight
        channel_stats.Lsr_faults.Channel.max_ooo;
    sim_events = Engine.events_processed eng;
    checker_cpu_s;
    watchdog_verdict = Option.map Watchdog.verdict st.watchdog;
    watchdog_alerts =
      (match st.watchdog with Some w -> Watchdog.alerts w | None -> []);
    watchdog_peak_state =
      (match st.watchdog with Some w -> Watchdog.peak_state w | None -> 0);
    watchdog_report = Option.map Watchdog.report_json st.watchdog;
    flight_report;
    flight_trigger;
    flight_events = Lsr_obs.Flight.events_noted cfg.flight;
    flight_bytes = Lsr_obs.Flight.approx_bytes cfg.flight;
    resources =
      resource_report st.primary_res
      :: Array.to_list (Array.map (fun site -> resource_report site.res) st.sites);
  }
