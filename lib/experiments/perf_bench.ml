open Lsr_core
open Lsr_workload
module Json = Lsr_obs.Json

type phase = {
  label : string;
  cpu_s : float;
  sim_events : int;
  events_per_s : float;
  txns : int;
  txns_per_s : float;
  peak_rss_kb : int;
  checker_cpu_s : float;
  check_errors : int;
  watchdog_alerts : int;
  watchdog_peak_state : int;
  flight_events : int;
  flight_bytes : int;
}

type report = {
  seed : int;
  quick : bool;
  sites : int;
  pair_clients_per_site : int;
  offered_per_site : float;
  virtual_s : float;
  open_loop : phase;
  closed_loop : phase;
  speedup_events_per_s : float;
  showcase_clients : int;
  showcase : phase;
  showcase_plain : phase;
  showcase_watchdog : phase;
  watchdog_overhead_frac : float;
  showcase_flight : phase;
  recorder_overhead_frac : float;
}

(* Resident-set high-water mark of this process, from /proc/self/status
   (VmHWM, in kB). Falls back to the GC's top heap size on systems without
   procfs. Monotone over a process lifetime — which is why every measured
   phase runs in its own forked child (see [measure_in_child]). *)
let peak_rss_kb () =
  let from_proc () =
    match open_in "/proc/self/status" with
    | exception Sys_error _ -> None
    | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
          if String.length line >= 6 && String.sub line 0 6 = "VmHWM:" then begin
            let digits = Buffer.create 8 in
            String.iter
              (fun c -> if c >= '0' && c <= '9' then Buffer.add_char digits c)
              line;
            int_of_string_opt (Buffer.contents digits)
          end
          else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in ic) scan
  in
  match from_proc () with
  | Some kb -> kb
  | None -> Gc.((quick_stat ()).top_heap_words) * (Sys.word_size / 8) / 1024

let measure_once ~label cfg =
  let t0 = Sys.time () in
  let o = Sim_system.run cfg in
  let cpu = Sys.time () -. t0 in
  (* events/s is a simulator-speed measure: exclude the post-run checker
     battery from the denominator (it is reported separately). *)
  let sim_cpu = Float.max 1e-9 (cpu -. o.Sim_system.checker_cpu_s) in
  let txns = o.Sim_system.reads_completed + o.Sim_system.updates_completed in
  {
    label;
    cpu_s = cpu;
    sim_events = o.Sim_system.sim_events;
    events_per_s = float_of_int o.Sim_system.sim_events /. sim_cpu;
    txns;
    txns_per_s = float_of_int txns /. sim_cpu;
    peak_rss_kb = peak_rss_kb ();
    checker_cpu_s = o.Sim_system.checker_cpu_s;
    check_errors = List.length o.Sim_system.check_errors;
    watchdog_alerts =
      (match o.Sim_system.watchdog_verdict with
      | Some v -> v.Lsr_core.Watchdog.alerts_total
      | None -> 0);
    watchdog_peak_state = o.Sim_system.watchdog_peak_state;
    flight_events = o.Sim_system.flight_events;
    flight_bytes = o.Sim_system.flight_bytes;
  }

(* Each rep runs in a forked child and ships its phase record back through a
   pipe. Process isolation buys two things: [peak_rss_kb] becomes *this
   phase's* high-water mark instead of the monotone process-wide one (so
   phase ordering no longer matters and a 3 GB fleet doesn't inflate every
   later phase's number), and reps don't stack heaps — the OCaml 5.1 runtime
   never returns major-heap pools to the OS, so two in-process closed-loop
   reps would peak at nearly double the real footprint. Falls back to
   in-process measurement where [fork] is unavailable. *)
let measure_in_child ~label cfg =
  match Unix.pipe () with
  | exception Unix.Unix_error _ -> measure_once ~label cfg
  | r, w ->
    (match Unix.fork () with
    | exception Unix.Unix_error _ ->
      Unix.close r;
      Unix.close w;
      measure_once ~label cfg
    | 0 ->
      Unix.close r;
      let oc = Unix.out_channel_of_descr w in
      Marshal.to_channel oc (measure_once ~label cfg) [];
      close_out oc;
      (* Skip at_exit: the child must not flush/close the parent's shared
         stdout buffers or run its exit hooks twice. *)
      Unix._exit 0
    | pid ->
      Unix.close w;
      let ic = Unix.in_channel_of_descr r in
      let result =
        match (Marshal.from_channel ic : phase) with
        | p -> Ok p
        | exception (End_of_file | Failure _) -> Error ()
      in
      close_in ic;
      let _, status = Unix.waitpid [] pid in
      (match (status, result) with
      | Unix.WEXITED 0, Ok p -> p
      | _ -> failwith (label ^ ": measurement child failed")))

(* Best-of-[reps] timing: the simulation is deterministic (every rep fires
   the same events and completes the same transactions — asserted), so reps
   differ only in CPU time, which on shared hardware is noised by co-tenant
   memory-bandwidth contention. Keeping the fastest rep is the standard way
   to report the cost the code actually has. *)
let measure ?(reps = 1) ~label cfg =
  let best = ref (measure_in_child ~label cfg) in
  for _ = 2 to reps do
    let p = measure_in_child ~label cfg in
    if p.sim_events <> !best.sim_events || p.txns <> !best.txns then
      failwith (label ^ ": nondeterministic rep (events/txns differ)");
    if p.cpu_s -. p.checker_cpu_s < !best.cpu_s -. !best.checker_cpu_s then
      best := p
  done;
  !best

(* The paired comparison and the showcase both run with a tiny per-operation
   service time so the sites stay far from saturation even at huge
   multiprogramming levels, and a short propagation cycle so session-blocked
   reads drain continuously instead of piling up across a 10-second sniff
   interval: the bench measures simulator speed, not the paper's contention
   behaviour. *)
let scaled_params ?think_time ~sites ~clients ~propagation ~warmup ~duration ()
    =
  {
    Params.default with
    Params.num_secondaries = sites;
    clients_per_secondary = clients;
    think_time = Option.value ~default:Params.default.Params.think_time think_time;
    op_service_time = 1e-6;
    propagation_delay = propagation;
    warmup;
    duration;
  }

let run ?(progress = ignore) ~quick ~seed () =
  let sites = 2 in
  (* Full-scale timing phases run best-of-3 (pair) / best-of-2 (showcase);
     quick mode is for shape checks, one rep is enough. *)
  let pair_reps = if quick then 1 else 3 in
  let showcase_reps = if quick then 1 else 2 in
  let pair_clients = if quick then 2_000 else 1_000_000 in
  let showcase_clients_per_site = if quick then 10_000 else 500_000 in
  let virtual_s = 8. in
  (* Think time scales with the client count so the offered load stays at
     the same comfortably-unsaturated ~28.6k txn/s/site while the fleet
     grows: the pair comparison isolates the per-client cost (coroutine,
     think timer, heap residency) that the aggregated model eliminates. *)
  let pair_params =
    scaled_params
      ~think_time:
        (Params.default.Params.think_time
        *. Float.max 1.0 (float_of_int pair_clients /. 200_000.))
      ~sites ~clients:pair_clients ~propagation:1.0 ~warmup:2.
      ~duration:virtual_s ()
  in
  (* Weak guarantee: reads never block on seq(c), so every offered
     transaction turns into simulator events at full rate in both client
     models — the cleanest raw-speed comparison. *)
  let pair_cfg mode =
    {
      (Sim_system.config pair_params Session.Weak ~seed) with
      Sim_system.client_mode = mode;
    }
  in
  progress
    (Printf.sprintf "open-loop pair run: %d modeled clients/site" pair_clients);
  let open_loop =
    measure ~reps:pair_reps ~label:"open-loop"
      (pair_cfg
         (Sim_system.Open_loop
            { clients = pair_clients; arrival = Sim_system.Poisson; session_pool = 0 }))
  in
  progress
    (Printf.sprintf "closed-loop pair run: %d coroutine clients/site"
       pair_clients);
  let closed_loop =
    measure ~reps:pair_reps ~label:"closed-loop" (pair_cfg Sim_system.Closed_loop)
  in
  progress
    (Printf.sprintf "showcase: %d modeled clients with full checker battery"
       (sites * showcase_clients_per_site));
  let showcase_params =
    {
      (scaled_params ~sites ~clients:showcase_clients_per_site ~propagation:0.5
         ~warmup:0.5 ~duration:3. ())
      with
      (* Short transactions keep the recorded history (and so the checker's
         input) proportional to the transaction count, not to duration. *)
      Params.tran_size_min = 2;
      tran_size_max = 6;
    }
  in
  let showcase_cfg =
    {
      (Sim_system.config showcase_params Session.Strong_session ~seed) with
      Sim_system.client_mode =
        Sim_system.Open_loop
          {
            clients = showcase_clients_per_site;
            arrival = Sim_system.Poisson;
            session_pool = 0;
          };
    }
  in
  (* Unchecked baseline first, then the bounded-memory online check, then the
     linear-history post-hoc battery: the watchdog's CPU and state cost are
     both measured against the exact same run (same seed, same trajectory —
     attaching the watchdog never changes outcomes). *)
  progress "showcase baseline: no history, no online check";
  let showcase_plain =
    measure ~reps:showcase_reps ~label:"showcase-plain" showcase_cfg
  in
  progress "showcase watchdog: online check, history recording off";
  let showcase_watchdog =
    measure ~reps:showcase_reps ~label:"showcase-watchdog"
      { showcase_cfg with Sim_system.watchdog = true }
  in
  (* Flight recorder alone against the same unchecked baseline: the ring
     absorbs the full event stream (every commit, pipeline stage and read)
     while staying O(capacity) — [flight_bytes] is the committed evidence. *)
  progress "showcase flight: bounded event recorder, no online check";
  let showcase_flight =
    measure ~reps:showcase_reps ~label:"showcase-flight"
      { showcase_cfg with Sim_system.flight = Lsr_obs.Flight.create () }
  in
  let showcase =
    measure ~reps:showcase_reps ~label:"showcase"
      { showcase_cfg with Sim_system.record_history = true }
  in
  {
    seed;
    quick;
    sites;
    pair_clients_per_site = pair_clients;
    offered_per_site = Sim_system.offered_rate pair_params ~clients:pair_clients;
    virtual_s;
    open_loop;
    closed_loop;
    speedup_events_per_s = open_loop.events_per_s /. closed_loop.events_per_s;
    showcase_clients = sites * showcase_clients_per_site;
    showcase;
    showcase_plain;
    showcase_watchdog;
    watchdog_overhead_frac =
      (showcase_watchdog.cpu_s -. showcase_plain.cpu_s)
      /. Float.max 1e-9 showcase_plain.cpu_s;
    showcase_flight;
    recorder_overhead_frac =
      (showcase_flight.cpu_s -. showcase_plain.cpu_s)
      /. Float.max 1e-9 showcase_plain.cpu_s;
  }

(* --- JSON ------------------------------------------------------------------- *)

let phase_to_json p =
  Json.Obj
    [
      ("label", Json.Str p.label);
      ("cpu_s", Json.Num p.cpu_s);
      ("sim_events", Json.Num (float_of_int p.sim_events));
      ("events_per_s", Json.Num p.events_per_s);
      ("txns", Json.Num (float_of_int p.txns));
      ("txns_per_s", Json.Num p.txns_per_s);
      ("peak_rss_kb", Json.Num (float_of_int p.peak_rss_kb));
      ("checker_cpu_s", Json.Num p.checker_cpu_s);
      ("check_errors", Json.Num (float_of_int p.check_errors));
      ("watchdog_alerts", Json.Num (float_of_int p.watchdog_alerts));
      ("watchdog_peak_state", Json.Num (float_of_int p.watchdog_peak_state));
      ("flight_events", Json.Num (float_of_int p.flight_events));
      ("flight_bytes", Json.Num (float_of_int p.flight_bytes));
    ]

let to_json r =
  Json.Obj
    [
      ("bench", Json.Str "perf");
      ("seed", Json.Num (float_of_int r.seed));
      ("quick", Json.Bool r.quick);
      ("sites", Json.Num (float_of_int r.sites));
      ("pair_clients_per_site", Json.Num (float_of_int r.pair_clients_per_site));
      ("offered_per_site", Json.Num r.offered_per_site);
      ("virtual_s", Json.Num r.virtual_s);
      ("open_loop", phase_to_json r.open_loop);
      ("closed_loop", phase_to_json r.closed_loop);
      ("speedup_events_per_s", Json.Num r.speedup_events_per_s);
      ("showcase_clients", Json.Num (float_of_int r.showcase_clients));
      ("showcase", phase_to_json r.showcase);
      ("showcase_plain", phase_to_json r.showcase_plain);
      ("showcase_watchdog", phase_to_json r.showcase_watchdog);
      ("watchdog_overhead_frac", Json.Num r.watchdog_overhead_frac);
      ("showcase_flight", phase_to_json r.showcase_flight);
      ("recorder_overhead_frac", Json.Num r.recorder_overhead_frac);
    ]

let phase_fields =
  [
    ("label", `Str); ("cpu_s", `Num); ("sim_events", `Num);
    ("events_per_s", `Num); ("txns", `Num); ("txns_per_s", `Num);
    ("peak_rss_kb", `Num); ("checker_cpu_s", `Num); ("check_errors", `Num);
    ("watchdog_alerts", `Num); ("watchdog_peak_state", `Num);
    ("flight_events", `Num); ("flight_bytes", `Num);
  ]

let check_field ctx j (name, kind) =
  match (Json.member name j, kind) with
  | None, _ -> Error (Printf.sprintf "%s: missing field %S" ctx name)
  | Some (Json.Num f), `Num ->
    if Float.is_finite f then Ok ()
    else Error (Printf.sprintf "%s: field %S is not finite" ctx name)
  | Some (Json.Str _), `Str | Some (Json.Bool _), `Bool | Some (Json.Obj _), `Obj
    ->
    Ok ()
  | Some _, _ -> Error (Printf.sprintf "%s: field %S has the wrong type" ctx name)

let rec check_all ctx j = function
  | [] -> Ok ()
  | f :: rest -> (
    match check_field ctx j f with
    | Error _ as e -> e
    | Ok () -> check_all ctx j rest)

let validate j =
  let top_fields =
    [
      ("bench", `Str); ("seed", `Num); ("quick", `Bool); ("sites", `Num);
      ("pair_clients_per_site", `Num); ("offered_per_site", `Num);
      ("virtual_s", `Num); ("open_loop", `Obj); ("closed_loop", `Obj);
      ("speedup_events_per_s", `Num); ("showcase_clients", `Num);
      ("showcase", `Obj); ("showcase_plain", `Obj);
      ("showcase_watchdog", `Obj); ("watchdog_overhead_frac", `Num);
      ("showcase_flight", `Obj); ("recorder_overhead_frac", `Num);
    ]
  in
  match check_all "report" j top_fields with
  | Error _ as e -> e
  | Ok () ->
    let check_phase name =
      match Json.member name j with
      | Some p -> check_all name p phase_fields
      | None -> Error (Printf.sprintf "missing phase %S" name)
    in
    let rec phases = function
      | [] -> (
        match Json.member "bench" j with
        | Some (Json.Str "perf") -> Ok ()
        | Some _ | None -> Error "field \"bench\" must be \"perf\"")
      | name :: rest -> (
        match check_phase name with Error _ as e -> e | Ok () -> phases rest)
    in
    phases
      [ "open_loop"; "closed_loop"; "showcase"; "showcase_plain";
        "showcase_watchdog"; "showcase_flight" ]

let write r ~file =
  let oc = open_out file in
  output_string oc (Json.to_string (to_json r));
  output_char oc '\n';
  close_out oc

(* --- Rendering --------------------------------------------------------------- *)

let phase_rows p =
  [
    p.label;
    Printf.sprintf "%.2f" p.cpu_s;
    string_of_int p.sim_events;
    Printf.sprintf "%.0f" p.events_per_s;
    string_of_int p.txns;
    Printf.sprintf "%.0f" p.txns_per_s;
    string_of_int p.peak_rss_kb;
    Printf.sprintf "%.2f" p.checker_cpu_s;
    string_of_int p.check_errors;
    string_of_int p.watchdog_alerts;
    string_of_int p.watchdog_peak_state;
    string_of_int p.flight_events;
    string_of_int p.flight_bytes;
  ]

let print r =
  Lsr_stats.Table_fmt.print
    ~title:
      (Printf.sprintf
         "Simulator scaling (seed %d, %d sites x %d clients paired at %.0f \
          txn/s/site; showcase %d modeled clients)"
         r.seed r.sites r.pair_clients_per_site r.offered_per_site
         r.showcase_clients)
    ~header:
      [
        "phase"; "cpu s"; "events"; "events/s"; "txns"; "txns/s"; "rss kB";
        "checker s"; "check errs"; "wd alerts"; "wd state"; "fr events";
        "fr bytes";
      ]
    [
      phase_rows r.open_loop; phase_rows r.closed_loop;
      phase_rows r.showcase_plain; phase_rows r.showcase_watchdog;
      phase_rows r.showcase_flight; phase_rows r.showcase;
    ];
  Printf.printf "open-loop / closed-loop events-per-second speedup: %.2fx\n%!"
    r.speedup_events_per_s;
  Printf.printf
    "online watchdog cpu overhead over the unchecked showcase: %.1f%%\n%!"
    (100. *. r.watchdog_overhead_frac);
  Printf.printf
    "flight recorder cpu overhead over the unchecked showcase: %.1f%%\n%!"
    (100. *. r.recorder_overhead_frac)
