(** Periodic virtual-time system monitor.

    A monitor samples a probe — a pure read of simulation state — every
    [interval] virtual seconds into a deterministic {!Lsr_obs.Timeseries}.
    {!Sim_system} wires the probe: per-resource utilization ρ, time-average
    queue length L and instantaneous depth, per-secondary refresh backlog
    (update and pending queues), primary WAL length and per-site MVCC
    version counts.

    Same contract as the other sinks ({!Lsr_obs.Obs}, {!Lsr_obs.Lineage}):
    {!null} costs nothing, and attaching an enabled monitor never changes
    simulation outcomes — the sampling process only reads state, draws no
    randomness and wakes no other process, so every other event fires at
    exactly the time it would have fired unobserved
    ([test_sim_monitor_does_not_perturb] pins this).

    One monitor may span several runs (a sweep): {!attach} bumps the series'
    run ordinal, keeping samples of successive runs apart even though each
    run restarts virtual time at zero. *)

type t

(** The disabled instance: {!attach} is a no-op. The default everywhere. *)
val null : t

(** [create ?interval ()] is an enabled monitor sampling every [interval]
    (default 1.0) virtual seconds.
    @raise Invalid_argument if [interval] is not positive and finite. *)
val create : ?interval:float -> unit -> t

val enabled : t -> bool
val interval : t -> float

(** The collected samples. *)
val series : t -> Lsr_obs.Timeseries.t

(** [attach t eng ~probe] starts the sampling process on [eng] (first
    sample one interval in). Called by {!Sim_system.run}; a no-op on
    {!null}. *)
val attach : t -> Lsr_sim.Engine.t -> probe:(unit -> (string * float) list) -> unit
