(** Experiment definitions: one runner per figure of the paper's evaluation
    (Figures 2–8) plus the ablation studies listed in DESIGN.md.

    Each runner sweeps its x-axis, executing [replications] independent
    simulation runs per (point, algorithm) pair, and reduces them to 95%
    confidence intervals exactly as §6.1 prescribes. Figures sharing runs
    (2/3/4 and 5/6/7) are produced together so the sweep executes once. *)

open Lsr_core
open Lsr_workload
open Lsr_stats

type point = {
  x : float;
  interval : Confidence.interval;
}

type series = {
  label : string;
  points : point list;
}

type figure = {
  id : string;  (** e.g. "fig2" *)
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  notes : string list;
}

(** Sweep configuration. [quick] shortens runs and replication counts while
    preserving curve shapes; [progress] receives one message per completed
    run; [base_params] overrides the Table 1 base entirely (tiny
    configurations for tests). *)
type run_opts = {
  quick : bool;
  seed : int;
  progress : string -> unit;
  base_params : Lsr_workload.Params.t option;
  obs : Lsr_obs.Obs.t;
      (** attached to every simulation run of the sweep; counters and
          histograms then aggregate across all runs of the sweep. Default
          {!Lsr_obs.Obs.null}. *)
  lineage : Lsr_obs.Lineage.t;
      (** lineage sink attached to every run of the sweep (journeys and
          freshness samples accumulate across runs). Default
          {!Lsr_obs.Lineage.null}. *)
  monitor : Monitor.t;
      (** periodic system monitor attached to every run of the sweep; each
          run bumps the series' run ordinal so the time-series of successive
          runs stay apart. Default {!Monitor.null}. *)
  watchdog : bool;
      (** attach the online {!Lsr_core.Watchdog} to every run of the sweep
          (per-run reports then reach the caller through [on_outcome]'s
          outcome). Default [false]. *)
  flight : Lsr_obs.Flight.t;
      (** flight recorder attached to every run of the sweep (each run
          re-arms it via [new_epoch]; per-run bundles reach the caller
          through [on_outcome]'s outcome). Default {!Lsr_obs.Flight.null}. *)
  on_outcome : string -> Sim_system.config -> Sim_system.outcome -> unit;
      (** called once per completed simulation run with a unique tag
          ("<sweep tag> rep <i>"), the exact config it ran under and its
          outcome — the hook the bench bottleneck report collects through.
          Default ignores. *)
}

val default_opts : run_opts

(** Figures 2, 3 and 4: throughput within 3 s, read-only response time and
    update response time vs number of clients (5 secondaries, 80/20). *)
val fig2_3_4 : run_opts -> figure * figure * figure

(** Figures 5, 6 and 7: the same three metrics vs number of secondaries at
    20 clients per secondary (80/20), with the ideal linear-scaling
    reference of Figure 5. *)
val fig5_6_7 : run_opts -> figure * figure * figure

(** Figure 8: throughput vs number of secondaries under the 95/5 browsing
    mix. *)
val fig8 : run_opts -> figure

(** Extension figure (not part of the paper's evaluation, so not in the
    default `all` target): p95 read snapshot age vs number of clients —
    staleness as experienced by read-only transactions, from the freshness
    observer's per-read samples. *)
val fig_staleness : run_opts -> figure

(** Extension figure (not part of the paper's evaluation, so not in the
    default `all` target): per-site utilization (primary and mean secondary,
    in %) vs total clients for every guarantee — where the capacity goes as
    the system approaches its throughput knee. *)
val fig_utilization : run_opts -> figure

(** Extension figure (not part of the paper's evaluation, so not in the
    default `all` target): the staleness/latency tradeoff of bounded-staleness
    read fences. Every read carries a [Max_age d] fence under ALG-WEAK-SI and
    the sweep tightens [d] across at least four settings (plus an unfenced
    baseline, plotted one decade looser than the loosest bound); series are
    read response time p50/p95 and p95 observed snapshot age. *)
val fig_fence : run_opts -> figure

(** Extension figure (not part of the paper's evaluation, so not in the
    default `all` target): the run-time value of the static planner's mixed
    assignment ({!Lsr_analysis.Plan}). Three deployments of the [fence_mix]
    workload shape under ambient ALG-WEAK-SI — every read Session_seq-fenced
    (the uniform weakest-safe guarantee), only the plan's inversion-prone
    fraction fenced, and unfenced — compared on mean read response time vs
    load. *)
val fig_plan : run_opts -> figure

(** Extension figure (not part of the paper's evaluation, so not in the
    default `all` target): the online watchdog's cost vs run length against
    the linear-history post-hoc checker. Per run length, the same seeded
    trajectory is run three ways — unchecked, watchdog-on with history off,
    and history-on with the post-hoc battery; series are the watchdog's peak
    state, the recorded history size, and the CPU cost of each checking
    mode. The watchdog series stay bounded by the active visibility window
    while the post-hoc series grow with the run. *)
val fig_watchdog : run_opts -> figure

(** Extension figure (not part of the paper's evaluation, so not in the
    default `all` target): the flight recorder's cost vs run length. Per
    run length, the same seeded trajectory is run unrecorded and with an
    enabled {!Lsr_obs.Flight} ring; series are the recorder's byte
    footprint (flat at the ring capacity), the events it absorbed (linear
    in the run) and its CPU overhead. The black-box evidence behind the
    committed [recorder_overhead_frac]. *)
val fig_flight : run_opts -> figure

(** Ablation: commit-time propagation (Algorithm 3.1) vs the "simple method"
    that ships aborted transactions' work, across abort probabilities. *)
val ablate_propagation : run_opts -> figure

(** Ablation: concurrent applicator threads vs serial refresh. *)
val ablate_applicators : run_opts -> figure

(** Ablation: strong session SI vs PCSI vs weak SI when read-only
    transactions are load-balanced across secondaries (§7 comparison). *)
val ablate_pcsi : run_opts -> figure

(** Ablation: sensitivity of strong-session-SI read latency to the
    propagation delay. *)
val ablate_delay : run_opts -> figure

(** Extension ablation (not part of the paper's evaluation, so not in the
    default `all` target): Zipf key skew creates real first-committer-wins
    conflicts at the primary; reports FCW aborts per 1000 committed updates.
    Exercises the abort-propagation path end to end under contention. *)
val ablate_contention : run_opts -> figure

(** All three guarantees, in the paper's plotting order. *)
val algorithms : Session.guarantee list

(** The parameter set a given figure uses (for reporting). *)
val params_for : quick:bool -> Params.t
