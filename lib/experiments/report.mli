(** Rendering of experiment results: paper-style series tables on stdout and
    optional CSV dumps for plotting. *)

val render_figure : Figures.figure -> string

val print_figure : Figures.figure -> unit

(** [csv_of_figure f] with header [x, <series> mean, <series> ci, ...]. *)
val csv_of_figure : Figures.figure -> string

(** [write_csv ~dir f] writes [<dir>/<id>.csv], creating [dir] if needed,
    and returns the path. *)
val write_csv : dir:string -> Figures.figure -> string

(** Reprint Table 1 for a parameter set. *)
val print_table1 : Lsr_workload.Params.t -> unit
