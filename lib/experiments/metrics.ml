open Lsr_sim

type t = {
  warmup : float;
  cap : float;
  mutable fast : int;
  read_rt : Stat.t;
  update_rt : Stat.t;
  read_rt_hist : Lsr_stats.Histogram.t;
  update_rt_hist : Lsr_stats.Histogram.t;
  mutable aborts : int;
  mutable fcw_aborts : int;
  mutable blocked : int;
  block_wait : Stat.t;
  staleness : Stat.t;
  mutable refreshes : int;
  mutable wasted : int;
  read_age : Stat.t;
  read_age_hist : Lsr_stats.Histogram.t;
  read_missed : Stat.t;
}

let create ~warmup ~cap =
  {
    warmup;
    cap;
    fast = 0;
    read_rt = Stat.create ();
    update_rt = Stat.create ();
    read_rt_hist = Lsr_stats.Histogram.create ();
    update_rt_hist = Lsr_stats.Histogram.create ();
    aborts = 0;
    fcw_aborts = 0;
    blocked = 0;
    block_wait = Stat.create ();
    staleness = Stat.create ();
    refreshes = 0;
    wasted = 0;
    read_age = Stat.create ();
    read_age_hist = Lsr_stats.Histogram.create ();
    read_missed = Stat.create ();
  }

let measuring t now = now > t.warmup

let note_completion t ~now ~response_time ~is_update =
  if measuring t now then begin
    if response_time <= t.cap then t.fast <- t.fast + 1;
    Stat.record (if is_update then t.update_rt else t.read_rt) response_time;
    Lsr_stats.Histogram.record
      (if is_update then t.update_rt_hist else t.read_rt_hist)
      response_time
  end

let note_abort t ~now = if measuring t now then t.aborts <- t.aborts + 1

let note_fcw_abort t ~now =
  if measuring t now then begin
    t.aborts <- t.aborts + 1;
    t.fcw_aborts <- t.fcw_aborts + 1
  end

let note_block t ~now ~wait =
  if measuring t now then begin
    t.blocked <- t.blocked + 1;
    Stat.record t.block_wait wait
  end

let note_refresh t ~now ~staleness =
  if measuring t now then begin
    t.refreshes <- t.refreshes + 1;
    Stat.record t.staleness staleness
  end

let note_wasted_ops t ~now n = if measuring t now then t.wasted <- t.wasted + n

let note_read_freshness t ~now ~age ~missed =
  if measuring t now then begin
    Stat.record t.read_age age;
    Lsr_stats.Histogram.record t.read_age_hist age;
    Stat.record t.read_missed (float_of_int missed)
  end

let fast_completions t = t.fast
let read_rt t = t.read_rt
let update_rt t = t.update_rt
let read_rt_hist t = t.read_rt_hist
let update_rt_hist t = t.update_rt_hist
let aborts t = t.aborts
let fcw_aborts t = t.fcw_aborts
let blocked_reads t = t.blocked
let block_wait t = t.block_wait
let refresh_staleness t = t.staleness
let refresh_commits t = t.refreshes
let wasted_ops t = t.wasted
let read_age t = t.read_age
let read_age_hist t = t.read_age_hist
let read_missed t = t.read_missed
