open Lsr_stats
module Lineage = Lsr_obs.Lineage
module Json = Lsr_obs.Json

type row = {
  site : string;
  reads : int;
  age_p50 : float;
  age_p95 : float;
  age_p99 : float;
  missed_mean : float;
  missed_max : int;
  refreshes : int;
  lag_p50 : float;
  lag_p95 : float;
  lag_p99 : float;
}

let row_of_site lineage site =
  let fresh = Lineage.freshness_samples lineage ~site in
  let lags = Lineage.refresh_lags lineage ~site in
  let age_hist = Histogram.create () in
  let lag_hist = Histogram.create () in
  let missed_sum = ref 0 in
  let missed_max = ref 0 in
  List.iter
    (fun f ->
      Histogram.record age_hist f.Lineage.age;
      missed_sum := !missed_sum + f.Lineage.missed;
      if f.Lineage.missed > !missed_max then missed_max := f.Lineage.missed)
    fresh;
  List.iter (Histogram.record lag_hist) lags;
  let reads = List.length fresh in
  {
    site;
    reads;
    age_p50 = Histogram.median age_hist;
    age_p95 = Histogram.p95 age_hist;
    age_p99 = Histogram.p99 age_hist;
    missed_mean =
      (if reads = 0 then 0. else float_of_int !missed_sum /. float_of_int reads);
    missed_max = !missed_max;
    refreshes = List.length lags;
    lag_p50 = Histogram.median lag_hist;
    lag_p95 = Histogram.p95 lag_hist;
    lag_p99 = Histogram.p99 lag_hist;
  }

let of_lineage lineage =
  List.map (row_of_site lineage) (Lineage.sites lineage)

let header =
  [
    "site"; "reads"; "age p50"; "age p95"; "age p99"; "missed mean";
    "missed max"; "refreshes"; "lag p50"; "lag p95"; "lag p99";
  ]

let render rows =
  let cells r =
    [
      r.site;
      string_of_int r.reads;
      Table_fmt.float_cell r.age_p50;
      Table_fmt.float_cell r.age_p95;
      Table_fmt.float_cell r.age_p99;
      Table_fmt.float_cell r.missed_mean;
      string_of_int r.missed_max;
      string_of_int r.refreshes;
      Table_fmt.float_cell r.lag_p50;
      Table_fmt.float_cell r.lag_p95;
      Table_fmt.float_cell r.lag_p99;
    ]
  in
  Table_fmt.render ~header (List.map cells rows)

let to_json rows =
  let row_json r =
    Json.Obj
      [
        ("site", Json.Str r.site);
        ("reads", Json.Num (float_of_int r.reads));
        ("age_p50", Json.Num r.age_p50);
        ("age_p95", Json.Num r.age_p95);
        ("age_p99", Json.Num r.age_p99);
        ("missed_mean", Json.Num r.missed_mean);
        ("missed_max", Json.Num (float_of_int r.missed_max));
        ("refreshes", Json.Num (float_of_int r.refreshes));
        ("lag_p50", Json.Num r.lag_p50);
        ("lag_p95", Json.Num r.lag_p95);
        ("lag_p99", Json.Num r.lag_p99);
      ]
  in
  Json.Obj [ ("sites", Json.Arr (List.map row_json rows)) ]

let json_string rows = Json.to_string (to_json rows)

let write rows ~file =
  Lsr_obs.Fsutil.ensure_parent file;
  let oc = open_out file in
  output_string oc (json_string rows);
  close_out oc
