open Lsr_stats
module Lineage = Lsr_obs.Lineage
module Json = Lsr_obs.Json

type row = {
  site : string;
  reads : int;
  age_p50 : float;
  age_p95 : float;
  age_p99 : float;
  missed_mean : float;
  missed_max : int;
  refreshes : int;
  lag_p50 : float;
  lag_p95 : float;
  lag_p99 : float;
}

let row_of_site lineage site =
  let fresh = Lineage.freshness_samples lineage ~site in
  let lags = Lineage.refresh_lags lineage ~site in
  let age_hist = Histogram.create () in
  let lag_hist = Histogram.create () in
  let missed_sum = ref 0 in
  let missed_max = ref 0 in
  List.iter
    (fun f ->
      Histogram.record age_hist f.Lineage.age;
      missed_sum := !missed_sum + f.Lineage.missed;
      if f.Lineage.missed > !missed_max then missed_max := f.Lineage.missed)
    fresh;
  List.iter (Histogram.record lag_hist) lags;
  let reads = List.length fresh in
  let refreshes = List.length lags in
  (* A site with no samples gets explicit zero quantiles, never a quantile of
     an empty histogram: the row must stay finite on its own (the table
     renders "-" for the empty sections, and the JSON must stay null-free
     without relying on downstream clamping). *)
  let quantile hist n q = if n = 0 then 0. else q hist in
  {
    site;
    reads;
    age_p50 = quantile age_hist reads Histogram.median;
    age_p95 = quantile age_hist reads Histogram.p95;
    age_p99 = quantile age_hist reads Histogram.p99;
    missed_mean =
      (if reads = 0 then 0. else float_of_int !missed_sum /. float_of_int reads);
    missed_max = !missed_max;
    refreshes;
    lag_p50 = quantile lag_hist refreshes Histogram.median;
    lag_p95 = quantile lag_hist refreshes Histogram.p95;
    lag_p99 = quantile lag_hist refreshes Histogram.p99;
  }

let of_lineage lineage =
  List.map (row_of_site lineage) (Lineage.sites lineage)

let header =
  [
    "site"; "reads"; "age p50"; "age p95"; "age p99"; "missed mean";
    "missed max"; "refreshes"; "lag p50"; "lag p95"; "lag p99";
  ]

let render rows =
  (* Sections with no samples render "-" rather than a misleading 0.00: an
     empty-site row is explicit in the table. *)
  let cell n f = if n = 0 then "-" else Table_fmt.float_cell f in
  let cells r =
    [
      r.site;
      string_of_int r.reads;
      cell r.reads r.age_p50;
      cell r.reads r.age_p95;
      cell r.reads r.age_p99;
      cell r.reads r.missed_mean;
      string_of_int r.missed_max;
      string_of_int r.refreshes;
      cell r.refreshes r.lag_p50;
      cell r.refreshes r.lag_p95;
      cell r.refreshes r.lag_p99;
    ]
  in
  Table_fmt.render ~header (List.map cells rows)

let to_json rows =
  (* [Json.number] prints non-finite floats as [null]; clamp here so the lag
     report is null-free by construction (consumers index it numerically). *)
  let num f = Json.Num (if Float.is_finite f then f else 0.) in
  let row_json r =
    Json.Obj
      [
        ("site", Json.Str r.site);
        ("reads", num (float_of_int r.reads));
        ("age_p50", num r.age_p50);
        ("age_p95", num r.age_p95);
        ("age_p99", num r.age_p99);
        ("missed_mean", num r.missed_mean);
        ("missed_max", num (float_of_int r.missed_max));
        ("refreshes", num (float_of_int r.refreshes));
        ("lag_p50", num r.lag_p50);
        ("lag_p95", num r.lag_p95);
        ("lag_p99", num r.lag_p99);
      ]
  in
  Json.Obj [ ("sites", Json.Arr (List.map row_json rows)) ]

let json_string rows = Json.to_string (to_json rows)

let write rows ~file =
  Lsr_obs.Fsutil.ensure_parent file;
  let oc = open_out file in
  output_string oc (json_string rows);
  close_out oc
