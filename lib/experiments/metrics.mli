(** Per-run measurement collection for the simulated system.

    The paper's throughput curves are "response time-related": they count
    transactions finishing within 3 seconds (§6.2). Response times are
    tallied per transaction class; all counters ignore the warm-up window. *)

open Lsr_sim

type t

val create : warmup:float -> cap:float -> t

(** [note_completion t ~now ~response_time ~is_update] records one finished
    transaction. *)
val note_completion : t -> now:float -> response_time:float -> is_update:bool -> unit

val note_abort : t -> now:float -> unit

(** A real first-committer-wins conflict at the primary (as opposed to the
    paper's forced [abort_prob] aborts, which [note_abort] also counts). *)
val note_fcw_abort : t -> now:float -> unit

(** [note_block t ~now ~wait] — a read-only transaction waited [wait]
    seconds for its session condition. *)
val note_block : t -> now:float -> wait:float -> unit

(** [note_refresh t ~now ~staleness] — a refresh transaction committed;
    [staleness] is seconds since its primary commit. *)
val note_refresh : t -> now:float -> staleness:float -> unit

val note_wasted_ops : t -> now:float -> int -> unit

(** [note_read_freshness t ~now ~age ~missed] — a read-only transaction took
    its snapshot; [age] is the virtual-time age of the newest primary commit
    the snapshot reflects (0 when the site was fully caught up) and [missed]
    the number of committed-but-unapplied primary transactions at that
    moment (the freshness definition of docs/TRACING.md). *)
val note_read_freshness : t -> now:float -> age:float -> missed:int -> unit

(** {2 Reduction} *)

(** Transactions finishing within the cap, post warm-up. *)
val fast_completions : t -> int

val read_rt : t -> Stat.t
val update_rt : t -> Stat.t

(** Full response-time distributions (for percentile reporting). *)
val read_rt_hist : t -> Lsr_stats.Histogram.t

val update_rt_hist : t -> Lsr_stats.Histogram.t
val aborts : t -> int
val fcw_aborts : t -> int
val blocked_reads : t -> int
val block_wait : t -> Stat.t
val refresh_staleness : t -> Stat.t
val refresh_commits : t -> int
val wasted_ops : t -> int
val read_age : t -> Stat.t

(** Full snapshot-age distribution (for percentile reporting). *)
val read_age_hist : t -> Lsr_stats.Histogram.t

val read_missed : t -> Stat.t
