(** The per-PR performance trajectory bench behind [bench perf] and the
    committed [BENCH_7.json] (see ROADMAP.md for the trajectory commitment).

    Three deterministic runs of the simulated system, all with a tiny
    per-operation service time so the sites stay far from saturation (the
    bench measures simulator speed, not the paper's contention curves):

    - an {e open-loop} and a {e closed-loop} run at equal offered load
      ({!Sim_system.offered_rate}), same seed, same virtual duration — the
      paired comparison behind the events-per-second speedup;
    - a {e showcase} open-loop run at a million-plus modeled clients with
      history recording on, so the full checker battery executes over the
      result (its CPU time is reported separately and excluded from the
      simulator-speed figures).

    Timings use {!Sys.time} (single-threaded process, CPU ~ wall), so the
    report is deterministic in everything except the timing fields. *)

type phase = {
  label : string;
  cpu_s : float;  (** total CPU seconds including any checker time *)
  sim_events : int;  (** {!Sim_system.outcome.sim_events} of the run *)
  events_per_s : float;  (** sim_events / (cpu_s - checker_cpu_s) *)
  txns : int;  (** completed transactions in the measured window *)
  txns_per_s : float;
  peak_rss_kb : int;
      (** process RSS high-water mark after the phase (monotone — phases are
          measured smallest-footprint first) *)
  checker_cpu_s : float;
  check_errors : int;
}

type report = {
  seed : int;
  quick : bool;
  sites : int;
  pair_clients_per_site : int;  (** modeled clients/site in the paired runs *)
  offered_per_site : float;  (** matched offered load, txns per virtual s *)
  virtual_s : float;  (** virtual duration of the paired runs *)
  open_loop : phase;
  closed_loop : phase;
  speedup_events_per_s : float;  (** open_loop / closed_loop events/s *)
  showcase_clients : int;  (** total modeled clients in the showcase *)
  showcase : phase;
}

(** [run ~quick ~seed ()] executes the three phases. [quick] shrinks the
    client counts ~100x for smoke use; [progress] receives one line per
    phase before it starts. *)
val run : ?progress:(string -> unit) -> quick:bool -> seed:int -> unit -> report

val to_json : report -> Lsr_obs.Json.t

(** [validate j] checks the committed-schema contract: every field of the
    report and of its three phase objects present, numbers finite, [bench]
    equal to ["perf"]. The emitter and this validator live together so the
    schema test and the bench cannot drift apart. *)
val validate : Lsr_obs.Json.t -> (unit, string) result

(** [write r ~file] writes the JSON report followed by a newline. *)
val write : report -> file:string -> unit

(** Print the report as a table plus the speedup line. *)
val print : report -> unit
