(** The per-PR performance trajectory bench behind [bench perf] and the
    committed [BENCH_10.json] (see ROADMAP.md for the trajectory commitment).

    Six deterministic runs of the simulated system, all with a tiny
    per-operation service time so the sites stay far from saturation (the
    bench measures simulator speed, not the paper's contention curves):

    - an {e open-loop} and a {e closed-loop} run at equal offered load
      ({!Sim_system.offered_rate}), same seed, same virtual duration — the
      paired comparison behind the events-per-second speedup;
    - four {e showcase} open-loop runs at a million-plus modeled clients,
      same seed and therefore the same trajectory: an unchecked baseline, a
      run with the online {!Lsr_core.Watchdog} attached (history recording
      off — the bounded-memory check), a run with an enabled
      {!Lsr_obs.Flight} recorder absorbing the full event stream into its
      bounded ring, and a run with history recording on so the full
      post-hoc checker battery executes over the result (its CPU time is
      reported separately and excluded from the simulator-speed figures).
      The watchdog-vs-baseline and flight-vs-baseline CPU deltas are the
      committed watchdog and recorder overheads.

    Every measured run executes in a forked child process, so each phase's
    RSS high-water mark is its own (a 3 GB closed-loop fleet does not
    inflate later phases' numbers), and the full-scale timing phases run
    best-of-N repetitions (3 for the pair, 2 for the showcases; the reps
    must fire identical event/transaction counts — asserted) to suppress
    co-tenant memory-bandwidth noise on shared hardware.

    Timings use {!Sys.time} (single-threaded process, CPU ~ wall), so the
    report is deterministic in everything except the timing fields. *)

type phase = {
  label : string;
  cpu_s : float;  (** total CPU seconds including any checker time *)
  sim_events : int;  (** {!Sim_system.outcome.sim_events} of the run *)
  events_per_s : float;  (** sim_events / (cpu_s - checker_cpu_s) *)
  txns : int;  (** completed transactions in the measured window *)
  txns_per_s : float;
  peak_rss_kb : int;
      (** RSS high-water mark of the phase's own measurement process *)
  checker_cpu_s : float;
  check_errors : int;
  watchdog_alerts : int;
      (** total online alerts (0 for phases without the watchdog) *)
  watchdog_peak_state : int;
      (** peak watchdog state — versions + floors + pins tracked at once,
          bounded by the active visibility window (0 without the watchdog) *)
  flight_events : int;
      (** events the flight recorder saw, recorded + overwritten (0 for
          phases without a recorder) *)
  flight_bytes : int;
      (** approximate recorder footprint — O(ring capacity), constant in
          run length (0 without a recorder) *)
}

type report = {
  seed : int;
  quick : bool;
  sites : int;
  pair_clients_per_site : int;  (** modeled clients/site in the paired runs *)
  offered_per_site : float;  (** matched offered load, txns per virtual s *)
  virtual_s : float;  (** virtual duration of the paired runs *)
  open_loop : phase;
  closed_loop : phase;
  speedup_events_per_s : float;  (** open_loop / closed_loop events/s *)
  showcase_clients : int;  (** total modeled clients in the showcase *)
  showcase : phase;  (** history recording on, post-hoc checker battery *)
  showcase_plain : phase;  (** unchecked baseline (no history, no watchdog) *)
  showcase_watchdog : phase;  (** online watchdog on, history recording off *)
  watchdog_overhead_frac : float;
      (** (showcase_watchdog.cpu_s - showcase_plain.cpu_s) /
          showcase_plain.cpu_s — the CPU price of the online check *)
  showcase_flight : phase;
      (** flight recorder attached (default ring capacity), watchdog and
          history recording off *)
  recorder_overhead_frac : float;
      (** (showcase_flight.cpu_s - showcase_plain.cpu_s) /
          showcase_plain.cpu_s — the CPU price of the black box *)
}

(** [run ~quick ~seed ()] executes the six phases. [quick] shrinks the
    client counts ~100x and drops to one rep per phase for smoke use;
    [progress] receives one line per phase before it starts. *)
val run : ?progress:(string -> unit) -> quick:bool -> seed:int -> unit -> report

val to_json : report -> Lsr_obs.Json.t

(** [validate j] checks the committed-schema contract: every field of the
    report and of its six phase objects present, numbers finite, [bench]
    equal to ["perf"]. The emitter and this validator live together so the
    schema test and the bench cannot drift apart. *)
val validate : Lsr_obs.Json.t -> (unit, string) result

(** [write r ~file] writes the JSON report followed by a newline. *)
val write : report -> file:string -> unit

(** Print the report as a table plus the speedup line. *)
val print : report -> unit
