open Lsr_stats
open Lsr_workload
module Json = Lsr_obs.Json

type rank = {
  bn_site : string;
  bn_utilization : float;
  bn_wait_share : float;
  bn_queue_mean : float;
  bn_throughput : float;
  bn_littles_gap : float;
}

type component = {
  comp_name : string;
  comp_seconds : float;
  comp_share : float;
}

type breakdown = {
  br_class : string;
  br_rt_mean : float;
  br_components : component list;
}

type t = {
  dominant : string;
  ranking : rank list;
  breakdowns : breakdown list;
}

let rank_resources (resources : Sim_system.resource_report list) =
  let wait_sum =
    List.fold_left
      (fun acc r -> acc +. r.Sim_system.res_wait_total)
      0. resources
  in
  let rank (r : Sim_system.resource_report) =
    {
      bn_site = r.Sim_system.res_site;
      bn_utilization = r.Sim_system.res_utilization;
      bn_wait_share =
        (if wait_sum > 0. then r.Sim_system.res_wait_total /. wait_sum else 0.);
      bn_queue_mean = r.Sim_system.res_queue_mean;
      bn_throughput = r.Sim_system.res_throughput;
      bn_littles_gap = r.Sim_system.res_littles_gap;
    }
  in
  List.sort
    (fun a b ->
      match compare b.bn_utilization a.bn_utilization with
      | 0 -> compare a.bn_site b.bn_site
      | c -> c)
    (List.map rank resources)

(* Residence-time attribution per transaction class. The service component
   is exact by construction of the workload (mean operations per transaction
   times the per-operation demand); the session-block component is measured
   directly; for updates the cost of work thrown away by aborts is charged
   as "retry" (wasted operations amortized over completed updates). The
   remainder is time spent queued at a shared resource. *)
let components_of rt parts =
  let attributed = List.fold_left (fun acc (_, s) -> acc +. s) 0. parts in
  let parts = parts @ [ ("queueing", Float.max 0. (rt -. attributed)) ] in
  List.map
    (fun (name, s) ->
      {
        comp_name = name;
        comp_seconds = s;
        comp_share = (if rt > 0. then s /. rt else 0.);
      })
    parts

let breakdowns_of (p : Params.t) (o : Sim_system.outcome) =
  let mean_ops =
    float_of_int (p.Params.tran_size_min + p.Params.tran_size_max) /. 2.
  in
  let service = mean_ops *. p.Params.op_service_time in
  let per count total = if count = 0 then 0. else total /. float_of_int count in
  let read_block =
    per o.Sim_system.reads_completed
      (o.Sim_system.block_wait_mean *. float_of_int o.Sim_system.blocked_reads)
  in
  let update_retry =
    per o.Sim_system.updates_completed
      (float_of_int o.Sim_system.wasted_ops *. p.Params.op_service_time)
  in
  [
    {
      br_class = "read";
      br_rt_mean = o.Sim_system.read_rt_mean;
      br_components =
        components_of o.Sim_system.read_rt_mean
          [ ("session-block", read_block); ("service", service) ];
    };
    {
      br_class = "update";
      br_rt_mean = o.Sim_system.update_rt_mean;
      br_components =
        components_of o.Sim_system.update_rt_mean
          [ ("service", service); ("retry", update_retry) ];
    };
  ]

let analyze (p : Params.t) (o : Sim_system.outcome) =
  let ranking = rank_resources o.Sim_system.resources in
  {
    dominant = (match ranking with [] -> "none" | r :: _ -> r.bn_site);
    ranking;
    breakdowns = breakdowns_of p o;
  }

let percent x = Printf.sprintf "%.0f%%" (100. *. x)

let render ?tag t =
  let buf = Buffer.create 1024 in
  let label = match tag with None -> "" | Some s -> " [" ^ s ^ "]" in
  let dominant_util =
    match t.ranking with [] -> 0. | r :: _ -> r.bn_utilization
  in
  Buffer.add_string buf
    (Printf.sprintf "bottleneck%s: %s (utilization %s)\n" label t.dominant
       (percent dominant_util));
  let header =
    [ "site"; "util"; "wait share"; "L"; "tput"; "littles gap" ]
  in
  let cells r =
    [
      r.bn_site;
      percent r.bn_utilization;
      percent r.bn_wait_share;
      Table_fmt.float_cell r.bn_queue_mean;
      Table_fmt.float_cell r.bn_throughput;
      Printf.sprintf "%.3f" r.bn_littles_gap;
    ]
  in
  Buffer.add_string buf (Table_fmt.render ~header (List.map cells t.ranking));
  (* Table_fmt.render has no trailing newline. *)
  Buffer.add_char buf '\n';
  List.iter
    (fun b ->
      let parts =
        List.map
          (fun c ->
            Printf.sprintf "%s %.3fs (%s)" c.comp_name c.comp_seconds
              (percent c.comp_share))
          b.br_components
      in
      Buffer.add_string buf
        (Printf.sprintf "%-6s rt %.3fs = %s\n" b.br_class b.br_rt_mean
           (String.concat " + " parts)))
    t.breakdowns;
  Buffer.contents buf

let to_json t =
  let rank_json r =
    Json.Obj
      [
        ("site", Json.Str r.bn_site);
        ("utilization", Json.Num r.bn_utilization);
        ("wait_share", Json.Num r.bn_wait_share);
        ("queue_mean", Json.Num r.bn_queue_mean);
        ("throughput", Json.Num r.bn_throughput);
        ("littles_gap", Json.Num r.bn_littles_gap);
      ]
  in
  let component_json c =
    Json.Obj
      [
        ("name", Json.Str c.comp_name);
        ("seconds", Json.Num c.comp_seconds);
        ("share", Json.Num c.comp_share);
      ]
  in
  let breakdown_json b =
    Json.Obj
      [
        ("class", Json.Str b.br_class);
        ("rt_mean", Json.Num b.br_rt_mean);
        ("components", Json.Arr (List.map component_json b.br_components));
      ]
  in
  Json.Obj
    [
      ("dominant", Json.Str t.dominant);
      ("resources", Json.Arr (List.map rank_json t.ranking));
      ("classes", Json.Arr (List.map breakdown_json t.breakdowns));
    ]

type entry = { tag : string; report : t }

let sweep_json entries =
  Json.Obj
    [
      ( "reports",
        Json.Arr
          (List.map
             (fun e ->
               match to_json e.report with
               | Json.Obj fields -> Json.Obj (("tag", Json.Str e.tag) :: fields)
               | j -> j)
             entries) );
    ]

let write_sweep entries ~file =
  Lsr_obs.Fsutil.ensure_parent file;
  let oc = open_out file in
  output_string oc (Json.to_string (sweep_json entries));
  output_string oc "\n";
  close_out oc
