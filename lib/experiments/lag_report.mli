(** Per-site freshness / propagation-lag report over a recorded
    {!Lsr_obs.Lineage} sink.

    One row per site, reducing the sink's raw samples through
    {!Lsr_stats.Histogram} (exact nearest-rank quantiles):
    - {e age}: snapshot age of each read-only transaction (virtual-time age
      of the newest primary commit its snapshot reflected; 0 when caught
      up) — p50/p95/p99;
    - {e missed}: committed-but-unapplied primary transactions per read —
      mean and max;
    - {e lag}: refresh commit time minus primary commit time per refreshed
      transaction — p50/p95/p99.

    Rows come out sorted by site name and all floats use the canonical
    {!Lsr_obs.Json.number} form, so the report is byte-identical across
    same-seed runs ([bench --lag-report]).

    A site with no samples in a section (zero reads, or zero refreshes) gets
    explicit zero quantiles for that section — never the quantile of an
    empty histogram — and the table renders "-" for those cells. The JSON is
    null-free by construction: every numeric field is clamped finite before
    serialization. *)

type row = {
  site : string;
  reads : int;
  age_p50 : float;
  age_p95 : float;
  age_p99 : float;
  missed_mean : float;
  missed_max : int;
  refreshes : int;
  lag_p50 : float;
  lag_p95 : float;
  lag_p99 : float;
}

(** One row per {!Lsr_obs.Lineage.sites} entry, in that (sorted) order. *)
val of_lineage : Lsr_obs.Lineage.t -> row list

(** Plain-text table ({!Lsr_stats.Table_fmt}). *)
val render : row list -> string

val to_json : row list -> Lsr_obs.Json.t
val json_string : row list -> string

(** [write rows ~file] writes {!json_string}, creating missing parent
    directories. *)
val write : row list -> file:string -> unit
