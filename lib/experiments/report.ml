open Lsr_stats

let cell_of_interval (i : Confidence.interval) =
  if i.Confidence.half_width = 0. then Table_fmt.float_cell i.Confidence.mean
  else
    Printf.sprintf "%s ±%s"
      (Table_fmt.float_cell i.Confidence.mean)
      (Table_fmt.float_cell i.Confidence.half_width)

let xs_of (figure : Figures.figure) =
  match figure.Figures.series with
  | [] -> []
  | s :: _ -> List.map (fun p -> p.Figures.x) s.Figures.points

let point_for series x =
  List.find_opt (fun p -> p.Figures.x = x) series.Figures.points

let render_figure (figure : Figures.figure) =
  let xs = xs_of figure in
  let header =
    figure.Figures.xlabel
    :: List.map (fun s -> s.Figures.label) figure.Figures.series
  in
  let rows =
    List.map
      (fun x ->
        Table_fmt.float_cell x
        :: List.map
             (fun s ->
               match point_for s x with
               | Some p -> cell_of_interval p.Figures.interval
               | None -> "")
             figure.Figures.series)
      xs
  in
  let table = Table_fmt.render ~header rows in
  let notes =
    match figure.Figures.notes with
    | [] -> ""
    | notes -> "\n" ^ String.concat "\n" (List.map (fun n -> "note: " ^ n) notes)
  in
  Printf.sprintf "== %s: %s ==\ny-axis: %s\n%s%s" figure.Figures.id
    figure.Figures.title figure.Figures.ylabel table notes

let print_figure figure = Printf.printf "\n%s\n%!" (render_figure figure)

let csv_of_figure (figure : Figures.figure) =
  let xs = xs_of figure in
  (* Empty cell rather than "inf"/"nan": keeps the CSV loadable by strict
     parsers when a series had no samples. *)
  let num f = if Float.is_finite f then Printf.sprintf "%g" f else "" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf figure.Figures.xlabel;
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf ",%s mean,%s ci95" s.Figures.label s.Figures.label))
    figure.Figures.series;
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      Buffer.add_string buf (num x);
      List.iter
        (fun s ->
          match point_for s x with
          | Some p ->
            Buffer.add_string buf
              (Printf.sprintf ",%s,%s"
                 (num p.Figures.interval.Confidence.mean)
                 (num p.Figures.interval.Confidence.half_width))
          | None -> Buffer.add_string buf ",,")
        figure.Figures.series;
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf

let write_csv ~dir figure =
  Lsr_obs.Fsutil.mkdir_p dir;
  let path = Filename.concat dir (figure.Figures.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (csv_of_figure figure);
  close_out oc;
  path

let print_table1 params =
  let rows =
    List.map
      (fun (name, description, value) -> [ name; description; value ])
      (Lsr_workload.Params.table1_rows params)
  in
  Table_fmt.print ~title:"Table 1: Simulation Model Parameters"
    ~header:[ "parameter"; "description"; "default" ] rows
