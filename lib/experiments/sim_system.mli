(** The simulated lazy-master replicated system of §5.

    Wires the {e real} protocol components — {!Lsr_core.Propagation},
    {!Lsr_core.Secondary}, {!Lsr_core.Session}, each site backed by a live
    {!Lsr_storage.Mvcc} instance — to virtual time: every site is a shared
    {!Lsr_sim.Resource} (the paper's round-robin server, modelled as
    processor sharing), clients are processes that think, start sessions and
    submit transactions per {!Lsr_workload.Params}, the propagator is a
    10-second-cycle log sniffer, and each secondary runs one refresher
    process plus concurrent applicator processes.

    Because the data operations really execute, a run both measures
    performance and (optionally) records a {!Lsr_core.History} that the
    checker validates afterwards — the simulator cannot quietly violate the
    guarantees it is measuring. *)

open Lsr_core
open Lsr_workload

(** Arrival process for the open-loop client model: [Poisson] at the matched
    offered rate, or [Mmpp b] — a two-state Markov-modulated Poisson process
    with burstiness ratio [b] = high rate / low rate (clamped to [>= 1]) and
    the same long-run mean rate. *)
type arrival = Poisson | Mmpp of float

type client_mode =
  | Closed_loop
      (** the paper's model: one coroutine per client, thinking between
          transactions ([Params.clients_per_secondary] per site) *)
  | Open_loop of { clients : int; arrival : arrival; session_pool : int }
      (** aggregated model for very large populations: one seeded arrival
          process per site generates the stream a population of [clients]
          closed-loop clients would offer ({!offered_rate}), each
          transaction runs in a short-lived process, and session labels come
          from a rotating pool of [session_pool] slots ([<= 0] picks
          [min clients 4096]) *)

(** Which freshness fence (if any) read-only transactions carry; applies
    identically under both client modes (the fence is attached per read in
    the shared transaction body). *)
type fence_policy =
  | No_fence
  | All_reads of Session.fence
      (** every read carries this fence. Draws nothing from the workload
          rng, so [All_reads Session_seq] under [Session.Weak] replays the
          exact random stream of an unfenced [Session.Strong_session] run *)
  | Fence_mix of (float * Session.fence option) list
      (** per-read weighted draw over fence classes ([None] = unfenced
          traffic); weights need not sum to 1, non-positive weights are
          ignored, an all-nonpositive mix degenerates to [No_fence] *)

type config = {
  params : Params.t;
  guarantee : Session.guarantee;
  seed : int;
  record_history : bool;
      (** record every transaction and run the checker battery at the end
          (memory-heavy; meant for validation runs, not performance sweeps) *)
  watchdog : bool;
      (** attach an online {!Lsr_core.Watchdog}: the weak-SI read
          validation, the inversion floors for all three session-guarantee
          levels and the fence audit run incrementally as transactions
          finish, in memory bounded by the active visibility window — so
          guarantees are verified even with [record_history = false] (and
          on runs too long to record). Alerts land in
          [watchdog_alerts]/[watchdog_verdict], a failed guarantee also in
          [check_errors]. Attaching the watchdog never changes simulation
          outcomes (it only observes; virtual time never advances in its
          hooks). *)
  serial_refresh : bool;
      (** ablation: the refresher waits for each applicator to commit before
          processing the next record (no concurrent applicators) *)
  ship_aborted : bool;
      (** ablation: the "simple method" of §3.2 — aborted transactions'
          updates are propagated and their execution cost is paid at every
          secondary before being discarded *)
  migrate_prob : float;
      (** probability that a read-only transaction is served by a random
          secondary instead of the client's home site (0 in the paper's
          model). Exercises the strong-session-SI read floor and the PCSI
          comparison. *)
  client_mode : client_mode;
      (** how the client population is modeled; [Closed_loop] (the default)
          reproduces the paper, [Open_loop] scales to millions of modeled
          clients *)
  fence : fence_policy;
      (** freshness fences on read-only transactions ([No_fence] by
          default). A fenced read blocks on the site's threshold queue until
          seq(DBsec) reaches the [max] of its guarantee's and its fence's
          requirement — the refresher wakes it from the commit that
          satisfies it. [Exact] and [Max_age] resolve their threshold once,
          at submission; [Session_seq] is re-evaluated while waiting (the
          session floor can rise under a shared open-loop label), so it
          reduces exactly to the strong-session requirement. With
          [record_history] the fence is recorded per read and audited by
          {!Lsr_core.Checker.check_fences} at the end. *)
  faults : Lsr_faults.Channel.config option;
      (** when set, each secondary receives propagated records through a
          fault-injection {!Lsr_faults.Channel} (loss / duplication / delay /
          bounded reordering with sequence numbers, acks and retransmission)
          instead of the paper's reliable FIFO link; [None] (the paper's
          model) leaves propagation untouched *)
  fault_tick : float;
      (** virtual seconds per channel tick (base one-hop latency; also the
          granularity of retransmission timeouts) *)
  obs : Lsr_obs.Obs.t;
      (** observability sink: counters and queue-depth gauges from every
          layer (propagation, per-site refresh machinery, fault channels),
          response-time/staleness histograms, and virtual-time spans around
          each propagator cycle ([propagate]), refresh start
          ([refresh-start]), applicator phase ([apply], [commit-wait]),
          session wait ([session-block]) and client transaction. The default
          {!Lsr_obs.Obs.null} records nothing and costs nothing; attaching
          an enabled registry never changes simulation outcomes (all
          timestamps are virtual, no instrument feeds back into the run) *)
  lineage : Lsr_obs.Lineage.t;
      (** causal lineage sink: one virtual-time-stamped event per pipeline
          stage of every committed update transaction (primary commit,
          propagation, fault-channel misbehaviour, per-site refresh) plus a
          freshness sample per read-only transaction. Same rules as [obs]:
          the default {!Lsr_obs.Lineage.null} costs nothing and an enabled
          sink never changes outcomes. *)
  flight : Lsr_obs.Flight.t;
      (** flight recorder: a bounded in-memory black box over the unified
          event stream — primary commits (carrying both MVCC txn and history
          ids when a tracking consumer is on, hid = -1 otherwise), every
          propagation/refresh pipeline stage, fault-channel misbehaviour,
          per-read snapshot/fence claims and crash/recovery marks. The first
          watchdog alert (with [watchdog]) triggers its postmortem capture
          mid-run; a failed checker battery (with [record_history]) triggers
          it at the end; otherwise the bundle holds the end-of-run window.
          The bundle lands in [flight_report]. Same rules as [obs]/[lineage]:
          {!Lsr_obs.Flight.null} (the default) costs nothing, and an enabled
          recorder never changes outcomes (O(capacity) memory, virtual-time
          stamps, no feedback). *)
  monitor : Monitor.t;
      (** periodic system monitor: every [Monitor.interval] virtual seconds
          it samples per-resource utilization ρ, time-average queue length L
          and instantaneous depth, per-secondary refresh backlog (update and
          pending queues), primary WAL length and per-site MVCC version
          counts into the monitor's {!Lsr_obs.Timeseries}. Same rules again:
          the default {!Monitor.null} costs nothing and an enabled monitor
          never changes outcomes (the probe only reads state). *)
}

(** [config params guarantee ~seed] with ablations off, closed-loop clients,
    no recording, no fault injection ([fault_tick] defaults to 1 s) and no
    observability. *)
val config : Params.t -> Session.guarantee -> seed:int -> config

(** [offered_rate p ~clients] is the per-site transaction arrival rate (per
    virtual second) that [clients] closed-loop clients would offer if they
    never queued: [clients / (think_time + mean_tran_size *
    op_service_time)]. The open-loop model drives its arrival process at
    exactly this rate, so the two models see equal offered load for equal
    [clients]. *)
val offered_rate : Params.t -> clients:int -> float

(** End-of-run queueing telemetry of one {!Lsr_sim.Resource} (the primary
    or one secondary site), read at the instant the run stops — busy time
    and the queue-length integral are pro-rated, so ρ and L are exact even
    with jobs still in service. *)
type resource_report = {
  res_site : string;  (** resource name: ["primary"] or the site name *)
  res_utilization : float;  (** ρ = busy time / elapsed time *)
  res_throughput : float;  (** λ = completions / elapsed time *)
  res_arrivals : int;
  res_completions : int;
  res_wait_mean : float;  (** mean time queued before/besides service *)
  res_wait_total : float;
  res_service_mean : float;  (** mean service demand per job *)
  res_service_total : float;
  res_queue_mean : float;  (** L = time-average number of jobs present *)
  res_littles_gap : float;
      (** relative gap |L − λ·W| / max(L, λ·W) of Little's law, W the mean
          sojourn; small for a converged run, 0 before any completion *)
}

type outcome = {
  throughput_fast : float;
      (** transactions finishing within the response-time cap, per second of
          measured time — the y-axis of Figures 2, 5 and 8 *)
  read_rt_mean : float;  (** mean read-only response time (Figures 3, 6) *)
  update_rt_mean : float;  (** mean update response time (Figures 4, 7) *)
  read_rt_p50 : float;  (** median read-only response time *)
  read_rt_p95 : float;  (** 95th-percentile read-only response time *)
  update_rt_p95 : float;
  reads_completed : int;
  updates_completed : int;
  aborts : int;  (** all update aborts (forced + first-committer-wins) *)
  fcw_aborts : int;
      (** real write-write conflicts at the primary (nonzero under key
          skew); included in [aborts] *)
  blocked_reads : int;  (** read-only transactions that waited on seq(c) *)
  fenced_reads : int;
      (** read-only transactions that carried a freshness fence (whether or
          not they had to wait) *)
  block_wait_mean : float;
  refresh_staleness_mean : float;
      (** seconds between an update's primary commit and its refresh commit *)
  refresh_commits : int;
  wasted_ops : int;  (** update operations executed for aborted transactions *)
  read_age_mean : float;
      (** mean snapshot age over read-only transactions: the virtual-time
          age of the newest primary commit each read's snapshot reflected
          (0 for a read at a fully caught-up site) *)
  read_age_p50 : float;
  read_age_p95 : float;  (** the y-axis of the staleness-vs-load figure *)
  read_age_p99 : float;
  read_missed_mean : float;
      (** mean committed-but-unapplied primary transactions per read *)
  primary_utilization : float;
  secondary_utilization : float;  (** mean over secondaries *)
  check_errors : string list;
      (** empty when the run satisfied its guarantee (always empty when
          [record_history = false]) *)
  check_report : Lsr_core.Checker.report option;
      (** the full checker battery report behind [check_errors] ([None]
          when [record_history = false]) — lets callers ask finer questions
          than pass/fail, e.g. which guarantees the history would also have
          satisfied, or which session inversions actually occurred (the
          planner cross-validation tests do both) *)
  channel_dropped : int;
      (** transmissions lost by the fault channels (0 without [faults]) *)
  channel_retransmitted : int;  (** sender timeouts that resent a record *)
  channel_duplicated : int;  (** extra copies injected by the network *)
  channel_max_queue : int;
      (** peak in-flight / out-of-order buffer depth over all channels *)
  sim_events : int;
      (** total simulator events fired during the run — the denominator-free
          work measure behind the perf bench's events/second. Includes every
          scheduled wakeup, so attaching a periodic {!Monitor} raises it
          without changing any simulation outcome. *)
  checker_cpu_s : float;
      (** CPU seconds the end-of-run checker battery took (0 when
          [record_history = false]) *)
  watchdog_verdict : Lsr_core.Watchdog.verdict option;
      (** the online watchdog's final per-kind violation counts ([None]
          when [watchdog = false]) *)
  watchdog_alerts : Lsr_core.Watchdog.alert list;
      (** the watchdog's retained alert log, sorted by (virtual time,
          txn id) — deterministic for a fixed seed *)
  watchdog_peak_state : int;
      (** peak watchdog state size (live versions + unretired commits +
          session floors + in-flight pins): the memory the online check
          needed, bounded by the active visibility window rather than the
          run length *)
  watchdog_report : Lsr_obs.Json.t option;
      (** {!Lsr_core.Watchdog.report_json} of the attached watchdog —
          verdict counts, state sizes, retirement horizon and the retained
          alert log, keys sorted, deterministic for a fixed seed ([None]
          when [watchdog = false]) *)
  flight_report : Lsr_obs.Json.t option;
      (** the flight recorder's postmortem bundle ({!Lsr_obs.Flight.bundle_json}:
          trigger, event window, per-site visibility horizons, implicated
          journeys, full config and seed), keys sorted, byte-stable for a
          fixed seed; [None] when no recorder was attached *)
  flight_trigger : string option;
      (** what tripped the capture — ["watchdog"] (first online alert) or
          ["checker"] (post-hoc battery failure); [None] when untriggered
          (the bundle then holds the end-of-run window) or no recorder *)
  flight_events : int;
      (** events the recorder saw (recorded + overwritten); 0 without one *)
  flight_bytes : int;
      (** approximate recorder memory footprint: O(capacity), constant in
          run length *)
  resources : resource_report list;
      (** queueing telemetry per site resource, primary first then
          secondaries in index order — the input of {!Bottleneck} *)
}

(** [run config] executes one independent replication and reduces it. *)
val run : config -> outcome
