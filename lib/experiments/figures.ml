open Lsr_core
open Lsr_workload
open Lsr_stats

type point = {
  x : float;
  interval : Confidence.interval;
}

type series = {
  label : string;
  points : point list;
}

type figure = {
  id : string;
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  notes : string list;
}

type run_opts = {
  quick : bool;
  seed : int;
  progress : string -> unit;
  base_params : Params.t option;
  obs : Lsr_obs.Obs.t;
  lineage : Lsr_obs.Lineage.t;
  monitor : Monitor.t;
  watchdog : bool;
  flight : Lsr_obs.Flight.t;
  on_outcome : string -> Sim_system.config -> Sim_system.outcome -> unit;
}

let default_opts =
  {
    quick = false;
    seed = 20060912;
    progress = ignore;
    base_params = None;
    obs = Lsr_obs.Obs.null;
    lineage = Lsr_obs.Lineage.null;
    monitor = Monitor.null;
    watchdog = false;
    flight = Lsr_obs.Flight.null;
    on_outcome = (fun _ _ _ -> ());
  }

let algorithms = [ Session.Strong_session; Session.Weak; Session.Strong ]

let params_for ~quick =
  if quick then Params.quick Params.default else Params.default

let base_of opts =
  match opts.base_params with
  | Some params -> params
  | None -> params_for ~quick:opts.quick

(* Replications of one configuration, reduced per metric. *)
let replicate opts ~tag (cfg : Sim_system.config) =
  let reps = cfg.Sim_system.params.Params.replications in
  List.init reps (fun i ->
      let seeded =
        {
          cfg with
          Sim_system.seed = opts.seed + (1000 * i) + Hashtbl.hash tag;
          obs = opts.obs;
          lineage = opts.lineage;
          monitor = opts.monitor;
          watchdog = cfg.Sim_system.watchdog || opts.watchdog;
          flight = opts.flight;
        }
      in
      let outcome = Sim_system.run seeded in
      opts.on_outcome (Printf.sprintf "%s rep %d" tag (i + 1)) seeded outcome;
      opts.progress
        (Printf.sprintf "%s rep %d/%d: %.2f tps" tag (i + 1) reps
           outcome.Sim_system.throughput_fast);
      outcome)

let interval_of metric outcomes = Confidence.of_samples (List.map metric outcomes)

(* Shared sweep: for each x, for each algorithm, a replicated run; returns
   per-metric figures assembled from the same outcomes. *)
let sweep opts ~xs ~make_params ~xlabel ~figures =
  let results =
    List.map
      (fun x ->
        let params = make_params x in
        let per_alg =
          List.map
            (fun alg ->
              let tag =
                Printf.sprintf "%s %s=%g" (Session.guarantee_name alg) xlabel x
              in
              let cfg = Sim_system.config params alg ~seed:opts.seed in
              (alg, replicate opts ~tag cfg))
            algorithms
        in
        (x, per_alg))
      xs
  in
  List.map
    (fun (id, title, ylabel, metric, notes) ->
      let series =
        List.map
          (fun alg ->
            {
              label = Session.guarantee_name alg;
              points =
                List.map
                  (fun (x, per_alg) ->
                    let outcomes = List.assoc alg per_alg in
                    { x; interval = interval_of metric outcomes })
                  results;
            })
          algorithms
      in
      { id; title; xlabel; ylabel; series; notes })
    figures

let throughput (o : Sim_system.outcome) = o.Sim_system.throughput_fast
let read_rt (o : Sim_system.outcome) = o.Sim_system.read_rt_mean
let update_rt (o : Sim_system.outcome) = o.Sim_system.update_rt_mean

let three_metrics ~id_prefix ~context =
  [
    ( "fig" ^ List.nth id_prefix 0,
      "Transaction Throughput (finishing within 3s), " ^ context,
      "throughput (tps)",
      throughput,
      [] );
    ( "fig" ^ List.nth id_prefix 1,
      "Read-Only Transaction Response Time, " ^ context,
      "response time (s)",
      read_rt,
      [] );
    ( "fig" ^ List.nth id_prefix 2,
      "Update Transaction Response Time, " ^ context,
      "response time (s)",
      update_rt,
      [] );
  ]

let fig2_3_4 opts =
  let base = base_of opts in
  let xs =
    if opts.quick then [ 50.; 100.; 150.; 200.; 250. ]
    else [ 25.; 50.; 75.; 100.; 125.; 150.; 175.; 200.; 225.; 250. ]
  in
  let make_params clients =
    {
      base with
      Params.num_secondaries = 5;
      clients_per_secondary =
        int_of_float clients / 5 (* 5 secondaries; x = total clients *);
    }
  in
  match
    sweep opts ~xs ~make_params ~xlabel:"clients"
      ~figures:(three_metrics ~id_prefix:[ "2"; "3"; "4" ] ~context:"80/20 workload")
  with
  | [ a; b; c ] -> (a, b, c)
  | _ -> assert false

(* Ideal linear scaling reference for the scale-up figures: the weak-SI
   throughput of the 1-secondary system extrapolated linearly, the "y=x"
   line of Figures 5 and 8. *)
let ideal_series ~xs ~per_site =
  {
    label = "ideal (linear)";
    points =
      List.map
        (fun x ->
          { x; interval = { Confidence.mean = x *. per_site; half_width = 0.; n = 1 } })
        xs;
  }

let scale_sweep opts ~xs ~mix_name ~browsing ~ids =
  let base = base_of opts in
  let base = if browsing then Params.browsing base else base in
  let make_params sites =
    { base with Params.num_secondaries = int_of_float sites }
  in
  let context = Printf.sprintf "20 clients/secondary, %s workload" mix_name in
  let figures =
    sweep opts ~xs ~make_params ~xlabel:"secondaries"
      ~figures:(three_metrics ~id_prefix:ids ~context)
  in
  (* Attach the linear reference to the throughput figure. *)
  match figures with
  | [ tput; rrt; urt ] ->
    let per_site =
      match tput.series with
      | { points = { x; interval; _ } :: _; _ } :: _ -> interval.Confidence.mean /. x
      | _ -> 0.
    in
    ( { tput with series = ideal_series ~xs ~per_site :: tput.series },
      rrt,
      urt )
  | _ -> assert false

let fig5_6_7 opts =
  let xs =
    if opts.quick then [ 1.; 5.; 9.; 13. ]
    else [ 1.; 3.; 5.; 7.; 9.; 11.; 13.; 15. ]
  in
  scale_sweep opts ~xs ~mix_name:"80/20" ~browsing:false ~ids:[ "5"; "6"; "7" ]

let fig8 opts =
  let xs =
    if opts.quick then [ 5.; 20.; 35.; 50. ]
    else [ 5.; 15.; 25.; 35.; 45.; 55. ]
  in
  let tput, _, _ =
    scale_sweep opts ~xs ~mix_name:"95/5" ~browsing:true ~ids:[ "8"; "8b"; "8c" ]
  in
  { tput with id = "fig8" }

(* Extension figure (not in the paper): how stale the snapshots that
   read-only transactions actually observe become as offered load grows —
   the freshness observer's headline plot. *)
let fig_staleness opts =
  let base = base_of opts in
  let xs =
    if opts.quick then [ 50.; 150.; 250. ]
    else [ 25.; 50.; 100.; 150.; 200.; 250. ]
  in
  let make_params clients =
    {
      base with
      Params.num_secondaries = 5;
      clients_per_secondary = int_of_float clients / 5;
    }
  in
  match
    sweep opts ~xs ~make_params ~xlabel:"clients"
      ~figures:
        [
          ( "fig-staleness",
            "Read Snapshot Staleness (p95 age) vs Load, 80/20 workload",
            "p95 snapshot age (s)",
            (fun (o : Sim_system.outcome) -> o.Sim_system.read_age_p95),
            [
              "Snapshot age = virtual-time age of the newest primary commit \
               a read-only transaction's snapshot reflects (0 when its \
               secondary was fully caught up); the freshness definition of \
               docs/TRACING.md.";
            ] );
        ]
  with
  | [ fig ] -> fig
  | _ -> assert false

(* Extension figure (not in the paper): where the capacity goes. Per-site
   utilization (primary vs mean secondary) against offered load, one pair of
   series per guarantee — the saturation knee of Figures 2-4 made visible.
   Reuses one sweep of runs for both resources. *)
let fig_utilization opts =
  let base = base_of opts in
  let xs =
    if opts.quick then [ 50.; 100.; 150.; 200.; 250. ]
    else [ 25.; 50.; 75.; 100.; 125.; 150.; 175.; 200.; 225.; 250. ]
  in
  let results =
    List.map
      (fun clients ->
        let params =
          {
            base with
            Params.num_secondaries = 5;
            clients_per_secondary = int_of_float clients / 5;
          }
        in
        let per_alg =
          List.map
            (fun alg ->
              let tag =
                Printf.sprintf "%s clients=%g" (Session.guarantee_name alg)
                  clients
              in
              let cfg = Sim_system.config params alg ~seed:opts.seed in
              (alg, replicate opts ~tag cfg))
            algorithms
        in
        (clients, per_alg))
      xs
  in
  let series_of alg ~suffix ~metric =
    {
      label = Session.guarantee_name alg ^ " " ^ suffix;
      points =
        List.map
          (fun (x, per_alg) ->
            let outcomes = List.assoc alg per_alg in
            { x; interval = interval_of metric outcomes })
          results;
    }
  in
  let series =
    List.concat_map
      (fun alg ->
        [
          series_of alg ~suffix:"primary" ~metric:(fun (o : Sim_system.outcome) ->
              o.Sim_system.primary_utilization *. 100.);
          series_of alg ~suffix:"secondary"
            ~metric:(fun (o : Sim_system.outcome) ->
              o.Sim_system.secondary_utilization *. 100.);
        ])
      algorithms
  in
  {
    id = "fig-utilization";
    title = "Per-Site Utilization vs Multiprogramming Level, 80/20 workload";
    xlabel = "clients";
    ylabel = "utilization (%)";
    series;
    notes =
      [
        "Utilization is exact at the sampling instant (busy time pro-rated \
         for jobs still in service); \"secondary\" is the mean over the 5 \
         secondary sites. The bottleneck report names the resource that \
         saturates first at the throughput knee.";
      ];
  }

(* Extension figure (not in the paper): the staleness/latency tradeoff that
   bounded-staleness fences buy. Every read carries a [Max_age d] fence and
   the sweep tightens d from "looser than the replication lag" down to
   near-zero; an unfenced baseline anchors the left edge. Under ALG-WEAK-SI
   the fence is the only thing that ever blocks a read, so the figure
   isolates its cost: read latency (p50/p95) climbs and observed snapshot
   age (p95) falls as the fence tightens. *)
let fence_tightness_sweep ~quick =
  (* x = the fence bound d in virtual seconds; infinity = unfenced. *)
  if quick then [ infinity; 30.; 10.; 3.; 1. ]
  else [ infinity; 60.; 30.; 10.; 3.; 1.; 0.3 ]

let fig_fence opts =
  let base = base_of opts in
  let params =
    { base with Params.num_secondaries = 5; clients_per_secondary = 20 }
  in
  let xs = fence_tightness_sweep ~quick:opts.quick in
  let results =
    List.map
      (fun d ->
        let fence =
          if Float.is_finite d then Sim_system.All_reads (Session.Max_age d)
          else Sim_system.No_fence
        in
        let tag =
          if Float.is_finite d then Printf.sprintf "fence age=%g" d
          else "unfenced"
        in
        let cfg =
          {
            (Sim_system.config params Session.Weak ~seed:opts.seed) with
            Sim_system.fence;
          }
        in
        (d, replicate opts ~tag cfg))
      xs
  in
  (* Plot the unfenced baseline at one decade looser than the loosest real
     bound, so the log-ish x axis stays finite. *)
  let x_of d =
    if Float.is_finite d then d
    else 10. *. List.fold_left (fun acc x -> if Float.is_finite x then Float.max acc x else acc) 1. xs
  in
  let series_of ~label ~metric =
    {
      label;
      points =
        List.map
          (fun (d, outcomes) ->
            { x = x_of d; interval = interval_of metric outcomes })
          results;
    }
  in
  {
    id = "fig-fence";
    title =
      "Bounded-Staleness Fences: Read Latency vs Observed Snapshot Age, \
       ALG-WEAK-SI, 80/20 workload";
    xlabel = "fence bound d (s; rightmost point = unfenced)";
    ylabel = "seconds";
    series =
      [
        series_of ~label:"read rt p50" ~metric:(fun (o : Sim_system.outcome) ->
            o.Sim_system.read_rt_p50);
        series_of ~label:"read rt p95" ~metric:(fun (o : Sim_system.outcome) ->
            o.Sim_system.read_rt_p95);
        series_of ~label:"snapshot age p95"
          ~metric:(fun (o : Sim_system.outcome) -> o.Sim_system.read_age_p95);
      ];
    notes =
      [
        "Every read carries a Max_age d fence: its snapshot must include \
         every primary commit older than d virtual seconds at submission \
         (the commit-clock visibility horizon). Tightening d trades read \
         latency for freshness; the unfenced run anchors the loose end. \
         Guarantee is ALG-WEAK-SI, so fences are the only source of read \
         blocking.";
      ];
  }

(* Extension figure (not in the paper): what the static planner's mixed
   assignment is worth at run time. The {!Lsr_analysis.Plan} for the
   [fence_mix] workload fences exactly the inversion-prone fraction of the
   read traffic; this sweep prices three deployments of the same load —
   the uniform weakest-safe guarantee (every read Session_seq-fenced), the
   planner's mix (only the planned fraction fenced) and the unsafe Weak
   baseline — as mean read response time vs load. *)
let fig_plan opts =
  let plan =
    Lsr_analysis.Plan.infer ~workload:"fence_mix"
      (Lsr_analysis.Builtin.fence_mix ())
  in
  let readers =
    List.filter
      (fun (a : Lsr_analysis.Plan.assignment) -> a.Lsr_analysis.Plan.read_only)
      plan.Lsr_analysis.Plan.assignments
  in
  let fenced =
    List.filter
      (fun (a : Lsr_analysis.Plan.assignment) ->
        a.Lsr_analysis.Plan.fence <> None)
      readers
  in
  (* The planned fraction of fenced read traffic, assuming the template mix
     spreads reads evenly over the read-only templates. *)
  let phi =
    float_of_int (List.length fenced)
    /. float_of_int (max 1 (List.length readers))
  in
  let base = base_of opts in
  let xs =
    if opts.quick then [ 10.; 30. ] else [ 5.; 10.; 20.; 40.; 60. ]
  in
  let policies =
    [
      ("uniform strong-session fences", Sim_system.All_reads Session.Session_seq);
      ( Printf.sprintf "planned mix (%.0f%% fenced)" (100. *. phi),
        Sim_system.Fence_mix
          [ (phi, Some Session.Session_seq); (1. -. phi, None) ] );
      ("weak (no fences, inversions possible)", Sim_system.No_fence);
    ]
  in
  let series =
    List.map
      (fun (label, fence) ->
        {
          label;
          points =
            List.map
              (fun x ->
                let params =
                  {
                    base with
                    Params.num_secondaries = 5;
                    clients_per_secondary = int_of_float x;
                  }
                in
                let cfg =
                  {
                    (Sim_system.config params Session.Weak ~seed:opts.seed) with
                    Sim_system.fence;
                  }
                in
                let tag = Printf.sprintf "%s clients=%g" label x in
                let outcomes = replicate opts ~tag cfg in
                { x; interval = interval_of read_rt outcomes })
              xs;
        })
      policies
  in
  {
    id = "fig-plan";
    title =
      "Cost of Uniform vs Planner-Mixed Session Fences, fence_mix workload \
       shape";
    xlabel = "clients per secondary (5 secondaries)";
    ylabel = "mean read-only response time (s)";
    series;
    notes =
      [
        Printf.sprintf
          "The static plan for fence_mix assigns Session_seq fences to %d of \
           %d read-only templates (the inversion-prone fraction); the mixed \
           series fences exactly that fraction of reads, the uniform series \
           fences all of them (the whole-workload weakest-safe guarantee, \
           %s), and the weak series none. The gap between uniform and mixed \
           is the latency the planner saves; the gap between mixed and weak \
           is the price of correctness."
          (List.length fenced) (List.length readers)
          (Session.guarantee_name plan.Lsr_analysis.Plan.uniform);
      ];
  }

(* The online watchdog's memory and CPU cost vs run length. Three runs of
   the exact same trajectory per point (attaching a checker never changes
   outcomes): an unchecked baseline, the watchdog with history recording
   off, and history recording with the post-hoc battery. The post-hoc
   history grows linearly with the run; the watchdog's peak state tracks
   the active visibility window and flattens out. *)
let fig_watchdog opts =
  let base = base_of opts in
  let xs =
    if opts.quick then [ 120.; 240.; 480. ]
    else [ 300.; 600.; 1200.; 2400.; 4800. ]
  in
  let params duration =
    {
      base with
      Params.num_secondaries = 2;
      clients_per_secondary = 5;
      replications = min base.Params.replications 3;
      warmup = Float.min base.Params.warmup (duration /. 10.);
      duration;
    }
  in
  (* Like [replicate], but also times each run ({!Sys.time}; single-threaded
     process, CPU ~ wall). *)
  let replicate_timed ~tag (cfg : Sim_system.config) =
    let reps = cfg.Sim_system.params.Params.replications in
    List.init reps (fun i ->
        let seeded =
          {
            cfg with
            Sim_system.seed = opts.seed + (1000 * i) + Hashtbl.hash tag;
            obs = opts.obs;
            lineage = opts.lineage;
            monitor = opts.monitor;
          }
        in
        let t0 = Sys.time () in
        let outcome = Sim_system.run seeded in
        let cpu = Sys.time () -. t0 in
        opts.on_outcome (Printf.sprintf "%s rep %d" tag (i + 1)) seeded outcome;
        opts.progress
          (Printf.sprintf "%s rep %d/%d: %.2f cpu s" tag (i + 1) reps cpu);
        (outcome, cpu))
  in
  let results =
    List.map
      (fun duration ->
        let cfg =
          Sim_system.config (params duration) Session.Strong_session
            ~seed:opts.seed
        in
        let plain =
          replicate_timed ~tag:(Printf.sprintf "plain d=%g" duration) cfg
        in
        let wd =
          replicate_timed
            ~tag:(Printf.sprintf "watchdog d=%g" duration)
            { cfg with Sim_system.watchdog = true }
        in
        let hist =
          replicate_timed
            ~tag:(Printf.sprintf "history d=%g" duration)
            { cfg with Sim_system.record_history = true }
        in
        (duration, plain, wd, hist))
      xs
  in
  let points metric =
    List.map
      (fun (x, plain, wd, hist) ->
        { x; interval = Confidence.of_samples (metric plain wd hist) })
      results
  in
  let series =
    [
      {
        label = "watchdog peak state (entries, bounded)";
        points =
          points (fun _ wd _ ->
              List.map
                (fun ((o : Sim_system.outcome), _) ->
                  float_of_int o.Sim_system.watchdog_peak_state)
                wd);
      };
      {
        label = "post-hoc history (transactions recorded, linear)";
        points =
          points (fun _ _ hist ->
              List.map
                (fun ((o : Sim_system.outcome), _) ->
                  float_of_int
                    (o.Sim_system.reads_completed
                    + o.Sim_system.updates_completed))
                hist);
      };
      {
        label = "watchdog cpu overhead (s vs unchecked)";
        points =
          points (fun plain wd _ ->
              List.map2 (fun (_, cp) (_, cw) -> cw -. cp) plain wd);
      };
      {
        label = "post-hoc checker cpu (s)";
        points =
          points (fun _ _ hist ->
              List.map
                (fun ((o : Sim_system.outcome), _) ->
                  o.Sim_system.checker_cpu_s)
                hist);
      };
    ]
  in
  {
    id = "fig-watchdog";
    title = "Online Watchdog vs Post-Hoc Checker, cost vs run length";
    xlabel = "virtual run length (s, 2 secondaries x 5 clients)";
    ylabel = "state entries / transactions / cpu seconds (per series)";
    series;
    notes =
      [
        "Same seed per point across all three series' runs, so the checked \
         trajectory is identical: the post-hoc history and checker input \
         grow linearly with run length while the watchdog's peak state \
         follows the active visibility window (in-flight transactions plus \
         versions not yet refreshed everywhere) and its cpu overhead stays \
         a constant per-transaction tax.";
      ];
  }

(* The flight recorder's footprint and CPU cost vs run length, against the
   post-hoc history it replaces as a debugging artifact. Two runs of the
   same trajectory per point (an attached recorder never changes outcomes):
   an unrecorded baseline and one with an enabled recorder. The history a
   postmortem would otherwise need grows linearly with the run; the ring
   stays at its capacity. *)
let fig_flight opts =
  let base = base_of opts in
  let xs =
    if opts.quick then [ 120.; 240.; 480. ]
    else [ 300.; 600.; 1200.; 2400.; 4800. ]
  in
  let params duration =
    {
      base with
      Params.num_secondaries = 2;
      clients_per_secondary = 5;
      replications = min base.Params.replications 3;
      warmup = Float.min base.Params.warmup (duration /. 10.);
      duration;
    }
  in
  let replicate_timed ~tag (cfg : Sim_system.config) ~flight =
    let reps = cfg.Sim_system.params.Params.replications in
    List.init reps (fun i ->
        let seeded =
          {
            cfg with
            Sim_system.seed = opts.seed + (1000 * i) + Hashtbl.hash tag;
            obs = opts.obs;
            lineage = opts.lineage;
            monitor = opts.monitor;
            flight =
              (if flight then Lsr_obs.Flight.create ()
               else Lsr_obs.Flight.null);
          }
        in
        let t0 = Sys.time () in
        let outcome = Sim_system.run seeded in
        let cpu = Sys.time () -. t0 in
        opts.on_outcome (Printf.sprintf "%s rep %d" tag (i + 1)) seeded outcome;
        opts.progress
          (Printf.sprintf "%s rep %d/%d: %.2f cpu s" tag (i + 1) reps cpu);
        (outcome, cpu))
  in
  let results =
    List.map
      (fun duration ->
        let cfg =
          Sim_system.config (params duration) Session.Strong_session
            ~seed:opts.seed
        in
        let plain =
          replicate_timed ~flight:false
            ~tag:(Printf.sprintf "plain d=%g" duration)
            cfg
        in
        let rec_ =
          replicate_timed ~flight:true
            ~tag:(Printf.sprintf "flight d=%g" duration)
            cfg
        in
        (duration, plain, rec_))
      xs
  in
  let points metric =
    List.map
      (fun (x, plain, rec_) ->
        { x; interval = Confidence.of_samples (metric plain rec_) })
      results
  in
  let series =
    [
      {
        label = "recorder footprint (bytes, bounded)";
        points =
          points (fun _ rec_ ->
              List.map
                (fun ((o : Sim_system.outcome), _) ->
                  float_of_int o.Sim_system.flight_bytes)
                rec_);
      };
      {
        label = "events absorbed (linear)";
        points =
          points (fun _ rec_ ->
              List.map
                (fun ((o : Sim_system.outcome), _) ->
                  float_of_int o.Sim_system.flight_events)
                rec_);
      };
      {
        label = "recorder cpu overhead (s vs unrecorded)";
        points =
          points (fun plain rec_ ->
              List.map2 (fun (_, cp) (_, cr) -> cr -. cp) plain rec_);
      };
    ]
  in
  {
    id = "fig-flight";
    title = "Flight Recorder, bounded black box vs run length";
    xlabel = "virtual run length (s, 2 secondaries x 5 clients)";
    ylabel = "bytes / events / cpu seconds (per series)";
    series;
    notes =
      [
        "Same seed per point across both series' runs, so the recorded \
         trajectory is identical: the recorder absorbs the full unified \
         event stream (commits, pipeline stages, reads) yet its footprint \
         stays at the ring capacity while the events it has seen grow \
         linearly — the black box a postmortem needs without a \
         run-length-sized history.";
      ];
  }

(* --- Ablations -------------------------------------------------------------- *)

let ablate_propagation opts =
  let base = base_of opts in
  let xs = [ 0.01; 0.05; 0.10; 0.20 ] in
  let series_of ~label ~ship =
    {
      label;
      points =
        List.map
          (fun abort_prob ->
            let params = { base with Params.abort_prob } in
            let cfg =
              {
                (Sim_system.config params Session.Weak ~seed:opts.seed) with
                Sim_system.ship_aborted = ship;
              }
            in
            let tag = Printf.sprintf "%s abort=%g" label abort_prob in
            let outcomes = replicate opts ~tag cfg in
            {
              x = abort_prob;
              interval =
                interval_of
                  (fun o -> o.Sim_system.secondary_utilization *. 100.)
                  outcomes;
            })
          xs;
    }
  in
  {
    id = "ablate-propagation";
    title =
      "Secondary utilization: commit-time propagation vs eager (ships aborted \
       work)";
    xlabel = "abort probability";
    ylabel = "secondary utilization (%)";
    series =
      [
        series_of ~label:"commit-time (Alg 3.1)" ~ship:false;
        series_of ~label:"eager (simple method)" ~ship:true;
      ];
    notes =
      [
        "Algorithm 3.1 ships updates only at commit, so secondaries never \
         execute work for transactions that abort.";
      ];
  }

let ablate_applicators opts =
  let base = base_of opts in
  let xs =
    if opts.quick then [ 100.; 200. ] else [ 50.; 100.; 150.; 200.; 250. ]
  in
  let series_of ~label ~serial =
    {
      label;
      points =
        List.map
          (fun clients ->
            let params =
              {
                base with
                Params.num_secondaries = 5;
                clients_per_secondary = int_of_float clients / 5;
              }
            in
            let cfg =
              {
                (Sim_system.config params Session.Strong_session ~seed:opts.seed) with
                Sim_system.serial_refresh = serial;
              }
            in
            let tag = Printf.sprintf "%s clients=%g" label clients in
            let outcomes = replicate opts ~tag cfg in
            {
              x = clients;
              interval =
                interval_of (fun o -> o.Sim_system.refresh_staleness_mean) outcomes;
            })
          xs;
    }
  in
  {
    id = "ablate-applicators";
    title = "Replica staleness: concurrent applicators vs serial refresh";
    xlabel = "clients";
    ylabel = "mean refresh staleness (s)";
    series =
      [
        series_of ~label:"concurrent applicators (Alg 3.2/3.3)" ~serial:false;
        series_of ~label:"serial refresh" ~serial:true;
      ];
    notes =
      [
        "Staleness = seconds between an update's primary commit and its \
         refresh commit at a secondary (strong session SI, 80/20).";
      ];
  }

let ablate_pcsi opts =
  let base = base_of opts in
  let xs = [ 0.; 0.25; 0.5; 1. ] in
  let series_of alg =
    {
      label = Session.guarantee_name alg;
      points =
        List.map
          (fun migrate_prob ->
            let params =
              {
                base with
                Params.num_secondaries = 5;
                (* Let replicas genuinely diverge in freshness, otherwise
                   simultaneous broadcast hides the read-floor cost. *)
                propagation_jitter = 2. *. base.Params.propagation_delay;
              }
            in
            let cfg =
              {
                (Sim_system.config params alg ~seed:opts.seed) with
                Sim_system.migrate_prob;
              }
            in
            let tag =
              Printf.sprintf "%s migrate=%g" (Session.guarantee_name alg)
                migrate_prob
            in
            let outcomes = replicate opts ~tag cfg in
            { x = migrate_prob; interval = interval_of read_rt outcomes })
          xs;
    }
  in
  {
    id = "ablate-pcsi";
    title =
      "Read-only response time under read load-balancing: strong session SI \
       vs PCSI";
    xlabel = "migration probability";
    ylabel = "read-only response time (s)";
    series =
      List.map series_of
        [ Session.Strong_session; Session.Prefix_consistent; Session.Weak ];
    notes =
      [
        "When reads migrate between secondaries, strong session SI must also \
         keep snapshots from moving backwards (its read floor), so it waits \
         more than PCSI, which only orders reads after the session's own \
         updates (§7, Elnikety et al).";
      ];
  }

let ablate_contention opts =
  let base = params_for ~quick:opts.quick in
  let xs = [ 0.; 0.8; 1.1; 1.4 ] in
  let series_of guarantee =
    {
      label = Session.guarantee_name guarantee;
      points =
        List.map
          (fun key_skew ->
            let params =
              {
                base with
                Params.key_skew;
                num_secondaries = 5;
                (* Load the primary: conflicts need concurrency. *)
                clients_per_secondary = 50;
              }
            in
            let cfg = Sim_system.config params guarantee ~seed:opts.seed in
            let tag =
              Printf.sprintf "%s skew=%g" (Session.guarantee_name guarantee)
                key_skew
            in
            let outcomes = replicate opts ~tag cfg in
            let conflicts_per_k (o : Sim_system.outcome) =
              1000. *. float_of_int o.Sim_system.fcw_aborts
              /. float_of_int (max 1 o.Sim_system.updates_completed)
            in
            { x = key_skew; interval = interval_of conflicts_per_k outcomes })
          xs;
    }
  in
  {
    id = "ablate-contention";
    title = "First-committer-wins conflicts under key skew (Zipf), 250 clients";
    xlabel = "Zipf exponent";
    ylabel = "FCW aborts per 1000 committed updates";
    series = [ series_of Session.Weak ];
    notes =
      [
        "The paper models aborts as a flat 1% probability; with skewed keys \
         the engine's real first-committer-wins rule fires, and the abort \
         records flow through propagation so secondaries discard the work.";
      ];
  }

let ablate_delay opts =
  let base = base_of opts in
  let xs = [ 1.; 10.; 30. ] in
  let series_of alg =
    {
      label = Session.guarantee_name alg;
      points =
        List.map
          (fun propagation_delay ->
            let params =
              { base with Params.propagation_delay; num_secondaries = 5 }
            in
            let cfg = Sim_system.config params alg ~seed:opts.seed in
            let tag =
              Printf.sprintf "%s delay=%g" (Session.guarantee_name alg)
                propagation_delay
            in
            let outcomes = replicate opts ~tag cfg in
            { x = propagation_delay; interval = interval_of read_rt outcomes })
          xs;
    }
  in
  {
    id = "ablate-delay";
    title = "Read-only response time vs propagation delay";
    xlabel = "propagation delay (s)";
    ylabel = "read-only response time (s)";
    series = List.map series_of [ Session.Strong_session; Session.Weak ];
    notes =
      [
        "The session-SI penalty is the gap to ALG-WEAK-SI; it scales with \
         the propagation cycle because blocked reads wait for the next \
         refresh.";
      ];
  }
