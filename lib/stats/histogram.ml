type t = {
  mutable data : float array;
  mutable size : int;
  (* Cached sorted view, invalidated by writes. *)
  mutable sorted : float array option;
}

let create () = { data = [||]; size = 0; sorted = None }

let record t x =
  if t.size = Array.length t.data then begin
    let fresh = Array.make (max 1024 (2 * t.size)) 0. in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- None

let count t = t.size

let sorted t =
  match t.sorted with
  | Some s -> s
  | None ->
    let s = Array.sub t.data 0 t.size in
    Array.sort Float.compare s;
    t.sorted <- Some s;
    s

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q outside [0, 1]";
  if t.size = 0 then 0.
  else begin
    let s = sorted t in
    (* Nearest rank: the ceil(q * n)-th smallest sample (1-based). *)
    let rank = int_of_float (Float.ceil (q *. float_of_int t.size)) in
    s.(max 0 (min (t.size - 1) (rank - 1)))
  end

let median t = quantile t 0.5
let p95 t = quantile t 0.95
let p99 t = quantile t 0.99

let clear t =
  t.data <- [||];
  t.size <- 0;
  t.sorted <- None
