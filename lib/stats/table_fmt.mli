(** Plain-text table rendering for the benchmark harness: aligned columns
    with a header rule, in the spirit of the rows/series the paper's figures
    plot. *)

(** [render ~header rows] lays out all cells right-aligned per column.
    Rows may be ragged; missing cells render empty. *)
val render : header:string list -> string list list -> string

(** [print ~title ~header rows] renders with a title line to stdout. *)
val print : title:string -> header:string list -> string list list -> unit

(** Format a float compactly ([%.2f], trimming a trailing [.00]). *)
val float_cell : float -> string
