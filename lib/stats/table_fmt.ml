let float_cell f =
  (* Non-finite values reach here only from degenerate series (e.g. zero
     samples); render a readable placeholder instead of "inf"/"nan". *)
  if not (Float.is_finite f) then "n/a"
  else
    let s = Printf.sprintf "%.2f" f in
    match String.ends_with ~suffix:".00" s with
    | true -> String.sub s 0 (String.length s - 3)
    | false -> s

let render ~header rows =
  let columns =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length header)
      rows
  in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (cell row i)))
      (String.length (cell header i))
      rows
  in
  let widths = List.init columns width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i w ->
           let c = cell row i in
           String.make (max 0 (w - String.length c)) ' ' ^ c)
         widths)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)

let print ~title ~header rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ~header rows)
