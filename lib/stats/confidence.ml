type interval = {
  mean : float;
  half_width : float;
  n : int;
}

(* Two-sided 97.5% quantiles of the Student t distribution, df = 1..40. *)
let t_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
    2.040; 2.037; 2.035; 2.032; 2.030; 2.028; 2.026; 2.024; 2.023; 2.021;
  |]

(* Sparse anchors beyond the dense table, linearly interpolated. *)
let t_sparse = [| (40, 2.021); (60, 2.000); (80, 1.990); (100, 1.984); (120, 1.980) |]

let t_critical ~df =
  if df < 1 then invalid_arg "Confidence.t_critical: df < 1";
  if df <= Array.length t_table then t_table.(df - 1)
  else if df >= 120 then
    (* Approach the normal quantile as 1/df, anchored at the df = 120 entry
       (the usual "t is ~normal beyond 120" cutoff, without a 0.02 cliff). *)
    1.96 +. ((1.980 -. 1.96) *. 120. /. float_of_int df)
  else begin
    (* 40 < df < 120: interpolate between the bracketing sparse anchors. *)
    let rec find i =
      let lo_df, lo_t = t_sparse.(i) and hi_df, hi_t = t_sparse.(i + 1) in
      if df <= hi_df then
        let frac = float_of_int (df - lo_df) /. float_of_int (hi_df - lo_df) in
        lo_t +. (frac *. (hi_t -. lo_t))
      else find (i + 1)
    in
    find 0
  end

let of_samples = function
  | [] -> invalid_arg "Confidence.of_samples: empty sample list"
  | [ x ] -> { mean = x; half_width = 0.; n = 1 }
  | xs ->
    let tally = Lsr_sim.Stat.create () in
    List.iter (Lsr_sim.Stat.record tally) xs;
    let n = Lsr_sim.Stat.count tally in
    let sem = Lsr_sim.Stat.stddev tally /. sqrt (float_of_int n) in
    {
      mean = Lsr_sim.Stat.mean tally;
      half_width = t_critical ~df:(n - 1) *. sem;
      n;
    }

let pp ppf i = Format.fprintf ppf "%.3f ± %.3f" i.mean i.half_width
let to_string i = Format.asprintf "%a" pp i
