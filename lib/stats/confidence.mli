(** Confidence intervals over independent replications.

    The paper reports each point as the mean of five independent simulation
    runs with 95% confidence intervals (§6.1); this module reproduces that
    reduction using the Student t distribution for small sample counts. *)

type interval = {
  mean : float;
  half_width : float;  (** half-width of the confidence interval *)
  n : int;
}

(** [t_critical ~df] is the two-sided 97.5% Student-t quantile for [df]
    degrees of freedom (95% confidence): tabulated through [df = 40],
    linearly interpolated between standard anchors through [df = 120], then
    decaying smoothly toward the normal 1.96. Strictly decreasing in [df] —
    no cliff at the table edge. @raise Invalid_argument for [df < 1]. *)
val t_critical : df:int -> float

(** [of_samples xs] is the 95% confidence interval of the mean of [xs].
    A single sample yields a zero-width interval. @raise Invalid_argument on
    an empty list. *)
val of_samples : float list -> interval

val pp : Format.formatter -> interval -> unit

(** [to_string i] like ["12.34 ± 0.56"]. *)
val to_string : interval -> string
