(** Exact sample store with quantile queries.

    Means hide tail latency; the simulator additionally reports p50/p95/p99
    response times through this module. Samples are kept exactly (the
    paper-scale runs produce at most a few hundred thousand per class);
    quantiles sort on demand, so query at the end of a run. *)

type t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int

(** [quantile t q] for [q] in [0, 1]; 0 when empty. Uses the
    nearest-rank definition.
    @raise Invalid_argument when [q] is outside [0, 1]. *)
val quantile : t -> float -> float

val median : t -> float
val p95 : t -> float
val p99 : t -> float
val clear : t -> unit
