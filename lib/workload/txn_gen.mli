(** Transaction generation per the simulation model of §5.

    A transaction is an update with probability [update_tran_prob]; its
    length is uniform on [tran_size_min, tran_size_max]; each operation of an
    update transaction writes with probability [update_op_prob], otherwise
    reads. Keys are drawn uniformly from the key space. *)

open Lsr_sim

type op =
  | Read_op of string
  | Write_op of string * string

type kind =
  | Read_only
  | Update

type spec = {
  kind : kind;
  ops : op list;  (** in execution order; non-empty *)
}

(** [generate params rng] draws a fresh transaction. An update transaction is
    guaranteed at least one write (a writeless "update" would be a read-only
    transaction misrouted to the primary). *)
val generate : Params.t -> Rng.t -> spec

val op_count : spec -> int
val is_update : spec -> bool

(** Number of write operations. *)
val write_count : spec -> int

val pp : Format.formatter -> spec -> unit
