type t = {
  num_secondaries : int;
  clients_per_secondary : int;
  think_time : float;
  session_time : float;
  update_tran_prob : float;
  abort_prob : float;
  tran_size_min : int;
  tran_size_max : int;
  op_service_time : float;
  update_op_prob : float;
  propagation_delay : float;
  propagation_jitter : float;
  warmup : float;
  duration : float;
  replications : int;
  response_time_cap : float;
  key_space : int;
  key_skew : float;
}

let default =
  {
    num_secondaries = 5;
    clients_per_secondary = 20;
    think_time = 7.0;
    session_time = 15. *. 60.;
    update_tran_prob = 0.20;
    abort_prob = 0.01;
    tran_size_min = 5;
    tran_size_max = 15;
    op_service_time = 0.02;
    update_op_prob = 0.30;
    propagation_delay = 10.0;
    propagation_jitter = 0.;
    warmup = 5. *. 60.;
    duration = 35. *. 60.;
    replications = 5;
    response_time_cap = 3.0;
    key_space = 100_000;
    key_skew = 0.;
  }

let browsing p = { p with update_tran_prob = 0.05 }

let quick p =
  { p with warmup = 2. *. 60.; duration = 10. *. 60.; replications = 3 }

let num_clients p = p.num_secondaries * p.clients_per_secondary

let table1_rows p =
  [
    ("num_sec", "number of secondary sites", string_of_int p.num_secondaries);
    ( "num_clients",
      "number of clients",
      Printf.sprintf "%d/secondary" p.clients_per_secondary );
    ("think_time", "mean client think time", Printf.sprintf "%gs" p.think_time);
    ( "session_time",
      "mean session duration",
      Printf.sprintf "%g min." (p.session_time /. 60.) );
    ( "update_tran_prob",
      "probability of an update transaction",
      Printf.sprintf "%g%%" (100. *. p.update_tran_prob) );
    ( "abort_prob",
      "update transaction abort probability",
      Printf.sprintf "%g%%" (100. *. p.abort_prob) );
    ( "tran_size",
      "mean number of operations per transaction",
      string_of_int ((p.tran_size_min + p.tran_size_max) / 2) );
    ( "op_service_time",
      "service time per operation",
      Printf.sprintf "%gs" p.op_service_time );
    ( "update_op_prob",
      "probability of an update operation",
      Printf.sprintf "%g%%" (100. *. p.update_op_prob) );
    ( "propagation_delay",
      "propagator think time",
      Printf.sprintf "%gs" p.propagation_delay );
  ]

let pp ppf p =
  Format.fprintf ppf
    "@[<v>secondaries: %d; clients: %d; mix: %g/%g; duration: %gs@]"
    p.num_secondaries (num_clients p)
    (100. *. (1. -. p.update_tran_prob))
    (100. *. p.update_tran_prob) p.duration
