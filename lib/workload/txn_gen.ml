open Lsr_sim

type op =
  | Read_op of string
  | Write_op of string * string

type kind =
  | Read_only
  | Update

type spec = {
  kind : kind;
  ops : op list;
}

let key params rng =
  let n = params.Params.key_space in
  let idx =
    if params.Params.key_skew > 0. then
      Rng.zipf rng ~n ~s:params.Params.key_skew - 1
    else Rng.uniform rng ~lo:0 ~hi:(n - 1)
  in
  Printf.sprintf "item:%06d" idx

let fresh_value rng = Printf.sprintf "v%Ld" (Rng.bits64 rng)

let generate params rng =
  let size =
    Rng.uniform rng ~lo:params.Params.tran_size_min ~hi:params.Params.tran_size_max
  in
  let is_update = Rng.bernoulli rng ~p:params.Params.update_tran_prob in
  if not is_update then
    { kind = Read_only; ops = List.init size (fun _ -> Read_op (key params rng)) }
  else begin
    let ops =
      List.init size (fun _ ->
          if Rng.bernoulli rng ~p:params.Params.update_op_prob then
            Write_op (key params rng, fresh_value rng)
          else Read_op (key params rng))
    in
    (* Guarantee at least one write, else this is a read-only transaction in
       disguise and would skew the routed mix. *)
    let ops =
      if List.exists (function Write_op _ -> true | Read_op _ -> false) ops then
        ops
      else
        match ops with
        | Read_op k :: rest -> Write_op (k, fresh_value rng) :: rest
        | (Write_op _ :: _ | []) -> ops
    in
    { kind = Update; ops }
  end

let op_count spec = List.length spec.ops
let is_update spec = match spec.kind with Update -> true | Read_only -> false

let write_count spec =
  List.length
    (List.filter (function Write_op _ -> true | Read_op _ -> false) spec.ops)

let pp ppf spec =
  Format.fprintf ppf "%s[%d ops, %d writes]"
    (match spec.kind with Read_only -> "read-only" | Update -> "update")
    (op_count spec) (write_count spec)
