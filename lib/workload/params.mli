(** Simulation model parameters — Table 1 of the paper, plus the run
    controls from §6.1 (35 simulated minutes, 5-minute warm-up, five
    replications) and the TPC-W transaction mixes from §5. *)

type t = {
  num_secondaries : int;  (** number of secondary sites (varies) *)
  clients_per_secondary : int;  (** 20 per secondary *)
  think_time : float;  (** mean client think time, 7 s (exponential) *)
  session_time : float;  (** mean session duration, 15 min (exponential) *)
  update_tran_prob : float;  (** probability of an update transaction *)
  abort_prob : float;  (** update transaction abort probability, 1% *)
  tran_size_min : int;  (** operations per transaction: uniform 5..15 *)
  tran_size_max : int;
  op_service_time : float;  (** service time per operation, 0.02 s *)
  update_op_prob : float;  (** probability an op of an update txn writes, 30% *)
  propagation_delay : float;  (** propagator think time, 10 s *)
  propagation_jitter : float;
      (** per-secondary extra delivery delay, uniform on [0, jitter]; 0 in
          the paper's model. Models per-destination batching/scheduling
          variance so replicas genuinely diverge in freshness (used by the
          PCSI ablation). Deliveries to one site stay FIFO. *)
  (* Run controls (§6.1). *)
  warmup : float;  (** measurement starts here, 5 min *)
  duration : float;  (** total run length, 35 min *)
  replications : int;  (** independent runs per point, 5 *)
  response_time_cap : float;
      (** the throughput curves count transactions finishing within this
          bound (3 s) *)
  key_space : int;  (** distinct data items *)
  key_skew : float;
      (** Zipf exponent for key popularity; 0 (the paper's model) = uniform.
          Positive skew concentrates writes on hot items, producing real
          first-committer-wins conflicts at the primary (the contention
          ablation). *)
}

(** Table 1 defaults with the 80/20 ("shopping") mix and 5 secondaries. *)
val default : t

(** [browsing p] switches to the 95/5 ("browsing") mix. *)
val browsing : t -> t

(** Scaled-down run controls for quick regeneration (shorter runs, fewer
    replications); the curve shapes are preserved. *)
val quick : t -> t

(** Number of clients in the whole system. *)
val num_clients : t -> int

(** Rows for reprinting Table 1. *)
val table1_rows : t -> (string * string * string) list

val pp : Format.formatter -> t -> unit
