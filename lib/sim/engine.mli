(** Discrete-event simulation core: a virtual clock and an ordered queue of
    pending events.

    The engine replaces the event-scheduling layer of the CSIM package used by
    the paper. Events scheduled for the same instant fire in scheduling order
    (FIFO tie-breaking), which keeps simulations deterministic for a fixed
    random seed. *)

type t

(** Cancellable reference to a scheduled event. *)
type handle

val create : unit -> t

(** Current virtual time, in seconds. Starts at 0. *)
val now : t -> float

(** [schedule t ~delay f] arranges for [f] to run at time [now t +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)
val schedule : t -> delay:float -> (unit -> unit) -> handle

(** [cancel t h] prevents a pending event from firing. Cancelling an event
    that already fired (or was already cancelled) is a no-op. *)
val cancel : t -> handle -> unit

(** [step t] fires the earliest pending event, advancing the clock to its
    time. Returns [false] when no events remain. *)
val step : t -> bool

(** [run ?until t] fires events until the queue drains or the clock would
    pass [until]. When stopped by [until], the clock is set to exactly
    [until] and remaining events stay queued. *)
val run : ?until:float -> t -> unit

(** Number of pending (non-cancelled) events. *)
val pending : t -> int

(** Total events fired since [create] — the simulator's work measure, used
    by the perf bench to report events/second. *)
val events_processed : t -> int
