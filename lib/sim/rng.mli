(** Deterministic pseudo-random streams for simulation.

    SplitMix64 generator: tiny state, good statistical quality, and cheap
    {!split}ting so each simulated process can own an independent stream —
    replications then differ only in the root seed, which keeps experiments
    reproducible and lets variance-reduction comparisons share streams. *)

type t

(** [create seed] is a new stream. Equal seeds produce equal streams. *)
val create : int -> t

(** [split t] derives an independent stream, advancing [t]. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [float t] is uniform on [0, 1). *)
val float : t -> float

(** [uniform t ~lo ~hi] is a uniform integer in [lo, hi] inclusive.
    @raise Invalid_argument when [lo > hi]. *)
val uniform : t -> lo:int -> hi:int -> int

(** [exponential t ~mean] draws from Exp with the given mean.
    @raise Invalid_argument when [mean <= 0]. *)
val exponential : t -> mean:float -> float

(** [bernoulli t ~p] is true with probability [p] (clamped to [0, 1]). *)
val bernoulli : t -> p:float -> bool

(** [zipf t ~n ~s] draws a rank in [1, n] with probability proportional to
    [1 / rank^s] (continuous-approximation inverse method; exact enough for
    workload skew). [s = 0] degenerates to uniform.
    @raise Invalid_argument when [n < 1] or [s < 0]. *)
val zipf : t -> n:int -> s:float -> int
