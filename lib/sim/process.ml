open Effect
open Effect.Deep

type 'a waker = 'a -> unit

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : ('a waker -> unit) -> 'a Effect.t
  | Get_engine : Engine.t Effect.t

let spawn_at eng ~delay:d f =
  let run () =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Delay d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  ignore (Engine.schedule eng ~delay:d (fun () -> continue k ())))
            | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* The waker must be idempotent: several parties may race to
                     wake the same process (e.g. a timeout and a message). *)
                  let fired = ref false in
                  let waker v =
                    if not !fired then begin
                      fired := true;
                      ignore
                        (Engine.schedule eng ~delay:0. (fun () -> continue k v))
                    end
                  in
                  register waker)
            | Get_engine ->
              Some (fun (k : (a, unit) continuation) -> continue k eng)
            | _ -> None);
      }
  in
  ignore (Engine.schedule eng ~delay:d run)

let spawn eng f = spawn_at eng ~delay:0. f
let delay d = perform (Delay d)
let suspend register = perform (Suspend register)

let engine () =
  try perform Get_engine
  with Effect.Unhandled _ -> failwith "Process.engine: not inside a process"

let now () = Engine.now (engine ())
