(** A shared server with a choice of queueing disciplines.

    Each site in the simulation model is one such resource ("the server is a
    shared resource with a round-robin queueing scheme having a time slice of
    0.001 seconds", §5). Three disciplines are provided:

    - [Fifo]: jobs are served one at a time to completion, in arrival order.
    - [Round_robin quantum]: jobs take turns receiving [quantum] seconds of
      service — the paper's discipline, exact but event-heavy.
    - [Processor_sharing]: the fluid limit of round-robin as the quantum goes
      to zero; all queued jobs progress simultaneously at rate [1/n]. This is
      the default for experiments because the paper's 1 ms slice against 20 ms
      operations is indistinguishable from processor sharing while costing
      20x fewer events.

    Every resource also keeps full per-job queueing statistics in the CSIM
    tradition (resource statistics as a first-class simulation primitive):
    arrival and completion counts, waiting-time and service-time tallies, a
    time-weighted queue-length integral and exactly pro-rated busy time —
    all correct at {e any} read instant, not just after a completion event,
    so a periodic monitor can sample them mid-run. *)

type discipline =
  | Fifo
  | Round_robin of float  (** time slice in seconds, must be positive *)
  | Processor_sharing

type t

(** [create ?name engine ~discipline] is a new single-server resource.
    [name] (default ["resource"]) labels the telemetry. *)
val create : ?name:string -> Engine.t -> discipline:discipline -> t

(** [use t amount] consumes [amount] seconds of service, blocking the calling
    process until the job completes under the resource's discipline. Must be
    called from within a process. A zero [amount] still takes the job through
    the discipline — it completes in its arrival-order turn, after every job
    queued ahead of it, rather than bypassing the queue.
    @raise Invalid_argument if [amount] is negative or not finite. *)
val use : t -> float -> unit

(** Jobs currently queued or in service. Under processor sharing, jobs whose
    fluid share has already exhausted their demand but whose completion event
    has not fired yet (it is scheduled for exactly the current instant) are
    {e not} counted, so a sampled queue length never overshoots. *)
val load : t -> int

(** Total service time delivered so far. Elapsed in-service time is charged
    lazily at read (all disciplines), so the value is exact at any instant —
    utilization samples taken between completion events are never stale. *)
val busy_time : t -> float

(** {2 Queueing telemetry}

    Per-job tallies are recorded at job completion; the queue-length
    integral and busy time are pro-rated to the read instant. *)

(** The label given at creation. *)
val name : t -> string

(** Jobs that entered the discipline so far. *)
val arrivals : t -> int

(** Jobs whose service completed so far. *)
val completions : t -> int

(** Waiting time per completed job: sojourn minus the job's own service
    demand (the queueing delay under Fifo; the slowdown from sharing the
    server under RR/PS). *)
val wait_stat : t -> Stat.t

(** Service demand per completed job. *)
val service_stat : t -> Stat.t

(** Time integral of the number of jobs present (queued + in service),
    pro-rated to the read instant: [queue_area t /. now] is the time-average
    queue length L. *)
val queue_area : t -> float

(** [busy_time t /. now]; 0 before any virtual time has passed. *)
val utilization : t -> float

(** Time-average number of jobs present, L. *)
val mean_queue_length : t -> float

(** Completions per virtual second, λ. *)
val throughput : t -> float

(** Little's-law self-check: the relative gap [|L - λW| / max L (λW)]
    where W is the mean sojourn (wait + service) over completed jobs.
    In steady state this tends to 0 — the invariant the telemetry must
    satisfy (pinned by a property test over all three disciplines).
    [None] before the first completion. *)
val littles_law_gap : t -> float option
