(** A shared server with a choice of queueing disciplines.

    Each site in the simulation model is one such resource ("the server is a
    shared resource with a round-robin queueing scheme having a time slice of
    0.001 seconds", §5). Three disciplines are provided:

    - [Fifo]: jobs are served one at a time to completion, in arrival order.
    - [Round_robin quantum]: jobs take turns receiving [quantum] seconds of
      service — the paper's discipline, exact but event-heavy.
    - [Processor_sharing]: the fluid limit of round-robin as the quantum goes
      to zero; all queued jobs progress simultaneously at rate [1/n]. This is
      the default for experiments because the paper's 1 ms slice against 20 ms
      operations is indistinguishable from processor sharing while costing
      20x fewer events. *)

type discipline =
  | Fifo
  | Round_robin of float  (** time slice in seconds, must be positive *)
  | Processor_sharing

type t

(** [create engine ~discipline] is a new single-server resource. *)
val create : Engine.t -> discipline:discipline -> t

(** [use t amount] consumes [amount] seconds of service, blocking the calling
    process until the job completes under the resource's discipline. Must be
    called from within a process. A zero [amount] still takes the job through
    the discipline — it completes in its arrival-order turn, after every job
    queued ahead of it, rather than bypassing the queue.
    @raise Invalid_argument if [amount] is negative or not finite. *)
val use : t -> float -> unit

(** Jobs currently queued or in service. *)
val load : t -> int

(** Total service time delivered so far (for utilization reporting). *)
val busy_time : t -> float
