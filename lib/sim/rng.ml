type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let float t =
  (* Use the top 53 bits for a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let uniform t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  let span = hi - lo + 1 in
  lo + int_of_float (float t *. float_of_int span)

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = float t in
  -.mean *. log (1. -. u)

let bernoulli t ~p = float t < p

let zipf t ~n ~s =
  if n < 1 then invalid_arg "Rng.zipf: n < 1";
  if s < 0. then invalid_arg "Rng.zipf: s < 0";
  if s = 0. then uniform t ~lo:1 ~hi:n
  else begin
    let u = float t in
    let nf = float_of_int n in
    let k =
      if Float.abs (s -. 1.) < 1e-9 then
        (* H(k) ~ ln k: invert u = ln k / ln n. *)
        Float.exp (u *. Float.log nf)
      else begin
        (* H_s(k) ~ (k^(1-s) - 1) / (1 - s): invert the normalized CDF. *)
        let e = 1. -. s in
        ((u *. ((nf ** e) -. 1.)) +. 1.) ** (1. /. e)
      end
    in
    max 1 (min n (int_of_float k))
  end
