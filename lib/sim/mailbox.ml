type 'a t = {
  messages : 'a Queue.t;
  receivers : 'a Process.waker Queue.t;
}

let create () = { messages = Queue.create (); receivers = Queue.create () }

let send t msg =
  match Queue.take_opt t.receivers with
  | Some waker -> waker msg
  | None -> Queue.add msg t.messages

let recv t =
  match Queue.take_opt t.messages with
  | Some msg -> msg
  | None -> Process.suspend (fun waker -> Queue.add waker t.receivers)

let peek t = Queue.peek_opt t.messages
let length t = Queue.length t.messages
let is_empty t = Queue.is_empty t.messages
