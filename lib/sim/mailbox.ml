type 'a t = {
  messages : 'a Queue.t;
  receivers : 'a Process.waker Queue.t;
  (* Depth telemetry: counts are always kept; the time-weighted depth
     integral needs a clock (virtual time), so it accrues only when one was
     supplied at creation. *)
  clock : (unit -> float) option;
  created : float;
  mutable sends : int;
  mutable recvs : int;
  mutable peak : int;
  mutable depth_area : float;
  mutable last_update : float;
}

let create ?clock () =
  let created = match clock with Some c -> c () | None -> 0. in
  {
    messages = Queue.create ();
    receivers = Queue.create ();
    clock;
    created;
    sends = 0;
    recvs = 0;
    peak = 0;
    depth_area = 0.;
    last_update = created;
  }

(* Charge the interval since the last depth change to the integral; must run
   before the queue length changes. *)
let advance t =
  match t.clock with
  | None -> ()
  | Some clock ->
    let now = clock () in
    let elapsed = now -. t.last_update in
    if elapsed > 0. then
      t.depth_area <-
        t.depth_area +. (float_of_int (Queue.length t.messages) *. elapsed);
    t.last_update <- now

let send t msg =
  advance t;
  t.sends <- t.sends + 1;
  match Queue.take_opt t.receivers with
  | Some waker ->
    t.recvs <- t.recvs + 1;
    waker msg
  | None ->
    Queue.add msg t.messages;
    if Queue.length t.messages > t.peak then t.peak <- Queue.length t.messages

let recv t =
  advance t;
  match Queue.take_opt t.messages with
  | Some msg ->
    t.recvs <- t.recvs + 1;
    msg
  | None -> Process.suspend (fun waker -> Queue.add waker t.receivers)

let peek t = Queue.peek_opt t.messages
let length t = Queue.length t.messages
let is_empty t = Queue.is_empty t.messages

let sends t = t.sends
let recvs t = t.recvs
let peak_depth t = t.peak

let depth_area t =
  match t.clock with
  | None -> 0.
  | Some clock ->
    let pending = clock () -. t.last_update in
    if pending > 0. then
      t.depth_area +. (float_of_int (Queue.length t.messages) *. pending)
    else t.depth_area

let mean_depth t =
  match t.clock with
  | None -> 0.
  | Some clock ->
    let span = clock () -. t.created in
    if span <= 0. then 0. else depth_area t /. span
