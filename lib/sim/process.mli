(** Process-oriented simulation on top of {!Engine}, in the style of CSIM
    processes.

    A process is an ordinary OCaml function executed under an effect handler.
    Inside a process, {!delay} advances virtual time and {!suspend} parks the
    process until some other party calls the waker it was given. All
    higher-level synchronization ({!Condition}, {!Mailbox}, {!Resource}) is
    built on these two primitives.

    Processes are cooperative and single-domain: exactly one process runs at
    any instant, so shared mutable state needs no locking. *)

(** A waker resumes a suspended process with a value. Calling a waker more
    than once is a no-op after the first call. The process resumes at the
    current virtual time, after events already queued for that instant. *)
type 'a waker = 'a -> unit

(** [spawn engine f] starts [f] as a process at the current virtual time.
    Exceptions escaping [f] are re-raised out of the engine's event loop. *)
val spawn : Engine.t -> (unit -> unit) -> unit

(** [spawn_at engine ~delay f] starts [f] after [delay] seconds. *)
val spawn_at : Engine.t -> delay:float -> (unit -> unit) -> unit

(** [delay seconds] suspends the calling process for [seconds] of virtual
    time. Must be called from within a process. *)
val delay : float -> unit

(** [suspend register] parks the calling process. [register] receives the
    waker and typically stores it in a queue; the process resumes when the
    waker is applied. Must be called from within a process. *)
val suspend : ('a waker -> unit) -> 'a

(** [engine ()] is the engine driving the calling process.
    @raise Failure when called outside a process. *)
val engine : unit -> Engine.t

(** [now ()] is the current virtual time of the calling process's engine. *)
val now : unit -> float
