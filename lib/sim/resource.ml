type discipline =
  | Fifo
  | Round_robin of float
  | Processor_sharing

type job = { mutable remaining : float; waker : unit Process.waker }

type t = {
  eng : Engine.t;
  discipline : discipline;
  (* Processor sharing: the set of jobs in simultaneous service. *)
  mutable active : job list;
  mutable last_update : float;
  mutable completion : Engine.handle option;
  (* Fifo / round-robin: the waiting line and the server state. *)
  queue : job Queue.t;
  mutable serving : bool;
  mutable busy : float;
}

let epsilon = 1e-9

let create eng ~discipline =
  (match discipline with
  | Round_robin quantum when quantum <= 0. ->
    invalid_arg "Resource.create: round-robin quantum must be positive"
  | Fifo | Round_robin _ | Processor_sharing -> ());
  {
    eng;
    discipline;
    active = [];
    last_update = Engine.now eng;
    completion = None;
    queue = Queue.create ();
    serving = false;
    busy = 0.;
  }

(* --- Processor sharing ---------------------------------------------------

   All [n] active jobs progress at rate [1/n]. We advance the fluid state
   lazily: on every arrival and every completion event we charge the elapsed
   time to each job, then reschedule the next completion for the job with the
   least remaining work. *)

let ps_advance t =
  let now = Engine.now t.eng in
  let elapsed = now -. t.last_update in
  let n = List.length t.active in
  if elapsed > 0. && n > 0 then begin
    let rate = 1. /. float_of_int n in
    List.iter (fun j -> j.remaining <- j.remaining -. (elapsed *. rate)) t.active;
    t.busy <- t.busy +. elapsed
  end;
  t.last_update <- now

let rec ps_reschedule t =
  (match t.completion with
  | Some h ->
    Engine.cancel t.eng h;
    t.completion <- None
  | None -> ());
  match t.active with
  | [] -> ()
  | jobs ->
    let least = List.fold_left (fun acc j -> min acc j.remaining) infinity jobs in
    let n = float_of_int (List.length jobs) in
    let delay = max 0. (least *. n) in
    t.completion <- Some (Engine.schedule t.eng ~delay (fun () -> ps_complete t))

and ps_complete t =
  t.completion <- None;
  ps_advance t;
  let done_, running = List.partition (fun j -> j.remaining <= epsilon) t.active in
  t.active <- running;
  List.iter (fun j -> j.waker ()) done_;
  ps_reschedule t

let ps_use t amount =
  Process.suspend (fun waker ->
      ps_advance t;
      t.active <- t.active @ [ { remaining = amount; waker } ];
      ps_reschedule t)

(* --- Fifo ---------------------------------------------------------------- *)

let rec fifo_start_next t =
  match Queue.take_opt t.queue with
  | None -> t.serving <- false
  | Some job ->
    t.serving <- true;
    ignore
      (Engine.schedule t.eng ~delay:job.remaining (fun () ->
           t.busy <- t.busy +. job.remaining;
           job.waker ();
           fifo_start_next t))

let fifo_use t amount =
  Process.suspend (fun waker ->
      Queue.add { remaining = amount; waker } t.queue;
      if not t.serving then fifo_start_next t)

(* --- Round robin ---------------------------------------------------------

   The head job receives at most one quantum of service, then yields the
   server and re-enters the back of the line unless finished. This is the
   discipline in the paper's simulation model (1 ms slice). *)

let rec rr_serve_slice t quantum =
  match Queue.take_opt t.queue with
  | None -> t.serving <- false
  | Some job ->
    t.serving <- true;
    let slice = min quantum job.remaining in
    ignore
      (Engine.schedule t.eng ~delay:slice (fun () ->
           t.busy <- t.busy +. slice;
           job.remaining <- job.remaining -. slice;
           if job.remaining <= epsilon then job.waker ()
           else Queue.add job t.queue;
           rr_serve_slice t quantum))

let rr_use t quantum amount =
  Process.suspend (fun waker ->
      Queue.add { remaining = amount; waker } t.queue;
      if not t.serving then rr_serve_slice t quantum)

(* --- Common --------------------------------------------------------------- *)

let use t amount =
  if not (Float.is_finite amount) || amount < 0. then
    invalid_arg "Resource.use: amount must be finite and non-negative";
  (* Zero-amount jobs still join the discipline: they must wait behind every
     job already in line, not jump the queue by returning immediately. All
     three disciplines complete a [remaining = 0.] job in its arrival-order
     turn without consuming service time. *)
  match t.discipline with
  | Processor_sharing -> ps_use t amount
  | Fifo -> fifo_use t amount
  | Round_robin quantum -> rr_use t quantum amount

let load t =
  match t.discipline with
  | Processor_sharing -> List.length t.active
  | Fifo | Round_robin _ -> Queue.length t.queue + if t.serving then 1 else 0

let busy_time t = t.busy
