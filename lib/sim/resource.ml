type discipline =
  | Fifo
  | Round_robin of float
  | Processor_sharing

type job = {
  mutable remaining : float;
  amount : float;  (* original service demand, for the telemetry tallies *)
  arrived : float;  (* virtual arrival time *)
  waker : unit Process.waker;
}

(* Processor-sharing jobs are keyed by the virtual time at which their demand
   is met (arrival virtual time + demand); [seq] makes completion order
   deterministic when finish times tie. *)
type ps_job = {
  vfinish : float;
  seq : int;
  ps_amount : float;
  ps_arrived : float;  (* real arrival time, for sojourn telemetry *)
  ps_waker : unit Process.waker;
}

type t = {
  eng : Engine.t;
  name : string;
  discipline : discipline;
  (* Processor sharing: jobs in simultaneous service, ordered by finish
     virtual time, plus the fluid clock they are measured against. *)
  ps_heap : ps_job Binheap.t;
  mutable vtime : float;
  mutable ps_seq : int;
  mutable last_update : float;
  mutable completion : Engine.handle option;
  (* Fifo / round-robin: the waiting line and the server state. *)
  queue : job Queue.t;
  mutable serving : bool;
  mutable busy : float;
  (* Fifo / round-robin: when the slice in progress started ([nan] when the
     server is idle), so busy time can be pro-rated at any read instant. *)
  mutable slice_start : float;
  (* Queueing telemetry: per-job tallies recorded at completion, plus the
     time-weighted integral of the number of jobs present (L). *)
  mutable arrivals : int;
  mutable completions : int;
  wait : Stat.t;  (* sojourn minus service demand, per completed job *)
  service : Stat.t;  (* service demand per completed job *)
  mutable queue_area : float;  (* integral of jobs-present dt *)
  mutable last_area_update : float;
}

let epsilon = 1e-9

let create ?(name = "resource") eng ~discipline =
  (match discipline with
  | Round_robin quantum when quantum <= 0. ->
    invalid_arg "Resource.create: round-robin quantum must be positive"
  | Fifo | Round_robin _ | Processor_sharing -> ());
  {
    eng;
    name;
    discipline;
    ps_heap =
      Binheap.create ~cmp:(fun a b ->
          let c = Float.compare a.vfinish b.vfinish in
          if c <> 0 then c else Int.compare a.seq b.seq);
    vtime = 0.;
    ps_seq = 0;
    last_update = Engine.now eng;
    completion = None;
    queue = Queue.create ();
    serving = false;
    busy = 0.;
    slice_start = nan;
    arrivals = 0;
    completions = 0;
    wait = Stat.create ();
    service = Stat.create ();
    queue_area = 0.;
    last_area_update = Engine.now eng;
  }

(* Jobs present right now, before any lazy state advance: queued plus in
   service. Between two events this count is constant, so charging
   [raw_jobs * elapsed] at every state change keeps the queue-length
   integral exact. *)
let raw_jobs t =
  match t.discipline with
  | Processor_sharing -> Binheap.length t.ps_heap
  | Fifo | Round_robin _ -> Queue.length t.queue + if t.serving then 1 else 0

(* Charge the interval since the last update to the queue-length integral.
   Must run before the job population changes. *)
let advance_area t =
  let now = Engine.now t.eng in
  let elapsed = now -. t.last_area_update in
  if elapsed > 0. then
    t.queue_area <- t.queue_area +. (float_of_int (raw_jobs t) *. elapsed);
  t.last_area_update <- now

let note_arrival t =
  advance_area t;
  t.arrivals <- t.arrivals + 1

(* Per-job tallies, recorded once at completion. Waiting time is the sojourn
   beyond the job's own service demand — exactly the queueing delay under
   Fifo, and the slowdown from sharing the server under RR/PS. *)
let note_completion_values t ~amount ~arrived =
  advance_area t;
  t.completions <- t.completions + 1;
  let sojourn = Engine.now t.eng -. arrived in
  Stat.record t.service amount;
  Stat.record t.wait (Float.max 0. (sojourn -. amount))

let note_completion t job =
  note_completion_values t ~amount:job.amount ~arrived:job.arrived

(* --- Processor sharing ---------------------------------------------------

   All [n] active jobs progress at rate [1/n]. Rather than walking every job
   on every event (O(n) per event, O(n^2) per busy period), the fluid state
   is a single virtual clock [vtime] advancing at rate [1/n]: a job arriving
   at virtual time [V] with demand [a] finishes when [vtime] reaches
   [V + a], so the next completion is always the minimum finish virtual time
   in a heap, and every arrival/completion costs O(log n). Completion
   instants are identical to the per-job formulation up to float rounding. *)

let ps_advance t =
  let now = Engine.now t.eng in
  let elapsed = now -. t.last_update in
  let n = Binheap.length t.ps_heap in
  if elapsed > 0. && n > 0 then begin
    t.vtime <- t.vtime +. (elapsed /. float_of_int n);
    t.busy <- t.busy +. elapsed
  end;
  t.last_update <- now

let rec ps_reschedule t =
  (match t.completion with
  | Some h ->
    Engine.cancel t.eng h;
    t.completion <- None
  | None -> ());
  match Binheap.peek t.ps_heap with
  | None -> ()
  | Some next ->
    let n = float_of_int (Binheap.length t.ps_heap) in
    let delay = max 0. ((next.vfinish -. t.vtime) *. n) in
    t.completion <- Some (Engine.schedule t.eng ~delay (fun () -> ps_complete t))

and ps_complete t =
  t.completion <- None;
  ps_advance t;
  (* Pop every job whose demand is met at the advanced virtual time; ties
     complete in arrival order (heap order includes [seq]). *)
  let rec drain wakers =
    match Binheap.peek t.ps_heap with
    | Some j when j.vfinish -. t.vtime <= epsilon ->
      (* Telemetry first: the pending interval in the queue-length integral
         must be charged at the population that held during it, i.e. with
         this job still counted. *)
      note_completion_values t ~amount:j.ps_amount ~arrived:j.ps_arrived;
      ignore (Binheap.pop t.ps_heap);
      drain (j.ps_waker :: wakers)
    | Some _ | None -> List.rev wakers
  in
  let wakers = drain [] in
  List.iter (fun waker -> waker ()) wakers;
  ps_reschedule t

let ps_use t amount =
  Process.suspend (fun waker ->
      note_arrival t;
      ps_advance t;
      let job =
        {
          vfinish = t.vtime +. amount;
          seq = t.ps_seq;
          ps_amount = amount;
          ps_arrived = Engine.now t.eng;
          ps_waker = waker;
        }
      in
      t.ps_seq <- t.ps_seq + 1;
      Binheap.push t.ps_heap job;
      ps_reschedule t)

(* --- Fifo ---------------------------------------------------------------- *)

let rec fifo_start_next t =
  match Queue.take_opt t.queue with
  | None ->
    t.serving <- false;
    t.slice_start <- nan
  | Some job ->
    t.serving <- true;
    t.slice_start <- Engine.now t.eng;
    ignore
      (Engine.schedule t.eng ~delay:job.remaining (fun () ->
           t.busy <- t.busy +. (Engine.now t.eng -. t.slice_start);
           note_completion t job;
           job.waker ();
           fifo_start_next t))

let fifo_use t amount =
  Process.suspend (fun waker ->
      note_arrival t;
      Queue.add
        { remaining = amount; amount; arrived = Engine.now t.eng; waker }
        t.queue;
      if not t.serving then fifo_start_next t)

(* --- Round robin ---------------------------------------------------------

   The head job receives at most one quantum of service, then yields the
   server and re-enters the back of the line unless finished. This is the
   discipline in the paper's simulation model (1 ms slice). *)

let rec rr_serve_slice t quantum =
  match Queue.take_opt t.queue with
  | None ->
    t.serving <- false;
    t.slice_start <- nan
  | Some job ->
    t.serving <- true;
    t.slice_start <- Engine.now t.eng;
    let slice = min quantum job.remaining in
    ignore
      (Engine.schedule t.eng ~delay:slice (fun () ->
           t.busy <- t.busy +. (Engine.now t.eng -. t.slice_start);
           job.remaining <- job.remaining -. slice;
           if job.remaining <= epsilon then begin
             note_completion t job;
             job.waker ()
           end
           else Queue.add job t.queue;
           rr_serve_slice t quantum))

let rr_use t quantum amount =
  Process.suspend (fun waker ->
      note_arrival t;
      Queue.add
        { remaining = amount; amount; arrived = Engine.now t.eng; waker }
        t.queue;
      if not t.serving then rr_serve_slice t quantum)

(* --- Common --------------------------------------------------------------- *)

let use t amount =
  if not (Float.is_finite amount) || amount < 0. then
    invalid_arg "Resource.use: amount must be finite and non-negative";
  (* Zero-amount jobs still join the discipline: they must wait behind every
     job already in line, not jump the queue by returning immediately. All
     three disciplines complete a [remaining = 0.] job in its arrival-order
     turn without consuming service time. *)
  match t.discipline with
  | Processor_sharing -> ps_use t amount
  | Fifo -> fifo_use t amount
  | Round_robin quantum -> rr_use t quantum amount

let load t =
  match t.discipline with
  | Processor_sharing ->
    (* Exclude jobs whose fluid share has already finished their work but
       whose completion event has not fired yet (the completion is scheduled
       for exactly this instant), so a sampled queue length never overshoots
       the population that is still genuinely in service. *)
    let elapsed = Engine.now t.eng -. t.last_update in
    let n = Binheap.length t.ps_heap in
    if n = 0 then 0
    else begin
      let v_now = t.vtime +. (elapsed /. float_of_int n) in
      Binheap.fold t.ps_heap ~init:0 ~f:(fun acc j ->
          if j.vfinish -. v_now > epsilon then acc + 1 else acc)
    end
  | Fifo | Round_robin _ -> Queue.length t.queue + if t.serving then 1 else 0

(* Service time delivered so far, pro-rated to the current instant: elapsed
   in-service time is charged lazily at read rather than only when the
   completion (Fifo) or slice (RR) event fires, so a mid-run utilization
   sample is never stale. *)
let busy_time t =
  let now = Engine.now t.eng in
  match t.discipline with
  | Processor_sharing ->
    if Binheap.is_empty t.ps_heap then t.busy
    else t.busy +. (now -. t.last_update)
  | Fifo | Round_robin _ ->
    if t.serving then t.busy +. (now -. t.slice_start) else t.busy

(* --- Telemetry ------------------------------------------------------------- *)

let name t = t.name
let arrivals t = t.arrivals
let completions t = t.completions
let wait_stat t = t.wait
let service_stat t = t.service

let queue_area t =
  let pending = Engine.now t.eng -. t.last_area_update in
  if pending > 0. then t.queue_area +. (float_of_int (raw_jobs t) *. pending)
  else t.queue_area

let utilization t =
  let now = Engine.now t.eng in
  if now <= 0. then 0. else busy_time t /. now

let mean_queue_length t =
  let now = Engine.now t.eng in
  if now <= 0. then 0. else queue_area t /. now

let throughput t =
  let now = Engine.now t.eng in
  if now <= 0. then 0. else float_of_int t.completions /. now

let littles_law_gap t =
  if t.completions = 0 || Engine.now t.eng <= 0. then None
  else begin
    let l = mean_queue_length t in
    let lam = throughput t in
    let w = (Stat.total t.wait +. Stat.total t.service) /. float_of_int t.completions in
    let lw = lam *. w in
    let scale = Float.max l lw in
    if scale <= 0. then Some 0. else Some (Float.abs (l -. lw) /. scale)
  end
