(** Streaming sample statistics (Welford accumulation).

    One tally per measured quantity: response times by transaction class,
    queue lengths, and so on. Numerically stable for long runs. *)

type t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float

(** Unbiased sample variance; 0 for fewer than two samples. *)
val variance : t -> float

val stddev : t -> float
val min : t -> float
val max : t -> float
val clear : t -> unit

(** [merge a b] is a fresh tally equivalent to recording both sample sets. *)
val merge : t -> t -> t
