(** Streaming sample statistics (Welford accumulation).

    One tally per measured quantity: response times by transaction class,
    queue lengths, and so on. Numerically stable for long runs. *)

type t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float

(** Unbiased sample variance; 0 for fewer than two samples. *)
val variance : t -> float

val stddev : t -> float

(** Smallest / largest recorded sample; [None] while the tally is empty
    (never the [infinity] / [neg_infinity] sentinels, which would otherwise
    leak into reports from series that saw no samples). *)
val min : t -> float option

val max : t -> float option

val clear : t -> unit

(** [merge a b] is a fresh tally equivalent to recording both sample sets. *)
val merge : t -> t -> t
