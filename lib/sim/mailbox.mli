(** Unbounded FIFO message queue between processes.

    Models the reliable, order-preserving channels the paper assumes for
    update propagation ("propagated messages are not lost or reordered"). *)

type 'a t

val create : unit -> 'a t

(** [send t msg] enqueues [msg] and wakes one waiting receiver, if any.
    Never blocks; may be called from outside a process. *)
val send : 'a t -> 'a -> unit

(** [recv t] dequeues the oldest message, parking the calling process until
    one is available. Must be called from within a process. *)
val recv : 'a t -> 'a

(** [peek t] is the oldest message without removing it. *)
val peek : 'a t -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool
