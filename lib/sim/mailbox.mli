(** Unbounded FIFO message queue between processes.

    Models the reliable, order-preserving channels the paper assumes for
    update propagation ("propagated messages are not lost or reordered").

    Like {!Resource}, a mailbox keeps depth telemetry: send/receive counts
    and the peak queued depth are always maintained; supplying a [clock] at
    creation (typically [fun () -> Engine.now eng]) additionally accrues a
    time-weighted depth integral so the time-average backlog can be sampled
    at any instant. *)

type 'a t

(** [create ?clock ()] is an empty mailbox. Without [clock], the
    time-weighted telemetry ({!depth_area}, {!mean_depth}) stays 0. *)
val create : ?clock:(unit -> float) -> unit -> 'a t

(** [send t msg] enqueues [msg] and wakes one waiting receiver, if any.
    Never blocks; may be called from outside a process. *)
val send : 'a t -> 'a -> unit

(** [recv t] dequeues the oldest message, parking the calling process until
    one is available. Must be called from within a process. *)
val recv : 'a t -> 'a

(** [peek t] is the oldest message without removing it. *)
val peek : 'a t -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool

(** {2 Depth telemetry} *)

(** Messages sent so far. *)
val sends : 'a t -> int

(** Messages delivered to receivers so far (direct hand-offs to a parked
    receiver included). *)
val recvs : 'a t -> int

(** Largest queued depth observed. *)
val peak_depth : 'a t -> int

(** Time integral of the queued depth, pro-rated to the read instant;
    0 without a [clock]. *)
val depth_area : 'a t -> float

(** Time-average queued depth since creation; 0 without a [clock]. *)
val mean_depth : 'a t -> float
