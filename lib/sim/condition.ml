type waiter = { pred : unit -> bool; waker : unit Process.waker }

type t = { mutable waiters : waiter list }

let create () = { waiters = [] }

(* Re-check the predicate after waking: another process scheduled for the
   same instant may have invalidated it between signal and resumption. *)
let rec await t pred =
  if not (pred ()) then begin
    Process.suspend (fun waker -> t.waiters <- { pred; waker } :: t.waiters);
    await t pred
  end

let signal t =
  let ready, blocked = List.partition (fun w -> w.pred ()) t.waiters in
  t.waiters <- blocked;
  (* Wake in registration order so equal-time resumptions are deterministic. *)
  List.iter (fun w -> w.waker ()) (List.rev ready)

let waiting t = List.length t.waiters
