(** Predicate-style waiting for processes.

    A condition owns a set of parked processes, each with a predicate. When
    {!signal} is called, every parked process whose predicate now holds is
    resumed. This is the building block for the paper's blocking rules: a
    refresher waiting for the pending queue to drain, or a read-only
    transaction waiting until [seq(c) <= seq(DBsec)]. *)

type t

val create : unit -> t

(** [await t pred] returns immediately when [pred ()] already holds;
    otherwise parks the calling process until a [signal] finds [pred ()]
    true. Must be called from within a process. *)
val await : t -> (unit -> bool) -> unit

(** [signal t] re-evaluates the predicates of all parked processes and wakes
    those whose predicate holds. *)
val signal : t -> unit

(** Number of processes currently parked. *)
val waiting : t -> int
