type state = Pending | Fired | Cancelled

type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable state : state;
}

type handle = event

type t = {
  mutable now : float;
  mutable seq : int;
  mutable live : int;
  heap : event Binheap.t;
}

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  { now = 0.; seq = 0; live = 0; heap = Binheap.create ~cmp:compare_events }

let now t = t.now

let schedule t ~delay action =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg "Engine.schedule: delay must be finite and non-negative";
  let ev = { time = t.now +. delay; seq = t.seq; action; state = Pending } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Binheap.push t.heap ev;
  ev

let cancel t ev =
  match ev.state with
  | Pending ->
    ev.state <- Cancelled;
    t.live <- t.live - 1
  | Fired | Cancelled -> ()

let rec step t =
  if Binheap.is_empty t.heap then false
  else begin
    let ev = Binheap.pop t.heap in
    match ev.state with
    | Cancelled | Fired -> step t
    | Pending ->
      ev.state <- Fired;
      t.live <- t.live - 1;
      t.now <- ev.time;
      ev.action ();
      true
  end

let run ?until t =
  let within time =
    match until with None -> true | Some limit -> time <= limit
  in
  let rec loop () =
    match Binheap.peek t.heap with
    | None -> ()
    | Some ev when ev.state <> Pending ->
      ignore (Binheap.pop t.heap);
      loop ()
    | Some ev when within ev.time -> if step t then loop ()
    | Some _ -> ()
  in
  loop ();
  match until with
  | Some limit -> t.now <- max t.now limit
  | None -> ()

let pending t = t.live
