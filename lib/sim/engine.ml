type state = Pending | Fired | Cancelled

type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable state : state;
}

type handle = event

(* The event queue is a monomorphic binary heap inlined here rather than an
   instance of the generic {!Binheap}: comparisons compile to two float/int
   tests instead of a closure call, and popped slots are cleared so fired
   events (and the closures they capture) are collectable. At millions of
   events per run this is the hottest loop in the simulator. *)
type t = {
  mutable now : float;
  mutable seq : int;
  mutable live : int;
  mutable fired : int;
  mutable data : event array;
  mutable size : int;
}

(* Placeholder for empty heap slots; never compared or fired. *)
let dummy = { time = neg_infinity; seq = -1; action = ignore; state = Cancelled }

let create () =
  { now = 0.; seq = 0; live = 0; fired = 0; data = [||]; size = 0 }

let now t = t.now
let events_processed t = t.fired

(* [a] fires strictly before [b]: earlier time, FIFO on ties. *)
let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let sift_up t i =
  let ev = t.data.(i) in
  let i = ref i in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before ev t.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    t.data.(!i) <- t.data.(parent);
    i := parent
  done;
  t.data.(!i) <- ev

let sift_down t i =
  let ev = t.data.(i) in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
    if left >= t.size then continue := false
    else begin
      let child =
        if right < t.size && before t.data.(right) t.data.(left) then right
        else left
      in
      if before t.data.(child) ev then begin
        t.data.(!i) <- t.data.(child);
        i := child
      end
      else continue := false
    end
  done;
  t.data.(!i) <- ev

let push t ev =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let fresh = Array.make (max 64 (2 * capacity)) dummy in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end;
  t.data.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- dummy;
    sift_down t 0
  end
  else t.data.(0) <- dummy;
  top

let schedule t ~delay action =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg "Engine.schedule: delay must be finite and non-negative";
  let ev = { time = t.now +. delay; seq = t.seq; action; state = Pending } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  push t ev;
  ev

let cancel t ev =
  match ev.state with
  | Pending ->
    ev.state <- Cancelled;
    t.live <- t.live - 1
  | Fired | Cancelled -> ()

let rec step t =
  if t.size = 0 then false
  else begin
    let ev = pop t in
    match ev.state with
    | Cancelled | Fired -> step t
    | Pending ->
      ev.state <- Fired;
      t.live <- t.live - 1;
      t.now <- ev.time;
      t.fired <- t.fired + 1;
      ev.action ();
      true
  end

let run ?until t =
  let within time =
    match until with None -> true | Some limit -> time <= limit
  in
  let rec loop () =
    if t.size > 0 then begin
      let ev = t.data.(0) in
      if ev.state <> Pending then begin
        ignore (pop t);
        loop ()
      end
      else if within ev.time then begin
        if step t then loop ()
      end
    end
  in
  loop ();
  match until with
  | Some limit -> t.now <- max t.now limit
  | None -> ()

let pending t = t.live
