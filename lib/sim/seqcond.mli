(** A condition variable specialized to waiting for a monotone integer
    level to reach a per-waiter threshold.

    {!Condition} re-evaluates every waiter's predicate on every signal —
    O(waiters) per signal, which is quadratic when thousands of processes
    block per advance of the level (the session-blocking herd at bench
    scale). Here waiters are keyed by threshold in a min-heap, so each
    {!advance} pays O(log n) per waiter actually woken and nothing for the
    rest.

    The threshold is a function: it is re-evaluated after every wake-up and
    the process re-enqueues if the (possibly risen) threshold is still
    above the level — the same re-check loop as {!Condition.await}, needed
    because e.g. a pooled session's [seq(c)] can rise while one of its
    reads is already waiting. *)

type t

(** [create ()] starts with the level at [min_int] (everything waits). *)
val create : unit -> t

(** Largest value ever passed to {!advance}. *)
val level : t -> int

(** [await t ~threshold] returns once [threshold () <= level t],
    suspending the calling process until then. Must run inside a process.
    Waiters satisfied by the same {!advance} wake in threshold order,
    then registration order (deterministic). *)
val await : t -> threshold:(unit -> int) -> unit

(** [advance t v] raises the level to [v] (no-op if [v <= level t]) and
    wakes every waiter whose threshold is now reached. *)
val advance : t -> int -> unit

(** Number of blocked waiters. *)
val waiting : t -> int
