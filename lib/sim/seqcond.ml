type waiter = { threshold : int; order : int; waker : unit Process.waker }

let cmp a b =
  match compare a.threshold b.threshold with
  | 0 -> compare a.order b.order
  | c -> c

type t = {
  heap : waiter Binheap.t;
  mutable next_order : int;
  mutable level : int;
}

let create () = { heap = Binheap.create ~cmp; next_order = 0; level = min_int }
let level t = t.level

let rec await t ~threshold =
  let need = threshold () in
  if need > t.level then begin
    Process.suspend (fun waker ->
        let w = { threshold = need; order = t.next_order; waker } in
        t.next_order <- t.next_order + 1;
        Binheap.push t.heap w);
    await t ~threshold
  end

let advance t v =
  if v > t.level then begin
    t.level <- v;
    let rec drain () =
      match Binheap.peek t.heap with
      | Some w when w.threshold <= t.level ->
        ignore (Binheap.pop t.heap);
        w.waker ();
        drain ()
      | Some _ | None -> ()
    in
    drain ()
  end

let waiting t = Binheap.length t.heap
