(** Array-backed binary min-heap, ordered by a user-supplied comparison.

    Used by {!Engine} as the pending-event queue. The heap is a mutable
    structure; all operations are amortized O(log n) except [peek] which is
    O(1). *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (a total order; the
    minimum element according to [cmp] is served first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> 'a -> unit

(** [peek h] is the minimum element, or [None] when [h] is empty. *)
val peek : 'a t -> 'a option

(** [pop h] removes and returns the minimum element.
    @raise Invalid_argument when [h] is empty. *)
val pop : 'a t -> 'a

val clear : 'a t -> unit

(** [fold h ~init ~f] folds over every element in unspecified order. O(n);
    for sampling aggregate state without disturbing the heap. *)
val fold : 'a t -> init:'acc -> f:('acc -> 'a -> 'acc) -> 'acc
