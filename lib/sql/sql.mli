(** Convenience entry points: parse-and-execute SQL against the replicated
    system or a raw transaction handle.

    Read-only statements run as read-only transactions at the client's
    secondary (subject to the session guarantee); everything else is
    forwarded to the primary as an update transaction. *)

(** [exec handle sql] parses and executes one statement inside an already
    open transaction. *)
val exec : Lsr_core.Handle.t -> string -> (Executor.result, string) result

(** [run system client sql] parses [sql], routes it as a transaction of
    [client]'s session, and returns the result (or a parse/semantic/abort
    error message). *)
val run :
  Lsr_core.System.t -> Lsr_core.System.client -> string ->
  (Executor.result, string) result

(** [run_script system client sqls] executes several statements inside ONE
    transaction (the shell's BEGIN ... COMMIT): atomically, against a single
    snapshot, with intermediate results visible to later statements
    (read-your-writes). The transaction is read-only — and routed to the
    client's secondary — only when every statement is. Any parse or
    semantic error aborts the whole transaction. *)
val run_script :
  Lsr_core.System.t -> Lsr_core.System.client -> string list ->
  (Executor.result list, string) result
