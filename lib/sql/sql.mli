(** Convenience entry points: parse-and-execute SQL against the replicated
    system or a raw transaction handle.

    Read-only statements run as read-only transactions at the client's
    secondary (subject to the session guarantee); everything else is
    forwarded to the primary as an update transaction.

    Two API layers coexist. The [_typed] functions return a structured
    {!error}, so programmatic callers (the static analyzer, the executor
    harnesses) can distinguish a malformed statement from a semantic
    failure or an aborted transaction without string matching. The legacy
    string-message functions are thin wrappers kept for the shell and the
    examples. *)

(** Everything that can go wrong between a SQL string and a result:
    - [Syntax_error] — the statement did not parse; carries the offending
      input and the parser's message;
    - [Semantic_error] — it parsed but could not execute (missing [pk],
      unknown aggregate column, ...); the surrounding transaction was
      aborted, never half-committed;
    - [Write_conflict] — first-committer-wins abort on the named key;
    - [Forced_abort] — the transaction was aborted on request. *)
type error =
  | Syntax_error of { statement : string; message : string }
  | Semantic_error of string
  | Write_conflict of string
  | Forced_abort

(** Human-readable rendering of an {!error}. *)
val error_message : error -> string

(** [parse_script inputs] parses each statement, failing on the first
    malformed one (with the offending input in the error). *)
val parse_script : string list -> (Ast.statement list, error) result

(** [exec_typed handle sql] parses and executes one statement inside an
    already open transaction. *)
val exec_typed :
  Lsr_core.Handle.t -> string -> (Executor.result, error) result

(** [run_typed system client sql] parses [sql], routes it as a transaction
    of [client]'s session, and returns the result or a structured error. *)
val run_typed :
  Lsr_core.System.t -> Lsr_core.System.client -> string ->
  (Executor.result, error) result

(** [run_script_typed system client sqls] executes several statements inside
    ONE transaction (the shell's BEGIN ... COMMIT): atomically, against a
    single snapshot, with intermediate results visible to later statements
    (read-your-writes). The transaction is read-only — and routed to the
    client's secondary — only when every statement is. Any parse or
    semantic error aborts the whole transaction. *)
val run_script_typed :
  Lsr_core.System.t -> Lsr_core.System.client -> string list ->
  (Executor.result list, error) result

(** {2 Legacy string-message wrappers} *)

(** [exec handle sql] is {!exec_typed} with the error flattened to a
    message. *)
val exec : Lsr_core.Handle.t -> string -> (Executor.result, string) result

(** [run system client sql] is {!run_typed} with the error flattened. *)
val run :
  Lsr_core.System.t -> Lsr_core.System.client -> string ->
  (Executor.result, string) result

(** [run_script system client sqls] is {!run_script_typed} with the error
    flattened. *)
val run_script :
  Lsr_core.System.t -> Lsr_core.System.client -> string list ->
  (Executor.result list, string) result
