(** Abstract syntax of the SQL subset.

    Deliberately small but useful: single-table statements whose WHERE
    clauses are boolean combinations of column/literal comparisons. Every
    table has a TEXT primary-key column named [pk] (the storage layer's
    row key); INSERT must bind it. *)

type literal =
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool
  | Null  (** matches absent columns *)

type comparison =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type cond =
  | True
  | Cmp of { column : string; op : comparison; value : literal }
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type order =
  | Asc of string
  | Desc of string

type aggregate =
  | Count_all  (** COUNT over all matching rows *)
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

type projection =
  | All  (** the star projection *)
  | Columns of string list
  | Aggregates of aggregate list
      (** e.g. [SELECT COUNT, AVG(price) FROM ...] with COUNT written as
          COUNT-star in concrete syntax; aggregates and plain
          columns cannot be mixed in one projection. Without GROUP BY the
          aggregates collapse all matching rows into a single result row
          (ORDER BY / LIMIT are rejected there). With [GROUP BY col] — legal
          only for aggregate projections — one result row per distinct value
          of [col] is produced (rows lacking [col] form their own group,
          carried without the group field), the aggregate output columns
          ([count], [sum_price], ...) are legal in HAVING and ORDER BY, and
          HAVING filters the grouped result rows. *)

type statement =
  | Select of {
      projection : projection;
      table : string;
      where : cond;
      group_by : string option;
      having : cond;  (** filter over grouped result rows; [True] if absent *)
      order_by : order option;
      limit : int option;
    }
  | Insert of { table : string; row : (string * literal) list }
  | Update of { table : string; set : (string * literal) list; where : cond }
  | Delete of { table : string; where : cond }
  | Explain of statement
      (** shows the access path (index lookup vs full scan) without
          executing; nesting EXPLAIN is rejected by the parser *)

val pp_literal : Format.formatter -> literal -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp_statement : Format.formatter -> statement -> unit

(** Render back to parsable SQL (used by the parser round-trip tests). *)
val to_string : statement -> string
