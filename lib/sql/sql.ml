let exec handle input =
  match Parser.parse input with
  | Error e -> Error ("syntax error: " ^ e)
  | Ok stmt -> Executor.execute handle stmt

let parse_all inputs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | input :: rest -> (
      match Parser.parse input with
      | Error e -> Error (Printf.sprintf "syntax error in %S: %s" input e)
      | Ok stmt -> go (stmt :: acc) rest)
  in
  go [] inputs

let execute_all handle stmts =
  let rec go acc = function
    | [] -> List.rev acc
    | stmt :: rest -> (
      match Executor.execute handle stmt with
      | Ok result -> go (result :: acc) rest
      | Error msg -> failwith msg)
  in
  go [] stmts

let run_script system client inputs =
  match parse_all inputs with
  | Error e -> Error e
  | Ok stmts ->
    if List.for_all Executor.is_read_only stmts then
      match
        Lsr_core.System.read system client (fun handle ->
            execute_all handle stmts)
      with
      | results -> Ok results
      | exception Failure msg -> Error msg
    else begin
      match
        Lsr_core.System.update system client (fun handle ->
            execute_all handle stmts)
      with
      | Ok results -> Ok results
      | Error Lsr_storage.Mvcc.Forced -> Error "transaction aborted"
      | Error (Lsr_storage.Mvcc.Write_conflict key) ->
        Error (Printf.sprintf "write conflict on %s (first committer wins)" key)
      | exception Failure msg -> Error msg
    end

let run system client input =
  match Parser.parse input with
  | Error e -> Error ("syntax error: " ^ e)
  | Ok stmt ->
    if Executor.is_read_only stmt then
      Lsr_core.System.read system client (fun handle ->
          Executor.execute handle stmt)
    else begin
      (* The body may fail semantically; abort the transaction in that case
         rather than committing half a statement. *)
      match
        Lsr_core.System.update system client (fun handle ->
            match Executor.execute handle stmt with
            | Ok result -> result
            | Error msg -> failwith msg)
      with
      | Ok result -> Ok result
      | Error Lsr_storage.Mvcc.Forced -> Error "transaction aborted"
      | Error (Lsr_storage.Mvcc.Write_conflict key) ->
        Error (Printf.sprintf "write conflict on %s (first committer wins)" key)
      | exception Failure msg -> Error msg
    end
