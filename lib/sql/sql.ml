type error =
  | Syntax_error of { statement : string; message : string }
  | Semantic_error of string
  | Write_conflict of string
  | Forced_abort

let error_message = function
  | Syntax_error { statement; message } ->
    Printf.sprintf "syntax error in %S: %s" statement message
  | Semantic_error msg -> msg
  | Write_conflict key ->
    Printf.sprintf "write conflict on %s (first committer wins)" key
  | Forced_abort -> "transaction aborted"

let error_of_abort = function
  | Lsr_storage.Mvcc.Forced -> Forced_abort
  | Lsr_storage.Mvcc.Write_conflict key -> Write_conflict key

let parse_script inputs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | input :: rest -> (
      match Parser.parse input with
      | Error message -> Error (Syntax_error { statement = input; message })
      | Ok stmt -> go (stmt :: acc) rest)
  in
  go [] inputs

let exec_typed handle input =
  match Parser.parse input with
  | Error message -> Error (Syntax_error { statement = input; message })
  | Ok stmt -> (
    match Executor.execute handle stmt with
    | Ok result -> Ok result
    | Error msg -> Error (Semantic_error msg))

(* Runs inside an open transaction; a semantic failure raises so the
   surrounding [System.update]/[System.read] aborts instead of committing a
   half-executed script. *)
let execute_all handle stmts = List.map (Executor.execute_exn handle) stmts

let run_script_typed system client inputs =
  match parse_script inputs with
  | Error e -> Error e
  | Ok stmts ->
    if List.for_all Executor.is_read_only stmts then
      match
        Lsr_core.System.read system client (fun handle ->
            execute_all handle stmts)
      with
      | results -> Ok results
      | exception Executor.Semantic_error msg -> Error (Semantic_error msg)
    else begin
      match
        Lsr_core.System.update system client (fun handle ->
            execute_all handle stmts)
      with
      | Ok results -> Ok results
      | Error reason -> Error (error_of_abort reason)
      | exception Executor.Semantic_error msg -> Error (Semantic_error msg)
    end

let run_typed system client input =
  match Parser.parse input with
  | Error message -> Error (Syntax_error { statement = input; message })
  | Ok stmt ->
    if Executor.is_read_only stmt then
      match
        Lsr_core.System.read system client (fun handle ->
            Executor.execute handle stmt)
      with
      | Ok result -> Ok result
      | Error msg -> Error (Semantic_error msg)
    else begin
      match
        Lsr_core.System.update system client (fun handle ->
            Executor.execute_exn handle stmt)
      with
      | Ok result -> Ok result
      | Error reason -> Error (error_of_abort reason)
      | exception Executor.Semantic_error msg -> Error (Semantic_error msg)
    end

(* Legacy string-message wrappers. The single-statement entry points write
   the syntax message without quoting the input (it is the only statement
   there is); the script one names the offending statement. *)

let short_message = function
  | Syntax_error { message; _ } -> "syntax error: " ^ message
  | e -> error_message e

let exec handle input = Result.map_error short_message (exec_typed handle input)
let run system client input = Result.map_error short_message (run_typed system client input)

let run_script system client inputs =
  Result.map_error error_message (run_script_typed system client inputs)
