(** Executes parsed statements against a transaction {!Lsr_core.Handle}.

    Because execution goes through the handle, SQL statements run inside
    replicated transactions: route read-only statements through
    [System.read] and updates through [System.update] and they inherit the
    session guarantee, history recording and index maintenance for free.

    Semantics notes:
    - every table's primary key is the column [pk] (TEXT or INT); INSERT
      must bind it, and inserting an existing [pk] replaces the row;
    - a comparison on a column the row lacks is false, except
      [col = NULL] (true when absent) and [col <> NULL] (true when present);
    - [value = NULL] in INSERT/SET omits/removes the column;
    - equality conjuncts on indexed columns are answered through the
      secondary index instead of a scan. *)

open Lsr_storage

type result =
  | Rows of { columns : string list option; rows : (string * Row.t) list }
      (** matching rows with their primary keys, projected when [columns]
          is [Some _]; sorted per ORDER BY (primary key by default) *)
  | Affected of int  (** rows inserted / updated / deleted *)
  | Plan of string list  (** EXPLAIN output, one step per line *)

(** Raised by {!execute_exn} (and used by {!Sql} to abort a surrounding
    transaction) for semantic problems: missing [pk], type-confused ORDER BY
    column, ... Carries the human-readable description. *)
exception Semantic_error of string

(** [execute handle stmt] runs one statement inside the handle's
    transaction. Returns [Error] for semantic problems (missing [pk],
    type-confused ORDER BY column, ...). *)
val execute :
  Lsr_core.Handle.t -> Ast.statement -> (result, string) Stdlib.result

(** [execute_exn] is {!execute}, but raising {!Semantic_error} instead of
    returning [Error] — the form used to abort a multi-statement
    transaction from inside its body. *)
val execute_exn : Lsr_core.Handle.t -> Ast.statement -> result

(** True for statements that can run in a read-only transaction. *)
val is_read_only : Ast.statement -> bool

(** Render a result as an aligned text table / affected-count line. *)
val render : result -> string
