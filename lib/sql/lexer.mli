(** Hand-rolled SQL tokenizer.

    Keywords are case-insensitive; identifiers keep their case; strings are
    single-quoted with [''] escaping doubled quotes. *)

type token =
  | Ident of string  (** identifier or keyword, normalized to uppercase when
                         matched as a keyword by the parser *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Symbol of string  (** one of ( ) , * = <> < <= > >= ; *)
  | Eof

val pp_token : Format.formatter -> token -> unit

(** [tokenize input] is the token list (terminated by [Eof]), or a message
    pointing at the offending character. *)
val tokenize : string -> (token list, string) result
