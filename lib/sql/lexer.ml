type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Symbol of string
  | Eof

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Int_lit i -> Format.fprintf ppf "integer %d" i
  | Float_lit f -> Format.fprintf ppf "float %F" f
  | String_lit s -> Format.fprintf ppf "string %S" s
  | Symbol s -> Format.fprintf ppf "%S" s
  | Eof -> Format.pp_print_string ppf "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let rec scan pos acc =
    if pos >= n then Ok (List.rev (Eof :: acc))
    else
      match input.[pos] with
      | ' ' | '\t' | '\n' | '\r' -> scan (pos + 1) acc
      | '(' | ')' | ',' | '*' | '=' | ';' ->
        scan (pos + 1) (Symbol (String.make 1 input.[pos]) :: acc)
      | '<' ->
        if pos + 1 < n && input.[pos + 1] = '>' then
          scan (pos + 2) (Symbol "<>" :: acc)
        else if pos + 1 < n && input.[pos + 1] = '=' then
          scan (pos + 2) (Symbol "<=" :: acc)
        else scan (pos + 1) (Symbol "<" :: acc)
      | '>' ->
        if pos + 1 < n && input.[pos + 1] = '=' then
          scan (pos + 2) (Symbol ">=" :: acc)
        else scan (pos + 1) (Symbol ">" :: acc)
      | '!' when pos + 1 < n && input.[pos + 1] = '=' ->
        scan (pos + 2) (Symbol "<>" :: acc)
      | '\'' -> scan_string (pos + 1) (Buffer.create 16) acc
      | '-' when pos + 1 < n && is_digit input.[pos + 1] ->
        scan_number pos (pos + 1) acc
      | c when is_digit c -> scan_number pos pos acc
      | c when is_ident_start c -> scan_ident pos pos acc
      | c -> Error (Printf.sprintf "unexpected character %C at offset %d" c pos)
  and scan_string pos buf acc =
    if pos >= n then Error "unterminated string literal"
    else if input.[pos] = '\'' then
      if pos + 1 < n && input.[pos + 1] = '\'' then begin
        Buffer.add_char buf '\'';
        scan_string (pos + 2) buf acc
      end
      else scan (pos + 1) (String_lit (Buffer.contents buf) :: acc)
    else begin
      Buffer.add_char buf input.[pos];
      scan_string (pos + 1) buf acc
    end
  and scan_number start pos acc =
    let rec digits pos =
      if pos < n && is_digit input.[pos] then digits (pos + 1) else pos
    in
    let int_end = digits pos in
    (* Fraction: '.' followed by optional digits ("100." is a float). *)
    let frac_end =
      if int_end < n && input.[int_end] = '.' then digits (int_end + 1)
      else int_end
    in
    (* Exponent: e/E [+-] digits. *)
    let exp_end =
      if
        frac_end < n
        && (input.[frac_end] = 'e' || input.[frac_end] = 'E')
        &&
        let p =
          if frac_end + 1 < n && (input.[frac_end + 1] = '+' || input.[frac_end + 1] = '-')
          then frac_end + 2
          else frac_end + 1
        in
        p < n && is_digit input.[p]
      then begin
        let p =
          if input.[frac_end + 1] = '+' || input.[frac_end + 1] = '-' then
            frac_end + 2
          else frac_end + 1
        in
        digits p
      end
      else frac_end
    in
    if exp_end > int_end then begin
      let text = String.sub input start (exp_end - start) in
      match float_of_string_opt text with
      | Some f -> scan exp_end (Float_lit f :: acc)
      | None -> Error (Printf.sprintf "bad number %S" text)
    end
    else begin
      let text = String.sub input start (int_end - start) in
      match int_of_string_opt text with
      | Some i -> scan int_end (Int_lit i :: acc)
      | None -> Error (Printf.sprintf "bad number %S" text)
    end
  and scan_ident start pos acc =
    if pos < n && is_ident_char input.[pos] then scan_ident start (pos + 1) acc
    else scan pos (Ident (String.sub input start (pos - start)) :: acc)
  in
  scan 0 []
