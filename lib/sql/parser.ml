open Ast

exception Syntax_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt

(* A mutable cursor over the token list. *)
type cursor = { mutable tokens : Lexer.token list }

let peek cur = match cur.tokens with [] -> Lexer.Eof | t :: _ -> t

let advance cur =
  match cur.tokens with [] -> () | _ :: rest -> cur.tokens <- rest

let next cur =
  let t = peek cur in
  advance cur;
  t

(* Keyword matching: identifiers compared case-insensitively. *)
let is_keyword kw = function
  | Lexer.Ident s -> String.uppercase_ascii s = kw
  | _ -> false

let expect_keyword cur kw =
  let t = next cur in
  if not (is_keyword kw t) then
    fail "expected %s but found %s" kw (Format.asprintf "%a" Lexer.pp_token t)

let expect_symbol cur sym =
  match next cur with
  | Lexer.Symbol s when s = sym -> ()
  | t -> fail "expected %S but found %s" sym (Format.asprintf "%a" Lexer.pp_token t)

let reserved =
  [ "SELECT"; "FROM"; "WHERE"; "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET";
    "DELETE"; "AND"; "OR"; "NOT"; "TRUE"; "FALSE"; "NULL"; "ORDER"; "BY";
    "ASC"; "DESC"; "LIMIT"; "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "EXPLAIN";
    "GROUP"; "HAVING" ]

let ident cur =
  match next cur with
  | Lexer.Ident s when not (List.mem (String.uppercase_ascii s) reserved) -> s
  | t -> fail "expected an identifier but found %s" (Format.asprintf "%a" Lexer.pp_token t)

let literal cur =
  match next cur with
  | Lexer.Int_lit i -> Int i
  | Lexer.Float_lit f -> Float f
  | Lexer.String_lit s -> Text s
  | Lexer.Ident s as t -> (
    match String.uppercase_ascii s with
    | "TRUE" -> Bool true
    | "FALSE" -> Bool false
    | "NULL" -> Null
    | _ -> fail "expected a literal but found %s" (Format.asprintf "%a" Lexer.pp_token t))
  | t -> fail "expected a literal but found %s" (Format.asprintf "%a" Lexer.pp_token t)

let comparison cur =
  match next cur with
  | Lexer.Symbol "=" -> Eq
  | Lexer.Symbol "<>" -> Ne
  | Lexer.Symbol "<" -> Lt
  | Lexer.Symbol "<=" -> Le
  | Lexer.Symbol ">" -> Gt
  | Lexer.Symbol ">=" -> Ge
  | t -> fail "expected a comparison operator but found %s" (Format.asprintf "%a" Lexer.pp_token t)

(* Aggregate output columns ("count", "sum_x") are legal column names in
   conditions and ORDER BY even though they collide with reserved function
   keywords. *)
let column_ident cur =
  match peek cur with
  | Lexer.Ident s
    when List.mem (String.uppercase_ascii s)
           [ "COUNT"; "SUM"; "AVG"; "MIN"; "MAX" ] ->
    advance cur;
    s
  | _ -> ident cur

let rec cond cur =
  let left = conjunction cur in
  if is_keyword "OR" (peek cur) then begin
    advance cur;
    Or (left, cond cur)
  end
  else left

and conjunction cur =
  let left = atom cur in
  if is_keyword "AND" (peek cur) then begin
    advance cur;
    And (left, conjunction cur)
  end
  else left

and atom cur =
  match peek cur with
  | t when is_keyword "NOT" t ->
    advance cur;
    Not (atom cur)
  | t when is_keyword "TRUE" t ->
    advance cur;
    True
  | Lexer.Symbol "(" ->
    advance cur;
    let inner = cond cur in
    expect_symbol cur ")";
    inner
  | _ ->
    let column = column_ident cur in
    let op = comparison cur in
    let value = literal cur in
    Cmp { column; op; value }

let where_clause cur =
  if is_keyword "WHERE" (peek cur) then begin
    advance cur;
    cond cur
  end
  else True

let comma_separated cur parse_item =
  let rec more acc =
    if peek cur = Lexer.Symbol "," then begin
      advance cur;
      more (parse_item cur :: acc)
    end
    else List.rev acc
  in
  more [ parse_item cur ]

let aggregate_keyword = function
  | Lexer.Ident s -> (
    match String.uppercase_ascii s with
    | ("COUNT" | "SUM" | "AVG" | "MIN" | "MAX") as kw -> Some kw
    | _ -> None)
  | _ -> None

let aggregate cur =
  let t = peek cur in
  match aggregate_keyword t with
  | None ->
    fail "expected an aggregate function (COUNT, SUM, AVG, MIN or MAX) but found %s"
      (Format.asprintf "%a" Lexer.pp_token t)
  | Some "COUNT" ->
    advance cur;
    expect_symbol cur "(";
    expect_symbol cur "*";
    expect_symbol cur ")";
    Count_all
  | Some kw ->
    advance cur;
    expect_symbol cur "(";
    let column = ident cur in
    expect_symbol cur ")";
    (match kw with
    | "SUM" -> Sum column
    | "AVG" -> Avg column
    | "MIN" -> Min column
    | "MAX" -> Max column
    | other ->
      (* [aggregate_keyword] only produces the five names matched above; a
         new aggregate added there without a constructor here is a parse
         error, not a crash. *)
      fail "unsupported aggregate function %s" other)

let select cur =
  let projection =
    if peek cur = Lexer.Symbol "*" then begin
      advance cur;
      All
    end
    else if aggregate_keyword (peek cur) <> None then
      Aggregates (comma_separated cur aggregate)
    else Columns (comma_separated cur ident)
  in
  expect_keyword cur "FROM";
  let table = ident cur in
  let where = where_clause cur in
  let group_by =
    if is_keyword "GROUP" (peek cur) then begin
      advance cur;
      expect_keyword cur "BY";
      (match projection with
      | Aggregates _ -> ()
      | All | Columns _ -> fail "GROUP BY requires an aggregate projection");
      Some (ident cur)
    end
    else None
  in
  let having =
    if is_keyword "HAVING" (peek cur) then begin
      advance cur;
      if group_by = None then fail "HAVING requires GROUP BY";
      cond cur
    end
    else True
  in
  let order_by =
    if is_keyword "ORDER" (peek cur) then begin
      advance cur;
      expect_keyword cur "BY";
      let column = column_ident cur in
      if is_keyword "DESC" (peek cur) then begin
        advance cur;
        Some (Desc column)
      end
      else begin
        if is_keyword "ASC" (peek cur) then advance cur;
        Some (Asc column)
      end
    end
    else None
  in
  let limit =
    if is_keyword "LIMIT" (peek cur) then begin
      advance cur;
      match next cur with
      | Lexer.Int_lit n when n >= 0 -> Some n
      | t -> fail "expected a limit count but found %s" (Format.asprintf "%a" Lexer.pp_token t)
    end
    else None
  in
  Select { projection; table; where; group_by; having; order_by; limit }

let insert cur =
  expect_keyword cur "INTO";
  let table = ident cur in
  expect_symbol cur "(";
  let columns = comma_separated cur ident in
  expect_symbol cur ")";
  expect_keyword cur "VALUES";
  expect_symbol cur "(";
  let values = comma_separated cur literal in
  expect_symbol cur ")";
  if List.length columns <> List.length values then
    fail "INSERT: %d columns but %d values" (List.length columns)
      (List.length values);
  Insert { table; row = List.combine columns values }

let update cur =
  let table = ident cur in
  expect_keyword cur "SET";
  let assignment cur =
    let column = ident cur in
    expect_symbol cur "=";
    let value = literal cur in
    (column, value)
  in
  let set = comma_separated cur assignment in
  let where = where_clause cur in
  Update { table; set; where }

let delete cur =
  expect_keyword cur "FROM";
  let table = ident cur in
  let where = where_clause cur in
  Delete { table; where }

let statement cur =
  let rec go ~explain_seen =
    match next cur with
    | t when is_keyword "SELECT" t -> select cur
    | t when is_keyword "INSERT" t -> insert cur
    | t when is_keyword "UPDATE" t -> update cur
    | t when is_keyword "DELETE" t -> delete cur
    | t when is_keyword "EXPLAIN" t ->
      if explain_seen then fail "EXPLAIN cannot be nested"
      else Explain (go ~explain_seen:true)
    | t ->
      fail "expected SELECT, INSERT, UPDATE, DELETE or EXPLAIN but found %s"
        (Format.asprintf "%a" Lexer.pp_token t)
  in
  go ~explain_seen:false

let parse input =
  match Lexer.tokenize input with
  | Error e -> Error e
  | Ok tokens -> (
    let cur = { tokens } in
    match statement cur with
    | stmt -> (
      (* Allow one trailing semicolon, then require end of input. *)
      if peek cur = Lexer.Symbol ";" then advance cur;
      match peek cur with
      | Lexer.Eof -> Ok stmt
      | t -> Error (Format.asprintf "trailing input: %a" Lexer.pp_token t))
    | exception Syntax_error msg -> Error msg)
