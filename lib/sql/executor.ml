open Lsr_storage
open Ast

type result =
  | Rows of { columns : string list option; rows : (string * Row.t) list }
  | Affected of int
  | Plan of string list

exception Semantic_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Semantic_error s)) fmt

let scalar_of_literal = function
  | Int i -> Some (Row.Int i)
  | Float f -> Some (Row.Float f)
  | Text s -> Some (Row.Text s)
  | Bool b -> Some (Row.Bool b)
  | Null -> None

(* Comparison between a stored scalar and a literal: numerics compare across
   Int/Float; otherwise types must match. [None] = incomparable. *)
let compare_scalar_literal scalar literal =
  match (scalar, literal) with
  | Row.Int a, Int b -> Some (compare a b)
  | Row.Int a, Float b -> Some (Float.compare (float_of_int a) b)
  | Row.Float a, Int b -> Some (Float.compare a (float_of_int b))
  | Row.Float a, Float b -> Some (Float.compare a b)
  | Row.Text a, Text b -> Some (String.compare a b)
  | Row.Bool a, Bool b -> Some (Bool.compare a b)
  | (Row.Int _ | Row.Float _ | Row.Text _ | Row.Bool _), _ -> None

let eval_cmp row ~column ~op ~value =
  match (Row.find row column, value) with
  | None, Null -> op = Eq
  | Some _, Null -> op = Ne
  | None, _ -> false
  | Some scalar, literal -> (
    match compare_scalar_literal scalar literal with
    | None -> false
    | Some c -> (
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0))

let rec eval_cond row = function
  | True -> true
  | Cmp { column; op; value } -> eval_cmp row ~column ~op ~value
  | And (a, b) -> eval_cond row a && eval_cond row b
  | Or (a, b) -> eval_cond row a || eval_cond row b
  | Not a -> not (eval_cond row a)

(* Equality conjuncts available at the top level of the condition (the AND
   spine): candidates for index lookups. *)
let rec equality_conjuncts = function
  | Cmp { column; op = Eq; value } -> (
    match scalar_of_literal value with
    | Some scalar -> [ (column, scalar) ]
    | None -> [])
  | And (a, b) -> equality_conjuncts a @ equality_conjuncts b
  | True | Cmp _ | Or _ | Not _ -> []

(* The access path for [where]: an index lookup when a top-level equality
   conjunct hits an indexed column, otherwise a full scan. *)
let access_path handle ~table ~where =
  let indexed = Lsr_core.Handle.indexed_fields handle ~table in
  List.find_opt
    (fun (column, _) -> List.mem column indexed)
    (equality_conjuncts where)

(* Inequality conjuncts on the AND spine: per-column one-sided bounds,
   [(scalar, inclusive)], candidates for an index range seek. *)
let rec range_conjuncts = function
  | Cmp { column; op; value } -> (
    match (scalar_of_literal value, op) with
    | Some scalar, Lt -> [ (column, `Hi (scalar, false)) ]
    | Some scalar, Le -> [ (column, `Hi (scalar, true)) ]
    | Some scalar, Gt -> [ (column, `Lo (scalar, false)) ]
    | Some scalar, Ge -> [ (column, `Lo (scalar, true)) ]
    | Some _, (Eq | Ne) | None, _ -> [])
  | And (a, b) -> range_conjuncts a @ range_conjuncts b
  | True | Or _ | Not _ -> []

(* Tightest interval implied by one column's bounds. [None] when two bounds
   on the same side are incomparable (no single stored value can satisfy
   both, so the range path is not applicable). *)
let merge_bounds bounds =
  let tighter ~side current (v, incl) =
    match current with
    | None -> Some (Some (v, incl))
    | Some (v0, incl0) -> (
      match Row.scalar_compare v v0 with
      | None -> None
      | Some c ->
        let c = match side with `Lo -> c | `Hi -> -c in
        if c > 0 || (c = 0 && incl0 && not incl) then Some (Some (v, incl))
        else Some current)
  in
  List.fold_left
    (fun acc bound ->
      match acc with
      | None -> None
      | Some (lo, hi) -> (
        match bound with
        | `Lo b -> Option.map (fun lo -> (lo, hi)) (tighter ~side:`Lo lo b)
        | `Hi b -> Option.map (fun hi -> (lo, hi)) (tighter ~side:`Hi hi b)))
    (Some (None, None)) bounds

(* A range access path: the first indexed column with a usable interval from
   the AND spine. Only consulted when no equality path exists. *)
let range_path handle ~table ~where =
  let indexed = Lsr_core.Handle.indexed_fields handle ~table in
  let bounds = range_conjuncts where in
  let columns =
    List.fold_left
      (fun acc (c, _) -> if List.mem c acc then acc else acc @ [ c ])
      [] bounds
  in
  List.find_map
    (fun column ->
      if not (List.mem column indexed) then None
      else
        let own =
          List.filter_map
            (fun (c, b) -> if c = column then Some b else None)
            bounds
        in
        match merge_bounds own with
        | Some ((Some _, _) | (_, Some _)) as interval ->
          Option.map (fun iv -> (column, iv)) interval
        | Some (None, None) | None -> None)
    columns

(* A top-level pk-equality conjunct (on the AND spine; disjunctions are
   opaque) pins the single candidate row. Matches the exact-key class of the
   static analyzer, whose symbolic read sets must over-approximate the rows
   recorded here: a point statement may read only its own key. *)
let rec pk_conjunct = function
  | Cmp { column = "pk"; op = Eq; value } -> (
    match value with
    | Text s -> Some s
    | Int i -> Some (string_of_int i)
    | Float _ | Bool _ | Null -> None)
  | And (a, b) -> (
    match pk_conjunct a with Some _ as r -> r | None -> pk_conjunct b)
  | True | Cmp _ | Or _ | Not _ -> None

(* Rows matching [where]: a point lookup when the condition pins the pk, an
   index lookup when a top-level equality conjunct hits an indexed column,
   an index range seek when an inequality conjunct does, otherwise a full
   scan (which reads — and records — every row). *)
let matching handle ~table ~where =
  match pk_conjunct where with
  | Some pk -> (
    match Lsr_core.Handle.row_get handle ~table ~pk with
    | Some row when eval_cond row where -> [ (pk, row) ]
    | Some _ | None -> [])
  | None ->
    let candidates =
      match access_path handle ~table ~where with
      | Some (field, value) ->
        Lsr_core.Handle.row_lookup handle ~table ~field ~value
      | None -> (
        match range_path handle ~table ~where with
        | Some (field, (lo, hi)) ->
          Lsr_core.Handle.row_range handle ~table ~field ~lo ~hi
        | None -> Lsr_core.Handle.row_scan handle ~table ~where:(fun _ -> true))
    in
    List.filter (fun (_, row) -> eval_cond row where) candidates

let pk_of_row row =
  match List.assoc_opt "pk" row with
  | Some (Text s) -> s
  | Some (Int i) -> string_of_int i
  | Some (Float _ | Bool _ | Null) -> fail "pk must be TEXT or INT"
  | None -> fail "INSERT must bind the pk column"

let row_of_assignments assignments =
  List.filter_map
    (fun (column, literal) ->
      match scalar_of_literal literal with
      | Some scalar -> Some (column, scalar)
      | None -> None)
    assignments

let apply_set row set =
  List.fold_left
    (fun row (column, literal) ->
      match scalar_of_literal literal with
      | Some scalar -> Row.set row column scalar
      | None -> List.remove_assoc column row)
    row set

let order_rows order_by rows =
  match order_by with
  | None -> rows
  | Some order ->
    let column, flip =
      match order with Asc c -> (c, 1) | Desc c -> (c, -1)
    in
    let compare_rows (pk_a, a) (pk_b, b) =
      let c =
        match (Row.find a column, Row.find b column) with
        | None, None -> 0
        | None, Some _ -> -1
        | Some _, None -> 1
        | Some x, Some y -> compare x y
      in
      let c = if c = 0 then String.compare pk_a pk_b else c in
      flip * c
    in
    List.stable_sort compare_rows rows

let truncate limit rows =
  match limit with
  | None -> rows
  | Some n -> List.filteri (fun i _ -> i < n) rows

let project projection rows =
  match projection with
  | All | Aggregates _ -> rows
  | Columns cs ->
    List.map
      (fun (pk, row) ->
        ( pk,
          List.filter_map
            (fun c -> Option.map (fun v -> (c, v)) (Row.find row c))
            cs ))
      rows

(* --- Aggregates -------------------------------------------------------------- *)

let numeric = function
  | Row.Int i -> Some (float_of_int i)
  | Row.Float f -> Some f
  | Row.Text _ | Row.Bool _ -> None

let aggregate_name = function
  | Count_all -> "count"
  | Sum c -> "sum_" ^ c
  | Avg c -> "avg_" ^ c
  | Min c -> "min_" ^ c
  | Max c -> "max_" ^ c

(* [None] when the aggregate is undefined (no qualifying values), mirroring
   SQL's NULL result for empty SUM/AVG/MIN/MAX. *)
let eval_aggregate rows agg =
  let column_values c =
    List.filter_map (fun (_, row) -> Row.find row c) rows
  in
  match agg with
  | Count_all -> Some (Row.Int (List.length rows))
  | Sum c -> (
    match List.filter_map numeric (column_values c) with
    | [] -> None
    | vs -> Some (Row.Float (List.fold_left ( +. ) 0. vs)))
  | Avg c -> (
    match List.filter_map numeric (column_values c) with
    | [] -> None
    | vs ->
      Some (Row.Float (List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs))))
  | Min c -> (
    match column_values c with
    | [] -> None
    | v :: vs -> Some (List.fold_left min v vs))
  | Max c -> (
    match column_values c with
    | [] -> None
    | v :: vs -> Some (List.fold_left max v vs))

let describe_interval field (lo, hi) =
  let v v = Format.asprintf "%a" Row.pp_scalar v in
  match (lo, hi) with
  | Some (l, li), Some (h, hi_incl) ->
    Printf.sprintf "%s %s %s %s %s" (v l)
      (if li then "<=" else "<")
      field
      (if hi_incl then "<=" else "<")
      (v h)
  | Some (l, li), None -> Printf.sprintf "%s %s %s" field (if li then ">=" else ">") (v l)
  | None, Some (h, hi_incl) ->
    Printf.sprintf "%s %s %s" field (if hi_incl then "<=" else "<") (v h)
  | None, None -> field

let describe_access handle ~table ~where =
  match pk_conjunct where with
  | Some pk -> Printf.sprintf "access: point lookup %s[%s]" table pk
  | None -> (
    match access_path handle ~table ~where with
    | Some (field, value) ->
      Printf.sprintf "access: index lookup %s.%s = %s" table field
        (Format.asprintf "%a" Row.pp_scalar value)
    | None -> (
      match range_path handle ~table ~where with
      | Some (field, interval) ->
        Printf.sprintf "access: index range scan %s.%s (%s)" table field
          (describe_interval field interval)
      | None -> Printf.sprintf "access: full scan of %s" table))

let describe_filter where =
  match where with
  | True -> []
  | _ -> [ Format.asprintf "filter: %a" pp_cond where ]

let rec explain handle = function
  | Explain inner -> explain handle inner
  | Select { projection; table; where; group_by; having; order_by; limit } ->
    [
      (match projection with
      | All -> "select *"
      | Columns cs -> "select " ^ String.concat ", " cs
      | Aggregates aggs ->
        "aggregate " ^ String.concat ", " (List.map aggregate_name aggs));
      describe_access handle ~table ~where;
    ]
    @ describe_filter where
    @ (match group_by with Some c -> [ "group by " ^ c ] | None -> [])
    @ (match having with
      | True -> []
      | cond -> [ Format.asprintf "having: %a" pp_cond cond ])
    @ (match order_by with
      | Some (Asc c) -> [ "order by " ^ c ^ " asc" ]
      | Some (Desc c) -> [ "order by " ^ c ^ " desc" ]
      | None -> [])
    @ (match limit with Some n -> [ Printf.sprintf "limit %d" n ] | None -> [])
  | Insert { table; row } ->
    [ Printf.sprintf "point write %s[%s]" table
        (match List.assoc_opt "pk" row with
        | Some lit -> Format.asprintf "%a" pp_literal lit
        | None -> "?") ]
  | Update { table; where; set } ->
    [
      Printf.sprintf "update %s (%d assignments)" table (List.length set);
      describe_access handle ~table ~where;
    ]
    @ describe_filter where
  | Delete { table; where } ->
    [ Printf.sprintf "delete from %s" table; describe_access handle ~table ~where ]
    @ describe_filter where

let execute_exn handle = function
  | Explain inner -> Plan (explain handle inner)
  | Select
      { projection = Aggregates aggs; table; where; group_by = None;
        having = _; order_by; limit } ->
    if order_by <> None || limit <> None then
      fail "ORDER BY / LIMIT do not apply to ungrouped aggregate queries";
    let rows = matching handle ~table ~where in
    let names = List.map aggregate_name aggs in
    let row =
      List.filter_map
        (fun agg ->
          Option.map (fun v -> (aggregate_name agg, v)) (eval_aggregate rows agg))
        aggs
    in
    Rows { columns = Some names; rows = [ ("", row) ] }
  | Select
      { projection = Aggregates aggs; table; where; group_by = Some group;
        having; order_by; limit } ->
    let rows = matching handle ~table ~where in
    (* Partition by the group column's value; rows lacking it form their own
       NULL group (carried without the group field). *)
    let buckets : (string, Row.scalar option * (string * Row.t) list) Hashtbl.t =
      Hashtbl.create 16
    in
    List.iter
      (fun (pk, row) ->
        let value = Row.find row group in
        let key =
          match value with Some v -> Row.scalar_key v | None -> "\x00null"
        in
        let _, members =
          Option.value ~default:(value, []) (Hashtbl.find_opt buckets key)
        in
        Hashtbl.replace buckets key (value, (pk, row) :: members))
      rows;
    let result_rows =
      Hashtbl.fold
        (fun key (value, members) acc ->
          let aggregated =
            List.filter_map
              (fun agg ->
                Option.map
                  (fun v -> (aggregate_name agg, v))
                  (eval_aggregate members agg))
              aggs
          in
          let row =
            match value with
            | Some v -> (group, v) :: aggregated
            | None -> aggregated
          in
          (key, row) :: acc)
        buckets []
      |> List.filter (fun (_, row) -> eval_cond row having)
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> order_rows order_by
      |> truncate limit
    in
    Rows
      { columns = Some (group :: List.map aggregate_name aggs); rows = result_rows }
  | Select { projection; table; where; group_by = _; having = _; order_by; limit }
    ->
    let rows =
      matching handle ~table ~where
      |> order_rows order_by
      |> truncate limit
      |> project projection
    in
    let columns =
      match projection with
      | Columns cs -> Some cs
      | All | Aggregates _ -> None
    in
    Rows { columns; rows }
  | Insert { table; row } ->
    let pk = pk_of_row row in
    Lsr_core.Handle.row_put handle ~table ~pk (row_of_assignments row);
    Affected 1
  | Update { table; set; where } ->
    let targets = matching handle ~table ~where in
    List.iter
      (fun (pk, row) ->
        Lsr_core.Handle.row_put handle ~table ~pk (apply_set row set))
      targets;
    Affected (List.length targets)
  | Delete { table; where } ->
    let targets = matching handle ~table ~where in
    List.iter (fun (pk, _) -> Lsr_core.Handle.row_del handle ~table ~pk) targets;
    Affected (List.length targets)

let execute handle stmt =
  match execute_exn handle stmt with
  | result -> Ok result
  | exception Semantic_error msg -> Error msg

let is_read_only = function
  | Select _ | Explain _ -> true (* EXPLAIN never executes its statement *)
  | Insert _ | Update _ | Delete _ -> false

(* Minimal aligned text table (lsr_sql stays independent of lsr_stats). *)
let render_table header body =
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let columns = List.length header in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (cell row i)))
      (String.length (List.nth header i))
      body
  in
  let widths = List.init columns width in
  let line row =
    String.concat " | "
      (List.mapi
         (fun i w ->
           let c = cell row i in
           c ^ String.make (max 0 (w - String.length c)) ' ')
         widths)
  in
  let rule = String.concat "-+-" (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line header :: rule :: List.map line body)

let render = function
  | Affected n -> Printf.sprintf "%d row%s affected" n (if n = 1 then "" else "s")
  | Plan steps -> String.concat "\n" (List.map (fun s -> "  " ^ s) steps)
  | Rows { columns; rows } ->
    let header =
      match columns with
      | Some cs -> cs
      | None ->
        (* Union of observed column names, pk first. *)
        let seen = Hashtbl.create 8 in
        let ordered = ref [] in
        List.iter
          (fun (_, row) ->
            List.iter
              (fun (c, _) ->
                if not (Hashtbl.mem seen c) then begin
                  Hashtbl.add seen c ();
                  ordered := c :: !ordered
                end)
              row)
          rows;
        "pk" :: List.filter (fun c -> c <> "pk") (List.rev !ordered)
    in
    let cell row c =
      match List.assoc_opt c row with
      | Some v -> Format.asprintf "%a" Row.pp_scalar v
      | None -> ""
    in
    let body =
      List.map
        (fun (pk, row) ->
          List.map
            (fun c -> if c = "pk" && List.assoc_opt "pk" row = None then pk else cell row c)
            header)
        rows
    in
    let count_line =
      Printf.sprintf "(%d row%s)" (List.length rows)
        (if List.length rows = 1 then "" else "s")
    in
    render_table header body ^ "\n" ^ count_line
