type literal =
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool
  | Null

type comparison =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type cond =
  | True
  | Cmp of { column : string; op : comparison; value : literal }
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type order =
  | Asc of string
  | Desc of string

type aggregate =
  | Count_all
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

type projection =
  | All
  | Columns of string list
  | Aggregates of aggregate list

type statement =
  | Select of {
      projection : projection;
      table : string;
      where : cond;
      group_by : string option;
      having : cond;  (* filter over grouped rows; True when absent *)
      order_by : order option;
      limit : int option;
    }
  | Insert of { table : string; row : (string * literal) list }
  | Update of { table : string; set : (string * literal) list; where : cond }
  | Delete of { table : string; where : cond }
  | Explain of statement

let escape_text s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Lossless float rendering that always lexes back as a float: %.17g
   round-trips the value; append ".0" when it printed like an integer. *)
let float_text f =
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s then s
  else s ^ ".0"

let pp_literal ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.pp_print_string ppf (float_text f)
  | Text s -> Format.fprintf ppf "'%s'" (escape_text s)
  | Bool true -> Format.pp_print_string ppf "TRUE"
  | Bool false -> Format.pp_print_string ppf "FALSE"
  | Null -> Format.pp_print_string ppf "NULL"

let comparison_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Precedence: OR < AND < NOT < comparison. Parenthesize when a child binds
   looser than its context requires. *)
let rec pp_cond_prec prec ppf cond =
  let level = function
    | Or _ -> 1
    | And _ -> 2
    | Not _ -> 3
    | Cmp _ | True -> 4
  in
  let wrap body =
    if level cond < prec then Format.fprintf ppf "(%t)" body else body ppf
  in
  match cond with
  | True -> Format.pp_print_string ppf "TRUE"
  | Cmp { column; op; value } ->
    Format.fprintf ppf "%s %s %a" column (comparison_symbol op) pp_literal value
  (* The parser is right-associative, so the LEFT child must bind strictly
     tighter than the operator to print without parentheses. *)
  | And (a, b) ->
    wrap (fun ppf ->
        Format.fprintf ppf "%a AND %a" (pp_cond_prec 3) a (pp_cond_prec 2) b)
  | Or (a, b) ->
    wrap (fun ppf ->
        Format.fprintf ppf "%a OR %a" (pp_cond_prec 2) a (pp_cond_prec 1) b)
  | Not a -> wrap (fun ppf -> Format.fprintf ppf "NOT %a" (pp_cond_prec 4) a)

let pp_cond ppf cond = pp_cond_prec 0 ppf cond

let pp_assignments ppf set =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (column, value) ->
      Format.fprintf ppf "%s = %a" column pp_literal value)
    ppf set

let aggregate_text = function
  | Count_all -> "COUNT(*)"
  | Sum c -> Printf.sprintf "SUM(%s)" c
  | Avg c -> Printf.sprintf "AVG(%s)" c
  | Min c -> Printf.sprintf "MIN(%s)" c
  | Max c -> Printf.sprintf "MAX(%s)" c

let rec pp_statement ppf = function
  | Explain inner -> Format.fprintf ppf "EXPLAIN %a" pp_statement inner
  | Select { projection; table; where; group_by; having; order_by; limit } ->
    Format.fprintf ppf "SELECT %s FROM %s"
      (match projection with
      | All -> "*"
      | Columns cs -> String.concat ", " cs
      | Aggregates aggs -> String.concat ", " (List.map aggregate_text aggs))
      table;
    if where <> True then Format.fprintf ppf " WHERE %a" pp_cond where;
    (match group_by with
    | Some c -> Format.fprintf ppf " GROUP BY %s" c
    | None -> ());
    (match having with
    | True -> ()
    | cond -> Format.fprintf ppf " HAVING %a" pp_cond cond);
    (match order_by with
    | Some (Asc c) -> Format.fprintf ppf " ORDER BY %s ASC" c
    | Some (Desc c) -> Format.fprintf ppf " ORDER BY %s DESC" c
    | None -> ());
    (match limit with
    | Some n -> Format.fprintf ppf " LIMIT %d" n
    | None -> ())
  | Insert { table; row } ->
    Format.fprintf ppf "INSERT INTO %s (%s) VALUES (%a)" table
      (String.concat ", " (List.map fst row))
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_literal)
      (List.map snd row)
  | Update { table; set; where } ->
    Format.fprintf ppf "UPDATE %s SET %a" table pp_assignments set;
    if where <> True then Format.fprintf ppf " WHERE %a" pp_cond where
  | Delete { table; where } ->
    Format.fprintf ppf "DELETE FROM %s" table;
    if where <> True then Format.fprintf ppf " WHERE %a" pp_cond where

let to_string statement = Format.asprintf "%a" pp_statement statement
