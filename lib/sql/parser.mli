(** Recursive-descent parser for the SQL subset (see {!Ast}).

    Grammar (keywords case-insensitive, [;] optional):

    {v
    statement := EXPLAIN inner | inner
    inner     := select | insert | update | delete
    select    := SELECT ( "*" | column {"," column} | agg {"," agg} )
                 FROM ident [WHERE cond] [GROUP BY ident [HAVING cond]]
                 [ORDER BY ident [ASC|DESC]] [LIMIT int]
    agg       := COUNT "(" "*" ")"
               | (SUM | AVG | MIN | MAX) "(" ident ")"
    insert    := INSERT INTO ident "(" ident {"," ident} ")"
                 VALUES "(" literal {"," literal} ")"
    update    := UPDATE ident SET ident "=" literal {"," ident "=" literal}
                 [WHERE cond]
    delete    := DELETE FROM ident [WHERE cond]
    cond      := disjunct {OR disjunct}
    disjunct  := conjunct {AND conjunct}
    conjunct  := NOT conjunct | "(" cond ")" | TRUE
               | ident ("=" | "<>" | "<" | "<=" | ">" | ">=") literal
    literal   := int | float | "string" | TRUE | FALSE | NULL
    v} *)

(** [parse input] is the statement, or a human-readable syntax error. *)
val parse : string -> (Ast.statement, string) result
