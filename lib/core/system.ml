open Lsr_storage

type channel = {
  ch_send : Txn_record.t list -> unit;
  ch_tick : unit -> Txn_record.t list;
  ch_idle : unit -> bool;
  ch_reset : unit -> unit;
}

type slot = {
  mutable site : Secondary.t;
  mutable crashed : bool;
  (* False once the site has crashed: its state sequence is no longer a
     prefix of the primary's, so only final-state equality can be checked. *)
  mutable clean : bool;
  channel : channel option;
}

exception Unsatisfiable_read of {
  secondary : int;
  required : Timestamp.t;
  available : Timestamp.t;
  pumps : int;
}

let () =
  Printexc.register_printer (function
    | Unsatisfiable_read { secondary; required; available; pumps } ->
      Some
        (Printf.sprintf
           "System.Unsatisfiable_read(secondary %d: needs seq %d, has %d \
            after %d pumps)"
           secondary required available pumps)
    | _ -> None)

type t = {
  primary : Primary.t;
  propagator : Propagation.t;
  slots : slot array;
  sessions : Session.t;
  clock : Session.clock;
  wdog : Watchdog.t option;
  history : History.t;
  schema : (string * string list) list;
  obs : Lsr_obs.Obs.t;
  lineage : Lsr_obs.Lineage.t;
  flight : Lsr_obs.Flight.t;
  c_commits : Lsr_obs.Obs.counter;
  c_aborts : Lsr_obs.Obs.counter;
  c_reads : Lsr_obs.Obs.counter;
  mutable next_client : int;
  mutable blocked_reads : int;
}

type client = { label : string; secondary : int }

(* Each refresh commit both wakes nothing (the embedded system pumps
   synchronously) and advances the watchdog's retirement horizon for the
   site, when a watchdog is attached. *)
let refresh_hook wdog i =
  match wdog with
  | None -> None
  | Some w -> Some (fun ts -> Watchdog.note_refresh w ~site:i ~seq:ts)

let make_slot ~obs ~lineage ~flight ?faults ~wdog i =
  {
    site =
      Secondary.create
        ~name:(Printf.sprintf "secondary-%d" i)
        ~obs ~lineage ~flight
        ?on_refresh_commit:(refresh_hook wdog i) ();
    crashed = false;
    clean = true;
    channel = Option.map (fun f -> f i) faults;
  }

let create ?(secondaries = 1) ?(schema = []) ?faults
    ?(obs = Lsr_obs.Obs.null) ?(lineage = Lsr_obs.Lineage.null)
    ?(flight = Lsr_obs.Flight.null) ?(watchdog = false) ~guarantee () =
  if secondaries < 1 then invalid_arg "System.create: need at least 1 secondary";
  let primary = Primary.create () in
  let clock = Session.clock_create () in
  let history = History.create () in
  (* The embedded system has no virtual clock; the history event counter is
     its time axis, for flight events exactly as for [Max_age] fences. *)
  Lsr_obs.Flight.set_clock flight (fun () ->
      float_of_int (History.now history));
  let wdog =
    if watchdog then
      Some
        (Watchdog.create ~obs ~lineage ~clock ~sites:secondaries
           ?on_alert:
             (if Lsr_obs.Flight.enabled flight then
                Some
                  (fun (a : Watchdog.alert) ->
                    let txns =
                      match a.Watchdog.kind with
                      | Watchdog.Inversion { earlier; _ } ->
                        [ a.Watchdog.txn; earlier ]
                      | _ -> [ a.Watchdog.txn ]
                    in
                    Lsr_obs.Flight.trigger flight ~reason:"watchdog"
                      ~detail:(Format.asprintf "%a" Watchdog.pp_alert a)
                      ~txns ())
              else None)
           ())
    else None
  in
  {
    primary;
    propagator =
      Propagation.create ~from:0 ~obs ~lineage ~flight (Primary.wal primary);
    slots = Array.init secondaries (make_slot ~obs ~lineage ~flight ?faults ~wdog);
    sessions = Session.create guarantee;
    clock;
    wdog;
    history;
    schema;
    obs;
    lineage;
    flight;
    c_commits = Lsr_obs.Obs.counter obs "system.update_commits";
    c_aborts = Lsr_obs.Obs.counter obs "system.update_aborts";
    c_reads = Lsr_obs.Obs.counter obs "system.reads";
    next_client = 0;
    blocked_reads = 0;
  }

let guarantee t = Session.guarantee t.sessions
let primary t = t.primary
let primary_db t = Primary.db t.primary
let secondaries t = Array.length t.slots

let slot t i =
  if i < 0 || i >= Array.length t.slots then
    invalid_arg (Printf.sprintf "System: no secondary %d" i);
  t.slots.(i)

let secondary t i = (slot t i).site
let secondary_db t i = Secondary.db (slot t i).site
let sessions t = t.sessions
let history t = t.history

(* The embedded system has no virtual time; the history event counter is its
   commit clock's time axis, so [Max_age] fences are measured in "events
   ago". *)
let commit_clock t = t.clock
let watchdog t = t.wdog
let clock_now t = float_of_int (History.now t.history)

let connect t ?secondary label =
  let secondary =
    match secondary with
    | Some i ->
      ignore (slot t i);
      i
    | None ->
      let i = t.next_client mod Array.length t.slots in
      t.next_client <- t.next_client + 1;
      i
  in
  { label; secondary }

let client_label c = c.label
let client_secondary c = c.secondary

(* Move a session to another secondary (load balancing / failover). The
   label is preserved, so its ordering constraints travel with it — this is
   exactly where strong session SI and PCSI diverge. *)
let migrate t client secondary =
  ignore (slot t secondary);
  { client with secondary }

(* --- Replication control -------------------------------------------------- *)

let propagate t =
  let records = Propagation.poll t.propagator in
  if records <> [] then
    Array.iter
      (fun s ->
        if not s.crashed then
          match s.channel with
          | None -> List.iter (Secondary.enqueue s.site) records
          | Some ch -> ch.ch_send records)
      t.slots;
  List.length records

(* With a fault channel attached, one refresh advances the channel by one
   tick (delivering whatever arrives in order) before draining the refresh
   machinery; without one, records were enqueued directly by [propagate]. *)
let refresh_one t i =
  let s = slot t i in
  if s.crashed then 0
  else begin
    (match s.channel with
    | None -> ()
    | Some ch -> List.iter (Secondary.enqueue s.site) (ch.ch_tick ()));
    Secondary.drain s.site
  end

let refresh_all t =
  Array.to_list t.slots
  |> List.mapi (fun i _ -> refresh_one t i)
  |> List.fold_left ( + ) 0

let channels_busy t =
  Array.exists
    (fun s ->
      (not s.crashed)
      && match s.channel with Some ch -> not (ch.ch_idle ()) | None -> false)
    t.slots

(* Bound on channel ticks per pump: retransmission makes delivery certain
   (loss < 1), but a pathological fault configuration could still take many
   ticks; failing loudly beats spinning forever. *)
let pump_tick_cap = 200_000

let pump t =
  ignore (propagate t);
  ignore (refresh_all t);
  let ticks = ref 0 in
  while channels_busy t do
    incr ticks;
    if !ticks > pump_tick_cap then
      failwith "System.pump: fault channels failed to quiesce";
    ignore (refresh_all t)
  done

let blocked_reads t = t.blocked_reads

let compact t =
  Wal.truncate_before (Primary.wal t.primary) (Propagation.position t.propagator);
  let reclaimed = ref 0 in
  let vacuum_db db =
    reclaimed := !reclaimed + Mvcc.vacuum db ~before:(Mvcc.latest_commit_ts db)
  in
  vacuum_db (Primary.db t.primary);
  Array.iter (fun s -> if not s.crashed then vacuum_db (Secondary.db s.site)) t.slots;
  !reclaimed

(* --- Transactions ---------------------------------------------------------- *)

let update t client ?force_abort body =
  let first_op = History.tick t.history in
  let wtok =
    Option.map (fun w -> Watchdog.begin_update w ~session:client.label) t.wdog
  in
  let handle_ref = ref None in
  let wrapped db txn =
    let h = Handle.make ~schema:t.schema db txn in
    handle_ref := Some h;
    body h
  in
  match Primary.execute t.primary ?force_abort wrapped with
  | Primary.Committed { value; txn; commit_ts; snapshot; writes } ->
    Lsr_obs.Obs.incr t.c_commits;
    if Lsr_obs.Lineage.enabled t.lineage then
      Lsr_obs.Lineage.emit t.lineage ~txn
        (Lsr_obs.Lineage.Primary_commit
           { commit_ts; updates = List.length writes });
    Session.note_update_commit t.sessions ~label:client.label ~commit_ts;
    let finished = History.tick t.history in
    Session.clock_note t.clock ~commit_ts ~at:(float_of_int finished);
    let reads =
      match !handle_ref with Some h -> Handle.reads h | None -> []
    in
    let id = History.fresh_id t.history in
    if Lsr_obs.Flight.enabled t.flight then
      Lsr_obs.Flight.note_commit t.flight ~txn ~hid:id ~commit_ts
        ~updates:(List.length writes);
    (match (t.wdog, wtok) with
    | Some w, Some tok ->
      Watchdog.end_update w tok ~id ~now:(float_of_int finished) ~mvcc_txn:txn
        ~commit:(Some (commit_ts, writes))
        ~snapshot ~reads
    | _ -> ());
    History.add t.history
      {
        History.id = id;
        session = client.label;
        kind = History.Update;
        site = "primary";
        first_op;
        finished;
        snapshot;
        commit_ts = Some commit_ts;
        reads;
        writes;
        fence = None;
      };
    Ok value
  | Primary.Aborted reason ->
    Lsr_obs.Obs.incr t.c_aborts;
    let finished = History.tick t.history in
    let reads =
      match !handle_ref with Some h -> Handle.reads h | None -> []
    in
    let id = History.fresh_id t.history in
    (match (t.wdog, wtok) with
    | Some w, Some tok ->
      (* Aborted transactions pin nothing; the token only releases its
         horizon pin. *)
      Watchdog.end_update w tok ~id ~now:(float_of_int finished) ~commit:None
        ~snapshot:Timestamp.zero ~reads
    | _ -> ());
    History.add t.history
      {
        History.id = id;
        session = client.label;
        kind = History.Update;
        site = "primary";
        first_op;
        finished;
        snapshot = Timestamp.zero;
        commit_ts = None;
        reads;
        writes = [];
        fence = None;
      };
    Error reason

let run_read ?fence t client body =
  let s = slot t client.secondary in
  if s.crashed then
    failwith (Printf.sprintf "secondary %d is down" client.secondary);
  Lsr_obs.Obs.incr t.c_reads;
  let db = Secondary.db s.site in
  let read_at = clock_now t in
  let first_op = History.tick t.history in
  let snapshot = Secondary.seq_dbsec s.site in
  if Lsr_obs.Lineage.enabled t.lineage then
    Lsr_obs.Lineage.sample_read t.lineage
      ~site:(Secondary.name s.site) ~snapshot;
  Session.note_read ?fence t.sessions ~label:client.label ~snapshot;
  let wtok =
    Option.map
      (fun w -> Watchdog.begin_read w ~session:client.label ~snapshot)
      t.wdog
  in
  let txn = Mvcc.begin_txn db in
  let h = Handle.make ~schema:t.schema db txn in
  let value = body h in
  Mvcc.end_read db txn;
  let finished = History.tick t.history in
  let id = History.fresh_id t.history in
  let fence_claim = Option.map (fun claim -> { History.claim; read_at }) fence in
  if Lsr_obs.Flight.enabled t.flight then begin
    let fence_seq =
      match fence with
      | None -> -1
      | Some f ->
        Session.fence_threshold t.sessions ~clock:t.clock ~now:read_at
          ~label:client.label f
    in
    Lsr_obs.Flight.note_read t.flight
      ~site:(Secondary.name s.site) ~hid:id ~session:client.label ~snapshot
      ~fence:fence_seq
  end;
  (match (t.wdog, wtok) with
  | Some w, Some tok ->
    Watchdog.end_read ?fence:fence_claim w tok ~id
      ~site:(Printf.sprintf "secondary-%d" client.secondary)
      ~now:(float_of_int finished) ~reads:(Handle.reads h)
  | _ -> ());
  History.add t.history
    {
      History.id = id;
      session = client.label;
      kind = History.Read_only;
      site = Printf.sprintf "secondary-%d" client.secondary;
      first_op;
      finished;
      snapshot;
      commit_ts = None;
      reads = Handle.reads h;
      writes = [];
      fence = fence_claim;
    };
  value

(* The seq(DBsec) threshold this read needs. A [Max_age] fence resolves its
   visibility horizon here, once — the Minnal per-statement horizon [B] —
   so retrying the same read keeps the same target. *)
let required_for ?fence t client =
  Session.required_seq ?fence ~clock:t.clock ~now:(clock_now t) t.sessions
    ~label:client.label

let session_condition ?fence t client =
  let s = slot t client.secondary in
  Timestamp.compare (required_for ?fence t client)
    (Secondary.seq_dbsec s.site)
  <= 0

(* Bound on pump rounds in a blocked read. Each pump drives the fault
   channels to quiescence, so commits already in the primary log arrive in
   one round; the bound exists for fences demanding a commit that does not
   exist yet ([Exact] in the future), where no amount of pumping helps. *)
let max_read_pumps = 4

let read ?fence t client body =
  let s = slot t client.secondary in
  if s.crashed then
    failwith (Printf.sprintf "secondary %d is down" client.secondary);
  let required = required_for ?fence t client in
  let satisfied () =
    Timestamp.compare required (Secondary.seq_dbsec s.site) <= 0
  in
  if not (satisfied ()) then begin
    t.blocked_reads <- t.blocked_reads + 1;
    (* Waiting for lazy replication to catch up: in the embedded system this
       means driving propagation and refresh ourselves. With a lossy channel
       a single propagate-and-refresh round is not guaranteed to deliver
       everything, so retry up to the bound and raise a typed error — not a
       bare [failwith] — only once the bound is exhausted. *)
    let pumps = ref 0 in
    while (not (satisfied ())) && !pumps < max_read_pumps do
      incr pumps;
      pump t
    done;
    if not (satisfied ()) then
      raise
        (Unsatisfiable_read
           {
             secondary = client.secondary;
             required;
             available = Secondary.seq_dbsec s.site;
             pumps = !pumps;
           })
  end;
  run_read ?fence t client body

let read_nowait ?fence t client body =
  (* A crashed target is "cannot serve this read now" — the [None] case of
     the contract, not an exception from inside [run_read]. *)
  if (slot t client.secondary).crashed then None
  else if session_condition ?fence t client then
    Some (run_read ?fence t client body)
  else None

(* --- Failures -------------------------------------------------------------- *)

let crash_secondary t i =
  let s = slot t i in
  s.crashed <- true;
  s.clean <- false;
  if Lsr_obs.Flight.enabled t.flight then
    Lsr_obs.Flight.note_crash t.flight ~site:(Secondary.name s.site);
  (* The site's connection state dies with it: messages in flight to it are
     lost and both endpoints' sequence numbers restart on recovery. *)
  Option.iter (fun ch -> ch.ch_reset ()) s.channel

let recover_secondary t i =
  let s = slot t i in
  if not s.crashed then invalid_arg "System.recover_secondary: not crashed";
  (* Quiesce propagation first: any primary commit not yet polled would be
     included in the backup below AND broadcast later, and re-executing it at
     the recovered site would briefly move seq(DBsec) backwards — a read in
     that window would observe a state newer than its recorded snapshot.
     Consuming the log up to the backup point makes backup and propagation
     cursor agree ("quiesced copy", §3.4). *)
  ignore (propagate t);
  (* Install a quiesced copy of the primary database (§3.4), shipped in its
     serialized backup form... *)
  let backup = Mvcc.serialize (Primary.db t.primary) in
  let fresh =
    Secondary.create_from
      ~name:(Printf.sprintf "secondary-%d" i)
      ~obs:t.obs ~lineage:t.lineage ~flight:t.flight
      ?on_refresh_commit:(refresh_hook t.wdog i) backup
  in
  (* ... and reinitialize seq(DBsec) from a dummy transaction's view of the
     primary's latest committed state (§4). *)
  let dummy = Mvcc.begin_txn (Primary.db t.primary) in
  let seed = Mvcc.latest_commit_ts (Primary.db t.primary) in
  Mvcc.end_read (Primary.db t.primary) dummy;
  Secondary.reseed_seq fresh seed;
  if Lsr_obs.Flight.enabled t.flight then
    Lsr_obs.Flight.note_recovery t.flight
      ~site:(Printf.sprintf "secondary-%d" i) ~seq:seed;
  (* The recovered copy corresponds to primary state [seed]: the watchdog's
     per-site horizon jumps forward with it. *)
  (match t.wdog with
  | Some w -> Watchdog.note_refresh w ~site:i ~seq:seed
  | None -> ());
  Option.iter (fun ch -> ch.ch_reset ()) s.channel;
  s.site <- fresh;
  s.crashed <- false

let is_crashed t i = (slot t i).crashed

(* --- Verification ----------------------------------------------------------- *)

let check t =
  let errors = ref [] in
  let add_error fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  Array.iteri
    (fun i s ->
      if not s.crashed then
        if s.clean then begin
          match
            Checker.check_completeness ~primary:(Primary.db t.primary)
              ~secondary:(Secondary.db s.site)
          with
          | Ok () -> ()
          | Error e -> add_error "secondary %d: %s" i e
        end
        else begin
          (* Recovered site: its history is not a prefix, but once fully
             refreshed its state must match the primary's current state. *)
          let expected = Mvcc.committed_state (Primary.db t.primary) in
          let actual = Mvcc.committed_state (Secondary.db s.site) in
          if
            Secondary.update_queue_length s.site = 0
            && expected <> actual
          then add_error "recovered secondary %d diverges from primary" i
        end)
    t.slots;
  let report = Checker.analyze ~clock:t.clock t.history in
  List.iter (fun v -> add_error "weak SI violation: %s" v) report.weak_si_violations;
  List.iter (fun v -> add_error "%s" v) report.fence_violations;
  if not (Checker.satisfies (guarantee t) report) then begin
    let offending =
      match guarantee t with
      | Session.Strong -> report.inversions_all
      | Session.Prefix_consistent -> report.inversions_after_update
      | Session.Strong_session | Session.Weak -> report.inversions_in_session
    in
    List.iter
      (fun inv ->
        add_error "inversion under %s: %s"
          (Session.guarantee_name (guarantee t))
          (Format.asprintf "%a" Checker.pp_inversion inv))
      offending
  end;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
