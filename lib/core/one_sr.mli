(** Serializable execution on top of strong SI — the ticket technique the
    paper's related work discusses (§7: Schenkel et al use tickets to order
    update transactions; Fekete et al show that introducing write conflicts
    makes SI executions serializable).

    Every guarded update transaction reads and rewrites a single {e ticket}
    key. Two concurrent guarded transactions therefore always have a
    write-write conflict, so the first-committer-wins rule serializes them:
    the committed guarded updates form a total order, SI's write skew becomes
    impossible among them, and the resulting histories are one-copy
    serializable (read-only transactions see committed prefixes).

    The price is concurrency — exactly the trade-off the paper leverages in
    the other direction. The ablation benchmarks quantify it. *)

open Lsr_storage

(** The reserved ticket key ("$ticket$" by default; choose another when
    sharding the serialization domain, e.g. one ticket per table). *)
val default_ticket : string

(** [guard ?ticket db txn] makes [txn] conflict with every other guarded
    transaction: it reads the ticket and writes it back incremented. Call it
    once, at any point before commit. *)
val guard : ?ticket:string -> Mvcc.t -> Mvcc.txn -> unit

(** [run ?ticket ?max_attempts db body] executes [body] in a guarded
    transaction, retrying (with a fresh snapshot) when first-committer-wins
    aborts it. Returns the body's result and the commit timestamp, or
    [Error attempts] after exhausting [max_attempts] (default 10). *)
val run :
  ?ticket:string -> ?max_attempts:int -> Mvcc.t -> (Mvcc.txn -> 'a) ->
  ('a * Timestamp.t, int) result

(** Number of guarded commits so far (the current ticket value). *)
val ticket_value : ?ticket:string -> Mvcc.t -> int
