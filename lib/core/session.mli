(** Session labels, sequence numbers, and the correctness guarantees of the
    paper's performance study (§4, §6), plus the related-work comparison
    point of §7:

    - [Weak] — ALG-WEAK-SI: global weak SI only; transactions never wait, and
      transaction inversions are possible.
    - [Strong_session] — ALG-STRONG-SESSION-SI: one sequence number [seq(c)]
      per session; a read-only transaction from session [c] waits until
      [seq(c) <= seq(DBsec)] at its secondary, preventing inversions within
      the session. The session also never observes snapshots moving
      backwards: the manager tracks the largest snapshot each session has
      read ([read floor]), which matters when a session migrates between
      secondaries.
    - [Prefix_consistent] — PCSI (Elnikety et al, contrasted in §7): a
      transaction must see the effects of earlier {e update} transactions of
      its own session, but no ordering is enforced between two read-only
      transactions — under secondary migration a later read may see an older
      snapshot than an earlier one.
    - [Strong] — ALG-STRONG-SI: a single system-wide session, i.e. a total
      ordering constraint between all transactions.

    The manager is the bookkeeping shared by both the embedded system and the
    simulator: it maps session labels to sequence numbers and answers the
    blocking predicate. *)

open Lsr_storage

type guarantee =
  | Weak
  | Prefix_consistent
  | Strong_session
  | Strong

val guarantee_name : guarantee -> string
val pp_guarantee : Format.formatter -> guarantee -> unit

(** The paper's three algorithms, in plotting order (PCSI excluded). *)
val all_guarantees : guarantee list

(** An optional per-read freshness fence, turning the discrete guarantee
    ladder into a continuous staleness/latency dial:

    - [Exact ts] — the snapshot must include the primary commit [ts];
    - [Max_age d] — the snapshot may be at most [d] units of virtual time
      stale, resolved against the primary's commit {!type:clock} into the
      largest commit timestamp older than [now - d] (the commit-visibility
      horizon of Minnal/SCAR);
    - [Session_seq] — the snapshot must be at least as fresh as the
      session's own [seq(c)] and read floor. Under any ambient guarantee
      this reproduces ALG-STRONG-SESSION-SI for the fenced reads, because
      {!note_read} keeps the read floor for [Session_seq]-fenced reads even
      when the guarantee alone would not.

    A fence only ever strengthens the ambient guarantee: the effective
    requirement is the [max] of both thresholds. *)
type fence =
  | Exact of Timestamp.t
  | Max_age of float
  | Session_seq

val fence_to_string : fence -> string

(** Parses the CLI syntax [exact:<ts> | age:<delta> | session]. *)
val fence_of_string : string -> (fence, string) result

val pp_fence : Format.formatter -> fence -> unit

(** The primary's commit clock: an append-only monotone map from commit
    timestamp to virtual commit time. [Max_age] fences are resolved against
    it; the checker replays it to audit committed fenced reads. *)
type clock

val clock_create : unit -> clock

(** [clock_note c ~commit_ts ~at] appends one primary commit. Both
    coordinates must be monotone ([invalid_arg] otherwise). *)
val clock_note : clock -> commit_ts:Timestamp.t -> at:float -> unit

(** [clock_horizon c ~cutoff] is the largest commit timestamp whose commit
    time is [<= cutoff] ([Timestamp.zero] if none): the visibility horizon a
    snapshot must reach to be no staler than [cutoff]. *)
val clock_horizon : clock -> cutoff:float -> Timestamp.t

(** [clock_time_of c ts] is the recorded commit time of [ts], if any. *)
val clock_time_of : clock -> Timestamp.t -> float option

val clock_len : clock -> int

type t

val create : guarantee -> t
val guarantee : t -> guarantee

(** [effective_label t label] is the label used for ordering: the client's
    own label normally, one global label under [Strong]. (Under [Weak] the
    result is never consulted.) *)
val effective_label : t -> string -> string

(** [seq t label] is [seq(c)]: the primary commit timestamp of the last
    update transaction committed by session [c] ([Timestamp.zero] if none). *)
val seq : t -> string -> Timestamp.t

(** [read_floor t label] is the largest snapshot a read-only transaction of
    session [c] has observed (tracked under [Strong_session] and [Strong]
    only; always [Timestamp.zero] otherwise). *)
val read_floor : t -> string -> Timestamp.t

(** [note_update_commit t ~label ~commit_ts] records that session [label]
    committed an update transaction at the primary with [commit_ts]. *)
val note_update_commit : t -> label:string -> commit_ts:Timestamp.t -> unit

(** [note_read t ~label ~snapshot] records the snapshot a read-only
    transaction of session [label] observed. The read floor rises under
    [Strong_session]/[Strong], and also when the read carried a
    [Session_seq] fence (no-op otherwise). *)
val note_read : ?fence:fence -> t -> label:string -> snapshot:Timestamp.t -> unit

(** [fence_threshold t ~label fence] is the smallest [seq(DBsec)]
    satisfying [fence] alone. [Max_age] needs [~clock] and [~now]
    ([invalid_arg] otherwise); the horizon is resolved once, at the instant
    the read asks — the Minnal per-statement visibility horizon [B]. *)
val fence_threshold :
  t -> ?clock:clock -> ?now:float -> label:string -> fence -> Timestamp.t

(** [required_seq t ~label] is the smallest [seq(DBsec)] at which a
    read-only transaction from session [label] may start:
    - [Weak]: [Timestamp.zero] (never waits);
    - [Prefix_consistent]: [seq(c)];
    - [Strong_session] / [Strong]: [max (seq c) (read_floor c)];
    and with [?fence], the [max] of the above and {!fence_threshold}.
    Monotone in time for a fixed label and fence threshold, which lets
    blocked readers wait on a threshold queue instead of re-polling. *)
val required_seq :
  ?fence:fence -> ?clock:clock -> ?now:float -> t -> label:string -> Timestamp.t

(** [may_read t ~label ~seq_dbsec] = [required_seq t ~label <= seq_dbsec]. *)
val may_read :
  ?fence:fence ->
  ?clock:clock ->
  ?now:float ->
  t ->
  label:string ->
  seq_dbsec:Timestamp.t ->
  bool
