(** Session labels, sequence numbers, and the correctness guarantees of the
    paper's performance study (§4, §6), plus the related-work comparison
    point of §7:

    - [Weak] — ALG-WEAK-SI: global weak SI only; transactions never wait, and
      transaction inversions are possible.
    - [Strong_session] — ALG-STRONG-SESSION-SI: one sequence number [seq(c)]
      per session; a read-only transaction from session [c] waits until
      [seq(c) <= seq(DBsec)] at its secondary, preventing inversions within
      the session. The session also never observes snapshots moving
      backwards: the manager tracks the largest snapshot each session has
      read ([read floor]), which matters when a session migrates between
      secondaries.
    - [Prefix_consistent] — PCSI (Elnikety et al, contrasted in §7): a
      transaction must see the effects of earlier {e update} transactions of
      its own session, but no ordering is enforced between two read-only
      transactions — under secondary migration a later read may see an older
      snapshot than an earlier one.
    - [Strong] — ALG-STRONG-SI: a single system-wide session, i.e. a total
      ordering constraint between all transactions.

    The manager is the bookkeeping shared by both the embedded system and the
    simulator: it maps session labels to sequence numbers and answers the
    blocking predicate. *)

open Lsr_storage

type guarantee =
  | Weak
  | Prefix_consistent
  | Strong_session
  | Strong

val guarantee_name : guarantee -> string
val pp_guarantee : Format.formatter -> guarantee -> unit

(** The paper's three algorithms, in plotting order (PCSI excluded). *)
val all_guarantees : guarantee list

type t

val create : guarantee -> t
val guarantee : t -> guarantee

(** [effective_label t label] is the label used for ordering: the client's
    own label normally, one global label under [Strong]. (Under [Weak] the
    result is never consulted.) *)
val effective_label : t -> string -> string

(** [seq t label] is [seq(c)]: the primary commit timestamp of the last
    update transaction committed by session [c] ([Timestamp.zero] if none). *)
val seq : t -> string -> Timestamp.t

(** [read_floor t label] is the largest snapshot a read-only transaction of
    session [c] has observed (tracked under [Strong_session] and [Strong]
    only; always [Timestamp.zero] otherwise). *)
val read_floor : t -> string -> Timestamp.t

(** [note_update_commit t ~label ~commit_ts] records that session [label]
    committed an update transaction at the primary with [commit_ts]. *)
val note_update_commit : t -> label:string -> commit_ts:Timestamp.t -> unit

(** [note_read t ~label ~snapshot] records the snapshot a read-only
    transaction of session [label] observed (raises the read floor under
    [Strong_session]/[Strong]; no-op otherwise). *)
val note_read : t -> label:string -> snapshot:Timestamp.t -> unit

(** [required_seq t ~label] is the smallest [seq(DBsec)] at which a
    read-only transaction from session [label] may start:
    - [Weak]: [Timestamp.zero] (never waits);
    - [Prefix_consistent]: [seq(c)];
    - [Strong_session] / [Strong]: [max (seq c) (read_floor c)].
    Monotone in time for a fixed label, which lets blocked readers wait on
    a threshold queue instead of re-polling. *)
val required_seq : t -> label:string -> Timestamp.t

(** [may_read t ~label ~seq_dbsec] = [required_seq t ~label <= seq_dbsec]. *)
val may_read : t -> label:string -> seq_dbsec:Timestamp.t -> bool
