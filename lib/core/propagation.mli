(** Primary update propagation — Algorithm 3.1.

    A log sniffer over the primary's {!Lsr_storage.Wal}. Start records are
    forwarded the moment they appear (so a long-running transaction cannot
    stall propagation); update records are accumulated into per-transaction
    update lists; a transaction's updates are shipped only with its commit
    record, so work for transactions that later abort is never sent to (or
    executed at) the secondaries. Because the log is consumed in append
    order, emitted records are in primary timestamp order. *)

open Lsr_storage

type t

(** [create wal] is a propagator with its cursor at the current log head,
    i.e. it forwards entries appended from now on. Use [~from:0] to replay
    the whole log (e.g. when attaching a fresh secondary). [ship_aborted]
    (default false) attaches aborted transactions' update lists to their
    abort records — the "simple method" of §3.2 whose wasted secondary work
    the ablation benchmarks quantify. [obs] receives the counters
    [propagation.polls] / [propagation.records_shipped] and the
    [propagation.in_flight] gauge. [lineage] receives a [Batched] event when
    a transaction's start record is picked up and a [Shipped] event when its
    squashed commit record leaves the propagator; [flight] records the same
    two stages into the bounded black box. *)
val create :
  ?from:int ->
  ?ship_aborted:bool ->
  ?obs:Lsr_obs.Obs.t ->
  ?lineage:Lsr_obs.Lineage.t ->
  ?flight:Lsr_obs.Flight.t ->
  Wal.t ->
  t

(** [poll t] consumes the log entries appended since the last poll and
    returns the records to broadcast, in order. *)
val poll : t -> Txn_record.t list

(** Log offset of the cursor (entries below it have been consumed). *)
val position : t -> int

(** Transactions whose start record was seen but whose commit/abort has not
    yet been, i.e. in-flight at the primary (for monitoring). *)
val in_flight : t -> int
