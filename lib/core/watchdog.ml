open Lsr_storage
module Obs = Lsr_obs.Obs
module Lineage = Lsr_obs.Lineage
module Json = Lsr_obs.Json

type level =
  | All_sessions
  | In_session
  | After_update

type alert_kind =
  | Read_mismatch of {
      key : string;
      observed : string option;
      expected : string option;
    }
  | Inversion of { level : level; earlier : int; floor : Timestamp.t }
  | Fence_violation of { detail : string }

type alert = {
  at : float;
  txn : int;
  session : string;
  site : string;
  snapshot : Timestamp.t;
  kind : alert_kind;
  trace : Lineage.event list;
}

type verdict = {
  read_mismatches : int;
  v_inversions_all : int;
  v_inversions_in_session : int;
  v_inversions_after_update : int;
  fence_failures : int;
  alerts_total : int;
  alerts_dropped : int;
}

(* A per-key committed-writer chain: versions in commit-timestamp order, with
   a live window [lo, hi) over a growable ring-free array. Retirement only
   ever drops the oldest version, so the window slides forward and the dead
   prefix is reclaimed by compaction once it dominates the array. *)
type chain = {
  mutable c_ts : Timestamp.t array;
  mutable c_v : string option array;
  mutable c_lo : int;
  mutable c_hi : int;
}

let chain_create () =
  { c_ts = Array.make 4 Timestamp.zero; c_v = Array.make 4 None; c_lo = 0; c_hi = 0 }

let chain_len c = c.c_hi - c.c_lo

let chain_append c ts v =
  let cap = Array.length c.c_ts in
  if c.c_hi = cap then begin
    let live = chain_len c in
    if c.c_lo >= live && c.c_lo > 0 then begin
      (* Dead prefix at least half the array: slide the window back. *)
      Array.blit c.c_ts c.c_lo c.c_ts 0 live;
      Array.blit c.c_v c.c_lo c.c_v 0 live
    end
    else begin
      let cap' = max 8 (2 * cap) in
      let ts' = Array.make cap' Timestamp.zero and v' = Array.make cap' None in
      Array.blit c.c_ts c.c_lo ts' 0 live;
      Array.blit c.c_v c.c_lo v' 0 live;
      c.c_ts <- ts';
      c.c_v <- v'
    end;
    c.c_lo <- 0;
    c.c_hi <- live
  end;
  c.c_ts.(c.c_hi) <- ts;
  c.c_v.(c.c_hi) <- v;
  c.c_hi <- c.c_hi + 1

(* Index one past the last version with ts <= [s] (cf. the checker's
   [partition]); the visible version is at the returned index - 1. *)
let chain_partition c s =
  let lo = ref c.c_lo and hi = ref c.c_hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Timestamp.compare c.c_ts.(mid) s <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let chain_drop_head c =
  c.c_v.(c.c_lo) <- None;
  (* release the value for the GC *)
  c.c_lo <- c.c_lo + 1;
  if c.c_lo = c.c_hi then begin
    c.c_lo <- 0;
    c.c_hi <- 0
  end

type token = {
  tk_serial : int;
  tk_session : string;
  tk_global : (Timestamp.t * int) option;
  tk_session_floor : (Timestamp.t * int) option;
  tk_update_floor : (Timestamp.t * int) option;
  tk_fence_floor : Timestamp.t option;
  tk_snapshot : Timestamp.t;  (* reads only; updates re-declare at end *)
}

type t = {
  alert_cap : int;
  on_alert : (alert -> unit) option;
  clock : Session.clock option;
  lineage : Lineage.t;
  (* Weak-SI state: primary writes newer than the horizon, per key, plus the
     folded base value of everything retired. *)
  chains : (string, chain) Hashtbl.t;
  base : (string, string option) Hashtbl.t;
  unretired : (Timestamp.t * Wal.update list) Queue.t;
  mutable last_commit_ts : Timestamp.t;
  mutable live_versions : int;
  mutable retired_versions : int;
  (* Inversion floors: maximal pinned state with its witness, globally and
     per session (all committed txns, and updates only for PCSI); plus the
     fence-audit session floor. *)
  mutable global_floor : (Timestamp.t * int) option;
  session_floor : (string, Timestamp.t * int) Hashtbl.t;
  update_floor : (string, Timestamp.t * int) Hashtbl.t;
  fence_floor : (string, Timestamp.t) Hashtbl.t;
  mutable floors_swept_at : int;
  (* Retirement horizon inputs: per-site seq(DBsec) and in-flight pins. *)
  site_seq : Timestamp.t array;
  pins : (int, Timestamp.t) Hashtbl.t;
  mutable min_pin : Timestamp.t;  (* valid unless [min_pin_dirty] *)
  mutable min_pin_dirty : bool;
  mutable next_serial : int;
  mutable horizon : Timestamp.t;
  (* Alerts: newest-first bounded log plus exact per-kind counters. *)
  mutable alert_log : alert list;
  mutable alert_log_len : int;
  mutable n_read : int;
  mutable n_inv_all : int;
  mutable n_inv_sess : int;
  mutable n_inv_upd : int;
  mutable n_fence : int;
  c_alert_read : Obs.counter;
  c_alert_inversion : Obs.counter;
  c_alert_fence : Obs.counter;
  g_state : Obs.gauge;
  mutable peak : int;
}

let create ?(alert_cap = 256) ?on_alert ?(obs = Obs.null)
    ?(lineage = Lineage.null) ?clock ~sites () =
  if sites < 1 then invalid_arg "Watchdog.create: need at least 1 site";
  {
    alert_cap = max 0 alert_cap;
    on_alert;
    clock;
    lineage;
    chains = Hashtbl.create 1024;
    base = Hashtbl.create 1024;
    unretired = Queue.create ();
    last_commit_ts = Timestamp.zero;
    live_versions = 0;
    retired_versions = 0;
    global_floor = None;
    session_floor = Hashtbl.create 64;
    update_floor = Hashtbl.create 64;
    fence_floor = Hashtbl.create 64;
    floors_swept_at = 0;
    site_seq = Array.make sites Timestamp.zero;
    pins = Hashtbl.create 64;
    min_pin = max_int;
    min_pin_dirty = false;
    next_serial = 0;
    horizon = Timestamp.zero;
    alert_log = [];
    alert_log_len = 0;
    n_read = 0;
    n_inv_all = 0;
    n_inv_sess = 0;
    n_inv_upd = 0;
    n_fence = 0;
    c_alert_read = Obs.counter obs "watchdog.alerts.read_mismatch";
    c_alert_inversion = Obs.counter obs "watchdog.alerts.inversion";
    c_alert_fence = Obs.counter obs "watchdog.alerts.fence";
    g_state = Obs.gauge obs "watchdog.state_size";
    peak = 0;
  }

let state_size t =
  t.live_versions + Queue.length t.unretired
  + Hashtbl.length t.session_floor
  + Hashtbl.length t.update_floor
  + Hashtbl.length t.fence_floor
  + Hashtbl.length t.pins

let peak_state t = t.peak
let retired_versions t = t.retired_versions
let live_versions t = t.live_versions
let horizon t = t.horizon

let note_state t =
  let s = state_size t in
  if s > t.peak then t.peak <- s;
  Obs.set_gauge t.g_state (float_of_int s)

(* --- Horizon pins ----------------------------------------------------------- *)

let pin t ts =
  let serial = t.next_serial in
  t.next_serial <- serial + 1;
  Hashtbl.replace t.pins serial ts;
  if ts < t.min_pin then t.min_pin <- ts;
  serial

let unpin t serial =
  match Hashtbl.find_opt t.pins serial with
  | None -> ()
  | Some ts ->
    Hashtbl.remove t.pins serial;
    if ts = t.min_pin then t.min_pin_dirty <- true

let min_pin t =
  if t.min_pin_dirty then begin
    t.min_pin <- Hashtbl.fold (fun _ ts acc -> min ts acc) t.pins max_int;
    t.min_pin_dirty <- false
  end;
  t.min_pin

(* --- Alerts ----------------------------------------------------------------- *)

let record_alert t ~at ~txn ~session ~site ~snapshot ?mvcc_txn kind =
  (match kind with
  | Read_mismatch _ ->
    t.n_read <- t.n_read + 1;
    Obs.incr t.c_alert_read
  | Inversion { level; _ } ->
    (match level with
    | All_sessions -> t.n_inv_all <- t.n_inv_all + 1
    | In_session -> t.n_inv_sess <- t.n_inv_sess + 1
    | After_update -> t.n_inv_upd <- t.n_inv_upd + 1);
    Obs.incr t.c_alert_inversion
  | Fence_violation _ ->
    t.n_fence <- t.n_fence + 1;
    Obs.incr t.c_alert_fence);
  let retain = t.alert_log_len < t.alert_cap in
  if retain || t.on_alert <> None then begin
    let trace =
      match mvcc_txn with
      | Some id when Lineage.enabled t.lineage -> Lineage.journey t.lineage ~txn:id
      | Some _ | None -> []
    in
    let alert = { at; txn; session; site; snapshot; kind; trace } in
    if retain then begin
      t.alert_log <- alert :: t.alert_log;
      t.alert_log_len <- t.alert_log_len + 1
    end;
    (* The hook fires on every alert, including ones the bounded log drops —
       the flight recorder's first-trigger-wins capture must not miss the
       first anomaly just because the log was already full. *)
    match t.on_alert with Some f -> f alert | None -> ()
  end

(* --- Floors ----------------------------------------------------------------- *)

(* Raise a floor, keeping the earlier witness on equal timestamps — the same
   tie rule as [Checker.inversions]'s [note]. *)
let bump_floor tbl session ts id =
  match Hashtbl.find_opt tbl session with
  | Some (best, _) when Timestamp.compare best ts >= 0 -> ()
  | Some _ | None -> Hashtbl.replace tbl session (ts, id)

let bump_global t ts id =
  match t.global_floor with
  | Some (best, _) when Timestamp.compare best ts >= 0 -> ()
  | Some _ | None -> t.global_floor <- Some (ts, id)

let bump_fence_floor t session ts =
  match Hashtbl.find_opt t.fence_floor session with
  | Some best when Timestamp.compare best ts >= 0 -> ()
  | Some _ | None -> Hashtbl.replace t.fence_floor session ts

(* Session floors at or below the horizon can never fire again: any future
   transaction's snapshot is at least the horizon at its own first operation
   (a read's snapshot is its site's seq(DBsec) >= the min over sites; an
   update's snapshot is the primary's newest commit >= every retired one).
   Sweeping them keeps the tables O(sessions active in the window). *)
let floors_len t =
  Hashtbl.length t.session_floor
  + Hashtbl.length t.update_floor
  + Hashtbl.length t.fence_floor

let sweep_floors t =
  let len = floors_len t in
  if len >= 64 && len >= 2 * t.floors_swept_at then begin
    let drop tbl keep_of =
      let dead =
        Hashtbl.fold
          (fun session v acc ->
            if Timestamp.compare (keep_of v) t.horizon <= 0 then session :: acc
            else acc)
          tbl []
      in
      List.iter (Hashtbl.remove tbl) dead
    in
    drop t.session_floor fst;
    drop t.update_floor fst;
    drop t.fence_floor (fun ts -> ts);
    t.floors_swept_at <- floors_len t
  end

(* --- Retirement ------------------------------------------------------------- *)

let retire t =
  if not (Queue.is_empty t.unretired) then begin
    let site_min = Array.fold_left min max_int t.site_seq in
    let front_ts, _ = Queue.peek t.unretired in
    if Timestamp.compare front_ts site_min <= 0 then begin
      let h = min site_min (min_pin t) in
      if Timestamp.compare h t.horizon > 0 then t.horizon <- h;
      while
        match Queue.peek_opt t.unretired with
        | Some (ts, _) -> Timestamp.compare ts h <= 0
        | None -> false
      do
        let ts, writes = Queue.pop t.unretired in
        List.iter
          (fun { Wal.key; value } ->
            Hashtbl.replace t.base key value;
            (match Hashtbl.find_opt t.chains key with
            | Some c when chain_len c > 0 && Timestamp.equal c.c_ts.(c.c_lo) ts ->
              chain_drop_head c;
              if chain_len c = 0 then Hashtbl.remove t.chains key
            | Some _ | None ->
              (* Commits arrive in timestamp order and retire in the same
                 order, so the popped version is always the chain head. *)
              assert false);
            t.live_versions <- t.live_versions - 1;
            t.retired_versions <- t.retired_versions + 1)
          writes
      done;
      sweep_floors t
    end
  end

let note_refresh t ~site ~seq =
  if site < 0 || site >= Array.length t.site_seq then
    invalid_arg "Watchdog.note_refresh: unknown site";
  if Timestamp.compare seq t.site_seq.(site) > 0 then begin
    t.site_seq.(site) <- seq;
    retire t;
    note_state t
  end

(* --- Event stream ----------------------------------------------------------- *)

let capture t ~session ~pin_at =
  {
    tk_serial = pin t pin_at;
    tk_session = session;
    tk_global = t.global_floor;
    tk_session_floor = Hashtbl.find_opt t.session_floor session;
    tk_update_floor = Hashtbl.find_opt t.update_floor session;
    tk_fence_floor = Hashtbl.find_opt t.fence_floor session;
    tk_snapshot = pin_at;
  }

let begin_read t ~session ~snapshot = capture t ~session ~pin_at:snapshot

let begin_update t ~session =
  (* Any attempt of this transaction reads the primary's newest commit at
     attempt start, which is at least the newest commit seen so far. *)
  capture t ~session ~pin_at:t.last_commit_ts

(* Expected value of [key] in primary state S@[snapshot]: newest live chain
   version at or below the snapshot, else the folded base (everything
   retired is at or below the horizon, hence visible), else absent. Only
   called with [snapshot >= horizon at the reader's first operation], which
   the token's pin guarantees. *)
let expected_value t key snapshot =
  match Hashtbl.find_opt t.chains key with
  | Some c ->
    let pos = chain_partition c snapshot in
    if pos > c.c_lo then c.c_v.(pos - 1)
    else Option.join (Hashtbl.find_opt t.base key)
  | None -> Option.join (Hashtbl.find_opt t.base key)

let validate_reads t ~at ~txn ~session ~site ~snapshot ?mvcc_txn ~own_writes
    reads =
  List.iter
    (fun (key, observed) ->
      let own =
        match own_writes with
        | [] -> false
        | ws -> List.exists (fun { Wal.key = k; _ } -> String.equal k key) ws
      in
      if not own then begin
        let expected = expected_value t key snapshot in
        if expected <> observed then
          record_alert t ~at ~txn ~session ~site ~snapshot ?mvcc_txn
            (Read_mismatch { key; observed; expected })
      end)
    reads

let check_inversions t tok ~at ~txn ~site ~snapshot ?mvcc_txn () =
  let check level floor =
    match floor with
    | Some (ts, earlier) when Timestamp.compare snapshot ts < 0 ->
      record_alert t ~at ~txn ~session:tok.tk_session ~site ~snapshot ?mvcc_txn
        (Inversion { level; earlier; floor = ts })
    | Some _ | None -> ()
  in
  check All_sessions tok.tk_global;
  check In_session tok.tk_session_floor;
  check After_update tok.tk_update_floor

let check_fence t tok ~at ~txn ~site ~snapshot fence =
  match fence with
  | None -> ()
  | Some { History.claim; read_at } ->
    let violation detail =
      record_alert t ~at ~txn ~session:tok.tk_session ~site ~snapshot
        (Fence_violation { detail })
    in
    (match claim with
    | Session.Exact ts ->
      if Timestamp.compare snapshot ts < 0 then
        violation
          (Format.asprintf "snapshot %a < exact fence %a" Timestamp.pp snapshot
             Timestamp.pp ts)
    | Session.Session_seq -> (
      match tok.tk_fence_floor with
      | Some floor when Timestamp.compare snapshot floor < 0 ->
        violation
          (Format.asprintf "snapshot %a < session fence floor %a" Timestamp.pp
             snapshot Timestamp.pp floor)
      | Some _ | None -> ())
    | Session.Max_age d -> (
      match t.clock with
      | None ->
        violation
          (Format.asprintf "Max_age %g claim but no commit clock to audit it" d)
      | Some c ->
        (* Safe to resolve now: the cutoff precedes the read, so commits
           appended to the clock after this instant cannot affect it. *)
        let hor = Session.clock_horizon c ~cutoff:(read_at -. d) in
        if Timestamp.compare snapshot hor < 0 then
          violation
            (Format.asprintf
               "snapshot %a < visibility horizon %a (age %g at read time %g)"
               Timestamp.pp snapshot Timestamp.pp hor d read_at)))

let end_read ?fence t tok ~id ~site ~now ~reads =
  unpin t tok.tk_serial;
  let snapshot = tok.tk_snapshot in
  validate_reads t ~at:now ~txn:id ~session:tok.tk_session ~site ~snapshot
    ~own_writes:[] reads;
  check_inversions t tok ~at:now ~txn:id ~site ~snapshot ();
  check_fence t tok ~at:now ~txn:id ~site ~snapshot fence;
  (* The floors this read raises for later transactions: a committed
     read-only transaction pins its snapshot (all levels except the
     updates-only PCSI floor), and a [Session_seq]-fenced one also raises
     its session's fence floor. *)
  bump_global t snapshot id;
  bump_floor t.session_floor tok.tk_session snapshot id;
  (match fence with
  | Some { History.claim = Session.Session_seq; _ } ->
    bump_fence_floor t tok.tk_session snapshot
  | Some _ | None -> ());
  note_state t

let end_update ?mvcc_txn t tok ~id ~now ~commit ~snapshot ~reads =
  unpin t tok.tk_serial;
  match commit with
  | None ->
    (* Aborted: pins nothing, checks nothing (the definitions quantify over
       committed transactions; the post-hoc checker never sees this
       transaction in the simulator either). *)
    note_state t
  | Some (commit_ts, writes) ->
    if Timestamp.compare commit_ts t.last_commit_ts <= 0 then
      invalid_arg "Watchdog.end_update: commits must arrive in commit order";
    validate_reads t ~at:now ~txn:id ~session:tok.tk_session ~site:"primary"
      ~snapshot ?mvcc_txn ~own_writes:writes reads;
    check_inversions t tok ~at:now ~txn:id ~site:"primary" ~snapshot ?mvcc_txn
      ();
    bump_global t commit_ts id;
    bump_floor t.session_floor tok.tk_session commit_ts id;
    bump_floor t.update_floor tok.tk_session commit_ts id;
    bump_fence_floor t tok.tk_session commit_ts;
    t.last_commit_ts <- commit_ts;
    if writes <> [] then begin
      List.iter
        (fun { Wal.key; value } ->
          let c =
            match Hashtbl.find_opt t.chains key with
            | Some c -> c
            | None ->
              let c = chain_create () in
              Hashtbl.replace t.chains key c;
              c
          in
          chain_append c commit_ts value;
          t.live_versions <- t.live_versions + 1)
        writes;
      Queue.push (commit_ts, writes) t.unretired
    end;
    note_state t

(* --- Results ---------------------------------------------------------------- *)

let alerts t =
  List.sort
    (fun a b ->
      match Float.compare a.at b.at with 0 -> Int.compare a.txn b.txn | c -> c)
    t.alert_log

let verdict t =
  let total = t.n_read + t.n_inv_all + t.n_inv_sess + t.n_inv_upd + t.n_fence in
  {
    read_mismatches = t.n_read;
    v_inversions_all = t.n_inv_all;
    v_inversions_in_session = t.n_inv_sess;
    v_inversions_after_update = t.n_inv_upd;
    fence_failures = t.n_fence;
    alerts_total = total;
    alerts_dropped = total - t.alert_log_len;
  }

let satisfies t g =
  t.n_read = 0 && t.n_fence = 0
  &&
  match g with
  | Session.Weak -> true
  | Session.Prefix_consistent -> t.n_inv_upd = 0
  | Session.Strong_session -> t.n_inv_sess = 0
  | Session.Strong -> t.n_inv_all = 0

(* --- Rendering -------------------------------------------------------------- *)

let level_name = function
  | All_sessions -> "all-sessions"
  | In_session -> "in-session"
  | After_update -> "after-update"

let value_str = function Some v -> v | None -> "<none>"

let pp_kind ppf = function
  | Read_mismatch { key; observed; expected } ->
    Format.fprintf ppf "read %s = %s but primary state has %s" key
      (value_str observed) (value_str expected)
  | Inversion { level; earlier; floor } ->
    Format.fprintf ppf "inversion (%s): snapshot behind txn %d's state %a"
      (level_name level) earlier Timestamp.pp floor
  | Fence_violation { detail } -> Format.fprintf ppf "fence violated: %s" detail

let pp_alert ppf a =
  Format.fprintf ppf "[%.3f] txn %d (session %s at %s, snapshot %a): %a" a.at
    a.txn a.session a.site Timestamp.pp a.snapshot pp_kind a.kind

let kind_json = function
  | Read_mismatch { key; observed; expected } ->
    [
      ("kind", Json.Str "read_mismatch");
      ("key", Json.Str key);
      ( "observed",
        match observed with Some v -> Json.Str v | None -> Json.Null );
      ( "expected",
        match expected with Some v -> Json.Str v | None -> Json.Null );
    ]
  | Inversion { level; earlier; floor } ->
    [
      ("kind", Json.Str "inversion");
      ("level", Json.Str (level_name level));
      ("earlier", Json.Num (float_of_int earlier));
      ("floor", Json.Num (float_of_int floor));
    ]
  | Fence_violation { detail } ->
    [ ("kind", Json.Str "fence_violation"); ("detail", Json.Str detail) ]

let alert_json a =
  Json.Obj
    ([
       ("at", Json.Num a.at);
       ("txn", Json.Num (float_of_int a.txn));
       ("session", Json.Str a.session);
       ("site", Json.Str a.site);
       ("snapshot", Json.Num (float_of_int a.snapshot));
       ( "trace",
         Json.Arr
           (List.map
              (fun e -> Json.Str (Format.asprintf "%a" Lineage.pp_event e))
              a.trace) );
     ]
    @ kind_json a.kind)

let report_json t =
  let v = verdict t in
  Json.sort_keys
    (Json.Obj
       [
         ( "verdict",
           Json.Obj
             [
               ("read_mismatches", Json.Num (float_of_int v.read_mismatches));
               ("inversions_all", Json.Num (float_of_int v.v_inversions_all));
               ( "inversions_in_session",
                 Json.Num (float_of_int v.v_inversions_in_session) );
               ( "inversions_after_update",
                 Json.Num (float_of_int v.v_inversions_after_update) );
               ("fence_failures", Json.Num (float_of_int v.fence_failures));
               ("alerts_total", Json.Num (float_of_int v.alerts_total));
               ("alerts_dropped", Json.Num (float_of_int v.alerts_dropped));
             ] );
         ("state_size", Json.Num (float_of_int (state_size t)));
         ("peak_state", Json.Num (float_of_int t.peak));
         ("live_versions", Json.Num (float_of_int t.live_versions));
         ("retired_versions", Json.Num (float_of_int t.retired_versions));
         ("horizon", Json.Num (float_of_int t.horizon));
         ("alerts", Json.Arr (List.map alert_json (alerts t)));
       ])
