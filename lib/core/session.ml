open Lsr_storage

type guarantee =
  | Weak
  | Prefix_consistent
  | Strong_session
  | Strong

let guarantee_name = function
  | Weak -> "ALG-WEAK-SI"
  | Prefix_consistent -> "ALG-PCSI"
  | Strong_session -> "ALG-STRONG-SESSION-SI"
  | Strong -> "ALG-STRONG-SI"

let pp_guarantee ppf g = Format.pp_print_string ppf (guarantee_name g)
let all_guarantees = [ Strong_session; Weak; Strong ]

type t = {
  guarantee : guarantee;
  seqs : (string, Timestamp.t) Hashtbl.t;
  read_floors : (string, Timestamp.t) Hashtbl.t;
}

let create guarantee =
  { guarantee; seqs = Hashtbl.create 64; read_floors = Hashtbl.create 64 }

let guarantee t = t.guarantee

let global_label = "<global>"

let effective_label t label =
  match t.guarantee with
  | Strong -> global_label
  | Weak | Prefix_consistent | Strong_session -> label

let lookup tbl label =
  Option.value ~default:Timestamp.zero (Hashtbl.find_opt tbl label)

let seq t label = lookup t.seqs (effective_label t label)
let read_floor t label = lookup t.read_floors (effective_label t label)

let raise_to tbl label ts =
  if Timestamp.compare ts (lookup tbl label) > 0 then Hashtbl.replace tbl label ts

let note_update_commit t ~label ~commit_ts =
  raise_to t.seqs (effective_label t label) commit_ts

let note_read t ~label ~snapshot =
  match t.guarantee with
  | Strong_session | Strong ->
    raise_to t.read_floors (effective_label t label) snapshot
  | Weak | Prefix_consistent -> ()

let required_seq t ~label =
  match t.guarantee with
  | Weak -> Timestamp.zero
  | Prefix_consistent -> seq t label
  | Strong_session | Strong -> max (seq t label) (read_floor t label)

let may_read t ~label ~seq_dbsec =
  Timestamp.compare (required_seq t ~label) seq_dbsec <= 0
