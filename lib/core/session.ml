open Lsr_storage

type guarantee =
  | Weak
  | Prefix_consistent
  | Strong_session
  | Strong

let guarantee_name = function
  | Weak -> "ALG-WEAK-SI"
  | Prefix_consistent -> "ALG-PCSI"
  | Strong_session -> "ALG-STRONG-SESSION-SI"
  | Strong -> "ALG-STRONG-SI"

let pp_guarantee ppf g = Format.pp_print_string ppf (guarantee_name g)
let all_guarantees = [ Strong_session; Weak; Strong ]

(* --- Freshness fences -------------------------------------------------------- *)

type fence =
  | Exact of Timestamp.t
  | Max_age of float
  | Session_seq

let fence_to_string = function
  | Exact ts -> Printf.sprintf "exact:%d" ts
  | Max_age d -> Printf.sprintf "age:%g" d
  | Session_seq -> "session"

let fence_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "bad fence %S (expected exact:<ts> | age:<delta> | session)" s)
  in
  match String.index_opt s ':' with
  | None -> if s = "session" then Ok Session_seq else fail ()
  | Some i -> (
    let kind = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "exact" -> (
      match int_of_string_opt arg with
      | Some ts when ts >= 0 -> Ok (Exact ts)
      | _ -> fail ())
    | "age" -> (
      match float_of_string_opt arg with
      | Some d when Float.is_finite d && d >= 0. -> Ok (Max_age d)
      | _ -> fail ())
    | _ -> fail ())

let pp_fence ppf f = Format.pp_print_string ppf (fence_to_string f)

(* The primary's commit clock: an append-only monotone map from commit
   timestamp to the virtual time it committed at, answering "which commits
   are older than [cutoff]?" by binary search. Both coordinates are
   monotone, so parallel arrays suffice. *)
type clock = {
  mutable cl_ts : Timestamp.t array;
  mutable cl_at : float array;
  mutable cl_len : int;
}

let clock_create () =
  { cl_ts = Array.make 64 Timestamp.zero; cl_at = Array.make 64 0.; cl_len = 0 }

let clock_note c ~commit_ts ~at =
  if c.cl_len > 0 then begin
    let last_ts = c.cl_ts.(c.cl_len - 1) and last_at = c.cl_at.(c.cl_len - 1) in
    if Timestamp.compare commit_ts last_ts <= 0 then
      invalid_arg "Session.clock_note: commit timestamps must be monotone";
    if at < last_at then
      invalid_arg "Session.clock_note: commit times must be monotone"
  end;
  if c.cl_len = Array.length c.cl_ts then begin
    let ts = Array.make (2 * c.cl_len) Timestamp.zero in
    let at = Array.make (2 * c.cl_len) 0. in
    Array.blit c.cl_ts 0 ts 0 c.cl_len;
    Array.blit c.cl_at 0 at 0 c.cl_len;
    c.cl_ts <- ts;
    c.cl_at <- at
  end;
  c.cl_ts.(c.cl_len) <- commit_ts;
  c.cl_at.(c.cl_len) <- at;
  c.cl_len <- c.cl_len + 1

(* Largest commit timestamp whose commit time is <= cutoff (zero if none):
   a snapshot at least this fresh misses no commit older than the cutoff. *)
let clock_horizon c ~cutoff =
  let lo = ref 0 and hi = ref c.cl_len in
  (* Invariant: entries < !lo have at <= cutoff, entries >= !hi have at > cutoff. *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if c.cl_at.(mid) <= cutoff then lo := mid + 1 else hi := mid
  done;
  if !lo = 0 then Timestamp.zero else c.cl_ts.(!lo - 1)

let clock_time_of c ts =
  let lo = ref 0 and hi = ref c.cl_len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Timestamp.compare c.cl_ts.(mid) ts < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo < c.cl_len && Timestamp.equal c.cl_ts.(!lo) ts then Some c.cl_at.(!lo)
  else None

let clock_len c = c.cl_len

type t = {
  guarantee : guarantee;
  seqs : (string, Timestamp.t) Hashtbl.t;
  read_floors : (string, Timestamp.t) Hashtbl.t;
}

let create guarantee =
  { guarantee; seqs = Hashtbl.create 64; read_floors = Hashtbl.create 64 }

let guarantee t = t.guarantee

let global_label = "<global>"

let effective_label t label =
  match t.guarantee with
  | Strong -> global_label
  | Weak | Prefix_consistent | Strong_session -> label

let lookup tbl label =
  Option.value ~default:Timestamp.zero (Hashtbl.find_opt tbl label)

let seq t label = lookup t.seqs (effective_label t label)
let read_floor t label = lookup t.read_floors (effective_label t label)

let raise_to tbl label ts =
  if Timestamp.compare ts (lookup tbl label) > 0 then Hashtbl.replace tbl label ts

let note_update_commit t ~label ~commit_ts =
  raise_to t.seqs (effective_label t label) commit_ts

let note_read ?fence t ~label ~snapshot =
  match (t.guarantee, fence) with
  | (Strong_session | Strong), _ | _, Some Session_seq ->
    (* A [Session_seq] fence promises session-monotone snapshots even when
       the ambient guarantee would not track them — exactly what makes it
       reduce to ALG-STRONG-SESSION-SI. *)
    raise_to t.read_floors (effective_label t label) snapshot
  | (Weak | Prefix_consistent), (None | Some (Exact _ | Max_age _)) -> ()

let guarantee_required_seq t ~label =
  match t.guarantee with
  | Weak -> Timestamp.zero
  | Prefix_consistent -> seq t label
  | Strong_session | Strong -> max (seq t label) (read_floor t label)

let fence_threshold t ?clock ?now ~label fence =
  match fence with
  | Exact ts -> ts
  | Session_seq -> max (seq t label) (read_floor t label)
  | Max_age d -> (
    match (clock, now) with
    | Some c, Some now -> clock_horizon c ~cutoff:(now -. d)
    | _ ->
      invalid_arg "Session.fence_threshold: Max_age needs ~clock and ~now")

let required_seq ?fence ?clock ?now t ~label =
  let base = guarantee_required_seq t ~label in
  match fence with
  | None -> base
  | Some f -> max base (fence_threshold t ?clock ?now ~label f)

let may_read ?fence ?clock ?now t ~label ~seq_dbsec =
  Timestamp.compare (required_seq ?fence ?clock ?now t ~label) seq_dbsec <= 0
