open Lsr_storage

let default_ticket = "$ticket$"

let guard ?(ticket = default_ticket) db txn =
  let current =
    match Mvcc.read db txn ticket with
    | None -> 0
    | Some v -> ( match int_of_string_opt v with Some n -> n | None -> 0)
  in
  Mvcc.write db txn ticket (Some (string_of_int (current + 1)))

let run ?(ticket = default_ticket) ?(max_attempts = 10) db body =
  let rec attempt n =
    if n > max_attempts then Error max_attempts
    else begin
      let txn = Mvcc.begin_txn db in
      let value =
        try body txn
        with exn ->
          Mvcc.abort db txn;
          raise exn
      in
      guard ~ticket db txn;
      match Mvcc.commit db txn with
      | Mvcc.Committed ts -> Ok (value, ts)
      | Mvcc.Aborted _ -> attempt (n + 1)
    end
  in
  attempt 1

let ticket_value ?(ticket = default_ticket) db =
  match Mvcc.read_at db (Mvcc.latest_commit_ts db) ticket with
  | None -> 0
  | Some v -> ( match int_of_string_opt v with Some n -> n | None -> 0)
