open Lsr_storage

type kind =
  | Read_only
  | Update

type txn = {
  id : int;
  session : string;
  kind : kind;
  site : string;
  first_op : int;
  finished : int;
  snapshot : Timestamp.t;
  commit_ts : Timestamp.t option;
  reads : (string * string option) list;
  writes : Wal.update list;
}

type t = {
  mutable events : int;
  mutable ids : int;
  mutable txns : txn list;  (* newest first *)
}

let create () = { events = 0; ids = 0; txns = [] }

let tick t =
  t.events <- t.events + 1;
  t.events

let fresh_id t =
  t.ids <- t.ids + 1;
  t.ids

let add t txn = t.txns <- txn :: t.txns
let transactions t = List.rev t.txns
let length t = List.length t.txns

let pp_txn ppf txn =
  Format.fprintf ppf "T%d[%s;%s;%s;ops %d..%d;snap %a%a]" txn.id txn.session
    (match txn.kind with Read_only -> "ro" | Update -> "up")
    txn.site txn.first_op txn.finished Timestamp.pp txn.snapshot
    (fun ppf -> function
      | None -> ()
      | Some ts -> Format.fprintf ppf ";commit %a" Timestamp.pp ts)
    txn.commit_ts
