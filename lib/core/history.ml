open Lsr_storage

type kind =
  | Read_only
  | Update

type fence_claim = {
  claim : Session.fence;
  read_at : float;  (* virtual time the fenced read resolved its horizon *)
}

type txn = {
  id : int;
  session : string;
  kind : kind;
  site : string;
  first_op : int;
  finished : int;
  snapshot : Timestamp.t;
  commit_ts : Timestamp.t option;
  reads : (string * string option) list;
  writes : Wal.update list;
  fence : fence_claim option;
}

type t = {
  mutable events : int;
  mutable ids : int;
  mutable txns : txn list;  (* newest first *)
}

let create () = { events = 0; ids = 0; txns = [] }

let tick t =
  t.events <- t.events + 1;
  t.events

let now t = t.events

let fresh_id t =
  t.ids <- t.ids + 1;
  t.ids

let add t txn = t.txns <- txn :: t.txns
let transactions t = List.rev t.txns
let length t = List.length t.txns

let pp_txn ppf txn =
  Format.fprintf ppf "T%d[%s;%s;%s;ops %d..%d;snap %a%a%a]" txn.id txn.session
    (match txn.kind with Read_only -> "ro" | Update -> "up")
    txn.site txn.first_op txn.finished Timestamp.pp txn.snapshot
    (fun ppf -> function
      | None -> ()
      | Some ts -> Format.fprintf ppf ";commit %a" Timestamp.pp ts)
    txn.commit_ts
    (fun ppf -> function
      | None -> ()
      | Some f -> Format.fprintf ppf ";fence %a" Session.pp_fence f.claim)
    txn.fence
