(** The primary site: executes every update transaction under its local
    strong-SI concurrency control and exposes its logical log to the
    propagator.

    Read-only transactions never run here (the router sends them to
    secondaries); update transactions forwarded from secondaries run to
    completion and leave start / update / commit-or-abort records in the
    site's {!Lsr_storage.Wal}. *)

open Lsr_storage

type t

val create : ?name:string -> unit -> t
val db : t -> Mvcc.t
val wal : t -> Wal.t

(** Result of an update transaction at the primary. *)
type 'a outcome =
  | Committed of {
      value : 'a;
      txn : int;
          (** the primary MVCC transaction id — the trace id every
              propagated record (and lineage event) carries *)
      commit_ts : Timestamp.t;
      snapshot : Timestamp.t;
      writes : Wal.update list;  (** the effective writeset installed *)
    }
  | Aborted of Mvcc.abort_reason

(** [execute t body] runs [body db txn] inside a fresh transaction and
    commits it. [force_abort] aborts at commit instead (modelling the
    paper's [abort_prob]); the abort record still reaches the log. [snapshot]
    in the outcome is the primary commit timestamp of the state the
    transaction saw. Exceptions from [body] abort the transaction and are
    re-raised. *)
val execute : t -> ?force_abort:bool -> (Mvcc.t -> Mvcc.txn -> 'a) -> 'a outcome

(** Timestamp of the most recent primary commit. *)
val latest_commit_ts : t -> Timestamp.t
