(** Detectors for the SQL phenomena P0–P5 of the paper's appendix, over
    abstract operation traces.

    Traces record the values transactions observed and wrote, so detection is
    semantic: a trace is flagged only when the anomaly actually manifests
    (e.g. a lost update requires both transactions to commit). Tests use
    this in both directions — histories produced by the {!Lsr_storage.Mvcc}
    engine must be free of P0–P4, while hand-built textbook histories must be
    flagged, including the write skew (P5) that SI admits. *)

type op =
  | Begin of int
  | Read of { txn : int; key : string; value : string option }
      (** a read and the value it observed *)
  | Pred_read of { txn : int; pred : string; result : string list }
      (** a search-condition read and the keys it matched *)
  | Write of { txn : int; key : string; value : string option; preds : string list }
      (** a (buffered) write; [preds] are the predicates whose result set it
          changes when installed *)
  | Commit of int
  | Abort of int

type history = op list

(** A witnessing pair of transactions [(t1, t2)], numbered as in Definitions
    A.1–A.6 of the paper. *)
type witness = int * int

val dirty_writes : history -> witness list
(** P0: [t2] overwrote [t1]'s uncommitted write and both committed. *)

val dirty_reads : history -> witness list
(** P1: [t2] observed a value that was, at that point, only an uncommitted
    write of [t1]. *)

val fuzzy_reads : history -> witness list
(** P2: [t1] read the same key twice and saw different values because [t2]
    committed a write in between. *)

val phantoms : history -> witness list
(** P3: [t1] evaluated the same predicate twice with different result sets
    because [t2] committed a matching insert/delete in between. *)

val lost_updates : history -> witness list
(** P4: [t1] read a key, [t2] then committed a write to it, and [t1]
    (still using its earlier read) wrote the key and committed. *)

val write_skews : history -> witness list
(** P5: committed concurrent transactions with disjoint write sets, each
    reading something the other wrote. *)

(** True when none of P0–P4 occur (the anomalies SI excludes). *)
val si_safe : history -> bool

val pp_op : Format.formatter -> op -> unit
