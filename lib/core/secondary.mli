(** Secondary-site refresh machinery — Algorithms 3.2 and 3.3.

    A secondary holds a full database copy, a FIFO {e update queue} of
    propagated records, a FIFO {e pending queue} of primary commit
    timestamps, and a set of {e applicators}, each installing one refresh
    transaction.

    The refresher consumes the update queue:
    - a {e start} record blocks until the pending queue is empty, then opens
      the refresh transaction (this enforces relationships 1 and 2 of §3.1:
      a refresh transaction starts only after every refresh transaction whose
      primary counterpart committed before this one started has committed
      locally);
    - a {e commit} record appends the primary commit timestamp to the pending
      queue and hands the update list to an applicator;
    - an {e abort} record discards the refresh transaction.

    An applicator executes its transaction's updates (concurrently with other
    applicators), then waits until its commit timestamp reaches the head of
    the pending queue before committing — enforcing relationship 3 (local
    commits in primary commit order). After committing it advances
    [seq(DBsec)], the sequence number used by ALG-STRONG-SESSION-SI.

    The module is a pure state machine: each transition is a [*_step]
    function, so the embedded system can drain it synchronously while the
    simulator interleaves steps under virtual time. *)

open Lsr_storage

type t

exception Refresh_conflict of { txn : int; key : string }
(** Raised if a refresh transaction fails first-committer-wins locally. The
    propagation/refresh ordering rules make this impossible (Theorem 3.1);
    raising loudly turns any protocol bug into a test failure. *)

(** [create ~name ()] is a fresh secondary with an empty database copy.
    [on_refresh_commit] fires after each refresh transaction commits, with
    the primary commit timestamp just installed (used to wake blocked
    read-only transactions). [obs] receives per-site counters and queue-depth
    gauges named [<name>.refresh_started/committed/aborted],
    [<name>.update_queue_depth] and [<name>.pending_depth]; the default
    {!Lsr_obs.Obs.null} makes every bump a no-op. [lineage] receives
    [Enqueued] (commit record entered the update queue), [Refresh_started]
    and [Refresh_committed] events tagged with this site's [name]; [flight]
    records the same three stages into the bounded black box. *)
val create :
  ?name:string ->
  ?obs:Lsr_obs.Obs.t ->
  ?lineage:Lsr_obs.Lineage.t ->
  ?flight:Lsr_obs.Flight.t ->
  ?on_refresh_commit:(Timestamp.t -> unit) ->
  unit ->
  t

(** [create_from backup] is a secondary whose database copy is restored from
    a serialized primary state ({!Lsr_storage.Mvcc.serialize}) — the §3.4
    recovery path. [seq(DBsec)] still starts at zero; reseed it with
    {!reseed_seq}. *)
val create_from :
  ?name:string ->
  ?obs:Lsr_obs.Obs.t ->
  ?lineage:Lsr_obs.Lineage.t ->
  ?flight:Lsr_obs.Flight.t ->
  ?on_refresh_commit:(Timestamp.t -> unit) ->
  string ->
  t

(** The local database copy. *)
val db : t -> Mvcc.t

(** The site name given at creation (tags this site's lineage events). *)
val name : t -> string

(** [enqueue t record] appends a propagated record to the update queue
    (records must arrive in primary log order; the channel is FIFO). *)
val enqueue : t -> Txn_record.t -> unit

(** [seq_dbsec t] is the primary commit timestamp of the latest refresh
    transaction committed here — the state of this copy "in terms of the
    primary database" (§4). *)
val seq_dbsec : t -> Timestamp.t

(** [reseed_seq t ts] reinitializes [seq(DBsec)] after recovery from a
    database copy whose state corresponds to primary timestamp [ts] (§4's
    dummy-transaction recovery). *)
val reseed_seq : t -> Timestamp.t -> unit

(** {2 Refresher (Algorithm 3.2)} *)

type refresher_outcome =
  | Started of int  (** opened the refresh transaction for this primary txn *)
  | Dispatched of applicator
      (** commit record consumed; an applicator now owns the refresh txn *)
  | Aborted of int  (** abort record consumed *)
  | Blocked_on_pending
      (** head is a start record but the pending queue is not empty *)
  | Idle  (** update queue empty *)

and applicator

(** One refresher iteration: examine the head of the update queue. *)
val refresher_step : t -> refresher_outcome

(** {2 Applicator (Algorithm 3.3)} *)

type applicator_outcome =
  | Applied of Wal.update  (** executed one update inside the refresh txn *)
  | Waiting_commit
      (** all updates executed; commit record not yet at pending-queue head *)
  | Committed of Timestamp.t
      (** refresh transaction committed; value is the primary commit ts *)
  | Done  (** already committed earlier *)

val applicator_step : t -> applicator -> applicator_outcome

(** Primary transaction id and commit timestamp an applicator installs. *)
val applicator_txn : applicator -> int

val applicator_commit_ts : applicator -> Timestamp.t

(** Local start timestamp of the refresh transaction (issued by this
    secondary's own concurrency control when the start record was
    processed). Lets tests verify relationships 1 and 2 of §3.1 directly. *)
val applicator_local_start : applicator -> Timestamp.t

(** Applicators dispatched but not yet committed. *)
val active_applicators : t -> applicator list

(** {2 Synchronous drain (embedded mode)} *)

(** [drain t] runs refresher and applicator steps until no progress is
    possible (update queue empty or waiting for records not yet received).
    Returns the number of refresh transactions committed. *)
val drain : t -> int

(** {2 Introspection} *)

val update_queue_length : t -> int
val pending_queue_length : t -> int

(** Head of the update queue, without consuming it (the simulator inspects
    abort records for their wasted-work payload before stepping). *)
val peek_update : t -> Txn_record.t option

(** Head of the pending queue: the primary commit timestamp that must commit
    locally next. *)
val pending_head : t -> Timestamp.t option

(** Pending queue contents, head first (primary commit timestamps). *)
val pending_timestamps : t -> Timestamp.t list
