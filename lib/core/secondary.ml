open Lsr_storage

exception Refresh_conflict of { txn : int; key : string }

type applicator_phase =
  | Applying of Wal.update list  (* updates not yet executed *)
  | Awaiting_commit
  | Committed_phase

type applicator = {
  primary_txn : int;
  commit_ts : Timestamp.t;
  refresh : Mvcc.txn;
  mutable phase : applicator_phase;
}

type t = {
  db : Mvcc.t;
  update_queue : Txn_record.t Queue.t;
  pending : Timestamp.t Queue.t;
  (* Primary txn id -> open refresh transaction (started, not yet dispatched
     to an applicator). *)
  refresh_txns : (int, Mvcc.txn) Hashtbl.t;
  mutable applicators : applicator list;
  mutable seq_dbsec : Timestamp.t;
  on_refresh_commit : Timestamp.t -> unit;
}

type refresher_outcome =
  | Started of int
  | Dispatched of applicator
  | Aborted of int
  | Blocked_on_pending
  | Idle

let make db on_refresh_commit =
  {
    db;
    update_queue = Queue.create ();
    pending = Queue.create ();
    refresh_txns = Hashtbl.create 32;
    applicators = [];
    seq_dbsec = Timestamp.zero;
    on_refresh_commit;
  }

let create ?(name = "secondary") ?(on_refresh_commit = fun _ -> ()) () =
  make (Mvcc.create ~name ()) on_refresh_commit

let create_from ?(name = "secondary") ?(on_refresh_commit = fun _ -> ()) backup =
  make (Mvcc.restore ~name backup) on_refresh_commit

let db t = t.db
let enqueue t record = Queue.add record t.update_queue
let seq_dbsec t = t.seq_dbsec
let reseed_seq t ts = t.seq_dbsec <- ts

let refresher_step t =
  match Queue.peek_opt t.update_queue with
  | None -> Idle
  | Some (Txn_record.Start_rec { txn; _ }) ->
    if not (Queue.is_empty t.pending) then Blocked_on_pending
    else begin
      ignore (Queue.pop t.update_queue);
      let refresh = Mvcc.begin_txn t.db in
      Hashtbl.replace t.refresh_txns txn refresh;
      Started txn
    end
  | Some (Txn_record.Commit_rec { txn; commit_ts; updates }) ->
    ignore (Queue.pop t.update_queue);
    let refresh =
      match Hashtbl.find_opt t.refresh_txns txn with
      | Some r -> r
      | None ->
        (* Propagation is FIFO and starts precede commits in the log, so a
           missing refresh transaction is a protocol violation. *)
        invalid_arg
          (Printf.sprintf
             "Secondary.refresher_step: commit record for T%d without start" txn)
    in
    Hashtbl.remove t.refresh_txns txn;
    Queue.add commit_ts t.pending;
    let app =
      { primary_txn = txn; commit_ts; refresh; phase = Applying updates }
    in
    t.applicators <- t.applicators @ [ app ];
    Dispatched app
  | Some (Txn_record.Abort_rec { txn; wasted = _ }) ->
    ignore (Queue.pop t.update_queue);
    (match Hashtbl.find_opt t.refresh_txns txn with
    | Some refresh ->
      Hashtbl.remove t.refresh_txns txn;
      Mvcc.abort t.db refresh
    | None -> ());
    Aborted txn

type applicator_outcome =
  | Applied of Wal.update
  | Waiting_commit
  | Committed of Timestamp.t
  | Done

let applicator_step t app =
  match app.phase with
  | Committed_phase -> Done
  | Applying [] ->
    app.phase <- Awaiting_commit;
    Waiting_commit
  | Applying (update :: rest) ->
    Mvcc.write t.db app.refresh update.Wal.key update.Wal.value;
    app.phase <- (match rest with [] -> Awaiting_commit | _ -> Applying rest);
    Applied update
  | Awaiting_commit -> (
    match Queue.peek_opt t.pending with
    | Some head when Timestamp.equal head app.commit_ts -> (
      match Mvcc.commit t.db app.refresh with
      | Mvcc.Committed _local_ts ->
        ignore (Queue.pop t.pending);
        app.phase <- Committed_phase;
        t.seq_dbsec <- app.commit_ts;
        t.applicators <-
          List.filter (fun a -> a.primary_txn <> app.primary_txn) t.applicators;
        t.on_refresh_commit app.commit_ts;
        Committed app.commit_ts
      | Mvcc.Aborted (Mvcc.Write_conflict key) ->
        raise (Refresh_conflict { txn = app.primary_txn; key })
      | Mvcc.Aborted Mvcc.Forced ->
        raise (Refresh_conflict { txn = app.primary_txn; key = "<forced>" }))
    | Some _ | None -> Waiting_commit)

let applicator_txn app = app.primary_txn
let applicator_commit_ts app = app.commit_ts
let applicator_local_start app = Mvcc.start_ts app.refresh
let active_applicators t = t.applicators

let drain t =
  let committed = ref 0 in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    (* Run the refresher as far as it can go. *)
    let refresher_live = ref true in
    while !refresher_live do
      match refresher_step t with
      | Started _ | Dispatched _ | Aborted _ -> progressed := true
      | Blocked_on_pending | Idle -> refresher_live := false
    done;
    (* Give every active applicator one full pass. *)
    let apps = t.applicators in
    List.iter
      (fun app ->
        let live = ref true in
        while !live do
          match applicator_step t app with
          | Applied _ -> progressed := true
          | Committed _ ->
            incr committed;
            progressed := true;
            live := false
          | Waiting_commit | Done -> live := false
        done)
      apps
  done;
  !committed

let update_queue_length t = Queue.length t.update_queue
let pending_queue_length t = Queue.length t.pending
let peek_update t = Queue.peek_opt t.update_queue
let pending_head t = Queue.peek_opt t.pending
let pending_timestamps t = List.of_seq (Queue.to_seq t.pending)
