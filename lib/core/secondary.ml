open Lsr_storage

exception Refresh_conflict of { txn : int; key : string }

type applicator_phase =
  | Applying of Wal.update list  (* updates not yet executed *)
  | Awaiting_commit
  | Committed_phase

type applicator = {
  primary_txn : int;
  commit_ts : Timestamp.t;
  refresh : Mvcc.txn;
  mutable phase : applicator_phase;
}

type t = {
  name : string;
  db : Mvcc.t;
  update_queue : Txn_record.t Queue.t;
  pending : Timestamp.t Queue.t;
  (* Primary txn id -> open refresh transaction (started, not yet dispatched
     to an applicator). *)
  refresh_txns : (int, Mvcc.txn) Hashtbl.t;
  (* Dispatched, not yet committed, in dispatch order. Commits always remove
     the front (pending-queue order is dispatch order), so a queue keeps
     dispatch O(1) where a list append made long refresh backlogs O(n²). *)
  applicators : applicator Queue.t;
  mutable seq_dbsec : Timestamp.t;
  on_refresh_commit : Timestamp.t -> unit;
  (* Observability (no-ops unless an enabled registry is supplied). *)
  lineage : Lsr_obs.Lineage.t;
  flight : Lsr_obs.Flight.t;
  c_started : Lsr_obs.Obs.counter;
  c_committed : Lsr_obs.Obs.counter;
  c_aborted : Lsr_obs.Obs.counter;
  g_update_queue : Lsr_obs.Obs.gauge;
  g_pending : Lsr_obs.Obs.gauge;
}

type refresher_outcome =
  | Started of int
  | Dispatched of applicator
  | Aborted of int
  | Blocked_on_pending
  | Idle

let make ~name ~obs ~lineage ~flight db on_refresh_commit =
  let module Obs = Lsr_obs.Obs in
  let inst fmt suffix = Printf.sprintf fmt name suffix in
  {
    name;
    db;
    update_queue = Queue.create ();
    pending = Queue.create ();
    refresh_txns = Hashtbl.create 32;
    applicators = Queue.create ();
    seq_dbsec = Timestamp.zero;
    on_refresh_commit;
    lineage;
    flight;
    c_started = Obs.counter obs (inst "%s.refresh_%s" "started");
    c_committed = Obs.counter obs (inst "%s.refresh_%s" "committed");
    c_aborted = Obs.counter obs (inst "%s.refresh_%s" "aborted");
    g_update_queue = Obs.gauge obs (inst "%s.%s" "update_queue_depth");
    g_pending = Obs.gauge obs (inst "%s.%s" "pending_depth");
  }

let create ?(name = "secondary") ?(obs = Lsr_obs.Obs.null)
    ?(lineage = Lsr_obs.Lineage.null) ?(flight = Lsr_obs.Flight.null)
    ?(on_refresh_commit = fun _ -> ()) () =
  make ~name ~obs ~lineage ~flight (Mvcc.create ~name ()) on_refresh_commit

let create_from ?(name = "secondary") ?(obs = Lsr_obs.Obs.null)
    ?(lineage = Lsr_obs.Lineage.null) ?(flight = Lsr_obs.Flight.null)
    ?(on_refresh_commit = fun _ -> ()) backup =
  make ~name ~obs ~lineage ~flight (Mvcc.restore ~name backup) on_refresh_commit

let db t = t.db
let name t = t.name

let enqueue t record =
  Queue.add record t.update_queue;
  (if Lsr_obs.Lineage.enabled t.lineage then
     match record with
     | Txn_record.Commit_rec { txn; _ } ->
       Lsr_obs.Lineage.emit t.lineage ~site:t.name ~txn Lsr_obs.Lineage.Enqueued
     | Txn_record.Start_rec _ | Txn_record.Abort_rec _ -> ());
  (if Lsr_obs.Flight.enabled t.flight then
     match record with
     | Txn_record.Commit_rec { txn; _ } ->
       Lsr_obs.Flight.note_stage t.flight ~site:t.name ~txn
         Lsr_obs.Lineage.Enqueued
     | Txn_record.Start_rec _ | Txn_record.Abort_rec _ -> ());
  Lsr_obs.Obs.set_gauge t.g_update_queue
    (float_of_int (Queue.length t.update_queue))
let seq_dbsec t = t.seq_dbsec
let reseed_seq t ts = t.seq_dbsec <- ts

let refresher_step t =
  match Queue.peek_opt t.update_queue with
  | None -> Idle
  | Some (Txn_record.Start_rec { txn; _ }) ->
    if not (Queue.is_empty t.pending) then Blocked_on_pending
    else begin
      ignore (Queue.pop t.update_queue);
      Lsr_obs.Obs.set_gauge t.g_update_queue
        (float_of_int (Queue.length t.update_queue));
      let refresh = Mvcc.begin_txn t.db in
      Hashtbl.replace t.refresh_txns txn refresh;
      if Lsr_obs.Lineage.enabled t.lineage then
        Lsr_obs.Lineage.emit t.lineage ~site:t.name ~txn
          Lsr_obs.Lineage.Refresh_started;
      if Lsr_obs.Flight.enabled t.flight then
        Lsr_obs.Flight.note_stage t.flight ~site:t.name ~txn
          Lsr_obs.Lineage.Refresh_started;
      Lsr_obs.Obs.incr t.c_started;
      Started txn
    end
  | Some (Txn_record.Commit_rec { txn; commit_ts; updates }) ->
    ignore (Queue.pop t.update_queue);
    Lsr_obs.Obs.set_gauge t.g_update_queue
      (float_of_int (Queue.length t.update_queue));
    let refresh =
      match Hashtbl.find_opt t.refresh_txns txn with
      | Some r -> r
      | None ->
        (* Propagation is FIFO and starts precede commits in the log, so a
           missing refresh transaction is a protocol violation. *)
        invalid_arg
          (Printf.sprintf
             "Secondary.refresher_step: commit record for T%d without start" txn)
    in
    Hashtbl.remove t.refresh_txns txn;
    Queue.add commit_ts t.pending;
    Lsr_obs.Obs.set_gauge t.g_pending (float_of_int (Queue.length t.pending));
    let app =
      { primary_txn = txn; commit_ts; refresh; phase = Applying updates }
    in
    Queue.add app t.applicators;
    Dispatched app
  | Some (Txn_record.Abort_rec { txn; wasted = _ }) ->
    ignore (Queue.pop t.update_queue);
    Lsr_obs.Obs.set_gauge t.g_update_queue
      (float_of_int (Queue.length t.update_queue));
    (match Hashtbl.find_opt t.refresh_txns txn with
    | Some refresh ->
      Hashtbl.remove t.refresh_txns txn;
      Mvcc.abort t.db refresh
    | None -> ());
    Lsr_obs.Obs.incr t.c_aborted;
    Aborted txn

type applicator_outcome =
  | Applied of Wal.update
  | Waiting_commit
  | Committed of Timestamp.t
  | Done

let applicator_step t app =
  match app.phase with
  | Committed_phase -> Done
  | Applying [] ->
    app.phase <- Awaiting_commit;
    Waiting_commit
  | Applying (update :: rest) ->
    Mvcc.write t.db app.refresh update.Wal.key update.Wal.value;
    app.phase <- (match rest with [] -> Awaiting_commit | _ -> Applying rest);
    Applied update
  | Awaiting_commit -> (
    match Queue.peek_opt t.pending with
    | Some head when Timestamp.equal head app.commit_ts -> (
      match Mvcc.commit t.db app.refresh with
      | Mvcc.Committed _local_ts ->
        ignore (Queue.pop t.pending);
        Lsr_obs.Obs.set_gauge t.g_pending
          (float_of_int (Queue.length t.pending));
        app.phase <- Committed_phase;
        t.seq_dbsec <- app.commit_ts;
        (* Commits follow the pending queue, whose order is dispatch order,
           so the committing applicator is the front of the queue. Fall back
           to a linear rebuild if a future change ever breaks that. *)
        (match Queue.peek_opt t.applicators with
        | Some front when front == app -> ignore (Queue.pop t.applicators)
        | _ ->
          let keep =
            Queue.to_seq t.applicators
            |> Seq.filter (fun a -> a.primary_txn <> app.primary_txn)
            |> Queue.of_seq
          in
          Queue.clear t.applicators;
          Queue.transfer keep t.applicators);
        if Lsr_obs.Lineage.enabled t.lineage then
          Lsr_obs.Lineage.emit t.lineage ~site:t.name ~txn:app.primary_txn
            (Lsr_obs.Lineage.Refresh_committed { commit_ts = app.commit_ts });
        if Lsr_obs.Flight.enabled t.flight then
          Lsr_obs.Flight.note_stage t.flight ~site:t.name ~txn:app.primary_txn
            (Lsr_obs.Lineage.Refresh_committed { commit_ts = app.commit_ts });
        Lsr_obs.Obs.incr t.c_committed;
        t.on_refresh_commit app.commit_ts;
        Committed app.commit_ts
      | Mvcc.Aborted (Mvcc.Write_conflict key) ->
        raise (Refresh_conflict { txn = app.primary_txn; key })
      | Mvcc.Aborted Mvcc.Forced ->
        raise (Refresh_conflict { txn = app.primary_txn; key = "<forced>" }))
    | Some _ | None -> Waiting_commit)

let applicator_txn app = app.primary_txn
let applicator_commit_ts app = app.commit_ts
let applicator_local_start app = Mvcc.start_ts app.refresh
let active_applicators t = List.of_seq (Queue.to_seq t.applicators)

let drain t =
  let committed = ref 0 in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    (* Run the refresher as far as it can go. *)
    let refresher_live = ref true in
    while !refresher_live do
      match refresher_step t with
      | Started _ | Dispatched _ | Aborted _ -> progressed := true
      | Blocked_on_pending | Idle -> refresher_live := false
    done;
    (* Give every active applicator one full pass. *)
    let apps = active_applicators t in
    List.iter
      (fun app ->
        let live = ref true in
        while !live do
          match applicator_step t app with
          | Applied _ -> progressed := true
          | Committed _ ->
            incr committed;
            progressed := true;
            live := false
          | Waiting_commit | Done -> live := false
        done)
      apps
  done;
  !committed

let update_queue_length t = Queue.length t.update_queue
let pending_queue_length t = Queue.length t.pending
let peek_update t = Queue.peek_opt t.update_queue
let pending_head t = Queue.peek_opt t.pending
let pending_timestamps t = List.of_seq (Queue.to_seq t.pending)
