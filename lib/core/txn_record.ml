open Lsr_storage

type t =
  | Start_rec of { txn : int; start_ts : Timestamp.t }
  | Commit_rec of { txn : int; commit_ts : Timestamp.t; updates : Wal.update list }
  | Abort_rec of { txn : int; wasted : Wal.update list }

let txn = function
  | Start_rec { txn; _ } | Commit_rec { txn; _ } | Abort_rec { txn; _ } -> txn

let kind_name = function
  | Start_rec _ -> "start"
  | Commit_rec _ -> "commit"
  | Abort_rec _ -> "abort"

let pp ppf = function
  | Start_rec { txn; start_ts } ->
    Format.fprintf ppf "start(T%d)@%a" txn Timestamp.pp start_ts
  | Commit_rec { txn; commit_ts; updates } ->
    Format.fprintf ppf "commit(T%d)@%a[%d updates]" txn Timestamp.pp commit_ts
      (List.length updates)
  | Abort_rec { txn; wasted } ->
    Format.fprintf ppf "abort(T%d)[%d wasted]" txn (List.length wasted)
