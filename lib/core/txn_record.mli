(** Records propagated from the primary to the secondaries.

    These are exactly the messages of §3.2: start records are shipped as soon
    as they are seen in the primary's log (for propagation liveness), commit
    records carry the transaction's full update list and its primary commit
    timestamp, and abort records let secondaries discard the corresponding
    refresh transaction. *)

open Lsr_storage

type t =
  | Start_rec of { txn : int; start_ts : Timestamp.t }
  | Commit_rec of { txn : int; commit_ts : Timestamp.t; updates : Wal.update list }
  | Abort_rec of { txn : int; wasted : Wal.update list }
      (** [wasted] is empty under commit-time propagation; the eager
          ablation ships the aborted transaction's updates so secondaries
          can model executing and then discarding them. *)

val txn : t -> int

(** ["start"], ["commit"] or ["abort"] — the record tag alone, used by the
    fault channel to label lineage events without rendering payloads. *)
val kind_name : t -> string

val pp : Format.formatter -> t -> unit
