(** Transaction handle given to client code by {!System}.

    Wraps one open {!Lsr_storage.Mvcc} transaction and records every read and
    write into the run's {!History}, so finished executions can be checked
    against the SI definitions. Both raw key-value and relational
    ({!Lsr_storage.Row}) access are provided. *)

open Lsr_storage

type t

(** Used by {!System}; client code receives handles ready-made. [schema]
    maps table names to their indexed fields (see {!Lsr_storage.Table});
    tables not listed have no indexes. *)
val make : ?schema:(string * string list) list -> Mvcc.t -> Mvcc.txn -> t

val db : t -> Mvcc.t
val txn : t -> Mvcc.txn

(** {2 Key-value access (recorded)} *)

val get : t -> string -> string option
val put : t -> string -> string -> unit
val del : t -> string -> unit

(** {2 Relational access (recorded)} *)

val row_get : t -> table:string -> pk:string -> Row.t option
val row_put : t -> table:string -> pk:string -> Row.t -> unit
val row_del : t -> table:string -> pk:string -> unit

(** [row_update t ~table ~pk f] rewrites a row in place; false when absent. *)
val row_update : t -> table:string -> pk:string -> (Row.t -> Row.t) -> bool

val row_scan : t -> table:string -> where:(Row.t -> bool) -> (string * Row.t) list

(** [row_lookup t ~table ~field ~value] uses the table's secondary index
    (declared in the system schema).
    @raise Invalid_argument when the field is not indexed. *)
val row_lookup :
  t -> table:string -> field:string -> value:Row.scalar -> (string * Row.t) list

(** [row_range t ~table ~field ~lo ~hi] seeks the secondary index for rows
    whose [field] lies in the interval (see {!Table.range_lookup}); matched
    rows are recorded as reads, like {!row_lookup}.
    @raise Invalid_argument when the field is not indexed. *)
val row_range :
  t ->
  table:string ->
  field:string ->
  lo:(Row.scalar * bool) option ->
  hi:(Row.scalar * bool) option ->
  (string * Row.t) list

(** Indexed fields declared for a table in the system schema. *)
val indexed_fields : t -> table:string -> string list

(** {2 Recorded operations} *)

(** Reads observed so far (oldest first). *)
val reads : t -> (string * string option) list
