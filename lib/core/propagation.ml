open Lsr_storage

type t = {
  wal : Wal.t;
  mutable cursor : int;
  ship_aborted : bool;
  (* Per-transaction accumulated updates (newest first), per Algorithm 3.1's
     update lists. *)
  update_lists : (int, Wal.update list) Hashtbl.t;
  lineage : Lsr_obs.Lineage.t;
  flight : Lsr_obs.Flight.t;
  c_polls : Lsr_obs.Obs.counter;
  c_shipped : Lsr_obs.Obs.counter;
  g_in_flight : Lsr_obs.Obs.gauge;
}

let create ?from ?(ship_aborted = false) ?(obs = Lsr_obs.Obs.null)
    ?(lineage = Lsr_obs.Lineage.null) ?(flight = Lsr_obs.Flight.null) wal =
  let cursor = match from with Some o -> o | None -> Wal.length wal in
  {
    wal;
    cursor;
    ship_aborted;
    update_lists = Hashtbl.create 64;
    lineage;
    flight;
    c_polls = Lsr_obs.Obs.counter obs "propagation.polls";
    c_shipped = Lsr_obs.Obs.counter obs "propagation.records_shipped";
    g_in_flight = Lsr_obs.Obs.gauge obs "propagation.in_flight";
  }

let record_of_entry t entry =
  match entry with
  | Wal.Start { txn; ts } ->
    Hashtbl.replace t.update_lists txn [];
    Some (Txn_record.Start_rec { txn; start_ts = ts })
  | Wal.Update { txn; update } ->
    let sofar = Option.value ~default:[] (Hashtbl.find_opt t.update_lists txn) in
    Hashtbl.replace t.update_lists txn (update :: sofar);
    None
  | Wal.Commit { txn; ts } ->
    let accumulated =
      Option.value ~default:[] (Hashtbl.find_opt t.update_lists txn)
    in
    Hashtbl.remove t.update_lists txn;
    (* Squash to one update per key, last write wins, preserving first-write
       order: the refresh transaction re-executes these verbatim. *)
    let seen = Hashtbl.create 8 in
    let latest = Hashtbl.create 8 in
    List.iter
      (fun { Wal.key; value } ->
        if not (Hashtbl.mem latest key) then Hashtbl.add latest key value)
      accumulated;
    let updates =
      List.filter_map
        (fun { Wal.key; value = _ } ->
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some { Wal.key; value = Hashtbl.find latest key }
          end)
        (List.rev accumulated)
    in
    Some (Txn_record.Commit_rec { txn; commit_ts = ts; updates })
  | Wal.Abort { txn } ->
    let wasted =
      if t.ship_aborted then
        List.rev (Option.value ~default:[] (Hashtbl.find_opt t.update_lists txn))
      else []
    in
    Hashtbl.remove t.update_lists txn;
    Some (Txn_record.Abort_rec { txn; wasted })

let poll t =
  let entries, next = Wal.read_from t.wal t.cursor in
  t.cursor <- next;
  let records = List.filter_map (record_of_entry t) entries in
  if Lsr_obs.Lineage.enabled t.lineage then
    List.iter
      (fun record ->
        match record with
        | Txn_record.Start_rec { txn; _ } ->
          Lsr_obs.Lineage.emit t.lineage ~txn Lsr_obs.Lineage.Batched
        | Txn_record.Commit_rec { txn; updates; _ } ->
          Lsr_obs.Lineage.emit t.lineage ~txn
            (Lsr_obs.Lineage.Shipped { updates = List.length updates })
        | Txn_record.Abort_rec _ -> ())
      records;
  if Lsr_obs.Flight.enabled t.flight then
    List.iter
      (fun record ->
        match record with
        | Txn_record.Start_rec { txn; _ } ->
          Lsr_obs.Flight.note_stage t.flight ~txn Lsr_obs.Lineage.Batched
        | Txn_record.Commit_rec { txn; updates; _ } ->
          Lsr_obs.Flight.note_stage t.flight ~txn
            (Lsr_obs.Lineage.Shipped { updates = List.length updates })
        | Txn_record.Abort_rec _ -> ())
      records;
  Lsr_obs.Obs.incr t.c_polls;
  Lsr_obs.Obs.incr t.c_shipped ~by:(List.length records);
  Lsr_obs.Obs.set_gauge t.g_in_flight
    (float_of_int (Hashtbl.length t.update_lists));
  records

let position t = t.cursor
let in_flight t = Hashtbl.length t.update_lists
