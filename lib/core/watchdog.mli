(** Online consistency watchdog: streaming SI-anomaly detection with bounded
    memory.

    {!Checker} audits a fully recorded {!History} after the run; this module
    performs the same three audits {e while the run executes}, subscribing to
    the live event stream at exactly the points where [History] records
    transactions today:

    - {e weak-SI read validation}: every recorded read is checked against the
      primary state sequence at the reader's snapshot, answered from per-key
      committed-writer chains by binary search (the same pinned-version rule
      the checker's MVSG construction uses);
    - {e inversion floors}: the sorted sweep of {!Checker.inversions} becomes
      an O(1)-amortized floor update per commit — the maximal state pinned by
      any finished committed transaction is maintained globally, per session,
      and per session restricted to updates (the PCSI floor), and every
      transaction captures the three floors at its first operation;
    - {e fence audit}: the {!Checker.check_fences} wall-order session floor
      is maintained the same way, and [Exact]/[Max_age]/[Session_seq] claims
      are checked the moment the fenced read finishes.

    Violations surface immediately as typed {!alert}s (bounded log, per-kind
    counters, the offending update's {!Lsr_obs.Lineage} trace attached when a
    sink is recording).

    {b Bounded memory.} State below the global minimum secondary visibility
    horizon is retired continuously: once every secondary has refreshed past
    a committed version — and no in-flight transaction's snapshot pins it —
    the version folds into a per-key base value and its chain entry is
    dropped; session floors below the horizon are swept out, because no
    future snapshot can be older than the horizon at its own first operation.
    A run with the watchdog on and history recording {e off} verifies the
    same guarantees in O(active visibility window) memory instead of
    O(run length).

    {b Equivalence.} For every committed transaction the captured floors
    equal the post-hoc sweep's floors exactly, because the begin/end hooks
    fire adjacent to the same wall-order ticks [History] uses ([finished <
    first_op] iff the earlier transaction's end hook ran before the later
    one's begin hook) and ties keep the earlier witness, like
    {!Checker.inversions}. The differential suite in [test/test_watchdog.ml]
    checks verdict and alert-set equality against {!Checker.analyze} across
    fuzzed runs. Aborted transactions pin nothing and are never validated
    (the definitions quantify over committed transactions only). *)

open Lsr_storage

type t

(** Which inversion floor a violation was detected against — mirroring the
    three lists of {!Checker.report}. *)
type level =
  | All_sessions  (** {!Checker.report.inversions_all} (strong SI) *)
  | In_session  (** [inversions_in_session] (strong session SI) *)
  | After_update  (** [inversions_after_update] (PCSI) *)

type alert_kind =
  | Read_mismatch of {
      key : string;
      observed : string option;
      expected : string option;
    }
      (** A recorded read disagreed with the primary state sequence at the
          reader's snapshot. *)
  | Inversion of { level : level; earlier : int; floor : Timestamp.t }
      (** The transaction's snapshot is older than the maximal state pinned
          by committed transaction [earlier], which finished before this
          transaction's first operation. *)
  | Fence_violation of { detail : string }
      (** A fenced read's snapshot did not honour its freshness claim. *)

type alert = {
  at : float;  (** virtual time of detection (the transaction's finish) *)
  txn : int;  (** the offending transaction's history id *)
  session : string;
  site : string;
  snapshot : Timestamp.t;
  kind : alert_kind;
  trace : Lsr_obs.Lineage.event list;
      (** the offending update's lineage journey so far, when a sink is
          recording ([[]] for reads and disabled sinks) *)
}

val pp_alert : Format.formatter -> alert -> unit

(** Per-kind violation counts — the online mirror of {!Checker.report}
    (counting alerts, including any dropped beyond the bounded log). *)
type verdict = {
  read_mismatches : int;
  v_inversions_all : int;
  v_inversions_in_session : int;
  v_inversions_after_update : int;
  fence_failures : int;
  alerts_total : int;
  alerts_dropped : int;  (** alerts beyond the bounded log's capacity *)
}

(** [create ~sites ()] is a fresh watchdog for a system with [sites]
    secondaries. [alert_cap] bounds the retained alert log (default 256;
    counters keep exact totals past the cap). [clock] is the primary commit
    clock used to audit [Max_age] claims — as in {!Checker.check_fences}, a
    [Max_age] claim without a clock is itself a violation. [obs] receives
    [watchdog.alerts.*] counters and a [watchdog.state_size] gauge;
    [lineage], when recording, supplies the journey attached to update
    alerts. [on_alert] fires synchronously on {e every} alert — including
    ones the bounded log drops past [alert_cap] — with the same alert value
    the log retains; it is the flight recorder's trigger hook, and like any
    observer it must not feed back into the run. *)
val create :
  ?alert_cap:int ->
  ?on_alert:(alert -> unit) ->
  ?obs:Lsr_obs.Obs.t ->
  ?lineage:Lsr_obs.Lineage.t ->
  ?clock:Session.clock ->
  sites:int ->
  unit ->
  t

(** {2 Event stream}

    One token per transaction: obtained at the transaction's first operation
    (where [History] takes its [first_op] tick — the token captures the
    inversion and fence floors at that instant and pins the retirement
    horizon), consumed exactly once at its finish. Hooks must be called with
    no scheduler yield between the corresponding [History] tick and the
    hook. *)

type token

(** [begin_read t ~session ~snapshot] — a read-only transaction starts with
    [snapshot] (its secondary's seq(DBsec)). Pins the horizon at
    [snapshot]. *)
val begin_read : t -> session:string -> snapshot:Timestamp.t -> token

(** [begin_update t ~session] — an update transaction starts at the primary.
    Pins the horizon at the newest commit seen so far (a lower bound for any
    snapshot a retrying attempt can observe). *)
val begin_update : t -> session:string -> token

(** [end_read t token ~id ~site ~now ?fence ~reads] — the read-only
    transaction finished: validate its reads, check the captured inversion
    floors, audit the fence claim, then raise the floors it pins (its
    snapshot; also the session fence floor for a [Session_seq] claim). *)
val end_read :
  ?fence:History.fence_claim ->
  t ->
  token ->
  id:int ->
  site:string ->
  now:float ->
  reads:(string * string option) list ->
  unit

(** [end_update t token ~id ~now ~commit ~snapshot ~reads ?mvcc_txn] — the
    update transaction finished. [commit = Some (commit_ts, writes)]:
    validate reads (own-written keys excluded), check the captured floors,
    raise all floors to [commit_ts], and append the writes to the per-key
    version chains (commits must arrive in commit-timestamp order).
    [commit = None]: the transaction aborted — it pins nothing, nothing is
    checked (matching the checker, which quantifies over committed
    transactions), the token only releases its horizon pin. [mvcc_txn] is
    the primary MVCC transaction id, used to attach the lineage journey to
    any alert. *)
val end_update :
  ?mvcc_txn:int ->
  t ->
  token ->
  id:int ->
  now:float ->
  commit:(Timestamp.t * Wal.update list) option ->
  snapshot:Timestamp.t ->
  reads:(string * string option) list ->
  unit

(** [note_refresh t ~site ~seq] — secondary [site] committed a refresh
    transaction, advancing its seq(DBsec) to [seq] (wire to
    {!Secondary.create}'s [on_refresh_commit]). Advances the retirement
    horizon and retires versions and session floors below it. *)
val note_refresh : t -> site:int -> seq:Timestamp.t -> unit

(** {2 Results} *)

(** Retained alerts sorted by (virtual time, txn id) — deterministic for a
    deterministic run. *)
val alerts : t -> alert list

val verdict : t -> verdict

(** [satisfies t g] mirrors {!Checker.satisfies}: no read mismatches, no
    fence failures, and no inversions at the level [g] promises. *)
val satisfies : t -> Session.guarantee -> bool

(** {2 Introspection} *)

(** Current tracked state: live chain versions + unretired commits + session
    floors + active transaction pins (the quantity bounded by the active
    visibility window). *)
val state_size : t -> int

val peak_state : t -> int

(** Committed versions folded into the base map so far. *)
val retired_versions : t -> int

val live_versions : t -> int

(** The current retirement horizon (newest commit timestamp with every
    version at or below it retired-or-retirable). *)
val horizon : t -> Timestamp.t

(** Deterministic JSON report: verdict counts, state/peak/retired sizes and
    the retained alerts (sorted), all object keys sorted
    ({!Lsr_obs.Json.sort_keys}). *)
val report_json : t -> Lsr_obs.Json.t
