type op =
  | Begin of int
  | Read of { txn : int; key : string; value : string option }
  | Pred_read of { txn : int; pred : string; result : string list }
  | Write of { txn : int; key : string; value : string option; preds : string list }
  | Commit of int
  | Abort of int

type history = op list
type witness = int * int

let pp_op ppf = function
  | Begin t -> Format.fprintf ppf "b%d" t
  | Read { txn; key; value } ->
    Format.fprintf ppf "r%d(%s)=%s" txn key
      (match value with Some v -> v | None -> "-")
  | Pred_read { txn; pred; result } ->
    Format.fprintf ppf "r%d<%s>={%s}" txn pred (String.concat "," result)
  | Write { txn; key; value; _ } ->
    Format.fprintf ppf "w%d(%s:=%s)" txn key
      (match value with Some v -> v | None -> "-")
  | Commit t -> Format.fprintf ppf "c%d" t
  | Abort t -> Format.fprintf ppf "a%d" t

(* Indexed view of a history: each op paired with its position. *)
let indexed h = List.mapi (fun i op -> (i, op)) h

let txn_of = function
  | Begin t | Commit t | Abort t -> t
  | Read { txn; _ } | Pred_read { txn; _ } | Write { txn; _ } -> txn

let positions_of_end h =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, op) ->
      match op with
      | Commit t | Abort t -> if not (Hashtbl.mem tbl t) then Hashtbl.add tbl t i
      | Begin _ | Read _ | Pred_read _ | Write _ -> ())
    (indexed h);
  tbl

let committed_txns h =
  List.filter_map (function Commit t -> Some t | _ -> None) h

let commit_position h t =
  let rec find i = function
    | [] -> None
    | Commit t' :: _ when t' = t -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 h

let begin_position h t =
  let rec find i = function
    | [] -> None
    | Begin t' :: _ when t' = t -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 h

let writes_of h t =
  List.filter_map
    (fun (i, op) ->
      match op with
      | Write { txn; key; value; _ } when txn = t -> Some (i, key, value)
      | _ -> None)
    (indexed h)

let reads_of h t =
  List.filter_map
    (fun (i, op) ->
      match op with
      | Read { txn; key; value } when txn = t -> Some (i, key, value)
      | _ -> None)
    (indexed h)

let uniq pairs = List.sort_uniq compare pairs

(* P0: t2 writes a key between t1's write of it and t1's end; both commit. *)
let dirty_writes h =
  let ends = positions_of_end h in
  let committed = committed_txns h in
  let witness t1 =
    match Hashtbl.find_opt ends t1 with
    | None -> []
    | Some end1 ->
      List.concat_map
        (fun (p1, key, _) ->
          List.filter_map
            (fun (i, op) ->
              match op with
              | Write { txn = t2; key = k2; _ }
                when t2 <> t1 && k2 = key && i > p1 && i < end1
                     && List.mem t2 committed ->
                Some (t1, t2)
              | _ -> None)
            (indexed h))
        (writes_of h t1)
  in
  uniq (List.concat_map witness committed)

(* P1: t2 observed, before t1's end, a value that at that point existed only
   as t1's uncommitted write. *)
let dirty_reads h =
  let ends = positions_of_end h in
  let result = ref [] in
  List.iter
    (fun (i, op) ->
      match op with
      | Read { txn = t2; key; value = Some v } ->
        (* Which committed value was current at position i? *)
        let committed_value =
          List.fold_left
            (fun acc (j, op') ->
              match op' with
              | Write { txn = tw; key = kw; value; _ }
                when kw = key && j < i -> (
                match commit_position h tw with
                | Some cp when cp < i -> Some (value, cp)
                | Some _ | None -> acc)
              | _ -> acc)
            None (indexed h)
        in
        let is_committed_value =
          match committed_value with
          | Some (Some v', _) -> v' = v
          | Some (None, _) | None -> false
        in
        if not is_committed_value then
          (* Did some other transaction have an uncommitted write of v? *)
          List.iter
            (fun (j, op') ->
              match op' with
              | Write { txn = t1; key = kw; value = Some v'; _ }
                when t1 <> t2 && kw = key && v' = v && j < i -> (
                match Hashtbl.find_opt ends t1 with
                | Some e1 when i < e1 -> result := (t1, t2) :: !result
                | Some _ -> ()
                | None -> result := (t1, t2) :: !result)
              | _ -> ())
            (indexed h)
      | _ -> ())
    (indexed h);
  uniq !result

(* P2: t1 read the same key twice with different observed values; t2
   committed a write to that key in between. *)
let fuzzy_reads h =
  let txns = List.sort_uniq compare (List.map txn_of h) in
  let result = ref [] in
  List.iter
    (fun t1 ->
      let reads = reads_of h t1 in
      List.iter
        (fun (p1, key, v1) ->
          List.iter
            (fun (p2, key', v2) ->
              if key = key' && p2 > p1 && v1 <> v2 then
                (* find a t2 that committed a write to key in (p1, p2) *)
                List.iter
                  (fun (j, op) ->
                    match op with
                    | Write { txn = t2; key = kw; _ }
                      when t2 <> t1 && kw = key && j > p1 -> (
                      match commit_position h t2 with
                      | Some cp when cp < p2 -> result := (t1, t2) :: !result
                      | Some _ | None -> ())
                    | _ -> ())
                  (indexed h))
            reads)
        reads)
    txns;
  uniq !result

(* P3: t1 evaluated a predicate twice with different result sets; t2
   committed a predicate-affecting write in between. *)
let phantoms h =
  let result = ref [] in
  let pred_reads t1 =
    List.filter_map
      (fun (i, op) ->
        match op with
        | Pred_read { txn; pred; result } when txn = t1 -> Some (i, pred, result)
        | _ -> None)
      (indexed h)
  in
  let txns = List.sort_uniq compare (List.map txn_of h) in
  List.iter
    (fun t1 ->
      let prs = pred_reads t1 in
      List.iter
        (fun (p1, pred, r1) ->
          List.iter
            (fun (p2, pred', r2) ->
              if pred = pred' && p2 > p1 && r1 <> r2 then
                List.iter
                  (fun (j, op) ->
                    match op with
                    | Write { txn = t2; preds; _ }
                      when t2 <> t1 && List.mem pred preds && j > p1 -> (
                      match commit_position h t2 with
                      | Some cp when cp < p2 -> result := (t1, t2) :: !result
                      | Some _ | None -> ())
                    | _ -> ())
                  (indexed h))
            prs)
        prs)
    txns;
  uniq !result

(* P4: t1 read a key, t2 committed a write to it afterwards, then t1 wrote
   the key and committed. t2's committed update is lost. *)
let lost_updates h =
  let committed = committed_txns h in
  let result = ref [] in
  List.iter
    (fun t1 ->
      match commit_position h t1 with
      | None -> ()
      | Some c1 ->
        let reads = reads_of h t1 and writes = writes_of h t1 in
        List.iter
          (fun (pr, key, _) ->
            List.iter
              (fun (pw, key', _) ->
                if key = key' && pw > pr then
                  List.iter
                    (fun t2 ->
                      if t2 <> t1 then
                        List.iter
                          (fun (j, k2, _) ->
                            match commit_position h t2 with
                            | Some c2
                              when k2 = key && j > pr && c2 > pr && c2 < c1 ->
                              result := (t1, t2) :: !result
                            | Some _ | None -> ())
                          (writes_of h t2))
                    committed)
              writes)
          reads)
    committed;
  uniq !result

(* P5: committed, temporally overlapping transactions with disjoint write
   sets, each reading a key the other writes. *)
let write_skews h =
  let committed = committed_txns h in
  let keys_read t = List.map (fun (_, k, _) -> k) (reads_of h t) in
  let keys_written t = List.map (fun (_, k, _) -> k) (writes_of h t) in
  let overlap a b = List.exists (fun k -> List.mem k b) a in
  let concurrent t1 t2 =
    match (begin_position h t1, commit_position h t1,
           begin_position h t2, commit_position h t2) with
    | Some b1, Some c1, Some b2, Some c2 -> b1 < c2 && b2 < c1
    | _ -> false
  in
  let result = ref [] in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          if t1 < t2 && concurrent t1 t2 then begin
            let ws1 = keys_written t1 and ws2 = keys_written t2 in
            let rs1 = keys_read t1 and rs2 = keys_read t2 in
            if
              (not (overlap ws1 ws2))
              && overlap rs1 ws2 && overlap rs2 ws1
              && ws1 <> [] && ws2 <> []
            then result := (t1, t2) :: !result
          end)
        committed)
    committed;
  uniq !result

let si_safe h =
  dirty_writes h = [] && dirty_reads h = [] && fuzzy_reads h = []
  && phantoms h = [] && lost_updates h = []
