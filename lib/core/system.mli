(** The embedded lazy-master replicated database (Figure 1).

    One primary plus [n] secondaries, the propagator of Algorithm 3.1, the
    refresh machinery of Algorithms 3.2/3.3, and the session manager of §4 —
    all driven deterministically in a single thread. Propagation is {e lazy}:
    updates reach the secondaries only when {!propagate}/{!pump} runs (or
    when a blocked read forces synchronization), so staleness and transaction
    inversions can be provoked and observed deterministically in tests and
    examples. The simulator in [lsr_experiments] wires the same protocol
    components to virtual time instead.

    Clients connect to a secondary and submit transactions; read-only
    transactions run at that secondary, update transactions are forwarded to
    the primary (§3). Every finished transaction is recorded in a
    {!History} for offline checking. *)

open Lsr_storage

type t

(** Raised by {!read} when the read's required freshness threshold is still
    unreachable after the bounded pump-retry loop — e.g. an [Exact] fence
    naming a commit that does not exist yet. [available] is the target
    secondary's [seq(DBsec)] at the last attempt. *)
exception Unsatisfiable_read of {
  secondary : int;
  required : Timestamp.t;
  available : Timestamp.t;
  pumps : int;
}

(** A client session: a label and the secondary it is connected to. *)
type client

(** A transport carrying propagated records to one secondary. When attached
    (see {!create}), {!propagate} hands record batches to [ch_send] instead
    of enqueueing them directly; each refresh pulls one [ch_tick]'s worth of
    in-order deliveries into the secondary's update queue, and {!pump} keeps
    refreshing until every channel reports [ch_idle]. [ch_reset] is invoked
    on secondary crash and again on recovery (connection state is lost with
    the site). The channel must deliver every record exactly once, in send
    order — [Lsr_faults.Channel] provides such a transport over a lossy,
    duplicating, reordering network. *)
type channel = {
  ch_send : Txn_record.t list -> unit;
  ch_tick : unit -> Txn_record.t list;
  ch_idle : unit -> bool;
  ch_reset : unit -> unit;
}

(** [create ~guarantee ~secondaries ()] builds a system with that many
    secondary sites (default 1). [schema] maps table names to secondary
    index declarations applied by every transaction handle (see
    {!Lsr_storage.Table}). [faults], when given, is called once per
    secondary index to attach a fault-injection {!channel} between the
    propagator and that site; omitted, propagation is the paper's reliable
    FIFO channel and behaviour is unchanged. [obs], when given an enabled
    registry, is threaded to the propagator and every secondary and receives
    the system counters [system.update_commits] / [system.update_aborts] /
    [system.reads]; the default {!Lsr_obs.Obs.null} costs nothing.
    [lineage], when given an enabled sink, is threaded the same way: the
    primary emits a [Primary_commit] event per committed update transaction
    (trace id = primary MVCC txn id), the propagator and every secondary
    append the journey stages, and each read-only transaction contributes a
    freshness sample for its site (see {!Lsr_obs.Lineage}).

    [flight], when given an enabled recorder, is threaded the same way and
    receives the compact unified event stream (commits carrying both MVCC
    and history ids, pipeline stages, per-read snapshot claims,
    crash/recovery marks); with [watchdog] also on, the first alert
    triggers the recorder's postmortem capture (see {!Lsr_obs.Flight}).

    [watchdog] attaches an online {!Watchdog}: every transaction is checked
    incrementally as it finishes (weak-SI reads, inversion floors, fence
    claims) and each refresh commit advances the watchdog's retirement
    horizon. Alerts are available from {!watchdog} while the system runs —
    before, and independently of, the post-hoc {!check}. *)
val create :
  ?secondaries:int -> ?schema:(string * string list) list ->
  ?faults:(int -> channel) ->
  ?obs:Lsr_obs.Obs.t ->
  ?lineage:Lsr_obs.Lineage.t ->
  ?flight:Lsr_obs.Flight.t ->
  ?watchdog:bool ->
  guarantee:Session.guarantee -> unit -> t

val guarantee : t -> Session.guarantee
val primary : t -> Primary.t
val primary_db : t -> Mvcc.t
val secondaries : t -> int
val secondary : t -> int -> Secondary.t
val secondary_db : t -> int -> Mvcc.t
val sessions : t -> Session.t
val history : t -> History.t

(** The primary's commit clock. The embedded system has no virtual time, so
    its time axis is the {!History} event counter: a [Max_age d] fence means
    "at most [d] history events stale". *)
val commit_clock : t -> Session.clock

(** The online checker attached at {!create} ([None] without
    [~watchdog:true]). *)
val watchdog : t -> Watchdog.t option

(** [connect t label] opens a client session. Clients are assigned to
    secondaries round-robin unless [secondary] is given. A fresh [label]
    starts a fresh session (ordering constraints never span labels). *)
val connect : t -> ?secondary:int -> string -> client

val client_label : client -> string
val client_secondary : client -> int

(** [migrate t c i] rebinds the session to secondary [i] (load balancing /
    failover), keeping its label and therefore its ordering constraints.
    Under [Strong_session] a migrated session still never sees snapshots
    move backwards (the manager tracks its read floor); under
    [Prefix_consistent] only its own updates constrain it, so a read after
    migration may observe an older snapshot. *)
val migrate : t -> client -> int -> client

(** {2 Transactions} *)

(** [update t c body] forwards an update transaction to the primary. The
    body runs against the primary copy via a recording {!Handle}. On commit,
    the session's [seq(c)] advances to the new primary commit timestamp.
    [force_abort] makes the transaction abort at commit (the simulator's
    [abort_prob]); the caller sees [Error Forced]. *)
val update :
  t -> client -> ?force_abort:bool -> (Handle.t -> 'a) ->
  ('a, Mvcc.abort_reason) result

(** [read t c body] runs a read-only transaction at the client's secondary.
    Under [Strong_session]/[Strong], if the session ordering condition
    [seq(c) <= seq(DBsec)] does not hold, the read {e waits} — which in the
    embedded system means forcing propagation and refresh until the copy
    catches up (equivalent to the client waiting for lazy replication).
    Never waits under [Weak] (without a fence).

    [fence], when given, additionally requires the snapshot to satisfy the
    {!Session.fence}: the effective threshold is the [max] of the guarantee's
    and the fence's. A [Max_age] fence resolves its visibility horizon once,
    when the read is submitted. The fence is recorded in the history so
    {!Checker.check_fences} can audit it after the run.
    @raise Unsatisfiable_read when the threshold is still unreachable after
    a bounded number of pump rounds. *)
val read : ?fence:Session.fence -> t -> client -> (Handle.t -> 'a) -> 'a

(** [read_nowait t c body] is [read] but returns [None] instead of waiting
    when the freshness threshold is not met — or when the target secondary
    is crashed (a crashed site cannot serve the read {e now}; it does not
    raise). *)
val read_nowait :
  ?fence:Session.fence -> t -> client -> (Handle.t -> 'a) -> 'a option

(** {2 Replication control (lazy!)} *)

(** Poll the primary log and broadcast new records to every live secondary
    (into its update queue, or its fault {!channel} when one is attached).
    Returns the number of records shipped. *)
val propagate : t -> int

(** Drain the refresh machinery at one / all secondaries. With a fault
    channel attached, first advances the channel one tick and enqueues its
    in-order deliveries. Returns refresh transactions committed. *)
val refresh_one : t -> int -> int

val refresh_all : t -> int

(** [pump t] = [propagate] then [refresh_all], repeated until every attached
    fault channel is idle: bring every secondary up to date with the
    primary.
    @raise Failure if a channel fails to quiesce (saturated loss rate). *)
val pump : t -> unit

(** Reads that had to wait for the session condition so far. *)
val blocked_reads : t -> int

(** [compact t] reclaims storage across the system: the primary log is
    truncated below the propagator cursor (those records have been
    broadcast to every live secondary's queue), and version chains at the
    primary and at every live secondary are vacuumed down to their latest
    committed version. Returns the number of versions reclaimed. Call it
    after {!pump}: snapshot reconstruction below the current state becomes
    unavailable, so lagging secondaries must have caught up first. *)
val compact : t -> int

(** {2 Failures (§3.4, §4)} *)

(** [crash_secondary t i] drops the site's queues, refresh state and
    database copy — everything §3.4 says is lost — and resets its fault
    channel if one is attached (in-flight messages to a dead site are gone).
    Reads and writes through clients of a crashed secondary raise until
    recovery. *)
val crash_secondary : t -> int -> unit

(** [recover_secondary t i] first quiesces propagation (so the backup point
    and the propagation cursor agree — nothing already in the backup is
    propagated again), then installs a quiesced copy of the primary database
    and reinitializes [seq(DBsec)] from a dummy transaction at the primary,
    after which the site resumes receiving propagated updates. *)
val recover_secondary : t -> int -> unit

val is_crashed : t -> int -> bool

(** {2 Verification} *)

(** Run the full checker battery: completeness of every never-crashed
    secondary against the primary (Theorem 3.1), final-state equality for
    recovered ones, weak SI of the recorded history (Theorem 3.2), and the
    advertised session guarantee. [Error] carries human-readable
    violations. Call after {!pump} for completeness to be meaningful. *)
val check : t -> (unit, string list) result
