(** Mechanical verification of the paper's correctness criteria over a
    recorded {!History}, plus the completeness property of Theorem 3.1 over
    a pair of database instances.

    An {e inversion} witnesses a violation of Definition 2.1/2.2: a committed
    transaction [t1] whose commit precedes the first operation of [t2] (in
    wall order), yet [t2] saw a database state older than the one [t1]
    produced (or, for a read-only [t1], older than the one [t1] observed —
    the case-4 requirement of Theorem 4.1 that snapshots never move
    backwards).

    Every check here is polynomial in the history size — the checker runs
    after each simulation over histories with up to millions of
    transactions, so no routine may enumerate candidate orders or walk a
    version chain per read. [inversions] and [check_weak_si] are sorted
    sweeps, O(n log n) in the number of transactions plus O(R) over recorded
    reads; [serialization_cycle] builds the MVSG black-box style (see below)
    in O(E + R log V) and detects cycles with one iterative DFS. *)

open Lsr_storage

type inversion = { earlier : History.txn; later : History.txn }

val pp_inversion : Format.formatter -> inversion -> unit

(** All inversions in wall order. [same_session_only] restricts to pairs
    with equal session labels; [earlier_updates_only] restricts the earlier
    transaction to committed updates — the PCSI requirement, which does not
    order read-only transactions against each other. *)
val inversions :
  ?same_session_only:bool -> ?earlier_updates_only:bool -> History.t ->
  inversion list

(** [is_strong_si h] — no inversion between any pair (Definition 2.1). *)
val is_strong_si : History.t -> bool

(** [is_strong_session_si h] — no inversion within any session
    (Definition 2.2). *)
val is_strong_session_si : History.t -> bool

(** [check_weak_si h] verifies that the history is (global) weak SI: every
    transaction observed a transaction-consistent snapshot. Concretely, each
    recorded read must return the value of the key in the primary state
    sequence at the transaction's snapshot timestamp — unless the
    transaction itself wrote the key earlier (read-your-writes; such reads
    are checked against the pending write instead when determinable, else
    skipped). Returns the list of violations (empty = weak SI holds). *)
val check_weak_si : History.t -> string list

(** {2 Serializability (§7, Fekete et al)}

    SI is weaker than serializability: write skew produces histories that
    are SI yet have a cycle in the multi-version serialization graph. The
    graph is built from recorded reads/writes and snapshots:
    - ww: consecutive writers of a key, in commit order;
    - wr: the writer of the version a transaction read, to the reader;
    - rw (anti-dependency): a reader of a version to the writer of the
      {e next} version of that key.

    Reads of keys the transaction itself wrote are ignored
    (read-your-writes).

    Because SI pins every read to the version visible at the reader's
    snapshot, all three edge kinds are determined directly from the per-key
    committed-writer chains (binary search per read) — the polynomial-time
    black-box SI-checking construction of Huang et al., with none of the
    exponential search a general serializability check needs. *)

(** [serialization_cycle h] is a dependency cycle (as history transaction
    ids, in order) when one exists. *)
val serialization_cycle : History.t -> int list option

(** [is_serializable h] — no cycle in the serialization graph. *)
val is_serializable : History.t -> bool

(** [check_completeness ~primary ~secondary] verifies Theorem 3.1 on actual
    database instances: the sequence of committed states of [secondary] is a
    prefix of the primary's — same writesets installed in the same order —
    and the final secondary state equals the corresponding primary state
    [S^i_p]. Returns [Error message] on the first divergence. *)
val check_completeness : primary:Mvcc.t -> secondary:Mvcc.t -> (unit, string) result

(** [check_fences ?clock h] audits every committed fenced read: its recorded
    snapshot must actually satisfy its {!History.fence_claim}. [Exact] is
    checked against the fence timestamp, [Session_seq] against the session's
    wall-order fence floor (earlier committed updates and earlier
    [Session_seq]-fenced reads of the same session), and [Max_age] against
    the commit-visibility horizon replayed from [clock] at
    [read_at - age] — a [Max_age] claim with no [clock] is itself reported
    as a violation. Returns violation descriptions (empty = all fences
    honoured). *)
val check_fences : ?clock:Session.clock -> History.t -> string list

(** Full report for a finished run: weak-SI violations, inversions at each
    strictness level, and fence-audit violations. *)
type report = {
  weak_si_violations : string list;
  inversions_all : inversion list;  (** any pair (strong SI) *)
  inversions_in_session : inversion list;  (** same session (strong session SI) *)
  inversions_after_update : inversion list;
      (** same session, earlier transaction is an update (PCSI) *)
  fence_violations : string list;
      (** committed fenced reads whose snapshot broke their fence *)
}

(** [analyze ?clock h] — [clock] is the primary's commit clock, needed to
    audit [Max_age] fences (see {!check_fences}). *)
val analyze : ?clock:Session.clock -> History.t -> report

(** [satisfies guarantee report] — does the run meet the advertised
    guarantee? [Weak] requires weak SI only; [Prefix_consistent] additionally
    no in-session inversions whose earlier transaction is an update;
    [Strong_session] no in-session inversions at all; [Strong] no inversions
    anywhere. Fence violations fail every guarantee — a fence is a per-read
    contract independent of the ambient level. *)
val satisfies : Session.guarantee -> report -> bool
