(** Recorded global execution histories.

    The embedded system and the simulator both append one record per finished
    transaction; {!Checker} then decides mechanically whether the history is
    weak SI, strong session SI, or strong SI (Definitions 2.1 and 2.2), and
    exhibits the witnessing transaction inversions when it is not.

    Two orders coexist in a record:
    - {e wall order} ([first_op], [finished]): a global, monotonically
      increasing event counter capturing the real submission/completion order
      across all sites — the "executes after" of the definitions;
    - {e snapshot order} ([snapshot], [commit_ts]): primary commit
      timestamps, i.e. positions in the sequence of database states
      [S^0, S^1, ...]. *)

open Lsr_storage

type kind =
  | Read_only
  | Update

(** The freshness fence a read-only transaction ran under, as recorded in
    the history so {!Checker} can audit that the snapshot actually honoured
    it. [read_at] is the virtual time at which the fence was resolved
    (relevant to [Max_age], whose horizon is a function of that instant). *)
type fence_claim = {
  claim : Session.fence;
  read_at : float;
}

type txn = {
  id : int;  (** unique within the history *)
  session : string;
  kind : kind;
  site : string;  (** where the transaction executed *)
  first_op : int;  (** wall order of the transaction's first operation *)
  finished : int;  (** wall order of its commit *)
  snapshot : Timestamp.t;
      (** primary commit timestamp of the database state the transaction saw *)
  commit_ts : Timestamp.t option;
      (** primary commit timestamp, for committed update transactions *)
  reads : (string * string option) list;
      (** recorded reads (key, observed value), oldest first *)
  writes : Wal.update list;  (** effective writes, for committed updates *)
  fence : fence_claim option;
      (** the freshness fence the read ran under, if any *)
}

type t

val create : unit -> t

(** [tick t] advances and returns the global event counter. *)
val tick : t -> int

(** [now t] is the current value of the event counter, without advancing
    it. The embedded system uses it as its commit clock's time axis. *)
val now : t -> int

(** [fresh_id t] allocates a history-unique transaction id. *)
val fresh_id : t -> int

val add : t -> txn -> unit

(** Transactions in completion order. *)
val transactions : t -> txn list

val length : t -> int
val pp_txn : Format.formatter -> txn -> unit
