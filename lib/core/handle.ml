open Lsr_storage

type t = {
  db : Mvcc.t;
  txn : Mvcc.txn;
  schema : (string * string list) list;
  mutable reads : (string * string option) list;  (* newest first *)
}

let make ?(schema = []) db txn = { db; txn; schema; reads = [] }
let db t = t.db
let txn t = t.txn

let get t key =
  let value = Mvcc.read t.db t.txn key in
  t.reads <- (key, value) :: t.reads;
  value

let put t key value = Mvcc.write t.db t.txn key (Some value)
let del t key = Mvcc.write t.db t.txn key None

let table t name =
  let indexes = Option.value ~default:[] (List.assoc_opt name t.schema) in
  Table.define ~indexes t.db ~name

let row_get t ~table:name ~pk =
  let tbl = table t name in
  let encoded = Mvcc.read t.db t.txn (Table.storage_key tbl ~pk) in
  t.reads <- (Table.storage_key tbl ~pk, encoded) :: t.reads;
  Option.map Row.decode encoded

let row_put t ~table:name ~pk row = Table.insert (table t name) t.txn ~pk row
let row_del t ~table:name ~pk = Table.delete (table t name) t.txn ~pk

let row_update t ~table ~pk f =
  match row_get t ~table ~pk with
  | None -> false
  | Some row ->
    row_put t ~table ~pk (f row);
    true

let row_scan t ~table:name ~where =
  let tbl = table t name in
  let rows = Table.scan tbl t.txn ~where in
  (* Record each visible row as a read so the checker can validate scans. *)
  List.iter
    (fun (pk, row) ->
      t.reads <-
        (Table.storage_key tbl ~pk, Some (Row.encode row)) :: t.reads)
    rows;
  rows

let row_lookup t ~table:name ~field ~value =
  let tbl = table t name in
  let rows = Table.lookup tbl t.txn ~field ~value in
  List.iter
    (fun (pk, row) ->
      t.reads <- (Table.storage_key tbl ~pk, Some (Row.encode row)) :: t.reads)
    rows;
  rows

let row_range t ~table:name ~field ~lo ~hi =
  let tbl = table t name in
  let rows = Table.range_lookup tbl t.txn ~field ~lo ~hi in
  List.iter
    (fun (pk, row) ->
      t.reads <- (Table.storage_key tbl ~pk, Some (Row.encode row)) :: t.reads)
    rows;
  rows

let indexed_fields t ~table:name =
  Option.value ~default:[] (List.assoc_opt name t.schema)

let reads t = List.rev t.reads
