open Lsr_storage

type t = { db : Mvcc.t }

let create ?(name = "primary") () = { db = Mvcc.create ~name () }
let db t = t.db
let wal t = Mvcc.wal t.db

type 'a outcome =
  | Committed of {
      value : 'a;
      txn : int;
      commit_ts : Timestamp.t;
      snapshot : Timestamp.t;
      writes : Wal.update list;
    }
  | Aborted of Mvcc.abort_reason

let execute t ?(force_abort = false) body =
  let snapshot = Mvcc.latest_commit_ts t.db in
  let txn = Mvcc.begin_txn t.db in
  let value =
    try body t.db txn
    with exn ->
      Mvcc.abort t.db txn;
      raise exn
  in
  if force_abort then begin
    Mvcc.abort t.db txn;
    Aborted Mvcc.Forced
  end
  else begin
    let writes = Mvcc.pending_writes txn in
    match Mvcc.commit t.db txn with
    | Mvcc.Committed commit_ts ->
      Committed { value; txn = Mvcc.txn_id txn; commit_ts; snapshot; writes }
    | Mvcc.Aborted reason -> Aborted reason
  end

let latest_commit_ts t = Mvcc.latest_commit_ts t.db
