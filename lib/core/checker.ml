open Lsr_storage

type inversion = { earlier : History.txn; later : History.txn }

let pp_inversion ppf { earlier; later } =
  Format.fprintf ppf "%a inverted by %a" History.pp_txn earlier History.pp_txn
    later

(* The database state a committed transaction pins:
   - an update transaction pins the state it produced (its commit ts);
   - a read-only transaction pins the state it observed (its snapshot).
   Aborted transactions pin nothing (the definitions quantify over committed
   transactions only). *)
let effective_state (t : History.txn) =
  match (t.kind, t.commit_ts) with
  | History.Update, Some ts -> Some ts
  | History.Update, None -> None
  | History.Read_only, _ -> Some t.snapshot

let committed (t : History.txn) =
  match (t.kind, t.commit_ts) with
  | History.Update, Some _ -> true
  | History.Update, None -> false
  | History.Read_only, _ -> true

(* Sweep transactions in wall order: for each transaction [t2], find the
   maximal state pinned by any committed transaction that finished before
   [t2]'s first operation (globally, and per session). An inversion exists
   when [t2]'s snapshot is older than that maximum. O(n log n). *)
let inversions ?(same_session_only = false) ?(earlier_updates_only = false)
    history =
  let txns = History.transactions history in
  let by_finish =
    List.sort (fun a b -> Int.compare a.History.finished b.History.finished)
      (List.filter committed txns)
  in
  let by_start =
    List.sort (fun a b -> Int.compare a.History.first_op b.History.first_op)
      (List.filter committed txns)
  in
  let global_max : (Timestamp.t * History.txn) option ref = ref None in
  let session_max : (string, Timestamp.t * History.txn) Hashtbl.t =
    Hashtbl.create 64
  in
  let note (t : History.txn) =
    match effective_state t with
    | None -> ()
    | Some _ when earlier_updates_only && t.kind = History.Read_only -> ()
    | Some ts ->
      (match !global_max with
      | Some (best, _) when Timestamp.compare best ts >= 0 -> ()
      | Some _ | None -> global_max := Some (ts, t));
      (match Hashtbl.find_opt session_max t.session with
      | Some (best, _) when Timestamp.compare best ts >= 0 -> ()
      | Some _ | None -> Hashtbl.replace session_max t.session (ts, t))
  in
  let rec sweep pending acc = function
    | [] -> List.rev acc
    | (t2 : History.txn) :: rest ->
      let rec absorb = function
        | (t1 : History.txn) :: more when t1.finished < t2.first_op ->
          note t1;
          absorb more
        | remaining -> remaining
      in
      let pending = absorb pending in
      let best =
        if same_session_only then Hashtbl.find_opt session_max t2.session
        else !global_max
      in
      let acc =
        match best with
        | Some (ts, t1) when Timestamp.compare t2.snapshot ts < 0 ->
          { earlier = t1; later = t2 } :: acc
        | Some _ | None -> acc
      in
      sweep pending acc rest
  in
  sweep by_finish [] by_start

let is_strong_si history = inversions history = []

let is_strong_session_si history =
  inversions ~same_session_only:true history = []

let check_weak_si history =
  let txns = History.transactions history in
  let updates =
    List.filter_map
      (fun (t : History.txn) ->
        match (t.kind, t.commit_ts) with
        | History.Update, Some ts -> Some (ts, t.writes)
        | History.Update, None | History.Read_only, _ -> None)
      txns
    |> List.sort (fun (a, _) (b, _) -> Timestamp.compare a b)
  in
  let by_snapshot =
    List.sort (fun a b -> Timestamp.compare a.History.snapshot b.History.snapshot) txns
  in
  let state : (string, string option) Hashtbl.t = Hashtbl.create 1024 in
  let violations = ref [] in
  let own_writes = Hashtbl.create 16 in
  let check_txn (t : History.txn) =
    Hashtbl.reset own_writes;
    List.iter (fun { Wal.key; _ } -> Hashtbl.replace own_writes key ()) t.writes;
    List.iter
      (fun (key, observed) ->
        if not (Hashtbl.mem own_writes key) then begin
          let expected = Option.join (Hashtbl.find_opt state key) in
          if expected <> observed then
            violations :=
              Format.asprintf
                "%a read %s = %s but state S@%a has %s" History.pp_txn t key
                (match observed with Some v -> v | None -> "<none>")
                Timestamp.pp t.snapshot
                (match expected with Some v -> v | None -> "<none>")
              :: !violations
        end)
      t.reads
  in
  let rec sweep pending_updates = function
    | [] -> ()
    | (t : History.txn) :: rest ->
      let rec absorb = function
        | (ts, writes) :: more when Timestamp.compare ts t.snapshot <= 0 ->
          List.iter (fun { Wal.key; value } -> Hashtbl.replace state key value) writes;
          absorb more
        | remaining -> remaining
      in
      let pending_updates = absorb pending_updates in
      check_txn t;
      sweep pending_updates rest
  in
  sweep updates by_snapshot;
  List.rev !violations

(* --- Serializability via the multi-version serialization graph -------------

   Polynomial-time black-box construction in the style of Huang et al.'s
   "Efficient Black-box Checking of Snapshot Isolation": under SI every read
   is pinned to the version visible at the reader's snapshot, so the wr
   (visible writer -> reader) and rw (reader -> next writer) edges of the
   MVSG are determined directly by binary search over each key's committed
   writer chain — no search over candidate serialization orders. Total cost
   is O(E + R log V) for E edges, R recorded reads and V versions, and the
   cycle check is one iterative DFS (explicit stack; histories with millions
   of transactions must not overflow the OCaml call stack). *)

let serialization_cycle history =
  let txns = Array.of_list (List.filter committed (History.transactions history)) in
  let n = Array.length txns in
  (* Version chains: for each key, its committed writers sorted by commit
     timestamp, as arrays supporting binary search. *)
  let writers : (string, (Timestamp.t * int) list) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (t : History.txn) ->
      match t.commit_ts with
      | None -> ()
      | Some cts ->
        List.iter
          (fun { Wal.key; _ } ->
            let chain = Option.value ~default:[] (Hashtbl.find_opt writers key) in
            Hashtbl.replace writers key ((cts, t.id) :: chain))
          t.writes)
    txns;
  let chains : (string, (Timestamp.t * int) array) Hashtbl.t =
    Hashtbl.create (Hashtbl.length writers)
  in
  Hashtbl.iter
    (fun key chain ->
      let arr = Array.of_list chain in
      Array.sort (fun (a, _) (b, _) -> Timestamp.compare a b) arr;
      Hashtbl.replace chains key arr)
    writers;
  (* [partition chain ts] is the number of writers with commit ts <= [ts]:
     the visible version is at index [partition - 1], the next version at
     [partition]. *)
  let partition chain ts =
    let lo = ref 0 and hi = ref (Array.length chain) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let cts, _ = chain.(mid) in
      if Timestamp.compare cts ts <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  (* Adjacency lists with O(1) dedup. *)
  let succs : (int, int list ref) Hashtbl.t = Hashtbl.create (max 64 n) in
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create (max 64 n) in
  let add_edge a b =
    if a <> b && not (Hashtbl.mem seen (a, b)) then begin
      Hashtbl.replace seen (a, b) ();
      match Hashtbl.find_opt succs a with
      | Some l -> l := b :: !l
      | None -> Hashtbl.replace succs a (ref [ b ])
    end
  in
  (* ww: consecutive writers of each key. *)
  Hashtbl.iter
    (fun _ chain ->
      for i = 0 to Array.length chain - 2 do
        add_edge (snd chain.(i)) (snd chain.(i + 1))
      done)
    chains;
  (* wr and rw: for each recorded read, the version visible at the reader's
     snapshot and the next version after it, by binary search. *)
  let own_keys = Hashtbl.create 16 in
  Array.iter
    (fun (t : History.txn) ->
      Hashtbl.reset own_keys;
      List.iter (fun { Wal.key; _ } -> Hashtbl.replace own_keys key ()) t.writes;
      List.iter
        (fun (key, _) ->
          if not (Hashtbl.mem own_keys key) then
            match Hashtbl.find_opt chains key with
            | None -> ()
            | Some chain ->
              let pos = partition chain t.snapshot in
              if pos > 0 then add_edge (snd chain.(pos - 1)) t.id;
              if pos < Array.length chain then add_edge t.id (snd chain.(pos)))
        t.reads)
    txns;
  (* Iterative DFS cycle detection with path reconstruction: the gray path
     is exactly the frame stack, so on hitting an active node the witness
     cycle is the stack suffix from that node. *)
  let color : (int, [ `Active | `Done ]) Hashtbl.t = Hashtbl.create (max 64 n) in
  let no_succs = [||] in
  let succ_array id =
    match Hashtbl.find_opt succs id with
    | Some l -> Array.of_list (List.rev !l)
    | None -> no_succs
  in
  let exception Found of int list in
  let visit root =
    if not (Hashtbl.mem color root) then begin
      Hashtbl.replace color root `Active;
      let stack = ref [ (root, succ_array root, ref 0) ] in
      while !stack <> [] do
        let id, succ, next = List.hd !stack in
        if !next >= Array.length succ then begin
          Hashtbl.replace color id `Done;
          stack := List.tl !stack
        end
        else begin
          let s = succ.(!next) in
          incr next;
          match Hashtbl.find_opt color s with
          | Some `Done -> ()
          | Some `Active ->
            let path = List.rev_map (fun (n, _, _) -> n) !stack in
            let rec from_s = function
              | x :: rest when x <> s -> from_s rest
              | suffix -> suffix
            in
            raise (Found (from_s path))
          | None ->
            Hashtbl.replace color s `Active;
            stack := (s, succ_array s, ref 0) :: !stack
        end
      done
    end
  in
  match Array.iter (fun (t : History.txn) -> visit t.id) txns with
  | () -> None
  | exception Found cycle -> Some cycle

let is_serializable history = serialization_cycle history = None

let check_completeness ~primary ~secondary =
  let prim = Mvcc.commits_with_updates primary in
  let sec = Mvcc.commits_with_updates secondary in
  let np = List.length prim and ns = List.length sec in
  if ns > np then
    Error
      (Printf.sprintf "secondary installed %d states but primary only has %d" ns
         np)
  else begin
    let update_eq (a : Wal.update) (b : Wal.update) =
      String.equal a.key b.key && Option.equal String.equal a.value b.value
    in
    let rec compare_prefix i prim sec =
      match (prim, sec) with
      | _, [] -> Ok i
      | [], _ :: _ -> Error "impossible: secondary longer than primary"
      | (_, pw) :: prest, (_, sw) :: srest ->
        if List.length pw = List.length sw && List.for_all2 update_eq pw sw then
          compare_prefix (i + 1) prest srest
        else
          Error
            (Printf.sprintf
               "state S^%d diverges: refresh installed a different writeset"
               (i + 1))
    in
    match compare_prefix 0 prim sec with
    | Error e -> Error e
    | Ok _ ->
      let expected = Mvcc.nth_state primary ns in
      let actual = Mvcc.committed_state secondary in
      if expected = actual then Ok ()
      else
        Error
          (Printf.sprintf
             "final secondary state differs from primary S^%d (%d vs %d keys)"
             ns (List.length expected) (List.length actual))
  end

(* --- Fence audit -------------------------------------------------------------

   Every committed read that carried a freshness fence must have observed a
   snapshot actually satisfying it:
   - [Exact ts]: snapshot >= ts;
   - [Session_seq]: snapshot >= the session's fence floor at the read's
     first operation — the max over commit timestamps of the session's
     earlier committed updates and snapshots of its earlier
     [Session_seq]-fenced reads (the same wall-order sweep as
     [inversions], restricted to what the fence promises);
   - [Max_age d]: snapshot >= the commit-visibility horizon at
     [read_at - d], replayed from the primary's commit clock. Without a
     clock a [Max_age] claim is unauditable and reported as a violation —
     recording fenced histories without the clock is a harness bug. *)
let check_fences ?clock history =
  let committed_txns = List.filter committed (History.transactions history) in
  let by_start =
    List.sort (fun a b -> Int.compare a.History.first_op b.History.first_op)
      committed_txns
  in
  let by_finish =
    List.sort (fun a b -> Int.compare a.History.finished b.History.finished)
      committed_txns
  in
  let floors : (string, Timestamp.t) Hashtbl.t = Hashtbl.create 64 in
  let note (t : History.txn) =
    let bump ts =
      match Hashtbl.find_opt floors t.session with
      | Some best when Timestamp.compare best ts >= 0 -> ()
      | Some _ | None -> Hashtbl.replace floors t.session ts
    in
    (match (t.kind, t.commit_ts) with
    | History.Update, Some cts -> bump cts
    | History.Update, None | History.Read_only, _ -> ());
    match (t.kind, t.fence) with
    | History.Read_only, Some { History.claim = Session.Session_seq; _ } ->
      bump t.snapshot
    | _, _ -> ()
  in
  let violations = ref [] in
  let violation t2 fmt =
    Format.kasprintf
      (fun msg ->
        violations :=
          Format.asprintf "%a: fence violated: %s" History.pp_txn t2 msg
          :: !violations)
      fmt
  in
  let check (t2 : History.txn) =
    match (t2.kind, t2.fence) with
    | History.Update, _ | _, None -> ()
    | History.Read_only, Some { History.claim; read_at } -> (
      match claim with
      | Session.Exact ts ->
        if Timestamp.compare t2.snapshot ts < 0 then
          violation t2 "snapshot %a < exact fence %a" Timestamp.pp t2.snapshot
            Timestamp.pp ts
      | Session.Session_seq -> (
        match Hashtbl.find_opt floors t2.session with
        | Some floor when Timestamp.compare t2.snapshot floor < 0 ->
          violation t2 "snapshot %a < session fence floor %a" Timestamp.pp
            t2.snapshot Timestamp.pp floor
        | Some _ | None -> ())
      | Session.Max_age d -> (
        match clock with
        | None ->
          violation t2 "Max_age %g claim but no commit clock to audit it" d
        | Some c ->
          let horizon = Session.clock_horizon c ~cutoff:(read_at -. d) in
          if Timestamp.compare t2.snapshot horizon < 0 then
            violation t2
              "snapshot %a < visibility horizon %a (age %g at read time %g)"
              Timestamp.pp t2.snapshot Timestamp.pp horizon d read_at))
  in
  let rec sweep pending = function
    | [] -> ()
    | (t2 : History.txn) :: rest ->
      let rec absorb = function
        | (t1 : History.txn) :: more when t1.finished < t2.first_op ->
          note t1;
          absorb more
        | remaining -> remaining
      in
      let pending = absorb pending in
      check t2;
      sweep pending rest
  in
  sweep by_finish by_start;
  List.rev !violations

type report = {
  weak_si_violations : string list;
  inversions_all : inversion list;
  inversions_in_session : inversion list;
  inversions_after_update : inversion list;
  fence_violations : string list;
}

let analyze ?clock history =
  {
    weak_si_violations = check_weak_si history;
    inversions_all = inversions history;
    inversions_in_session = inversions ~same_session_only:true history;
    inversions_after_update =
      inversions ~same_session_only:true ~earlier_updates_only:true history;
    fence_violations = check_fences ?clock history;
  }

let satisfies guarantee report =
  report.weak_si_violations = []
  && report.fence_violations = []
  &&
  match guarantee with
  | Session.Weak -> true
  | Session.Prefix_consistent -> report.inversions_after_update = []
  | Session.Strong_session -> report.inversions_in_session = []
  | Session.Strong -> report.inversions_all = []
