(** The flight recorder: a bounded in-memory black box over the unified
    replication event stream, postmortem bundles, and the replay/diff
    engine behind [lsrepl replay].

    A {!t} is a fixed-capacity ring buffer over a compact encoding (parallel
    scalar arrays, site and record names interned) of the same event
    vocabulary the online watchdog consumes: primary commits, propagation
    batching/shipping, fault-channel misbehaviour, per-site refresh
    start/commit, per-read snapshot+fence claims, and secondary
    crash/recovery. Memory is fixed at creation — [O(capacity)] regardless
    of run length — so the recorder is affordable on every run, including
    the million-client showcase.

    On {!trigger} (a watchdog alert, a checker failure, or an explicit
    flag), the recorder snapshots the ring — the event window leading up to
    the trigger instant — together with per-site visibility horizons.
    First trigger wins: later triggers do not overwrite the captured
    window. {!bundle_json} then assembles the postmortem bundle: the
    window, the implicated transactions, horizons, the reproducing
    config+seed, optional Lineage journeys and a metrics snapshot.

    The module obeys the observability design rules (docs/OBSERVABILITY.md,
    docs/FLIGHT.md): explicit plumbing ({!null} default, constructors take
    the sink), free when off (every recording call is a load-and-branch
    behind {!enabled}), observation never feeds back (the recorder only
    writes its own arrays; timestamps come from the bound virtual clock,
    never the wall clock), and deterministic export (same seed ⇒
    byte-identical bundles).

    The second half of the module is the consumer: {!load_bundle} parses a
    bundle back, {!events_until}/{!horizons_at}/{!txn_events} reconstruct
    the window in virtual time, {!witness_events} extracts the concrete
    interleaving of the implicated transactions, and {!diff} reports the
    first divergence between two bundles — a determinism audit. *)

type t

(** The disabled recorder: every operation is a no-op. *)
val null : t

(** [create ?capacity ()] is an enabled recorder retaining the most recent
    [capacity] events (default 4096, clamped to [>= 16]). *)
val create : ?capacity:int -> unit -> t

val enabled : t -> bool
val capacity : t -> int

(** [set_clock t f] makes [f] the source of event timestamps (the simulator
    binds its virtual [Engine.now]). Without a clock, events are stamped
    with their own ordinal. *)
val set_clock : t -> (unit -> float) -> unit

(** [new_epoch t] rearms the recorder for a fresh run: the ring, horizon
    bookkeeping and any captured trigger are cleared. [Sim_system.run]
    calls this at start, so one recorder attached to a sweep records the
    current run only. *)
val new_epoch : t -> unit

(** {2 Recording} *)

(** [note_stage t ?site ~txn stage] records one pipeline stage of update
    transaction [txn] (the primary MVCC id) — the same call shape as
    {!Lineage.emit}, so the two sinks tap identical sites. A
    [Primary_commit] noted this way carries no history id; the simulator
    uses {!note_commit} instead when one exists. *)
val note_stage : t -> ?site:string -> txn:int -> Lineage.stage -> unit

(** [note_commit t ~txn ~hid ~commit_ts ~updates] records a primary commit
    carrying both ids: [txn] the MVCC id (the Lineage trace id) and [hid]
    the history id ([-1] when no history/watchdog is attached) — the id
    checker and watchdog witnesses anchor on. *)
val note_commit : t -> txn:int -> hid:int -> commit_ts:int -> updates:int -> unit

(** [note_read t ~site ~hid ~session ~snapshot ~fence] records a read-only
    transaction's snapshot claim at [site]: the snapshot seq it read at and
    the seq floor its fence/guarantee required ([-1] = unfenced). *)
val note_read :
  t -> site:string -> hid:int -> session:string -> snapshot:int -> fence:int -> unit

val note_crash : t -> site:string -> unit

(** [note_recovery t ~site ~seq] records a secondary recovering with its
    sequence bookkeeping reseeded to [seq]. *)
val note_recovery : t -> site:string -> seq:int -> unit

(** Events noted over the recorder's lifetime (≥ retained). *)
val events_noted : t -> int

(** Approximate resident bytes of the recorder (arrays, interned names and
    live session labels) — the bounded-memory claim, deterministic. *)
val approx_bytes : t -> int

(** {2 Triggers} *)

(** [trigger t ~reason ()] captures the postmortem window (first trigger
    wins). [detail] is a human-readable description of the cause; [txns]
    the implicated transaction ids (history ids where they exist — watchdog
    and checker witnesses — otherwise MVCC ids). *)
val trigger : t -> ?detail:string -> ?txns:int list -> reason:string -> unit -> unit

val triggered : t -> bool
val trigger_reason : t -> string option

(** {2 Bundles} *)

(** One decoded flight event. [site = None] is the primary. *)
type event = { seq : int; time : float; site : string option; ev : ev }

and ev =
  | Commit of { txn : int; hid : int; commit_ts : int; updates : int }
  | Batched of { txn : int }
  | Shipped of { txn : int; updates : int }
  | Chan_fault of { txn : int; fault : string; record : string; ticks : int }
      (** [fault] is one of ["dropped"], ["duplicated"], ["delayed"]
          (with [ticks] of injected delay), ["retransmitted"] *)
  | Enqueued of { txn : int }
  | Refresh_start of { txn : int }
  | Refresh_commit of { txn : int; commit_ts : int }
  | Read of { hid : int; session : string; snapshot : int; fence : int }
  | Crash
  | Recovery of { seq : int }

(** A parsed postmortem bundle. *)
type bundle = {
  version : int;
  reason : string;
  detail : string;
  at : float;  (** trigger instant (virtual time) *)
  implicated : int list;
  window : event array;  (** oldest first; [seq] globally numbered *)
  dropped : int;  (** events evicted from the ring before the window *)
  commits : int;  (** primary commits noted over the whole run *)
  horizons : (string * int) list;
      (** per-site visibility horizon at the trigger instant: ["primary"]
          maps to the latest primary commit ts, each secondary to its
          seq(DBsec); sorted by site name *)
  config : Json.t;  (** the reproducing config+seed, verbatim *)
  journeys : (int * Json.t) list;
      (** Lineage journeys of implicated txns, keyed by history id *)
  metrics : Json.t option;
}

(** [bundle_json t ~config ()] assembles the canonical (sorted-keys)
    postmortem bundle from the captured trigger — or, if nothing triggered,
    from the live ring under reason ["end-of-run"]. [journeys] attaches
    Lineage journeys keyed by implicated id; [metrics] embeds a metrics
    snapshot. Deterministic: same seed, same bytes. *)
val bundle_json :
  t ->
  config:Json.t ->
  ?journeys:(int * Json.t) list ->
  ?metrics:Json.t ->
  unit ->
  Json.t

(** [write_bundle t ~config ~file ()] writes {!bundle_json} to [file],
    creating missing parent directories. *)
val write_bundle :
  t ->
  config:Json.t ->
  ?journeys:(int * Json.t) list ->
  ?metrics:Json.t ->
  file:string ->
  unit ->
  unit

(** {2 Replay} *)

val parse_bundle : Json.t -> (bundle, string) result

(** [load_bundle ~file] reads and parses one bundle. *)
val load_bundle : file:string -> (bundle, string) result

(** One replay line: time, site, event kind and details. *)
val pp_event : Format.formatter -> event -> unit

(** Window events with [time <= vt], oldest first. *)
val events_until : bundle -> vt:float -> event list

(** Window events mentioning transaction [id] (as MVCC id or history id),
    oldest first. *)
val txn_events : bundle -> id:int -> event list

(** [horizons_at b ~vt] is each site's visible snapshot horizon at instant
    [vt], reconstructed from the window: ["primary"] at the newest commit
    ts ≤ [vt], each secondary at its newest refresh-commit ≤ [vt]. Sites
    with no window event by [vt] report [-1] (unknown before the window).
    Sorted by site name. *)
val horizons_at : bundle -> vt:float -> (string * int) list

(** The concrete interleaving of the implicated transactions: every window
    event belonging to an implicated id (directly, or through the MVCC ids
    its commits tie to), oldest first. *)
val witness_events : bundle -> event list

(** [diff a b] is the first divergence between two bundles' windows:
    [None] when both retain identical event sequences, otherwise
    [Some (i, ea, eb)] — the first differing window index with each side's
    event ([None] = that window ended early). *)
val diff : bundle -> bundle -> (int * event option * event option) option
