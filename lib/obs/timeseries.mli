(** A deterministic multi-column time series: the storage behind the
    virtual-time system monitor.

    Samples are (run, time, named values) triples. [run] is a 1-based
    ordinal bumped by {!new_run}, so one series can hold the samples of a
    whole sweep (replications restart virtual time at 0; the ordinal keeps
    them apart). Columns are the union of value names over all samples,
    exported in sorted order; a sample that lacks a column exports as
    [null] (JSON) or an empty cell (CSV).

    Both exporters are deterministic — sorted columns, emission-ordered
    rows, canonical {!Json.number} float formatting — so a fixed seed
    yields byte-identical files. *)

type t

type sample = { run : int; time : float; values : (string * float) list }

val create : unit -> t

(** Start the next run: subsequent {!add}s carry the incremented ordinal.
    Call once before each simulation run that feeds this series. *)
val new_run : t -> unit

(** [add t ~time values] appends one sample at virtual [time]. *)
val add : t -> time:float -> (string * float) list -> unit

(** Number of samples recorded. *)
val length : t -> int

(** Number of {!new_run} calls so far. *)
val runs : t -> int

(** Samples in insertion order. *)
val samples : t -> sample list

(** Union of value names over all samples, sorted. *)
val columns : t -> string list

(** [{"columns": ["run","time",...], "rows": [[run,time,v,...],...]}]. *)
val to_json : t -> Json.t

val json_string : t -> string

(** Header [run,time,<columns>], one line per sample. *)
val csv : t -> string

val write_json : t -> file:string -> unit
val write_csv : t -> file:string -> unit

(** Format by extension: [.csv] writes {!csv}, anything else {!write_json}.
    Parent directories are created as needed (all three writers). *)
val write : t -> file:string -> unit
