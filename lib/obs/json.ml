type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number f =
  if Float.is_finite f then
    let s = Printf.sprintf "%.12g" f in
    s
  else "null"

(* --- Parser ----------------------------------------------------------------- *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let error cur msg = raise (Bad (Printf.sprintf "%s at offset %d" msg cur.pos))
let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let live = ref true in
  while !live do
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> advance cur
    | Some _ | None -> live := false
  done

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | Some got -> error cur (Printf.sprintf "expected %c, found %c" c got)
  | None -> error cur (Printf.sprintf "expected %c, found end of input" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | None -> error cur "unterminated escape"
      | Some c ->
        advance cur;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if cur.pos + 4 > String.length cur.src then
            error cur "truncated \\u escape";
          let hex = String.sub cur.src cur.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> error cur "bad \\u escape"
          in
          cur.pos <- cur.pos + 4;
          (* Non-ASCII code points are replaced: the exporters only ever
             escape control characters, so fidelity beyond ASCII is not
             needed for validation. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?'
        | c -> error cur (Printf.sprintf "bad escape \\%c" c));
        loop ())
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let numeric = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> numeric c | None -> false) do
    advance cur
  done;
  let s = String.sub cur.src start (cur.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> error cur (Printf.sprintf "bad number %S" s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws cur;
        let name = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        fields := (name, v) :: !fields;
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          members ()
        | _ -> expect cur '}'
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value cur in
        items := v :: !items;
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          elements ()
        | _ -> expect cur ']'
      in
      elements ();
      Arr (List.rev !items)
    end
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some _ -> Num (parse_number cur)

let parse s =
  let cur = { src = s; pos = 0 } in
  match parse_value cur with
  | v ->
    skip_ws cur;
    if cur.pos = String.length s then Ok v
    else Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
  | exception Bad msg -> Error msg

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number f)
  | Str s -> escape buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf name;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let rec sort_keys = function
  | (Null | Bool _ | Num _ | Str _) as v -> v
  | Arr items -> Arr (List.map sort_keys items)
  | Obj fields ->
    Obj
      (List.map (fun (name, v) -> (name, sort_keys v)) fields
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))
