type sample = { run : int; time : float; values : (string * float) list }

type t = {
  mutable run : int;
  mutable rev_samples : sample list;
  mutable count : int;
}

let create () = { run = 0; rev_samples = []; count = 0 }

let new_run t = t.run <- t.run + 1

let add t ~time values =
  t.rev_samples <- { run = t.run; time; values } :: t.rev_samples;
  t.count <- t.count + 1

let length t = t.count
let runs t = t.run

let samples t = List.rev t.rev_samples

let columns t =
  let module S = Set.Make (String) in
  let set =
    List.fold_left
      (fun acc s -> List.fold_left (fun acc (k, _) -> S.add k acc) acc s.values)
      S.empty t.rev_samples
  in
  S.elements set

(* Both exporters emit one row per sample, columns sorted by name, floats in
   the canonical Json.number form: same samples, same bytes. A sample that
   lacks a column yields null (JSON) / an empty cell (CSV). *)

let to_json t =
  let cols = columns t in
  let row (s : sample) =
    Json.Arr
      (Json.Num (float_of_int s.run) :: Json.Num s.time
      :: List.map
           (fun c ->
             match List.assoc_opt c s.values with
             | Some v -> Json.Num v
             | None -> Json.Null)
           cols)
  in
  Json.Obj
    [
      ( "columns",
        Json.Arr (Json.Str "run" :: Json.Str "time" :: List.map (fun c -> Json.Str c) cols) );
      ("rows", Json.Arr (List.map row (samples t)));
    ]

let json_string t = Json.to_string (to_json t)

let csv t =
  let cols = columns t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," ("run" :: "time" :: cols));
  Buffer.add_char buf '\n';
  List.iter
    (fun (s : sample) ->
      Buffer.add_string buf (string_of_int s.run);
      Buffer.add_char buf ',';
      Buffer.add_string buf (Json.number s.time);
      List.iter
        (fun c ->
          Buffer.add_char buf ',';
          match List.assoc_opt c s.values with
          | Some v -> Buffer.add_string buf (Json.number v)
          | None -> ())
        cols;
      Buffer.add_char buf '\n')
    (samples t);
  Buffer.contents buf

let write_file ~file text =
  Fsutil.ensure_parent file;
  let oc = open_out file in
  output_string oc text;
  close_out oc

let write_json t ~file =
  write_file ~file (json_string t ^ "\n")

let write_csv t ~file = write_file ~file (csv t)

(* [write] picks the format from the extension: [.csv] gets the CSV form,
   anything else the JSON form. *)
let write t ~file =
  if Filename.check_suffix file ".csv" then write_csv t ~file
  else write_json t ~file
