type counter = { c_live : bool; mutable c_count : int }
type gauge = {
  g_live : bool;
  mutable g_value : float;
  mutable g_peak : float;
  mutable g_seen : bool;
}

(* Base-2 log-scale buckets: bucket 0 collects values <= 0, bucket i >= 1
   covers (2^(i-1-offset), 2^(i-offset)]. With offset 40 and 80 buckets the
   range runs from ~1e-12 to ~5.5e11 — every virtual-time quantity fits. *)
let hist_offset = 40
let hist_size = 80

type histogram = {
  h_live : bool;
  mutable h_count : int;
  mutable h_sum : float;
  h_buckets : int array;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type ev_kind = Complete | Instant

type ev = {
  ev_kind : ev_kind;
  ev_track : int;
  ev_name : string;
  ev_ts : float;
  ev_dur : float;
  ev_args : (string * string) list;
}

type span = { sp_live : bool; sp_track : int; sp_name : string; sp_t0 : float }

type t = {
  live : bool;
  instruments : (string, instrument) Hashtbl.t;
  mutable names : string list; (* registration order, newest first *)
  (* Tracing state. *)
  mutable events : ev list; (* newest first *)
  mutable n_events : int;
  track_index : (string, int) Hashtbl.t;
  mutable tracks : (string * int) list; (* (name, pid), newest first *)
  process_index : (string, int) Hashtbl.t;
  mutable processes : string list; (* newest first *)
}

let make ~live =
  {
    live;
    instruments = Hashtbl.create 64;
    names = [];
    events = [];
    n_events = 0;
    track_index = Hashtbl.create 16;
    tracks = [];
    process_index = Hashtbl.create 8;
    processes = [];
  }

let null = make ~live:false
let create () = make ~live:true
let enabled t = t.live

let null_counter = { c_live = false; c_count = 0 }
let null_gauge = { g_live = false; g_value = 0.; g_peak = 0.; g_seen = false }
let null_histogram =
  { h_live = false; h_count = 0; h_sum = 0.; h_buckets = [||] }
let null_span = { sp_live = false; sp_track = 0; sp_name = ""; sp_t0 = 0. }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let intern t name wanted fresh =
  match Hashtbl.find_opt t.instruments name with
  | Some existing -> (
    match wanted existing with
    | Some i -> i
    | None ->
      invalid_arg
        (Printf.sprintf "Obs: %S is already a %s" name (kind_name existing)))
  | None ->
    let i = fresh () in
    Hashtbl.add t.instruments name i;
    t.names <- name :: t.names;
    (match wanted i with Some x -> x | None -> assert false)

let counter t name =
  if not t.live then null_counter
  else
    intern t name
      (function Counter c -> Some c | _ -> None)
      (fun () -> Counter { c_live = true; c_count = 0 })

let incr ?(by = 1) c = if c.c_live then c.c_count <- c.c_count + by
let count c = c.c_count

let gauge t name =
  if not t.live then null_gauge
  else
    intern t name
      (function Gauge g -> Some g | _ -> None)
      (fun () ->
        Gauge { g_live = true; g_value = 0.; g_peak = 0.; g_seen = false })

let set_gauge g v =
  if g.g_live then begin
    g.g_value <- v;
    if (not g.g_seen) || v > g.g_peak then g.g_peak <- v;
    g.g_seen <- true
  end

let gauge_value g = g.g_value
let gauge_peak g = g.g_peak

let histogram t name =
  if not t.live then null_histogram
  else
    intern t name
      (function Histogram h -> Some h | _ -> None)
      (fun () ->
        Histogram
          {
            h_live = true;
            h_count = 0;
            h_sum = 0.;
            h_buckets = Array.make hist_size 0;
          })

let bucket_of x =
  if x <= 0. || not (Float.is_finite x) then 0
  else begin
    let _, e = Float.frexp x in
    (* x = m * 2^e with m in [0.5, 1), so 2^(e-1) <= x < 2^e. *)
    let i = e + hist_offset in
    if i < 1 then 1 else if i >= hist_size then hist_size - 1 else i
  end

(* Upper bound of bucket [i] (used by the exporter). *)
let bucket_bound i = if i = 0 then 0. else Float.ldexp 1. (i - hist_offset)

let observe h x =
  if h.h_live then begin
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. x;
    let i = bucket_of x in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1
  end

let hist_count h = h.h_count
let hist_sum h = h.h_sum

(* Nearest-rank quantile over the log-scale buckets, linearly interpolated
   within the selected bucket (matching Lsr_stats.Histogram.quantile's rank
   convention: rank = ceil(q*n), 1-based). The bucket only bounds the value,
   so the estimate is exact to within one base-2 bucket width. *)
let hist_quantile h q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Obs.hist_quantile";
  if h.h_count = 0 then 0.
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count))) in
    let rec find i cum =
      if i >= Array.length h.h_buckets then bucket_bound (hist_size - 1)
      else
        let n = h.h_buckets.(i) in
        if cum + n >= rank then
          if i = 0 then 0.
          else begin
            let hi = bucket_bound i in
            let lo = if i = 1 then 0. else bucket_bound (i - 1) in
            lo +. (hi -. lo) *. float_of_int (rank - cum) /. float_of_int n
          end
        else find (i + 1) (cum + n)
    in
    find 0 0
  end

(* --- Tracing ----------------------------------------------------------------- *)

let process_of_track track =
  match String.index_opt track '/' with
  | Some i -> String.sub track 0 i
  | None -> track

let thread_of_track track =
  match String.index_opt track '/' with
  | Some i -> String.sub track (i + 1) (String.length track - i - 1)
  | None -> track

let track_id t track =
  match Hashtbl.find_opt t.track_index track with
  | Some id -> id
  | None ->
    let proc = process_of_track track in
    let pid =
      match Hashtbl.find_opt t.process_index proc with
      | Some pid -> pid
      | None ->
        let pid = Hashtbl.length t.process_index + 1 in
        Hashtbl.add t.process_index proc pid;
        t.processes <- proc :: t.processes;
        pid
    in
    let id = Hashtbl.length t.track_index + 1 in
    Hashtbl.add t.track_index track id;
    t.tracks <- (track, pid) :: t.tracks;
    id

let push_event t ev =
  t.events <- ev :: t.events;
  t.n_events <- t.n_events + 1

let begin_span t ~track ~name ~now =
  if not t.live then null_span
  else { sp_live = true; sp_track = track_id t track; sp_name = name; sp_t0 = now }

let end_span ?(args = []) t sp ~now =
  if sp.sp_live then
    push_event t
      {
        ev_kind = Complete;
        ev_track = sp.sp_track;
        ev_name = sp.sp_name;
        ev_ts = sp.sp_t0;
        ev_dur = now -. sp.sp_t0;
        ev_args = args;
      }

let instant ?(args = []) t ~track ~name ~now =
  if t.live then
    push_event t
      {
        ev_kind = Instant;
        ev_track = track_id t track;
        ev_name = name;
        ev_ts = now;
        ev_dur = 0.;
        ev_args = args;
      }

let event_count t = t.n_events

(* --- Export ------------------------------------------------------------------ *)

let metrics_json t =
  let buf = Buffer.create 4096 in
  let names = List.sort String.compare t.names in
  let pick kind =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt t.instruments name with
        | Some i -> ( match kind i with Some x -> Some (name, x) | None -> None)
        | None -> None)
      names
  in
  let field_sep first = if !first then first := false else Buffer.add_char buf ',' in
  Buffer.add_string buf "{\"counters\":{";
  let first = ref true in
  List.iter
    (fun (name, c) ->
      field_sep first;
      Json.escape buf name;
      Buffer.add_string buf (Printf.sprintf ":%d" c.c_count))
    (pick (function Counter c -> Some c | _ -> None));
  Buffer.add_string buf "},\"gauges\":{";
  let first = ref true in
  List.iter
    (fun (name, g) ->
      field_sep first;
      Json.escape buf name;
      Buffer.add_string buf
        (Printf.sprintf ":{\"last\":%s,\"peak\":%s}" (Json.number g.g_value)
           (Json.number g.g_peak)))
    (pick (function Gauge g -> Some g | _ -> None));
  Buffer.add_string buf "},\"histograms\":{";
  let first = ref true in
  List.iter
    (fun (name, h) ->
      field_sep first;
      Json.escape buf name;
      let mean = if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count in
      Buffer.add_string buf
        (Printf.sprintf
           ":{\"count\":%d,\"sum\":%s,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"buckets\":["
           h.h_count (Json.number h.h_sum) (Json.number mean)
           (Json.number (hist_quantile h 0.5))
           (Json.number (hist_quantile h 0.95))
           (Json.number (hist_quantile h 0.99)));
      let first_bucket = ref true in
      Array.iteri
        (fun i n ->
          if n > 0 then begin
            if !first_bucket then first_bucket := false
            else Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "[%s,%d]" (Json.number (bucket_bound i)) n)
          end)
        h.h_buckets;
      Buffer.add_string buf "]}")
    (pick (function Histogram h -> Some h | _ -> None));
  Buffer.add_string buf "}}";
  Buffer.contents buf

let trace_json t =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char buf ',' in
  (* Metadata: name every process and thread. *)
  let processes = List.rev t.processes in
  List.iteri
    (fun i proc ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"args\":{\"name\":"
           (i + 1));
      Json.escape buf proc;
      Buffer.add_string buf "}}")
    processes;
  List.iteri
    (fun i (track, pid) ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":"
           pid (i + 1));
      Json.escape buf (thread_of_track track);
      Buffer.add_string buf "}}")
    (List.rev t.tracks);
  let pid_of_track = Array.of_list (List.rev_map snd t.tracks) in
  let emit_args args =
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Json.escape buf k;
        Buffer.add_char buf ':';
        Json.escape buf v)
      args;
    Buffer.add_char buf '}'
  in
  List.iter
    (fun ev ->
      sep ();
      let pid = pid_of_track.(ev.ev_track - 1) in
      (match ev.ev_kind with
      | Complete ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"ph\":\"X\",\"name\":%s,\"cat\":\"lsr\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s"
             (let b = Buffer.create 16 in
              Json.escape b ev.ev_name;
              Buffer.contents b)
             pid ev.ev_track
             (Json.number (ev.ev_ts *. 1e6))
             (Json.number (ev.ev_dur *. 1e6)))
      | Instant ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"ph\":\"i\",\"s\":\"t\",\"name\":%s,\"cat\":\"lsr\",\"pid\":%d,\"tid\":%d,\"ts\":%s"
             (let b = Buffer.create 16 in
              Json.escape b ev.ev_name;
              Buffer.contents b)
             pid ev.ev_track
             (Json.number (ev.ev_ts *. 1e6))));
      if ev.ev_args <> [] then emit_args ev.ev_args;
      Buffer.add_char buf '}')
    (List.rev t.events);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write_file ~file contents =
  Fsutil.ensure_parent file;
  let oc = open_out file in
  output_string oc contents;
  close_out oc

let write_metrics t ~file = write_file ~file (metrics_json t)
let write_trace t ~file = write_file ~file (trace_json t)
