(** Observability substrate: a registry of named counters, gauges and
    log-scale histograms, plus span tracing in simulator virtual time.

    One {!t} is one measurement domain (typically one simulation run or one
    embedded system). Layers receive it at construction time, intern their
    instruments once, and bump them on the hot path; with the {!null}
    instance every operation is a single load-and-branch no-op, so
    instrumented code pays nothing when no sink is attached and simulation
    outcomes are independent of whether observation is on.

    Instruments are interned by name: asking twice for the same name returns
    the same instrument, so components that share a name aggregate (e.g. all
    fault channels bump one ["channel.dropped"]) while per-site names stay
    separate. Names are conventionally dotted paths ([layer.metric]).

    Two exporters, both deterministic (instruments sorted by name, trace
    events in emission order, fixed float formatting — same seed, same
    bytes):
    - {!metrics_json}: a flat machine-readable dump of every instrument;
    - {!trace_json}: Chrome [trace_event] JSON loadable in Perfetto or
      [about://tracing], with spans grouped by track ("process/thread"). *)

type t

(** The disabled instance: instruments obtained from it ignore updates,
    spans are dropped. This is the default everywhere. *)
val null : t

(** A fresh, enabled registry. *)
val create : unit -> t

val enabled : t -> bool

(** {2 Instruments} *)

type counter
type gauge
type histogram

(** [counter t name] interns the counter [name].
    @raise Invalid_argument if [name] is already a gauge or histogram. *)
val counter : t -> string -> counter

val incr : ?by:int -> counter -> unit
val count : counter -> int

(** [gauge t name] interns the gauge [name]; a gauge keeps its last value
    and its peak. *)
val gauge : t -> string -> gauge

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_peak : gauge -> float

(** [histogram t name] interns a base-2 log-scale histogram: values fall
    into buckets of exponentially growing width, so response times spanning
    microseconds to minutes fit in a fixed 80-slot array. *)
val histogram : t -> string -> histogram

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

(** [hist_quantile h q] estimates the [q]-quantile (nearest-rank, matching
    [Lsr_stats.Histogram.quantile]) from the log-scale buckets, linearly
    interpolated within the selected bucket — exact to within one base-2
    bucket width. 0 on an empty histogram.
    @raise Invalid_argument unless [0 <= q <= 1]. *)
val hist_quantile : histogram -> float -> float

(** {2 Spans (virtual-time tracing)}

    Timestamps come from the caller (simulator virtual seconds), never from
    a wall clock — tracing a deterministic run yields a deterministic trace.
    A track is a ["process/thread"] path: the segment before the first [/]
    groups tracks into Perfetto processes (e.g. ["site-0/refresher"],
    ["site-0/applicators"], ["primary/propagator"]). *)

type span

(** [begin_span t ~track ~name ~now] opens a span; close it with
    {!end_span}. Unclosed spans are dropped by the exporter. *)
val begin_span : t -> track:string -> name:string -> now:float -> span

val end_span :
  ?args:(string * string) list -> t -> span -> now:float -> unit

(** [instant t ~track ~name ~now] is a zero-duration marker event. *)
val instant :
  ?args:(string * string) list ->
  t -> track:string -> name:string -> now:float -> unit

(** Trace events recorded so far (diagnostic; 0 for {!null}). *)
val event_count : t -> int

(** {2 Export} *)

(** Flat metrics dump:
    [{"counters":{..}, "gauges":{name:{"last":..,"peak":..}},
      "histograms":{name:{"count":..,"sum":..,"mean":..,
                          "p50":..,"p95":..,"p99":..,
                          "buckets":[[upper_bound, count],..]}}}],
    instruments sorted by name. Quantiles are {!hist_quantile} estimates. *)
val metrics_json : t -> string

(** Chrome [trace_event] JSON (the [{"traceEvents":[..]}] envelope):
    metadata events naming each process and thread, then one [ph:"X"]
    complete event per closed span and one [ph:"i"] instant per marker,
    timestamps in microseconds of virtual time. *)
val trace_json : t -> string

val write_metrics : t -> file:string -> unit
val write_trace : t -> file:string -> unit
