type stage =
  | Primary_commit of { commit_ts : int; updates : int }
  | Batched
  | Shipped of { updates : int }
  | Channel_dropped of { record : string }
  | Channel_duplicated of { record : string }
  | Channel_delayed of { record : string; ticks : int }
  | Channel_retransmitted of { record : string }
  | Enqueued
  | Refresh_started
  | Refresh_committed of { commit_ts : int }

type event = {
  seq : int;
  time : float;
  txn : int;
  site : string option;
  stage : stage;
}

type freshness = { at : float; age : float; missed : int }

type t = {
  live : bool;
  mutable clock : (unit -> float) option;
  mutable events : event list; (* newest first *)
  mutable n_events : int;
  mutable n_commits : int;
  commit_ord : (int, int) Hashtbl.t; (* commit_ts -> 1-based commit ordinal *)
  commit_time : (int, float) Hashtbl.t; (* commit_ts -> primary commit time *)
  txn_commit_time : (int, float) Hashtbl.t; (* txn -> primary commit time *)
  fresh_by_site : (string, freshness list ref) Hashtbl.t; (* newest first *)
  lags_by_site : (string, float list ref) Hashtbl.t; (* newest first *)
}

let make ~live =
  {
    live;
    clock = None;
    events = [];
    n_events = 0;
    n_commits = 0;
    commit_ord = Hashtbl.create 64;
    commit_time = Hashtbl.create 64;
    txn_commit_time = Hashtbl.create 64;
    fresh_by_site = Hashtbl.create 8;
    lags_by_site = Hashtbl.create 8;
  }

let null = make ~live:false
let create () = make ~live:true
let enabled t = t.live
let set_clock t f = if t.live then t.clock <- Some f

(* Commit timestamps and txn ids restart with every simulation run sharing
   this sink, so the freshness bookkeeping must restart too; the recorded
   events and samples stay. *)
let new_epoch t =
  if t.live then begin
    t.n_commits <- 0;
    Hashtbl.reset t.commit_ord;
    Hashtbl.reset t.commit_time;
    Hashtbl.reset t.txn_commit_time
  end

(* With no clock bound, events are stamped with their own ordinal: strictly
   increasing, so journeys stay monotone even outside the simulator. *)
let now t =
  match t.clock with Some f -> f () | None -> float_of_int t.n_events

let samples tbl site =
  match Hashtbl.find_opt tbl site with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add tbl site r;
    r

let emit t ?site ~txn stage =
  if t.live then begin
    let time = now t in
    (match stage with
    | Primary_commit { commit_ts; _ } ->
      if not (Hashtbl.mem t.commit_ord commit_ts) then begin
        t.n_commits <- t.n_commits + 1;
        Hashtbl.add t.commit_ord commit_ts t.n_commits;
        Hashtbl.add t.commit_time commit_ts time
      end;
      Hashtbl.replace t.txn_commit_time txn time
    | Refresh_committed _ -> (
      match (site, Hashtbl.find_opt t.txn_commit_time txn) with
      | Some s, Some t0 ->
        let r = samples t.lags_by_site s in
        r := (time -. t0) :: !r
      | _ -> ())
    | _ -> ());
    t.events <- { seq = t.n_events; time; txn; site; stage } :: t.events;
    t.n_events <- t.n_events + 1
  end

let sample_read t ~site ~snapshot =
  if t.live then begin
    let at = now t in
    let reflected =
      if snapshot <= 0 then 0
      else
        match Hashtbl.find_opt t.commit_ord snapshot with
        | Some ord -> ord
        | None -> 0
    in
    let missed = t.n_commits - reflected in
    let age =
      if missed = 0 then 0.
      else
        match Hashtbl.find_opt t.commit_time snapshot with
        | Some t0 -> at -. t0
        | None -> at
    in
    let r = samples t.fresh_by_site site in
    r := { at; age; missed } :: !r
  end

(* --- Accessors ---------------------------------------------------------- *)

let event_count t = t.n_events
let commit_count t = t.n_commits
let events t = List.rev t.events

let txns t =
  let seen = Hashtbl.create 64 in
  List.iter (fun ev -> Hashtbl.replace seen ev.txn ()) t.events;
  List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) seen [])

let journey t ~txn = List.rev (List.filter (fun ev -> ev.txn = txn) t.events)

let sites t =
  let seen = Hashtbl.create 8 in
  Hashtbl.iter (fun s _ -> Hashtbl.replace seen s ()) t.fresh_by_site;
  Hashtbl.iter (fun s _ -> Hashtbl.replace seen s ()) t.lags_by_site;
  List.sort String.compare (Hashtbl.fold (fun s () acc -> s :: acc) seen [])

let freshness_samples t ~site =
  match Hashtbl.find_opt t.fresh_by_site site with
  | Some r -> List.rev !r
  | None -> []

let refresh_lags t ~site =
  match Hashtbl.find_opt t.lags_by_site site with
  | Some r -> List.rev !r
  | None -> []

(* --- Rendering ---------------------------------------------------------- *)

let stage_name = function
  | Primary_commit _ -> "primary-commit"
  | Batched -> "batched"
  | Shipped _ -> "shipped"
  | Channel_dropped _ -> "channel-dropped"
  | Channel_duplicated _ -> "channel-duplicated"
  | Channel_delayed _ -> "channel-delayed"
  | Channel_retransmitted _ -> "channel-retransmitted"
  | Enqueued -> "enqueued"
  | Refresh_started -> "refresh-started"
  | Refresh_committed _ -> "refresh-committed"

let stage_detail = function
  | Primary_commit { commit_ts; updates } ->
    Printf.sprintf " commit_ts=%d updates=%d" commit_ts updates
  | Shipped { updates } -> Printf.sprintf " updates=%d" updates
  | Channel_dropped { record }
  | Channel_duplicated { record }
  | Channel_retransmitted { record } ->
    Printf.sprintf " record=%s" record
  | Channel_delayed { record; ticks } ->
    Printf.sprintf " record=%s ticks=%d" record ticks
  | Refresh_committed { commit_ts } -> Printf.sprintf " commit_ts=%d" commit_ts
  | Batched | Enqueued | Refresh_started -> ""

let pp_event ppf ev =
  Format.fprintf ppf "t=%-12s %-14s %s%s"
    (Printf.sprintf "%.6f" ev.time)
    (match ev.site with Some s -> s | None -> "primary")
    (stage_name ev.stage) (stage_detail ev.stage)

(* --- Export -------------------------------------------------------------- *)

let event_json ev =
  let num n = Json.Num (float_of_int n) in
  let base =
    [
      ("seq", num ev.seq);
      ("time", Json.Num ev.time);
      ("site", match ev.site with Some s -> Json.Str s | None -> Json.Null);
      ("stage", Json.Str (stage_name ev.stage));
    ]
  in
  let extra =
    match ev.stage with
    | Primary_commit { commit_ts; updates } ->
      [ ("commit_ts", num commit_ts); ("updates", num updates) ]
    | Shipped { updates } -> [ ("updates", num updates) ]
    | Channel_dropped { record }
    | Channel_duplicated { record }
    | Channel_retransmitted { record } ->
      [ ("record", Json.Str record) ]
    | Channel_delayed { record; ticks } ->
      [ ("record", Json.Str record); ("ticks", num ticks) ]
    | Refresh_committed { commit_ts } -> [ ("commit_ts", num commit_ts) ]
    | Batched | Enqueued | Refresh_started -> []
  in
  Json.Obj (base @ extra)

let to_json t =
  let num n = Json.Num (float_of_int n) in
  let txn_json id =
    Json.Obj
      [
        ("txn", num id);
        ("events", Json.Arr (List.map event_json (journey t ~txn:id)));
      ]
  in
  let site_json s =
    let fresh f =
      Json.Obj
        [
          ("at", Json.Num f.at);
          ("age", Json.Num f.age);
          ("missed", num f.missed);
        ]
    in
    Json.Obj
      [
        ("site", Json.Str s);
        ("freshness", Json.Arr (List.map fresh (freshness_samples t ~site:s)));
        ( "refresh_lags",
          Json.Arr (List.map (fun l -> Json.Num l) (refresh_lags t ~site:s)) );
      ]
  in
  Json.Obj
    [
      ("commits", num t.n_commits);
      ("events", num t.n_events);
      ("txns", Json.Arr (List.map txn_json (txns t)));
      ("sites", Json.Arr (List.map site_json (sites t)));
    ]

let json t = Json.to_string (to_json t)

let write t ~file =
  Fsutil.ensure_parent file;
  let oc = open_out file in
  output_string oc (json t);
  close_out oc
