(* Compact ring encoding: one slot = one event spread across parallel
   scalar arrays (no per-event allocation on the hot path except the
   session label, which is a shared immutable string). Site and record
   names are interned; codes index the fixed event vocabulary. *)

let c_commit = 0
let c_batched = 1
let c_shipped = 2
let c_dropped = 3
let c_duplicated = 4
let c_delayed = 5
let c_retransmitted = 6
let c_enqueued = 7
let c_refresh_start = 8
let c_refresh_commit = 9
let c_read = 10
let c_crash = 11
let c_recovery = 12

type event = { seq : int; time : float; site : string option; ev : ev }

and ev =
  | Commit of { txn : int; hid : int; commit_ts : int; updates : int }
  | Batched of { txn : int }
  | Shipped of { txn : int; updates : int }
  | Chan_fault of { txn : int; fault : string; record : string; ticks : int }
  | Enqueued of { txn : int }
  | Refresh_start of { txn : int }
  | Refresh_commit of { txn : int; commit_ts : int }
  | Read of { hid : int; session : string; snapshot : int; fence : int }
  | Crash
  | Recovery of { seq : int }

type snap = {
  s_reason : string;
  s_detail : string;
  s_at : float;
  s_txns : int list;
  s_events : event array; (* oldest first *)
  s_dropped : int;
  s_commits : int;
  s_horizons : (string * int) list;
}

type t = {
  live : bool;
  cap : int;
  mutable clock : (unit -> float) option;
  e_time : float array;
  e_code : int array;
  e_txn : int array;
  e_hid : int array;
  e_site : int array; (* intern id; -1 = primary *)
  e_a : int array;
  e_b : int array;
  e_sess : string array;
  mutable total : int; (* events ever noted; write head = total mod cap *)
  mutable names : string array;
  mutable n_names : int;
  name_ids : (string, int) Hashtbl.t;
  horizons : (int, int) Hashtbl.t; (* site intern id -> seq(DBsec) *)
  mutable primary_ts : int;
  mutable commits : int;
  mutable snap : snap option;
}

let make ~live cap =
  let cap = if live then max 16 cap else 0 in
  {
    live;
    cap;
    clock = None;
    e_time = Array.make cap 0.;
    e_code = Array.make cap 0;
    e_txn = Array.make cap (-1);
    e_hid = Array.make cap (-1);
    e_site = Array.make cap (-1);
    e_a = Array.make cap (-1);
    e_b = Array.make cap (-1);
    e_sess = Array.make cap "";
    total = 0;
    names = Array.make 8 "";
    n_names = 0;
    name_ids = Hashtbl.create 16;
    horizons = Hashtbl.create 16;
    primary_ts = 0;
    commits = 0;
    snap = None;
  }

let null = make ~live:false 0
let create ?(capacity = 4096) () = make ~live:true capacity
let enabled t = t.live
let capacity t = t.cap
let set_clock t f = if t.live then t.clock <- Some f

let new_epoch t =
  if t.live then begin
    t.total <- 0;
    Hashtbl.reset t.horizons;
    t.primary_ts <- 0;
    t.commits <- 0;
    t.snap <- None
  end

let now t = match t.clock with Some f -> f () | None -> float_of_int t.total

let intern t s =
  match Hashtbl.find_opt t.name_ids s with
  | Some i -> i
  | None ->
    if t.n_names = Array.length t.names then begin
      let bigger = Array.make (2 * t.n_names) "" in
      Array.blit t.names 0 bigger 0 t.n_names;
      t.names <- bigger
    end;
    let i = t.n_names in
    t.names.(i) <- s;
    t.n_names <- i + 1;
    Hashtbl.add t.name_ids s i;
    i

let push t ~site ~code ~txn ~hid ~a ~b ~sess =
  let i = t.total mod t.cap in
  t.e_time.(i) <- now t;
  t.e_code.(i) <- code;
  t.e_txn.(i) <- txn;
  t.e_hid.(i) <- hid;
  t.e_site.(i) <- site;
  t.e_a.(i) <- a;
  t.e_b.(i) <- b;
  t.e_sess.(i) <- sess;
  t.total <- t.total + 1

let site_id t = function None -> -1 | Some s -> intern t s

let note_commit t ~txn ~hid ~commit_ts ~updates =
  if t.live then begin
    t.commits <- t.commits + 1;
    if commit_ts > t.primary_ts then t.primary_ts <- commit_ts;
    push t ~site:(-1) ~code:c_commit ~txn ~hid ~a:commit_ts ~b:updates ~sess:""
  end

let note_stage t ?site ~txn (stage : Lineage.stage) =
  if t.live then begin
    let sid = site_id t site in
    let push = push t ~site:sid ~txn ~hid:(-1) ~sess:"" in
    match stage with
    | Lineage.Primary_commit { commit_ts; updates } ->
      note_commit t ~txn ~hid:(-1) ~commit_ts ~updates
    | Lineage.Batched -> push ~code:c_batched ~a:(-1) ~b:(-1)
    | Lineage.Shipped { updates } -> push ~code:c_shipped ~a:(-1) ~b:updates
    | Lineage.Channel_dropped { record } ->
      push ~code:c_dropped ~a:(intern t record) ~b:(-1)
    | Lineage.Channel_duplicated { record } ->
      push ~code:c_duplicated ~a:(intern t record) ~b:(-1)
    | Lineage.Channel_delayed { record; ticks } ->
      push ~code:c_delayed ~a:(intern t record) ~b:ticks
    | Lineage.Channel_retransmitted { record } ->
      push ~code:c_retransmitted ~a:(intern t record) ~b:(-1)
    | Lineage.Enqueued -> push ~code:c_enqueued ~a:(-1) ~b:(-1)
    | Lineage.Refresh_started -> push ~code:c_refresh_start ~a:(-1) ~b:(-1)
    | Lineage.Refresh_committed { commit_ts } ->
      (if sid >= 0 then
         match Hashtbl.find_opt t.horizons sid with
         | Some h when h >= commit_ts -> ()
         | _ -> Hashtbl.replace t.horizons sid commit_ts);
      push ~code:c_refresh_commit ~a:commit_ts ~b:(-1)
  end

let note_read t ~site ~hid ~session ~snapshot ~fence =
  if t.live then
    push t ~site:(intern t site) ~code:c_read ~txn:(-1) ~hid ~a:snapshot
      ~b:fence ~sess:session

let note_crash t ~site =
  if t.live then
    push t ~site:(intern t site) ~code:c_crash ~txn:(-1) ~hid:(-1) ~a:(-1)
      ~b:(-1) ~sess:""

let note_recovery t ~site ~seq =
  if t.live then begin
    let sid = intern t site in
    Hashtbl.replace t.horizons sid seq;
    push t ~site:sid ~code:c_recovery ~txn:(-1) ~hid:(-1) ~a:seq ~b:(-1)
      ~sess:""
  end

let events_noted t = t.total

let approx_bytes t =
  (* Seven scalar arrays plus the session-pointer array, the retained
     session labels, and the interned name table: O(capacity + names). *)
  let retained = min t.total t.cap in
  let sess = ref 0 in
  for k = 0 to retained - 1 do
    let i = (t.total - retained + k) mod t.cap in
    sess := !sess + String.length t.e_sess.(i)
  done;
  let names = ref 0 in
  for i = 0 to t.n_names - 1 do
    names := !names + String.length t.names.(i) + 16
  done;
  (8 * 8 * t.cap) + !sess + !names

(* --- Decoding and capture ------------------------------------------------- *)

let decode_slot t i =
  let site = if t.e_site.(i) < 0 then None else Some t.names.(t.e_site.(i)) in
  let txn = t.e_txn.(i) in
  let code = t.e_code.(i) in
  let record a = if a < 0 then "" else t.names.(a) in
  let ev =
    if code = c_commit then
      Commit
        { txn; hid = t.e_hid.(i); commit_ts = t.e_a.(i); updates = t.e_b.(i) }
    else if code = c_batched then Batched { txn }
    else if code = c_shipped then Shipped { txn; updates = t.e_b.(i) }
    else if code = c_dropped then
      Chan_fault { txn; fault = "dropped"; record = record t.e_a.(i); ticks = 0 }
    else if code = c_duplicated then
      Chan_fault
        { txn; fault = "duplicated"; record = record t.e_a.(i); ticks = 0 }
    else if code = c_delayed then
      Chan_fault
        { txn; fault = "delayed"; record = record t.e_a.(i); ticks = t.e_b.(i) }
    else if code = c_retransmitted then
      Chan_fault
        { txn; fault = "retransmitted"; record = record t.e_a.(i); ticks = 0 }
    else if code = c_enqueued then Enqueued { txn }
    else if code = c_refresh_start then Refresh_start { txn }
    else if code = c_refresh_commit then
      Refresh_commit { txn; commit_ts = t.e_a.(i) }
    else if code = c_read then
      Read
        {
          hid = t.e_hid.(i);
          session = t.e_sess.(i);
          snapshot = t.e_a.(i);
          fence = t.e_b.(i);
        }
    else if code = c_crash then Crash
    else Recovery { seq = t.e_a.(i) }
  in
  (t.e_time.(i), ev, site)

let live_horizons t =
  let hs =
    Hashtbl.fold
      (fun sid seq acc -> (t.names.(sid), seq) :: acc)
      t.horizons
      [ ("primary", t.primary_ts) ]
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) hs

let capture t ~reason ~detail ~txns =
  let retained = min t.total t.cap in
  let dropped = t.total - retained in
  let events =
    Array.init retained (fun k ->
        let i = (dropped + k) mod t.cap in
        let time, ev, site = decode_slot t i in
        { seq = dropped + k; time; site; ev })
  in
  {
    s_reason = reason;
    s_detail = detail;
    s_at = now t;
    s_txns = txns;
    s_events = events;
    s_dropped = dropped;
    s_commits = t.commits;
    s_horizons = live_horizons t;
  }

let trigger t ?(detail = "") ?(txns = []) ~reason () =
  if t.live && t.snap = None then
    t.snap <- Some (capture t ~reason ~detail ~txns)

let triggered t = t.snap <> None
let trigger_reason t = Option.map (fun s -> s.s_reason) t.snap

(* --- Bundle JSON ----------------------------------------------------------- *)

type bundle = {
  version : int;
  reason : string;
  detail : string;
  at : float;
  implicated : int list;
  window : event array;
  dropped : int;
  commits : int;
  horizons : (string * int) list;
  config : Json.t;
  journeys : (int * Json.t) list;
  metrics : Json.t option;
}

let num n = Json.Num (float_of_int n)

let kind_name = function
  | Commit _ -> "commit"
  | Batched _ -> "batched"
  | Shipped _ -> "shipped"
  | Chan_fault { fault; _ } -> "channel-" ^ fault
  | Enqueued _ -> "enqueued"
  | Refresh_start _ -> "refresh-start"
  | Refresh_commit _ -> "refresh-commit"
  | Read _ -> "read"
  | Crash -> "crash"
  | Recovery _ -> "recovery"

let event_json e =
  let base =
    [
      ("seq", num e.seq);
      ("time", Json.Num e.time);
      ("site", match e.site with Some s -> Json.Str s | None -> Json.Null);
      ("kind", Json.Str (kind_name e.ev));
    ]
  in
  let extra =
    match e.ev with
    | Commit { txn; hid; commit_ts; updates } ->
      [
        ("txn", num txn);
        ("hid", num hid);
        ("commit_ts", num commit_ts);
        ("updates", num updates);
      ]
    | Batched { txn } | Enqueued { txn } | Refresh_start { txn } ->
      [ ("txn", num txn) ]
    | Shipped { txn; updates } -> [ ("txn", num txn); ("updates", num updates) ]
    | Chan_fault { txn; fault = _; record; ticks } ->
      [ ("txn", num txn); ("record", Json.Str record); ("ticks", num ticks) ]
    | Refresh_commit { txn; commit_ts } ->
      [ ("txn", num txn); ("commit_ts", num commit_ts) ]
    | Read { hid; session; snapshot; fence } ->
      [
        ("hid", num hid);
        ("session", Json.Str session);
        ("snapshot", num snapshot);
        ("fence", num fence);
      ]
    | Crash -> []
    | Recovery { seq } -> [ ("seq", num seq) ]
  in
  Json.Obj (base @ extra)

let snap_for_export t =
  match t.snap with
  | Some s -> s
  | None -> capture t ~reason:"end-of-run" ~detail:"" ~txns:[]

let bundle_json t ~config ?(journeys = []) ?metrics () =
  let s = snap_for_export t in
  let j =
    Json.Obj
      [
        ("flight_version", num 1);
        ("reason", Json.Str s.s_reason);
        ("detail", Json.Str s.s_detail);
        ("at", Json.Num s.s_at);
        ("implicated", Json.Arr (List.map num s.s_txns));
        ("capacity", num t.cap);
        ("events_noted", num (s.s_dropped + Array.length s.s_events));
        ("dropped", num s.s_dropped);
        ("commits", num s.s_commits);
        ( "horizons",
          Json.Obj (List.map (fun (site, h) -> (site, num h)) s.s_horizons) );
        ( "window",
          Json.Arr (Array.to_list (Array.map event_json s.s_events)) );
        ("config", config);
        ( "journeys",
          Json.Arr
            (List.map
               (fun (id, j) -> Json.Obj [ ("txn", num id); ("journey", j) ])
               journeys) );
        ("metrics", match metrics with Some m -> m | None -> Json.Null);
      ]
  in
  Json.sort_keys j

let write_bundle t ~config ?journeys ?metrics ~file () =
  Fsutil.ensure_parent file;
  let oc = open_out file in
  output_string oc (Json.to_string (bundle_json t ~config ?journeys ?metrics ()));
  close_out oc

(* --- Parsing --------------------------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let jint name j =
  match Json.member name j with
  | Some (Json.Num f) -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "bundle: missing int field %S" name)

let jfloat name j =
  match Json.member name j with
  | Some (Json.Num f) -> Ok f
  | _ -> Error (Printf.sprintf "bundle: missing number field %S" name)

let jstr name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "bundle: missing string field %S" name)

let parse_event j =
  let* seq = jint "seq" j in
  let* time = jfloat "time" j in
  let* kind = jstr "kind" j in
  let site =
    match Json.member "site" j with Some (Json.Str s) -> Some s | _ -> None
  in
  let* ev =
    match kind with
    | "commit" ->
      let* txn = jint "txn" j in
      let* hid = jint "hid" j in
      let* commit_ts = jint "commit_ts" j in
      let* updates = jint "updates" j in
      Ok (Commit { txn; hid; commit_ts; updates })
    | "batched" ->
      let* txn = jint "txn" j in
      Ok (Batched { txn })
    | "shipped" ->
      let* txn = jint "txn" j in
      let* updates = jint "updates" j in
      Ok (Shipped { txn; updates })
    | "enqueued" ->
      let* txn = jint "txn" j in
      Ok (Enqueued { txn })
    | "refresh-start" ->
      let* txn = jint "txn" j in
      Ok (Refresh_start { txn })
    | "refresh-commit" ->
      let* txn = jint "txn" j in
      let* commit_ts = jint "commit_ts" j in
      Ok (Refresh_commit { txn; commit_ts })
    | "read" ->
      let* hid = jint "hid" j in
      let* session = jstr "session" j in
      let* snapshot = jint "snapshot" j in
      let* fence = jint "fence" j in
      Ok (Read { hid; session; snapshot; fence })
    | "crash" -> Ok Crash
    | "recovery" ->
      let* seq = jint "seq" j in
      Ok (Recovery { seq })
    | k when String.length k > 8 && String.sub k 0 8 = "channel-" ->
      let fault = String.sub k 8 (String.length k - 8) in
      let* txn = jint "txn" j in
      let* record = jstr "record" j in
      let* ticks = jint "ticks" j in
      Ok (Chan_fault { txn; fault; record; ticks })
    | k -> Error (Printf.sprintf "bundle: unknown event kind %S" k)
  in
  Ok { seq; time; site; ev }

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* v = f x in
    let* vs = collect f rest in
    Ok (v :: vs)

let parse_bundle j =
  let* version = jint "flight_version" j in
  if version <> 1 then
    Error (Printf.sprintf "bundle: unsupported flight_version %d" version)
  else
    let* reason = jstr "reason" j in
    let* detail = jstr "detail" j in
    let* at = jfloat "at" j in
    let* dropped = jint "dropped" j in
    let* commits = jint "commits" j in
    let* implicated =
      match Json.member "implicated" j with
      | Some (Json.Arr l) ->
        collect
          (function
            | Json.Num f -> Ok (int_of_float f)
            | _ -> Error "bundle: non-numeric implicated id")
          l
      | _ -> Error "bundle: missing implicated list"
    in
    let* window =
      match Json.member "window" j with
      | Some (Json.Arr l) ->
        let* evs = collect parse_event l in
        Ok (Array.of_list evs)
      | _ -> Error "bundle: missing window"
    in
    let* horizons =
      match Json.member "horizons" j with
      | Some (Json.Obj fields) ->
        collect
          (function
            | site, Json.Num f -> Ok (site, int_of_float f)
            | site, _ ->
              Error (Printf.sprintf "bundle: non-numeric horizon for %S" site))
          fields
      | _ -> Error "bundle: missing horizons"
    in
    let config =
      Option.value ~default:Json.Null (Json.member "config" j)
    in
    let* journeys =
      match Json.member "journeys" j with
      | Some (Json.Arr l) ->
        collect
          (fun entry ->
            let* id = jint "txn" entry in
            match Json.member "journey" entry with
            | Some jn -> Ok (id, jn)
            | None -> Error "bundle: journey entry missing events")
          l
      | _ -> Ok []
    in
    let metrics =
      match Json.member "metrics" j with
      | None | Some Json.Null -> None
      | Some m -> Some m
    in
    Ok
      {
        version;
        reason;
        detail;
        at;
        implicated;
        window;
        dropped;
        commits;
        horizons;
        config;
        journeys;
        metrics;
      }

let load_bundle ~file =
  match
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s ->
    let* j = Json.parse s in
    parse_bundle j

(* --- Replay ---------------------------------------------------------------- *)

let ev_detail = function
  | Commit { txn; hid; commit_ts; updates } ->
    Printf.sprintf " txn=%d%s commit_ts=%d updates=%d" txn
      (if hid >= 0 then Printf.sprintf " hid=%d" hid else "")
      commit_ts updates
  | Batched { txn } | Enqueued { txn } | Refresh_start { txn } ->
    Printf.sprintf " txn=%d" txn
  | Shipped { txn; updates } -> Printf.sprintf " txn=%d updates=%d" txn updates
  | Chan_fault { txn; fault = _; record; ticks } ->
    Printf.sprintf " txn=%d record=%s%s" txn record
      (if ticks > 0 then Printf.sprintf " ticks=%d" ticks else "")
  | Refresh_commit { txn; commit_ts } ->
    Printf.sprintf " txn=%d commit_ts=%d" txn commit_ts
  | Read { hid; session; snapshot; fence } ->
    Printf.sprintf "%s session=%s snapshot=%d%s"
      (if hid >= 0 then Printf.sprintf " hid=%d" hid else "")
      session snapshot
      (if fence >= 0 then Printf.sprintf " fence=%d" fence else "")
  | Crash -> ""
  | Recovery { seq } -> Printf.sprintf " seq=%d"  seq

let pp_event ppf e =
  Format.fprintf ppf "#%-6d t=%-12s %-14s %s%s" e.seq
    (Printf.sprintf "%.6f" e.time)
    (match e.site with Some s -> s | None -> "primary")
    (kind_name e.ev) (ev_detail e.ev)

let events_until b ~vt =
  Array.to_list b.window |> List.filter (fun e -> e.time <= vt)

let event_ids e =
  match e.ev with
  | Commit { txn; hid; _ } -> if hid >= 0 then [ txn; hid ] else [ txn ]
  | Batched { txn }
  | Shipped { txn; _ }
  | Chan_fault { txn; _ }
  | Enqueued { txn }
  | Refresh_start { txn }
  | Refresh_commit { txn; _ } ->
    [ txn ]
  | Read { hid; _ } -> [ hid ]
  | Crash | Recovery _ -> []

let txn_events b ~id =
  Array.to_list b.window
  |> List.filter (fun e -> List.mem id (event_ids e))

let horizons_at b ~vt =
  let sites = Hashtbl.create 8 in
  Hashtbl.replace sites "primary" (-1);
  Array.iter
    (fun e ->
      (match e.site with
      | Some s -> if not (Hashtbl.mem sites s) then Hashtbl.replace sites s (-1)
      | None -> ());
      if e.time <= vt then
        match (e.site, e.ev) with
        | None, Commit { commit_ts; _ } ->
          if commit_ts > Hashtbl.find sites "primary" then
            Hashtbl.replace sites "primary" commit_ts
        | Some s, Refresh_commit { commit_ts; _ } ->
          if commit_ts > Hashtbl.find sites s then
            Hashtbl.replace sites s commit_ts
        | Some s, Recovery { seq } ->
          if seq > Hashtbl.find sites s then Hashtbl.replace sites s seq
        | _ -> ())
    b.window;
  Hashtbl.fold (fun s h acc -> (s, h) :: acc) sites []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let witness_events b =
  let ids = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace ids id ()) b.implicated;
  (* Implicated ids are history ids where they exist; a commit event ties a
     history id to its MVCC id, pulling the whole pipeline journey of that
     update into the witness. *)
  Array.iter
    (fun e ->
      match e.ev with
      | Commit { txn; hid; _ } when hid >= 0 && Hashtbl.mem ids hid ->
        Hashtbl.replace ids txn ()
      | _ -> ())
    b.window;
  Array.to_list b.window
  |> List.filter (fun e ->
         List.exists (fun id -> Hashtbl.mem ids id) (event_ids e))

let diff a b =
  let na = Array.length a.window and nb = Array.length b.window in
  let rec go i =
    if i >= na && i >= nb then None
    else if i >= na then Some (i, None, Some b.window.(i))
    else if i >= nb then Some (i, Some a.window.(i), None)
    else if a.window.(i) = b.window.(i) then go (i + 1)
    else Some (i, Some a.window.(i), Some b.window.(i))
  in
  go 0
