let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    (* Another process may have raced us; an existing directory is fine. *)
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let ensure_parent file = mkdir_p (Filename.dirname file)
