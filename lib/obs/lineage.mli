(** Causal lineage tracing for update transactions, plus the per-site
    replication freshness observer.

    A {!t} is a sink that follows each update transaction through the
    replication pipeline: the trace id is the transaction's primary MVCC id
    (already carried by every {!Txn_record}-shaped message), and each layer
    appends one causally-linked, virtual-time-stamped {!event} as the
    transaction passes through — primary commit, propagation batching and
    shipping, the fault channel's injected misbehaviour, and each
    secondary's refresh machinery. Reads contribute {!freshness} samples:
    how stale the snapshot a read-only transaction actually saw was.

    The module obeys the observability design rules (docs/OBSERVABILITY.md,
    docs/TRACING.md):
    - {e explicit plumbing}: layers receive the sink at construction time;
      there is no global.
    - {e free when off}: {!null} makes every operation a load-and-branch
      no-op, and call sites guard event construction behind {!enabled}.
    - {e observation never feeds back}: the sink only records; nothing in
      the pipeline reads it.
    - {e deterministic export}: timestamps are virtual (or event-ordinal),
      transactions and sites are sorted, floats use the canonical
      {!Json.number} form — same seed, same bytes. *)

type t

(** The disabled sink: everything is a no-op, accessors return nothing. *)
val null : t

(** A fresh, enabled sink. *)
val create : unit -> t

val enabled : t -> bool

(** [set_clock t f] makes [f] the source of event timestamps (the simulator
    binds its virtual [Engine.now]). Without a clock, events are stamped
    with their own ordinal — still strictly monotone in emission order. *)
val set_clock : t -> (unit -> float) -> unit

(** [new_epoch t] resets the commit bookkeeping (commit ordinals and times)
    while keeping every recorded event and sample. One sink may span
    several simulation runs (a sweep, the fault scenarios); each run is a
    fresh epoch — primary commit timestamps and MVCC txn ids restart per
    run, so freshness accounting must too. [Sim_system.run] calls this at
    start; events and samples keep accumulating across epochs. *)
val new_epoch : t -> unit

(** {2 Recording} *)

(** One pipeline stage of a transaction's journey. Channel stages identify
    the affected record by its rendered kind ([record]) because a network
    message may carry any {!Txn_record}; [ticks] is the injected extra
    delay in channel ticks. *)
type stage =
  | Primary_commit of { commit_ts : int; updates : int }
  | Batched  (** the propagator opened a batch for this transaction *)
  | Shipped of { updates : int }
      (** the squashed commit record left the propagator *)
  | Channel_dropped of { record : string }
  | Channel_duplicated of { record : string }
  | Channel_delayed of { record : string; ticks : int }
  | Channel_retransmitted of { record : string }
  | Enqueued  (** commit record entered a secondary's refresh queue *)
  | Refresh_started
  | Refresh_committed of { commit_ts : int }

type event = {
  seq : int;  (** global emission order *)
  time : float;  (** virtual time (or event ordinal without a clock) *)
  txn : int;  (** trace id: the primary MVCC transaction id *)
  site : string option;  (** [None] = the primary *)
  stage : stage;
}

(** [emit t ~txn stage] appends one event. [Primary_commit] additionally
    registers the commit for freshness accounting; [Refresh_committed]
    records the propagation lag (refresh commit time minus primary commit
    time) for [site]. *)
val emit : t -> ?site:string -> txn:int -> stage -> unit

(** One read-only transaction's staleness measurement at a secondary. *)
type freshness = {
  at : float;  (** when the read snapshot was taken *)
  age : float;
      (** virtual-time age of the newest primary commit reflected in the
          snapshot — 0 when the site had every commit applied *)
  missed : int;
      (** committed-but-unapplied primary transactions at sample time *)
}

(** [sample_read t ~site ~snapshot] records a freshness sample for a
    read-only transaction whose snapshot reflects primary commits up to
    timestamp [snapshot] (the site's seq(DBsec)). *)
val sample_read : t -> site:string -> snapshot:int -> unit

(** {2 Accessors} *)

val event_count : t -> int

(** Distinct primary commits registered so far. *)
val commit_count : t -> int

(** All events, in emission order. *)
val events : t -> event list

(** Traced transaction ids, ascending. *)
val txns : t -> int list

(** [journey t ~txn] is [txn]'s events in emission order — causally sorted,
    with non-decreasing [time]. *)
val journey : t -> txn:int -> event list

(** Sites with at least one freshness or lag sample, sorted. *)
val sites : t -> string list

val freshness_samples : t -> site:string -> freshness list

(** Propagation lags (refresh commit − primary commit, seconds of virtual
    time) observed at [site], in commit order. *)
val refresh_lags : t -> site:string -> float list

(** {2 Rendering and export} *)

val stage_name : stage -> string

(** One journey line: time, site, stage and stage details. *)
val pp_event : Format.formatter -> event -> unit

(** One event as a JSON object ([{seq,time,site,stage,..}] with the stage's
    detail fields inlined) — the element shape of {!to_json}'s journey
    arrays, exposed so the flight recorder's postmortem bundles can embed
    journeys in the same form. *)
val event_json : event -> Json.t

(** Deterministic lineage document:
    [{"commits":..,"events":..,
      "txns":[{"txn":..,"events":[{seq,time,site,stage,..}]}],
      "sites":[{"site":..,"freshness":[{at,age,missed}],
                "refresh_lags":[..]}]}],
    transactions sorted by id, events in emission order, sites sorted. *)
val to_json : t -> Json.t

val json : t -> string

(** [write t ~file] writes {!json}, creating missing parent directories. *)
val write : t -> file:string -> unit
