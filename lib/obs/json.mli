(** A minimal, dependency-free JSON layer for the observability exporters.

    Emission is Buffer-based and deterministic (callers control field order
    and float formatting); parsing is a small recursive-descent reader used
    by the smoke targets and tests to validate that emitted trace/metrics
    files are well-formed. This is not a general-purpose JSON library: no
    streaming, no unicode escapes beyond [\uXXXX] pass-through on input. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [escape buf s] appends [s] to [buf] as a JSON string literal, including
    the surrounding double quotes. *)
val escape : Buffer.t -> string -> unit

(** [number f] is the canonical text form used by every exporter ([%.12g],
    with non-finite values mapped to [null] — JSON has no inf/nan). *)
val number : float -> string

(** [parse s] reads one JSON value; trailing non-whitespace is an error. *)
val parse : string -> (t, string) result

(** [member name j] is the value of field [name] when [j] is an object. *)
val member : string -> t -> t option

(** [to_string j] re-emits a parsed value (object field order preserved);
    used only by tests for round-tripping. *)
val to_string : t -> string

(** [sort_keys j] recursively sorts every object's fields by name — the
    canonical form the analyzer and planner exporters emit so their JSON is
    byte-stable under refactoring (array order is semantic and preserved). *)
val sort_keys : t -> t
