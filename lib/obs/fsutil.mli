(** Tiny filesystem helpers shared by the exporters.

    Every export entry point ([Obs.write_metrics], [Obs.write_trace],
    [Lineage.write]) creates missing parent directories of its output path,
    so [--metrics out/deep/m.json] works without a prior [mkdir -p]. *)

(** [mkdir_p dir] creates [dir] and any missing ancestors ([mkdir -p]).
    Existing directories are left untouched. *)
val mkdir_p : string -> unit

(** [ensure_parent file] creates the directory that will contain [file]. *)
val ensure_parent : string -> unit
