(* The pre-PR-6 dynamic checker, kept verbatim as a test-only oracle: the
   differential suite in test_checker_diff fuzzes histories and asserts the
   rewritten polynomial checker in Lsr_core.Checker agrees with this
   implementation on every verdict and produces equivalent witnesses. The
   algorithms here are the quadratic originals (list-based version-chain
   walks, List.mem edge dedup, recursive DFS) — correct on small histories,
   which is all the oracle needs. *)

open Lsr_storage
open Lsr_core

type inversion = { earlier : History.txn; later : History.txn }

let effective_state (t : History.txn) =
  match (t.kind, t.commit_ts) with
  | History.Update, Some ts -> Some ts
  | History.Update, None -> None
  | History.Read_only, _ -> Some t.snapshot

let committed (t : History.txn) =
  match (t.kind, t.commit_ts) with
  | History.Update, Some _ -> true
  | History.Update, None -> false
  | History.Read_only, _ -> true

let inversions ?(same_session_only = false) ?(earlier_updates_only = false)
    history =
  let txns = History.transactions history in
  let by_finish =
    List.sort (fun a b -> Int.compare a.History.finished b.History.finished)
      (List.filter committed txns)
  in
  let by_start =
    List.sort (fun a b -> Int.compare a.History.first_op b.History.first_op)
      (List.filter committed txns)
  in
  let global_max : (Timestamp.t * History.txn) option ref = ref None in
  let session_max : (string, Timestamp.t * History.txn) Hashtbl.t =
    Hashtbl.create 64
  in
  let note (t : History.txn) =
    match effective_state t with
    | None -> ()
    | Some _ when earlier_updates_only && t.kind = History.Read_only -> ()
    | Some ts ->
      (match !global_max with
      | Some (best, _) when Timestamp.compare best ts >= 0 -> ()
      | Some _ | None -> global_max := Some (ts, t));
      (match Hashtbl.find_opt session_max t.session with
      | Some (best, _) when Timestamp.compare best ts >= 0 -> ()
      | Some _ | None -> Hashtbl.replace session_max t.session (ts, t))
  in
  let rec sweep pending acc = function
    | [] -> List.rev acc
    | (t2 : History.txn) :: rest ->
      let rec absorb = function
        | (t1 : History.txn) :: more when t1.finished < t2.first_op ->
          note t1;
          absorb more
        | remaining -> remaining
      in
      let pending = absorb pending in
      let best =
        if same_session_only then Hashtbl.find_opt session_max t2.session
        else !global_max
      in
      let acc =
        match best with
        | Some (ts, t1) when Timestamp.compare t2.snapshot ts < 0 ->
          { earlier = t1; later = t2 } :: acc
        | Some _ | None -> acc
      in
      sweep pending acc rest
  in
  sweep by_finish [] by_start

let is_strong_si history = inversions history = []

let is_strong_session_si history =
  inversions ~same_session_only:true history = []

let check_weak_si history =
  let txns = History.transactions history in
  let updates =
    List.filter_map
      (fun (t : History.txn) ->
        match (t.kind, t.commit_ts) with
        | History.Update, Some ts -> Some (ts, t.writes)
        | History.Update, None | History.Read_only, _ -> None)
      txns
    |> List.sort (fun (a, _) (b, _) -> Timestamp.compare a b)
  in
  let by_snapshot =
    List.sort (fun a b -> Timestamp.compare a.History.snapshot b.History.snapshot) txns
  in
  let state : (string, string option) Hashtbl.t = Hashtbl.create 1024 in
  let violations = ref [] in
  let check_txn (t : History.txn) =
    let own_writes =
      List.fold_left
        (fun acc { Wal.key; _ } -> key :: acc)
        [] t.writes
    in
    List.iter
      (fun (key, observed) ->
        if not (List.mem key own_writes) then begin
          let expected = Option.join (Hashtbl.find_opt state key) in
          if expected <> observed then
            violations :=
              Format.asprintf
                "%a read %s = %s but state S@%a has %s" History.pp_txn t key
                (match observed with Some v -> v | None -> "<none>")
                Timestamp.pp t.snapshot
                (match expected with Some v -> v | None -> "<none>")
              :: !violations
        end)
      t.reads
  in
  let rec sweep pending_updates = function
    | [] -> ()
    | (t : History.txn) :: rest ->
      let rec absorb = function
        | (ts, writes) :: more when Timestamp.compare ts t.snapshot <= 0 ->
          List.iter (fun { Wal.key; value } -> Hashtbl.replace state key value) writes;
          absorb more
        | remaining -> remaining
      in
      let pending_updates = absorb pending_updates in
      check_txn t;
      sweep pending_updates rest
  in
  sweep updates by_snapshot;
  List.rev !violations

let serialization_cycle history =
  let txns = List.filter committed (History.transactions history) in
  let writers : (string, (Timestamp.t * int) list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (t : History.txn) ->
      match t.commit_ts with
      | None -> ()
      | Some cts ->
        List.iter
          (fun { Wal.key; _ } ->
            let chain = Option.value ~default:[] (Hashtbl.find_opt writers key) in
            Hashtbl.replace writers key ((cts, t.id) :: chain))
          t.writes)
    txns;
  let chains = Hashtbl.create 256 in
  Hashtbl.iter
    (fun key chain ->
      Hashtbl.replace chains key
        (List.sort (fun (a, _) (b, _) -> Timestamp.compare a b) chain))
    writers;
  let edges : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let add_edge a b =
    if a <> b then
      let succ = Option.value ~default:[] (Hashtbl.find_opt edges a) in
      if not (List.mem b succ) then Hashtbl.replace edges a (b :: succ)
  in
  Hashtbl.iter
    (fun _ chain ->
      let rec link = function
        | (_, a) :: ((_, b) :: _ as rest) ->
          add_edge a b;
          link rest
        | [ _ ] | [] -> ()
      in
      link chain)
    chains;
  List.iter
    (fun (t : History.txn) ->
      let own_keys = List.map (fun { Wal.key; _ } -> key) t.writes in
      List.iter
        (fun (key, _) ->
          if not (List.mem key own_keys) then
            match Hashtbl.find_opt chains key with
            | None -> ()
            | Some chain ->
              let visible =
                List.fold_left
                  (fun acc (cts, id) ->
                    if Timestamp.compare cts t.snapshot <= 0 then Some (cts, id)
                    else acc)
                  None chain
              in
              let next =
                List.find_opt
                  (fun (cts, _) -> Timestamp.compare cts t.snapshot > 0)
                  chain
              in
              (match visible with
              | Some (_, writer) -> add_edge writer t.id
              | None -> ());
              (match next with
              | Some (_, overwriter) -> add_edge t.id overwriter
              | None -> ()))
        t.reads)
    txns;
  let color = Hashtbl.create 64 in
  let cycle = ref None in
  let rec visit path id =
    match Hashtbl.find_opt color id with
    | Some `Done -> ()
    | Some `Active ->
      if !cycle = None then begin
        let rec take acc = function
          | [] -> acc
          | x :: _ when x = id -> x :: acc
          | x :: rest -> take (x :: acc) rest
        in
        cycle := Some (take [] path)
      end
    | None ->
      Hashtbl.replace color id `Active;
      List.iter
        (fun succ -> if !cycle = None then visit (id :: path) succ)
        (Option.value ~default:[] (Hashtbl.find_opt edges id));
      Hashtbl.replace color id `Done
  in
  List.iter
    (fun (t : History.txn) -> if !cycle = None then visit [] t.id)
    txns;
  !cycle

let is_serializable history = serialization_cycle history = None

type report = {
  weak_si_violations : string list;
  inversions_all : inversion list;
  inversions_in_session : inversion list;
  inversions_after_update : inversion list;
}

let analyze history =
  {
    weak_si_violations = check_weak_si history;
    inversions_all = inversions history;
    inversions_in_session = inversions ~same_session_only:true history;
    inversions_after_update =
      inversions ~same_session_only:true ~earlier_updates_only:true history;
  }

let satisfies guarantee report =
  report.weak_si_violations = []
  &&
  match guarantee with
  | Session.Weak -> true
  | Session.Prefix_consistent -> report.inversions_after_update = []
  | Session.Strong_session -> report.inversions_in_session = []
  | Session.Strong -> report.inversions_all = []
