INSERT INTO books (pk, title, genre, price) VALUES ('sicp', 'SICP', 'cs', 45.0)
INSERT INTO books (pk, title, genre, price) VALUES ('dune', 'Dune', 'scifi', 12.5)
SELECT title FROM books WHERE genre = 'cs'
EXPLAIN SELECT * FROM books WHERE genre = 'cs'
BEGIN
UPDATE books SET price = 40.0 WHERE pk = 'sicp'
DELETE FROM books WHERE pk = 'dune'
COMMIT
SELECT COUNT(*), MIN(price) FROM books
INSERT INTO books (pk, title, genre, price) VALUES ('taocp', 'TAOCP', 'cs', 180.0)
SELECT COUNT(*), MAX(price) FROM books GROUP BY genre HAVING count >= 1
\pump
\check
\quit
