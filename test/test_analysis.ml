(* Tests for the static SI-anomaly analyzer (lib/analysis), in four tiers:

   1. units for the symbolic footprint extraction, the static dependency
      graph and the session-guarantee pass;
   2. the soundness cross-validation: seeded, randomly interleaved
      executions of the built-in workloads against raw MVCC, where every
      serialization cycle the dynamic checker finds must be covered by a
      statically flagged dangerous structure — and the workload analyzed
      clean must produce no cycle at all;
   3. the session cross-validation: a replicated-system run under weak SI
      whose data-dependent in-session inversions must all be predicted by
      the session pass;
   4. the planner (Plan + Partition) and its bidirectional cross-validation:
      the inferred minimal per-template assignment must replay clean through
      the simulator's full checker battery (fence audit included), and any
      strictly weaker assignment at a flagged template must reproduce the
      predicted inversion on the same seeded run. *)

open Lsr_storage
open Lsr_core
open Lsr_analysis
module Ast = Lsr_sql.Ast

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- Symbolic footprints ----------------------------------------------------- *)

let footprint_of sql =
  match Lsr_sql.Sql.parse_script [ sql ] with
  | Ok [ stmt ] -> Symbolic.statement_footprint stmt
  | Ok _ -> Alcotest.fail "expected one statement"
  | Error e -> Alcotest.fail (Lsr_sql.Sql.error_message e)

let test_symbolic_regions () =
  let fp = footprint_of "SELECT * FROM books WHERE pk = 'b1'" in
  (match fp.Symbolic.reads with
  | [ { Symbolic.table = "books"; region = Symbolic.Exact (Symbolic.Const "b1") } ]
    -> ()
  | _ -> Alcotest.fail "pk-equality must be an exact constant read");
  check_int "select writes nothing" 0 (List.length fp.Symbolic.writes);
  let fp = footprint_of "SELECT * FROM books WHERE pk = ':item'" in
  (match fp.Symbolic.reads with
  | [ { Symbolic.region = Symbolic.Exact (Symbolic.Param "item"); _ } ] -> ()
  | _ -> Alcotest.fail "':item' must be a parameter key");
  let fp = footprint_of "SELECT * FROM books WHERE genre = 'scifi'" in
  (match fp.Symbolic.reads with
  | [ { Symbolic.region = Symbolic.Range _; _ } ] -> ()
  | _ -> Alcotest.fail "non-pk condition must be a predicate read");
  let fp = footprint_of "SELECT * FROM books" in
  (match fp.Symbolic.reads with
  | [ { Symbolic.region = Symbolic.Scan; _ } ] -> ()
  | _ -> Alcotest.fail "WHERE-less select must be a scan");
  let fp = footprint_of "UPDATE books SET stock = 3 WHERE pk = 'b1'" in
  check_int "update reads its match" 1 (List.length fp.Symbolic.reads);
  (match fp.Symbolic.writes with
  | [ { Symbolic.region = Symbolic.Exact (Symbolic.Const "b1"); _ } ] -> ()
  | _ -> Alcotest.fail "pk-equality update writes the exact key")

let test_symbolic_overlap () =
  let acc table region = { Symbolic.table; region } in
  let exact k = Symbolic.Exact (Symbolic.Const k) in
  check_bool "same constant key overlaps" true
    (Symbolic.may_overlap (acc "t" (exact "a")) (acc "t" (exact "a")));
  check_bool "distinct constant keys are disjoint" false
    (Symbolic.may_overlap (acc "t" (exact "a")) (acc "t" (exact "b")));
  check_bool "different tables are disjoint" false
    (Symbolic.may_overlap (acc "t" Symbolic.Scan) (acc "u" Symbolic.Scan));
  check_bool "parameter may be any key" true
    (Symbolic.may_overlap
       (acc "t" (Symbolic.Exact (Symbolic.Param "p")))
       (acc "t" (exact "a")));
  check_bool "scan overlaps everything in the table" true
    (Symbolic.may_overlap (acc "t" Symbolic.Scan) (acc "t" (exact "a")))

let test_template_params_and_instantiate () =
  let t =
    Template.of_sql_exn ~name:"t"
      [
        "SELECT stock FROM books WHERE pk = ':item'";
        "UPDATE books SET stock = ':qty' WHERE pk = ':item'";
      ]
  in
  Alcotest.(check (list string))
    "params in first-occurrence order" [ "item"; "qty" ] (Template.params t);
  check_bool "update template is not read-only" false t.Template.read_only;
  let stmts =
    Template.instantiate t
      [ ("item", Ast.Text "b1"); ("qty", Ast.Int 7) ]
  in
  check_int "both statements instantiated" 2 (List.length stmts);
  (* Unbound parameters must be loud, not silently passed through. *)
  (try
     ignore (Template.instantiate t [ ("item", Ast.Text "b1") ]);
     Alcotest.fail "unbound parameter must raise"
   with Invalid_argument _ -> ())

(* --- Static dependency graph -------------------------------------------------- *)

let test_sdg_write_skew_flagged () =
  let report = Analyzer.run ~workload:"write_skew" (Builtin.write_skew ()) in
  let ids = Analyzer.dangerous_ids report in
  check_bool "x>y>x structure found" true
    (List.mem
       "write_skew:check_then_sign_off_x>check_then_sign_off_y>check_then_sign_off_x"
       ids);
  check_bool "y>x>y structure found" true
    (List.mem
       "write_skew:check_then_sign_off_y>check_then_sign_off_x>check_then_sign_off_y"
       ids);
  check_int "and nothing else" 2 (List.length ids);
  (* The explanation names the actual tables and keys. *)
  let d = List.hd report.Analyzer.dangerous in
  let text = Sdg.explain d in
  check_bool "explanation names the duty table" true (contains text "duty");
  check_bool "explanation names key x" true (contains text "duty[pk='x']");
  check_bool "explanation names key y" true (contains text "duty[pk='y']")

let test_sdg_disjoint_clean () =
  let report = Analyzer.run ~workload:"disjoint" (Builtin.disjoint ()) in
  check_int "no dangerous structures" 0 (List.length report.Analyzer.dangerous);
  (* The graph is not empty — readers anti-depend on the writers — but the
     self rw edges of the read-modify-write gauges are defused by
     first-committer-wins. *)
  check_bool "rw edges exist" true
    (List.exists (fun e -> e.Sdg.dep = Sdg.Rw) report.Analyzer.sdg.Sdg.edges);
  let self_rw =
    List.find
      (fun e ->
        e.Sdg.dep = Sdg.Rw && e.Sdg.src = "write_gauge_a"
        && e.Sdg.dst = "write_gauge_a")
      report.Analyzer.sdg.Sdg.edges
  in
  check_bool "self rw edge of a read-modify-write is not vulnerable" false
    self_rw.Sdg.vulnerable

let test_sdg_tpcw_pivots () =
  let report = Analyzer.run ~workload:"tpcw" (Builtin.tpcw ()) in
  check_bool "tpcw has dangerous structures" true
    (report.Analyzer.dangerous <> []);
  (* Every structure pivots on the predicate-writing template: exact-key
     read-modify-writes (buy_confirm, admin_restock) are defused, so the
     genre reprice — which reads rows it does not write back — is the only
     template with both vulnerable rw edges. *)
  List.iter
    (fun d ->
      check_string "pivot is the genre reprice" "admin_reprice_genre"
        d.Sdg.rw_in.Sdg.dst)
    report.Analyzer.dangerous;
  let buy_self =
    List.find
      (fun e ->
        e.Sdg.dep = Sdg.Rw && e.Sdg.src = "buy_confirm"
        && e.Sdg.dst = "buy_confirm")
      report.Analyzer.sdg.Sdg.edges
  in
  check_bool "buy_confirm rereads only the key it writes" false
    buy_self.Sdg.vulnerable

let test_session_pass_tpcw () =
  let report = Analyzer.run ~workload:"tpcw" (Builtin.tpcw ()) in
  let flags = report.Analyzer.session_flags in
  let has kind earlier later =
    List.exists
      (fun (f : Session_pass.flag) ->
        f.Session_pass.kind = kind
        && f.Session_pass.earlier = earlier
        && f.Session_pass.later = later)
      flags
  in
  check_bool "buying then checking the order needs PCSI" true
    (has Session_pass.Update_then_read "buy_confirm" "order_status");
  check_bool "buying then browsing the book needs PCSI" true
    (has Session_pass.Update_then_read "buy_confirm" "product_detail");
  check_bool "two browses across migration need strong session SI" true
    (has Session_pass.Read_then_read "product_detail" "best_sellers");
  check_string "the workload as a whole needs strong session SI"
    (Session.guarantee_name Session.Strong_session)
    (Session.guarantee_name (Session_pass.needed_guarantee flags));
  check_int "nothing is left unprevented at strong session SI" 0
    (List.length
       (Session_pass.unprevented Session.Strong_session flags));
  check_bool "PCSI alone leaves the read-then-read pairs" true
    (Session_pass.unprevented Session.Prefix_consistent flags
    |> List.for_all (fun (f : Session_pass.flag) ->
           f.Session_pass.kind = Session_pass.Read_then_read))

let test_report_json_roundtrip () =
  let report = Analyzer.run ~workload:"tpcw" (Builtin.tpcw ()) in
  let text = Lsr_obs.Json.to_string (Analyzer.to_json report) in
  match Lsr_obs.Json.parse text with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok json ->
    (match Lsr_obs.Json.member "workload" json with
    | Some (Lsr_obs.Json.Str "tpcw") -> ()
    | _ -> Alcotest.fail "workload field survives the round trip")

(* --- Soundness cross-validation against the dynamic checker ------------------- *)

(* Randomly interleaved executions over raw MVCC: a scheduler begins up to
   three concurrent transactions (each executing one instantiated template
   through the SQL executor, reads recorded by the handle) and commits them
   in random order. First-committer-wins aborts are dropped, matching the
   committed-transactions-only serialization graph. *)

type live = {
  txn : Mvcc.txn;
  handle : Handle.t;
  template : Template.t;
  first_op : int;
  snapshot : Timestamp.t;
}

let exec_all handle stmts =
  List.iter
    (fun s -> ignore (Lsr_sql.Executor.execute_exn handle s))
    stmts

let finish db h mapping (l : live) =
  let reads = Handle.reads l.handle in
  if l.template.Template.read_only then begin
    Mvcc.end_read db l.txn;
    let id = History.fresh_id h in
    History.add h
      {
        History.id = id;
        session = "harness";
        kind = History.Read_only;
        site = "primary";
        first_op = l.first_op;
        finished = History.tick h;
        snapshot = l.snapshot;
        commit_ts = None;
        reads;
        writes = [];
        fence = None;
      };
    mapping := (id, l.template.Template.name) :: !mapping
  end
  else
    let writes = Mvcc.pending_writes l.txn in
    match Mvcc.commit db l.txn with
    | Mvcc.Aborted _ -> ()
    | Mvcc.Committed cts ->
      let id = History.fresh_id h in
      History.add h
        {
          History.id = id;
          session = "harness";
          kind = History.Update;
          site = "primary";
          first_op = l.first_op;
          finished = History.tick h;
          snapshot = l.snapshot;
          commit_ts = Some cts;
          reads;
          writes;
          fence = None;
        };
      mapping := (id, l.template.Template.name) :: !mapping

(* One seeded run; returns the history and the id -> template-name map. *)
let run_schedule ~seed ~init ~templates ~bind =
  let rng = Lsr_sim.Rng.create seed in
  let db = Mvcc.create () in
  let h = History.create () in
  let mapping = ref [] in
  (* Seed data, recorded like any other committed update so version chains
     start from a real writer. *)
  let first_op = History.tick h in
  let snapshot = Mvcc.latest_commit_ts db in
  let txn = Mvcc.begin_txn db in
  let handle = Handle.make db txn in
  exec_all handle init;
  finish db h mapping
    {
      txn;
      handle;
      template =
        { (Template.make ~name:"init" []) with Template.read_only = false };
      first_op;
      snapshot;
    };
  let live = ref [] in
  let fresh = ref 0 in
  for _round = 1 to 60 do
    let begin_new =
      !live = []
      || (List.length !live < 3 && Lsr_sim.Rng.bernoulli rng ~p:0.6)
    in
    if begin_new then begin
      let t =
        List.nth templates
          (Lsr_sim.Rng.uniform rng ~lo:0 ~hi:(List.length templates - 1))
      in
      incr fresh;
      let binding = bind rng t !fresh in
      let first_op = History.tick h in
      let snapshot = Mvcc.latest_commit_ts db in
      let txn = Mvcc.begin_txn db in
      let handle = Handle.make db txn in
      exec_all handle (Template.instantiate t binding);
      live := { txn; handle; template = t; first_op; snapshot } :: !live
    end
    else begin
      let i = Lsr_sim.Rng.uniform rng ~lo:0 ~hi:(List.length !live - 1) in
      let l = List.nth !live i in
      live := List.filteri (fun j _ -> j <> i) !live;
      finish db h mapping l
    end
  done;
  List.iter (finish db h mapping) !live;
  (h, !mapping)

(* Parameter domains small enough to collide. The order pk is always fresh
   (re-inserting an existing pk is just an overwrite, but distinct orders
   match the workload's intent). *)
let bind_value rng fresh = function
  | "item" -> Ast.Text (Printf.sprintf "b%d" (Lsr_sim.Rng.uniform rng ~lo:1 ~hi:3))
  | "genre" -> Ast.Text (Printf.sprintf "g%d" (Lsr_sim.Rng.uniform rng ~lo:1 ~hi:2))
  | "cust" -> Ast.Text (Printf.sprintf "c%d" (Lsr_sim.Rng.uniform rng ~lo:1 ~hi:2))
  | "order" -> Ast.Text (Printf.sprintf "o%d" fresh)
  | "new_stock" | "qty" -> Ast.Int (Lsr_sim.Rng.uniform rng ~lo:0 ~hi:50)
  | "price" -> Ast.Int (Lsr_sim.Rng.uniform rng ~lo:5 ~hi:40)
  | _ -> Ast.Text (Printf.sprintf "v%d" (Lsr_sim.Rng.uniform rng ~lo:0 ~hi:9))

let default_bind rng t fresh =
  List.map (fun p -> (p, bind_value rng fresh p)) (Template.params t)

let tpcw_init =
  List.map
    (fun (pk, genre) ->
      Printf.sprintf
        "INSERT INTO books (pk, title, genre, price, stock, sales) VALUES \
         ('%s', 'title %s', '%s', 10, 20, 100)"
        pk pk genre)
    [ ("b1", "g1"); ("b2", "g1"); ("b3", "g2") ]

let write_skew_init =
  [
    "INSERT INTO duty (pk, on_call) VALUES ('x', TRUE)";
    "INSERT INTO duty (pk, on_call) VALUES ('y', TRUE)";
  ]

let disjoint_init =
  [
    "INSERT INTO metrics (pk, value) VALUES ('a', 0)";
    "INSERT INTO metrics (pk, value) VALUES ('b', 0)";
  ]

let parse_init sqls =
  match Lsr_sql.Sql.parse_script sqls with
  | Ok stmts -> stmts
  | Error e -> Alcotest.fail (Lsr_sql.Sql.error_message e)

(* Run [seeds] seeded schedules of a workload; assert every dynamic cycle is
   covered by a static dangerous structure among exactly the participating
   templates; return how many runs had a cycle. *)
let cross_validate ~workload ~init ~templates ~seeds =
  let report = Analyzer.run ~workload templates in
  let init = parse_init init in
  let cycles = ref 0 in
  for seed = 1 to seeds do
    let h, mapping = run_schedule ~seed ~init ~templates ~bind:default_bind in
    match Checker.serialization_cycle h with
    | None -> ()
    | Some cycle ->
      incr cycles;
      let names =
        List.map
          (fun id ->
            match List.assoc_opt id mapping with
            | Some name -> name
            | None ->
              Alcotest.failf "%s seed %d: cycle names unknown txn %d" workload
                seed id)
          cycle
      in
      check_bool
        (Printf.sprintf
           "%s seed %d: dynamic cycle through {%s} is covered by a static \
            dangerous structure"
           workload seed
           (String.concat ", " (List.sort_uniq compare names)))
        true
        (Analyzer.covers report (List.sort_uniq compare names))
  done;
  !cycles

let test_cross_validate_write_skew () =
  let cycles =
    cross_validate ~workload:"write_skew" ~init:write_skew_init
      ~templates:(Builtin.write_skew ()) ~seeds:25
  in
  check_bool "the harness actually produced write-skew cycles" true (cycles > 0)

let test_cross_validate_tpcw () =
  let cycles =
    cross_validate ~workload:"tpcw" ~init:tpcw_init
      ~templates:(Builtin.tpcw ()) ~seeds:25
  in
  (* Non-vacuity: concurrent genre reprices (and reprice vs restock/buy)
     produce real cycles under these seeds. *)
  check_bool "the tpcw harness produced at least one cycle" true (cycles > 0)

let test_cross_validate_disjoint () =
  let cycles =
    cross_validate ~workload:"disjoint" ~init:disjoint_init
      ~templates:(Builtin.disjoint ()) ~seeds:25
  in
  (* The static verdict is "serializable under SI"; by soundness of the
     analysis the dynamic checker must agree on every run. *)
  check_int "statically clean workload never produces a cycle" 0 cycles

(* --- Session cross-validation on the replicated system ------------------------ *)

(* Execute tpcw templates through the real replicated system under weak SI
   (updates at the primary, reads at the session's possibly-stale
   secondary), with no refresh between a purchase and the session's own
   re-reads. Every data-dependent in-session inversion the dynamic checker
   reports must be predicted by a session-pass flag. *)
let test_session_cross_validation () =
  let report = Analyzer.run ~workload:"tpcw" (Builtin.tpcw ()) in
  let templates = Builtin.tpcw () in
  let find name =
    List.find (fun (t : Template.t) -> t.Template.name = name) templates
  in
  let sys = System.create ~secondaries:2 ~guarantee:Session.Weak () in
  let client = System.connect sys "shopper" in
  let executed = ref [] in
  let run_template name binding =
    let t = find name in
    let stmts = Template.instantiate t binding in
    if t.Template.read_only then
      System.read sys client (fun h -> exec_all h stmts)
    else (
      match System.update sys client (fun h -> exec_all h stmts) with
      | Ok () -> ()
      | Error _ -> Alcotest.failf "%s aborted" name);
    executed := name :: !executed
  in
  (* Seed the store (one update transaction). *)
  (match
     System.update sys client (fun h ->
         exec_all h (parse_init tpcw_init))
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "init aborted");
  executed := "init" :: !executed;
  System.pump sys;
  (* The paper's bookstore session: buy, then immediately check the order
     and re-read the book at the (stale) secondary. *)
  run_template "product_detail" [ ("item", Ast.Text "b1") ];
  run_template "buy_confirm"
    [
      ("item", Ast.Text "b1"); ("new_stock", Ast.Int 19);
      ("order", Ast.Text "o1"); ("cust", Ast.Text "c1");
    ];
  run_template "order_status" [ ("cust", Ast.Text "c1") ];
  run_template "product_detail" [ ("item", Ast.Text "b1") ];
  System.pump sys;
  (* Each update/read appends exactly one history record in execution
     order, so zipping aligns ids with template names. *)
  let txns = History.transactions (System.history sys) in
  let order = List.rev !executed in
  check_int "one history record per executed transaction"
    (List.length order) (List.length txns);
  (* Transactions are in completion order, which here equals execution
     order (each call runs to completion before the next), so zip directly. *)
  let name_of =
    List.map2 (fun name (t : History.txn) -> (t.History.id, name)) order txns
  in
  let analysis = Checker.analyze (System.history sys) in
  let inversions = analysis.Checker.inversions_in_session in
  let data_dependent =
    List.filter
      (fun { Checker.earlier; later } ->
        earlier.History.kind = History.Update
        && List.exists
             (fun (k, _) ->
               List.exists
                 (fun { Lsr_storage.Wal.key; _ } -> key = k)
                 earlier.History.writes)
             later.History.reads)
      inversions
  in
  check_bool "the stale session actually observed an inversion" true
    (data_dependent <> []);
  List.iter
    (fun { Checker.earlier; later } ->
      let earlier_name = List.assoc earlier.History.id name_of in
      let later_name = List.assoc later.History.id name_of in
      check_bool
        (Printf.sprintf
           "inversion %s -> %s is predicted by an update-then-read flag"
           earlier_name later_name)
        true
        (List.exists
           (fun (f : Session_pass.flag) ->
             f.Session_pass.kind = Session_pass.Update_then_read
             && f.Session_pass.earlier = earlier_name
             && f.Session_pass.later = later_name)
           report.Analyzer.session_flags))
    data_dependent

(* --- Duplicate template names -------------------------------------------------- *)

let test_duplicate_template_rejected () =
  let t1 = Template.of_sql_exn ~name:"dup" [ "SELECT * FROM t WHERE pk = 'a'" ] in
  let t2 = Template.of_sql_exn ~name:"dup" [ "SELECT * FROM t WHERE pk = 'b'" ] in
  (try
     ignore (Sdg.build [ t1; t2 ]);
     Alcotest.fail "Sdg.build must reject duplicate template names"
   with Template.Duplicate_template name ->
     check_string "the offending name is reported" "dup" name);
  (try
     ignore (Plan.infer ~workload:"dup" [ t1; t2 ]);
     Alcotest.fail "Plan.infer must reject duplicate template names"
   with Template.Duplicate_template _ -> ());
  (* Distinct names pass the same check. *)
  Template.check_distinct [ t1; { t2 with Template.name = "dup2" } ]

(* --- Region-overlap edge cases in the SDG -------------------------------------- *)

let edges_between sdg ~src ~dst =
  List.filter (fun e -> e.Sdg.src = src && e.Sdg.dst = dst) sdg.Sdg.edges

let test_sdg_overlap_edges () =
  let t = Template.of_sql_exn in
  (* Distinct exact constants are the one provably-disjoint case: no edge
     in either direction. *)
  let reader_a = t ~name:"reader_a" [ "SELECT v FROM g WHERE pk = 'a'" ] in
  let writer_b = t ~name:"writer_b" [ "UPDATE g SET v = 1 WHERE pk = 'b'" ] in
  let sdg = Sdg.build [ reader_a; writer_b ] in
  check_int "exact 'a' vs exact 'b': no edges at all" 0
    (List.length (edges_between sdg ~src:"reader_a" ~dst:"writer_b")
    + List.length (edges_between sdg ~src:"writer_b" ~dst:"reader_a"));
  (* A scan overlaps every region of its table — and nothing elsewhere. *)
  let scanner = t ~name:"scanner" [ "SELECT * FROM g" ] in
  let other = t ~name:"other_table" [ "UPDATE h SET v = 2 WHERE pk = 'b'" ] in
  let sdg = Sdg.build [ scanner; writer_b; other ] in
  check_bool "scan anti-depends on a same-table exact writer" true
    (List.exists
       (fun e -> e.Sdg.dep = Sdg.Rw)
       (edges_between sdg ~src:"scanner" ~dst:"writer_b"));
  check_int "scan vs another table: nothing" 0
    (List.length (edges_between sdg ~src:"scanner" ~dst:"other_table"));
  (* Predicates on disjoint constants ('g1' vs 'g2') would never collide at
     run time, but the symbolic layer keeps them conservatively overlapping:
     the edge must be present (soundness over precision). *)
  let genre_a = t ~name:"read_g1" [ "SELECT * FROM g WHERE genre = 'g1'" ] in
  let genre_b = t ~name:"write_g2" [ "UPDATE g SET v = 3 WHERE genre = 'g2'" ] in
  let sdg = Sdg.build [ genre_a; genre_b ] in
  check_bool "adjacent non-overlapping predicates keep a conservative rw edge"
    true
    (List.exists
       (fun e -> e.Sdg.dep = Sdg.Rw)
       (edges_between sdg ~src:"read_g1" ~dst:"write_g2"));
  (* Parameter aliasing: the same ':k' in two templates can bind to
     different keys (edge stays, vulnerable), while within one template a
     parameter binds once (read-modify-write of ':k' is defused). *)
  let p_reader = t ~name:"p_reader" [ "SELECT v FROM g WHERE pk = ':k'" ] in
  let p_writer = t ~name:"p_writer" [ "UPDATE g SET v = 4 WHERE pk = ':k'" ] in
  let sdg = Sdg.build [ p_reader; p_writer ] in
  let rw =
    List.find
      (fun e -> e.Sdg.dep = Sdg.Rw)
      (edges_between sdg ~src:"p_reader" ~dst:"p_writer")
  in
  check_bool "cross-template ':k' aliasing keeps the rw edge vulnerable" true
    rw.Sdg.vulnerable;
  let self =
    List.find
      (fun e -> e.Sdg.dep = Sdg.Rw)
      (edges_between sdg ~src:"p_writer" ~dst:"p_writer")
  in
  check_bool "within one template ':k' binds once: self rw edge defused" false
    self.Sdg.vulnerable;
  (* An empty read set produces no outgoing rw edge: blind writers cannot
     pivot a dangerous structure. *)
  let blind = t ~name:"blind" [ "INSERT INTO g (pk, v) VALUES (':m', 1)" ] in
  let sdg = Sdg.build [ blind; scanner ] in
  check_bool "a blind writer has no outgoing rw edge" true
    (List.for_all
       (fun e -> not (e.Sdg.src = "blind" && e.Sdg.dep = Sdg.Rw))
       sdg.Sdg.edges);
  (* Edge lists come out canonically sorted, whatever the template order. *)
  let key e = (e.Sdg.src, e.Sdg.dst, Sdg.dep_rank e.Sdg.dep) in
  let report = Analyzer.run ~workload:"tpcw" (Builtin.tpcw ()) in
  let keys = List.map key report.Analyzer.sdg.Sdg.edges in
  check_bool "tpcw edges sorted by (src, dst, dep)" true
    (keys = List.sort compare keys)

(* --- Planner: minimal assignments and shard partition -------------------------- *)

let guarantee_eq = Session.guarantee_name

let test_plan_fence_mix () =
  let plan = Plan.infer ~workload:"fence_mix" (Builtin.fence_mix ()) in
  let assignment name =
    match Plan.assignment plan name with
    | Some a -> a
    | None -> Alcotest.failf "no assignment for %s" name
  in
  let inbox = assignment "read_inbox" in
  check_string "read_inbox needs strong session"
    (guarantee_eq Session.Strong_session)
    (guarantee_eq inbox.Plan.level);
  check_bool "read_inbox is Session_seq-fenced" true
    (inbox.Plan.fence = Some Session.Session_seq);
  check_bool "its why names the racing update" true
    (contains inbox.Plan.why "post_message");
  List.iter
    (fun name ->
      let a = assignment name in
      check_string (name ^ " stays weak") (guarantee_eq Session.Weak)
        (guarantee_eq a.Plan.level);
      check_bool (name ^ " is unfenced") true (a.Plan.fence = None))
    [ "read_dashboard"; "read_archive"; "post_message" ];
  check_int "mixed plan cost" 2 (Plan.mixed_cost plan);
  check_int "uniform cost is three fenced readers" 6 (Plan.uniform_cost plan);
  check_int "no residual write skew" 0 (List.length plan.Plan.residual);
  (* Only the inversion-prone reader's shard owes session bookkeeping. *)
  let route name =
    match Partition.route plan.Plan.partition name with
    | Some r -> r
    | None -> Alcotest.failf "no route for %s" name
  in
  let shard_level sid = List.assoc sid plan.Plan.shard_levels in
  let inbox_shard = List.hd (route "read_inbox").Partition.read_shards in
  check_string "the inbox shard needs strong session"
    (guarantee_eq Session.Strong_session)
    (guarantee_eq (shard_level inbox_shard));
  let dash_shard = List.hd (route "read_dashboard").Partition.read_shards in
  check_string "the dashboard/archive shard needs nothing"
    (guarantee_eq Session.Weak)
    (guarantee_eq (shard_level dash_shard));
  check_int "fence_mix partitions with no cross-shard template" 0
    (List.length plan.Plan.partition.Partition.cross_shard_updates
    + List.length plan.Plan.partition.Partition.cross_shard_reads)

let test_plan_tpcw_partition () =
  let plan = Plan.infer ~workload:"tpcw" (Builtin.tpcw ()) in
  let p = plan.Plan.partition in
  check_int "two shards (books, orders)" 2 (Partition.shard_count p);
  Alcotest.(check (list string))
    "buy_confirm is the only cross-shard update (the commit-protocol cost)"
    [ "buy_confirm" ] p.Partition.cross_shard_updates;
  (match Partition.route p "order_status" with
  | Some r ->
    check_bool "order_status stays single-shard" false r.Partition.cross_shard
  | None -> Alcotest.fail "order_status must be routed");
  (* Every tpcw reader is inversion-prone, so the mixed plan degenerates to
     the uniform one — the planner only wins when some reader is clean. *)
  check_int "tpcw mixed cost = uniform cost" (Plan.uniform_cost plan)
    (Plan.mixed_cost plan);
  check_int "write skew stays residual (cannot be fenced away)" 12
    (List.length plan.Plan.residual)

let test_partition_budget_and_determinism () =
  let templates = Builtin.write_skew () in
  let one = Partition.analyze ~shards:1 templates in
  check_int "budget 1 collapses to one shard" 1 (Partition.shard_count one);
  check_bool "single shard: nothing is cross-shard" true
    (one.Partition.cross_shard_updates = []
    && one.Partition.cross_shard_reads = []);
  let sixteen = Partition.analyze ~shards:16 templates in
  check_int "budget beyond the atom count: one shard per atom" 2
    (Partition.shard_count sixteen);
  (* duty[x] and duty[y] cannot be separated without splitting both
     check-then-sign-off templates: at 2 shards everything goes cross. *)
  let two = Partition.analyze ~shards:2 templates in
  List.iter
    (fun (r : Partition.route) ->
      check_bool (r.Partition.template ^ " is cross-shard") true
        r.Partition.cross_shard)
    two.Partition.routes;
  let a = Partition.analyze ~shards:2 (Builtin.tpcw ()) in
  let b = Partition.analyze ~shards:2 (Builtin.tpcw ()) in
  check_bool "same templates, structurally identical partition" true (a = b)

let test_plan_json_deterministic () =
  let plan = Plan.infer ~workload:"fence_mix" (Builtin.fence_mix ()) in
  let json = Plan.to_json plan in
  let text = Lsr_obs.Json.to_string json in
  (match Lsr_obs.Json.parse text with
  | Error e -> Alcotest.failf "plan JSON does not parse: %s" e
  | Ok _ -> ());
  check_string "plan JSON keys are canonical (sort_keys is a fixpoint)" text
    (Lsr_obs.Json.to_string (Lsr_obs.Json.sort_keys json));
  let r = Analyzer.run ~workload:"fence_mix" (Builtin.fence_mix ()) in
  let rj = Analyzer.to_json r in
  check_string "analyzer JSON keys are canonical too"
    (Lsr_obs.Json.to_string rj)
    (Lsr_obs.Json.to_string (Lsr_obs.Json.sort_keys rj))

(* --- Bidirectional cross-validation of the plan -------------------------------- *)

module Sim = Lsr_experiments.Sim_system

(* A validation-sized simulator run: small, history recording on, reads
   migrating between secondaries (the read-then-read inversions the
   Strong_session flags predict need migration to manifest), and jittered
   propagation deliveries — with zero jitter both secondaries apply each
   batch at the same instant and stay in lockstep, so a migrated read can
   never land on a staler site and the read-then-read anomaly is
   structurally impossible. *)
let sim_outcome ~guarantee ~fence ~seed =
  let params =
    {
      Lsr_workload.Params.default with
      Lsr_workload.Params.num_secondaries = 2;
      clients_per_secondary = 8;
      propagation_jitter = 20.;
      warmup = 20.;
      duration = 170.;
    }
  in
  Sim.run
    {
      (Sim.config params guarantee ~seed) with
      Sim.record_history = true;
      migrate_prob = 0.3;
      fence;
    }

(* The simulator's clients execute exactly the txn_gen template pair, so
   its plan can be replayed and refuted against the real system. *)
let test_plan_cross_validation_sim () =
  let plan = Plan.infer ~workload:"txn_gen" (Builtin.txn_gen ()) in
  let fence =
    match Plan.fence_for plan "txn_gen_read_only" with
    | Some f -> f
    | None -> Alcotest.fail "the plan must fence the inversion-prone reader"
  in
  check_bool "the static realization is a Session_seq fence" true
    (fence = Session.Session_seq);
  (* Forward: the minimal assignment replays clean through the full checker
     battery — weak-SI audit, inversion checks at the plan's uniform target
     level, completeness, and the per-read fence audit. *)
  let minimal = sim_outcome ~guarantee:Session.Weak ~fence:(Sim.All_reads fence) ~seed:42 in
  Alcotest.(check (list string))
    "minimal plan: checker battery clean" [] minimal.Sim.check_errors;
  check_bool "fences were actually exercised" true (minimal.Sim.fenced_reads > 0);
  let report = Option.get minimal.Sim.check_report in
  check_bool "the fenced-Weak run satisfies the uniform target level" true
    (Checker.satisfies plan.Plan.uniform report);
  check_int "every fence claim honoured" 0
    (List.length report.Checker.fence_violations);
  (* Reverse, rung 0: dropping the fence (Weak assignment at the flagged
     template) must reproduce the update-then-read inversion the
     Session_pass predicted. *)
  let weak = sim_outcome ~guarantee:Session.Weak ~fence:Sim.No_fence ~seed:42 in
  Alcotest.(check (list string))
    "the weak run still satisfies its own (weak) target" []
    weak.Sim.check_errors;
  let wreport = Option.get weak.Sim.check_report in
  check_bool "unfenced run violates the reader's needed level" false
    (Checker.satisfies Session.Strong_session wreport);
  check_bool "the predicted update-then-read inversion manifests" true
    (wreport.Checker.inversions_after_update <> []);
  (* Reverse, rung 1: PCSI (one step below the needed Strong_session)
     prevents update-then-read but the read-then-read flag — which is what
     made the plan pick Strong_session — still manifests under migration. *)
  let pcsi =
    sim_outcome ~guarantee:Session.Prefix_consistent ~fence:Sim.No_fence ~seed:42
  in
  Alcotest.(check (list string))
    "the PCSI run satisfies PCSI" [] pcsi.Sim.check_errors;
  let preport = Option.get pcsi.Sim.check_report in
  check_bool "PCSI still shows the read-then-read inversion" false
    (Checker.satisfies Session.Strong_session preport);
  check_int "and no update-then-read inversions remain" 0
    (List.length preport.Checker.inversions_after_update)

(* The fence_mix plan on the embedded system: per-template fences exactly
   as inferred. The mixed assignment must be clean end to end; weakening
   only the flagged template must reproduce its predicted anomaly. *)
let test_plan_cross_validation_embedded () =
  let templates = Builtin.fence_mix () in
  let plan = Plan.infer ~workload:"fence_mix" templates in
  let find name =
    List.find (fun (t : Template.t) -> t.Template.name = name) templates
  in
  let run_mix ~drop_inbox_fence =
    let sys = System.create ~secondaries:2 ~guarantee:Session.Weak () in
    let client = System.connect sys "alice" in
    let exec name binding =
      let t = find name in
      let stmts = Template.instantiate t binding in
      if t.Template.read_only then begin
        let fence =
          if drop_inbox_fence && name = "read_inbox" then None
          else Plan.fence_for plan name
        in
        match fence with
        | Some f -> System.read ~fence:f sys client (fun h -> exec_all h stmts)
        | None -> System.read sys client (fun h -> exec_all h stmts)
      end
      else
        match System.update sys client (fun h -> exec_all h stmts) with
        | Ok () -> ()
        | Error _ -> Alcotest.failf "%s aborted" name
    in
    (match
       System.update sys client (fun h ->
           exec_all h
             (parse_init
                [
                  "INSERT INTO boards (pk, headline) VALUES ('summary', 'all \
                   green')";
                  "INSERT INTO archive (pk, body) VALUES ('d1', 'old text')";
                ]))
     with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "init aborted");
    System.pump sys;
    (* The session: browse (the plan leaves these unfenced), post a
       message, then immediately list the inbox at the stale secondary —
       the inversion the plan fences against. *)
    exec "read_dashboard" [];
    exec "read_archive" [ ("doc", Ast.Text "d1") ];
    exec "post_message"
      [
        ("msg", Ast.Text "m1"); ("user", Ast.Text "alice");
        ("body", Ast.Text "hi");
      ];
    exec "read_inbox" [ ("user", Ast.Text "alice") ];
    System.pump sys;
    Checker.analyze ~clock:(System.commit_clock sys) (System.history sys)
  in
  let clean = run_mix ~drop_inbox_fence:false in
  check_bool "the mixed plan satisfies strong session SI" true
    (Checker.satisfies Session.Strong_session clean);
  check_int "all fence claims honoured" 0
    (List.length clean.Checker.fence_violations);
  let broken = run_mix ~drop_inbox_fence:true in
  check_bool "dropping only read_inbox's fence loses strong session SI" false
    (Checker.satisfies Session.Strong_session broken);
  check_bool "the inversion is the predicted update-then-read kind" true
    (broken.Checker.inversions_after_update <> []);
  check_bool "and the plan's witness named exactly this race" true
    (List.exists
       (fun (f : Session_pass.flag) ->
         f.Session_pass.kind = Session_pass.Update_then_read
         && f.Session_pass.earlier = "post_message"
         && f.Session_pass.later = "read_inbox")
       (match Plan.assignment plan "read_inbox" with
       | Some a -> a.Plan.flags
       | None -> []))

let () =
  Alcotest.run "analysis"
    [
      ( "symbolic",
        [
          Alcotest.test_case "region classification" `Quick test_symbolic_regions;
          Alcotest.test_case "conservative overlap" `Quick test_symbolic_overlap;
          Alcotest.test_case "params and instantiation" `Quick
            test_template_params_and_instantiate;
        ] );
      ( "sdg",
        [
          Alcotest.test_case "write skew flagged" `Quick
            test_sdg_write_skew_flagged;
          Alcotest.test_case "disjoint clean" `Quick test_sdg_disjoint_clean;
          Alcotest.test_case "tpcw pivots on the predicate writer" `Quick
            test_sdg_tpcw_pivots;
          Alcotest.test_case "duplicate template names rejected" `Quick
            test_duplicate_template_rejected;
          Alcotest.test_case "region-overlap edge cases" `Quick
            test_sdg_overlap_edges;
        ] );
      ( "session-pass",
        [
          Alcotest.test_case "tpcw session flags" `Quick test_session_pass_tpcw;
          Alcotest.test_case "report JSON round trip" `Quick
            test_report_json_roundtrip;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "write_skew: cycles covered" `Quick
            test_cross_validate_write_skew;
          Alcotest.test_case "tpcw: cycles covered" `Quick
            test_cross_validate_tpcw;
          Alcotest.test_case "disjoint: no cycles" `Quick
            test_cross_validate_disjoint;
          Alcotest.test_case "session inversions predicted" `Quick
            test_session_cross_validation;
        ] );
      ( "planner",
        [
          Alcotest.test_case "fence_mix minimal assignment" `Quick
            test_plan_fence_mix;
          Alcotest.test_case "tpcw shard partition" `Quick
            test_plan_tpcw_partition;
          Alcotest.test_case "partition budget and determinism" `Quick
            test_partition_budget_and_determinism;
          Alcotest.test_case "plan JSON canonical" `Quick
            test_plan_json_deterministic;
          Alcotest.test_case "plan vs simulator (both directions)" `Quick
            test_plan_cross_validation_sim;
          Alcotest.test_case "plan vs embedded system (both directions)" `Quick
            test_plan_cross_validation_embedded;
        ] );
    ]
