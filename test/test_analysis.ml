(* Tests for the static SI-anomaly analyzer (lib/analysis), in three tiers:

   1. units for the symbolic footprint extraction, the static dependency
      graph and the session-guarantee pass;
   2. the soundness cross-validation: seeded, randomly interleaved
      executions of the built-in workloads against raw MVCC, where every
      serialization cycle the dynamic checker finds must be covered by a
      statically flagged dangerous structure — and the workload analyzed
      clean must produce no cycle at all;
   3. the session cross-validation: a replicated-system run under weak SI
      whose data-dependent in-session inversions must all be predicted by
      the session pass. *)

open Lsr_storage
open Lsr_core
open Lsr_analysis
module Ast = Lsr_sql.Ast

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- Symbolic footprints ----------------------------------------------------- *)

let footprint_of sql =
  match Lsr_sql.Sql.parse_script [ sql ] with
  | Ok [ stmt ] -> Symbolic.statement_footprint stmt
  | Ok _ -> Alcotest.fail "expected one statement"
  | Error e -> Alcotest.fail (Lsr_sql.Sql.error_message e)

let test_symbolic_regions () =
  let fp = footprint_of "SELECT * FROM books WHERE pk = 'b1'" in
  (match fp.Symbolic.reads with
  | [ { Symbolic.table = "books"; region = Symbolic.Exact (Symbolic.Const "b1") } ]
    -> ()
  | _ -> Alcotest.fail "pk-equality must be an exact constant read");
  check_int "select writes nothing" 0 (List.length fp.Symbolic.writes);
  let fp = footprint_of "SELECT * FROM books WHERE pk = ':item'" in
  (match fp.Symbolic.reads with
  | [ { Symbolic.region = Symbolic.Exact (Symbolic.Param "item"); _ } ] -> ()
  | _ -> Alcotest.fail "':item' must be a parameter key");
  let fp = footprint_of "SELECT * FROM books WHERE genre = 'scifi'" in
  (match fp.Symbolic.reads with
  | [ { Symbolic.region = Symbolic.Range _; _ } ] -> ()
  | _ -> Alcotest.fail "non-pk condition must be a predicate read");
  let fp = footprint_of "SELECT * FROM books" in
  (match fp.Symbolic.reads with
  | [ { Symbolic.region = Symbolic.Scan; _ } ] -> ()
  | _ -> Alcotest.fail "WHERE-less select must be a scan");
  let fp = footprint_of "UPDATE books SET stock = 3 WHERE pk = 'b1'" in
  check_int "update reads its match" 1 (List.length fp.Symbolic.reads);
  (match fp.Symbolic.writes with
  | [ { Symbolic.region = Symbolic.Exact (Symbolic.Const "b1"); _ } ] -> ()
  | _ -> Alcotest.fail "pk-equality update writes the exact key")

let test_symbolic_overlap () =
  let acc table region = { Symbolic.table; region } in
  let exact k = Symbolic.Exact (Symbolic.Const k) in
  check_bool "same constant key overlaps" true
    (Symbolic.may_overlap (acc "t" (exact "a")) (acc "t" (exact "a")));
  check_bool "distinct constant keys are disjoint" false
    (Symbolic.may_overlap (acc "t" (exact "a")) (acc "t" (exact "b")));
  check_bool "different tables are disjoint" false
    (Symbolic.may_overlap (acc "t" Symbolic.Scan) (acc "u" Symbolic.Scan));
  check_bool "parameter may be any key" true
    (Symbolic.may_overlap
       (acc "t" (Symbolic.Exact (Symbolic.Param "p")))
       (acc "t" (exact "a")));
  check_bool "scan overlaps everything in the table" true
    (Symbolic.may_overlap (acc "t" Symbolic.Scan) (acc "t" (exact "a")))

let test_template_params_and_instantiate () =
  let t =
    Template.of_sql_exn ~name:"t"
      [
        "SELECT stock FROM books WHERE pk = ':item'";
        "UPDATE books SET stock = ':qty' WHERE pk = ':item'";
      ]
  in
  Alcotest.(check (list string))
    "params in first-occurrence order" [ "item"; "qty" ] (Template.params t);
  check_bool "update template is not read-only" false t.Template.read_only;
  let stmts =
    Template.instantiate t
      [ ("item", Ast.Text "b1"); ("qty", Ast.Int 7) ]
  in
  check_int "both statements instantiated" 2 (List.length stmts);
  (* Unbound parameters must be loud, not silently passed through. *)
  (try
     ignore (Template.instantiate t [ ("item", Ast.Text "b1") ]);
     Alcotest.fail "unbound parameter must raise"
   with Invalid_argument _ -> ())

(* --- Static dependency graph -------------------------------------------------- *)

let test_sdg_write_skew_flagged () =
  let report = Analyzer.run ~workload:"write_skew" (Builtin.write_skew ()) in
  let ids = Analyzer.dangerous_ids report in
  check_bool "x>y>x structure found" true
    (List.mem
       "write_skew:check_then_sign_off_x>check_then_sign_off_y>check_then_sign_off_x"
       ids);
  check_bool "y>x>y structure found" true
    (List.mem
       "write_skew:check_then_sign_off_y>check_then_sign_off_x>check_then_sign_off_y"
       ids);
  check_int "and nothing else" 2 (List.length ids);
  (* The explanation names the actual tables and keys. *)
  let d = List.hd report.Analyzer.dangerous in
  let text = Sdg.explain d in
  check_bool "explanation names the duty table" true (contains text "duty");
  check_bool "explanation names key x" true (contains text "duty[pk='x']");
  check_bool "explanation names key y" true (contains text "duty[pk='y']")

let test_sdg_disjoint_clean () =
  let report = Analyzer.run ~workload:"disjoint" (Builtin.disjoint ()) in
  check_int "no dangerous structures" 0 (List.length report.Analyzer.dangerous);
  (* The graph is not empty — readers anti-depend on the writers — but the
     self rw edges of the read-modify-write gauges are defused by
     first-committer-wins. *)
  check_bool "rw edges exist" true
    (List.exists (fun e -> e.Sdg.dep = Sdg.Rw) report.Analyzer.sdg.Sdg.edges);
  let self_rw =
    List.find
      (fun e ->
        e.Sdg.dep = Sdg.Rw && e.Sdg.src = "write_gauge_a"
        && e.Sdg.dst = "write_gauge_a")
      report.Analyzer.sdg.Sdg.edges
  in
  check_bool "self rw edge of a read-modify-write is not vulnerable" false
    self_rw.Sdg.vulnerable

let test_sdg_tpcw_pivots () =
  let report = Analyzer.run ~workload:"tpcw" (Builtin.tpcw ()) in
  check_bool "tpcw has dangerous structures" true
    (report.Analyzer.dangerous <> []);
  (* Every structure pivots on the predicate-writing template: exact-key
     read-modify-writes (buy_confirm, admin_restock) are defused, so the
     genre reprice — which reads rows it does not write back — is the only
     template with both vulnerable rw edges. *)
  List.iter
    (fun d ->
      check_string "pivot is the genre reprice" "admin_reprice_genre"
        d.Sdg.rw_in.Sdg.dst)
    report.Analyzer.dangerous;
  let buy_self =
    List.find
      (fun e ->
        e.Sdg.dep = Sdg.Rw && e.Sdg.src = "buy_confirm"
        && e.Sdg.dst = "buy_confirm")
      report.Analyzer.sdg.Sdg.edges
  in
  check_bool "buy_confirm rereads only the key it writes" false
    buy_self.Sdg.vulnerable

let test_session_pass_tpcw () =
  let report = Analyzer.run ~workload:"tpcw" (Builtin.tpcw ()) in
  let flags = report.Analyzer.session_flags in
  let has kind earlier later =
    List.exists
      (fun (f : Session_pass.flag) ->
        f.Session_pass.kind = kind
        && f.Session_pass.earlier = earlier
        && f.Session_pass.later = later)
      flags
  in
  check_bool "buying then checking the order needs PCSI" true
    (has Session_pass.Update_then_read "buy_confirm" "order_status");
  check_bool "buying then browsing the book needs PCSI" true
    (has Session_pass.Update_then_read "buy_confirm" "product_detail");
  check_bool "two browses across migration need strong session SI" true
    (has Session_pass.Read_then_read "product_detail" "best_sellers");
  check_string "the workload as a whole needs strong session SI"
    (Session.guarantee_name Session.Strong_session)
    (Session.guarantee_name (Session_pass.needed_guarantee flags));
  check_int "nothing is left unprevented at strong session SI" 0
    (List.length
       (Session_pass.unprevented Session.Strong_session flags));
  check_bool "PCSI alone leaves the read-then-read pairs" true
    (Session_pass.unprevented Session.Prefix_consistent flags
    |> List.for_all (fun (f : Session_pass.flag) ->
           f.Session_pass.kind = Session_pass.Read_then_read))

let test_report_json_roundtrip () =
  let report = Analyzer.run ~workload:"tpcw" (Builtin.tpcw ()) in
  let text = Lsr_obs.Json.to_string (Analyzer.to_json report) in
  match Lsr_obs.Json.parse text with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok json ->
    (match Lsr_obs.Json.member "workload" json with
    | Some (Lsr_obs.Json.Str "tpcw") -> ()
    | _ -> Alcotest.fail "workload field survives the round trip")

(* --- Soundness cross-validation against the dynamic checker ------------------- *)

(* Randomly interleaved executions over raw MVCC: a scheduler begins up to
   three concurrent transactions (each executing one instantiated template
   through the SQL executor, reads recorded by the handle) and commits them
   in random order. First-committer-wins aborts are dropped, matching the
   committed-transactions-only serialization graph. *)

type live = {
  txn : Mvcc.txn;
  handle : Handle.t;
  template : Template.t;
  first_op : int;
  snapshot : Timestamp.t;
}

let exec_all handle stmts =
  List.iter
    (fun s -> ignore (Lsr_sql.Executor.execute_exn handle s))
    stmts

let finish db h mapping (l : live) =
  let reads = Handle.reads l.handle in
  if l.template.Template.read_only then begin
    Mvcc.end_read db l.txn;
    let id = History.fresh_id h in
    History.add h
      {
        History.id = id;
        session = "harness";
        kind = History.Read_only;
        site = "primary";
        first_op = l.first_op;
        finished = History.tick h;
        snapshot = l.snapshot;
        commit_ts = None;
        reads;
        writes = [];
        fence = None;
      };
    mapping := (id, l.template.Template.name) :: !mapping
  end
  else
    let writes = Mvcc.pending_writes l.txn in
    match Mvcc.commit db l.txn with
    | Mvcc.Aborted _ -> ()
    | Mvcc.Committed cts ->
      let id = History.fresh_id h in
      History.add h
        {
          History.id = id;
          session = "harness";
          kind = History.Update;
          site = "primary";
          first_op = l.first_op;
          finished = History.tick h;
          snapshot = l.snapshot;
          commit_ts = Some cts;
          reads;
          writes;
          fence = None;
        };
      mapping := (id, l.template.Template.name) :: !mapping

(* One seeded run; returns the history and the id -> template-name map. *)
let run_schedule ~seed ~init ~templates ~bind =
  let rng = Lsr_sim.Rng.create seed in
  let db = Mvcc.create () in
  let h = History.create () in
  let mapping = ref [] in
  (* Seed data, recorded like any other committed update so version chains
     start from a real writer. *)
  let first_op = History.tick h in
  let snapshot = Mvcc.latest_commit_ts db in
  let txn = Mvcc.begin_txn db in
  let handle = Handle.make db txn in
  exec_all handle init;
  finish db h mapping
    {
      txn;
      handle;
      template =
        { (Template.make ~name:"init" []) with Template.read_only = false };
      first_op;
      snapshot;
    };
  let live = ref [] in
  let fresh = ref 0 in
  for _round = 1 to 60 do
    let begin_new =
      !live = []
      || (List.length !live < 3 && Lsr_sim.Rng.bernoulli rng ~p:0.6)
    in
    if begin_new then begin
      let t =
        List.nth templates
          (Lsr_sim.Rng.uniform rng ~lo:0 ~hi:(List.length templates - 1))
      in
      incr fresh;
      let binding = bind rng t !fresh in
      let first_op = History.tick h in
      let snapshot = Mvcc.latest_commit_ts db in
      let txn = Mvcc.begin_txn db in
      let handle = Handle.make db txn in
      exec_all handle (Template.instantiate t binding);
      live := { txn; handle; template = t; first_op; snapshot } :: !live
    end
    else begin
      let i = Lsr_sim.Rng.uniform rng ~lo:0 ~hi:(List.length !live - 1) in
      let l = List.nth !live i in
      live := List.filteri (fun j _ -> j <> i) !live;
      finish db h mapping l
    end
  done;
  List.iter (finish db h mapping) !live;
  (h, !mapping)

(* Parameter domains small enough to collide. The order pk is always fresh
   (re-inserting an existing pk is just an overwrite, but distinct orders
   match the workload's intent). *)
let bind_value rng fresh = function
  | "item" -> Ast.Text (Printf.sprintf "b%d" (Lsr_sim.Rng.uniform rng ~lo:1 ~hi:3))
  | "genre" -> Ast.Text (Printf.sprintf "g%d" (Lsr_sim.Rng.uniform rng ~lo:1 ~hi:2))
  | "cust" -> Ast.Text (Printf.sprintf "c%d" (Lsr_sim.Rng.uniform rng ~lo:1 ~hi:2))
  | "order" -> Ast.Text (Printf.sprintf "o%d" fresh)
  | "new_stock" | "qty" -> Ast.Int (Lsr_sim.Rng.uniform rng ~lo:0 ~hi:50)
  | "price" -> Ast.Int (Lsr_sim.Rng.uniform rng ~lo:5 ~hi:40)
  | _ -> Ast.Text (Printf.sprintf "v%d" (Lsr_sim.Rng.uniform rng ~lo:0 ~hi:9))

let default_bind rng t fresh =
  List.map (fun p -> (p, bind_value rng fresh p)) (Template.params t)

let tpcw_init =
  List.map
    (fun (pk, genre) ->
      Printf.sprintf
        "INSERT INTO books (pk, title, genre, price, stock, sales) VALUES \
         ('%s', 'title %s', '%s', 10, 20, 100)"
        pk pk genre)
    [ ("b1", "g1"); ("b2", "g1"); ("b3", "g2") ]

let write_skew_init =
  [
    "INSERT INTO duty (pk, on_call) VALUES ('x', TRUE)";
    "INSERT INTO duty (pk, on_call) VALUES ('y', TRUE)";
  ]

let disjoint_init =
  [
    "INSERT INTO metrics (pk, value) VALUES ('a', 0)";
    "INSERT INTO metrics (pk, value) VALUES ('b', 0)";
  ]

let parse_init sqls =
  match Lsr_sql.Sql.parse_script sqls with
  | Ok stmts -> stmts
  | Error e -> Alcotest.fail (Lsr_sql.Sql.error_message e)

(* Run [seeds] seeded schedules of a workload; assert every dynamic cycle is
   covered by a static dangerous structure among exactly the participating
   templates; return how many runs had a cycle. *)
let cross_validate ~workload ~init ~templates ~seeds =
  let report = Analyzer.run ~workload templates in
  let init = parse_init init in
  let cycles = ref 0 in
  for seed = 1 to seeds do
    let h, mapping = run_schedule ~seed ~init ~templates ~bind:default_bind in
    match Checker.serialization_cycle h with
    | None -> ()
    | Some cycle ->
      incr cycles;
      let names =
        List.map
          (fun id ->
            match List.assoc_opt id mapping with
            | Some name -> name
            | None ->
              Alcotest.failf "%s seed %d: cycle names unknown txn %d" workload
                seed id)
          cycle
      in
      check_bool
        (Printf.sprintf
           "%s seed %d: dynamic cycle through {%s} is covered by a static \
            dangerous structure"
           workload seed
           (String.concat ", " (List.sort_uniq compare names)))
        true
        (Analyzer.covers report (List.sort_uniq compare names))
  done;
  !cycles

let test_cross_validate_write_skew () =
  let cycles =
    cross_validate ~workload:"write_skew" ~init:write_skew_init
      ~templates:(Builtin.write_skew ()) ~seeds:25
  in
  check_bool "the harness actually produced write-skew cycles" true (cycles > 0)

let test_cross_validate_tpcw () =
  let cycles =
    cross_validate ~workload:"tpcw" ~init:tpcw_init
      ~templates:(Builtin.tpcw ()) ~seeds:25
  in
  (* Non-vacuity: concurrent genre reprices (and reprice vs restock/buy)
     produce real cycles under these seeds. *)
  check_bool "the tpcw harness produced at least one cycle" true (cycles > 0)

let test_cross_validate_disjoint () =
  let cycles =
    cross_validate ~workload:"disjoint" ~init:disjoint_init
      ~templates:(Builtin.disjoint ()) ~seeds:25
  in
  (* The static verdict is "serializable under SI"; by soundness of the
     analysis the dynamic checker must agree on every run. *)
  check_int "statically clean workload never produces a cycle" 0 cycles

(* --- Session cross-validation on the replicated system ------------------------ *)

(* Execute tpcw templates through the real replicated system under weak SI
   (updates at the primary, reads at the session's possibly-stale
   secondary), with no refresh between a purchase and the session's own
   re-reads. Every data-dependent in-session inversion the dynamic checker
   reports must be predicted by a session-pass flag. *)
let test_session_cross_validation () =
  let report = Analyzer.run ~workload:"tpcw" (Builtin.tpcw ()) in
  let templates = Builtin.tpcw () in
  let find name =
    List.find (fun (t : Template.t) -> t.Template.name = name) templates
  in
  let sys = System.create ~secondaries:2 ~guarantee:Session.Weak () in
  let client = System.connect sys "shopper" in
  let executed = ref [] in
  let run_template name binding =
    let t = find name in
    let stmts = Template.instantiate t binding in
    if t.Template.read_only then
      System.read sys client (fun h -> exec_all h stmts)
    else (
      match System.update sys client (fun h -> exec_all h stmts) with
      | Ok () -> ()
      | Error _ -> Alcotest.failf "%s aborted" name);
    executed := name :: !executed
  in
  (* Seed the store (one update transaction). *)
  (match
     System.update sys client (fun h ->
         exec_all h (parse_init tpcw_init))
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "init aborted");
  executed := "init" :: !executed;
  System.pump sys;
  (* The paper's bookstore session: buy, then immediately check the order
     and re-read the book at the (stale) secondary. *)
  run_template "product_detail" [ ("item", Ast.Text "b1") ];
  run_template "buy_confirm"
    [
      ("item", Ast.Text "b1"); ("new_stock", Ast.Int 19);
      ("order", Ast.Text "o1"); ("cust", Ast.Text "c1");
    ];
  run_template "order_status" [ ("cust", Ast.Text "c1") ];
  run_template "product_detail" [ ("item", Ast.Text "b1") ];
  System.pump sys;
  (* Each update/read appends exactly one history record in execution
     order, so zipping aligns ids with template names. *)
  let txns = History.transactions (System.history sys) in
  let order = List.rev !executed in
  check_int "one history record per executed transaction"
    (List.length order) (List.length txns);
  (* Transactions are in completion order, which here equals execution
     order (each call runs to completion before the next), so zip directly. *)
  let name_of =
    List.map2 (fun name (t : History.txn) -> (t.History.id, name)) order txns
  in
  let analysis = Checker.analyze (System.history sys) in
  let inversions = analysis.Checker.inversions_in_session in
  let data_dependent =
    List.filter
      (fun { Checker.earlier; later } ->
        earlier.History.kind = History.Update
        && List.exists
             (fun (k, _) ->
               List.exists
                 (fun { Lsr_storage.Wal.key; _ } -> key = k)
                 earlier.History.writes)
             later.History.reads)
      inversions
  in
  check_bool "the stale session actually observed an inversion" true
    (data_dependent <> []);
  List.iter
    (fun { Checker.earlier; later } ->
      let earlier_name = List.assoc earlier.History.id name_of in
      let later_name = List.assoc later.History.id name_of in
      check_bool
        (Printf.sprintf
           "inversion %s -> %s is predicted by an update-then-read flag"
           earlier_name later_name)
        true
        (List.exists
           (fun (f : Session_pass.flag) ->
             f.Session_pass.kind = Session_pass.Update_then_read
             && f.Session_pass.earlier = earlier_name
             && f.Session_pass.later = later_name)
           report.Analyzer.session_flags))
    data_dependent

let () =
  Alcotest.run "analysis"
    [
      ( "symbolic",
        [
          Alcotest.test_case "region classification" `Quick test_symbolic_regions;
          Alcotest.test_case "conservative overlap" `Quick test_symbolic_overlap;
          Alcotest.test_case "params and instantiation" `Quick
            test_template_params_and_instantiate;
        ] );
      ( "sdg",
        [
          Alcotest.test_case "write skew flagged" `Quick
            test_sdg_write_skew_flagged;
          Alcotest.test_case "disjoint clean" `Quick test_sdg_disjoint_clean;
          Alcotest.test_case "tpcw pivots on the predicate writer" `Quick
            test_sdg_tpcw_pivots;
        ] );
      ( "session-pass",
        [
          Alcotest.test_case "tpcw session flags" `Quick test_session_pass_tpcw;
          Alcotest.test_case "report JSON round trip" `Quick
            test_report_json_roundtrip;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "write_skew: cycles covered" `Quick
            test_cross_validate_write_skew;
          Alcotest.test_case "tpcw: cycles covered" `Quick
            test_cross_validate_tpcw;
          Alcotest.test_case "disjoint: no cycles" `Quick
            test_cross_validate_disjoint;
          Alcotest.test_case "session inversions predicted" `Quick
            test_session_cross_validation;
        ] );
    ]
