(* Tests for the SQL front end (lsr_sql): lexer, parser (including a
   printer/parser round-trip property), executor semantics over the storage
   engine, index-accelerated plans, and routing through the replicated
   system. *)

open Lsr_sql
open Lsr_storage

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_exn input =
  match Parser.parse input with
  | Ok stmt -> stmt
  | Error e -> Alcotest.failf "parse %S: %s" input e

let parse_err input =
  match Parser.parse input with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected a syntax error for %S" input

(* --- Lexer -------------------------------------------------------------------- *)

let test_lexer_tokens () =
  match Lexer.tokenize "SELECT a, b FROM t WHERE x <= 2.5 AND y <> 'it''s'" with
  | Error e -> Alcotest.fail e
  | Ok tokens ->
    check_int "token count (incl. eof)" 15 (List.length tokens);
    check_bool "string unescaped" true
      (List.exists (function Lexer.String_lit "it's" -> true | _ -> false) tokens);
    check_bool "float lexed" true
      (List.exists (function Lexer.Float_lit 2.5 -> true | _ -> false) tokens)

let test_lexer_negative_numbers () =
  match Lexer.tokenize "-42 -2.5" with
  | Ok [ Lexer.Int_lit (-42); Lexer.Float_lit (-2.5); Lexer.Eof ] -> ()
  | Ok _ -> Alcotest.fail "unexpected tokens"
  | Error e -> Alcotest.fail e

let test_lexer_bang_equals () =
  match Lexer.tokenize "a != 1" with
  | Ok [ Lexer.Ident "a"; Lexer.Symbol "<>"; Lexer.Int_lit 1; Lexer.Eof ] -> ()
  | Ok _ -> Alcotest.fail "!= should lex as <>"
  | Error e -> Alcotest.fail e

let test_lexer_errors () =
  List.iter
    (fun bad ->
      match Lexer.tokenize bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected lex error for %S" bad)
    [ "a @ b"; "'unterminated" ]

(* --- Parser ------------------------------------------------------------------- *)

let test_parse_select_star () =
  match parse_exn "select * from books" with
  | Ast.Select { projection = Ast.All; table = "books"; where = Ast.True; group_by = None; having = Ast.True; order_by = None; limit = None } ->
    ()
  | _ -> Alcotest.fail "unexpected ast"

let test_parse_select_full () =
  match
    parse_exn
      "SELECT title, price FROM books WHERE price >= 10 AND NOT (genre = \
       'poetry' OR stock <= 0) ORDER BY price DESC LIMIT 3;"
  with
  | Ast.Select
      {
        projection = Ast.Columns [ "title"; "price" ];
        table = "books";
        where = Ast.And (_, Ast.Not (Ast.Or (_, _)));
        group_by = None;
        having = Ast.True;
        order_by = Some (Ast.Desc "price");
        limit = Some 3;
      } ->
    ()
  | stmt -> Alcotest.failf "unexpected ast: %s" (Ast.to_string stmt)

let test_parse_insert () =
  match
    parse_exn
      "INSERT INTO books (pk, title, available) VALUES ('b1', 'SICP', TRUE)"
  with
  | Ast.Insert
      { table = "books"; row = [ ("pk", Ast.Text "b1"); ("title", Ast.Text "SICP"); ("available", Ast.Bool true) ] } ->
    ()
  | stmt -> Alcotest.failf "unexpected ast: %s" (Ast.to_string stmt)

let test_parse_update_delete () =
  (match parse_exn "UPDATE books SET price = 9.5, sale = TRUE WHERE pk = 'b1'" with
  | Ast.Update { set = [ ("price", Ast.Float 9.5); ("sale", Ast.Bool true) ]; _ } -> ()
  | stmt -> Alcotest.failf "unexpected ast: %s" (Ast.to_string stmt));
  match parse_exn "DELETE FROM books" with
  | Ast.Delete { table = "books"; where = Ast.True } -> ()
  | stmt -> Alcotest.failf "unexpected ast: %s" (Ast.to_string stmt)

let test_parse_precedence () =
  (* a = 1 OR b = 2 AND c = 3  ==  a=1 OR (b=2 AND c=3) *)
  match parse_exn "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3" with
  | Ast.Select { where = Ast.Or (Ast.Cmp { column = "a"; _ }, Ast.And (_, _)); _ } ->
    ()
  | stmt -> Alcotest.failf "precedence wrong: %s" (Ast.to_string stmt)

let test_parse_errors () =
  List.iter parse_err
    [
      "";
      "SELEC * FROM t";
      "SELECT * FROM";
      "SELECT * FROM t WHERE";
      "SELECT * FROM t WHERE a ="
      ;
      "INSERT INTO t (a, b) VALUES (1)";
      "UPDATE t SET";
      "SELECT * FROM t LIMIT x";
      "SELECT * FROM t; SELECT * FROM t";
      "SELECT FROM t" (* FROM is reserved: no columns given *);
    ]

(* A non-aggregate element inside an aggregate projection used to crash the
   parser; it must now report the offending token. *)
let test_parse_aggregate_offender () =
  match Parser.parse "SELECT COUNT(*), title FROM books" with
  | Ok _ -> Alcotest.fail "mixed aggregate/column projection must not parse"
  | Error msg ->
    let contains sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
      in
      go 0
    in
    check_bool "names the expected form" true (contains "aggregate");
    check_bool "names the offending token" true (contains "title")

(* Printer output re-parses to the same statement. *)
let statement_gen =
  let open QCheck.Gen in
  let identifier = map (Printf.sprintf "c%d") (int_range 0 5) in
  let table = map (Printf.sprintf "t%d") (int_range 0 2) in
  let literal =
    oneof
      [
        map (fun i -> Ast.Int i) (int_range (-100) 100);
        map (fun f -> Ast.Float f) (float_bound_inclusive 100.);
        map (fun s -> Ast.Text s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 6));
        map (fun b -> Ast.Bool b) bool;
        return Ast.Null;
      ]
  in
  let comparison = oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
  let cond =
    sized
    @@ fix (fun self n ->
           if n <= 1 then
             oneof
               [
                 return Ast.True;
                 map3
                   (fun column op value -> Ast.Cmp { column; op; value })
                   identifier comparison literal;
               ]
           else
             oneof
               [
                 map2 (fun a b -> Ast.And (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Ast.Or (a, b)) (self (n / 2)) (self (n / 2));
                 map (fun a -> Ast.Not a) (self (n - 1));
               ])
  in
  let assignments = list_size (int_range 1 4) (pair identifier literal) in
  oneof
    [
      (let* projection =
         oneof
           [
             return Ast.All;
             map (fun cs -> Ast.Columns cs) (list_size (int_range 1 3) identifier);
           ]
       in
       let* table = table in
       let* where = cond in
       let* order_by =
         oneof
           [
             return None;
             map (fun c -> Some (Ast.Asc c)) identifier;
             map (fun c -> Some (Ast.Desc c)) identifier;
           ]
       in
       let* limit = oneof [ return None; map Option.some (int_range 0 10) ] in
       return (Ast.Select { projection; table; where; group_by = None; having = Ast.True; order_by; limit }));
      (let* aggs =
         list_size (int_range 1 3)
           (oneof
              [
                return Ast.Count_all;
                map (fun c -> Ast.Sum c) identifier;
                map (fun c -> Ast.Avg c) identifier;
                map (fun c -> Ast.Min c) identifier;
                map (fun c -> Ast.Max c) identifier;
              ])
       in
       let* table = table in
       let* where = cond in
       let* group_by =
         oneof [ return None; map Option.some (map (Printf.sprintf "c%d") (int_range 0 5)) ]
       in
       let* having =
         match group_by with
         | None -> return Ast.True
         | Some _ ->
           oneof
             [
               return Ast.True;
               map
                 (fun n -> Ast.Cmp { column = "count"; op = Ast.Ge; value = Ast.Int n })
                 (int_range 0 5);
             ]
       in
       return
         (Ast.Select
            { projection = Ast.Aggregates aggs; table; where; group_by;
              having; order_by = None; limit = None }));
      (let* table = table in
       let* row = assignments in
       return (Ast.Insert { table; row }));
      (let* table = table in
       let* set = assignments in
       let* where = cond in
       return (Ast.Update { table; set; where }));
      (let* table = table in
       let* where = cond in
       return (Ast.Delete { table; where }));
    ]
    |> fun base ->
    let* stmt = base in
    let* wrap = frequency [ (4, return false); (1, return true) ] in
    return (if wrap then Ast.Explain stmt else stmt)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"printer output re-parses identically" ~count:500
    (QCheck.make ~print:Ast.to_string statement_gen) (fun stmt ->
      match Parser.parse (Ast.to_string stmt) with
      | Ok reparsed -> reparsed = stmt
      | Error _ -> false)

(* --- Executor ------------------------------------------------------------------- *)

let with_books f =
  let db = Mvcc.create () in
  let txn = Mvcc.begin_txn db in
  let h = Lsr_core.Handle.make ~schema:[ ("books", [ "genre" ]) ] db txn in
  let insert sql =
    match Sql.exec h sql with
    | Ok (Executor.Affected 1) -> ()
    | Ok _ | Error _ -> Alcotest.failf "seed insert failed: %s" sql
  in
  insert "INSERT INTO books (pk, title, price, genre) VALUES ('b1', 'SICP', 45.0, 'cs')";
  insert "INSERT INTO books (pk, title, price, genre) VALUES ('b2', 'TAOCP', 180.0, 'cs')";
  insert "INSERT INTO books (pk, title, price, genre) VALUES ('b3', 'Dune', 12.5, 'scifi')";
  insert "INSERT INTO books (pk, title, price) VALUES ('b4', 'Mystery', 9.0)";
  f h

let select_pks h sql =
  match Sql.exec h sql with
  | Ok (Executor.Rows { rows; _ }) -> List.map fst rows
  | Ok (Executor.Affected _ | Executor.Plan _) -> Alcotest.fail "expected rows"
  | Error e -> Alcotest.fail e

let test_exec_select_where () =
  with_books (fun h ->
      Alcotest.(check (list string)) "numeric filter" [ "b2" ]
        (select_pks h "SELECT * FROM books WHERE price > 100");
      Alcotest.(check (list string)) "and/or" [ "b1"; "b3" ]
        (select_pks h
           "SELECT * FROM books WHERE price < 50 AND (genre = 'cs' OR genre = 'scifi')");
      Alcotest.(check (list string)) "int literal vs float column" [ "b3"; "b4" ]
        (select_pks h "SELECT * FROM books WHERE price <= 13"))

let test_exec_null_semantics () =
  with_books (fun h ->
      Alcotest.(check (list string)) "genre = NULL finds the genreless" [ "b4" ]
        (select_pks h "SELECT * FROM books WHERE genre = NULL");
      Alcotest.(check (list string)) "genre <> NULL finds the rest"
        [ "b1"; "b2"; "b3" ]
        (select_pks h "SELECT * FROM books WHERE genre <> NULL");
      Alcotest.(check (list string)) "comparison with absent column is false" []
        (select_pks h "SELECT * FROM books WHERE genre = 'cs' AND genre = NULL"))

let test_exec_order_limit () =
  with_books (fun h ->
      Alcotest.(check (list string)) "order by price" [ "b4"; "b3"; "b1"; "b2" ]
        (select_pks h "SELECT * FROM books ORDER BY price");
      Alcotest.(check (list string)) "desc + limit" [ "b2"; "b1" ]
        (select_pks h "SELECT * FROM books ORDER BY price DESC LIMIT 2");
      Alcotest.(check (list string)) "limit 0" []
        (select_pks h "SELECT * FROM books LIMIT 0"))

let test_exec_projection () =
  with_books (fun h ->
      match Sql.exec h "SELECT title FROM books WHERE pk = 'b1'" with
      | Ok (Executor.Rows { rows = [ (_, row) ]; _ }) ->
        check_int "one column" 1 (List.length row);
        Alcotest.(check string) "value" "SICP" (Row.text_exn row "title")
      | Ok _ | Error _ -> Alcotest.fail "projection failed")

let test_exec_update_delete_counts () =
  with_books (fun h ->
      (match Sql.exec h "UPDATE books SET sale = TRUE WHERE price < 50" with
      | Ok (Executor.Affected 3) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected 3 updates");
      Alcotest.(check (list string)) "updated rows visible" [ "b1"; "b3"; "b4" ]
        (select_pks h "SELECT * FROM books WHERE sale = TRUE");
      (match Sql.exec h "DELETE FROM books WHERE genre = 'cs'" with
      | Ok (Executor.Affected 2) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected 2 deletes");
      Alcotest.(check (list string)) "remaining" [ "b3"; "b4" ]
        (select_pks h "SELECT * FROM books"))

let test_exec_update_null_removes () =
  with_books (fun h ->
      (match Sql.exec h "UPDATE books SET genre = NULL WHERE pk = 'b1'" with
      | Ok (Executor.Affected 1) -> ()
      | Ok _ | Error _ -> Alcotest.fail "update failed");
      Alcotest.(check (list string)) "b1 now genreless" [ "b1"; "b4" ]
        (select_pks h "SELECT * FROM books WHERE genre = NULL"))

let test_exec_insert_replaces () =
  with_books (fun h ->
      (match
         Sql.exec h "INSERT INTO books (pk, title, price) VALUES ('b1', 'SICP 2e', 55.0)"
       with
      | Ok (Executor.Affected 1) -> ()
      | Ok _ | Error _ -> Alcotest.fail "insert failed");
      match Sql.exec h "SELECT title FROM books WHERE pk = 'b1'" with
      | Ok (Executor.Rows { rows = [ (_, row) ]; _ }) ->
        Alcotest.(check string) "replaced" "SICP 2e" (Row.text_exn row "title")
      | Ok _ | Error _ -> Alcotest.fail "reread failed")

let test_exec_int_pk () =
  let db = Mvcc.create () in
  let txn = Mvcc.begin_txn db in
  let h = Lsr_core.Handle.make db txn in
  (match Sql.exec h "INSERT INTO nums (pk, v) VALUES (7, 'seven')" with
  | Ok (Executor.Affected 1) -> ()
  | Ok _ | Error _ -> Alcotest.fail "insert failed");
  Alcotest.(check (list string)) "int pk becomes text key" [ "7" ]
    (select_pks h "SELECT * FROM nums")

let test_exec_missing_pk_rejected () =
  with_books (fun h ->
      match Sql.exec h "INSERT INTO books (title) VALUES ('orphan')" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "INSERT without pk must fail")

let test_exec_index_agrees_with_scan () =
  with_books (fun h ->
      (* genre is indexed; the executor must produce identical results with
         and without the index path. *)
      let indexed = select_pks h "SELECT * FROM books WHERE genre = 'cs'" in
      let scanned =
        select_pks h "SELECT * FROM books WHERE genre = 'cs' OR NOT TRUE"
      in
      Alcotest.(check (list string)) "same rows" scanned indexed)

(* Pinned repro of the cross-type index-equality soundness bug found by the
   randomized identity suite below: SQL numeric comparison treats Int 1 and
   Float 1.0 as equal, but the old index verification compared encoded
   scalar keys, which are type-tagged — so the indexed path dropped rows
   whose stored numeric type differed from the literal's. *)
let test_exec_index_cross_type_equality () =
  let db = Mvcc.create () in
  let txn = Mvcc.begin_txn db in
  let h = Lsr_core.Handle.make ~schema:[ ("t", [ "v" ]) ] db txn in
  let exec sql =
    match Sql.exec h sql with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "%s: %s" sql e
  in
  exec "INSERT INTO t (pk, v) VALUES ('int', 1)";
  exec "INSERT INTO t (pk, v) VALUES ('float', 1.0)";
  Alcotest.(check (list string))
    "indexed equality matches both numeric representations"
    [ "float"; "int" ]
    (select_pks h "SELECT * FROM t WHERE v = 1");
  Alcotest.(check (list string))
    "float literal too" [ "float"; "int" ]
    (select_pks h "SELECT * FROM t WHERE v = 1.0")

(* Randomized differential identity: the same rows and the same WHERE
   clause must produce the same result through the secondary-index path
   (equality and range) and through the full scan. Rows mix Int / Float /
   Text / Bool / missing values so the order-preserving key encoding and
   its re-verification are both exercised. *)
let test_exec_index_randomized_identity () =
  let module Rng = Lsr_sim.Rng in
  let rng = Rng.create 0xD1FF in
  let random_value () =
    match Rng.uniform rng ~lo:0 ~hi:9 with
    | 0 | 1 | 2 -> Some (string_of_int (Rng.uniform rng ~lo:(-20) ~hi:20))
    | 3 | 4 | 5 ->
      Some (Printf.sprintf "%.2f" (float_of_int (Rng.uniform rng ~lo:(-200) ~hi:200) /. 10.))
    | 6 | 7 ->
      Some (Printf.sprintf "'w%d'" (Rng.uniform rng ~lo:0 ~hi:30))
    | 8 -> Some (if Rng.bernoulli rng ~p:0.5 then "TRUE" else "FALSE")
    | _ -> None
  in
  let random_bound () =
    if Rng.bernoulli rng ~p:0.6 then
      string_of_int (Rng.uniform rng ~lo:(-20) ~hi:20)
    else Printf.sprintf "'w%d'" (Rng.uniform rng ~lo:0 ~hi:30)
  in
  let ops = [| ">"; ">="; "<"; "<="; "=" |] in
  let used_range = ref false in
  for trial = 0 to 29 do
    let mk indexed =
      let db = Mvcc.create () in
      let txn = Mvcc.begin_txn db in
      Lsr_core.Handle.make
        ~schema:[ ("t", if indexed then [ "v" ] else [] ) ]
        db txn
    in
    let hi = mk true and hs = mk false in
    let stmts =
      List.init 25 (fun i ->
          match random_value () with
          | Some v -> Printf.sprintf "INSERT INTO t (pk, v) VALUES ('r%02d', %s)" i v
          | None -> Printf.sprintf "INSERT INTO t (pk) VALUES ('r%02d')" i)
    in
    List.iter
      (fun sql ->
        List.iter
          (fun h ->
            match Sql.exec h sql with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s: %s" sql e)
          [ hi; hs ])
      stmts;
    let where =
      match Rng.uniform rng ~lo:0 ~hi:2 with
      | 0 ->
        Printf.sprintf "v %s %s"
          ops.(Rng.uniform rng ~lo:0 ~hi:(Array.length ops - 1))
          (random_bound ())
      | 1 -> Printf.sprintf "v > %s AND v <= %s" (random_bound ()) (random_bound ())
      | _ -> Printf.sprintf "v >= %s AND v < %s" (random_bound ()) (random_bound ())
    in
    let q = Printf.sprintf "SELECT * FROM t WHERE %s" where in
    (match Sql.exec hi ("EXPLAIN " ^ q) with
    | Ok (Executor.Plan lines) ->
      if
        List.exists
          (fun l ->
            String.length l >= 25
            && String.sub l 0 25 = "access: index range scan ")
          lines
      then used_range := true
    | Ok _ | Error _ -> Alcotest.failf "EXPLAIN failed on trial %d" trial);
    Alcotest.(check (list string))
      (Printf.sprintf "trial %d: %s" trial where)
      (select_pks hs q) (select_pks hi q)
  done;
  check_bool "the index range path was actually exercised" true !used_range

let test_exec_render () =
  with_books (fun h ->
      match Sql.exec h "SELECT title FROM books WHERE pk = 'b1'" with
      | Ok result ->
        let rendered = Executor.render result in
        check_bool "mentions row count" true
          (String.length rendered > 0
          && String.sub rendered (String.length rendered - 7) 7 = "(1 row)")
      | Error e -> Alcotest.fail e)

let scalar_of h sql name =
  match Sql.exec h sql with
  | Ok (Executor.Rows { rows = [ (_, row) ]; _ }) -> Row.find row name
  | Ok _ -> Alcotest.fail "expected one aggregate row"
  | Error e -> Alcotest.fail e

let test_exec_aggregates () =
  with_books (fun h ->
      check_bool "count(*)" true
        (scalar_of h "SELECT COUNT(*) FROM books" "count" = Some (Row.Int 4));
      check_bool "count with where" true
        (scalar_of h "SELECT COUNT(*) FROM books WHERE genre = 'cs'" "count"
        = Some (Row.Int 2));
      check_bool "sum" true
        (scalar_of h "SELECT SUM(price) FROM books" "sum_price"
        = Some (Row.Float 246.5));
      check_bool "avg over subset" true
        (scalar_of h "SELECT AVG(price) FROM books WHERE genre = 'cs'" "avg_price"
        = Some (Row.Float 112.5));
      check_bool "min" true
        (scalar_of h "SELECT MIN(price) FROM books" "min_price"
        = Some (Row.Float 9.0));
      check_bool "max of text" true
        (scalar_of h "SELECT MAX(title) FROM books" "max_title"
        = Some (Row.Text "TAOCP")))

let test_exec_aggregate_combo () =
  with_books (fun h ->
      match Sql.exec h "SELECT COUNT(*), MIN(price), MAX(price) FROM books" with
      | Ok (Executor.Rows { columns = Some cols; rows = [ (_, row) ] }) ->
        Alcotest.(check (list string)) "column names"
          [ "count"; "min_price"; "max_price" ] cols;
        check_int "fields" 3 (List.length row)
      | Ok _ | Error _ -> Alcotest.fail "combo failed")

let test_exec_aggregate_empty_is_null () =
  with_books (fun h ->
      check_bool "count of nothing is 0" true
        (scalar_of h "SELECT COUNT(*) FROM books WHERE price > 999" "count"
        = Some (Row.Int 0));
      check_bool "sum of nothing is NULL (absent)" true
        (scalar_of h "SELECT SUM(price) FROM books WHERE price > 999" "sum_price"
        = None))

let test_exec_group_by () =
  with_books (fun h ->
      match
        Sql.exec h
          "SELECT COUNT(*), AVG(price) FROM books GROUP BY genre ORDER BY count DESC"
      with
      | Ok (Executor.Rows { columns = Some cols; rows }) ->
        Alcotest.(check (list string)) "columns" [ "genre"; "count"; "avg_price" ] cols;
        check_int "three groups (cs, scifi, none)" 3 (List.length rows);
        (* ORDER BY count DESC: the cs group (2 books) first. *)
        let _, first = List.hd rows in
        check_bool "largest group first" true
          (Row.find first "genre" = Some (Row.Text "cs")
          && Row.find first "count" = Some (Row.Int 2));
        (* The NULL group (b4 has no genre) carries no group field. *)
        check_bool "null group present" true
          (List.exists (fun (_, row) -> Row.find row "genre" = None) rows)
      | Ok _ | Error _ -> Alcotest.fail "group by failed")

let test_exec_group_by_with_where_and_limit () =
  with_books (fun h ->
      match
        Sql.exec h
          "SELECT MAX(price) FROM books WHERE price > 10 GROUP BY genre LIMIT 2"
      with
      | Ok (Executor.Rows { rows; _ }) -> check_int "limited groups" 2 (List.length rows)
      | Ok _ | Error _ -> Alcotest.fail "group by failed")

let test_exec_having () =
  with_books (fun h ->
      (match
         Sql.exec h "SELECT COUNT(*) FROM books GROUP BY genre HAVING count >= 2"
       with
      | Ok (Executor.Rows { rows; _ }) ->
        check_int "only the cs group qualifies" 1 (List.length rows);
        let _, row = List.hd rows in
        check_bool "it is cs" true (Row.find row "genre" = Some (Row.Text "cs"))
      | Ok _ | Error _ -> Alcotest.fail "having failed");
      (match
         Sql.exec h
           "SELECT AVG(price) FROM books GROUP BY genre HAVING avg_price < 50             AND genre <> NULL"
       with
      | Ok (Executor.Rows { rows; _ }) ->
        (* cs avg is 112.5 (excluded); scifi 12.5 qualifies; the NULL group
           is excluded by genre <> NULL. *)
        check_int "one qualifying group" 1 (List.length rows)
      | Ok _ | Error _ -> Alcotest.fail "having failed"))

let test_having_requires_group_by () =
  match Parser.parse "SELECT COUNT(*) FROM books HAVING count > 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "HAVING without GROUP BY must be rejected"

let test_group_by_requires_aggregates () =
  match Parser.parse "SELECT * FROM books GROUP BY genre" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "GROUP BY without aggregates must be rejected"

let test_exec_aggregate_order_by_rejected () =
  with_books (fun h ->
      match Sql.exec h "SELECT COUNT(*) FROM books ORDER BY price" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "ORDER BY with aggregates must be rejected")

(* Random conditions over a random indexed table: the executor's
   index-accelerated plan must agree with brute-force evaluation. *)
let prop_executor_index_plan_sound =
  let cond_gen =
    let open QCheck.Gen in
    let literal =
      oneof
        [ map (fun i -> Ast.Int i) (int_range 0 4); return Ast.Null;
          map (fun b -> Ast.Bool b) bool ]
    in
    let comparison = oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
    let cmp =
      map3
        (fun column op value -> Ast.Cmp { column; op; value })
        (oneofl [ "grp"; "v" ]) comparison literal
    in
    sized
    @@ fix (fun self n ->
           if n <= 1 then oneof [ return Ast.True; cmp ]
           else
             oneof
               [
                 map2 (fun a b -> Ast.And (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Ast.Or (a, b)) (self (n / 2)) (self (n / 2));
                 map (fun a -> Ast.Not a) (self (n - 1));
               ])
  in
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 0 12) (pair (int_range 0 6) (pair (int_range 0 4) bool)))
        cond_gen)
  in
  QCheck.Test.make ~name:"index plan = brute force over random tables" ~count:300
    (QCheck.make gen) (fun (rows, where) ->
      let db = Mvcc.create () in
      let txn = Mvcc.begin_txn db in
      let h = Lsr_core.Handle.make ~schema:[ ("t", [ "grp" ]) ] db txn in
      List.iter
        (fun (pk, (grp, has_v)) ->
          Lsr_core.Handle.row_put h ~table:"t" ~pk:(string_of_int pk)
            (("grp", Row.Int grp) :: (if has_v then [ ("v", Row.Int grp) ] else [])))
        rows;
      let stmt =
        Ast.Select
          { projection = Ast.All; table = "t"; where; group_by = None;
            having = Ast.True; order_by = None; limit = None }
      in
      match Executor.execute h stmt with
      | Error _ -> false
      | Ok (Executor.Affected _ | Executor.Plan _) -> false
      | Ok (Executor.Rows { rows = got; _ }) ->
        (* Brute force: scan everything, filter with the same evaluator
           through a condition-free select. *)
        let all =
          match
            Executor.execute h
              (Ast.Select
                 { projection = Ast.All; table = "t"; where = Ast.True;
                   group_by = None; having = Ast.True; order_by = None;
                   limit = None })
          with
          | Ok (Executor.Rows { rows; _ }) -> rows
          | Ok (Executor.Affected _ | Executor.Plan _) | Error _ -> []
        in
        (* Reference filter: textual re-parse of the same WHERE to decouple
           from the plan, evaluated row by row via a one-row table. *)
        let matches row =
          let db2 = Mvcc.create () in
          let txn2 = Mvcc.begin_txn db2 in
          let h2 = Lsr_core.Handle.make db2 txn2 in
          Lsr_core.Handle.row_put h2 ~table:"one" ~pk:"x" row;
          match
            Executor.execute h2
              (Ast.Select
                 { projection = Ast.All; table = "one"; where; group_by = None;
                   having = Ast.True; order_by = None; limit = None })
          with
          | Ok (Executor.Rows { rows = [ _ ]; _ }) -> true
          | Ok _ | Error _ -> false
        in
        let expected = List.filter (fun (_, row) -> matches row) all in
        got = expected)

(* Group counts always sum to the ungrouped COUNT; HAVING TRUE is a no-op. *)
let prop_group_by_partitions =
  let gen =
    QCheck.Gen.(list_size (int_range 0 25) (pair (int_range 0 8) (int_range 0 3)))
  in
  QCheck.Test.make ~name:"group counts partition the table" ~count:200
    (QCheck.make gen) (fun rows ->
      let db = Mvcc.create () in
      let txn = Mvcc.begin_txn db in
      let h = Lsr_core.Handle.make db txn in
      List.iter
        (fun (pk, grp) ->
          Lsr_core.Handle.row_put h ~table:"t" ~pk:(string_of_int pk)
            [ ("grp", Row.Int grp) ])
        rows;
      let total =
        match Sql.exec h "SELECT COUNT(*) FROM t" with
        | Ok (Executor.Rows { rows = [ (_, row) ]; _ }) -> Row.int_exn row "count"
        | _ -> -1
      in
      let grouped sql =
        match Sql.exec h sql with
        | Ok (Executor.Rows { rows; _ }) ->
          List.fold_left
            (fun acc (_, row) -> acc + Row.int_exn row "count")
            0 rows
        | _ -> -99
      in
      grouped "SELECT COUNT(*) FROM t GROUP BY grp" = total
      && grouped "SELECT COUNT(*) FROM t GROUP BY grp HAVING TRUE" = total)

(* --- Routing through the replicated system ------------------------------------------ *)

let test_sql_run_replicated () =
  let open Lsr_core in
  let sys =
    System.create ~secondaries:2 ~schema:[ ("books", [ "genre" ]) ]
      ~guarantee:Session.Strong_session ()
  in
  let alice = System.connect sys "alice" in
  (match
     Sql.run sys alice
       "INSERT INTO books (pk, title, genre) VALUES ('b1', 'SICP', 'cs')"
   with
  | Ok (Executor.Affected 1) -> ()
  | Ok _ -> Alcotest.fail "unexpected result"
  | Error e -> Alcotest.fail e);
  (* Alice's own session must see the insert (read-your-writes). *)
  (match Sql.run sys alice "SELECT * FROM books WHERE genre = 'cs'" with
  | Ok (Executor.Rows { rows; _ }) -> check_int "visible in session" 1 (List.length rows)
  | Ok (Executor.Affected _ | Executor.Plan _) -> Alcotest.fail "expected rows"
  | Error e -> Alcotest.fail e);
  (* Another session may still see the stale copy without blocking. *)
  let bob = System.connect sys "bob" in
  (match Sql.run sys bob "SELECT * FROM books" with
  | Ok (Executor.Rows { rows; _ }) ->
    check_bool "bob is lazy (possibly stale)" true (List.length rows <= 1)
  | Ok (Executor.Affected _ | Executor.Plan _) -> Alcotest.fail "expected rows"
  | Error e -> Alcotest.fail e);
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_explain_plans () =
  with_books (fun h ->
      (match Sql.exec h "EXPLAIN SELECT * FROM books WHERE genre = 'cs' AND price < 50" with
      | Ok (Executor.Plan steps) ->
        check_bool "index access chosen" true
          (List.exists
             (fun s -> s = "access: index lookup books.genre = \"cs\"")
             steps)
      | Ok _ | Error _ -> Alcotest.fail "explain failed");
      (match Sql.exec h "EXPLAIN SELECT * FROM books WHERE price < 50" with
      | Ok (Executor.Plan steps) ->
        check_bool "falls back to scan" true
          (List.mem "access: full scan of books" steps)
      | Ok _ | Error _ -> Alcotest.fail "explain failed");
      (match Sql.exec h "EXPLAIN DELETE FROM books WHERE genre = 'cs'" with
      | Ok (Executor.Plan steps) ->
        check_bool "delete explained" true
          (List.exists (fun s -> s = "delete from books") steps)
      | Ok _ | Error _ -> Alcotest.fail "explain failed");
      (* EXPLAIN does not execute. *)
      (match Sql.exec h "EXPLAIN DELETE FROM books" with
      | Ok (Executor.Plan _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "explain failed");
      check_int "nothing deleted" 4
        (List.length (select_pks h "SELECT * FROM books")))

let test_explain_nested_rejected () =
  match Parser.parse "EXPLAIN EXPLAIN SELECT * FROM t" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nested EXPLAIN must be rejected"

let test_run_script_atomic () =
  let open Lsr_core in
  let sys = System.create ~secondaries:1 ~guarantee:Session.Strong_session () in
  let c = System.connect sys "teller" in
  (match
     Sql.run_script sys c
       [
         "INSERT INTO acct (pk, bal) VALUES ('a', 100)";
         "INSERT INTO acct (pk, bal) VALUES ('b', 50)";
       ]
   with
  | Ok [ Executor.Affected 1; Executor.Affected 1 ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "setup script failed");
  (* A transfer is one transaction: both legs or neither. *)
  (match
     Sql.run_script sys c
       [
         "UPDATE acct SET bal = 70 WHERE pk = 'a'";
         "UPDATE acct SET bal = 80 WHERE pk = 'b'";
       ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check_int "one commit per script" 2
    (Mvcc.commit_count (System.primary_db sys));
  (* A failing statement aborts the whole script. *)
  (match
     Sql.run_script sys c
       [ "DELETE FROM acct"; "INSERT INTO acct (nope) VALUES (1)" ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "script with bad statement must fail");
  (match Sql.run sys c "SELECT COUNT(*) FROM acct" with
  | Ok (Executor.Rows { rows = [ (_, row) ]; _ }) ->
    check_bool "delete rolled back" true (Row.find row "count" = Some (Row.Int 2))
  | Ok _ | Error _ -> Alcotest.fail "count failed");
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_run_script_read_only_routing () =
  let open Lsr_core in
  let sys = System.create ~secondaries:1 ~guarantee:Session.Weak () in
  let c = System.connect sys "c" in
  (match
     Sql.run_script sys c
       [ "SELECT * FROM t"; "EXPLAIN SELECT * FROM t"; "SELECT COUNT(*) FROM t" ]
   with
  | Ok results -> check_int "three results" 3 (List.length results)
  | Error e -> Alcotest.fail e);
  (* All read-only: no primary commit happened. *)
  check_int "no commits" 0 (Mvcc.commit_count (System.primary_db sys))

(* Scripts commit exactly once per write-bearing script, never for pure
   reads, and the replicated system stays checkable throughout. *)
let prop_run_script_commit_accounting =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 8)
        (list_size (int_range 1 3) (pair bool (int_range 0 5))))
  in
  QCheck.Test.make ~name:"script commits = write-bearing scripts" ~count:100
    (QCheck.make gen) (fun scripts ->
      let open Lsr_core in
      let sys = System.create ~secondaries:1 ~guarantee:Session.Weak () in
      let c = System.connect sys "c" in
      let expected = ref 0 in
      List.iter
        (fun stmts ->
          let has_write = List.exists (fun (is_write, _) -> is_write) stmts in
          if has_write then incr expected;
          let sql =
            List.map
              (fun (is_write, k) ->
                if is_write then
                  Printf.sprintf "INSERT INTO t (pk, v) VALUES ('k%d', %d)" k k
                else Printf.sprintf "SELECT * FROM t WHERE v = %d" k)
              stmts
          in
          match Sql.run_script sys c sql with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e)
        scripts;
      System.pump sys;
      Mvcc.commit_count (System.primary_db sys) = !expected
      && System.check sys = Ok ())

let test_sql_run_syntax_error () =
  let open Lsr_core in
  let sys = System.create ~guarantee:Session.Weak () in
  let c = System.connect sys "c" in
  match Sql.run sys c "SELEC nonsense" with
  | Error msg ->
    check_bool "labelled as syntax error" true
      (String.length msg >= 12 && String.sub msg 0 12 = "syntax error")
  | Ok _ -> Alcotest.fail "expected an error"

let test_sql_run_semantic_error_aborts () =
  let open Lsr_core in
  let sys = System.create ~guarantee:Session.Weak () in
  let c = System.connect sys "c" in
  (match Sql.run sys c "INSERT INTO t (a) VALUES (1)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing pk must fail");
  (* Nothing was committed at the primary. *)
  check_int "no state installed" 0 (Mvcc.commit_count (System.primary_db sys))

(* The typed error API distinguishes error classes structurally and carries
   the offending statement, so callers (the static analyzer, the bench
   harness) never have to string-match messages. *)
let test_sql_typed_errors () =
  let open Lsr_core in
  let sys = System.create ~guarantee:Session.Weak () in
  let c = System.connect sys "c" in
  (match Sql.run_typed sys c "SELEC nonsense" with
  | Error (Sql.Syntax_error { statement; message }) ->
    Alcotest.(check string) "offending statement" "SELEC nonsense" statement;
    check_bool "has a message" true (String.length message > 0)
  | Error _ -> Alcotest.fail "expected Syntax_error"
  | Ok _ -> Alcotest.fail "expected an error");
  (match Sql.run_typed sys c "INSERT INTO t (a) VALUES (1)" with
  | Error (Sql.Semantic_error _) -> ()
  | Error _ -> Alcotest.fail "expected Semantic_error"
  | Ok _ -> Alcotest.fail "missing pk must fail");
  (* parse_script stops at the first malformed statement and names it. *)
  match Sql.parse_script [ "SELECT * FROM t"; "UPDATE t SET" ] with
  | Error (Sql.Syntax_error { statement; _ }) ->
    Alcotest.(check string) "script offender" "UPDATE t SET" statement;
    check_bool "legacy wrapper prefixes the class" true
      (let msg =
         Sql.error_message
           (Sql.Syntax_error { statement; message = "boom" })
       in
       String.length msg >= 12 && String.sub msg 0 12 = "syntax error")
  | Error _ -> Alcotest.fail "expected Syntax_error from parse_script"
  | Ok _ -> Alcotest.fail "malformed script must not parse"

let () =
  Alcotest.run "lsr_sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "negative numbers" `Quick test_lexer_negative_numbers;
          Alcotest.test_case "!= alias" `Quick test_lexer_bang_equals;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "select star" `Quick test_parse_select_star;
          Alcotest.test_case "select full" `Quick test_parse_select_full;
          Alcotest.test_case "insert" `Quick test_parse_insert;
          Alcotest.test_case "update/delete" `Quick test_parse_update_delete;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "aggregate offender reported" `Quick
            test_parse_aggregate_offender;
          QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
        ] );
      ( "executor",
        [
          Alcotest.test_case "select where" `Quick test_exec_select_where;
          Alcotest.test_case "null semantics" `Quick test_exec_null_semantics;
          Alcotest.test_case "order/limit" `Quick test_exec_order_limit;
          Alcotest.test_case "projection" `Quick test_exec_projection;
          Alcotest.test_case "update/delete counts" `Quick
            test_exec_update_delete_counts;
          Alcotest.test_case "set NULL removes" `Quick test_exec_update_null_removes;
          Alcotest.test_case "insert replaces" `Quick test_exec_insert_replaces;
          Alcotest.test_case "int pk" `Quick test_exec_int_pk;
          Alcotest.test_case "missing pk rejected" `Quick
            test_exec_missing_pk_rejected;
          Alcotest.test_case "index cross-type equality" `Quick
            test_exec_index_cross_type_equality;
          Alcotest.test_case "index randomized identity" `Quick
            test_exec_index_randomized_identity;
          Alcotest.test_case "index agrees with scan" `Quick
            test_exec_index_agrees_with_scan;
          Alcotest.test_case "aggregates" `Quick test_exec_aggregates;
          Alcotest.test_case "aggregate combo" `Quick test_exec_aggregate_combo;
          Alcotest.test_case "empty aggregate is NULL" `Quick
            test_exec_aggregate_empty_is_null;
          Alcotest.test_case "aggregate + order by rejected" `Quick
            test_exec_aggregate_order_by_rejected;
          Alcotest.test_case "group by" `Quick test_exec_group_by;
          Alcotest.test_case "group by + where/limit" `Quick
            test_exec_group_by_with_where_and_limit;
          Alcotest.test_case "group by requires aggregates" `Quick
            test_group_by_requires_aggregates;
          Alcotest.test_case "having" `Quick test_exec_having;
          Alcotest.test_case "having requires group by" `Quick
            test_having_requires_group_by;
          QCheck_alcotest.to_alcotest prop_group_by_partitions;
          QCheck_alcotest.to_alcotest prop_executor_index_plan_sound;
          Alcotest.test_case "render" `Quick test_exec_render;
        ] );
      ( "replicated",
        [
          Alcotest.test_case "run through system" `Quick test_sql_run_replicated;
          Alcotest.test_case "syntax error" `Quick test_sql_run_syntax_error;
          Alcotest.test_case "semantic error aborts" `Quick
            test_sql_run_semantic_error_aborts;
          Alcotest.test_case "typed error API" `Quick test_sql_typed_errors;
          Alcotest.test_case "explain plans" `Quick test_explain_plans;
          Alcotest.test_case "nested explain rejected" `Quick
            test_explain_nested_rejected;
          Alcotest.test_case "run_script atomic" `Quick test_run_script_atomic;
          Alcotest.test_case "run_script read-only routing" `Quick
            test_run_script_read_only_routing;
          QCheck_alcotest.to_alcotest prop_run_script_commit_accounting;
        ] );
    ]
