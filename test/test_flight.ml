(* The flight recorder (PR 10): ring semantics and first-trigger-wins at the
   unit level, then the simulator-level contracts — attaching the recorder
   never perturbs an outcome, its footprint is bounded regardless of run
   length, bundles are byte-deterministic per seed (replay --diff finds no
   divergence), and the end-to-end postmortem path: a weak-SI run trips the
   watchdog, the bundle's implicated pair is a real inversion witness of the
   post-hoc checker on the same seed. *)

open Lsr_core
open Lsr_experiments
module Params = Lsr_workload.Params
module Json = Lsr_obs.Json
module Flight = Lsr_obs.Flight

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- unit: ring, triggers, bundles ------------------------------------------- *)

let test_null_inert () =
  let f = Flight.null in
  check_bool "not enabled" false (Flight.enabled f);
  Flight.note_commit f ~txn:1 ~hid:1 ~commit_ts:1 ~updates:1;
  Flight.note_read f ~site:"s" ~hid:2 ~session:"c" ~snapshot:1 ~fence:(-1);
  Flight.trigger f ~reason:"x" ();
  check_int "no events" 0 (Flight.events_noted f);
  check_int "no bytes" 0 (Flight.approx_bytes f);
  check_bool "never triggered" false (Flight.triggered f)

let parse_ok j =
  match Flight.parse_bundle j with
  | Ok b -> b
  | Error e -> Alcotest.failf "bundle does not parse: %s" e

let test_ring_overwrites_and_first_trigger_wins () =
  let f = Flight.create ~capacity:1 () in
  check_int "capacity clamped up" 16 (Flight.capacity f);
  let clock = ref 0. in
  Flight.set_clock f (fun () -> !clock);
  for i = 1 to 40 do
    clock := float_of_int i;
    Flight.note_commit f ~txn:i ~hid:i ~commit_ts:i ~updates:1
  done;
  check_int "all events counted" 40 (Flight.events_noted f);
  Flight.trigger f ~reason:"first" ~detail:"d1" ~txns:[ 39; 40 ] ();
  Flight.trigger f ~reason:"second" ~detail:"d2" ~txns:[ 1 ] ();
  check_bool "triggered" true (Flight.triggered f);
  check_bool "first trigger wins" true
    (Flight.trigger_reason f = Some "first");
  let b = parse_ok (Flight.bundle_json f ~config:(Json.Obj []) ()) in
  check_string "reason" "first" b.Flight.reason;
  check_string "detail" "d1" b.Flight.detail;
  check_bool "implicated" true (b.Flight.implicated = [ 39; 40 ]);
  check_int "window bounded by capacity" 16 (Array.length b.Flight.window);
  check_int "evictions reported" 24 b.Flight.dropped;
  check_int "commits counted over the whole run" 40 b.Flight.commits;
  (* The retained window is the most recent suffix, oldest first. *)
  check_bool "window is the tail of the stream" true
    (match (b.Flight.window.(0).Flight.ev, b.Flight.window.(15).Flight.ev) with
    | Flight.Commit { txn = 25; _ }, Flight.Commit { txn = 40; _ } -> true
    | _ -> false);
  (* Replay accessors on the same bundle. *)
  check_int "events_until cuts at vt" 6
    (List.length (Flight.events_until b ~vt:30.));
  check_int "txn_events finds the witness" 1
    (List.length (Flight.txn_events b ~id:40));
  check_bool "witness interleaving covers the implicated txns" true
    (List.length (Flight.witness_events b) = 2);
  check_bool "horizons reconstruct at vt" true
    (Flight.horizons_at b ~vt:30. = [ ("primary", 30) ])

let test_bundle_json_roundtrip () =
  let f = Flight.create ~capacity:32 () in
  let clock = ref 0. in
  Flight.set_clock f (fun () -> !clock);
  clock := 1.;
  Flight.note_commit f ~txn:1 ~hid:10 ~commit_ts:1 ~updates:2;
  Flight.note_stage f ~txn:1 Lsr_obs.Lineage.Batched;
  Flight.note_stage f ~txn:1 (Lsr_obs.Lineage.Shipped { updates = 2 });
  clock := 2.;
  Flight.note_stage f ~site:"sec-0" ~txn:1
    (Lsr_obs.Lineage.Channel_delayed { record = "commit"; ticks = 3 });
  Flight.note_stage f ~site:"sec-0" ~txn:1 Lsr_obs.Lineage.Enqueued;
  Flight.note_stage f ~site:"sec-0" ~txn:1 Lsr_obs.Lineage.Refresh_started;
  Flight.note_stage f ~site:"sec-0" ~txn:1
    (Lsr_obs.Lineage.Refresh_committed { commit_ts = 1 });
  clock := 3.;
  Flight.note_read f ~site:"sec-0" ~hid:11 ~session:"c0" ~snapshot:1 ~fence:1;
  Flight.note_crash f ~site:"sec-0";
  Flight.note_recovery f ~site:"sec-0" ~seq:1;
  let j = Flight.bundle_json f ~config:(Json.Obj [ ("seed", Json.Num 5.) ]) () in
  (* The canonical text re-parses to the identical bundle. *)
  let text = Json.to_string j in
  let reparsed =
    match Json.parse text with
    | Ok j -> j
    | Error e -> Alcotest.failf "bundle text does not re-parse: %s" e
  in
  let a = parse_ok j and b = parse_ok reparsed in
  check_bool "roundtrip is exact" true (a = b);
  check_string "untriggered bundle is the end-of-run window" "end-of-run"
    a.Flight.reason;
  check_int "every event kind survived the ring encoding" 10
    (Array.length a.Flight.window);
  check_bool "no divergence against itself" true (Flight.diff a b = None)

(* --- simulator-level contracts ----------------------------------------------- *)

let base_params =
  {
    Params.default with
    Params.num_secondaries = 2;
    clients_per_secondary = 5;
    warmup = 10.;
    duration = 120.;
  }

let cfg ?(params = base_params) ?(watchdog = false) ?(flight = false) guarantee
    ~seed =
  {
    (Sim_system.config params guarantee ~seed) with
    Sim_system.record_history = true;
    watchdog;
    flight = (if flight then Flight.create () else Flight.null);
  }

let scrub (o : Sim_system.outcome) =
  {
    o with
    Sim_system.checker_cpu_s = 0.;
    check_report = None;
    flight_report = None;
    flight_trigger = None;
    flight_events = 0;
    flight_bytes = 0;
  }

let test_never_perturbs () =
  (* The recorder only observes: every simulation outcome field must be
     identical with and without it, for a quiet run and for an anomalous
     one (watchdog on, alerts firing, the trigger path exercised). *)
  let pairs =
    [
      ( "quiet",
        cfg Session.Strong_session ~seed:5,
        cfg Session.Strong_session ~seed:5 ~flight:true );
      ( "anomalous",
        {
          (cfg Session.Weak ~seed:7 ~watchdog:true) with
          Sim_system.migrate_prob = 0.4;
        },
        {
          (cfg Session.Weak ~seed:7 ~watchdog:true ~flight:true) with
          Sim_system.migrate_prob = 0.4;
        } );
    ]
  in
  List.iter
    (fun (tag, off, on_) ->
      let off = Sim_system.run off and on_ = Sim_system.run on_ in
      check_bool (tag ^ ": identical scrubbed outcomes") true
        (scrub off = scrub on_);
      Alcotest.(check (list string))
        (tag ^ ": identical check errors")
        off.Sim_system.check_errors on_.Sim_system.check_errors)
    pairs

let test_bounded_footprint () =
  (* Quadrupling the run multiplies the events seen but not the resident
     bytes: the ring is fixed at creation. *)
  let run duration =
    Sim_system.run
      (cfg ~params:{ base_params with Params.duration } Session.Strong_session
         ~seed:11 ~flight:true)
  in
  let short = run 120. and long = run 480. in
  check_bool "events grow with the run" true
    (long.Sim_system.flight_events > 3 * short.Sim_system.flight_events);
  check_bool "short run saw plenty of events" true
    (short.Sim_system.flight_events > 300);
  (* The ring dominates the footprint; only live session-label bookkeeping
     moves, and by well under a percent. *)
  let sb = short.Sim_system.flight_bytes
  and lb = long.Sim_system.flight_bytes in
  check_bool
    (Printf.sprintf "resident bytes stay flat (%d vs %d)" sb lb)
    true
    (abs (lb - sb) * 100 < sb)

let anomalous_cfg ~flight =
  {
    (cfg Session.Weak ~seed:7 ~watchdog:true ~flight) with
    Sim_system.migrate_prob = 0.4;
  }

let bundle_of (o : Sim_system.outcome) =
  match o.Sim_system.flight_report with
  | Some j -> parse_ok j
  | None -> Alcotest.fail "no flight report"

let test_postmortem_end_to_end () =
  (* Weak SI with cross-site load balancing produces real inversions
     (test_watchdog relies on the same workload): the watchdog's first
     alert must trip the recorder, and the bundle's implicated pair must be
     an inversion witness the post-hoc checker independently finds on the
     same seed. *)
  let o = Sim_system.run (anomalous_cfg ~flight:true) in
  check_bool "watchdog tripped the recorder" true
    (o.Sim_system.flight_trigger = Some "watchdog");
  let b = bundle_of o in
  check_string "bundle reason" "watchdog" b.Flight.reason;
  check_bool "trigger detail names the alert" true
    (String.length b.Flight.detail > 0);
  check_bool "window captured" true (Array.length b.Flight.window > 0);
  (* The inversion fires early in the run, so only sites with visibility
     bookkeeping by then appear — the primary always does. *)
  check_bool "primary horizon captured" true
    (match List.assoc_opt "primary" b.Flight.horizons with
    | Some h -> h >= 0
    | None -> false);
  (* The implicated pair is a real witness: some checker inversion (at any
     strictness level) blames exactly these two history ids. *)
  let report = Option.get o.Sim_system.check_report in
  let pairs =
    List.map
      (fun (i : Checker.inversion) ->
        List.sort compare [ i.Checker.earlier.History.id; i.Checker.later.History.id ])
      (report.Checker.inversions_all @ report.Checker.inversions_in_session
     @ report.Checker.inversions_after_update)
  in
  check_int "two implicated txns" 2 (List.length b.Flight.implicated);
  check_bool "implicated pair is a post-hoc inversion witness" true
    (List.mem (List.sort compare b.Flight.implicated) pairs);
  check_bool "the witness interleaving is non-empty" true
    (Flight.witness_events b <> []);
  (* The alert fired with lineage off, so no journeys ride along; the
     reproducing config does. *)
  check_bool "bundle embeds the seed" true
    (Json.member "seed" b.Flight.config = Some (Json.Num 7.));
  check_bool "window events precede the trigger instant" true
    (Array.for_all (fun (e : Flight.event) -> e.Flight.time <= b.Flight.at)
       b.Flight.window)

let test_end_of_run_fallback () =
  (* A clean run never triggers; the bundle still exists (reason
     "end-of-run") so every recorded run is inspectable. *)
  let o = Sim_system.run (cfg Session.Strong_session ~seed:5 ~flight:true) in
  check_bool "no trigger on a clean run" true
    (o.Sim_system.flight_trigger = None);
  let b = bundle_of o in
  check_string "fallback reason" "end-of-run" b.Flight.reason;
  check_bool "nothing implicated" true (b.Flight.implicated = []);
  check_bool "window retained anyway" true (Array.length b.Flight.window > 0)

let test_deterministic_bundles_and_diff () =
  (* Same seed, two fresh recorders: byte-identical bundles, and the replay
     diff engine agrees there is no divergence. *)
  let run () = Sim_system.run (anomalous_cfg ~flight:true) in
  let a = run () and b = run () in
  let ja = Option.get a.Sim_system.flight_report
  and jb = Option.get b.Sim_system.flight_report in
  check_string "byte-identical bundles" (Json.to_string ja) (Json.to_string jb);
  check_bool "diff finds no divergence" true
    (Flight.diff (parse_ok ja) (parse_ok jb) = None);
  (* A genuinely different window (different seed) must diverge. *)
  let c =
    Sim_system.run
      {
        (anomalous_cfg ~flight:true) with
        Sim_system.seed = 8;
      }
  in
  match c.Sim_system.flight_report with
  | None -> Alcotest.fail "no flight report on the control run"
  | Some jc ->
    check_bool "different seeds diverge" true
      (Flight.diff (parse_ok ja) (parse_ok jc) <> None)

let () =
  Alcotest.run "lsr_flight"
    [
      ( "ring",
        [
          Alcotest.test_case "null is inert" `Quick test_null_inert;
          Alcotest.test_case "overwrite + first trigger wins" `Quick
            test_ring_overwrites_and_first_trigger_wins;
          Alcotest.test_case "bundle json roundtrip" `Quick
            test_bundle_json_roundtrip;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "never perturbs" `Slow test_never_perturbs;
          Alcotest.test_case "bounded footprint" `Slow test_bounded_footprint;
          Alcotest.test_case "postmortem end to end" `Quick
            test_postmortem_end_to_end;
          Alcotest.test_case "end-of-run fallback" `Quick
            test_end_of_run_fallback;
          Alcotest.test_case "deterministic bundles + diff" `Quick
            test_deterministic_bundles_and_diff;
        ] );
    ]
