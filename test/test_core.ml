(* Tests for the replication middleware (lsr_core): update propagation
   (Algorithm 3.1), secondary refresh (Algorithms 3.2/3.3) including the
   ordering relationships 1-3 of §3.1, session guarantees (§4), the history
   checker (Definitions 2.1/2.2, Theorems 3.1/3.2), the anomaly detectors
   (P0-P5) and the embedded replicated system. *)

open Lsr_storage
open Lsr_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str_opt = Alcotest.(check (option string))

let commit_exn db txn =
  match Mvcc.commit db txn with
  | Mvcc.Committed ts -> ts
  | Mvcc.Aborted _ -> Alcotest.fail "unexpected abort"

(* Run an update transaction at a primary, returning its commit ts. *)
let update_at primary writes =
  match
    Primary.execute primary (fun db txn ->
        List.iter (fun (k, v) -> Mvcc.write db txn k v) writes)
  with
  | Primary.Committed { commit_ts; _ } -> commit_ts
  | Primary.Aborted _ -> Alcotest.fail "unexpected primary abort"

(* --- Propagation (Algorithm 3.1) ------------------------------------------------ *)

let test_propagation_commit_carries_updates () =
  let primary = Primary.create () in
  let prop = Propagation.create ~from:0 (Primary.wal primary) in
  ignore (update_at primary [ ("x", Some "1"); ("y", Some "2") ]);
  match Propagation.poll prop with
  | [ Txn_record.Start_rec _; Txn_record.Commit_rec { updates; _ } ] ->
    check_int "both updates shipped" 2 (List.length updates)
  | records ->
    Alcotest.failf "unexpected records: %d" (List.length records)

let test_propagation_start_before_commit () =
  let primary = Primary.create () in
  let prop = Propagation.create ~from:0 (Primary.wal primary) in
  let db = Primary.db primary in
  (* Begin a transaction but do not commit yet: its start record must
     propagate immediately (liveness, §3.2). *)
  let txn = Mvcc.begin_txn db in
  Mvcc.write db txn "x" (Some "1");
  (match Propagation.poll prop with
  | [ Txn_record.Start_rec { txn = id; _ } ] ->
    check_int "start of in-flight txn" (Mvcc.txn_id txn) id
  | _ -> Alcotest.fail "expected exactly the start record");
  check_int "one in flight" 1 (Propagation.in_flight prop);
  ignore (commit_exn db txn);
  (match Propagation.poll prop with
  | [ Txn_record.Commit_rec _ ] -> ()
  | _ -> Alcotest.fail "expected the commit record");
  check_int "none in flight" 0 (Propagation.in_flight prop)

let test_propagation_abort_discards_updates () =
  let primary = Primary.create () in
  let prop = Propagation.create ~from:0 (Primary.wal primary) in
  let db = Primary.db primary in
  let txn = Mvcc.begin_txn db in
  Mvcc.write db txn "x" (Some "1");
  Mvcc.abort db txn;
  match Propagation.poll prop with
  | [ Txn_record.Start_rec _; Txn_record.Abort_rec { wasted; _ } ] ->
    check_int "no wasted work shipped by default" 0 (List.length wasted)
  | _ -> Alcotest.fail "expected start + abort"

(* A propagator whose cursor lies below the log's truncation point has lost
   records; polling must raise instead of silently resuming at the cut. *)
let test_propagation_truncated_log_fails_loudly () =
  let primary = Primary.create () in
  ignore (update_at primary [ ("x", Some "1") ]);
  ignore (update_at primary [ ("y", Some "2") ]);
  let late = Propagation.create ~from:0 (Primary.wal primary) in
  Wal.truncate_before (Primary.wal primary) (Wal.length (Primary.wal primary));
  Alcotest.check_raises "poll below the cut"
    (Invalid_argument
       (Printf.sprintf "Wal.read_from: offset 0 below truncation point %d"
          (Wal.length (Primary.wal primary))))
    (fun () -> ignore (Propagation.poll late))

let test_propagation_ship_aborted () =
  let primary = Primary.create () in
  let prop = Propagation.create ~from:0 ~ship_aborted:true (Primary.wal primary) in
  let db = Primary.db primary in
  let txn = Mvcc.begin_txn db in
  Mvcc.write db txn "x" (Some "1");
  Mvcc.write db txn "y" (Some "2");
  Mvcc.abort db txn;
  match Propagation.poll prop with
  | [ Txn_record.Start_rec _; Txn_record.Abort_rec { wasted; _ } ] ->
    check_int "eager mode ships aborted work" 2 (List.length wasted)
  | _ -> Alcotest.fail "expected start + abort"

let test_propagation_squashes_rewrites () =
  let primary = Primary.create () in
  let prop = Propagation.create ~from:0 (Primary.wal primary) in
  (match
     Primary.execute primary (fun db txn ->
         Mvcc.write db txn "x" (Some "first");
         Mvcc.write db txn "x" (Some "second"))
   with
  | Primary.Committed _ -> ()
  | Primary.Aborted _ -> Alcotest.fail "abort");
  match Propagation.poll prop with
  | [ Txn_record.Start_rec _; Txn_record.Commit_rec { updates; _ } ] -> (
    match updates with
    | [ { Wal.key = "x"; value = Some "second" } ] -> ()
    | _ -> Alcotest.fail "updates not squashed to last write")
  | _ -> Alcotest.fail "unexpected records"

let test_propagation_squash_keeps_first_write_position () =
  (* Squashing rewrites of a key keeps the key at its first-write position in
     the update list while carrying the last-written value — the refresh
     transaction replays the list verbatim, so both halves matter. *)
  let primary = Primary.create () in
  let prop = Propagation.create ~from:0 (Primary.wal primary) in
  (match
     Primary.execute primary (fun db txn ->
         Mvcc.write db txn "x" (Some "first");
         Mvcc.write db txn "y" (Some "only");
         Mvcc.write db txn "x" (Some "last"))
   with
  | Primary.Committed _ -> ()
  | Primary.Aborted _ -> Alcotest.fail "abort");
  match Propagation.poll prop with
  | [ Txn_record.Start_rec _; Txn_record.Commit_rec { updates; _ } ] ->
    let pairs = List.map (fun { Wal.key; value } -> (key, value)) updates in
    Alcotest.(check (list (pair string (option string))))
      "x stays first with its last value"
      [ ("x", Some "last"); ("y", Some "only") ]
      pairs
  | _ -> Alcotest.fail "unexpected records"

let test_propagation_interleaved_txns_isolated () =
  (* Two transactions interleaved in the log, writing the same key: each
     commit record carries exactly its own transaction's updates. *)
  let wal = Wal.create () in
  let prop = Propagation.create ~from:0 wal in
  Wal.append wal (Wal.Start { txn = 1; ts = 1 });
  Wal.append wal (Wal.Start { txn = 2; ts = 2 });
  Wal.append wal (Wal.Update { txn = 1; update = { key = "k"; value = Some "from-1" } });
  Wal.append wal (Wal.Update { txn = 2; update = { key = "k"; value = Some "from-2" } });
  Wal.append wal (Wal.Update { txn = 1; update = { key = "only-1"; value = Some "a" } });
  Wal.append wal (Wal.Commit { txn = 1; ts = 3 });
  Wal.append wal (Wal.Commit { txn = 2; ts = 4 });
  let commits =
    List.filter_map
      (function
        | Txn_record.Commit_rec { txn; updates; _ } ->
          Some (txn, List.map (fun { Wal.key; value } -> (key, value)) updates)
        | Txn_record.Start_rec _ | Txn_record.Abort_rec _ -> None)
      (Propagation.poll prop)
  in
  Alcotest.(check (list (pair int (list (pair string (option string))))))
    "no cross-contamination between interleaved txns"
    [
      (1, [ ("k", Some "from-1"); ("only-1", Some "a") ]);
      (2, [ ("k", Some "from-2") ]);
    ]
    commits

let test_propagation_order_is_log_order () =
  let primary = Primary.create () in
  let prop = Propagation.create ~from:0 (Primary.wal primary) in
  let ts1 = update_at primary [ ("a", Some "1") ] in
  let ts2 = update_at primary [ ("b", Some "2") ] in
  check_bool "ts1 < ts2" true (Timestamp.compare ts1 ts2 < 0);
  let commits =
    List.filter_map
      (function
        | Txn_record.Commit_rec { commit_ts; _ } -> Some commit_ts
        | Txn_record.Start_rec _ | Txn_record.Abort_rec _ -> None)
      (Propagation.poll prop)
  in
  Alcotest.(check (list int)) "commit records in ts order" [ ts1; ts2 ] commits

let test_propagation_cursor_position () =
  let primary = Primary.create () in
  let prop = Propagation.create ~from:0 (Primary.wal primary) in
  ignore (update_at primary [ ("a", Some "1") ]);
  ignore (Propagation.poll prop);
  check_int "cursor at log end" (Wal.length (Primary.wal primary))
    (Propagation.position prop)

let test_propagation_from_offset () =
  (* A propagator attached mid-log only ships what follows its cursor. *)
  let primary = Primary.create () in
  ignore (update_at primary [ ("old", Some "1") ]);
  let prop = Propagation.create (Primary.wal primary) in
  ignore (update_at primary [ ("new", Some "2") ]);
  let keys =
    List.concat_map
      (function
        | Txn_record.Commit_rec { updates; _ } ->
          List.map (fun { Wal.key; _ } -> key) updates
        | Txn_record.Start_rec _ | Txn_record.Abort_rec _ -> [])
      (Propagation.poll prop)
  in
  Alcotest.(check (list string)) "only new updates shipped" [ "new" ] keys

(* --- Secondary refresh (Algorithms 3.2/3.3) -------------------------------------- *)

(* Feed the propagated records of [actions] into a fresh secondary. *)
let replicate_to_secondary records =
  let sec = Secondary.create () in
  List.iter (Secondary.enqueue sec) records;
  sec

let records_of primary =
  Propagation.poll (Propagation.create ~from:0 (Primary.wal primary))

let test_refresh_applies_updates () =
  let primary = Primary.create () in
  ignore (update_at primary [ ("x", Some "1") ]);
  ignore (update_at primary [ ("y", Some "2") ]);
  let sec = replicate_to_secondary (records_of primary) in
  check_int "two refresh commits" 2 (Secondary.drain sec);
  let db = Secondary.db sec in
  Alcotest.(check (list (pair string string)))
    "secondary state equals primary"
    (Mvcc.committed_state (Primary.db primary))
    (Mvcc.committed_state db)

let test_refresh_sets_seq_dbsec () =
  let primary = Primary.create () in
  let ts = update_at primary [ ("x", Some "1") ] in
  let sec = replicate_to_secondary (records_of primary) in
  Alcotest.(check int) "initially zero" Timestamp.zero (Secondary.seq_dbsec sec);
  ignore (Secondary.drain sec);
  Alcotest.(check int) "seq(DBsec) = primary commit ts" ts
    (Secondary.seq_dbsec sec)

let test_refresh_abort_record () =
  let primary = Primary.create () in
  let db = Primary.db primary in
  let txn = Mvcc.begin_txn db in
  Mvcc.write db txn "x" (Some "junk");
  Mvcc.abort db txn;
  ignore (update_at primary [ ("y", Some "ok") ]);
  let sec = replicate_to_secondary (records_of primary) in
  check_int "only the committed txn refreshes" 1 (Secondary.drain sec);
  check_str_opt "aborted write never applied" None
    (Mvcc.read_at (Secondary.db sec)
       (Mvcc.latest_commit_ts (Secondary.db sec))
       "x")

let test_refresher_blocks_start_on_pending () =
  (* Sequential primary txns: T1 commits before T2 starts. The refresher
     must not start R2 while R1's commit is pending (relationship 2). *)
  let primary = Primary.create () in
  ignore (update_at primary [ ("x", Some "1") ]);
  ignore (update_at primary [ ("y", Some "2") ]);
  let sec = replicate_to_secondary (records_of primary) in
  (* Process T1's start and commit records but do not run the applicator. *)
  (match Secondary.refresher_step sec with
  | Secondary.Started _ -> ()
  | _ -> Alcotest.fail "expected Started for T1");
  (match Secondary.refresher_step sec with
  | Secondary.Dispatched _ -> ()
  | _ -> Alcotest.fail "expected Dispatched for T1");
  (* T2's start record is next, but R1 has not committed: blocked. *)
  (match Secondary.refresher_step sec with
  | Secondary.Blocked_on_pending -> ()
  | _ -> Alcotest.fail "expected Blocked_on_pending for T2's start");
  check_int "pending holds R1" 1 (Secondary.pending_queue_length sec);
  (* Run R1 to completion; then T2 can start. *)
  let app = List.hd (Secondary.active_applicators sec) in
  let rec finish () =
    match Secondary.applicator_step sec app with
    | Secondary.Committed _ -> ()
    | Secondary.Applied _ | Secondary.Waiting_commit -> finish ()
    | Secondary.Done -> ()
  in
  finish ();
  match Secondary.refresher_step sec with
  | Secondary.Started _ -> ()
  | _ -> Alcotest.fail "T2's refresh should start after R1 commits"

let test_applicators_commit_in_primary_order () =
  (* Two concurrent primary txns with disjoint writesets: their refresh
     transactions run concurrently but must commit in primary commit order
     (relationship 3), even if the later one finishes its work first. *)
  let primary = Primary.create () in
  let db = Primary.db primary in
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  Mvcc.write db t1 "x" (Some "t1");
  Mvcc.write db t1 "x2" (Some "t1");
  Mvcc.write db t2 "y" (Some "t2");
  let ts1 = commit_exn db t1 in
  let ts2 = commit_exn db t2 in
  let sec = replicate_to_secondary (records_of primary) in
  (* Both starts arrive before both commits (concurrent txns), so the
     refresher dispatches two applicators. *)
  let rec dispatch_all apps =
    match Secondary.refresher_step sec with
    | Secondary.Started _ -> dispatch_all apps
    | Secondary.Dispatched app -> dispatch_all (app :: apps)
    | Secondary.Idle -> List.rev apps
    | Secondary.Aborted _ | Secondary.Blocked_on_pending ->
      Alcotest.fail "unexpected refresher outcome"
  in
  let apps = dispatch_all [] in
  check_int "two applicators" 2 (List.length apps);
  let r1 = List.find (fun a -> Secondary.applicator_commit_ts a = ts1) apps in
  let r2 = List.find (fun a -> Secondary.applicator_commit_ts a = ts2) apps in
  (* Drive R2 to completion of its work: it must wait for R1. *)
  let rec drive app =
    match Secondary.applicator_step sec app with
    | Secondary.Applied _ -> drive app
    | other -> other
  in
  (match drive r2 with
  | Secondary.Waiting_commit -> ()
  | _ -> Alcotest.fail "R2 must wait for R1's commit");
  (match drive r1 with
  | Secondary.Committed ts -> Alcotest.(check int) "R1 commits first" ts1 ts
  | _ -> Alcotest.fail "R1 should commit");
  match Secondary.applicator_step sec r2 with
  | Secondary.Committed ts -> Alcotest.(check int) "R2 commits second" ts2 ts
  | _ -> Alcotest.fail "R2 should commit after R1"

let test_refresh_commit_order_matches_primary_random () =
  (* Randomized version of Lemma 3.3: whatever the interleaving of disjoint
     primary transactions, refresh commits occur in primary commit order. *)
  let primary = Primary.create () in
  for i = 1 to 20 do
    ignore (update_at primary [ (Printf.sprintf "k%d" i, Some (string_of_int i)) ])
  done;
  let sec = replicate_to_secondary (records_of primary) in
  ignore (Secondary.drain sec);
  match
    Checker.check_completeness ~primary:(Primary.db primary)
      ~secondary:(Secondary.db sec)
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_commit_without_start_rejected () =
  let sec = Secondary.create () in
  Secondary.enqueue sec
    (Txn_record.Commit_rec { txn = 99; commit_ts = 5; updates = [] });
  Alcotest.check_raises "protocol violation"
    (Invalid_argument
       "Secondary.refresher_step: commit record for T99 without start")
    (fun () -> ignore (Secondary.refresher_step sec))

let test_reseed_seq () =
  let sec = Secondary.create () in
  Secondary.reseed_seq sec 42;
  Alcotest.(check int) "reseeded" 42 (Secondary.seq_dbsec sec)

let test_on_refresh_commit_callback () =
  let primary = Primary.create () in
  let ts = update_at primary [ ("x", Some "1") ] in
  let seen = ref [] in
  let sec = Secondary.create ~on_refresh_commit:(fun t -> seen := t :: !seen) () in
  List.iter (Secondary.enqueue sec) (records_of primary);
  ignore (Secondary.drain sec);
  Alcotest.(check (list int)) "callback fired with primary ts" [ ts ] !seen

let test_applicator_dispatch_scales () =
  (* Regression for the O(n^2) applicator bookkeeping (list append on every
     dispatch, whole-list rebuild on every commit): tens of thousands of
     transactions all in flight before any commit must drain in linear time.
     The quadratic version burns minutes here; the budget is generous enough
     to never flake on a slow machine. *)
  let n = 50_000 in
  let sec = Secondary.create () in
  for i = 1 to n do
    Secondary.enqueue sec (Txn_record.Start_rec { txn = i; start_ts = i })
  done;
  for i = 1 to n do
    Secondary.enqueue sec
      (Txn_record.Commit_rec
         {
           txn = i;
           commit_ts = n + i;
           updates = [ { Wal.key = Printf.sprintf "k%d" i; value = Some "v" } ];
         })
  done;
  let t0 = Sys.time () in
  let committed = Secondary.drain sec in
  let elapsed = Sys.time () -. t0 in
  check_int "all refresh txns committed" n committed;
  check_int "no applicators left" 0
    (List.length (Secondary.active_applicators sec));
  check_int "seq(DBsec) at last primary ts" (2 * n) (Secondary.seq_dbsec sec);
  check_bool
    (Printf.sprintf "drained %d applicators in %.2fs cpu (budget 10s)" n elapsed)
    true (elapsed < 10.)

(* Randomized verification of the §3.1 ordering relationships 1 and 2 at
   the timestamp level (Lemmas 3.1/3.2): for a random mix of concurrent and
   sequential primary transactions, replay at a secondary and compare the
   LOCAL start/commit timestamps of refresh transactions against the
   PRIMARY start/commit relationships. *)
let prop_refresh_ordering_relationships =
  let gen =
    (* per txn: overlap-with-next flag *)
    QCheck.Gen.(list_size (int_range 2 8) bool)
  in
  QCheck.Test.make ~name:"relationships 1-3 hold at refresh (Lemmas 3.1-3.3)"
    ~count:200 (QCheck.make gen) (fun overlaps ->
      let primary = Primary.create () in
      let db = Primary.db primary in
      (* Build a schedule: each transaction either commits before the next
         starts (sequential) or overlaps it (concurrent, disjoint keys). *)
      let stamps = ref [] in
      let rec build i pending = function
        | [] ->
          List.iter
            (fun (txn, start) ->
              let c = commit_exn db txn in
              stamps := (start, c) :: !stamps)
            (List.rev pending)
        | overlap :: rest ->
          let txn = Mvcc.begin_txn db in
          let start = Mvcc.start_ts txn in
          Mvcc.write db txn (Printf.sprintf "k%d" i) (Some (string_of_int i));
          if overlap then build (i + 1) ((txn, start) :: pending) rest
          else begin
            List.iter
              (fun (t, s) ->
                let c = commit_exn db t in
                stamps := (s, c) :: !stamps)
              (List.rev ((txn, start) :: pending));
            build (i + 1) [] rest
          end
      in
      build 0 [] overlaps;
      let primary_stamps = List.rev !stamps in
      (* Replay at a secondary, recording local start and commit stamps via
         the applicators and the refresh-commit callback. *)
      let local = Hashtbl.create 16 in
      (* primary commit ts -> (local start, local commit order index) *)
      let order = ref 0 in
      let sec = Secondary.create () in
      List.iter (Secondary.enqueue sec) (records_of primary);
      let rec drive () =
        match Secondary.refresher_step sec with
        | Secondary.Started _ -> drive ()
        | Secondary.Dispatched app ->
          let rec run () =
            match Secondary.applicator_step sec app with
            | Secondary.Committed pts ->
              incr order;
              Hashtbl.replace local pts
                (Secondary.applicator_local_start app, !order)
            | Secondary.Applied _ | Secondary.Waiting_commit -> run ()
            | Secondary.Done -> ()
          in
          run ();
          drive ()
        | Secondary.Aborted _ -> drive ()
        | Secondary.Blocked_on_pending ->
          (* cannot happen in this driver: applicators run to completion *)
          false |> ignore;
          drive ()
        | Secondary.Idle -> ()
      in
      drive ();
      (* Local commit timestamps, in local commit order: the nth refresh
         commit produced the nth entry (both use the secondary's counter). *)
      let local_commits = Array.of_list (Mvcc.commit_history (Secondary.db sec)) in
      (* Check all three relationships for every pair, using the secondary's
         own timestamps:
         rel 1: startp(T1) < commitp(T2) => starts(R1) < commits(R2)
         rel 2: commitp(T1) < startp(T2) => commits(R1) < starts(R2)
         rel 3: commitp(T1) < commitp(T2) => commits(R1) < commits(R2) *)
      let ok = ref true in
      List.iter
        (fun (s1, c1) ->
          List.iter
            (fun (s2, c2) ->
              match (Hashtbl.find_opt local c1, Hashtbl.find_opt local c2) with
              | Some (ls1, lo1), Some (ls2, lo2) ->
                let lc1 = local_commits.(lo1 - 1)
                and lc2 = local_commits.(lo2 - 1) in
                if s1 < c2 && not (ls1 < lc2) then ok := false;
                if c1 < s2 && not (lc1 < ls2) then ok := false;
                if c1 < c2 && not (lc1 < lc2) then ok := false
              | _ -> ok := false)
            primary_stamps)
        primary_stamps;
      !ok)

(* Exhaustive interleaving exploration (bounded model checking): for a fixed
   propagated schedule, enumerate EVERY order in which the refresher and the
   applicators can take steps. Completeness (Theorem 3.1) must hold on every
   path, and no path may raise Refresh_conflict. Each path re-executes the
   schedule from scratch, choosing the [n]th enabled action at each point. *)
let test_exhaustive_interleavings () =
  (* Schedule: T1 and T2 concurrent with disjoint writesets, then T3
     sequential after both — exercises both the pending-queue blocking and
     concurrent applicators. *)
  let build_primary () =
    let primary = Primary.create () in
    let db = Primary.db primary in
    let t1 = Mvcc.begin_txn db in
    let t2 = Mvcc.begin_txn db in
    Mvcc.write db t1 "x" (Some "t1");
    Mvcc.write db t2 "y" (Some "t2");
    ignore (commit_exn db t1);
    ignore (commit_exn db t2);
    ignore (update_at primary [ ("x", Some "t3"); ("z", Some "t3") ]);
    primary
  in
  let reference = Mvcc.committed_state (Primary.db (build_primary ())) in
  (* Run one path guided by [choices]; returns [`Done commits] when the
     schedule drained, or [`Need_choice] when the guidance ran out. *)
  let run_path choices =
    let primary = build_primary () in
    let sec = replicate_to_secondary (records_of primary) in
    let commits = ref [] in
    (* Applicators that returned Waiting_commit while not at the head of the
       pending queue make no progress until a commit pops the queue; exclude
       them from the enabled set so every path terminates. *)
    let blocked = ref [] in
    let is_blocked app = List.memq app !blocked in
    let rec go choices =
      let refresher_enabled =
        match Secondary.peek_update sec with
        | None -> false
        | Some (Txn_record.Start_rec _) ->
          Secondary.pending_queue_length sec = 0
        | Some (Txn_record.Commit_rec _ | Txn_record.Abort_rec _) -> true
      in
      let apps =
        List.filter
          (fun a -> not (is_blocked a))
          (Secondary.active_applicators sec)
      in
      let actions =
        (if refresher_enabled then [ `Refresher ] else [])
        @ List.map (fun a -> `Applicator a) apps
      in
      match actions with
      | [] -> `Done (List.rev !commits)
      | _ -> (
        match choices with
        | [] -> `Need_choice (List.length actions)
        | choice :: rest -> (
          let action = List.nth actions (choice mod List.length actions) in
          match action with
          | `Refresher ->
            ignore (Secondary.refresher_step sec);
            go rest
          | `Applicator app -> (
            match Secondary.applicator_step sec app with
            | Secondary.Committed ts ->
              commits := ts :: !commits;
              blocked := [] (* the head moved: everyone may retry *);
              go rest
            | Secondary.Waiting_commit ->
              (match Secondary.pending_head sec with
              | Some head
                when Timestamp.equal head (Secondary.applicator_commit_ts app)
                ->
                () (* its turn: stepping again will commit *)
              | Some _ | None -> blocked := app :: !blocked);
              go rest
            | Secondary.Applied _ | Secondary.Done -> go rest)))
    in
    match go choices with
    | `Done commits ->
      let final = Mvcc.committed_state (Secondary.db sec) in
      `Done (commits, final)
    | `Need_choice n -> `Need_choice n
  in
  (* DFS over choice sequences. *)
  let explored = ref 0 in
  let rec explore prefix =
    match run_path prefix with
    | `Done (commits, final) ->
      incr explored;
      check_bool "refresh commits in primary order" true
        (List.sort Timestamp.compare commits = commits);
      Alcotest.(check (list (pair string string)))
        "final state matches primary" reference final
    | `Need_choice n ->
      for i = 0 to n - 1 do
        explore (prefix @ [ i ])
      done
  in
  explore [];
  check_bool "explored many interleavings" true (!explored >= 10)

let test_pretty_printers () =
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
    n = 0 || scan 0
  in
  let rec_text =
    Format.asprintf "%a" Txn_record.pp
      (Txn_record.Commit_rec
         { txn = 7; commit_ts = 42; updates = [ { Wal.key = "x"; value = Some "1" } ] })
  in
  check_bool "commit record pp" true
    (contains "T7" rec_text && contains "1 updates" rec_text);
  let txn =
    {
      History.id = 3;
      session = "c1";
      kind = History.Read_only;
      site = "secondary-0";
      first_op = 5;
      finished = 6;
      snapshot = 9;
      commit_ts = None;
      reads = [];
      writes = [];
      fence = None;
    }
  in
  let txn_text = Format.asprintf "%a" History.pp_txn txn in
  check_bool "history txn pp" true (contains "T3" txn_text && contains "c1" txn_text);
  let inv_text =
    Format.asprintf "%a" Checker.pp_inversion
      { Checker.earlier = txn; later = txn }
  in
  check_bool "inversion pp" true (contains "inverted" inv_text)

(* --- Session guarantees ------------------------------------------------------------ *)

let test_session_weak_never_blocks () =
  let mgr = Session.create Session.Weak in
  Session.note_update_commit mgr ~label:"c1" ~commit_ts:10;
  check_bool "weak always may read" true
    (Session.may_read mgr ~label:"c1" ~seq_dbsec:0)

let test_session_strong_session_blocks_own_label () =
  let mgr = Session.create Session.Strong_session in
  Session.note_update_commit mgr ~label:"c1" ~commit_ts:10;
  check_bool "own session blocked on stale copy" false
    (Session.may_read mgr ~label:"c1" ~seq_dbsec:5);
  check_bool "own session allowed on fresh copy" true
    (Session.may_read mgr ~label:"c1" ~seq_dbsec:10);
  check_bool "other session unaffected" true
    (Session.may_read mgr ~label:"c2" ~seq_dbsec:0)

let test_session_strong_blocks_everyone () =
  let mgr = Session.create Session.Strong in
  Session.note_update_commit mgr ~label:"c1" ~commit_ts:10;
  check_bool "every session blocked" false
    (Session.may_read mgr ~label:"c2" ~seq_dbsec:5)

let test_session_seq_monotone () =
  let mgr = Session.create Session.Strong_session in
  Session.note_update_commit mgr ~label:"c1" ~commit_ts:10;
  Session.note_update_commit mgr ~label:"c1" ~commit_ts:7;
  Alcotest.(check int) "seq never regresses" 10 (Session.seq mgr "c1")

let test_session_pcsi_ignores_read_floor () =
  (* PCSI orders a session's reads only after its own updates; strong
     session SI additionally never lets snapshots move backwards. *)
  let pcsi = Session.create Session.Prefix_consistent in
  let strong_session = Session.create Session.Strong_session in
  List.iter
    (fun mgr -> Session.note_read mgr ~label:"c" ~snapshot:10)
    [ pcsi; strong_session ];
  check_bool "PCSI: older copy fine after a read" true
    (Session.may_read pcsi ~label:"c" ~seq_dbsec:5);
  check_bool "strong session: older copy refused" false
    (Session.may_read strong_session ~label:"c" ~seq_dbsec:5);
  Alcotest.(check int) "read floor tracked" 10
    (Session.read_floor strong_session "c");
  Alcotest.(check int) "read floor not tracked under PCSI" 0
    (Session.read_floor pcsi "c")

let test_session_pcsi_blocks_after_update () =
  let mgr = Session.create Session.Prefix_consistent in
  Session.note_update_commit mgr ~label:"c" ~commit_ts:10;
  check_bool "PCSI blocks own-update staleness" false
    (Session.may_read mgr ~label:"c" ~seq_dbsec:5)

let test_session_guarantee_names () =
  Alcotest.(check string) "weak" "ALG-WEAK-SI" (Session.guarantee_name Session.Weak);
  Alcotest.(check string) "session" "ALG-STRONG-SESSION-SI"
    (Session.guarantee_name Session.Strong_session);
  Alcotest.(check string) "strong" "ALG-STRONG-SI"
    (Session.guarantee_name Session.Strong);
  Alcotest.(check string) "pcsi" "ALG-PCSI"
    (Session.guarantee_name Session.Prefix_consistent)

(* --- Freshness fences --------------------------------------------------------------- *)

let test_fence_string_round_trip () =
  List.iter
    (fun f ->
      match Session.fence_of_string (Session.fence_to_string f) with
      | Ok f' ->
        Alcotest.(check string)
          "round trip" (Session.fence_to_string f) (Session.fence_to_string f')
      | Error e -> Alcotest.fail e)
    [ Session.Exact 42; Session.Max_age 2.5; Session.Session_seq ];
  List.iter
    (fun s ->
      match Session.fence_of_string s with
      | Ok _ -> Alcotest.failf "parsed garbage fence %S" s
      | Error _ -> ())
    [ ""; "bogus"; "exact:"; "exact:x"; "age:"; "age:nope"; "sessions" ]

let test_fence_clock_horizon () =
  let c = Session.clock_create () in
  check_int "empty clock has zero horizon" Timestamp.zero
    (Session.clock_horizon c ~cutoff:1e9);
  Session.clock_note c ~commit_ts:1 ~at:10.;
  Session.clock_note c ~commit_ts:2 ~at:20.;
  Session.clock_note c ~commit_ts:5 ~at:20.;
  Session.clock_note c ~commit_ts:7 ~at:35.;
  check_int "entries tracked" 4 (Session.clock_len c);
  check_int "before first commit" Timestamp.zero
    (Session.clock_horizon c ~cutoff:9.);
  check_int "exactly at a commit" 1 (Session.clock_horizon c ~cutoff:10.);
  check_int "ties resolve to the newest" 5 (Session.clock_horizon c ~cutoff:20.);
  check_int "between commits" 5 (Session.clock_horizon c ~cutoff:34.9);
  check_int "after the last commit" 7 (Session.clock_horizon c ~cutoff:1e6);
  (match Session.clock_time_of c 5 with
  | Some t -> Alcotest.(check (float 1e-9)) "time of ts 5" 20. t
  | None -> Alcotest.fail "ts 5 should be in the clock");
  check_bool "unknown ts has no time" true (Session.clock_time_of c 3 = None);
  (* The clock is append-only and monotone in both coordinates. *)
  check_bool "non-monotone ts rejected" true
    (try
       Session.clock_note c ~commit_ts:6 ~at:40.;
       false
     with Invalid_argument _ -> true);
  check_bool "non-monotone time rejected" true
    (try
       Session.clock_note c ~commit_ts:9 ~at:30.;
       false
     with Invalid_argument _ -> true)

let test_fence_raises_weak_floor () =
  (* A fence is additive to the ambient guarantee: under Weak, required_seq
     is the fence's threshold alone; a Session_seq fence reduces exactly to
     the strong-session requirement. *)
  let mgr = Session.create Session.Weak in
  Session.note_update_commit mgr ~label:"c" ~commit_ts:10;
  check_int "weak alone requires nothing" Timestamp.zero
    (Session.required_seq mgr ~label:"c");
  check_int "exact fence requires its ts" 17
    (Session.required_seq ~fence:(Session.Exact 17) mgr ~label:"c");
  check_int "session fence = strong-session requirement" 10
    (Session.required_seq ~fence:Session.Session_seq mgr ~label:"c");
  check_bool "fenced read blocked on stale copy" false
    (Session.may_read ~fence:Session.Session_seq mgr ~label:"c" ~seq_dbsec:5);
  (* A Session_seq-fenced read raises the session's read floor even under
     Weak, so later Session_seq reads never move backwards. *)
  Session.note_read ~fence:Session.Session_seq mgr ~label:"c" ~snapshot:12;
  check_int "session fence floor ratchets" 12
    (Session.required_seq ~fence:Session.Session_seq mgr ~label:"c");
  check_int "guarantee alone still requires nothing" Timestamp.zero
    (Session.required_seq mgr ~label:"c")

let test_fence_max_age_threshold () =
  let mgr = Session.create Session.Weak in
  let clock = Session.clock_create () in
  Session.clock_note clock ~commit_ts:3 ~at:10.;
  Session.clock_note clock ~commit_ts:8 ~at:50.;
  check_int "horizon at now-5" 3
    (Session.fence_threshold mgr ~clock ~now:40. ~label:"c" (Session.Max_age 5.));
  check_int "tight bound reaches the newest commit" 8
    (Session.fence_threshold mgr ~clock ~now:50. ~label:"c" (Session.Max_age 0.));
  check_bool "Max_age without a clock is a programming error" true
    (try
       ignore (Session.fence_threshold mgr ~label:"c" (Session.Max_age 1.));
       false
     with Invalid_argument _ -> true)

(* --- Checker ------------------------------------------------------------------------ *)

let mk_txn ~id ~session ~kind ~first_op ~finished ~snapshot ?commit_ts
    ?(reads = []) ?(writes = []) ?fence () =
  {
    History.id;
    session;
    kind;
    site = "test";
    first_op;
    finished;
    snapshot;
    commit_ts;
    reads;
    writes;
    fence;
  }

let history_of txns =
  let h = History.create () in
  List.iter (History.add h) txns;
  h

let test_checker_detects_inversion_update_then_read () =
  (* Case 3 of Theorem 4.1: update commits (state 5), then a read in the
     same session sees state 3: inversion. *)
  let h =
    history_of
      [
        mk_txn ~id:1 ~session:"c" ~kind:History.Update ~first_op:1 ~finished:2
          ~snapshot:0 ~commit_ts:5 ();
        mk_txn ~id:2 ~session:"c" ~kind:History.Read_only ~first_op:3 ~finished:4
          ~snapshot:3 ();
      ]
  in
  check_int "one inversion" 1 (List.length (Checker.inversions h));
  check_int "also in-session" 1
    (List.length (Checker.inversions ~same_session_only:true h));
  check_bool "not strong SI" false (Checker.is_strong_si h);
  check_bool "not strong session SI" false (Checker.is_strong_session_si h)

let test_checker_cross_session_inversion_allowed_in_session_mode () =
  let h =
    history_of
      [
        mk_txn ~id:1 ~session:"c1" ~kind:History.Update ~first_op:1 ~finished:2
          ~snapshot:0 ~commit_ts:5 ();
        mk_txn ~id:2 ~session:"c2" ~kind:History.Read_only ~first_op:3 ~finished:4
          ~snapshot:3 ();
      ]
  in
  check_int "global inversion exists" 1 (List.length (Checker.inversions h));
  check_int "no in-session inversion" 0
    (List.length (Checker.inversions ~same_session_only:true h));
  check_bool "strong session SI holds" true (Checker.is_strong_session_si h)

let test_checker_read_read_inversion () =
  (* Case 4: snapshots must not move backwards within a session. *)
  let h =
    history_of
      [
        mk_txn ~id:1 ~session:"c" ~kind:History.Read_only ~first_op:1 ~finished:2
          ~snapshot:7 ();
        mk_txn ~id:2 ~session:"c" ~kind:History.Read_only ~first_op:3 ~finished:4
          ~snapshot:3 ();
      ]
  in
  check_int "backward snapshot is an inversion" 1
    (List.length (Checker.inversions ~same_session_only:true h))

let test_checker_fence_audit () =
  (* A mis-woken fenced reader — snapshot below what its fence promised —
     must be caught by the audit even though the ambient guarantee (Weak)
     tolerates arbitrary staleness. *)
  let fenced claim read_at = { History.claim; read_at } in
  let violating =
    history_of
      [
        mk_txn ~id:1 ~session:"w" ~kind:History.Update ~first_op:1 ~finished:2
          ~snapshot:0 ~commit_ts:5 ();
        (* Exact fence at 5, but woken with a snapshot of 3. *)
        mk_txn ~id:2 ~session:"r" ~kind:History.Read_only ~first_op:3
          ~finished:4 ~snapshot:3
          ~fence:(fenced (Session.Exact 5) 3.) ();
        (* Session_seq fence: session "w" committed ts 5 before this read
           started, so a snapshot of 2 breaks the session floor. *)
        mk_txn ~id:3 ~session:"w" ~kind:History.Read_only ~first_op:5
          ~finished:6 ~snapshot:2
          ~fence:(fenced Session.Session_seq 5.) ();
      ]
  in
  let violations = Checker.check_fences violating in
  check_int "both mis-woken readers caught" 2 (List.length violations);
  let report = Checker.analyze violating in
  check_int "report carries the fence violations" 2
    (List.length report.Checker.fence_violations);
  check_bool "weak SI alone would have accepted the history" false
    (Checker.satisfies Session.Weak report);
  (* The same history with honest snapshots passes. *)
  let clean =
    history_of
      [
        mk_txn ~id:1 ~session:"w" ~kind:History.Update ~first_op:1 ~finished:2
          ~snapshot:0 ~commit_ts:5 ();
        mk_txn ~id:2 ~session:"r" ~kind:History.Read_only ~first_op:3
          ~finished:4 ~snapshot:5
          ~fence:(fenced (Session.Exact 5) 3.) ();
        mk_txn ~id:3 ~session:"w" ~kind:History.Read_only ~first_op:5
          ~finished:6 ~snapshot:5
          ~fence:(fenced Session.Session_seq 5.) ();
      ]
  in
  check_int "honest fenced reads pass the audit" 0
    (List.length (Checker.check_fences clean));
  (* A Max_age claim is auditable only with the commit clock; without one it
     is reported, never silently skipped. *)
  let aged =
    history_of
      [
        mk_txn ~id:1 ~session:"w" ~kind:History.Update ~first_op:1 ~finished:2
          ~snapshot:0 ~commit_ts:5 ();
        mk_txn ~id:2 ~session:"r" ~kind:History.Read_only ~first_op:3
          ~finished:4 ~snapshot:0
          ~fence:(fenced (Session.Max_age 1.) 10.) ();
      ]
  in
  check_int "Max_age without a clock is itself a violation" 1
    (List.length (Checker.check_fences aged));
  let clock = Session.clock_create () in
  Session.clock_note clock ~commit_ts:5 ~at:2.;
  check_int "with the clock, the stale Max_age read is caught" 1
    (List.length (Checker.check_fences ~clock aged))

let test_checker_fence_edge_cases () =
  let fenced claim read_at = { History.claim; read_at } in
  (* A Max_age claim audited against a clock with no commits yet: the
     visibility horizon of an empty clock is state zero, which any snapshot
     satisfies — present-but-empty is not the same as absent (a violation).
     The watchdog inherits exactly this behaviour from check_fences. *)
  let aged =
    history_of
      [
        mk_txn ~id:1 ~session:"r" ~kind:History.Read_only ~first_op:1
          ~finished:2 ~snapshot:0
          ~fence:(fenced (Session.Max_age 1.) 10.) ();
      ]
  in
  check_int "Max_age vs empty clock: horizon 0, trivially satisfied" 0
    (List.length (Checker.check_fences ~clock:(Session.clock_create ()) aged));
  check_int "the same claim with no clock at all is a violation" 1
    (List.length (Checker.check_fences aged));
  (* Fence claims on transactions that later abort are never audited: the
     audit quantifies over committed transactions, and an aborted update
     must not raise the session fence floor either. *)
  let aborted_fenced =
    history_of
      [
        (* Aborted update carrying a (nonsensical but recordable) fence. *)
        mk_txn ~id:1 ~session:"s" ~kind:History.Update ~first_op:1 ~finished:2
          ~snapshot:0
          ~fence:(fenced (Session.Exact 99) 1.) ();
        (* Committed update at ts 5 raises the floor for its session... *)
        mk_txn ~id:2 ~session:"s" ~kind:History.Update ~first_op:3 ~finished:4
          ~snapshot:0 ~commit_ts:5 ();
        (* Aborted update at a would-be ts 9 must NOT raise it further. *)
        mk_txn ~id:3 ~session:"s" ~kind:History.Update ~first_op:5 ~finished:6
          ~snapshot:0 ();
        (* ...so a Session_seq read at snapshot 5 is honest (floor 5, not 9),
           and the aborted claims above were ignored entirely. *)
        mk_txn ~id:4 ~session:"s" ~kind:History.Read_only ~first_op:7
          ~finished:8 ~snapshot:5
          ~fence:(fenced Session.Session_seq 7.) ();
      ]
  in
  check_int "aborted claims ignored, aborted commits don't raise the floor" 0
    (List.length (Checker.check_fences aborted_fenced));
  (* Multiple Session_seq claims in one session ratchet: the first fenced
     read's snapshot becomes part of the floor the second is audited
     against, so a later read regressing below it is a violation even
     though no update intervened. *)
  let ratchet =
    history_of
      [
        mk_txn ~id:1 ~session:"s" ~kind:History.Read_only ~first_op:1
          ~finished:2 ~snapshot:7
          ~fence:(fenced Session.Session_seq 1.) ();
        mk_txn ~id:2 ~session:"s" ~kind:History.Read_only ~first_op:3
          ~finished:4 ~snapshot:3
          ~fence:(fenced Session.Session_seq 3.) ();
      ]
  in
  check_int "second Session_seq claim audited against the first's snapshot" 1
    (List.length (Checker.check_fences ratchet));
  (* The online watchdog agrees on all three edge cases, fed the same
     streams through its hooks. *)
  let wd_case ~clock txns =
    let w = Watchdog.create ?clock ~sites:1 () in
    List.iter
      (fun (t : History.txn) ->
        match t.History.kind with
        | History.Read_only ->
          let tok =
            Watchdog.begin_read w ~session:t.History.session
              ~snapshot:t.History.snapshot
          in
          Watchdog.end_read ?fence:t.History.fence w tok ~id:t.History.id
            ~site:t.History.site
            ~now:(float_of_int t.History.finished)
            ~reads:t.History.reads
        | History.Update ->
          let tok = Watchdog.begin_update w ~session:t.History.session in
          Watchdog.end_update w tok ~id:t.History.id
            ~now:(float_of_int t.History.finished)
            ~commit:
              (Option.map (fun ts -> (ts, t.History.writes)) t.History.commit_ts)
            ~snapshot:t.History.snapshot ~reads:t.History.reads)
      txns;
    (Watchdog.verdict w).Watchdog.fence_failures
  in
  check_int "watchdog: Max_age vs empty clock trivially satisfied" 0
    (wd_case ~clock:(Some (Session.clock_create ()))
       (History.transactions aged));
  check_int "watchdog: Max_age with no clock is a violation" 1
    (wd_case ~clock:None (History.transactions aged));
  check_int "watchdog: aborted claims ignored, floors unmoved" 0
    (wd_case ~clock:None (History.transactions aborted_fenced));
  check_int "watchdog: Session_seq claims ratchet" 1
    (wd_case ~clock:None (History.transactions ratchet))

let test_checker_concurrent_txns_not_inverted () =
  (* Overlapping transactions impose no ordering constraint. *)
  let h =
    history_of
      [
        mk_txn ~id:1 ~session:"c" ~kind:History.Update ~first_op:1 ~finished:5
          ~snapshot:0 ~commit_ts:9 ();
        mk_txn ~id:2 ~session:"c" ~kind:History.Read_only ~first_op:3 ~finished:4
          ~snapshot:0 ();
      ]
  in
  check_int "no inversion between concurrent txns" 0
    (List.length (Checker.inversions h))

let test_checker_aborted_txns_ignored () =
  let h =
    history_of
      [
        mk_txn ~id:1 ~session:"c" ~kind:History.Update ~first_op:1 ~finished:2
          ~snapshot:0 () (* aborted: no commit_ts *);
        mk_txn ~id:2 ~session:"c" ~kind:History.Read_only ~first_op:3 ~finished:4
          ~snapshot:0 ();
      ]
  in
  check_int "aborted updates pin nothing" 0 (List.length (Checker.inversions h))

let test_checker_weak_si_read_validation () =
  (* A read of x at snapshot 2 must observe the writer at ts<=2, not later. *)
  let w1 =
    mk_txn ~id:1 ~session:"w" ~kind:History.Update ~first_op:1 ~finished:2
      ~snapshot:0 ~commit_ts:2
      ~writes:[ { Wal.key = "x"; value = Some "old" } ]
      ()
  in
  let w2 =
    mk_txn ~id:2 ~session:"w" ~kind:History.Update ~first_op:3 ~finished:4
      ~snapshot:2 ~commit_ts:4
      ~writes:[ { Wal.key = "x"; value = Some "new" } ]
      ()
  in
  let good_read =
    mk_txn ~id:3 ~session:"r" ~kind:History.Read_only ~first_op:5 ~finished:6
      ~snapshot:2
      ~reads:[ ("x", Some "old") ]
      ()
  in
  let bad_read =
    mk_txn ~id:4 ~session:"r" ~kind:History.Read_only ~first_op:7 ~finished:8
      ~snapshot:2
      ~reads:[ ("x", Some "new") ]
      ()
  in
  check_int "consistent history passes" 0
    (List.length (Checker.check_weak_si (history_of [ w1; w2; good_read ])));
  check_int "inconsistent read flagged" 1
    (List.length (Checker.check_weak_si (history_of [ w1; w2; bad_read ])))

let test_checker_completeness_positive_negative () =
  let primary = Mvcc.create () in
  let sec = Mvcc.create () in
  let apply db writes =
    let txn = Mvcc.begin_txn db in
    List.iter (fun (k, v) -> Mvcc.write db txn k (Some v)) writes;
    ignore (commit_exn db txn)
  in
  apply primary [ ("a", "1") ];
  apply primary [ ("b", "2") ];
  apply sec [ ("a", "1") ];
  (* Prefix: ok. *)
  (match Checker.check_completeness ~primary ~secondary:sec with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Divergent writeset: flagged. *)
  apply sec [ ("b", "WRONG") ];
  match Checker.check_completeness ~primary ~secondary:sec with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "divergence not detected"

let test_checker_completeness_secondary_ahead () =
  let primary = Mvcc.create () in
  let sec = Mvcc.create () in
  let txn = Mvcc.begin_txn sec in
  Mvcc.write sec txn "x" (Some "1");
  ignore (commit_exn sec txn);
  match Checker.check_completeness ~primary ~secondary:sec with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "secondary ahead of primary not detected"

let test_checker_satisfies () =
  let clean =
    {
      Checker.weak_si_violations = [];
      inversions_all = [];
      inversions_in_session = [];
      inversions_after_update = [];
      fence_violations = [];
    }
  in
  let dummy =
    mk_txn ~id:0 ~session:"c" ~kind:History.Read_only ~first_op:0 ~finished:0
      ~snapshot:0 ()
  in
  let inv = { Checker.earlier = dummy; later = dummy } in
  check_bool "clean satisfies strong" true (Checker.satisfies Session.Strong clean);
  let cross = { clean with Checker.inversions_all = [ inv ] } in
  check_bool "cross-session inversion ok for session SI" true
    (Checker.satisfies Session.Strong_session cross);
  check_bool "but not for strong SI" false (Checker.satisfies Session.Strong cross);
  let in_session = { cross with Checker.inversions_in_session = [ inv ] } in
  check_bool "in-session inversion violates session SI" false
    (Checker.satisfies Session.Strong_session in_session);
  check_bool "weak allows all inversions" true
    (Checker.satisfies Session.Weak in_session);
  let broken = { clean with Checker.weak_si_violations = [ "x" ] } in
  check_bool "weak SI violation breaks everything" false
    (Checker.satisfies Session.Weak broken)

(* --- Serializability (serialization-graph test) ---------------------------------------- *)

(* Record a committed update transaction into a history. *)
let record_update h ~session ~reads ~writes db body =
  let first_op = History.tick h in
  let snapshot = Mvcc.latest_commit_ts db in
  let txn = Mvcc.begin_txn db in
  body txn;
  let observed = List.map (fun k -> (k, Mvcc.read db txn k)) reads in
  List.iter (fun (k, v) -> Mvcc.write db txn k (Some v)) writes;
  let pending = Mvcc.pending_writes txn in
  match Mvcc.commit db txn with
  | Mvcc.Committed cts ->
    History.add h
      {
        History.id = History.fresh_id h;
        session;
        kind = History.Update;
        site = "primary";
        first_op;
        finished = History.tick h;
        snapshot;
        commit_ts = Some cts;
        reads = observed;
        writes = pending;
        fence = None;
      }
  | Mvcc.Aborted _ -> Alcotest.fail "unexpected abort while recording"

let test_serializable_serial_history () =
  let h = History.create () in
  let db = Mvcc.create () in
  record_update h ~session:"a" ~reads:[] ~writes:[ ("x", "1") ] db (fun _ -> ());
  record_update h ~session:"b" ~reads:[ "x" ] ~writes:[ ("y", "2") ] db
    (fun _ -> ());
  record_update h ~session:"a" ~reads:[ "y" ] ~writes:[ ("x", "3") ] db
    (fun _ -> ());
  check_bool "serial history is serializable" true (Checker.is_serializable h)

let test_write_skew_not_serializable () =
  (* The classic SI write-skew execution has an rw-rw cycle. *)
  let h = History.create () in
  let db = Mvcc.create () in
  record_update h ~session:"init" ~reads:[] ~writes:[ ("x", "1"); ("y", "1") ]
    db (fun _ -> ());
  (* Two concurrent transactions, interleaved by hand. *)
  let first_op1 = History.tick h in
  let snap = Mvcc.latest_commit_ts db in
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  let r1 = [ ("x", Mvcc.read db t1 "x"); ("y", Mvcc.read db t1 "y") ] in
  let r2 = [ ("x", Mvcc.read db t2 "x"); ("y", Mvcc.read db t2 "y") ] in
  Mvcc.write db t1 "x" (Some "0");
  Mvcc.write db t2 "y" (Some "0");
  let w1 = Mvcc.pending_writes t1 and w2 = Mvcc.pending_writes t2 in
  let c1 = match Mvcc.commit db t1 with Mvcc.Committed c -> c | _ -> assert false in
  let first_op2 = History.tick h in
  let c2 = match Mvcc.commit db t2 with Mvcc.Committed c -> c | _ -> assert false in
  History.add h
    {
      History.id = History.fresh_id h;
      session = "s1";
      kind = History.Update;
      site = "primary";
      first_op = first_op1;
      finished = History.tick h;
      snapshot = snap;
      commit_ts = Some c1;
      reads = r1;
      writes = w1;
      fence = None;
    };
  History.add h
    {
      History.id = History.fresh_id h;
      session = "s2";
      kind = History.Update;
      site = "primary";
      first_op = first_op2;
      finished = History.tick h;
      snapshot = snap;
      commit_ts = Some c2;
      reads = r2;
      writes = w2;
      fence = None;
    };
  check_bool "write skew breaks serializability" false (Checker.is_serializable h);
  match Checker.serialization_cycle h with
  | Some cycle -> check_bool "cycle has >= 2 nodes" true (List.length cycle >= 2)
  | None -> Alcotest.fail "expected a cycle"

(* The same two execution shapes, via the fixtures shared with the static
   analyzer's cross-validation suite: the cycle the checker reports must
   consist of exactly the two interleaved sign-off transactions, and the
   serial execution of the same operations must have no cycle at all. *)
let test_serialization_cycle_on_fixtures () =
  let h, mapping = Fixtures.write_skew_history () in
  (match Checker.serialization_cycle h with
  | None -> Alcotest.fail "write-skew fixture must have a cycle"
  | Some cycle ->
    let names =
      List.map
        (fun id ->
          match List.assoc_opt id mapping with
          | Some name -> name
          | None -> Alcotest.failf "cycle names unknown transaction %d" id)
        cycle
    in
    let sorted = List.sort_uniq compare names in
    Alcotest.(check (list string))
      "cycle is exactly the two sign-off transactions"
      [ "check_then_sign_off_x"; "check_then_sign_off_y" ]
      sorted);
  let serial, _ = Fixtures.serial_history () in
  Alcotest.(check bool)
    "serial execution of the same operations has no cycle" true
    (Checker.serialization_cycle serial = None)

let test_one_sr_prevents_write_skew () =
  (* The same two on-call doctors, but guarded with the ticket: the second
     committer aborts, and a retried execution preserves the invariant. *)
  let db = Mvcc.create () in
  let seed = Mvcc.begin_txn db in
  Mvcc.write db seed "oncall:a" (Some "yes");
  Mvcc.write db seed "oncall:b" (Some "yes");
  ignore (commit_exn db seed);
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  let on_call txn =
    (if Mvcc.read db txn "oncall:a" = Some "yes" then 1 else 0)
    + if Mvcc.read db txn "oncall:b" = Some "yes" then 1 else 0
  in
  if on_call t1 >= 2 then Mvcc.write db t1 "oncall:a" (Some "no");
  if on_call t2 >= 2 then Mvcc.write db t2 "oncall:b" (Some "no");
  One_sr.guard db t1;
  One_sr.guard db t2;
  (match Mvcc.commit db t1 with
  | Mvcc.Committed _ -> ()
  | Mvcc.Aborted _ -> Alcotest.fail "first guarded commit must succeed");
  (match Mvcc.commit db t2 with
  | Mvcc.Aborted (Mvcc.Write_conflict _) -> ()
  | _ -> Alcotest.fail "guard must force a conflict");
  let still_on k = Mvcc.read_at db (Mvcc.latest_commit_ts db) k = Some "yes" in
  check_bool "invariant preserved" true (still_on "oncall:a" || still_on "oncall:b")

let test_one_sr_run_retries () =
  let db = Mvcc.create () in
  (* Interleave a conflicting guarded commit inside the body's first
     execution to force one retry. *)
  let attempts = ref 0 in
  let result =
    One_sr.run db (fun txn ->
        incr attempts;
        ignore (Mvcc.read db txn "x");
        if !attempts = 1 then begin
          match One_sr.run db (fun inner -> Mvcc.write db inner "x" (Some "other")) with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "inner run failed"
        end;
        Mvcc.write db txn "x" (Some "mine"))
  in
  (match result with
  | Ok ((), _) -> ()
  | Error _ -> Alcotest.fail "outer run should retry and succeed");
  check_int "two attempts" 2 !attempts;
  check_int "two guarded commits" 2 (One_sr.ticket_value db);
  check_str_opt "last committed value" (Some "mine")
    (Mvcc.read_at db (Mvcc.latest_commit_ts db) "x")

let test_one_sr_run_gives_up () =
  let db = Mvcc.create () in
  let result =
    One_sr.run ~max_attempts:3 db (fun txn ->
        ignore (Mvcc.read db txn "y");
        (* Always lose the race to a fresh guarded commit. *)
        (match One_sr.run db (fun inner -> Mvcc.write db inner "y" (Some "w")) with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "inner run failed");
        Mvcc.write db txn "y" (Some "mine"))
  in
  match result with
  | Error attempts -> check_int "gave up after max attempts" 3 attempts
  | Ok _ -> Alcotest.fail "should have exhausted retries"

let test_one_sr_custom_ticket_domains () =
  (* Different tickets do not conflict with each other. *)
  let db = Mvcc.create () in
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  One_sr.guard ~ticket:"$t:books$" db t1;
  One_sr.guard ~ticket:"$t:orders$" db t2;
  (match Mvcc.commit db t1 with Mvcc.Committed _ -> () | _ -> Alcotest.fail "t1");
  (match Mvcc.commit db t2 with
  | Mvcc.Committed _ -> ()
  | Mvcc.Aborted _ -> Alcotest.fail "distinct tickets must not conflict");
  check_int "books domain count" 1 (One_sr.ticket_value ~ticket:"$t:books$" db)

(* Guarded random workloads are always serializable. *)
let prop_one_sr_serializable =
  let gen =
    QCheck.Gen.(
      list_size (int_range 2 10)
        (pair (list_size (int_range 0 2) (int_range 0 3))
           (list_size (int_range 1 2) (int_range 0 3))))
  in
  QCheck.Test.make ~name:"guarded histories are serializable" ~count:100
    (QCheck.make gen) (fun specs ->
      let h = History.create () in
      let db = Mvcc.create () in
      List.iteri
        (fun i (reads, writes) ->
          let reads = List.map (Printf.sprintf "k%d") reads in
          let writes =
            List.map (fun k -> (Printf.sprintf "k%d" k, Printf.sprintf "v%d" i)) writes
          in
          let first_op = History.tick h in
          let snapshot = Mvcc.latest_commit_ts db in
          match
            One_sr.run db (fun txn ->
                let observed = List.map (fun k -> (k, Mvcc.read db txn k)) reads in
                List.iter (fun (k, v) -> Mvcc.write db txn k (Some v)) writes;
                (observed, Mvcc.pending_writes txn))
          with
          | Ok ((observed, pending), cts) ->
            History.add h
              {
                History.id = History.fresh_id h;
                session = Printf.sprintf "s%d" (i mod 3);
                kind = History.Update;
                site = "primary";
                first_op;
                finished = History.tick h;
                snapshot;
                commit_ts = Some cts;
                reads = observed;
                writes = pending;
                fence = None;
              }
          | Error _ -> ())
        specs;
      Checker.is_serializable h)

(* The optimized O(n log n) inversion sweep must agree with a direct O(n^2)
   transcription of Definitions 2.1/2.2. *)
let prop_inversions_match_bruteforce =
  let txn_gen =
    QCheck.Gen.(
      map
        (fun (id, (sess, (kind, (a, (b, snap))))) ->
          let first_op = min a b and finished = max a b in
          let kind = if kind then History.Update else History.Read_only in
          let commit_ts =
            match kind with
            | History.Update -> if snap mod 3 = 0 then None else Some (snap + 1)
            | History.Read_only -> None
          in
          {
            History.id;
            session = Printf.sprintf "s%d" sess;
            kind;
            site = "x";
            first_op;
            finished = finished + 1;
            snapshot = snap;
            commit_ts;
            reads = [];
            writes = [];
            fence = None;
          })
        (pair (int_range 0 1000)
           (pair (int_range 0 2)
              (pair bool (pair (int_range 0 30) (pair (int_range 0 30) (int_range 0 10)))))))
  in
  let bruteforce ~same_session txns =
    let committed (t : History.txn) =
      match (t.kind, t.commit_ts) with
      | History.Update, Some _ -> true
      | History.Update, None -> false
      | History.Read_only, _ -> true
    in
    let state (t : History.txn) =
      match t.kind with
      | History.Update -> Option.get t.commit_ts
      | History.Read_only -> t.snapshot
    in
    let committed_txns = List.filter committed txns in
    List.exists
      (fun (t2 : History.txn) ->
        List.exists
          (fun (t1 : History.txn) ->
            t1.History.finished < t2.History.first_op
            && ((not same_session) || t1.session = t2.session)
            && t2.snapshot < state t1)
          committed_txns)
      committed_txns
  in
  QCheck.Test.make ~name:"inversion sweep = brute force" ~count:300
    QCheck.(make Gen.(list_size (int_range 0 12) txn_gen))
    (fun txns ->
      let h = History.create () in
      List.iter (History.add h) txns;
      Checker.inversions h <> [] = bruteforce ~same_session:false txns
      && Checker.inversions ~same_session_only:true h <> []
         = bruteforce ~same_session:true txns)

(* --- Anomaly detectors --------------------------------------------------------------- *)

let test_anomaly_dirty_write () =
  let h =
    [
      Anomaly.Begin 1;
      Anomaly.Begin 2;
      Anomaly.Write { txn = 1; key = "x"; value = Some "a"; preds = [] };
      Anomaly.Write { txn = 2; key = "x"; value = Some "b"; preds = [] };
      Anomaly.Commit 1;
      Anomaly.Commit 2;
    ]
  in
  Alcotest.(check (list (pair int int))) "P0 witnessed" [ (1, 2) ]
    (Anomaly.dirty_writes h);
  check_bool "not SI safe" false (Anomaly.si_safe h)

let test_anomaly_dirty_read () =
  let h =
    [
      Anomaly.Begin 1;
      Anomaly.Begin 2;
      Anomaly.Write { txn = 1; key = "x"; value = Some "dirty"; preds = [] };
      Anomaly.Read { txn = 2; key = "x"; value = Some "dirty" };
      Anomaly.Abort 1;
      Anomaly.Commit 2;
    ]
  in
  Alcotest.(check (list (pair int int))) "P1 witnessed" [ (1, 2) ]
    (Anomaly.dirty_reads h)

let test_anomaly_fuzzy_read () =
  let h =
    [
      Anomaly.Begin 1;
      Anomaly.Read { txn = 1; key = "x"; value = Some "v1" };
      Anomaly.Begin 2;
      Anomaly.Write { txn = 2; key = "x"; value = Some "v2"; preds = [] };
      Anomaly.Commit 2;
      Anomaly.Read { txn = 1; key = "x"; value = Some "v2" };
      Anomaly.Commit 1;
    ]
  in
  Alcotest.(check (list (pair int int))) "P2 witnessed" [ (1, 2) ]
    (Anomaly.fuzzy_reads h)

let test_anomaly_phantom () =
  let h =
    [
      Anomaly.Begin 1;
      Anomaly.Pred_read { txn = 1; pred = "price<10"; result = [ "a" ] };
      Anomaly.Begin 2;
      Anomaly.Write
        { txn = 2; key = "b"; value = Some "cheap"; preds = [ "price<10" ] };
      Anomaly.Commit 2;
      Anomaly.Pred_read { txn = 1; pred = "price<10"; result = [ "a"; "b" ] };
      Anomaly.Commit 1;
    ]
  in
  Alcotest.(check (list (pair int int))) "P3 witnessed" [ (1, 2) ]
    (Anomaly.phantoms h)

let test_anomaly_lost_update () =
  let h =
    [
      Anomaly.Begin 1;
      Anomaly.Begin 2;
      Anomaly.Read { txn = 1; key = "x"; value = Some "0" };
      Anomaly.Write { txn = 2; key = "x"; value = Some "t2"; preds = [] };
      Anomaly.Commit 2;
      Anomaly.Write { txn = 1; key = "x"; value = Some "t1"; preds = [] };
      Anomaly.Commit 1;
    ]
  in
  Alcotest.(check (list (pair int int))) "P4 witnessed" [ (1, 2) ]
    (Anomaly.lost_updates h)

let test_anomaly_write_skew () =
  let h =
    [
      Anomaly.Begin 1;
      Anomaly.Begin 2;
      Anomaly.Read { txn = 1; key = "x"; value = Some "1" };
      Anomaly.Read { txn = 1; key = "y"; value = Some "1" };
      Anomaly.Read { txn = 2; key = "x"; value = Some "1" };
      Anomaly.Read { txn = 2; key = "y"; value = Some "1" };
      Anomaly.Write { txn = 2; key = "x"; value = Some "0"; preds = [] };
      Anomaly.Commit 2;
      Anomaly.Write { txn = 1; key = "y"; value = Some "0"; preds = [] };
      Anomaly.Commit 1;
    ]
  in
  Alcotest.(check (list (pair int int))) "P5 witnessed" [ (1, 2) ]
    (Anomaly.write_skews h);
  (* Write skew alone leaves the history SI-safe: SI admits P5. *)
  check_bool "P5 does not break si_safe" true (Anomaly.si_safe h)

let test_anomaly_clean_serial_history () =
  let h =
    [
      Anomaly.Begin 1;
      Anomaly.Write { txn = 1; key = "x"; value = Some "1"; preds = [] };
      Anomaly.Commit 1;
      Anomaly.Begin 2;
      Anomaly.Read { txn = 2; key = "x"; value = Some "1" };
      Anomaly.Write { txn = 2; key = "x"; value = Some "2"; preds = [] };
      Anomaly.Commit 2;
    ]
  in
  check_bool "serial history is SI safe" true (Anomaly.si_safe h);
  check_int "no P5 either" 0 (List.length (Anomaly.write_skews h))

(* A random MVCC execution, transcribed to an anomaly trace, exhibits none of
   P0-P4. The detectors are value-based, so written values are made unique —
   as in Adya-style formalizations, versions must be distinguishable. *)
let prop_mvcc_histories_si_safe =
  let gen =
    QCheck.Gen.(
      list_size (int_range 2 6)
        (list_size (int_range 1 4) (pair (int_range 0 3) bool)))
  in
  QCheck.Test.make ~name:"Mvcc histories exhibit no P0-P4" ~count:200
    (QCheck.make gen) (fun txn_specs ->
      let db = Mvcc.create () in
      let trace = ref [] in
      let emit op = trace := op :: !trace in
      (* Run pairs of transactions concurrently. *)
      let rec run = function
        | [] -> ()
        | [ spec ] -> run_pair spec []
        | a :: b :: rest ->
          run_pair a b;
          run rest
      and run_pair a b =
        let start spec =
          let txn = Mvcc.begin_txn db in
          emit (Anomaly.Begin (Mvcc.txn_id txn));
          (txn, spec)
        in
        let ta, sa = start a in
        let tb, sb = start b in
        let counter = ref 0 in
        let step (txn, ops) =
          List.iter
            (fun (k, is_delete) ->
              let key = Printf.sprintf "k%d" k in
              let id = Mvcc.txn_id txn in
              let seen = Mvcc.read db txn key in
              emit (Anomaly.Read { txn = id; key; value = seen });
              incr counter;
              let v =
                if is_delete then None
                else Some (Printf.sprintf "v%d.%d" id !counter)
              in
              Mvcc.write db txn key v;
              emit (Anomaly.Write { txn = id; key; value = v; preds = [] }))
            ops
        in
        step (ta, sa);
        step (tb, sb);
        let finish txn =
          match Mvcc.commit db txn with
          | Mvcc.Committed _ -> emit (Anomaly.Commit (Mvcc.txn_id txn))
          | Mvcc.Aborted _ -> emit (Anomaly.Abort (Mvcc.txn_id txn))
        in
        finish ta;
        finish tb
      in
      run txn_specs;
      Anomaly.si_safe (List.rev !trace))

(* --- Embedded System ------------------------------------------------------------------ *)

let test_system_weak_shows_inversion () =
  let sys = System.create ~secondaries:1 ~guarantee:Session.Weak () in
  let c = System.connect sys "alice" in
  (match System.update sys c (fun h -> Handle.put h "order" "placed") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  (* No pump: the copy is stale, so the session sees old data. *)
  let v = System.read sys c (fun h -> Handle.get h "order") in
  check_str_opt "stale read under weak SI" None v;
  let report = Checker.analyze (System.history sys) in
  check_int "inversion recorded" 1 (List.length report.Checker.inversions_in_session);
  check_int "still weak SI" 0 (List.length report.Checker.weak_si_violations)

let test_system_strong_session_reads_own_writes () =
  let sys = System.create ~secondaries:2 ~guarantee:Session.Strong_session () in
  let c = System.connect sys "bob" in
  (match System.update sys c (fun h -> Handle.put h "order" "placed") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  let v = System.read sys c (fun h -> Handle.get h "order") in
  check_str_opt "read-your-writes" (Some "placed") v;
  check_int "the read had to wait" 1 (System.blocked_reads sys);
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_system_strong_session_cross_session_stale_ok () =
  let sys = System.create ~secondaries:1 ~guarantee:Session.Strong_session () in
  let writer = System.connect sys "writer" in
  let reader = System.connect sys "reader" in
  (match System.update sys writer (fun h -> Handle.put h "x" "new") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  (* Different session: may read stale data without waiting. *)
  let v = System.read sys reader (fun h -> Handle.get h "x") in
  check_str_opt "other session reads stale" None v;
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_system_strong_blocks_cross_session () =
  let sys = System.create ~secondaries:1 ~guarantee:Session.Strong () in
  let writer = System.connect sys "writer" in
  let reader = System.connect sys "reader" in
  (match System.update sys writer (fun h -> Handle.put h "x" "new") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  let v = System.read sys reader (fun h -> Handle.get h "x") in
  check_str_opt "strong SI: cross-session read waits and sees it" (Some "new") v;
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_system_read_nowait () =
  let sys = System.create ~secondaries:1 ~guarantee:Session.Strong_session () in
  let c = System.connect sys "c" in
  (match System.update sys c (fun h -> Handle.put h "x" "1") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  check_bool "nowait returns None while stale" true
    (System.read_nowait sys c (fun h -> Handle.get h "x") = None);
  System.pump sys;
  check_bool "nowait succeeds after pump" true
    (System.read_nowait sys c (fun h -> Handle.get h "x") = Some (Some "1"))

let test_system_read_nowait_crashed () =
  (* A crashed secondary cannot serve the read now — read_nowait reports
     None instead of raising, and serves again after recovery. *)
  let sys = System.create ~secondaries:2 ~guarantee:Session.Weak () in
  let c = System.connect sys ~secondary:0 "c" in
  (match System.update sys c (fun h -> Handle.put h "x" "1") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  System.pump sys;
  check_bool "satisfiable read returns Some" true
    (System.read_nowait sys c (fun h -> Handle.get h "x") = Some (Some "1"));
  System.crash_secondary sys 0;
  check_bool "crashed secondary returns None, not an exception" true
    (System.read_nowait sys c (fun h -> Handle.get h "x") = None);
  System.recover_secondary sys 0;
  check_bool "serves again after recovery" true
    (System.read_nowait sys c (fun h -> Handle.get h "x") = Some (Some "1"))

let test_system_fenced_read_session_seq () =
  (* A Session_seq fence under Weak gives that one read exactly the
     strong-session treatment: it waits for the session's own update. *)
  let sys = System.create ~secondaries:1 ~guarantee:Session.Weak () in
  let c = System.connect sys "alice" in
  (match System.update sys c (fun h -> Handle.put h "order" "placed") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  check_bool "unfenced weak read is stale" true
    (System.read sys c (fun h -> Handle.get h "order") = None);
  check_str_opt "session-fenced read sees own write"
    (Some "placed")
    (System.read ~fence:Session.Session_seq sys c (fun h -> Handle.get h "order"));
  check_int "the fenced read had to wait" 1 (System.blocked_reads sys);
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_system_fenced_read_exact_and_max_age () =
  let sys = System.create ~secondaries:1 ~guarantee:Session.Weak () in
  let c = System.connect sys "c" in
  (match System.update sys c (fun h -> Handle.put h "x" "1") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  let committed = Session.seq (System.sessions sys) "c" in
  check_bool "the update advanced seq(c)" true
    (Timestamp.compare committed Timestamp.zero > 0);
  check_str_opt "exact fence forces the copy up to the commit" (Some "1")
    (System.read ~fence:(Session.Exact committed) sys c (fun h ->
         Handle.get h "x"));
  (match System.update sys c (fun h -> Handle.put h "x" "2") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  (* Max_age 0: nothing older than "now" may be missing — the copy must
     catch up to every commit already on the clock. *)
  check_str_opt "age:0 fence observes the newest commit" (Some "2")
    (System.read ~fence:(Session.Max_age 0.) sys c (fun h -> Handle.get h "x"));
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_system_fenced_read_future_unsatisfiable () =
  (* An Exact fence naming a commit that does not exist cannot be satisfied
     by any amount of pumping: the bounded retry loop must give up with the
     typed error, not loop forever or fail with an opaque message. *)
  let sys = System.create ~secondaries:1 ~guarantee:Session.Weak () in
  let c = System.connect sys "c" in
  (match System.update sys c (fun h -> Handle.put h "x" "1") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  let committed = Session.seq (System.sessions sys) "c" in
  let future = committed + 1000 in
  match System.read ~fence:(Session.Exact future) sys c (fun h -> Handle.get h "x") with
  | _ -> Alcotest.fail "future fence should be unsatisfiable"
  | exception System.Unsatisfiable_read { secondary; required; available; pumps } ->
    check_int "failing site" 0 secondary;
    check_int "required the future ts" future required;
    check_int "available is the caught-up seq" committed available;
    check_bool "retried a bounded number of times" true (pumps > 0)

let test_system_forced_abort () =
  let sys = System.create ~secondaries:1 ~guarantee:Session.Weak () in
  let c = System.connect sys "c" in
  (match System.update sys c ~force_abort:true (fun h -> Handle.put h "x" "1") with
  | Error Mvcc.Forced -> ()
  | Error (Mvcc.Write_conflict _) | Ok _ -> Alcotest.fail "expected forced abort");
  System.pump sys;
  let v = System.read sys c (fun h -> Handle.get h "x") in
  check_str_opt "aborted update never replicates" None v;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_system_fcw_abort_surfaces () =
  let sys = System.create ~secondaries:1 ~guarantee:Session.Weak () in
  let c = System.connect sys "c" in
  (* Two "concurrent" updates can't happen in the embedded driver (updates
     run to completion), so exercise the error path via force_abort and a
     direct conflicting pair at the primary. *)
  let db = System.primary_db sys in
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  Mvcc.write db t1 "x" (Some "1");
  Mvcc.write db t2 "x" (Some "2");
  ignore (commit_exn db t1);
  (match Mvcc.commit db t2 with
  | Mvcc.Aborted (Mvcc.Write_conflict _) -> ()
  | _ -> Alcotest.fail "conflict expected");
  System.pump sys;
  (* The replicated machinery survives aborted writers in the log. *)
  let v = System.read sys c (fun h -> Handle.get h "x") in
  check_str_opt "first committer replicated" (Some "1") v

let test_system_multi_secondary_consistency () =
  let sys = System.create ~secondaries:4 ~guarantee:Session.Strong_session () in
  let clients = List.init 8 (fun i -> System.connect sys (Printf.sprintf "c%d" i)) in
  List.iteri
    (fun i c ->
      for j = 0 to 5 do
        match
          System.update sys c (fun h ->
              Handle.put h (Printf.sprintf "key%d_%d" i j) (string_of_int j))
        with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "update failed"
      done)
    clients;
  System.pump sys;
  let reference = Mvcc.committed_state (System.primary_db sys) in
  for i = 0 to 3 do
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "secondary %d converged" i)
      reference
      (Mvcc.committed_state (System.secondary_db sys i))
  done;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_system_row_api () =
  let sys = System.create ~secondaries:1 ~guarantee:Session.Strong_session () in
  let c = System.connect sys "shop" in
  (match
     System.update sys c (fun h ->
         Handle.row_put h ~table:"books" ~pk:"1"
           [ ("title", Row.Text "sicp"); ("stock", Row.Int 3) ])
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "insert failed");
  (match
     System.update sys c (fun h ->
         check_bool "row_update" true
           (Handle.row_update h ~table:"books" ~pk:"1" (fun row ->
                Row.set row "stock" (Row.Int 2))))
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  let stock =
    System.read sys c (fun h ->
        match Handle.row_get h ~table:"books" ~pk:"1" with
        | Some row -> Row.int_exn row "stock"
        | None -> -1)
  in
  check_int "replicated row visible in session" 2 stock;
  let count =
    System.read sys c (fun h ->
        List.length (Handle.row_scan h ~table:"books" ~where:(fun _ -> true)))
  in
  check_int "scan" 1 count;
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_handle_schema_and_reads () =
  let db = Mvcc.create () in
  let txn = Mvcc.begin_txn db in
  let h = Handle.make ~schema:[ ("books", [ "genre" ]) ] db txn in
  Alcotest.(check (list string)) "indexed fields" [ "genre" ]
    (Handle.indexed_fields h ~table:"books");
  Alcotest.(check (list string)) "unknown table has none" []
    (Handle.indexed_fields h ~table:"orders");
  ignore (Handle.get h "missing");
  Handle.put h "k" "v";
  ignore (Handle.get h "k");
  (* Reads are recorded in order, including read-your-writes. *)
  match Handle.reads h with
  | [ ("missing", None); ("k", Some "v") ] -> ()
  | reads -> Alcotest.failf "unexpected recorded reads (%d)" (List.length reads)

let test_system_crash_recovery () =
  let sys = System.create ~secondaries:2 ~guarantee:Session.Strong_session () in
  let c = System.connect sys ~secondary:0 "c" in
  (match System.update sys c (fun h -> Handle.put h "a" "1") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  System.pump sys;
  System.crash_secondary sys 0;
  check_bool "crashed" true (System.is_crashed sys 0);
  (* Updates continue while the site is down. *)
  (match System.update sys c (fun h -> Handle.put h "b" "2") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  ignore (System.propagate sys);
  (match System.read sys c (fun _ -> ()) with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "reads at a crashed site must fail");
  System.recover_secondary sys 0;
  check_bool "recovered" false (System.is_crashed sys 0);
  (* The recovered copy has the full primary state and a reseeded seq. *)
  let v = System.read sys c (fun h -> Handle.get h "b") in
  check_str_opt "recovered copy serves session reads" (Some "2") v;
  (* Updates after recovery flow through refresh again. *)
  (match System.update sys c (fun h -> Handle.put h "c" "3") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  System.pump sys;
  Alcotest.(check (list (pair string string)))
    "recovered secondary tracks primary"
    (Mvcc.committed_state (System.primary_db sys))
    (Mvcc.committed_state (System.secondary_db sys 0));
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let migration_scenario guarantee =
  (* A session updates, reads at an up-to-date secondary, then migrates to
     a secondary that has not yet refreshed. Its next read would observe an
     older snapshot: strong session SI must wait, PCSI may proceed only if
     the stale copy still includes the session's own update. *)
  let sys = System.create ~secondaries:2 ~guarantee () in
  let c = System.connect sys ~secondary:0 "mover" in
  (match System.update sys c (fun h -> Handle.put h "x" "1") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  (* Refresh only secondary 0. *)
  ignore (System.propagate sys);
  ignore (System.refresh_one sys 0);
  (* An unrelated update advances the primary; refresh it into secondary 0
     only, so secondary 0 is ahead of secondary 1. *)
  let other = System.connect sys ~secondary:0 "other" in
  (match System.update sys other (fun h -> Handle.put h "y" "2") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  ignore (System.propagate sys);
  ignore (System.refresh_one sys 0);
  (* Read at the fresh secondary: snapshot includes both updates. *)
  ignore (System.read sys c (fun h -> Handle.get h "y"));
  (* Partially refresh secondary 1: apply the session's own update (x) but
     leave the later one (y) queued, so the copy is valid but older than the
     snapshot the session just observed. *)
  let lagging = System.secondary sys 1 in
  let rec apply_first () =
    match Secondary.refresher_step lagging with
    | Secondary.Started _ -> apply_first ()
    | Secondary.Dispatched app ->
      let rec drive () =
        match Secondary.applicator_step lagging app with
        | Secondary.Committed _ -> ()
        | Secondary.Applied _ | Secondary.Waiting_commit -> drive ()
        | Secondary.Done -> ()
      in
      drive ()
    | Secondary.Aborted _ | Secondary.Blocked_on_pending | Secondary.Idle ->
      Alcotest.fail "unexpected refresher outcome while lagging"
  in
  apply_first ();
  (* Migrate to the lagging secondary (has x but not y). *)
  let moved = System.migrate sys c 1 in
  System.read_nowait sys moved (fun h -> (Handle.get h "x", Handle.get h "y"))

let test_system_migration_strong_session_blocks () =
  match migration_scenario Session.Strong_session with
  | None -> () (* must wait: the stale copy would move its snapshot back *)
  | Some _ ->
    Alcotest.fail "strong session SI allowed a backward snapshot after migration"

let test_system_migration_pcsi_proceeds () =
  match migration_scenario Session.Prefix_consistent with
  | Some (x, y) ->
    check_str_opt "own update still visible" (Some "1") x;
    check_str_opt "other's update may be missing" None y
  | None -> Alcotest.fail "PCSI should not wait here"

let test_system_pcsi_guarantee_checked () =
  let sys = System.create ~secondaries:2 ~guarantee:Session.Prefix_consistent () in
  let c = System.connect sys "c" in
  (match System.update sys c (fun h -> Handle.put h "k" "v") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  let v = System.read sys c (fun h -> Handle.get h "k") in
  check_str_opt "PCSI reads own update" (Some "v") v;
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_system_connect_round_robin () =
  let sys = System.create ~secondaries:3 ~guarantee:Session.Weak () in
  let cs = List.init 6 (fun i -> System.connect sys (Printf.sprintf "c%d" i)) in
  Alcotest.(check (list int)) "round robin assignment" [ 0; 1; 2; 0; 1; 2 ]
    (List.map System.client_secondary cs)

let test_system_bad_secondary_index () =
  let sys = System.create ~secondaries:1 ~guarantee:Session.Weak () in
  Alcotest.check_raises "bad index" (Invalid_argument "System: no secondary 5")
    (fun () -> ignore (System.connect sys ~secondary:5 "c"))

(* Randomized end-to-end property: any interleaving of updates, reads and
   pumps satisfies the advertised guarantee and completeness. *)
let prop_system_random_guarantee guarantee name =
  let action_gen =
    QCheck.Gen.(
      list_size (int_range 5 40)
        (pair (int_range 0 3) (pair (int_range 0 2) (int_range 0 5))))
  in
  QCheck.Test.make ~name ~count:60 (QCheck.make action_gen) (fun actions ->
      let sys = System.create ~secondaries:2 ~guarantee () in
      let clients =
        Array.init 3 (fun i -> System.connect sys (Printf.sprintf "c%d" i))
      in
      List.iter
        (fun (action, (who, key)) ->
          let c = clients.(who) in
          let k = Printf.sprintf "k%d" key in
          match action with
          | 0 ->
            ignore
              (System.update sys c (fun h -> Handle.put h k (string_of_int key)))
          | 1 -> ignore (System.read sys c (fun h -> Handle.get h k))
          | 2 -> ignore (System.propagate sys)
          | _ -> System.pump sys)
        actions;
      System.pump sys;
      match System.check sys with Ok () -> true | Error _ -> false)

let prop_system_session_guarantee =
  prop_system_random_guarantee Session.Strong_session
    "random runs satisfy strong session SI"

let prop_system_strong_guarantee =
  prop_system_random_guarantee Session.Strong "random runs satisfy strong SI"

let prop_system_weak_guarantee =
  prop_system_random_guarantee Session.Weak "random runs satisfy weak SI"

let prop_system_pcsi_guarantee =
  prop_system_random_guarantee Session.Prefix_consistent
    "random runs satisfy PCSI"

(* --- Suite -------------------------------------------------------------------------------- *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lsr_core"
    [
      ( "propagation",
        [
          Alcotest.test_case "commit carries updates" `Quick
            test_propagation_commit_carries_updates;
          Alcotest.test_case "start before commit (liveness)" `Quick
            test_propagation_start_before_commit;
          Alcotest.test_case "abort discards updates" `Quick
            test_propagation_abort_discards_updates;
          Alcotest.test_case "ship_aborted mode" `Quick test_propagation_ship_aborted;
          Alcotest.test_case "truncated log fails loudly" `Quick
            test_propagation_truncated_log_fails_loudly;
          Alcotest.test_case "squashes rewrites" `Quick
            test_propagation_squashes_rewrites;
          Alcotest.test_case "squash keeps first-write position" `Quick
            test_propagation_squash_keeps_first_write_position;
          Alcotest.test_case "interleaved txns isolated" `Quick
            test_propagation_interleaved_txns_isolated;
          Alcotest.test_case "log order preserved" `Quick
            test_propagation_order_is_log_order;
          Alcotest.test_case "cursor position" `Quick test_propagation_cursor_position;
          Alcotest.test_case "attach mid-log" `Quick test_propagation_from_offset;
        ] );
      ( "secondary-refresh",
        [
          Alcotest.test_case "applies updates" `Quick test_refresh_applies_updates;
          Alcotest.test_case "sets seq(DBsec)" `Quick test_refresh_sets_seq_dbsec;
          Alcotest.test_case "abort record" `Quick test_refresh_abort_record;
          Alcotest.test_case "start blocks on pending (rel 1/2)" `Quick
            test_refresher_blocks_start_on_pending;
          Alcotest.test_case "commits in primary order (rel 3)" `Quick
            test_applicators_commit_in_primary_order;
          Alcotest.test_case "random order matches primary" `Quick
            test_refresh_commit_order_matches_primary_random;
          Alcotest.test_case "commit without start rejected" `Quick
            test_commit_without_start_rejected;
          Alcotest.test_case "reseed seq" `Quick test_reseed_seq;
          Alcotest.test_case "refresh commit callback" `Quick
            test_on_refresh_commit_callback;
          Alcotest.test_case "applicator dispatch scales" `Slow
            test_applicator_dispatch_scales;
          Alcotest.test_case "exhaustive interleavings" `Quick
            test_exhaustive_interleavings;
          Alcotest.test_case "pretty printers" `Quick test_pretty_printers;
        ]
        @ qsuite [ prop_refresh_ordering_relationships ] );
      ( "session",
        [
          Alcotest.test_case "weak never blocks" `Quick test_session_weak_never_blocks;
          Alcotest.test_case "strong session blocks own label" `Quick
            test_session_strong_session_blocks_own_label;
          Alcotest.test_case "strong blocks everyone" `Quick
            test_session_strong_blocks_everyone;
          Alcotest.test_case "seq monotone" `Quick test_session_seq_monotone;
          Alcotest.test_case "pcsi ignores read floor" `Quick
            test_session_pcsi_ignores_read_floor;
          Alcotest.test_case "pcsi blocks after update" `Quick
            test_session_pcsi_blocks_after_update;
          Alcotest.test_case "guarantee names" `Quick test_session_guarantee_names;
          Alcotest.test_case "fence string round trip" `Quick
            test_fence_string_round_trip;
          Alcotest.test_case "fence commit-clock horizon" `Quick
            test_fence_clock_horizon;
          Alcotest.test_case "fence raises the weak floor" `Quick
            test_fence_raises_weak_floor;
          Alcotest.test_case "fence max-age threshold" `Quick
            test_fence_max_age_threshold;
        ] );
      ( "checker",
        [
          Alcotest.test_case "update-then-read inversion" `Quick
            test_checker_detects_inversion_update_then_read;
          Alcotest.test_case "cross-session allowed for session SI" `Quick
            test_checker_cross_session_inversion_allowed_in_session_mode;
          Alcotest.test_case "read-read inversion" `Quick
            test_checker_read_read_inversion;
          Alcotest.test_case "concurrent txns not inverted" `Quick
            test_checker_concurrent_txns_not_inverted;
          Alcotest.test_case "aborted txns ignored" `Quick
            test_checker_aborted_txns_ignored;
          Alcotest.test_case "weak SI read validation" `Quick
            test_checker_weak_si_read_validation;
          Alcotest.test_case "completeness" `Quick
            test_checker_completeness_positive_negative;
          Alcotest.test_case "secondary ahead" `Quick
            test_checker_completeness_secondary_ahead;
          Alcotest.test_case "satisfies matrix" `Quick test_checker_satisfies;
          Alcotest.test_case "fence audit" `Quick test_checker_fence_audit;
          Alcotest.test_case "fence audit edge cases" `Quick
            test_checker_fence_edge_cases;
        ]
        @ qsuite [ prop_inversions_match_bruteforce ] );
      ( "serializability",
        [
          Alcotest.test_case "serial history serializable" `Quick
            test_serializable_serial_history;
          Alcotest.test_case "write skew not serializable" `Quick
            test_write_skew_not_serializable;
          Alcotest.test_case "serialization cycle on shared fixtures" `Quick
            test_serialization_cycle_on_fixtures;
          Alcotest.test_case "ticket prevents write skew" `Quick
            test_one_sr_prevents_write_skew;
          Alcotest.test_case "one_sr run retries" `Quick test_one_sr_run_retries;
          Alcotest.test_case "one_sr gives up" `Quick test_one_sr_run_gives_up;
          Alcotest.test_case "ticket domains" `Quick
            test_one_sr_custom_ticket_domains;
        ]
        @ qsuite [ prop_one_sr_serializable ] );
      ( "anomaly",
        [
          Alcotest.test_case "P0 dirty write" `Quick test_anomaly_dirty_write;
          Alcotest.test_case "P1 dirty read" `Quick test_anomaly_dirty_read;
          Alcotest.test_case "P2 fuzzy read" `Quick test_anomaly_fuzzy_read;
          Alcotest.test_case "P3 phantom" `Quick test_anomaly_phantom;
          Alcotest.test_case "P4 lost update" `Quick test_anomaly_lost_update;
          Alcotest.test_case "P5 write skew" `Quick test_anomaly_write_skew;
          Alcotest.test_case "clean serial history" `Quick
            test_anomaly_clean_serial_history;
        ]
        @ qsuite [ prop_mvcc_histories_si_safe ] );
      ( "system",
        [
          Alcotest.test_case "weak shows inversion" `Quick
            test_system_weak_shows_inversion;
          Alcotest.test_case "session reads own writes" `Quick
            test_system_strong_session_reads_own_writes;
          Alcotest.test_case "cross-session stale ok (session)" `Quick
            test_system_strong_session_cross_session_stale_ok;
          Alcotest.test_case "strong blocks cross-session" `Quick
            test_system_strong_blocks_cross_session;
          Alcotest.test_case "read_nowait" `Quick test_system_read_nowait;
          Alcotest.test_case "read_nowait on a crashed site" `Quick
            test_system_read_nowait_crashed;
          Alcotest.test_case "fenced read: session_seq" `Quick
            test_system_fenced_read_session_seq;
          Alcotest.test_case "fenced read: exact and max-age" `Quick
            test_system_fenced_read_exact_and_max_age;
          Alcotest.test_case "fenced read: unsatisfiable future" `Quick
            test_system_fenced_read_future_unsatisfiable;
          Alcotest.test_case "forced abort" `Quick test_system_forced_abort;
          Alcotest.test_case "fcw abort in log" `Quick test_system_fcw_abort_surfaces;
          Alcotest.test_case "multi-secondary consistency" `Quick
            test_system_multi_secondary_consistency;
          Alcotest.test_case "row api" `Quick test_system_row_api;
          Alcotest.test_case "handle schema/reads" `Quick
            test_handle_schema_and_reads;
          Alcotest.test_case "crash recovery" `Quick test_system_crash_recovery;
          Alcotest.test_case "migration: strong session blocks" `Quick
            test_system_migration_strong_session_blocks;
          Alcotest.test_case "migration: pcsi proceeds" `Quick
            test_system_migration_pcsi_proceeds;
          Alcotest.test_case "pcsi checked end-to-end" `Quick
            test_system_pcsi_guarantee_checked;
          Alcotest.test_case "round robin connect" `Quick
            test_system_connect_round_robin;
          Alcotest.test_case "bad secondary index" `Quick
            test_system_bad_secondary_index;
        ]
        @ qsuite
            [
              prop_system_session_guarantee;
              prop_system_strong_guarantee;
              prop_system_weak_guarantee;
              prop_system_pcsi_guarantee;
            ] );
    ]
