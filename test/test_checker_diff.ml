(* Differential battery for the polynomial checker (PR 6): fuzzed seeded MVCC
   histories are judged by both the rewritten Lsr_core.Checker (per-key
   sorted writer arrays + binary search + iterative DFS) and the verbatim
   pre-rewrite oracle in Legacy_checker (list walks, recursive DFS). Every
   verdict must agree exactly; serialization-cycle witnesses may differ
   textually (DFS visit order is not part of the contract) but each must be
   a genuine cycle under an independently-built edge relation. *)

open Lsr_storage
open Lsr_core
module Rng = Lsr_sim.Rng

let check_bool = Alcotest.(check bool)

let commit db txn =
  match Mvcc.commit db txn with
  | Mvcc.Committed cts -> Some cts
  | Mvcc.Aborted _ -> None

(* --- Fuzzed history generation ----------------------------------------------

   Batches of concurrent transactions run against one real MVCC instance.
   Stale snapshots (begin_txn_at) produce inversions and rw anti-
   dependencies; overlapping write sets produce first-committer-wins aborts;
   a rare post-hoc corruption of one recorded read produces weak-SI
   violations. Reads and writes really execute, so apart from the injected
   corruption every history is genuinely weak SI. *)

let keys = [| "a"; "b"; "c"; "d"; "e"; "f" |]

let gen_history seed =
  let rng = Rng.create (0x5EED + seed) in
  let h = History.create () in
  let db = Mvcc.create () in
  (let txn = Mvcc.begin_txn db in
   Array.iter (fun k -> Mvcc.write db txn k (Some "0")) keys;
   match commit db txn with Some _ -> () | None -> assert false);
  let nsessions = Rng.uniform rng ~lo:1 ~hi:4 in
  let value = ref 0 in
  let batches = Rng.uniform rng ~lo:3 ~hi:12 in
  for _ = 1 to batches do
    let batch = Rng.uniform rng ~lo:1 ~hi:3 in
    let started =
      List.init batch (fun _ ->
          let lag = Rng.uniform rng ~lo:0 ~hi:3 in
          let snapshot = max 0 (Mvcc.latest_commit_ts db - lag) in
          let txn = Mvcc.begin_txn_at db ~snapshot in
          let session =
            Printf.sprintf "s%d" (Rng.uniform rng ~lo:1 ~hi:nsessions)
          in
          let is_update = Rng.bernoulli rng ~p:0.6 in
          let first_op = History.tick h in
          let nreads = Rng.uniform rng ~lo:0 ~hi:3 in
          let reads =
            List.init nreads (fun _ ->
                let k = keys.(Rng.uniform rng ~lo:0 ~hi:(Array.length keys - 1)) in
                (k, Mvcc.read db txn k))
          in
          if is_update then begin
            let nwrites = Rng.uniform rng ~lo:1 ~hi:2 in
            for _ = 1 to nwrites do
              incr value;
              Mvcc.write db txn
                keys.(Rng.uniform rng ~lo:0 ~hi:(Array.length keys - 1))
                (Some (string_of_int !value))
            done
          end;
          (txn, session, is_update, first_op, reads, snapshot))
    in
    (* Finish the batch in a shuffled order so wall order and snapshot order
       genuinely interleave. *)
    let finish_order =
      List.sort
        (fun _ _ -> if Rng.bernoulli rng ~p:0.5 then 1 else -1)
        started
    in
    List.iter
      (fun (txn, session, is_update, first_op, reads, snapshot) ->
        let kind, commit_ts, writes =
          if is_update then begin
            let pending = Mvcc.pending_writes txn in
            if Rng.bernoulli rng ~p:0.1 then begin
              Mvcc.abort db txn;
              (History.Update, None, [])
            end
            else (History.Update, commit db txn, pending)
          end
          else begin
            Mvcc.end_read db txn;
            (History.Read_only, None, [])
          end
        in
        let writes = if commit_ts = None then [] else writes in
        History.add h
          {
            History.id = History.fresh_id h;
            session;
            kind;
            site = "primary";
            first_op;
            finished = History.tick h;
            snapshot;
            commit_ts;
            reads;
            writes;
            fence = None;
          })
      finish_order
  done;
  (* Rare injected fault: corrupt one recorded read so the weak-SI sweep has
     something to find — both checkers must report it identically. *)
  if Rng.bernoulli rng ~p:0.15 then begin
    let txns = History.transactions h in
    let with_reads = List.filter (fun t -> t.History.reads <> []) txns in
    match with_reads with
    | [] -> h
    | _ ->
      let victim =
        List.nth with_reads
          (Rng.uniform rng ~lo:0 ~hi:(List.length with_reads - 1))
      in
      let corrupted = History.create () in
      List.iter
        (fun (t : History.txn) ->
          let t =
            if t.id = victim.id then
              {
                t with
                History.reads =
                  (match t.reads with
                  | (k, _) :: rest -> (k, Some "corrupted") :: rest
                  | [] -> assert false);
              }
            else t
          in
          History.add corrupted t)
        txns;
      corrupted
  end
  else h

(* --- Independent edge relation ----------------------------------------------

   A third, deliberately naive construction of the MVSG edge set, used only
   to certify witnesses: per-key committed-writer chains as sorted lists,
   ww between consecutive writers, wr from the snapshot-visible writer to
   the reader, rw from the reader to the next writer. *)

let edge_set h =
  let committed (t : History.txn) =
    match (t.kind, t.commit_ts) with
    | History.Update, Some _ -> true
    | History.Update, None -> false
    | History.Read_only, _ -> true
  in
  let txns = List.filter committed (History.transactions h) in
  let chain key =
    List.filter_map
      (fun (t : History.txn) ->
        match t.commit_ts with
        | Some cts when List.exists (fun { Wal.key = k; _ } -> k = key) t.writes
          ->
          Some (cts, t.id)
        | Some _ | None -> None)
      txns
    |> List.sort (fun (a, _) (b, _) -> Timestamp.compare a b)
  in
  let edges = Hashtbl.create 64 in
  let add a b = if a <> b then Hashtbl.replace edges (a, b) () in
  let all_keys =
    List.concat_map
      (fun (t : History.txn) ->
        List.map (fun { Wal.key; _ } -> key) t.writes
        @ List.map fst t.reads)
      txns
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun key ->
      let ch = chain key in
      let rec ww = function
        | (_, a) :: ((_, b) :: _ as rest) ->
          add a b;
          ww rest
        | [ _ ] | [] -> ()
      in
      ww ch;
      List.iter
        (fun (t : History.txn) ->
          let own = List.exists (fun { Wal.key = k; _ } -> k = key) t.writes in
          if (not own) && List.mem_assoc key t.reads then begin
            let visible =
              List.fold_left
                (fun acc (cts, id) ->
                  if Timestamp.compare cts t.snapshot <= 0 then Some id else acc)
                None ch
            in
            let next =
              List.find_opt
                (fun (cts, _) -> Timestamp.compare cts t.snapshot > 0)
                ch
            in
            (match visible with Some w -> add w t.id | None -> ());
            match next with Some (_, w) -> add t.id w | None -> ()
          end)
        txns)
    all_keys;
  edges

let certify_cycle h name = function
  | None -> ()
  | Some cycle ->
    let edges = edge_set h in
    check_bool (name ^ ": cycle nonempty") true (cycle <> []);
    check_bool
      (name ^ ": cycle nodes distinct")
      true
      (List.length (List.sort_uniq Int.compare cycle) = List.length cycle);
    let rec pairs = function
      | a :: (b :: _ as rest) -> (a, b) :: pairs rest
      | [ last ] -> [ (last, List.hd cycle) ]
      | [] -> []
    in
    List.iter
      (fun (a, b) ->
        check_bool
          (Printf.sprintf "%s: %d -> %d is a real MVSG edge" name a b)
          true
          (Hashtbl.mem edges (a, b)))
      (pairs cycle)

(* --- The differential assertion --------------------------------------------- *)

let inversion_ids l =
  List.map
    (fun { Checker.earlier; later } -> (earlier.History.id, later.History.id))
    l

let legacy_inversion_ids l =
  List.map
    (fun { Legacy_checker.earlier; later } ->
      (earlier.History.id, later.History.id))
    l

let guarantees =
  [
    Session.Weak; Session.Prefix_consistent; Session.Strong_session;
    Session.Strong;
  ]

let assert_equivalent name h =
  let fresh = Checker.analyze h in
  let legacy = Legacy_checker.analyze h in
  Alcotest.(check (list string))
    (name ^ ": weak-SI violations identical")
    legacy.Legacy_checker.weak_si_violations fresh.Checker.weak_si_violations;
  let pair = Alcotest.(list (pair int int)) in
  Alcotest.check pair
    (name ^ ": strong-SI inversions identical")
    (legacy_inversion_ids legacy.Legacy_checker.inversions_all)
    (inversion_ids fresh.Checker.inversions_all);
  Alcotest.check pair
    (name ^ ": in-session inversions identical")
    (legacy_inversion_ids legacy.Legacy_checker.inversions_in_session)
    (inversion_ids fresh.Checker.inversions_in_session);
  Alcotest.check pair
    (name ^ ": PCSI inversions identical")
    (legacy_inversion_ids legacy.Legacy_checker.inversions_after_update)
    (inversion_ids fresh.Checker.inversions_after_update);
  List.iter
    (fun g ->
      check_bool
        (Printf.sprintf "%s: %s verdict identical" name
           (Session.guarantee_name g))
        (Legacy_checker.satisfies g legacy)
        (Checker.satisfies g fresh))
    guarantees;
  let c_new = Checker.serialization_cycle h in
  let c_old = Legacy_checker.serialization_cycle h in
  check_bool
    (name ^ ": serializability verdict identical")
    (c_old = None) (c_new = None);
  certify_cycle h (name ^ " (polynomial)") c_new;
  certify_cycle h (name ^ " (legacy)") c_old

let test_fixture_write_skew () =
  let h, _ = Fixtures.write_skew_history () in
  assert_equivalent "write skew" h;
  check_bool "write skew has a cycle" true
    (Checker.serialization_cycle h <> None)

let test_fixture_serial () =
  let h, _ = Fixtures.serial_history () in
  assert_equivalent "serial" h;
  check_bool "serial is serializable" true (Checker.is_serializable h)

let test_fuzz () =
  let cyclic = ref 0 and acyclic = ref 0 and weak_violations = ref 0 in
  for seed = 0 to 299 do
    let h = gen_history seed in
    assert_equivalent (Printf.sprintf "seed %d" seed) h;
    (if Checker.is_serializable h then incr acyclic else incr cyclic);
    if Checker.check_weak_si h <> [] then incr weak_violations
  done;
  (* The generator must actually exercise both branches of every verdict,
     else the differential proves nothing. *)
  check_bool "some fuzzed histories are non-serializable" true (!cyclic > 0);
  check_bool "some fuzzed histories are serializable" true (!acyclic > 0);
  check_bool "some fuzzed histories violate weak SI" true (!weak_violations > 0)

let test_fuzz_verdict_spread () =
  (* Strong-SI and session verdicts must also flip across the seed pool. *)
  let strong_ok = ref 0 and strong_bad = ref 0 in
  let session_ok = ref 0 and session_bad = ref 0 in
  for seed = 0 to 299 do
    let h = gen_history seed in
    if Checker.is_strong_si h then incr strong_ok else incr strong_bad;
    if Checker.is_strong_session_si h then incr session_ok else incr session_bad
  done;
  check_bool "some histories are strong SI" true (!strong_ok > 0);
  check_bool "some histories are not strong SI" true (!strong_bad > 0);
  check_bool "some histories are strong session SI" true (!session_ok > 0);
  check_bool "some histories are not strong session SI" true (!session_bad > 0)

let () =
  Alcotest.run "lsr_checker_diff"
    [
      ( "differential",
        [
          Alcotest.test_case "write-skew fixture" `Quick test_fixture_write_skew;
          Alcotest.test_case "serial fixture" `Quick test_fixture_serial;
          Alcotest.test_case "300 fuzzed histories" `Quick test_fuzz;
          Alcotest.test_case "verdict spread" `Quick test_fuzz_verdict_spread;
        ] );
    ]
