(* Tests for the TPC-W-derived workload generator (lsr_workload). *)

open Lsr_workload
open Lsr_sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Params ---------------------------------------------------------------- *)

let test_defaults_match_table1 () =
  let p = Params.default in
  check_int "clients per secondary" 20 p.Params.clients_per_secondary;
  Alcotest.(check (float 0.)) "think time" 7. p.Params.think_time;
  Alcotest.(check (float 0.)) "session time" 900. p.Params.session_time;
  Alcotest.(check (float 0.)) "update txn prob" 0.20 p.Params.update_tran_prob;
  Alcotest.(check (float 0.)) "abort prob" 0.01 p.Params.abort_prob;
  check_int "min size" 5 p.Params.tran_size_min;
  check_int "max size" 15 p.Params.tran_size_max;
  Alcotest.(check (float 0.)) "op service" 0.02 p.Params.op_service_time;
  Alcotest.(check (float 0.)) "update op prob" 0.30 p.Params.update_op_prob;
  Alcotest.(check (float 0.)) "propagation delay" 10. p.Params.propagation_delay

let test_browsing_mix () =
  let p = Params.browsing Params.default in
  Alcotest.(check (float 0.)) "95/5 mix" 0.05 p.Params.update_tran_prob

let test_quick_shrinks_runs () =
  let p = Params.quick Params.default in
  check_bool "shorter duration" true (p.Params.duration < Params.default.Params.duration);
  check_bool "fewer reps" true
    (p.Params.replications < Params.default.Params.replications)

let test_num_clients () =
  let p = { Params.default with Params.num_secondaries = 7 } in
  check_int "7 * 20" 140 (Params.num_clients p)

let test_table1_rows_complete () =
  check_int "ten parameters" 10 (List.length (Params.table1_rows Params.default))

(* --- Txn_gen ---------------------------------------------------------------- *)

let generate_many ?(params = Params.default) ?(n = 2000) seed =
  let rng = Rng.create seed in
  List.init n (fun _ -> Txn_gen.generate params rng)

let test_sizes_in_range () =
  List.iter
    (fun spec ->
      let n = Txn_gen.op_count spec in
      check_bool "size within [5,15]" true (n >= 5 && n <= 15))
    (generate_many 1)

let test_read_only_has_no_writes () =
  List.iter
    (fun spec ->
      if not (Txn_gen.is_update spec) then
        check_int "read-only writes" 0 (Txn_gen.write_count spec))
    (generate_many 2)

let test_update_has_a_write () =
  List.iter
    (fun spec ->
      if Txn_gen.is_update spec then
        check_bool "update writes >= 1" true (Txn_gen.write_count spec >= 1))
    (generate_many 3)

let test_mix_frequency () =
  let specs = generate_many ~n:10_000 4 in
  let updates = List.length (List.filter Txn_gen.is_update specs) in
  let freq = float_of_int updates /. 10_000. in
  check_bool "update frequency near 20%" true (Float.abs (freq -. 0.2) < 0.02)

let test_browsing_frequency () =
  let specs = generate_many ~params:(Params.browsing Params.default) ~n:10_000 5 in
  let updates = List.length (List.filter Txn_gen.is_update specs) in
  let freq = float_of_int updates /. 10_000. in
  check_bool "update frequency near 5%" true (Float.abs (freq -. 0.05) < 0.01)

let test_update_op_frequency () =
  (* Among the ops of update transactions, ~30% write (slightly more due to
     the at-least-one-write rule). *)
  let specs = List.filter Txn_gen.is_update (generate_many ~n:20_000 6) in
  let ops = List.fold_left (fun acc s -> acc + Txn_gen.op_count s) 0 specs in
  let writes = List.fold_left (fun acc s -> acc + Txn_gen.write_count s) 0 specs in
  let freq = float_of_int writes /. float_of_int ops in
  check_bool "write op frequency near 30%" true (freq > 0.28 && freq < 0.34)

let test_keys_within_space () =
  let params = { Params.default with Params.key_space = 100 } in
  List.iter
    (fun spec ->
      List.iter
        (fun op ->
          let key =
            match op with Txn_gen.Read_op k -> k | Txn_gen.Write_op (k, _) -> k
          in
          check_bool "key format" true
            (String.length key = 11 && String.sub key 0 5 = "item:");
          let idx = int_of_string (String.sub key 5 6) in
          check_bool "key within space" true (idx >= 0 && idx < 100))
        spec.Txn_gen.ops)
    (generate_many ~params ~n:500 7)

let test_mean_transaction_size () =
  let specs = generate_many ~n:20_000 8 in
  let total = List.fold_left (fun acc s -> acc + Txn_gen.op_count s) 0 specs in
  let mean = float_of_int total /. 20_000. in
  check_bool "mean size near 10" true (Float.abs (mean -. 10.) < 0.1)

let test_key_skew_concentrates () =
  let skewed = { Params.default with Params.key_skew = 1.2; key_space = 1000 } in
  let count_hot specs =
    List.fold_left
      (fun acc spec ->
        acc
        + List.length
            (List.filter
               (fun op ->
                 let key =
                   match op with
                   | Txn_gen.Read_op k -> k
                   | Txn_gen.Write_op (k, _) -> k
                 in
                 (* hot = the ten most popular items *)
                 int_of_string (String.sub key 5 6) < 10)
               spec.Txn_gen.ops))
      0 specs
  in
  let hot_uniform =
    count_hot (generate_many ~params:{ skewed with Params.key_skew = 0. } ~n:1000 9)
  in
  let hot_skewed = count_hot (generate_many ~params:skewed ~n:1000 9) in
  check_bool "skew concentrates ops on hot keys" true
    (hot_skewed > 10 * (hot_uniform + 1))

let test_determinism () =
  let a = generate_many ~n:100 42 and b = generate_many ~n:100 42 in
  check_bool "same seed, same workload" true (a = b)

let prop_generate_wellformed =
  QCheck.Test.make ~name:"generated transactions are well-formed" ~count:500
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let spec = Txn_gen.generate Params.default rng in
      let n = Txn_gen.op_count spec in
      n >= 5 && n <= 15
      &&
      if Txn_gen.is_update spec then Txn_gen.write_count spec >= 1
      else Txn_gen.write_count spec = 0)

let () =
  Alcotest.run "lsr_workload"
    [
      ( "params",
        [
          Alcotest.test_case "defaults match Table 1" `Quick
            test_defaults_match_table1;
          Alcotest.test_case "browsing mix" `Quick test_browsing_mix;
          Alcotest.test_case "quick mode" `Quick test_quick_shrinks_runs;
          Alcotest.test_case "num_clients" `Quick test_num_clients;
          Alcotest.test_case "table1 rows" `Quick test_table1_rows_complete;
        ] );
      ( "txn_gen",
        [
          Alcotest.test_case "sizes in range" `Quick test_sizes_in_range;
          Alcotest.test_case "read-only has no writes" `Quick
            test_read_only_has_no_writes;
          Alcotest.test_case "update has a write" `Quick test_update_has_a_write;
          Alcotest.test_case "80/20 mix frequency" `Quick test_mix_frequency;
          Alcotest.test_case "95/5 mix frequency" `Quick test_browsing_frequency;
          Alcotest.test_case "update-op frequency" `Quick test_update_op_frequency;
          Alcotest.test_case "keys within space" `Quick test_keys_within_space;
          Alcotest.test_case "mean transaction size" `Quick
            test_mean_transaction_size;
          Alcotest.test_case "key skew concentrates" `Quick
            test_key_skew_concentrates;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          QCheck_alcotest.to_alcotest prop_generate_wellformed;
        ] );
    ]
