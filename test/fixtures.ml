(* Hand-built histories shared by the checker unit tests (test_core) and the
   static analyzer's cross-validation suite (test_analysis): the same
   execution patterns are judged by the dynamic checker and matched against
   the static verdict on the corresponding templates. *)

open Lsr_storage
open Lsr_core

let commit_exn db txn =
  match Mvcc.commit db txn with
  | Mvcc.Committed cts -> cts
  | Mvcc.Aborted _ -> Alcotest.fail "unexpected abort in fixture"

(* Record one serially-executed committed update. *)
let record_serial h db ~session ~template ~reads ~writes =
  let first_op = History.tick h in
  let snapshot = Mvcc.latest_commit_ts db in
  let txn = Mvcc.begin_txn db in
  let observed = List.map (fun k -> (k, Mvcc.read db txn k)) reads in
  List.iter (fun (k, v) -> Mvcc.write db txn k (Some v)) writes;
  let pending = Mvcc.pending_writes txn in
  let cts = commit_exn db txn in
  let id = History.fresh_id h in
  History.add h
    {
      History.id = id;
      session;
      kind = History.Update;
      site = "primary";
      first_op;
      finished = History.tick h;
      snapshot;
      commit_ts = Some cts;
      reads = observed;
      writes = pending;
      fence = None;
    };
  (id, template)

(* The classic SI write-skew execution: both transactions read {x, y} from
   the same snapshot, one signs off x, the other y, both commit (their write
   sets are disjoint, so first-committer-wins lets both through). The MVSG
   has the rw-rw cycle. Returns the history and the id -> template-name map
   aligning it with the analyzer's [write_skew] workload. *)
let write_skew_history () =
  let h = History.create () in
  let db = Mvcc.create () in
  let init =
    record_serial h db ~session:"init" ~template:"init" ~reads:[]
      ~writes:[ ("x", "on"); ("y", "on") ]
  in
  let first1 = History.tick h in
  let first2 = History.tick h in
  let snapshot = Mvcc.latest_commit_ts db in
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  let r1 = [ ("x", Mvcc.read db t1 "x"); ("y", Mvcc.read db t1 "y") ] in
  let r2 = [ ("x", Mvcc.read db t2 "x"); ("y", Mvcc.read db t2 "y") ] in
  Mvcc.write db t1 "x" (Some "off");
  Mvcc.write db t2 "y" (Some "off");
  let w1 = Mvcc.pending_writes t1 and w2 = Mvcc.pending_writes t2 in
  let c1 = commit_exn db t1 in
  let c2 = commit_exn db t2 in
  let add ~session ~first_op ~cts ~reads ~writes =
    let id = History.fresh_id h in
    History.add h
      {
        History.id = id;
        session;
        kind = History.Update;
        site = "primary";
        first_op;
        finished = History.tick h;
        snapshot;
        commit_ts = Some cts;
        reads;
        writes;
        fence = None;
      };
    id
  in
  let id1 = add ~session:"s1" ~first_op:first1 ~cts:c1 ~reads:r1 ~writes:w1 in
  let id2 = add ~session:"s2" ~first_op:first2 ~cts:c2 ~reads:r2 ~writes:w2 in
  ( h,
    [ init; (id1, "check_then_sign_off_x"); (id2, "check_then_sign_off_y") ] )

(* The same operations executed serially: every snapshot is current, the
   MVSG is acyclic. *)
let serial_history () =
  let h = History.create () in
  let db = Mvcc.create () in
  let init =
    record_serial h db ~session:"init" ~template:"init" ~reads:[]
      ~writes:[ ("x", "on"); ("y", "on") ]
  in
  let t1 =
    record_serial h db ~session:"s1" ~template:"check_then_sign_off_x"
      ~reads:[ "x"; "y" ] ~writes:[ ("x", "off") ]
  in
  let t2 =
    record_serial h db ~session:"s2" ~template:"check_then_sign_off_y"
      ~reads:[ "x"; "y" ] ~writes:[ ("y", "off") ]
  in
  (h, [ init; t1; t2 ])
