(* Tests for the fault-injection layer (lsr_faults): the sequenced
   loss/dup/delay/reorder channel, the injector wiring into the embedded
   system, stale-backup + log-replay recovery, and the randomized protocol
   harness that checks the paper's guarantees (weak SI, session guarantees,
   Theorem 3.1 completeness) under adversarial fault schedules with a
   crash/restart in the middle.

   The number of randomized trials is controlled by the FAULT_TRIALS
   environment variable (default 40; CI sets 200). Seeds are fixed, so a
   reported failure replays exactly. *)

open Lsr_storage
open Lsr_core
open Lsr_faults
module Rng = Lsr_sim.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let start_rec i = Txn_record.Start_rec { txn = i; start_ts = i }

let commit_rec i =
  Txn_record.Commit_rec
    {
      txn = i;
      commit_ts = i;
      updates = [ { Wal.key = Printf.sprintf "k%d" i; value = Some "v" } ];
    }

(* The canonical record stream for n transactions, in primary log order. *)
let stream n =
  List.concat_map (fun i -> [ start_rec i; commit_rec i ]) (List.init n succ)

(* --- Channel: delivery semantics --------------------------------------------- *)

let test_channel_reliable_fifo () =
  let ch =
    Channel.create ~config:Channel.reliable ~rng:(Rng.create 1) ()
  in
  let records = stream 5 in
  Channel.send ch records;
  let delivered = Channel.drain ch in
  check_bool "exact sequence" true (delivered = records);
  check_bool "idle after drain" true (Channel.idle ch);
  let s = Channel.stats ch in
  check_int "sent" 10 s.Channel.sent;
  check_int "delivered" 10 s.Channel.delivered;
  check_int "no drops" 0 s.Channel.dropped;
  check_int "no retransmits" 0 s.Channel.retransmitted

let test_channel_lossy_exactly_once_in_order () =
  let ch = Channel.create ~config:Channel.chaos ~rng:(Rng.create 42) () in
  let records = stream 40 in
  (* Interleave sends and ticks so retransmissions overlap fresh traffic. *)
  let collected = ref [] in
  let rec feed_collect = function
    | [] -> ()
    | a :: b :: rest ->
      Channel.send ch [ a; b ];
      collected := List.rev_append (Channel.tick ch) !collected;
      feed_collect rest
    | [ a ] -> Channel.send ch [ a ]
  in
  feed_collect records;
  collected := List.rev_append (Channel.drain ch) !collected;
  let delivered = List.rev !collected in
  check_bool "exactly the sent sequence, in order" true (delivered = records);
  let s = Channel.stats ch in
  check_bool "faults actually happened" true (s.Channel.dropped > 0);
  check_bool "loss was repaired by retransmission" true
    (s.Channel.retransmitted > 0);
  check_bool "queues were observed" true (s.Channel.max_flight > 0)

let test_channel_duplicates_suppressed () =
  let config = { Channel.reliable with Channel.dup = 1.0; reorder_window = 3 } in
  let ch = Channel.create ~config ~rng:(Rng.create 7) () in
  let records = stream 10 in
  Channel.send ch records;
  let delivered = Channel.drain ch in
  check_bool "every record exactly once" true (delivered = records);
  let s = Channel.stats ch in
  check_int "every transmission duplicated" 20 s.Channel.duplicated;
  check_bool "late copies discarded" true (s.Channel.stale_ignored > 0)

let test_channel_reorder_restores_order () =
  let config =
    { Channel.reliable with Channel.reorder = 0.9; reorder_window = 5 }
  in
  let ch = Channel.create ~config ~rng:(Rng.create 11) () in
  let records = stream 20 in
  Channel.send ch records;
  let delivered = Channel.drain ch in
  check_bool "order restored" true (delivered = records);
  let s = Channel.stats ch in
  check_bool "reordering happened" true (s.Channel.reordered > 0);
  check_bool "out-of-order buffer used" true (s.Channel.max_ooo > 0)

let test_channel_reset_forgets_connection_state () =
  let ch = Channel.create ~config:Channel.default ~rng:(Rng.create 3) () in
  Channel.send ch (stream 6);
  ignore (Channel.tick ch);
  check_bool "busy before reset" true (not (Channel.idle ch));
  Channel.reset ch;
  check_bool "idle after reset" true (Channel.idle ch);
  check_int "nothing unacked" 0 (Channel.unacked ch);
  (* A fresh conversation starts at sequence zero on both sides. *)
  let records = stream 3 in
  Channel.send ch records;
  check_bool "post-reset delivery works" true (Channel.drain ch = records)

let test_channel_rejects_bad_config () =
  let bad cfg =
    try
      ignore (Channel.create ~config:cfg ~rng:(Rng.create 1) ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "loss = 1 rejected" true
    (bad { Channel.reliable with Channel.loss = 1.0 });
  check_bool "ack_loss = 1 rejected" true
    (bad { Channel.reliable with Channel.ack_loss = 1.0 });
  check_bool "negative prob rejected" true
    (bad { Channel.reliable with Channel.dup = -0.1 });
  check_bool "rto 0 rejected" true
    (bad { Channel.reliable with Channel.rto = 0 });
  check_bool "backoff < 1 rejected" true
    (bad { Channel.reliable with Channel.backoff = 0.5 });
  check_bool "max_rto < rto rejected" true
    (bad { Channel.reliable with Channel.rto = 8; max_rto = 4 })

let test_channel_deterministic_replay () =
  let run seed =
    let ch = Channel.create ~config:Channel.chaos ~rng:(Rng.create seed) () in
    Channel.send ch (stream 25);
    let d = Channel.drain ch in
    (d, Channel.stats ch)
  in
  let d1, s1 = run 99 in
  let d2, s2 = run 99 in
  check_bool "same deliveries" true (d1 = d2);
  check_bool "same stats" true (s1 = s2);
  let _, s3 = run 100 in
  check_bool "different seed, different schedule" true (s1 <> s3)

(* Any fault configuration (with liveness) delivers exactly the sent
   sequence, in order — the channel is a reliable FIFO link no matter what
   the network underneath does. *)
let prop_channel_is_reliable_fifo =
  QCheck.Test.make ~name:"channel delivers exactly once, in order" ~count:150
    QCheck.(pair (int_range 0 10_000) (int_range 0 30))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let config =
        {
          Channel.loss = 0.5 *. Rng.float rng;
          dup = 0.4 *. Rng.float rng;
          delay = Rng.float rng;
          max_delay = Rng.uniform rng ~lo:1 ~hi:6;
          reorder = Rng.float rng;
          reorder_window = Rng.uniform rng ~lo:1 ~hi:5;
          ack_loss = 0.5 *. Rng.float rng;
          rto = Rng.uniform rng ~lo:2 ~hi:6;
          backoff = 1. +. Rng.float rng;
          max_rto = Rng.uniform rng ~lo:8 ~hi:32;
        }
      in
      let ch = Channel.create ~config ~rng () in
      let records = stream n in
      (* Send in random-sized batches, ticking in between. *)
      let rec feed acc = function
        | [] -> acc
        | rest ->
          let k = Rng.uniform rng ~lo:1 ~hi:4 in
          let batch = List.filteri (fun i _ -> i < k) rest in
          let rest' = List.filteri (fun i _ -> i >= k) rest in
          Channel.send ch batch;
          let acc = List.rev_append (Channel.tick ch) acc in
          feed acc rest'
      in
      let acc = feed [] records in
      let delivered = List.rev_append (Channel.drain ch) acc |> List.rev in
      delivered = records)

(* --- Embedded system under faults -------------------------------------------- *)

let test_system_pump_under_chaos () =
  let inj = Injector.create ~config:Channel.chaos ~seed:2024 () in
  let sys =
    System.create ~secondaries:2 ~faults:(Injector.faults inj)
      ~guarantee:Session.Strong_session ()
  in
  let c = System.connect sys "writer" in
  for i = 1 to 30 do
    match
      System.update sys c (fun h -> Handle.put h (Printf.sprintf "k%d" (i mod 7))
                              (string_of_int i))
    with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "unexpected abort"
  done;
  System.pump sys;
  (match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.failf "check failed: %s" (String.concat "; " es));
  let s = Injector.total inj in
  check_bool "faults were injected, not disabled" true
    (s.Channel.dropped > 0 && s.Channel.retransmitted > 0);
  check_int "both channels attached" 2 (List.length (Injector.channels inj));
  (* Both replicas converged to the primary's state. *)
  for i = 0 to 1 do
    check_bool
      (Printf.sprintf "secondary %d converged" i)
      true
      (Mvcc.committed_state (System.secondary_db sys i)
      = Mvcc.committed_state (System.primary_db sys))
  done

(* Regression: a strong-session read through a lossy channel must keep
   pumping (bounded retry) until the copy catches up, instead of failing
   after one round. Chaos drops and reorders aggressively, so a single
   propagate+refresh pass routinely leaves the required commit in flight. *)
let test_system_blocked_read_under_chaos () =
  let inj = Injector.create ~config:Channel.chaos ~seed:77 () in
  let sys =
    System.create ~secondaries:2 ~faults:(Injector.faults inj)
      ~guarantee:Session.Strong_session ()
  in
  let c = System.connect sys ~secondary:0 "reader" in
  for i = 1 to 10 do
    (match
       System.update sys c (fun h -> Handle.put h "k" (string_of_int i))
     with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "unexpected abort");
    (* The session read must wait out the lossy channel and see the write
       it just committed — never an error, never a stale value. *)
    Alcotest.(check (option string))
      (Printf.sprintf "read-your-writes through chaos, round %d" i)
      (Some (string_of_int i))
      (System.read sys c (fun h -> Handle.get h "k"))
  done;
  (* Same path with an explicit fence to the newest commit. *)
  let newest = Session.seq (System.sessions sys) "reader" in
  Alcotest.(check (option string))
    "exact-fenced read through chaos" (Some "10")
    (System.read ~fence:(Session.Exact newest) sys c (fun h -> Handle.get h "k"));
  check_bool "reads actually blocked" true (System.blocked_reads sys > 0);
  check_bool "faults were injected, not disabled" true
    ((Injector.total inj).Channel.dropped > 0);
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.failf "check failed: %s" (String.concat "; " es)

(* Crash a secondary mid-refresh — its refresher has consumed a start record
   whose commit is still in the channel — then recover and prove the system
   heals. *)
let test_system_crash_mid_refresh_recovers () =
  let inj = Injector.create ~config:Channel.reliable ~seed:5 () in
  let sys =
    System.create ~secondaries:2 ~faults:(Injector.faults inj)
      ~guarantee:Session.Strong_session ()
  in
  let c = System.connect sys "w" in
  (match System.update sys c (fun h -> Handle.put h "a" "1") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "abort");
  (* Split a transaction's start and commit across channel batches by
     driving the primary directly: start+write, propagate, then commit,
     so secondary 0's refresher opens a refresh transaction whose commit
     record it has not seen. *)
  System.pump sys;
  let pdb = System.primary_db sys in
  let txn = Mvcc.begin_txn pdb in
  Mvcc.write pdb txn "b" (Some "2");
  ignore (System.propagate sys);
  ignore (System.refresh_one sys 0);
  ignore (System.refresh_one sys 0);
  (* The refresher at secondary 0 is now mid-refresh. Crash it. *)
  System.crash_secondary sys 0;
  (match Mvcc.commit pdb txn with
  | Mvcc.Committed _ -> ()
  | Mvcc.Aborted _ -> Alcotest.fail "primary commit failed");
  (match System.update sys c (fun h -> Handle.put h "c" "3") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "abort");
  System.recover_secondary sys 0;
  System.pump sys;
  (match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.failf "check failed: %s" (String.concat "; " es));
  check_bool "recovered replica converged" true
    (Mvcc.committed_state (System.secondary_db sys 0)
    = Mvcc.committed_state (System.primary_db sys));
  check_bool "untouched replica converged" true
    (Mvcc.committed_state (System.secondary_db sys 1)
    = Mvcc.committed_state (System.primary_db sys))

(* --- Recovery from a stale backup + log replay -------------------------------- *)

let update_primary primary writes =
  match
    Primary.execute primary (fun db txn ->
        List.iter (fun (k, v) -> Mvcc.write db txn k v) writes)
  with
  | Primary.Committed { commit_ts; _ } -> commit_ts
  | Primary.Aborted _ -> Alcotest.fail "unexpected primary abort"

let test_recovery_stale_backup_converges () =
  let primary = Primary.create () in
  let live = Secondary.create ~name:"live" () in
  let prop = Propagation.create ~from:0 (Primary.wal primary) in
  let feed () =
    List.iter (Secondary.enqueue live) (Propagation.poll prop);
    ignore (Secondary.drain live)
  in
  ignore (update_primary primary [ ("x", Some "1"); ("y", Some "1") ]);
  ignore (update_primary primary [ ("x", Some "2") ]);
  feed ();
  (* Checkpoint mid-stream, with one transaction still in flight: its start
     record precedes the backup point, its commit follows it. *)
  let pdb = Primary.db primary in
  let inflight = Mvcc.begin_txn pdb in
  Mvcc.write pdb inflight "z" (Some "9");
  let b = Recovery.backup primary in
  (match Mvcc.commit pdb inflight with
  | Mvcc.Committed _ -> ()
  | Mvcc.Aborted _ -> Alcotest.fail "in-flight commit failed");
  (* Post-backup traffic: overwrites, a delete, and an abort. *)
  ignore (update_primary primary [ ("y", Some "3"); ("w", Some "4") ]);
  ignore (update_primary primary [ ("x", None) ]);
  let doomed = Mvcc.begin_txn pdb in
  Mvcc.write pdb doomed "x" (Some "ghost");
  Mvcc.abort pdb doomed;
  feed ();
  (* The crashed replica rebuilds from the stale backup + full log replay. *)
  let recovered = Recovery.restore ~name:"recovered" ~primary b in
  check_bool "state converged to the uncrashed replica" true
    (Mvcc.committed_state (Secondary.db recovered)
    = Mvcc.committed_state (Secondary.db live));
  check_bool "state equals the primary state" true
    (Mvcc.committed_state (Secondary.db recovered)
    = Mvcc.committed_state pdb);
  check_int "seq(DBsec) equals the uncrashed replica's"
    (Secondary.seq_dbsec live)
    (Secondary.seq_dbsec recovered);
  check_int "no replay residue queued" 0
    (Secondary.update_queue_length recovered)

let test_recovery_without_new_commits_keeps_seq () =
  let primary = Primary.create () in
  ignore (update_primary primary [ ("x", Some "1") ]);
  let b = Recovery.backup primary in
  let recovered = Recovery.restore ~primary b in
  check_int "seq stays at the backup point" b.Recovery.ts
    (Secondary.seq_dbsec recovered);
  check_bool "state is the backup state" true
    (Mvcc.committed_state (Secondary.db recovered)
    = Mvcc.committed_state (Primary.db primary))

let test_recovery_truncated_log_fails_loudly () =
  let primary = Primary.create () in
  ignore (update_primary primary [ ("x", Some "1") ]);
  let b = Recovery.backup primary in
  ignore (update_primary primary [ ("x", Some "2") ]);
  Wal.truncate_before (Primary.wal primary) (Wal.length (Primary.wal primary));
  check_bool "replay over a truncated log raises" true
    (try
       ignore (Recovery.restore ~primary b);
       false
     with Invalid_argument _ -> true)

let test_replay_filter () =
  let records =
    [
      start_rec 1;
      commit_rec 1;
      start_rec 2;
      Txn_record.Abort_rec { txn = 2; wasted = [] };
      start_rec 3;
      commit_rec 3;
      start_rec 4 (* still in flight: no commit *);
    ]
  in
  let kept = Recovery.replay_filter ~after:1 records in
  check_bool "only the post-backup committed pair survives" true
    (kept = [ start_rec 3; commit_rec 3 ])

(* --- Randomized protocol harness ---------------------------------------------- *)

let trials =
  match Sys.getenv_opt "FAULT_TRIALS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 40)
  | None -> 40

let dump_history sys =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter
    (fun txn -> Format.fprintf ppf "  %a@." History.pp_txn txn)
    (History.transactions (System.history sys));
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* One seeded trial: a random guarantee, 2-3 secondaries behind a random
   hostile channel configuration, a random interleaving of updates, reads,
   migrations, partial propagation/refresh, and exactly one crash/restart.
   Afterwards the drained system must pass the full checker battery and the
   channels must show the faults actually fired. *)
let run_trial seed =
  let rng = Rng.create seed in
  let guarantee =
    match Rng.uniform rng ~lo:0 ~hi:3 with
    | 0 -> Session.Weak
    | 1 -> Session.Prefix_consistent
    | 2 -> Session.Strong_session
    | _ -> Session.Strong
  in
  let config =
    {
      Channel.loss = 0.15 +. (0.25 *. Rng.float rng);
      dup = 0.3 *. Rng.float rng;
      delay = 0.5 *. Rng.float rng;
      max_delay = Rng.uniform rng ~lo:1 ~hi:5;
      reorder = 0.4 *. Rng.float rng;
      reorder_window = Rng.uniform rng ~lo:1 ~hi:4;
      ack_loss = 0.3 *. Rng.float rng;
      rto = Rng.uniform rng ~lo:2 ~hi:5;
      backoff = 1.5 +. (0.5 *. Rng.float rng);
      max_rto = Rng.uniform rng ~lo:12 ~hi:32;
    }
  in
  let secondaries = Rng.uniform rng ~lo:2 ~hi:3 in
  let inj = Injector.create ~config ~seed:(seed lxor 0xFA17) () in
  let sys =
    System.create ~secondaries ~faults:(Injector.faults inj) ~guarantee ()
  in
  let nclients = Rng.uniform rng ~lo:2 ~hi:4 in
  let clients =
    Array.init nclients (fun i ->
        ref (System.connect sys (Printf.sprintf "c%d" i)))
  in
  let ops = Rng.uniform rng ~lo:35 ~hi:55 in
  let crash_at = Rng.uniform rng ~lo:8 ~hi:(ops / 2) in
  let recover_at = crash_at + Rng.uniform rng ~lo:2 ~hi:12 in
  let victim = ref (-1) in
  let key () = Printf.sprintf "k%d" (Rng.uniform rng ~lo:0 ~hi:9) in
  let live_secondary () =
    let rec pick () =
      let i = Rng.uniform rng ~lo:0 ~hi:(secondaries - 1) in
      if System.is_crashed sys i then pick () else i
    in
    pick ()
  in
  (try
     for op = 1 to ops do
       if op = crash_at then begin
         victim := Rng.uniform rng ~lo:0 ~hi:(secondaries - 1);
         System.crash_secondary sys !victim
       end;
       if op = recover_at then System.recover_secondary sys !victim;
       let c = clients.(Rng.uniform rng ~lo:0 ~hi:(nclients - 1)) in
       (* Sessions pinned to a crashed secondary migrate (load balancing /
          failover), carrying their ordering constraints with them. *)
       if System.is_crashed sys (System.client_secondary !c) then
         c := System.migrate sys !c (live_secondary ());
       (match Rng.uniform rng ~lo:0 ~hi:9 with
       | 0 | 1 | 2 | 3 ->
         let k = key () in
         let forced = Rng.bernoulli rng ~p:0.08 in
         ignore
           (System.update sys !c ~force_abort:forced (fun h ->
                if Rng.bernoulli rng ~p:0.15 then Handle.del h k
                else Handle.put h k (Printf.sprintf "v%d" op)))
       | 4 | 5 | 6 | 7 ->
         ignore (System.read sys !c (fun h -> Handle.get h (key ())))
       | 8 -> ignore (System.propagate sys)
       | _ -> ignore (System.refresh_all sys));
       (* Occasional extra channel ticks, so in-flight traffic advances at a
          rhythm decoupled from the refresh calls. *)
       if Rng.bernoulli rng ~p:0.3 then ignore (System.refresh_all sys)
     done;
     if !victim >= 0 && System.is_crashed sys !victim then
       System.recover_secondary sys !victim;
     System.pump sys
   with e ->
     Alcotest.failf "trial seed %d raised %s\nhistory:\n%s" seed
       (Printexc.to_string e) (dump_history sys));
  (match System.check sys with
  | Ok () -> ()
  | Error es ->
    Alcotest.failf "trial seed %d failed the checker:\n  %s\nhistory:\n%s" seed
      (String.concat "\n  " es) (dump_history sys));
  let s = Injector.total inj in
  if s.Channel.dropped > 0 && s.Channel.retransmitted = 0 then
    Alcotest.failf "trial seed %d: %d drops but no retransmissions" seed
      s.Channel.dropped;
  s

let test_randomized_protocol () =
  let base_seed = 0xF5_EED in
  let total = ref Channel.zero_stats in
  for i = 0 to trials - 1 do
    total := Channel.add_stats !total (run_trial (base_seed + i))
  done;
  (* Faults must demonstrably have fired across the trial set: a schedule
     that silently disabled injection would pass every check vacuously. *)
  check_bool "drops occurred across trials" true (!total.Channel.dropped > 0);
  check_bool "retransmissions occurred across trials" true
    (!total.Channel.retransmitted > 0);
  check_bool "duplicates occurred across trials" true
    (!total.Channel.duplicated > 0);
  check_bool "reordering occurred across trials" true
    (!total.Channel.reordered > 0)

(* --- Lineage journeys under faults ------------------------------------------- *)

(* Edge cases of the causal journey tracing (docs/TRACING.md) that only the
   fault layer can provoke: aborted transactions, drop-then-retransmit
   ordering inside one journey, and journeys cut short by a crash whose
   state arrives via the §3.4 backup instead of refresh. *)

module Lineage = Lsr_obs.Lineage

let refresh_sites journey =
  List.filter_map
    (fun (e : Lineage.event) ->
      match e.Lineage.stage with
      | Lineage.Refresh_committed _ -> e.Lineage.site
      | _ -> None)
    journey

let payload_stages journey =
  (* The stages that carry replicated work, as opposed to batch/refresh
     bookkeeping a start record alone can provoke. *)
  List.filter
    (fun (e : Lineage.event) ->
      match e.Lineage.stage with
      | Lineage.Primary_commit _ | Lineage.Shipped _
      | Lineage.Refresh_committed _ -> true
      | _ -> false)
    journey

let test_journey_aborted_txn_invisible () =
  (* Algorithm 3.1 never ships aborted work: an aborted attempt may leave
     bookkeeping stages (its start record opens a batch and a refresh txn),
     but no commit, no shipped payload, no refresh commit — and it never
     counts as a registered commit. *)
  let lineage = Lineage.create () in
  let sys =
    System.create ~secondaries:1 ~lineage ~guarantee:Session.Strong_session ()
  in
  let c = System.connect sys "c0" in
  (match System.update sys c ~force_abort:true (fun h -> Handle.put h "k" "v") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forced abort committed");
  System.pump sys;
  check_int "no commit registered" 0 (Lineage.commit_count lineage);
  List.iter
    (fun txn ->
      check_bool "aborted journey carries no payload stage" true
        (payload_stages (Lineage.journey lineage ~txn) = []))
    (Lineage.txns lineage);
  (match System.update sys c (fun h -> Handle.put h "k" "v1") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "follow-up commit failed");
  System.pump sys;
  check_int "the committed successor registers" 1
    (Lineage.commit_count lineage);
  let committed =
    List.filter
      (fun txn -> payload_stages (Lineage.journey lineage ~txn) <> [])
      (Lineage.txns lineage)
  in
  match committed with
  | [ id ] ->
    check_bool "the committed successor still gets a full journey" true
      (refresh_sites (Lineage.journey lineage ~txn:id) = [ "secondary-0" ])
  | l -> Alcotest.failf "expected one committed txn, got %d" (List.length l)

let test_journey_drop_then_retransmit_order () =
  (* A journey that includes an injected drop must show the retransmission
     after it, and the refresh commit after that: the trace tells the true
     delivery story, not the first-attempt story. *)
  let config = { Channel.reliable with Channel.loss = 0.5; rto = 2 } in
  let witnessed = ref false in
  List.iter
    (fun seed ->
      if not !witnessed then begin
        let lineage = Lineage.create () in
        let inj = Injector.create ~config ~lineage ~seed () in
        let sys =
          System.create ~secondaries:1 ~faults:(Injector.faults inj) ~lineage
            ~guarantee:Session.Strong_session ()
        in
        let c = System.connect sys "c0" in
        for i = 1 to 15 do
          ignore
            (System.update sys c (fun h ->
                 Handle.put h (Printf.sprintf "k%d" i) "v"));
          ignore (System.propagate sys);
          ignore (System.refresh_all sys)
        done;
        System.pump sys;
        List.iter
          (fun txn ->
            let j = Lineage.journey lineage ~txn in
            let indices p =
              List.mapi (fun i e -> (i, e)) j
              |> List.filter_map (fun (i, (e : Lineage.event)) ->
                     if p e.Lineage.stage then Some i else None)
            in
            let drops =
              indices (function Lineage.Channel_dropped _ -> true | _ -> false)
            in
            let retrans =
              indices (function
                | Lineage.Channel_retransmitted _ -> true
                | _ -> false)
            in
            let commits =
              indices (function
                | Lineage.Refresh_committed _ -> true
                | _ -> false)
            in
            match (drops, retrans) with
            | d :: _, _ :: _ -> (
              (* A dropped record is only ever delivered by retransmission,
                 so some retransmission must follow the drop, and the
                 journey's refresh commit must follow that. *)
              match List.find_opt (fun r -> r > d) retrans with
              | None ->
                Alcotest.fail "drop with no subsequent retransmission"
              | Some r ->
                witnessed := true;
                check_bool "journey still reaches its refresh commit" true
                  (match List.rev commits with
                  | last :: _ -> last > r
                  | [] -> false))
            | _ -> ())
          (Lineage.txns lineage)
      end)
    [ 0xD20; 0xD21; 0xD22 ];
  check_bool "a dropped-then-retransmitted journey was provoked" true
    !witnessed

let test_journey_spans_crash_recovery () =
  (* Commits that reach a site through the §3.4 recovery backup must NOT
     grow fabricated refresh events there; commits after recovery resume
     full journeys at every site. *)
  let lineage = Lineage.create () in
  let sys =
    System.create ~secondaries:2 ~lineage ~guarantee:Session.Strong_session ()
  in
  let c = System.connect sys "c0" in
  let commit k v =
    match System.update sys c (fun h -> Handle.put h k v) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "update failed"
  in
  commit "a" "1";
  ignore (System.propagate sys);
  System.crash_secondary sys 0;
  commit "a" "2";
  System.recover_secondary sys 0;
  commit "a" "3";
  System.pump sys;
  (match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.failf "checker: %s" (String.concat "; " es));
  (* The §4 recovery dummy transaction leaves bookkeeping-only traces;
     only the three real commits matter here. *)
  let committed =
    List.filter
      (fun txn ->
        List.exists
          (fun (e : Lineage.event) ->
            match e.Lineage.stage with
            | Lineage.Primary_commit _ -> true
            | _ -> false)
          (Lineage.journey lineage ~txn))
      (Lineage.txns lineage)
  in
  match committed with
  | [ t1; t2; t3 ] ->
    let sites t = List.sort_uniq compare (refresh_sites (Lineage.journey lineage ~txn:t)) in
    check_bool "pre-crash commit refreshed only at the surviving site" true
      (sites t1 = [ "secondary-1" ]);
    check_bool "mid-crash commit arrived at site 0 via backup, not refresh"
      true
      (sites t2 = [ "secondary-1" ]);
    check_bool "post-recovery commit refreshes at both sites again" true
      (sites t3 = [ "secondary-0"; "secondary-1" ])
  | l -> Alcotest.failf "expected three traced txns, got %d" (List.length l)

(* --- Suite -------------------------------------------------------------------- *)

let () =
  Alcotest.run "lsr_faults"
    [
      ( "channel",
        [
          Alcotest.test_case "reliable fifo" `Quick test_channel_reliable_fifo;
          Alcotest.test_case "lossy exactly-once in-order" `Quick
            test_channel_lossy_exactly_once_in_order;
          Alcotest.test_case "duplicates suppressed" `Quick
            test_channel_duplicates_suppressed;
          Alcotest.test_case "reordering restored" `Quick
            test_channel_reorder_restores_order;
          Alcotest.test_case "reset" `Quick
            test_channel_reset_forgets_connection_state;
          Alcotest.test_case "config validation" `Quick
            test_channel_rejects_bad_config;
          Alcotest.test_case "deterministic replay" `Quick
            test_channel_deterministic_replay;
          QCheck_alcotest.to_alcotest prop_channel_is_reliable_fifo;
        ] );
      ( "system",
        [
          Alcotest.test_case "pump under chaos" `Quick
            test_system_pump_under_chaos;
          Alcotest.test_case "blocked read under chaos" `Quick
            test_system_blocked_read_under_chaos;
          Alcotest.test_case "crash mid-refresh recovers" `Quick
            test_system_crash_mid_refresh_recovers;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "stale backup + replay converges" `Quick
            test_recovery_stale_backup_converges;
          Alcotest.test_case "no new commits keeps seq" `Quick
            test_recovery_without_new_commits_keeps_seq;
          Alcotest.test_case "truncated log fails loudly" `Quick
            test_recovery_truncated_log_fails_loudly;
          Alcotest.test_case "replay filter" `Quick test_replay_filter;
        ] );
      ( "lineage-journeys",
        [
          Alcotest.test_case "aborted txns invisible" `Quick
            test_journey_aborted_txn_invisible;
          Alcotest.test_case "drop then retransmit order" `Quick
            test_journey_drop_then_retransmit_order;
          Alcotest.test_case "spans crash/recovery" `Quick
            test_journey_spans_crash_recovery;
        ] );
      ( "protocol",
        [
          Alcotest.test_case
            (Printf.sprintf "randomized fault schedules (%d trials)" trials)
            `Slow test_randomized_protocol;
        ] );
    ]
