(* Tests for the strong-SI multiversion storage engine (lsr_storage):
   timestamps, logical log, MVCC semantics (snapshot visibility,
   first-committer-wins, read-your-writes), the anomaly guarantees SI makes,
   the row codec and the relational layer. *)

open Lsr_storage

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str_opt = Alcotest.(check (option string))

let commit_exn db txn =
  match Mvcc.commit db txn with
  | Mvcc.Committed ts -> ts
  | Mvcc.Aborted _ -> Alcotest.fail "unexpected abort"

let put db txn k v = Mvcc.write db txn k (Some v)

(* One committed transaction writing the given bindings. *)
let seed db bindings =
  let txn = Mvcc.begin_txn db in
  List.iter (fun (k, v) -> put db txn k v) bindings;
  ignore (commit_exn db txn)

(* --- Timestamp ----------------------------------------------------------------- *)

let test_timestamp_monotonic () =
  let src = Timestamp.source () in
  let a = Timestamp.next src in
  let b = Timestamp.next src in
  check_bool "strictly increasing" true (Timestamp.compare a b < 0);
  check_int "current is last issued" b (Timestamp.current src)

(* --- Wal ------------------------------------------------------------------------ *)

let test_wal_append_read () =
  let wal = Wal.create () in
  Wal.append wal (Wal.Start { txn = 1; ts = 1 });
  Wal.append wal
    (Wal.Update { txn = 1; update = { Wal.key = "x"; value = Some "1" } });
  Wal.append wal (Wal.Commit { txn = 1; ts = 2 });
  check_int "length" 3 (Wal.length wal);
  let entries, next = Wal.read_from wal 0 in
  check_int "cursor" 3 next;
  check_int "all entries" 3 (List.length entries);
  let more, next' = Wal.read_from wal next in
  check_int "no new entries" 0 (List.length more);
  check_int "cursor stable" 3 next'

let test_wal_entry_bounds () =
  let wal = Wal.create () in
  Wal.append wal (Wal.Abort { txn = 1 });
  Alcotest.check_raises "out of range"
    (Invalid_argument "Wal.entry: offset 5 outside [0, 1)") (fun () ->
      ignore (Wal.entry wal 5))

let test_wal_truncate () =
  let wal = Wal.create () in
  for i = 1 to 10 do
    Wal.append wal (Wal.Start { txn = i; ts = i })
  done;
  Wal.truncate_before wal 6;
  check_int "length unchanged (offsets stable)" 10 (Wal.length wal);
  (match Wal.entry wal 6 with
  | Wal.Start { txn; _ } -> check_int "entry 6 survives" 7 txn
  | _ -> Alcotest.fail "wrong entry");
  Alcotest.check_raises "reclaimed entry"
    (Invalid_argument "Wal.entry: offset 2 outside [6, 10)") (fun () ->
      ignore (Wal.entry wal 2));
  let entries, _ = Wal.read_from wal 6 in
  check_int "read_from at the cut sees the suffix" 4 (List.length entries)

(* Satellite coverage for log-reclamation edge cases: a reader below the
   truncation point must fail loudly, and reading at exactly [length]
   returns an empty batch with a stable cursor. *)
let test_wal_read_from_below_truncation_raises () =
  let wal = Wal.create () in
  for i = 1 to 8 do
    Wal.append wal (Wal.Start { txn = i; ts = i })
  done;
  Wal.truncate_before wal 5;
  Alcotest.check_raises "below the cut"
    (Invalid_argument "Wal.read_from: offset 0 below truncation point 5")
    (fun () -> ignore (Wal.read_from wal 0));
  Alcotest.check_raises "just below the cut"
    (Invalid_argument "Wal.read_from: offset 4 below truncation point 5")
    (fun () -> ignore (Wal.read_from wal 4));
  (* At or above the cut still works. *)
  let entries, next = Wal.read_from wal 5 in
  check_int "suffix length" 3 (List.length entries);
  check_int "cursor" 8 next

let test_wal_read_from_at_length () =
  let wal = Wal.create () in
  for i = 1 to 3 do
    Wal.append wal (Wal.Start { txn = i; ts = i })
  done;
  let entries, next = Wal.read_from wal (Wal.length wal) in
  check_int "no entries at the head" 0 (List.length entries);
  check_int "cursor stays at length" (Wal.length wal) next;
  (* Still true when the whole log has been reclaimed. *)
  Wal.truncate_before wal (Wal.length wal);
  let entries, next = Wal.read_from wal (Wal.length wal) in
  check_int "no entries after full truncation" 0 (List.length entries);
  check_int "cursor stable after full truncation" (Wal.length wal) next

(* Truncation never changes what remains readable above the cut. *)
let prop_wal_truncate_preserves_suffix =
  QCheck.Test.make ~name:"wal truncation preserves the suffix" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 0 20) (int_range 0 100)) (int_range 0 25))
    (fun (txns, cut) ->
      let wal = Wal.create () in
      List.iter (fun t -> Wal.append wal (Wal.Start { txn = t; ts = t })) txns;
      let before, _ = Wal.read_from wal cut in
      Wal.truncate_before wal cut;
      let after, _ = Wal.read_from wal cut in
      before = after && Wal.length wal = List.length txns)

(* --- Mvcc: basic semantics ------------------------------------------------------- *)

let test_visibility_committed_before_start () =
  let db = Mvcc.create () in
  seed db [ ("x", "1") ];
  let txn = Mvcc.begin_txn db in
  check_str_opt "sees committed value" (Some "1") (Mvcc.read db txn "x")

let test_snapshot_ignores_later_commit () =
  let db = Mvcc.create () in
  seed db [ ("x", "1") ];
  let reader = Mvcc.begin_txn db in
  (* A concurrent writer commits x=2 after the reader started. *)
  seed db [ ("x", "2") ];
  check_str_opt "reader still sees old snapshot" (Some "1")
    (Mvcc.read db reader "x");
  let fresh = Mvcc.begin_txn db in
  check_str_opt "new transaction sees new value (strong SI)" (Some "2")
    (Mvcc.read db fresh "x")

let test_read_your_writes () =
  let db = Mvcc.create () in
  seed db [ ("x", "1") ];
  let txn = Mvcc.begin_txn db in
  put db txn "x" "mine";
  check_str_opt "own write visible" (Some "mine") (Mvcc.read db txn "x");
  put db txn "y" "fresh";
  check_str_opt "own insert visible" (Some "fresh") (Mvcc.read db txn "y")

let test_delete_tombstone () =
  let db = Mvcc.create () in
  seed db [ ("x", "1") ];
  let txn = Mvcc.begin_txn db in
  Mvcc.write db txn "x" None;
  check_str_opt "own delete visible" None (Mvcc.read db txn "x");
  ignore (commit_exn db txn);
  let fresh = Mvcc.begin_txn db in
  check_str_opt "delete committed" None (Mvcc.read db fresh "x");
  check_bool "state omits deleted key" true
    (not (List.mem_assoc "x" (Mvcc.committed_state db)))

let test_first_committer_wins () =
  let db = Mvcc.create () in
  seed db [ ("x", "0") ];
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  put db t1 "x" "t1";
  put db t2 "x" "t2";
  ignore (commit_exn db t1);
  (match Mvcc.commit db t2 with
  | Mvcc.Aborted (Mvcc.Write_conflict key) ->
    Alcotest.(check string) "conflicting key" "x" key
  | Mvcc.Aborted Mvcc.Forced -> Alcotest.fail "wrong abort reason"
  | Mvcc.Committed _ -> Alcotest.fail "second committer must lose");
  let fresh = Mvcc.begin_txn db in
  check_str_opt "first committer's value" (Some "t1") (Mvcc.read db fresh "x")

let test_sequential_overwrite_allowed () =
  let db = Mvcc.create () in
  seed db [ ("x", "1") ];
  seed db [ ("x", "2") ];
  let txn = Mvcc.begin_txn db in
  check_str_opt "sequential writers both commit" (Some "2")
    (Mvcc.read db txn "x")

let test_disjoint_concurrent_commits () =
  let db = Mvcc.create () in
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  put db t1 "x" "1";
  put db t2 "y" "2";
  ignore (commit_exn db t1);
  ignore (commit_exn db t2);
  check_int "both committed" 2 (Mvcc.commit_count db)

let test_write_skew_possible () =
  (* The P5 pattern: disjoint write sets, crossed reads — SI admits it. *)
  let db = Mvcc.create () in
  seed db [ ("x", "1"); ("y", "1") ];
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  ignore (Mvcc.read db t1 "x");
  ignore (Mvcc.read db t1 "y");
  ignore (Mvcc.read db t2 "x");
  ignore (Mvcc.read db t2 "y");
  put db t1 "x" "t1";
  put db t2 "y" "t2";
  ignore (commit_exn db t1);
  ignore (commit_exn db t2);
  check_int "write skew committed (SI is not serializable)" 3
    (Mvcc.commit_count db)

let test_lost_update_prevented () =
  (* P4 pattern: both read x, both write x; FCW kills the second. *)
  let db = Mvcc.create () in
  seed db [ ("x", "0") ];
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  ignore (Mvcc.read db t1 "x");
  ignore (Mvcc.read db t2 "x");
  put db t1 "x" "1";
  put db t2 "x" "2";
  ignore (commit_exn db t1);
  match Mvcc.commit db t2 with
  | Mvcc.Aborted (Mvcc.Write_conflict _) -> ()
  | Mvcc.Aborted Mvcc.Forced | Mvcc.Committed _ ->
    Alcotest.fail "lost update not prevented"

let test_abort_discards () =
  let db = Mvcc.create () in
  let txn = Mvcc.begin_txn db in
  put db txn "x" "1";
  Mvcc.abort db txn;
  let fresh = Mvcc.begin_txn db in
  check_str_opt "aborted write invisible" None (Mvcc.read db fresh "x");
  check_int "nothing committed" 0 (Mvcc.commit_count db)

let test_operations_after_end_raise () =
  let db = Mvcc.create () in
  let txn = Mvcc.begin_txn db in
  ignore (commit_exn db txn);
  Alcotest.check_raises "read after commit"
    (Invalid_argument
       (Printf.sprintf "Mvcc.read: transaction %d is not active"
          (Mvcc.txn_id txn))) (fun () -> ignore (Mvcc.read db txn "x"))

let test_end_read_rejects_writers () =
  let db = Mvcc.create () in
  let txn = Mvcc.begin_txn db in
  put db txn "x" "1";
  Alcotest.check_raises "end_read with writes"
    (Invalid_argument "Mvcc.end_read: transaction has writes; commit or abort it")
    (fun () -> Mvcc.end_read db txn)

let test_end_read_creates_no_state () =
  let db = Mvcc.create () in
  seed db [ ("x", "1") ];
  let before = Mvcc.commit_count db in
  let txn = Mvcc.begin_txn db in
  ignore (Mvcc.read db txn "x");
  Mvcc.end_read db txn;
  check_int "no new state" before (Mvcc.commit_count db)

let test_last_write_wins_within_txn () =
  let db = Mvcc.create () in
  let txn = Mvcc.begin_txn db in
  put db txn "x" "first";
  put db txn "x" "second";
  let writes = Mvcc.pending_writes txn in
  check_int "squashed to one update" 1 (List.length writes);
  ignore (commit_exn db txn);
  let fresh = Mvcc.begin_txn db in
  check_str_opt "last write wins" (Some "second") (Mvcc.read db fresh "x")

(* --- Mvcc: state reconstruction --------------------------------------------------- *)

let test_state_sequence () =
  let db = Mvcc.create () in
  Alcotest.(check (list (pair string string))) "S^0 empty" [] (Mvcc.nth_state db 0);
  seed db [ ("a", "1") ];
  seed db [ ("b", "2") ];
  seed db [ ("a", "3") ];
  check_int "three commits" 3 (Mvcc.commit_count db);
  Alcotest.(check (list (pair string string)))
    "S^1" [ ("a", "1") ] (Mvcc.nth_state db 1);
  Alcotest.(check (list (pair string string)))
    "S^2"
    [ ("a", "1"); ("b", "2") ]
    (Mvcc.nth_state db 2);
  Alcotest.(check (list (pair string string)))
    "S^3 = latest"
    [ ("a", "3"); ("b", "2") ]
    (Mvcc.nth_state db 3);
  Alcotest.(check (list (pair string string)))
    "committed_state" (Mvcc.nth_state db 3) (Mvcc.committed_state db)

let test_nth_state_bounds () =
  let db = Mvcc.create () in
  Alcotest.check_raises "beyond last"
    (Invalid_argument "Mvcc.nth_state: 1 outside [0, 0]") (fun () ->
      ignore (Mvcc.nth_state db 1))

let test_read_at () =
  let db = Mvcc.create () in
  seed db [ ("x", "1") ];
  let ts1 = Mvcc.latest_commit_ts db in
  seed db [ ("x", "2") ];
  check_str_opt "read_at old snapshot" (Some "1") (Mvcc.read_at db ts1 "x");
  check_str_opt "read_at now" (Some "2")
    (Mvcc.read_at db (Mvcc.latest_commit_ts db) "x")

let test_commit_history_ordered () =
  let db = Mvcc.create () in
  seed db [ ("a", "1") ];
  seed db [ ("b", "2") ];
  let history = Mvcc.commit_history db in
  check_int "two commits" 2 (List.length history);
  check_bool "ascending" true (List.sort Timestamp.compare history = history)

let test_fold_keys_prefix () =
  let db = Mvcc.create () in
  seed db [ ("t:books:1", "x"); ("t:books:2", "y"); ("t:orders:1", "z") ];
  let books =
    Mvcc.fold_keys db ~prefix:"t:books:" ~init:0 ~f:(fun acc _ -> acc + 1)
  in
  check_int "prefix filter" 2 books

let test_wal_records_transaction () =
  let db = Mvcc.create () in
  let txn = Mvcc.begin_txn db in
  put db txn "x" "1";
  ignore (commit_exn db txn);
  let entries, _ = Wal.read_from (Mvcc.wal db) 0 in
  match entries with
  | [ Wal.Start s; Wal.Update u; Wal.Commit c ] ->
    check_int "start txn id" (Mvcc.txn_id txn) s.txn;
    Alcotest.(check string) "update key" "x" u.update.Wal.key;
    check_bool "commit after start" true (c.ts > s.ts)
  | _ -> Alcotest.fail "unexpected log shape"

let test_wal_records_abort () =
  let db = Mvcc.create () in
  let txn = Mvcc.begin_txn db in
  put db txn "x" "1";
  Mvcc.abort db txn;
  let entries, _ = Wal.read_from (Mvcc.wal db) 0 in
  match List.rev entries with
  | Wal.Abort a :: _ -> check_int "abort logged" (Mvcc.txn_id txn) a.txn
  | _ -> Alcotest.fail "abort record missing"

(* --- Mvcc: qcheck properties -------------------------------------------------------- *)

let small_key = QCheck.Gen.(map (Printf.sprintf "k%d") (int_range 0 5))

let gen_txn_writes =
  QCheck.Gen.(
    list_size (int_range 1 4) (pair small_key (opt (string_size (return 2)))))

let prop_fcw_exclusive =
  (* Of two concurrent transactions writing a common key, exactly the first
     committer survives. *)
  QCheck.Test.make ~name:"FCW: concurrent conflicting commits are exclusive"
    ~count:300
    QCheck.(make Gen.(pair gen_txn_writes gen_txn_writes))
    (fun (w1, w2) ->
      let keys ws = List.sort_uniq compare (List.map fst ws) in
      let overlap = List.exists (fun k -> List.mem k (keys w2)) (keys w1) in
      let db = Mvcc.create () in
      let t1 = Mvcc.begin_txn db in
      let t2 = Mvcc.begin_txn db in
      List.iter (fun (k, v) -> Mvcc.write db t1 k v) w1;
      List.iter (fun (k, v) -> Mvcc.write db t2 k v) w2;
      let ok1 =
        match Mvcc.commit db t1 with Mvcc.Committed _ -> true | _ -> false
      in
      let ok2 =
        match Mvcc.commit db t2 with Mvcc.Committed _ -> true | _ -> false
      in
      if overlap then ok1 && not ok2 else ok1 && ok2)

let prop_snapshot_stability =
  (* A reader's view never changes, no matter what commits around it. *)
  QCheck.Test.make ~name:"snapshot stability under concurrent commits"
    ~count:300
    QCheck.(make Gen.(list_size (int_range 1 6) gen_txn_writes))
    (fun txns ->
      let db = Mvcc.create () in
      seed db [ ("k0", "init0"); ("k3", "init3") ];
      let reader = Mvcc.begin_txn db in
      let probe () =
        List.map
          (fun k -> (k, Mvcc.read db reader k))
          [ "k0"; "k1"; "k2"; "k3"; "k4"; "k5" ]
      in
      let before = probe () in
      List.iter
        (fun writes ->
          let t = Mvcc.begin_txn db in
          List.iter (fun (k, v) -> Mvcc.write db t k v) writes;
          ignore (Mvcc.commit db t))
        txns;
      before = probe ())

let prop_state_replay =
  (* committed_state equals replaying commits_with_updates in order. *)
  QCheck.Test.make ~name:"committed state = replay of commit writesets"
    ~count:300
    QCheck.(make Gen.(list_size (int_range 0 8) gen_txn_writes))
    (fun txns ->
      let db = Mvcc.create () in
      List.iter
        (fun writes ->
          let t = Mvcc.begin_txn db in
          List.iter (fun (k, v) -> Mvcc.write db t k v) writes;
          ignore (Mvcc.commit db t))
        txns;
      let replayed = Hashtbl.create 16 in
      List.iter
        (fun (_, updates) ->
          List.iter
            (fun { Wal.key; value } ->
              match value with
              | Some v -> Hashtbl.replace replayed key v
              | None -> Hashtbl.remove replayed key)
            updates)
        (Mvcc.commits_with_updates db);
      let expected =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) replayed []
        |> List.sort compare
      in
      expected = Mvcc.committed_state db)

let prop_nth_state_prefix_monotone =
  QCheck.Test.make ~name:"nth_state defined for every prefix" ~count:100
    QCheck.(make Gen.(list_size (int_range 0 6) gen_txn_writes))
    (fun txns ->
      let db = Mvcc.create () in
      List.iter
        (fun writes ->
          let t = Mvcc.begin_txn db in
          List.iter (fun (k, v) -> Mvcc.write db t k v) writes;
          ignore (Mvcc.commit db t))
        txns;
      let n = Mvcc.commit_count db in
      List.for_all
        (fun i ->
          ignore (Mvcc.nth_state db i);
          true)
        (List.init (n + 1) Fun.id)
      && Mvcc.nth_state db n = Mvcc.committed_state db)

(* --- Time travel (weak-SI start-timestamp assignment, §2.1) ----------------------------- *)

let test_time_travel_reads_history () =
  let db = Mvcc.create () in
  seed db [ ("x", "v1") ];
  let ts1 = Mvcc.latest_commit_ts db in
  seed db [ ("x", "v2") ];
  seed db [ ("x", "v3") ];
  let txn = Mvcc.begin_txn_at db ~snapshot:ts1 in
  check_str_opt "sees the historical state" (Some "v1") (Mvcc.read db txn "x");
  Mvcc.end_read db txn;
  let now_txn = Mvcc.begin_txn db in
  check_str_opt "present unaffected" (Some "v3") (Mvcc.read db now_txn "x")

let test_time_travel_snapshot_zero () =
  let db = Mvcc.create () in
  seed db [ ("x", "v1") ];
  let txn = Mvcc.begin_txn_at db ~snapshot:Timestamp.zero in
  check_str_opt "before any commit" None (Mvcc.read db txn "x")

let test_time_travel_future_rejected () =
  let db = Mvcc.create () in
  Alcotest.check_raises "future snapshot"
    (Invalid_argument "Mvcc.begin_txn_at: snapshot is in the future") (fun () ->
      ignore (Mvcc.begin_txn_at db ~snapshot:99))

let test_time_travel_write_conflicts () =
  (* Generalized SI: a writer from an old snapshot loses to any commit on
     its written keys after that snapshot... *)
  let db = Mvcc.create () in
  seed db [ ("x", "v1") ];
  let ts1 = Mvcc.latest_commit_ts db in
  seed db [ ("x", "v2") ];
  let stale = Mvcc.begin_txn_at db ~snapshot:ts1 in
  put db stale "x" "stale-write";
  (match Mvcc.commit db stale with
  | Mvcc.Aborted (Mvcc.Write_conflict "x") -> ()
  | _ -> Alcotest.fail "stale writer must lose FCW");
  (* ... but commits cleanly on untouched keys. *)
  let ok = Mvcc.begin_txn_at db ~snapshot:ts1 in
  put db ok "y" "fine";
  match Mvcc.commit db ok with
  | Mvcc.Committed _ -> ()
  | Mvcc.Aborted _ -> Alcotest.fail "non-conflicting old-snapshot write must commit"

(* --- Maintenance: vacuum and backup --------------------------------------------------- *)

let test_vacuum_reclaims_old_versions () =
  let db = Mvcc.create () in
  for i = 1 to 5 do
    seed db [ ("x", string_of_int i) ]
  done;
  check_int "five versions" 5 (Mvcc.version_count db);
  let cut = Mvcc.latest_commit_ts db in
  let reclaimed = Mvcc.vacuum db ~before:cut in
  check_int "four reclaimed" 4 reclaimed;
  check_int "one version left" 1 (Mvcc.version_count db);
  let txn = Mvcc.begin_txn db in
  check_str_opt "latest value intact" (Some "5") (Mvcc.read db txn "x")

let test_vacuum_preserves_recent_snapshots () =
  let db = Mvcc.create () in
  seed db [ ("x", "1") ];
  let keep = Mvcc.latest_commit_ts db in
  seed db [ ("x", "2") ];
  seed db [ ("x", "3") ];
  ignore (Mvcc.vacuum db ~before:keep);
  check_str_opt "snapshot at cut intact" (Some "1") (Mvcc.read_at db keep "x");
  check_str_opt "later snapshots intact" (Some "3")
    (Mvcc.read_at db (Mvcc.latest_commit_ts db) "x")

let test_vacuum_noop_when_single_version () =
  let db = Mvcc.create () in
  seed db [ ("x", "1"); ("y", "2") ];
  check_int "nothing reclaimed" 0
    (Mvcc.vacuum db ~before:(Mvcc.latest_commit_ts db))

let test_serialize_restore_roundtrip () =
  let db = Mvcc.create () in
  seed db [ ("a", "1"); ("b", "two"); ("c", "3:with;delims") ];
  seed db [ ("a", "updated") ];
  let txn = Mvcc.begin_txn db in
  Mvcc.write db txn "b" None;
  (match Mvcc.commit db txn with Mvcc.Committed _ -> () | _ -> assert false);
  let restored = Mvcc.restore (Mvcc.serialize db) in
  Alcotest.(check (list (pair string string)))
    "restored state equals source"
    (Mvcc.committed_state db)
    (Mvcc.committed_state restored);
  check_int "one initial commit" 1 (Mvcc.commit_count restored)

let test_serialize_empty () =
  let db = Mvcc.create () in
  let restored = Mvcc.restore (Mvcc.serialize db) in
  Alcotest.(check (list (pair string string))) "empty state" []
    (Mvcc.committed_state restored)

let test_restore_garbage () =
  List.iter
    (fun garbage ->
      match Mvcc.restore garbage with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail ("restored garbage: " ^ garbage))
    [ "zzz"; "2;1:a"; "-1;"; "1;1:a999:x"; "0;extra" ]

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialize/restore roundtrips committed state"
    ~count:200
    QCheck.(make Gen.(list_size (int_range 0 8) gen_txn_writes))
    (fun txns ->
      let db = Mvcc.create () in
      List.iter
        (fun writes ->
          let t = Mvcc.begin_txn db in
          List.iter (fun (k, v) -> Mvcc.write db t k v) writes;
          ignore (Mvcc.commit db t))
        txns;
      Mvcc.committed_state (Mvcc.restore (Mvcc.serialize db))
      = Mvcc.committed_state db)

let test_wal_pp_entries () =
  let render e = Format.asprintf "%a" Wal.pp_entry e in
  Alcotest.(check string) "start" "start(T1)@5" (render (Wal.Start { txn = 1; ts = 5 }));
  Alcotest.(check string) "update" "update(T1, x := 1)"
    (render (Wal.Update { txn = 1; update = { Wal.key = "x"; value = Some "1" } }));
  Alcotest.(check string) "delete" "update(T1, x := <delete>)"
    (render (Wal.Update { txn = 1; update = { Wal.key = "x"; value = None } }));
  Alcotest.(check string) "commit" "commit(T1)@9" (render (Wal.Commit { txn = 1; ts = 9 }));
  Alcotest.(check string) "abort" "abort(T1)" (render (Wal.Abort { txn = 1 }))

let test_row_pp () =
  let text = Format.asprintf "%a" Row.pp [ ("a", Row.Int 1); ("b", Row.Bool true) ] in
  Alcotest.(check string) "row rendering" "{a = 1; b = true}" text

(* --- Row codec ---------------------------------------------------------------------- *)

let sample_row =
  [
    ("id", Row.Int 42);
    ("title", Row.Text "lazy replication; with \"quotes\" and 12:34 colons");
    ("price", Row.Float 30.25);
    ("negative", Row.Float (-1.5e-3));
    ("available", Row.Bool true);
    ("sold_out", Row.Bool false);
    ("empty", Row.Text "");
  ]

let test_row_roundtrip () =
  check_bool "roundtrip equality" true
    (Row.equal sample_row (Row.decode (Row.encode sample_row)))

let test_row_accessors () =
  check_int "int" 42 (Row.int_exn sample_row "id");
  Alcotest.(check (float 0.)) "float" 30.25 (Row.float_exn sample_row "price");
  check_bool "bool" true (Row.bool_exn sample_row "available");
  Alcotest.(check string) "text" "" (Row.text_exn sample_row "empty");
  check_bool "missing field" true (Row.find sample_row "nope" = None)

let test_row_accessor_type_errors () =
  Alcotest.check_raises "wrong type" Not_found (fun () ->
      ignore (Row.int_exn sample_row "title"))

let test_row_set () =
  let row = Row.set sample_row "id" (Row.Int 7) in
  check_int "replaced" 7 (Row.int_exn row "id");
  let row = Row.set row "new_field" (Row.Text "x") in
  Alcotest.(check string) "added" "x" (Row.text_exn row "new_field")

let test_row_decode_garbage () =
  List.iter
    (fun garbage ->
      match Row.decode garbage with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail ("decoded garbage: " ^ garbage))
    [ "zzz"; "2;i1:x"; "1;q1:a1:b"; "-1;"; "1;i2:ab3:xyz"; "0;trailing" ]

let row_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        map (fun i -> Row.Int i) int;
        map (fun f -> Row.Float f) (float_bound_inclusive 1e6);
        map (fun s -> Row.Text s) (string_size (int_range 0 20));
        map (fun b -> Row.Bool b) bool;
      ]
  in
  list_size (int_range 0 8)
    (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) scalar)

let prop_row_roundtrip =
  QCheck.Test.make ~name:"row codec roundtrips" ~count:500 (QCheck.make row_gen)
    (fun row -> Row.equal row (Row.decode (Row.encode row)))

(* --- Table -------------------------------------------------------------------------- *)

let book title price = [ ("title", Row.Text title); ("price", Row.Float price) ]

let test_table_crud () =
  let db = Mvcc.create () in
  let books = Table.define db ~name:"books" in
  let t1 = Mvcc.begin_txn db in
  Table.insert books t1 ~pk:"1" (book "sicp" 30.);
  Table.insert books t1 ~pk:"2" (book "taocp" 90.);
  ignore (commit_exn db t1);
  let t2 = Mvcc.begin_txn db in
  (match Table.get books t2 ~pk:"1" with
  | Some row -> Alcotest.(check string) "get" "sicp" (Row.text_exn row "title")
  | None -> Alcotest.fail "row missing");
  check_bool "update existing" true
    (Table.update books t2 ~pk:"2" (fun row ->
         Row.set row "price" (Row.Float 80.)));
  check_bool "update missing" false (Table.update books t2 ~pk:"99" Fun.id);
  Table.delete books t2 ~pk:"1";
  ignore (commit_exn db t2);
  let t3 = Mvcc.begin_txn db in
  check_bool "deleted" true (Table.get books t3 ~pk:"1" = None);
  Alcotest.(check (float 0.))
    "updated price" 80.
    (Row.float_exn (Option.get (Table.get books t3 ~pk:"2")) "price")

let test_table_scan_snapshot () =
  let db = Mvcc.create () in
  let books = Table.define db ~name:"books" in
  let t1 = Mvcc.begin_txn db in
  Table.insert books t1 ~pk:"1" (book "a" 10.);
  Table.insert books t1 ~pk:"2" (book "b" 20.);
  ignore (commit_exn db t1);
  let reader = Mvcc.begin_txn db in
  (* A later insert must stay invisible to the running scan (no phantom
     within the snapshot). *)
  let t2 = Mvcc.begin_txn db in
  Table.insert books t2 ~pk:"3" (book "c" 30.);
  ignore (commit_exn db t2);
  let rows = Table.scan books reader ~where:(fun _ -> true) in
  check_int "scan sees snapshot only" 2 (List.length rows);
  let cheap =
    Table.scan books reader ~where:(fun r -> Row.float_exn r "price" < 15.)
  in
  check_int "predicate scan" 1 (List.length cheap);
  check_int "count agrees" 1
    (Table.count books reader ~where:(fun r -> Row.float_exn r "price" < 15.))

let test_table_scan_sees_own_inserts () =
  let db = Mvcc.create () in
  let books = Table.define db ~name:"books" in
  let txn = Mvcc.begin_txn db in
  Table.insert books txn ~pk:"1" (book "mine" 5.);
  let rows = Table.scan books txn ~where:(fun _ -> true) in
  check_int "own insert in scan" 1 (List.length rows)

let test_table_isolation_between_tables () =
  let db = Mvcc.create () in
  let books = Table.define db ~name:"books" in
  let orders = Table.define db ~name:"orders" in
  let txn = Mvcc.begin_txn db in
  Table.insert books txn ~pk:"1" (book "a" 1.);
  Table.insert orders txn ~pk:"1" [ ("qty", Row.Int 2) ];
  ignore (commit_exn db txn);
  let reader = Mvcc.begin_txn db in
  check_int "books scan" 1
    (List.length (Table.scan books reader ~where:(fun _ -> true)));
  check_int "orders scan" 1
    (List.length (Table.scan orders reader ~where:(fun _ -> true)))

(* --- Secondary indexes ------------------------------------------------------------------ *)

let priced title price =
  [ ("title", Row.Text title); ("price", Row.Int price) ]

let test_index_lookup_basic () =
  let db = Mvcc.create () in
  let books = Table.define ~indexes:[ "price" ] db ~name:"books" in
  let t1 = Mvcc.begin_txn db in
  Table.insert books t1 ~pk:"1" (priced "a" 10);
  Table.insert books t1 ~pk:"2" (priced "b" 20);
  Table.insert books t1 ~pk:"3" (priced "c" 10);
  ignore (commit_exn db t1);
  let reader = Mvcc.begin_txn db in
  let cheap = Table.lookup books reader ~field:"price" ~value:(Row.Int 10) in
  Alcotest.(check (list string)) "index finds both" [ "1"; "3" ]
    (List.map fst cheap);
  check_int "single match" 1
    (List.length (Table.lookup books reader ~field:"price" ~value:(Row.Int 20)));
  check_int "no match" 0
    (List.length (Table.lookup books reader ~field:"price" ~value:(Row.Int 99)))

let test_index_follows_updates () =
  let db = Mvcc.create () in
  let books = Table.define ~indexes:[ "price" ] db ~name:"books" in
  let t1 = Mvcc.begin_txn db in
  Table.insert books t1 ~pk:"1" (priced "a" 10);
  ignore (commit_exn db t1);
  let t2 = Mvcc.begin_txn db in
  ignore (Table.update books t2 ~pk:"1" (fun row -> Row.set row "price" (Row.Int 25)));
  ignore (commit_exn db t2);
  let reader = Mvcc.begin_txn db in
  check_int "old entry gone" 0
    (List.length (Table.lookup books reader ~field:"price" ~value:(Row.Int 10)));
  check_int "new entry present" 1
    (List.length (Table.lookup books reader ~field:"price" ~value:(Row.Int 25)))

let test_index_follows_deletes () =
  let db = Mvcc.create () in
  let books = Table.define ~indexes:[ "price" ] db ~name:"books" in
  let t1 = Mvcc.begin_txn db in
  Table.insert books t1 ~pk:"1" (priced "a" 10);
  ignore (commit_exn db t1);
  let t2 = Mvcc.begin_txn db in
  Table.delete books t2 ~pk:"1";
  ignore (commit_exn db t2);
  let reader = Mvcc.begin_txn db in
  check_int "entry removed with row" 0
    (List.length (Table.lookup books reader ~field:"price" ~value:(Row.Int 10)))

let test_index_snapshot_isolation () =
  let db = Mvcc.create () in
  let books = Table.define ~indexes:[ "price" ] db ~name:"books" in
  let t1 = Mvcc.begin_txn db in
  Table.insert books t1 ~pk:"1" (priced "a" 10);
  ignore (commit_exn db t1);
  let reader = Mvcc.begin_txn db in
  (* Concurrent re-pricing is invisible to the running snapshot. *)
  let t2 = Mvcc.begin_txn db in
  ignore (Table.update books t2 ~pk:"1" (fun row -> Row.set row "price" (Row.Int 99)));
  ignore (commit_exn db t2);
  check_int "reader still finds the old price" 1
    (List.length (Table.lookup books reader ~field:"price" ~value:(Row.Int 10)));
  let fresh = Mvcc.begin_txn db in
  check_int "fresh snapshot sees new price" 1
    (List.length (Table.lookup books fresh ~field:"price" ~value:(Row.Int 99)))

let test_index_sees_own_writes () =
  let db = Mvcc.create () in
  let books = Table.define ~indexes:[ "price" ] db ~name:"books" in
  let txn = Mvcc.begin_txn db in
  Table.insert books txn ~pk:"1" (priced "a" 10);
  check_int "own insert visible in lookup" 1
    (List.length (Table.lookup books txn ~field:"price" ~value:(Row.Int 10)))

let test_index_unindexed_field_rejected () =
  let db = Mvcc.create () in
  let books = Table.define ~indexes:[ "price" ] db ~name:"books" in
  let txn = Mvcc.begin_txn db in
  Alcotest.check_raises "missing index"
    (Invalid_argument "Table.lookup: no index on books.title") (fun () ->
      ignore (Table.lookup books txn ~field:"title" ~value:(Row.Text "a")))

let test_index_key_injective_with_delimiters () =
  let db = Mvcc.create () in
  let tbl = Table.define ~indexes:[ "tag" ] db ~name:"notes" in
  let t1 = Mvcc.begin_txn db in
  Table.insert tbl t1 ~pk:"1" [ ("tag", Row.Text "a:b|c") ];
  Table.insert tbl t1 ~pk:"2" [ ("tag", Row.Text "a") ];
  ignore (commit_exn db t1);
  let reader = Mvcc.begin_txn db in
  Alcotest.(check (list string)) "tricky value isolated" [ "1" ]
    (List.map fst (Table.lookup tbl reader ~field:"tag" ~value:(Row.Text "a:b|c")));
  Alcotest.(check (list string)) "plain value isolated" [ "2" ]
    (List.map fst (Table.lookup tbl reader ~field:"tag" ~value:(Row.Text "a")))

(* Pinned repro (PR 6): stored Int, probed Float (and vice versa). SQL
   numeric equality is cross-type, so the index path must agree with a
   predicate scan using Row.scalar_compare — the old encoded-key
   verification silently dropped the other representation. *)
let test_index_cross_type_numeric () =
  let db = Mvcc.create () in
  let tbl = Table.define ~indexes:[ "v" ] db ~name:"t" in
  let t1 = Mvcc.begin_txn db in
  Table.insert tbl t1 ~pk:"i" [ ("v", Row.Int 7) ];
  Table.insert tbl t1 ~pk:"f" [ ("v", Row.Float 7.0) ];
  ignore (commit_exn db t1);
  let reader = Mvcc.begin_txn db in
  Alcotest.(check (list string))
    "Int probe finds both representations" [ "f"; "i" ]
    (List.map fst (Table.lookup tbl reader ~field:"v" ~value:(Row.Int 7)));
  Alcotest.(check (list string))
    "Float probe finds both representations" [ "f"; "i" ]
    (List.map fst (Table.lookup tbl reader ~field:"v" ~value:(Row.Float 7.0)))

let test_order_key_agrees_with_compare () =
  (* The order-preserving encoding must sort exactly like scalar_compare
     wherever the latter is defined, including the nasty floats and the
     delimiter bytes in text. *)
  let scalars =
    [
      Row.Int (-5); Row.Int 0; Row.Int 7; Row.Float (-12.5); Row.Float (-0.0);
      Row.Float 0.0; Row.Float 0.25; Row.Float 7.0; Row.Float 1e300;
      Row.Text ""; Row.Text "a"; Row.Text "a\x00b"; Row.Text "a\x01b";
      Row.Text "ab"; Row.Bool false; Row.Bool true;
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          match Row.scalar_compare a b with
          | None -> ()
          | Some c ->
            let ka = Row.order_key a and kb = Row.order_key b in
            check_int
              (Format.asprintf "order_key(%a) vs order_key(%a)" Row.pp_scalar a
                 Row.pp_scalar b)
              (compare c 0)
              (compare (String.compare ka kb) 0))
        scalars)
    scalars

let range_pks tbl reader ~lo ~hi =
  List.map fst (Table.range_lookup tbl reader ~field:"v" ~lo ~hi)

let test_range_lookup_semantics () =
  let db = Mvcc.create () in
  let tbl = Table.define ~indexes:[ "v" ] db ~name:"t" in
  let t1 = Mvcc.begin_txn db in
  Table.insert tbl t1 ~pk:"a" [ ("v", Row.Int 1) ];
  Table.insert tbl t1 ~pk:"b" [ ("v", Row.Float 2.5) ];
  Table.insert tbl t1 ~pk:"c" [ ("v", Row.Int 4) ];
  Table.insert tbl t1 ~pk:"d" [ ("v", Row.Text "x") ];
  Table.insert tbl t1 ~pk:"e" [ ("v", Row.Bool true) ];
  Table.insert tbl t1 ~pk:"f" [] (* no v at all *);
  ignore (commit_exn db t1);
  let reader = Mvcc.begin_txn db in
  Alcotest.(check (list string))
    "closed numeric interval, cross-type endpoints" [ "b"; "c" ]
    (range_pks tbl reader
       ~lo:(Some (Row.Float 2.0, true))
       ~hi:(Some (Row.Int 4, true)));
  Alcotest.(check (list string))
    "exclusive bounds drop the endpoints" [ "b" ]
    (range_pks tbl reader
       ~lo:(Some (Row.Int 1, false))
       ~hi:(Some (Row.Int 4, false)));
  Alcotest.(check (list string))
    "unbounded below stays within the numeric type band" [ "a"; "b" ]
    (range_pks tbl reader ~lo:None ~hi:(Some (Row.Float 2.5, true)));
  Alcotest.(check (list string))
    "unbounded above" [ "c" ]
    (range_pks tbl reader ~lo:(Some (Row.Int 3, true)) ~hi:None);
  Alcotest.(check (list string))
    "text range never matches numerics or bools" [ "d" ]
    (range_pks tbl reader ~lo:(Some (Row.Text "a", true)) ~hi:None);
  Alcotest.(check (list string))
    "empty interval" []
    (range_pks tbl reader
       ~lo:(Some (Row.Int 10, true))
       ~hi:(Some (Row.Int 4, true)))

let test_range_lookup_sees_own_writes () =
  let db = Mvcc.create () in
  let tbl = Table.define ~indexes:[ "v" ] db ~name:"t" in
  let t1 = Mvcc.begin_txn db in
  Table.insert tbl t1 ~pk:"committed" [ ("v", Row.Int 5) ];
  ignore (commit_exn db t1);
  let t2 = Mvcc.begin_txn db in
  Table.insert tbl t2 ~pk:"pending" [ ("v", Row.Int 6) ];
  Alcotest.(check (list string))
    "pending write visible in own range" [ "committed"; "pending" ]
    (range_pks tbl t2 ~lo:(Some (Row.Int 0, true)) ~hi:(Some (Row.Int 10, true)))

(* Budgeted-ops guard (PR 6): fold_keys / keys_from are seek-based, so
   enumerating a small prefix band of a large committed keyspace must not
   scan the whole table. A linear fold would visit ~10^9 keys here (10k
   folds x 100k keys); the budget is generous enough to never flake on a
   slow machine while still catching any O(n)-per-fold regression. *)
let test_prefix_seek_budget () =
  let db = Mvcc.create () in
  let txn = Mvcc.begin_txn db in
  for i = 0 to 99_999 do
    Mvcc.write db txn (Printf.sprintf "bulk:%06d" i) (Some "v")
  done;
  for i = 0 to 9 do
    Mvcc.write db txn (Printf.sprintf "needle:%d" i) (Some "v")
  done;
  ignore (commit_exn db txn);
  let t0 = Sys.time () in
  let found = ref 0 in
  for _ = 1 to 10_000 do
    found :=
      Mvcc.fold_keys db ~prefix:"needle:" ~init:0 ~f:(fun acc _ -> acc + 1)
  done;
  let elapsed = Sys.time () -. t0 in
  check_int "prefix band enumerated" 10 !found;
  check_bool
    (Printf.sprintf "10k prefix folds over 100k keys in %.2fs cpu (budget 10s)"
       elapsed)
    true (elapsed < 10.)

(* Budgeted-ops guard (PR 6): reads at recent snapshots must stay O(1) in
   the length of a hot key's version chain. *)
let test_version_chain_read_budget () =
  let db = Mvcc.create () in
  for i = 1 to 50_000 do
    let txn = Mvcc.begin_txn db in
    Mvcc.write db txn "hot" (Some (string_of_int i));
    ignore (Mvcc.commit db txn)
  done;
  let t0 = Sys.time () in
  for _ = 1 to 100_000 do
    let txn = Mvcc.begin_txn db in
    (match Mvcc.read db txn "hot" with
    | Some _ -> ()
    | None -> Alcotest.fail "hot key vanished");
    Mvcc.end_read db txn
  done;
  let elapsed = Sys.time () -. t0 in
  check_bool
    (Printf.sprintf
       "100k snapshot reads of a 50k-version chain in %.2fs cpu (budget 10s)"
       elapsed)
    true (elapsed < 10.)

(* Lookup always agrees with a full predicate scan. *)
let prop_index_agrees_with_scan =
  let gen =
    QCheck.Gen.(list_size (int_range 0 20) (pair (int_range 0 5) (int_range 0 3)))
  in
  QCheck.Test.make ~name:"index lookup = predicate scan" ~count:200
    (QCheck.make gen) (fun ops ->
      let db = Mvcc.create () in
      let tbl = Table.define ~indexes:[ "grp" ] db ~name:"t" in
      List.iter
        (fun (pk, grp) ->
          let txn = Mvcc.begin_txn db in
          if grp = 3 then Table.delete tbl txn ~pk:(string_of_int pk)
          else
            Table.insert tbl txn ~pk:(string_of_int pk)
              [ ("grp", Row.Int grp) ];
          ignore (Mvcc.commit db txn))
        ops;
      let reader = Mvcc.begin_txn db in
      List.for_all
        (fun grp ->
          let via_index =
            Table.lookup tbl reader ~field:"grp" ~value:(Row.Int grp)
          in
          let via_scan =
            Table.scan tbl reader ~where:(fun row ->
                Row.find row "grp" = Some (Row.Int grp))
          in
          via_index = via_scan)
        [ 0; 1; 2 ])

(* --- Suite ---------------------------------------------------------------------------- *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lsr_storage"
    [
      ( "timestamp",
        [ Alcotest.test_case "monotonic" `Quick test_timestamp_monotonic ] );
      ( "wal",
        [
          Alcotest.test_case "append/read" `Quick test_wal_append_read;
          Alcotest.test_case "entry bounds" `Quick test_wal_entry_bounds;
          Alcotest.test_case "truncate" `Quick test_wal_truncate;
          Alcotest.test_case "read_from below truncation raises" `Quick
            test_wal_read_from_below_truncation_raises;
          Alcotest.test_case "read_from at length" `Quick
            test_wal_read_from_at_length;
          QCheck_alcotest.to_alcotest prop_wal_truncate_preserves_suffix;
          Alcotest.test_case "pp entries" `Quick test_wal_pp_entries;
          Alcotest.test_case "row pp" `Quick test_row_pp;
        ] );
      ( "mvcc-semantics",
        [
          Alcotest.test_case "visibility of committed" `Quick
            test_visibility_committed_before_start;
          Alcotest.test_case "snapshot ignores later commits" `Quick
            test_snapshot_ignores_later_commit;
          Alcotest.test_case "read your writes" `Quick test_read_your_writes;
          Alcotest.test_case "delete tombstone" `Quick test_delete_tombstone;
          Alcotest.test_case "first committer wins" `Quick
            test_first_committer_wins;
          Alcotest.test_case "sequential overwrite ok" `Quick
            test_sequential_overwrite_allowed;
          Alcotest.test_case "disjoint concurrent commits" `Quick
            test_disjoint_concurrent_commits;
          Alcotest.test_case "write skew possible (P5)" `Quick
            test_write_skew_possible;
          Alcotest.test_case "lost update prevented (P4)" `Quick
            test_lost_update_prevented;
          Alcotest.test_case "abort discards" `Quick test_abort_discards;
          Alcotest.test_case "ops after end raise" `Quick
            test_operations_after_end_raise;
          Alcotest.test_case "end_read rejects writers" `Quick
            test_end_read_rejects_writers;
          Alcotest.test_case "end_read creates no state" `Quick
            test_end_read_creates_no_state;
          Alcotest.test_case "last write wins in txn" `Quick
            test_last_write_wins_within_txn;
        ] );
      ( "mvcc-states",
        [
          Alcotest.test_case "state sequence S^i" `Quick test_state_sequence;
          Alcotest.test_case "nth_state bounds" `Quick test_nth_state_bounds;
          Alcotest.test_case "read_at" `Quick test_read_at;
          Alcotest.test_case "commit history ordered" `Quick
            test_commit_history_ordered;
          Alcotest.test_case "fold_keys prefix" `Quick test_fold_keys_prefix;
          Alcotest.test_case "wal records txn" `Quick test_wal_records_transaction;
          Alcotest.test_case "wal records abort" `Quick test_wal_records_abort;
        ]
        @ qsuite
            [
              prop_fcw_exclusive;
              prop_snapshot_stability;
              prop_state_replay;
              prop_nth_state_prefix_monotone;
            ] );
      ( "time-travel",
        [
          Alcotest.test_case "reads history" `Quick test_time_travel_reads_history;
          Alcotest.test_case "snapshot zero" `Quick test_time_travel_snapshot_zero;
          Alcotest.test_case "future rejected" `Quick
            test_time_travel_future_rejected;
          Alcotest.test_case "generalized-SI write conflicts" `Quick
            test_time_travel_write_conflicts;
        ] );
      ( "mvcc-maintenance",
        [
          Alcotest.test_case "vacuum reclaims" `Quick
            test_vacuum_reclaims_old_versions;
          Alcotest.test_case "vacuum preserves recent" `Quick
            test_vacuum_preserves_recent_snapshots;
          Alcotest.test_case "vacuum noop" `Quick test_vacuum_noop_when_single_version;
          Alcotest.test_case "serialize/restore roundtrip" `Quick
            test_serialize_restore_roundtrip;
          Alcotest.test_case "serialize empty" `Quick test_serialize_empty;
          Alcotest.test_case "restore garbage" `Quick test_restore_garbage;
        ]
        @ qsuite [ prop_serialize_roundtrip ] );
      ( "row",
        [
          Alcotest.test_case "roundtrip" `Quick test_row_roundtrip;
          Alcotest.test_case "accessors" `Quick test_row_accessors;
          Alcotest.test_case "accessor type errors" `Quick
            test_row_accessor_type_errors;
          Alcotest.test_case "set" `Quick test_row_set;
          Alcotest.test_case "decode garbage" `Quick test_row_decode_garbage;
        ]
        @ qsuite [ prop_row_roundtrip ] );
      ( "index",
        [
          Alcotest.test_case "lookup basic" `Quick test_index_lookup_basic;
          Alcotest.test_case "follows updates" `Quick test_index_follows_updates;
          Alcotest.test_case "follows deletes" `Quick test_index_follows_deletes;
          Alcotest.test_case "snapshot isolation" `Quick
            test_index_snapshot_isolation;
          Alcotest.test_case "sees own writes" `Quick test_index_sees_own_writes;
          Alcotest.test_case "unindexed field rejected" `Quick
            test_index_unindexed_field_rejected;
          Alcotest.test_case "delimiter injectivity" `Quick
            test_index_key_injective_with_delimiters;
          Alcotest.test_case "cross-type numeric equality" `Quick
            test_index_cross_type_numeric;
          Alcotest.test_case "order_key agrees with scalar_compare" `Quick
            test_order_key_agrees_with_compare;
          Alcotest.test_case "range_lookup semantics" `Quick
            test_range_lookup_semantics;
          Alcotest.test_case "range_lookup sees own writes" `Quick
            test_range_lookup_sees_own_writes;
        ]
        @ qsuite [ prop_index_agrees_with_scan ] );
      ( "budget",
        [
          Alcotest.test_case "prefix seek over 100k keys" `Slow
            test_prefix_seek_budget;
          Alcotest.test_case "50k-version chain reads" `Slow
            test_version_chain_read_budget;
        ] );
      ( "table",
        [
          Alcotest.test_case "crud" `Quick test_table_crud;
          Alcotest.test_case "scan snapshot (no phantoms)" `Quick
            test_table_scan_snapshot;
          Alcotest.test_case "scan sees own inserts" `Quick
            test_table_scan_sees_own_inserts;
          Alcotest.test_case "table isolation" `Quick
            test_table_isolation_between_tables;
        ] );
    ]
