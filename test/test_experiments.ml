(* Tests for the experiment layer (lsr_experiments): metrics reduction, the
   simulated replicated system, its validation against the checker, the
   ablation switches, and result rendering. Simulation runs here use small
   configurations so the suite stays fast. *)

open Lsr_core
open Lsr_workload
open Lsr_experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Metrics ---------------------------------------------------------------- *)

let test_metrics_warmup_filtering () =
  let m = Metrics.create ~warmup:100. ~cap:3. in
  Metrics.note_completion m ~now:50. ~response_time:1. ~is_update:false;
  check_int "warm-up completions ignored" 0 (Metrics.fast_completions m);
  Metrics.note_completion m ~now:150. ~response_time:1. ~is_update:false;
  Metrics.note_completion m ~now:160. ~response_time:5. ~is_update:true;
  check_int "only fast ones counted" 1 (Metrics.fast_completions m);
  check_int "read rt recorded" 1 (Lsr_sim.Stat.count (Metrics.read_rt m));
  check_int "update rt recorded" 1 (Lsr_sim.Stat.count (Metrics.update_rt m))

let test_metrics_counters () =
  let m = Metrics.create ~warmup:0. ~cap:3. in
  Metrics.note_abort m ~now:1.;
  Metrics.note_block m ~now:1. ~wait:2.5;
  Metrics.note_refresh m ~now:1. ~staleness:7.;
  Metrics.note_wasted_ops m ~now:1. 4;
  check_int "aborts" 1 (Metrics.aborts m);
  check_int "blocked" 1 (Metrics.blocked_reads m);
  Alcotest.(check (float 1e-9)) "wait" 2.5 (Lsr_sim.Stat.mean (Metrics.block_wait m));
  Alcotest.(check (float 1e-9)) "staleness" 7.
    (Lsr_sim.Stat.mean (Metrics.refresh_staleness m));
  check_int "refreshes" 1 (Metrics.refresh_commits m);
  check_int "wasted" 4 (Metrics.wasted_ops m)

(* --- Sim_system --------------------------------------------------------------- *)

let tiny_params =
  {
    Params.default with
    Params.num_secondaries = 2;
    clients_per_secondary = 5;
    warmup = 20.;
    duration = 180.;
    propagation_delay = 5.;
  }

let run ?(params = tiny_params) ?(seed = 11) ?(record = false) ?(serial = false)
    ?(ship = false) guarantee =
  Sim_system.run
    {
      (Sim_system.config params guarantee ~seed) with
      Sim_system.record_history = record;
      serial_refresh = serial;
      ship_aborted = ship;
    }

let test_sim_produces_work () =
  let o = run Session.Weak in
  check_bool "transactions completed" true (o.Sim_system.reads_completed > 50);
  check_bool "updates completed" true (o.Sim_system.updates_completed > 5);
  check_bool "refreshes happened" true (o.Sim_system.refresh_commits > 5);
  check_bool "throughput positive" true (o.Sim_system.throughput_fast > 0.)

let test_sim_all_guarantees_validate () =
  List.iter
    (fun g ->
      let o = run ~record:true g in
      Alcotest.(check (list string))
        (Session.guarantee_name g ^ " checker clean")
        [] o.Sim_system.check_errors)
    Session.all_guarantees

let test_sim_weak_never_blocks () =
  let o = run Session.Weak in
  check_int "no blocked reads under weak" 0 o.Sim_system.blocked_reads

let test_sim_blocking_ordering () =
  (* Strong blocks at least as much as session, which blocks more than
     weak (zero). *)
  let weak = run Session.Weak in
  let session = run Session.Strong_session in
  let strong = run Session.Strong in
  check_bool "session blocks some reads" true (session.Sim_system.blocked_reads > 0);
  check_bool "strong blocks more" true
    (strong.Sim_system.blocked_reads >= session.Sim_system.blocked_reads);
  check_int "weak blocks none" 0 weak.Sim_system.blocked_reads

let test_sim_strong_read_rt_dominates () =
  let weak = run Session.Weak in
  let strong = run Session.Strong in
  check_bool "strong SI read latency much larger" true
    (strong.Sim_system.read_rt_mean > 2. *. weak.Sim_system.read_rt_mean)

let test_sim_deterministic () =
  let a = run ~seed:99 Session.Strong_session in
  let b = run ~seed:99 Session.Strong_session in
  check_bool "same seed, identical outcome" true
    (a.Sim_system.throughput_fast = b.Sim_system.throughput_fast
    && a.Sim_system.read_rt_mean = b.Sim_system.read_rt_mean
    && a.Sim_system.reads_completed = b.Sim_system.reads_completed);
  let c = run ~seed:100 Session.Strong_session in
  check_bool "different seed, different run" true
    (a.Sim_system.reads_completed <> c.Sim_system.reads_completed)

let test_sim_serial_refresh_staler () =
  (* Serial refresh cannot be fresher than concurrent applicators. *)
  let conc = run ~seed:5 Session.Strong_session in
  let serial = run ~seed:5 ~serial:true Session.Strong_session in
  check_bool "serial refresh staleness >= concurrent" true
    (serial.Sim_system.refresh_staleness_mean
    >= conc.Sim_system.refresh_staleness_mean -. 0.5);
  let o = run ~record:true ~serial:true Session.Strong_session in
  Alcotest.(check (list string)) "serial refresh still correct" []
    o.Sim_system.check_errors

let test_sim_ship_aborted_wastes_work () =
  let params = { tiny_params with Params.abort_prob = 0.2 } in
  let eager = run ~params ~ship:true Session.Weak in
  let lazy_ = run ~params Session.Weak in
  check_bool "eager mode executes wasted ops" true (eager.Sim_system.wasted_ops > 0);
  check_int "commit-time mode wastes nothing" 0 lazy_.Sim_system.wasted_ops

let test_sim_ship_aborted_still_correct () =
  let params = { tiny_params with Params.abort_prob = 0.15 } in
  let o = run ~params ~ship:true ~record:true Session.Strong_session in
  Alcotest.(check (list string)) "eager ablation passes checker" []
    o.Sim_system.check_errors

let test_sim_utilization_bounds () =
  let o = run Session.Weak in
  check_bool "primary utilization in [0,1]" true
    (o.Sim_system.primary_utilization >= 0. && o.Sim_system.primary_utilization <= 1.);
  check_bool "secondary utilization in [0,1]" true
    (o.Sim_system.secondary_utilization >= 0.
    && o.Sim_system.secondary_utilization <= 1.)

let test_sim_staleness_reflects_delay () =
  (* Mean staleness is at least of the order of half the propagation cycle. *)
  let o = run Session.Weak in
  check_bool "staleness >= 1s with 5s cycles" true
    (o.Sim_system.refresh_staleness_mean >= 1.)

let test_sim_pcsi_validates () =
  let o = run ~record:true Session.Prefix_consistent in
  Alcotest.(check (list string)) "PCSI run checker clean" []
    o.Sim_system.check_errors;
  check_bool "PCSI blocks fewer reads than strong session" true
    (o.Sim_system.blocked_reads
    <= (run Session.Strong_session).Sim_system.blocked_reads)

let run_migrating ?(record = false) guarantee =
  (* Strong jitter + always-migrating reads: the configuration where the
     read floor demonstrably matters (replicas diverge by many seconds and
     every read may land on a staler copy than the one before). *)
  let params = { tiny_params with Params.propagation_jitter = 20. } in
  Sim_system.run
    {
      (Sim_system.config params guarantee ~seed:31) with
      Sim_system.migrate_prob = 1.0;
      record_history = record;
    }

let test_sim_migration_validates () =
  List.iter
    (fun g ->
      let o = run_migrating ~record:true g in
      Alcotest.(check (list string))
        (Session.guarantee_name g ^ " migrating run clean")
        [] o.Sim_system.check_errors)
    [ Session.Strong_session; Session.Prefix_consistent; Session.Weak ]

let test_sim_migration_pcsi_waits_less () =
  (* Under migration, strong session SI's read floor forces extra waits that
     PCSI does not require. *)
  let session = run_migrating Session.Strong_session in
  let pcsi = run_migrating Session.Prefix_consistent in
  check_bool "PCSI blocks fewer migrated reads" true
    (pcsi.Sim_system.blocked_reads < session.Sim_system.blocked_reads)

let test_sim_contention_fcw_aborts () =
  (* Skewed keys make the real first-committer-wins rule fire at the
     primary; the run must still satisfy its guarantee and completeness
     (abort records propagate, secondaries discard the work). *)
  let params =
    {
      tiny_params with
      Params.key_skew = 1.2;
      key_space = 50;
      clients_per_secondary = 10;
      abort_prob = 0. (* isolate real conflicts from forced aborts *);
    }
  in
  let o = run ~params ~record:true Session.Strong_session in
  check_bool "real conflicts occurred" true (o.Sim_system.fcw_aborts > 0);
  check_int "all aborts are conflicts" o.Sim_system.fcw_aborts
    o.Sim_system.aborts;
  Alcotest.(check (list string)) "contended run still correct" []
    o.Sim_system.check_errors

let test_sim_uniform_has_no_fcw () =
  let params = { tiny_params with Params.abort_prob = 0. } in
  let o = run ~params Session.Weak in
  check_int "no conflicts with 100k uniform keys" 0 o.Sim_system.fcw_aborts

let test_sim_config_defaults () =
  let cfg = Sim_system.config tiny_params Session.Weak ~seed:3 in
  check_bool "no recording by default" false cfg.Sim_system.record_history;
  check_bool "no serial refresh by default" false cfg.Sim_system.serial_refresh;
  check_bool "no eager aborts by default" false cfg.Sim_system.ship_aborted;
  check_bool "no monitor by default" false
    (Monitor.enabled cfg.Sim_system.monitor);
  Alcotest.(check (float 0.)) "no migration by default" 0.
    cfg.Sim_system.migrate_prob

(* --- Figures / Report rendering ------------------------------------------------- *)

let synthetic_figure =
  {
    Figures.id = "figX";
    title = "Synthetic";
    xlabel = "x";
    ylabel = "y";
    series =
      [
        {
          Figures.label = "a";
          points =
            [
              { Figures.x = 1.; interval = { Lsr_stats.Confidence.mean = 10.; half_width = 0.5; n = 3 } };
              { Figures.x = 2.; interval = { Lsr_stats.Confidence.mean = 20.; half_width = 1.; n = 3 } };
            ];
        };
        {
          Figures.label = "b";
          points =
            [
              { Figures.x = 1.; interval = { Lsr_stats.Confidence.mean = 5.; half_width = 0.; n = 1 } };
              { Figures.x = 2.; interval = { Lsr_stats.Confidence.mean = 6.; half_width = 0.; n = 1 } };
            ];
        };
      ];
    notes = [ "a synthetic note" ];
  }

let test_report_render () =
  let rendered = Report.render_figure synthetic_figure in
  let contains needle =
    let n = String.length needle and h = String.length rendered in
    let rec scan i = i + n <= h && (String.sub rendered i n = needle || scan (i + 1)) in
    scan 0
  in
  check_bool "has id" true (contains "figX");
  check_bool "has series label" true (contains "a");
  check_bool "has interval" true (contains "10 ±0.50");
  check_bool "has note" true (contains "synthetic note")

let test_report_csv () =
  let csv = Report.csv_of_figure synthetic_figure in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "x,a mean,a ci95,b mean,b ci95" (List.hd lines);
  Alcotest.(check string) "first row" "1,10,0.5,5,0" (List.nth lines 1)

let test_report_write_csv () =
  let dir = Filename.temp_file "lsr" "" in
  Sys.remove dir;
  let path = Report.write_csv ~dir synthetic_figure in
  check_bool "file exists" true (Sys.file_exists path);
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Alcotest.(check string) "content written" "x,a mean,a ci95,b mean,b ci95" first;
  Sys.remove path;
  Sys.rmdir dir

let test_report_nonfinite_clamped () =
  (* A series with no samples can surface non-finite interval values; tables
     render them as "n/a" and CSV as empty cells, never "inf"/"nan". *)
  let broken =
    {
      synthetic_figure with
      Figures.series =
        [
          {
            Figures.label = "empty";
            points =
              [
                {
                  Figures.x = 1.;
                  interval =
                    {
                      Lsr_stats.Confidence.mean = infinity;
                      half_width = nan;
                      n = 0;
                    };
                };
              ];
          };
        ];
    }
  in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec scan i =
      i + n <= h && (String.sub haystack i n = needle || scan (i + 1))
    in
    scan 0
  in
  let rendered = Report.render_figure broken in
  check_bool "table clamps to n/a" true (contains "n/a" rendered);
  check_bool "table has no inf" false (contains "inf" rendered);
  let csv = Report.csv_of_figure broken in
  check_bool "csv has no inf" false (contains "inf" csv);
  check_bool "csv has no nan" false (contains "nan" csv);
  Alcotest.(check string) "csv row has empty cells" "1,,"
    (List.nth (String.split_on_char '\n' (String.trim csv)) 1)

(* --- Observability ------------------------------------------------------------ *)

let obs_run ~seed =
  let obs = Lsr_obs.Obs.create () in
  let o =
    Sim_system.run
      { (Sim_system.config tiny_params Session.Strong_session ~seed) with obs }
  in
  (o, obs)

let test_sim_obs_does_not_perturb () =
  (* Attaching an enabled registry must not change simulation outcomes: the
     observed run and the blind run are the same run. *)
  let observed, obs = obs_run ~seed:11 in
  let blind = run Session.Strong_session in
  check_bool "same outcome with observation on" true
    (observed.Sim_system.throughput_fast = blind.Sim_system.throughput_fast
    && observed.Sim_system.reads_completed = blind.Sim_system.reads_completed
    && observed.Sim_system.updates_completed
       = blind.Sim_system.updates_completed
    && observed.Sim_system.refresh_commits = blind.Sim_system.refresh_commits);
  check_bool "trace recorded spans" true (Lsr_obs.Obs.event_count obs > 0)

let test_sim_obs_counters_track_outcome () =
  let o, obs = obs_run ~seed:23 in
  let count name = Lsr_obs.Obs.count (Lsr_obs.Obs.counter obs name) in
  (* refresh.commits counts all refresh commits including warmup, so it can
     only exceed the outcome's measured-window figure. *)
  check_bool "refresh commits consistent" true
    (count "refresh.commits" >= o.Sim_system.refresh_commits);
  check_bool "records were shipped" true
    (count "propagation.records_shipped" > 0);
  check_int "fcw aborts agree (uniform keys: none)" o.Sim_system.fcw_aborts
    (count "client.fcw_aborts")

let lineage_run ~seed =
  let lineage = Lsr_obs.Lineage.create () in
  let o =
    Sim_system.run
      {
        (Sim_system.config tiny_params Session.Strong_session ~seed) with
        Sim_system.record_history = true;
        lineage;
      }
  in
  (o, lineage)

let test_sim_lineage_does_not_perturb () =
  (* Attaching a lineage sink must not change the run: same seed with and
     without the sink produces the same outcome and a clean checked
     history either way. *)
  let traced, lineage = lineage_run ~seed:11 in
  let blind = run ~record:true Session.Strong_session in
  check_bool "identical outcome with lineage attached" true
    (traced.Sim_system.throughput_fast = blind.Sim_system.throughput_fast
    && traced.Sim_system.reads_completed = blind.Sim_system.reads_completed
    && traced.Sim_system.updates_completed = blind.Sim_system.updates_completed
    && traced.Sim_system.refresh_commits = blind.Sim_system.refresh_commits
    && traced.Sim_system.read_rt_mean = blind.Sim_system.read_rt_mean
    && traced.Sim_system.read_age_p95 = blind.Sim_system.read_age_p95
    && traced.Sim_system.read_missed_mean = blind.Sim_system.read_missed_mean
    && traced.Sim_system.check_errors = blind.Sim_system.check_errors);
  check_bool "lineage recorded events" true
    (Lsr_obs.Lineage.event_count lineage > 0);
  check_bool "lineage saw primary commits" true
    (Lsr_obs.Lineage.commit_count lineage > 0)

let test_sim_lineage_exports_deterministic () =
  (* Same seed, fresh sinks: the lineage export and the lag report derived
     from it are byte-identical; a different seed diverges. *)
  let _, a = lineage_run ~seed:11 in
  let _, b = lineage_run ~seed:11 in
  let _, c = lineage_run ~seed:12 in
  Alcotest.(check string)
    "lineage bytes identical" (Lsr_obs.Lineage.json a)
    (Lsr_obs.Lineage.json b);
  Alcotest.(check string)
    "lag report bytes identical"
    (Lag_report.json_string (Lag_report.of_lineage a))
    (Lag_report.json_string (Lag_report.of_lineage b));
  check_bool "different seed, different lineage" true
    (Lsr_obs.Lineage.json a <> Lsr_obs.Lineage.json c)

let test_lag_report_rows () =
  let _, lineage = lineage_run ~seed:11 in
  let rows = Lag_report.of_lineage lineage in
  check_int "one row per secondary" 2 (List.length rows);
  check_bool "rows sorted by site" true
    (List.map (fun r -> r.Lag_report.site) rows
    = List.sort String.compare (List.map (fun r -> r.Lag_report.site) rows));
  List.iter
    (fun r ->
      check_bool "freshness samples recorded" true (r.Lag_report.reads > 0);
      check_bool "refreshes recorded" true (r.Lag_report.refreshes > 0);
      check_bool "age quantiles ordered" true
        (0. <= r.Lag_report.age_p50
        && r.Lag_report.age_p50 <= r.Lag_report.age_p95
        && r.Lag_report.age_p95 <= r.Lag_report.age_p99);
      check_bool "lag quantiles ordered" true
        (0. < r.Lag_report.lag_p50
        && r.Lag_report.lag_p50 <= r.Lag_report.lag_p95
        && r.Lag_report.lag_p95 <= r.Lag_report.lag_p99);
      check_bool "missed mean within max" true
        (0. <= r.Lag_report.missed_mean
        && r.Lag_report.missed_mean <= float_of_int r.Lag_report.missed_max))
    rows

let test_lag_report_empty_site () =
  (* A site that only ever read (zero refreshes) and one that only ever
     refreshed (zero reads) must still produce finite rows: explicit zero
     quantiles for the empty section, "-" cells in the table, and
     null-free JSON. *)
  let lineage = Lsr_obs.Lineage.create () in
  Lsr_obs.Lineage.sample_read lineage ~site:"readersite" ~snapshot:0;
  Lsr_obs.Lineage.emit lineage ~txn:1
    (Lsr_obs.Lineage.Primary_commit { commit_ts = 1; updates = 1 });
  Lsr_obs.Lineage.emit lineage ~site:"refreshsite" ~txn:1
    (Lsr_obs.Lineage.Refresh_committed { commit_ts = 1 });
  let rows = Lag_report.of_lineage lineage in
  check_int "two rows" 2 (List.length rows);
  let finite r =
    List.for_all Float.is_finite
      [
        r.Lag_report.age_p50; r.Lag_report.age_p95; r.Lag_report.age_p99;
        r.Lag_report.missed_mean; r.Lag_report.lag_p50; r.Lag_report.lag_p95;
        r.Lag_report.lag_p99;
      ]
  in
  List.iter (fun r -> check_bool "row finite" true (finite r)) rows;
  let row site = List.find (fun r -> r.Lag_report.site = site) rows in
  let ro = row "readersite" and rf = row "refreshsite" in
  check_int "reader site has no refreshes" 0 ro.Lag_report.refreshes;
  check_bool "empty lag section is zero" true
    (ro.Lag_report.lag_p50 = 0. && ro.Lag_report.lag_p99 = 0.);
  check_int "refresh-only site has no reads" 0 rf.Lag_report.reads;
  check_bool "empty age section is zero" true
    (rf.Lag_report.age_p50 = 0. && rf.Lag_report.age_p99 = 0.
    && rf.Lag_report.missed_mean = 0.);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let table = Lag_report.render rows in
  check_bool "empty sections render as explicit - cells" true
    (contains table "-");
  let json = Lag_report.json_string rows in
  check_bool "json is null-free" true (not (contains json "null"))

let test_sim_freshness_outcome () =
  (* The always-on freshness reduction lands in the outcome even without a
     lineage sink attached. *)
  let o = run Session.Weak in
  check_bool "read age quantiles ordered" true
    (0. <= o.Sim_system.read_age_p50
    && o.Sim_system.read_age_p50 <= o.Sim_system.read_age_p95
    && o.Sim_system.read_age_p95 <= o.Sim_system.read_age_p99);
  check_bool "read age mean nonnegative" true (o.Sim_system.read_age_mean >= 0.);
  check_bool "missed mean nonnegative" true (o.Sim_system.read_missed_mean >= 0.)

let test_sim_obs_exports_deterministic () =
  (* Same seed, fresh registries: metrics and trace exports are
     byte-identical; a different seed diverges. *)
  let _, obs_a = obs_run ~seed:11 in
  let _, obs_b = obs_run ~seed:11 in
  let _, obs_c = obs_run ~seed:12 in
  Alcotest.(check string)
    "metrics bytes identical"
    (Lsr_obs.Obs.metrics_json obs_a)
    (Lsr_obs.Obs.metrics_json obs_b);
  Alcotest.(check string)
    "trace bytes identical"
    (Lsr_obs.Obs.trace_json obs_a)
    (Lsr_obs.Obs.trace_json obs_b);
  check_bool "different seed, different metrics" true
    (Lsr_obs.Obs.metrics_json obs_a <> Lsr_obs.Obs.metrics_json obs_c)

let monitor_run ~seed =
  let monitor = Monitor.create ~interval:2.0 () in
  let o =
    Sim_system.run
      {
        (Sim_system.config tiny_params Session.Strong_session ~seed) with
        Sim_system.monitor;
      }
  in
  (o, monitor)

let test_sim_monitor_does_not_perturb () =
  (* The sampling process only reads state — it draws no randomness and
     wakes nothing — so with the monitor attached every outcome field is
     unchanged, bit for bit. The two meta fields are exempt by design:
     [sim_events] counts the sampler's own wakeups and [checker_cpu_s] is
     wall CPU time. *)
  let sampled, monitor = monitor_run ~seed:11 in
  let blind = run Session.Strong_session in
  let scrub (o : Sim_system.outcome) =
    { o with Sim_system.sim_events = 0; checker_cpu_s = 0. }
  in
  check_bool "every outcome field unchanged" true (scrub sampled = scrub blind);
  let series = Monitor.series monitor in
  check_bool "samples recorded" true (Lsr_obs.Timeseries.length series > 0);
  let columns = Lsr_obs.Timeseries.columns series in
  List.iter
    (fun c -> check_bool ("column " ^ c) true (List.mem c columns))
    [
      "primary.util"; "primary.wal"; "primary.versions"; "secondary-0.util";
      "secondary-0.update_queue"; "secondary-0.pending";
      "secondary-1.versions"; "secondary-1.qlen"; "secondary-1.depth";
    ];
  (* Samples land exactly on the virtual-time grid. *)
  List.iter
    (fun (s : Lsr_obs.Timeseries.sample) ->
      check_bool "on the sampling grid" true
        (Float.rem s.Lsr_obs.Timeseries.time 2.0 = 0.))
    (Lsr_obs.Timeseries.samples series)

let test_sim_monitor_timeseries_deterministic () =
  (* Same seed, fresh monitors: both exports are byte-identical; a
     different seed diverges. *)
  let _, a = monitor_run ~seed:11 in
  let _, b = monitor_run ~seed:11 in
  let _, c = monitor_run ~seed:12 in
  Alcotest.(check string)
    "timeseries JSON bytes identical"
    (Lsr_obs.Timeseries.json_string (Monitor.series a))
    (Lsr_obs.Timeseries.json_string (Monitor.series b));
  Alcotest.(check string)
    "timeseries CSV bytes identical"
    (Lsr_obs.Timeseries.csv (Monitor.series a))
    (Lsr_obs.Timeseries.csv (Monitor.series b));
  check_bool "different seed, different samples" true
    (Lsr_obs.Timeseries.json_string (Monitor.series a)
    <> Lsr_obs.Timeseries.json_string (Monitor.series c))

let test_monitor_create_validates () =
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Monitor.create: interval must be positive and finite")
    (fun () -> ignore (Monitor.create ~interval:0. ()));
  check_bool "null disabled" false (Monitor.enabled Monitor.null)

let test_outcome_resources () =
  let o = run Session.Strong_session in
  let sites = List.map (fun r -> r.Sim_system.res_site) o.Sim_system.resources in
  Alcotest.(check (list string))
    "primary first, then secondaries in order"
    [ "primary"; "secondary-0"; "secondary-1" ]
    sites;
  List.iter
    (fun (r : Sim_system.resource_report) ->
      check_bool "utilization in [0,1]" true
        (0. < r.Sim_system.res_utilization && r.Sim_system.res_utilization <= 1.);
      check_bool "completions within arrivals" true
        (r.Sim_system.res_completions <= r.Sim_system.res_arrivals);
      check_bool "throughput positive" true (r.Sim_system.res_throughput > 0.);
      check_bool "littles gap small over a long run" true
        (r.Sim_system.res_littles_gap < 0.1))
    o.Sim_system.resources

let test_bottleneck_report () =
  let o = run Session.Strong_session in
  let report = Bottleneck.analyze tiny_params o in
  check_int "one rank per resource" 3 (List.length report.Bottleneck.ranking);
  let utils =
    List.map (fun r -> r.Bottleneck.bn_utilization) report.Bottleneck.ranking
  in
  check_bool "ranking sorted by utilization" true
    (List.sort (fun a b -> compare b a) utils = utils);
  Alcotest.(check string)
    "dominant is the head of the ranking"
    (match report.Bottleneck.ranking with
    | r :: _ -> r.Bottleneck.bn_site
    | [] -> "none")
    report.Bottleneck.dominant;
  let share_sum =
    List.fold_left
      (fun acc r -> acc +. r.Bottleneck.bn_wait_share)
      0. report.Bottleneck.ranking
  in
  Alcotest.(check (float 1e-9)) "wait shares sum to 1" 1. share_sum;
  Alcotest.(check (list string))
    "read and update classes"
    [ "read"; "update" ]
    (List.map (fun b -> b.Bottleneck.br_class) report.Bottleneck.breakdowns);
  List.iter
    (fun (b : Bottleneck.breakdown) ->
      List.iter
        (fun (c : Bottleneck.component) ->
          check_bool "component nonnegative" true (c.Bottleneck.comp_seconds >= 0.))
        b.Bottleneck.br_components;
      let total =
        List.fold_left
          (fun acc c -> acc +. c.Bottleneck.comp_seconds)
          0. b.Bottleneck.br_components
      in
      (* The queueing remainder is clamped at zero, so the components cover
         at least the measured response time. *)
      check_bool "components cover the response time" true
        (total >= b.Bottleneck.br_rt_mean -. 1e-9))
    report.Bottleneck.breakdowns;
  let rendered = Bottleneck.render ~tag:"t" report in
  check_bool "render names the dominant resource" true
    (let sub = "bottleneck [t]: " ^ report.Bottleneck.dominant in
     String.length rendered >= String.length sub
     && String.sub rendered 0 (String.length sub) = sub);
  (* The JSON export round-trips through the parser, like every exporter. *)
  match
    Lsr_obs.Json.parse
      (Lsr_obs.Json.to_string
         (Bottleneck.sweep_json [ { Bottleneck.tag = "t"; report } ]))
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("bottleneck JSON invalid: " ^ e)

let tiny_sweep_params =
  {
    Params.default with
    Params.clients_per_secondary = 4;
    warmup = 10.;
    duration = 60.;
    replications = 2;
    propagation_delay = 3.;
  }

let tiny_opts =
  { Figures.default_opts with Figures.quick = true; base_params = Some tiny_sweep_params }

let series_by_label (figure : Figures.figure) label =
  List.find (fun s -> s.Figures.label = label) figure.Figures.series

let test_figures_tiny_fig234 () =
  let f2, f3, f4 = Figures.fig2_3_4 tiny_opts in
  Alcotest.(check string) "fig2 id" "fig2" f2.Figures.id;
  List.iter
    (fun (figure : Figures.figure) ->
      check_int "three series" 3 (List.length figure.Figures.series);
      List.iter
        (fun s -> check_int "five points" 5 (List.length s.Figures.points))
        figure.Figures.series)
    [ f2; f3; f4 ];
  (* Strong SI must show the signature pattern even at tiny scale: higher
     read latency than weak SI at the largest load point. *)
  let last series =
    (List.nth series.Figures.points 4).Figures.interval.Lsr_stats.Confidence.mean
  in
  check_bool "strong read RT dominates weak" true
    (last (series_by_label f3 "ALG-STRONG-SI")
    > last (series_by_label f3 "ALG-WEAK-SI"))

let test_figures_tiny_fig_fence () =
  (* The fence sweep must expose the staleness/latency tradeoff: tightening
     the Max_age bound never lowers read latency, and the tightest setting
     is strictly slower than unfenced (reads block on the threshold queue
     until the horizon is applied). *)
  let fig = Figures.fig_fence tiny_opts in
  Alcotest.(check string) "id" "fig-fence" fig.Figures.id;
  check_int "three series" 3 (List.length fig.Figures.series);
  List.iter
    (fun s ->
      check_bool "at least four fence settings + baseline" true
        (List.length s.Figures.points >= 5))
    fig.Figures.series;
  (* Points run loosest (unfenced baseline) to tightest. *)
  let means label =
    List.map
      (fun (p : Figures.point) -> p.Figures.interval.Lsr_stats.Confidence.mean)
      (series_by_label fig label).Figures.points
  in
  let p95s = means "read rt p95" in
  let loosest = List.hd p95s and tightest = List.nth p95s (List.length p95s - 1) in
  check_bool "tightest fence strictly slower than unfenced" true
    (tightest > loosest);
  let ages = means "snapshot age p95" in
  check_bool "tightest fence observes no staler snapshots than unfenced" true
    (List.nth ages (List.length ages - 1) <= List.hd ages)

let test_figures_tiny_fig5_ideal_line () =
  let f5, _, _ = Figures.fig5_6_7 tiny_opts in
  check_int "ideal + three algorithms" 4 (List.length f5.Figures.series);
  let ideal = series_by_label f5 "ideal (linear)" in
  let points = ideal.Figures.points in
  let ratio (p : Figures.point) =
    p.Figures.interval.Lsr_stats.Confidence.mean /. p.Figures.x
  in
  let r0 = ratio (List.hd points) in
  List.iter
    (fun p -> Alcotest.(check (float 1e-6)) "ideal line is linear" r0 (ratio p))
    points

let test_params_for () =
  check_bool "quick shrinks" true
    ((Figures.params_for ~quick:true).Params.duration
    < (Figures.params_for ~quick:false).Params.duration);
  Alcotest.(check int) "paper-scale replications" 5
    (Figures.params_for ~quick:false).Params.replications

let () =
  Alcotest.run "lsr_experiments"
    [
      ( "metrics",
        [
          Alcotest.test_case "warmup filtering" `Quick test_metrics_warmup_filtering;
          Alcotest.test_case "counters" `Quick test_metrics_counters;
        ] );
      ( "sim_system",
        [
          Alcotest.test_case "produces work" `Quick test_sim_produces_work;
          Alcotest.test_case "all guarantees validate" `Slow
            test_sim_all_guarantees_validate;
          Alcotest.test_case "weak never blocks" `Quick test_sim_weak_never_blocks;
          Alcotest.test_case "blocking ordering" `Quick test_sim_blocking_ordering;
          Alcotest.test_case "strong read rt dominates" `Quick
            test_sim_strong_read_rt_dominates;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          Alcotest.test_case "serial refresh staler" `Slow
            test_sim_serial_refresh_staler;
          Alcotest.test_case "ship_aborted wastes work" `Quick
            test_sim_ship_aborted_wastes_work;
          Alcotest.test_case "ship_aborted still correct" `Slow
            test_sim_ship_aborted_still_correct;
          Alcotest.test_case "utilization bounds" `Quick test_sim_utilization_bounds;
          Alcotest.test_case "staleness reflects delay" `Quick
            test_sim_staleness_reflects_delay;
          Alcotest.test_case "config defaults" `Quick test_sim_config_defaults;
          Alcotest.test_case "pcsi validates" `Slow test_sim_pcsi_validates;
          Alcotest.test_case "migration validates" `Slow
            test_sim_migration_validates;
          Alcotest.test_case "migration: pcsi waits less" `Quick
            test_sim_migration_pcsi_waits_less;
          Alcotest.test_case "contention: fcw aborts + correct" `Slow
            test_sim_contention_fcw_aborts;
          Alcotest.test_case "uniform: no fcw" `Quick test_sim_uniform_has_no_fcw;
        ] );
      ( "observability",
        [
          Alcotest.test_case "does not perturb the run" `Quick
            test_sim_obs_does_not_perturb;
          Alcotest.test_case "counters track outcome" `Quick
            test_sim_obs_counters_track_outcome;
          Alcotest.test_case "exports byte-deterministic" `Quick
            test_sim_obs_exports_deterministic;
          Alcotest.test_case "lineage does not perturb" `Quick
            test_sim_lineage_does_not_perturb;
          Alcotest.test_case "lineage exports byte-deterministic" `Quick
            test_sim_lineage_exports_deterministic;
          Alcotest.test_case "lag report rows" `Quick test_lag_report_rows;
          Alcotest.test_case "lag report empty site" `Quick
            test_lag_report_empty_site;
          Alcotest.test_case "freshness in outcome" `Quick
            test_sim_freshness_outcome;
          Alcotest.test_case "monitor does not perturb" `Quick
            test_sim_monitor_does_not_perturb;
          Alcotest.test_case "monitor timeseries byte-deterministic" `Quick
            test_sim_monitor_timeseries_deterministic;
          Alcotest.test_case "monitor create validates" `Quick
            test_monitor_create_validates;
          Alcotest.test_case "outcome resource reports" `Quick
            test_outcome_resources;
          Alcotest.test_case "bottleneck report" `Quick test_bottleneck_report;
        ] );
      ( "report",
        [
          Alcotest.test_case "render" `Quick test_report_render;
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "write csv" `Quick test_report_write_csv;
          Alcotest.test_case "non-finite clamped" `Quick
            test_report_nonfinite_clamped;
          Alcotest.test_case "params_for" `Quick test_params_for;
          Alcotest.test_case "tiny fig2/3/4 sweep" `Slow test_figures_tiny_fig234;
          Alcotest.test_case "fig5 ideal line" `Slow test_figures_tiny_fig5_ideal_line;
          Alcotest.test_case "fig-fence tradeoff" `Slow
            test_figures_tiny_fig_fence;
        ] );
    ]
